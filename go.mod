module calibre

go 1.24
