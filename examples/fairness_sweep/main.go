// Fairness sweep: reproduce the paper's central comparison — mean accuracy
// (overall performance) against accuracy variance (fairness) — for a set of
// representative methods on the Dirichlet non-i.i.d. CIFAR-10 setting, and
// report Calibre's margins the way the paper does.
//
//	go run ./examples/fairness_sweep [-scale ci]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"calibre"
)

func main() {
	scale := flag.String("scale", "smoke", "experiment scale: smoke | ci | paper")
	flag.Parse()

	env, err := calibre.NewEnvironment("cifar10-d(0.3,600)", calibre.Scale(*scale), 42)
	if err != nil {
		log.Fatal(err)
	}
	env.Novel = nil // only participating clients in this comparison

	methods := []string{
		"fedavg-ft", "fedbabu", "fedrep", "script-convergent",
		"pfl-simclr", "calibre-simclr",
	}
	results := make(map[string]calibre.Summary, len(methods))
	fmt.Printf("%-20s %10s %10s %10s\n", "method", "mean", "variance", "bottom10")
	for _, m := range methods {
		out, err := calibre.Run(context.Background(), env, m)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		s := out.Participants.Summary
		results[m] = s
		fmt.Printf("%-20s %10.4f %10.5f %10.4f\n", m, s.Mean, s.Variance, s.Bottom10)
	}

	cal := results["calibre-simclr"]
	fmt.Printf("\nCalibre (SimCLR) vs FedAvg-FT:  %+.2f pp mean, %+.1f%% variance reduction\n",
		calibre.Improvement(cal, results["fedavg-ft"]),
		calibre.VarianceReduction(cal, results["fedavg-ft"]))
	fmt.Printf("Calibre (SimCLR) vs pFL-SimCLR: %+.2f pp mean (the calibration margin)\n",
		calibre.Improvement(cal, results["pfl-simclr"]))
}
