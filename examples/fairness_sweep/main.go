// Fairness sweep: reproduce the paper's central comparison — mean accuracy
// (overall performance) against accuracy variance (fairness) — as a real
// sweep workload: a declarative grid of methods × non-i.i.d. partitions ×
// seeds, scheduled by the sweep engine and aggregated into the
// fairness-first report (cross-seed variance-of-variance, variance
// reduction vs FedAvg-FT, per-scenario Pareto fronts).
//
//	go run ./examples/fairness_sweep [-scale ci] [-workers 4] [-out dir]
//
// With -out the sweep is durable: kill it mid-run and re-run with the
// same -out to resume from the manifest, skipping completed cells.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"calibre"
)

func main() {
	scale := flag.String("scale", "smoke", "experiment scale: smoke | ci | paper")
	workers := flag.Int("workers", 2, "concurrent cells")
	out := flag.String("out", "", "sweep directory (durable + resumable when set)")
	flag.Parse()

	grid := &calibre.SweepGrid{
		Name:     "fairness-vs-accuracy",
		Methods:  []string{"fedavg-ft", "fedbabu", "fedrep", "script-convergent", "pfl-simclr", "calibre-simclr"},
		Settings: []string{"cifar10-d(0.3,600)", "cifar10-q(2,500)"},
		Scales:   []calibre.Scale{calibre.Scale(*scale)},
		Seeds:    []int64{1, 2},
		Baseline: "fedavg-ft",
	}
	cfg := calibre.SweepConfig{
		Workers: *workers,
		Dir:     *out,
		OnCell: func(res calibre.SweepCellResult) {
			fmt.Printf("%-90s %s\n", res.Key, res.Status)
		},
	}
	if *out != "" {
		// Resume transparently when the directory already holds a manifest.
		if _, err := os.Stat(*out); err == nil {
			cfg.Resume = true
		}
	}
	res, err := calibre.RunSweep(context.Background(), grid, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := calibre.NewSweepReport(res).WriteMarkdown(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
