// Distributed: run a real networked federation — a TCP server and several
// client processes exchanging gob-encoded model vectors — inside one
// program (each client on its own goroutine, exactly the code path the
// calibre-server / calibre-client binaries use across machines).
//
// The federation runs asynchronously: rounds close on a 3-of-4 quorum with
// a per-round deadline, and one client is deliberately slowed down
// (SimLatency) so the straggler machinery shows in the per-round log:
// round 0 closes by deadline with the slow client listed as a straggler,
// later rounds sample around it while it is busy, and — because the policy
// is requeue, not drop — it still appears in the final per-client
// accuracies once its stale reply drains.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"calibre"
)

func main() {
	const numClients = 4

	env, err := calibre.NewEnvironment("cifar10-q(2,500)", calibre.ScaleSmoke, 3)
	if err != nil {
		log.Fatal(err)
	}
	method, err := calibre.BuildMethod(env, "calibre-simclr")
	if err != nil {
		log.Fatal(err)
	}

	srv, err := calibre.NewServer(calibre.ServerConfig{
		Addr:            "127.0.0.1:0",
		NumClients:      numClients,
		Rounds:          3,
		ClientsPerRound: numClients,
		Seed:            3,
		Aggregator:      method.Aggregator,
		InitGlobal:      method.InitGlobal,
		IOTimeout:       2 * time.Minute,
		// Asynchronous rounds: close on a 3-of-4 quorum once the deadline
		// passes; deadline-missers are requeued for later rounds.
		Quorum:        numClients - 1,
		RoundDeadline: 10 * time.Second,
		Straggler:     calibre.StragglerRequeue,
		OnRound: func(stats calibre.RoundStats) {
			fmt.Println(stats)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server listening on", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The last client simulates a slow device in round 0: it
			// sleeps through the deadline, misses the quorum cut, and is
			// requeued — watch the round log for its late update.
			var latency func(round int) time.Duration
			if id == numClients-1 {
				latency = func(round int) time.Duration {
					if round == 0 {
						return 25 * time.Second
					}
					return 0
				}
			}
			err := calibre.RunClient(ctx, calibre.ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         env.Participants[id],
				Trainer:      method.Trainer,
				Personalizer: method.Personalizer,
				Seed:         3,
				IOTimeout:    2 * time.Minute,
				SimLatency:   latency,
			})
			if err != nil {
				log.Printf("client %d: %v", id, err)
			}
		}(id)
	}

	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]int, 0, len(res.Accuracies))
	accs := make([]float64, 0, len(res.Accuracies))
	for id := range res.Accuracies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("client %d personalized accuracy: %.4f\n", id, res.Accuracies[id])
		accs = append(accs, res.Accuracies[id])
	}
	fmt.Println("federation summary:", calibre.Summarize(accs))
}
