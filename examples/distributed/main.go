// Distributed: run a real networked federation — a TCP server and several
// client processes exchanging gob-encoded model vectors — inside one
// program (each client on its own goroutine, exactly the code path the
// calibre-server / calibre-client binaries use across machines).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"calibre"
)

func main() {
	const numClients = 4

	env, err := calibre.NewEnvironment("cifar10-q(2,500)", calibre.ScaleSmoke, 3)
	if err != nil {
		log.Fatal(err)
	}
	method, err := calibre.BuildMethod(env, "calibre-simclr")
	if err != nil {
		log.Fatal(err)
	}

	srv, err := calibre.NewServer(calibre.ServerConfig{
		Addr:            "127.0.0.1:0",
		NumClients:      numClients,
		Rounds:          3,
		ClientsPerRound: 2,
		Seed:            3,
		Aggregator:      method.Aggregator,
		InitGlobal:      method.InitGlobal,
		IOTimeout:       time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server listening on", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := calibre.RunClient(ctx, calibre.ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         env.Participants[id],
				Trainer:      method.Trainer,
				Personalizer: method.Personalizer,
				Seed:         3,
				IOTimeout:    time.Minute,
			})
			if err != nil {
				log.Printf("client %d: %v", id, err)
			}
		}(id)
	}

	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range res.History {
		fmt.Printf("round %d: clients %v, mean SSL loss %.4f\n", h.Round, h.Participants, h.MeanLoss)
	}
	ids := make([]int, 0, len(res.Accuracies))
	accs := make([]float64, 0, len(res.Accuracies))
	for id := range res.Accuracies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("client %d personalized accuracy: %.4f\n", id, res.Accuracies[id])
		accs = append(accs, res.Accuracies[id])
	}
	fmt.Println("federation summary:", calibre.Summarize(accs))
}
