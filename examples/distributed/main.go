// Distributed: run a real networked federation — a TCP server and several
// client processes exchanging model vectors — inside one program (each
// client on its own goroutine, exactly the code path the calibre-server /
// calibre-client binaries use across machines), then kill the server
// mid-federation and resume it from its durable checkpoints.
//
// Phase 1 runs asynchronously (rounds close on a 3-of-4 quorum with a
// per-round deadline, one deliberately slow client shows up as a
// straggler) while every completed round is snapshotted into a checkpoint
// store. After round 1 the server process is killed: its context is
// canceled, every connection drops and the clients fail out — the crash.
//
// Phase 2 is the operator's restart: a fresh server loads the latest
// snapshot (calibre.OpenCheckpointStore + ServerConfig.ResumeFrom), the
// clients redial, and the federation continues from round 2 through
// personalization as if nothing had happened. With all participants
// responding, the resumed run is bit-identical to an uninterrupted one.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"calibre"
)

const (
	numClients = 4
	rounds     = 4
	seed       = 3
)

// runPhase starts a server (resuming from resume when non-nil) plus one
// goroutine per client, and returns the server outcome. kill, when
// non-nil, is invoked at the round boundary named by killAfter — the
// simulated crash.
func runPhase(ctx context.Context, env *calibre.Environment, method *calibre.Method,
	ckpt *calibre.CheckpointStore, fingerprint string, resume *calibre.SimState,
	killAfter int, kill context.CancelFunc, metrics *calibre.MetricsRegistry) (*calibre.FederationResult, error) {

	srv, err := calibre.NewServer(calibre.ServerConfig{
		Addr:            "127.0.0.1:0",
		NumClients:      numClients,
		Rounds:          rounds,
		ClientsPerRound: numClients,
		Seed:            seed,
		// Observability: both phases feed one metrics registry, so the
		// totals printed at the end span the crash. A registry never
		// perturbs results — instrumented runs stay bit-identical.
		Obs:        metrics,
		Aggregator: method.Aggregator,
		InitGlobal: method.InitGlobal,
		IOTimeout:  2 * time.Minute,
		// Asynchronous rounds: close on a 3-of-4 quorum once the deadline
		// passes; deadline-missers are requeued for later rounds.
		Quorum:        numClients - 1,
		RoundDeadline: 10 * time.Second,
		Straggler:     calibre.StragglerRequeue,
		// Durability: every completed round lands in the checkpoint store
		// (atomic versioned snapshot files) before OnRound fires.
		CheckpointEvery: 1,
		OnCheckpoint: ckpt.SaveHook(
			calibre.SnapshotMeta{Seed: seed, Fingerprint: fingerprint, Runtime: "server"},
			func(v int, state *calibre.SimState) {
				fmt.Printf("  [checkpoint v%d saved at round %d]\n", v, state.Round)
			}),
		ResumeFrom: resume,
		OnRound: func(stats calibre.RoundStats) {
			fmt.Println(stats)
			if kill != nil && stats.Round == killAfter {
				fmt.Println("  [killing the server process here]")
				kill()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	fmt.Println("server listening on", srv.Addr())

	var wg sync.WaitGroup
	for id := 0; id < numClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The last client simulates a slow device in round 0: it
			// sleeps through the deadline, misses the quorum cut, and is
			// requeued — watch the round log for its late update.
			var latency func(round int) time.Duration
			if id == numClients-1 && resume == nil {
				latency = func(round int) time.Duration {
					if round == 0 {
						return 25 * time.Second
					}
					return 0
				}
			}
			err := calibre.RunClient(ctx, calibre.ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         env.Participants[id],
				Trainer:      method.Trainer,
				Personalizer: method.Personalizer,
				Seed:         seed,
				IOTimeout:    2 * time.Minute,
				SimLatency:   latency,
			})
			if err != nil {
				log.Printf("client %d: %v (expected when the server is killed)", id, err)
			}
		}(id)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	return res, err
}

func main() {
	env, err := calibre.NewEnvironment("cifar10-q(2,500)", calibre.ScaleSmoke, seed)
	if err != nil {
		log.Fatal(err)
	}
	method, err := calibre.BuildMethod(env, "calibre-simclr")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "calibre-distributed-ckpt")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt, err := calibre.OpenCheckpointStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	fingerprint := "distributed-demo" // binds snapshots to this config
	metrics := calibre.NewMetricsRegistry()

	fmt.Printf("=== phase 1: async federation with checkpoints (killed after round 1) ===\n")
	phase1, cancel1 := context.WithTimeout(context.Background(), 5*time.Minute)
	_, err = runPhase(phase1, env, method, ckpt, fingerprint, nil, 1, cancel1, metrics)
	cancel1()
	if err == nil {
		log.Fatal("phase 1 was supposed to die mid-federation")
	}
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("phase 1 failed for the wrong reason: %v", err)
	}
	fmt.Printf("server died as scripted: %v\n\n", err)

	fmt.Printf("=== phase 2: restart, resume from the latest snapshot ===\n")
	snap, version, err := ckpt.Resume(fingerprint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming from checkpoint v%d (round %d/%d)\n", version, snap.State.Round, rounds)
	phase2, cancel2 := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel2()
	res, err := runPhase(phase2, env, method, ckpt, fingerprint, &snap.State, -1, nil, metrics)
	if err != nil {
		log.Fatal(err)
	}

	ids := make([]int, 0, len(res.Accuracies))
	accs := make([]float64, 0, len(res.Accuracies))
	for id := range res.Accuracies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("client %d personalized accuracy: %.4f\n", id, res.Accuracies[id])
		accs = append(accs, res.Accuracies[id])
	}
	fmt.Println("federation summary:", calibre.Summarize(accs))

	// What the metrics plane saw across both phases: every completed
	// round, and how much uplink traffic the XOR-delta wire saved versus
	// shipping dense vectors. With -metrics-addr / calibre.ServeMetrics
	// the same numbers are scrapeable live at /metrics and /metrics/prom.
	ms := metrics.Snapshot()
	fmt.Printf("metrics: %d rounds observed, uplink %d B on the wire vs %d B dense\n",
		ms.Counters[calibre.MetricRounds],
		ms.Counters[calibre.MetricUplinkWireBytes],
		ms.Counters[calibre.MetricUplinkDenseBytes])
}
