// SSL zoo: Calibre is SSL-method-agnostic — it calibrates any of the six
// self-supervised objectives the paper evaluates. This example trains every
// Calibre variant on one setting and ranks them, mirroring the method
// roster of the paper's Fig. 3.
//
//	go run ./examples/ssl_zoo [-scale ci]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"calibre"
)

func main() {
	scale := flag.String("scale", "smoke", "experiment scale: smoke | ci | paper")
	flag.Parse()

	env, err := calibre.NewEnvironment("cifar10-q(2,500)", calibre.Scale(*scale), 11)
	if err != nil {
		log.Fatal(err)
	}
	env.Novel = nil

	type row struct {
		name string
		sum  calibre.Summary
	}
	var rows []row
	for _, sslName := range calibre.SSLMethodNames() {
		name := "calibre-" + sslName
		out, err := calibre.Run(context.Background(), env, name)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		rows = append(rows, row{name, out.Participants.Summary})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sum.Mean > rows[j].sum.Mean })

	fmt.Printf("%-20s %10s %10s\n", "variant", "mean", "variance")
	for _, r := range rows {
		fmt.Printf("%-20s %10.4f %10.5f\n", r.name, r.sum.Mean, r.sum.Variance)
	}
	fmt.Println("\nAt ci/paper scales, the paper finds SimCLR's NT-Xent objective cooperates best with the")
	fmt.Println("prototype regularizers, while SwAV/SMoG (which carry built-in")
	fmt.Println("prototypes) benefit less — compare the ranking above.")
}
