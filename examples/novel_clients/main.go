// Novel clients: the paper's §V-D experiment. Fifty additional clients
// never participate in federated training; after training converges they
// download the global encoder and personalize locally. A method generalizes
// well if novel clients score close to participants.
//
//	go run ./examples/novel_clients [-scale ci]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"calibre"
)

func main() {
	scale := flag.String("scale", "smoke", "experiment scale: smoke | ci | paper")
	flag.Parse()

	env, err := calibre.NewEnvironment("cifar10-d(0.3,600)", calibre.Scale(*scale), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d participants, %d novel clients\n\n", len(env.Participants), len(env.Novel))

	fmt.Printf("%-18s %22s %22s %8s\n", "method", "participants", "novel clients", "gap")
	for _, m := range []string{"fedbabu", "fedrep", "calibre-simclr"} {
		out, err := calibre.Run(context.Background(), env, m)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		p, n := out.Participants.Summary, out.Novel.Summary
		fmt.Printf("%-18s %10.4f ±%9.4f %10.4f ±%9.4f %+8.4f\n",
			m, p.Mean, p.Std, n.Mean, n.Std, n.Mean-p.Mean)
	}
	fmt.Println("\nA small participants→novel gap means the global encoder transfers to")
	fmt.Println("clients with unseen data distributions (the paper's Fig. 4, right panels).")
}
