// Quickstart: train Calibre (SimCLR) on a small synthetic CIFAR-10
// federation and print the personalized accuracy summary.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"calibre"
)

func main() {
	// An Environment bundles the synthetic dataset, the non-i.i.d. client
	// partition and the shared model architecture. "cifar10-q(2,500)" is
	// the paper's quantity-based setting: every client owns two classes.
	env, err := calibre.NewEnvironment("cifar10-q(2,500)", calibre.ScaleSmoke, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: %d participants, %d novel clients, %d classes\n",
		len(env.Participants), len(env.Novel), env.NumClasses)

	// Run executes both stages of the paper's pipeline: the federated
	// self-supervised training stage and the per-client personalization
	// stage (linear head on frozen features).
	out, err := calibre.Run(context.Background(), env, "calibre-simclr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("participating clients:", out.Participants.Summary)
	fmt.Println("novel clients:        ", out.Novel.Summary)

	// Mean accuracy is the overall-performance axis; variance across
	// clients is the fairness axis (lower = fairer).
	fmt.Printf("fairness (accuracy variance): %.5f\n", out.Participants.Summary.Variance)
}
