package calibre

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (DESIGN.md §3). Each benchmark regenerates its
// artifact end to end — dataset synthesis, non-i.i.d. partitioning,
// federated training of every method in the figure, the personalization
// stage, and (for the t-SNE figures) representation metrics + 2-D
// embeddings. Benchmarks run at smoke scale so `go test -bench=.` stays
// tractable; use `go run ./cmd/calibre-bench -scale ci|paper` for the
// larger reproductions.

import (
	"context"
	"testing"

	"calibre/internal/experiments"
)

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := experiments.Run(context.Background(), id, experiments.ScaleSmoke, 42)
		if err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
		if len(report.Settings) == 0 && len(report.Ablation) == 0 {
			b.Fatalf("experiment %s produced no results", id)
		}
	}
}

// BenchmarkFig1EmbeddingsAcrossClients regenerates Fig. 1: t-SNE of
// pFL-SimCLR / pFL-BYOL representations pooled across clients (fuzzy
// cluster boundaries across clients).
func BenchmarkFig1EmbeddingsAcrossClients(b *testing.B) { benchmarkExperiment(b, "fig1") }

// BenchmarkFig2EmbeddingsWithinClient regenerates Fig. 2: per-client t-SNE
// close-ups with personalized accuracies (fuzzy boundaries within clients).
func BenchmarkFig2EmbeddingsWithinClient(b *testing.B) { benchmarkExperiment(b, "fig2") }

// BenchmarkFig3QNonIIDSweep regenerates Fig. 3: mean/variance of test
// accuracy for 20 methods over CIFAR-10 Q(2,500), CIFAR-100 Q(5,500),
// STL-10 Q(2,46) and STL-10 D(0.3,80).
func BenchmarkFig3QNonIIDSweep(b *testing.B) { benchmarkExperiment(b, "fig3") }

// BenchmarkFig4DNonIIDNovelClients regenerates Fig. 4: 12 methods on
// CIFAR-10 D(0.3,600) and CIFAR-100 D(0.3,500), for participating and
// novel clients.
func BenchmarkFig4DNonIIDNovelClients(b *testing.B) { benchmarkExperiment(b, "fig4") }

// BenchmarkTable1Ablation regenerates Table I: the L_n/L_p ablation for
// Calibre (SimCLR), Calibre (SwAV) and Calibre (SMoG) on CIFAR-10 Q(2,500).
func BenchmarkTable1Ablation(b *testing.B) { benchmarkExperiment(b, "table1") }

// BenchmarkFig5CalibratedEmbeddings regenerates Fig. 5: t-SNE of
// pFL-SimSiam / pFL-MoCoV2 vs their Calibre-calibrated versions.
func BenchmarkFig5CalibratedEmbeddings(b *testing.B) { benchmarkExperiment(b, "fig5") }

// BenchmarkFig6CalibreSimCLRvsBYOL regenerates Fig. 6: Calibre (SimCLR) vs
// Calibre (BYOL) embeddings including the client close-ups.
func BenchmarkFig6CalibreSimCLRvsBYOL(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7SupervisedVsCalibre regenerates Fig. 7: FedAvg / FedRep /
// FedPer / FedBABU / LG-FedAvg / Calibre (SimCLR) embeddings on CIFAR-10.
func BenchmarkFig7SupervisedVsCalibre(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig8STL10Embeddings regenerates Fig. 8: the same six methods on
// STL-10 Q(2).
func BenchmarkFig8STL10Embeddings(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkDesignAblation evaluates this reproduction's own design choices
// (adaptive K, silhouette quality gate, confidence filter, warm-up; see
// DESIGN.md §1.1) by switching each off in turn.
func BenchmarkDesignAblation(b *testing.B) { benchmarkExperiment(b, "design") }
