#!/usr/bin/env bash
# ci.sh — the full verification gate for this repo.
#
#   ./ci.sh          format check, vet, build, race tests, short kernel bench
#
# The quick kernel/codec/delta benches write their BENCH_*.json to temp
# dirs — they exist to prove the harnesses run, not to refresh the
# committed numbers. When kernels, the checkpoint codec or the update
# plane change, regenerate the tracked files with a full measurement:
#   go run ./cmd/calibre-bench -exp kernels -out .
#   go run ./cmd/calibre-bench -exp codec -out .
#   go run ./cmd/calibre-bench -exp delta -out .
#   go run ./cmd/calibre-bench -exp sweep -out .
#   go run ./cmd/calibre-bench -exp trace -out .
#   go run ./cmd/calibre-bench -exp hotpath -out .
#   go run ./cmd/calibre-bench -exp health -out .
# (see README.md "Benchmark harness").
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== examples (build + vet) =="
go build ./examples/...
go vet ./examples/...

echo "== doc gate =="
go run ./tools/docgate

echo "== metrics smoke =="
go run ./tools/metricssmoke

echo "== hostile smoke =="
go run ./tools/hostilesmoke

echo "== trace smoke =="
go run ./tools/tracesmoke

echo "== alloc smoke =="
go run ./tools/allocsmoke

echo "== health smoke =="
go run ./tools/healthsmoke

echo "== kernel bench (quick) =="
go run ./cmd/calibre-bench -exp kernels -quick -out "$(mktemp -d)"

echo "== codec bench (quick) =="
go run ./cmd/calibre-bench -exp codec -quick -out "$(mktemp -d)"

echo "== delta bench (quick) =="
go run ./cmd/calibre-bench -exp delta -quick -out "$(mktemp -d)"

echo "== sweep bench (quick) =="
go run ./cmd/calibre-bench -exp sweep -quick -out "$(mktemp -d)"

echo "== trace bench (quick) =="
go run ./cmd/calibre-bench -exp trace -quick -out "$(mktemp -d)"

echo "== hotpath bench (quick) =="
go run ./cmd/calibre-bench -exp hotpath -quick -out "$(mktemp -d)"

echo "== health bench (quick) =="
go run ./cmd/calibre-bench -exp health -quick -out "$(mktemp -d)"

echo "CI gate passed."
