// Command allocsmoke is the CI gate for the allocation-free training hot
// path, run by ci.sh. It executes a real calibre-simclr federation (fused
// kernels + buffer arena + delta wire — the shipping configuration) once to
// warm the per-client arenas, then meters a second run with
// runtime.ReadMemStats and fails if heap allocations per round exceed the
// committed budget. The budget carries ~50% headroom over the measured
// steady state (see BENCH_hotpath.json), so ordinary drift passes but a
// regression that re-introduces per-op allocations — a dropped arena, an
// unfused layer, a per-round wire copy — trips the gate.
//
//	go run ./tools/allocsmoke
package main

import (
	"context"
	"fmt"
	"os"
	"runtime"

	"calibre/internal/core"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/nn"
)

// allocBudgetPerRound is the committed ceiling on heap allocations per
// federation round for the fused+arena configuration. The steady state
// measured at the same smoke scale is ~3.7k allocs/round (BENCH_hotpath.json,
// fused-arena record); regenerate that file and revisit this number when the
// hot path legitimately changes:
//
//	go run ./cmd/calibre-bench -exp hotpath -out .
const allocBudgetPerRound = 6000

const (
	rounds   = 2
	perRound = 4
	seed     = 42
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "allocsmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	defer nn.SetFused(nn.SetFused(true))

	s, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		return fmt.Errorf("setting cifar10-q(2,500) missing")
	}
	env, err := experiments.BuildEnvironment(s, experiments.ScaleSmoke, seed)
	if err != nil {
		return err
	}
	m, err := experiments.BuildMethod(env, "calibre-simclr")
	if err != nil {
		return err
	}
	if _, ok := m.Trainer.(*core.SSLTrainer); !ok {
		return fmt.Errorf("calibre-simclr trainer is %T, want *core.SSLTrainer (arena path not exercised)", m.Trainer)
	}

	runSim := func() error {
		sim, err := fl.NewSimulator(fl.SimConfig{
			Rounds: rounds, ClientsPerRound: perRound, Seed: seed, DeltaUpdates: true,
		}, m, env.Participants)
		if err != nil {
			return err
		}
		_, _, err = sim.Run(context.Background())
		return err
	}
	if err := runSim(); err != nil { // warm-up: client states, arena free lists
		return err
	}

	// Mallocs is a monotonic counter, so intervening GCs cannot perturb the
	// delta; the explicit GC just keeps heap growth out of the traced run.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := runSim(); err != nil {
		return err
	}
	runtime.ReadMemStats(&after)

	got := int64(after.Mallocs-before.Mallocs) / rounds
	if got > allocBudgetPerRound {
		return fmt.Errorf("hot path allocates %d objects/round, budget is %d — the allocation-free path regressed (profile with go run ./cmd/calibre-bench -exp hotpath)", got, allocBudgetPerRound)
	}
	fmt.Printf("allocsmoke: ok (%d allocs/round ≤ budget %d)\n", got, allocBudgetPerRound)
	return nil
}
