// Command tracesmoke is the CI gate for the flight-recorder path, run by
// ci.sh. It builds the real calibre-sweep and calibre-trace binaries,
// runs a traced 2-cell sweep to completion, then runs the same grid
// again, interrupts it with SIGINT as soon as the plan is printed, and
// resumes with tracing still on. calibre-trace summary must parse both
// traces (the interrupted one may legitimately end mid-record), and the
// uninterrupted trace's round-span and cell-span counts must match what
// the sweep manifest says actually ran.
//
//	go run ./tools/tracesmoke
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"calibre/internal/sweep"
)

// Six cheap cells: enough runway that the SIGINT deterministically lands
// while the sweep is still executing.
const grid = `{
  "name": "trace-smoke",
  "methods": ["fedavg", "fedavg-ft"],
  "settings": ["cifar10-q(2,500)"],
  "scales": ["smoke"],
  "seeds": [1, 2, 3]
}`

const gridCells = 6

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("tracesmoke: ok")
}

// grepCount runs `calibre-trace grep ... -count` and parses the number.
func grepCount(traceBin, tracePath string, filters ...string) (int, error) {
	args := append([]string{"grep", tracePath}, filters...)
	args = append(args, "-count")
	out, err := exec.Command(traceBin, args...).CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("calibre-trace grep %v: %v\n%s", filters, err, out)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(out)))
	if err != nil {
		return 0, fmt.Errorf("calibre-trace grep %v printed %q, not a count", filters, out)
	}
	return n, nil
}

func run() error {
	dir, err := os.MkdirTemp("", "calibre-tracesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(grid), 0o644); err != nil {
		return err
	}

	// Real binaries: SIGINT must land on the sweep itself, and the trace
	// CLI is part of what this gate verifies.
	sweepBin := filepath.Join(dir, "calibre-sweep")
	if out, err := exec.Command("go", "build", "-o", sweepBin, "./cmd/calibre-sweep").CombinedOutput(); err != nil {
		return fmt.Errorf("build calibre-sweep: %v\n%s", err, out)
	}
	traceBin := filepath.Join(dir, "calibre-trace")
	if out, err := exec.Command("go", "build", "-o", traceBin, "./cmd/calibre-trace").CombinedOutput(); err != nil {
		return fmt.Errorf("build calibre-trace: %v\n%s", err, out)
	}

	// Reference: the traced grid, uninterrupted.
	fullDir := filepath.Join(dir, "full")
	fullTrace := filepath.Join(dir, "full.jsonl")
	if out, err := exec.Command(sweepBin, "run", "-grid", gridPath, "-out", fullDir,
		"-trace-out", fullTrace, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("uninterrupted run: %v\n%s", err, out)
	}

	// The trace must agree with the manifest: one cell span per cell, and
	// exactly as many round spans as the manifest says completed.
	var man struct {
		Cells map[string]sweep.CellResult `json:"cells"`
	}
	raw, err := os.ReadFile(filepath.Join(fullDir, sweep.ManifestName))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("decode manifest: %v", err)
	}
	wantRounds := 0
	for key, c := range man.Cells {
		if c.Status != sweep.StatusOK {
			return fmt.Errorf("cell %s failed: %s", key, c.Error)
		}
		wantRounds += c.Rounds
	}
	if len(man.Cells) != gridCells {
		return fmt.Errorf("manifest holds %d cells, want %d", len(man.Cells), gridCells)
	}
	cellSpans, err := grepCount(traceBin, fullTrace, "-kind", "cell_start")
	if err != nil {
		return err
	}
	if cellSpans != len(man.Cells) {
		return fmt.Errorf("trace holds %d cell spans, manifest %d cells", cellSpans, len(man.Cells))
	}
	roundSpans, err := grepCount(traceBin, fullTrace, "-kind", "round_end")
	if err != nil {
		return err
	}
	if roundSpans != wantRounds {
		return fmt.Errorf("trace holds %d round spans, manifest ran %d rounds", roundSpans, wantRounds)
	}
	sumOut, err := exec.Command(traceBin, "summary", fullTrace).CombinedOutput()
	if err != nil {
		return fmt.Errorf("summary on the full trace: %v\n%s", err, sumOut)
	}
	if !strings.Contains(string(sumOut), "rounds:") {
		return fmt.Errorf("summary output unparseable:\n%s", sumOut)
	}

	// Kill: same grid traced into a fresh file, SIGINT as soon as the plan
	// is printed.
	killDir := filepath.Join(dir, "killed")
	killTrace := filepath.Join(dir, "killed.jsonl")
	cmd := exec.Command(sweepBin, "run", "-grid", gridPath, "-out", killDir, "-trace-out", killTrace)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	planned := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		once := false
		for sc.Scan() {
			if !once && strings.HasPrefix(sc.Text(), "plan:") {
				once = true
				close(planned)
			}
		}
	}()
	<-planned
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		return fmt.Errorf("signal sweep: %v", err)
	}
	if err := cmd.Wait(); err == nil {
		return fmt.Errorf("interrupted sweep exited zero; the kill never landed")
	}

	// Resume with tracing still on (appending to the same file), then
	// summarize: the combined interrupted+resumed trace must parse.
	if out, err := exec.Command(sweepBin, "resume", "-grid", gridPath, "-out", killDir,
		"-trace-out", killTrace, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("resume: %v\n%s", err, out)
	}
	killSum, err := exec.Command(traceBin, "summary", killTrace).CombinedOutput()
	if err != nil {
		return fmt.Errorf("summary on the killed+resumed trace: %v\n%s", err, killSum)
	}
	// The resumed sweep re-runs whatever the interrupt abandoned, so its
	// trace holds at least the manifest's rounds.
	resumedRounds, err := grepCount(traceBin, killTrace, "-kind", "round_end")
	if err != nil {
		return err
	}
	if resumedRounds < wantRounds {
		return fmt.Errorf("killed+resumed trace holds %d round spans, want at least %d", resumedRounds, wantRounds)
	}

	fmt.Printf("tracesmoke: %d cells / %d rounds traced and matched against the manifest; kill+resume trace parses (%d round spans)\n",
		cellSpans, roundSpans, resumedRounds)
	return nil
}
