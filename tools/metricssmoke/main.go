// Command metricssmoke is the CI gate for the live metrics plane, run by
// ci.sh. It drives a short real sweep (`calibre-sweep run -metrics-addr
// 127.0.0.1:0`), parses the printed listen address, and scrapes the
// endpoint with stdlib net/http while the federation executes: /metrics
// must serve decodable JSON whose round counter goes non-zero, and
// /metrics/prom must expose `calibre_rounds_total` in Prometheus text.
// Any miss — unparseable output, dead endpoint, zero rounds, non-zero
// sweep exit — fails CI.
//
//	go run ./tools/metricssmoke
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

const grid = `{
  "name": "metrics-smoke",
  "methods": ["fedavg-ft"],
  "settings": ["cifar10-q(2,500)"],
  "scales": ["smoke"],
  "seeds": [1, 2]
}`

// snapshot mirrors the counters half of obs.Snapshot; the smoke keeps its
// own decl so it exercises the endpoint exactly like an external scraper
// (no in-module imports).
type snapshot struct {
	Counters map[string]int64 `json:"counters"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "metricssmoke:", err)
		os.Exit(1)
	}
	fmt.Println("metricssmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "calibre-metricssmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(grid), 0o644); err != nil {
		return err
	}

	cmd := exec.Command("go", "run", "./cmd/calibre-sweep", "run",
		"-grid", gridPath, "-out", filepath.Join(dir, "out"),
		"-metrics-addr", "127.0.0.1:0", "-quiet")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}

	// The sweep prints "metrics: listening on http://<addr>/metrics (…)"
	// before any cell runs; everything after that line just drains.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "metrics: listening on http://"); ok {
				if addr, _, ok := strings.Cut(rest, "/metrics"); ok {
					addrCh <- addr
				}
			}
		}
		close(addrCh)
	}()

	addr, ok := <-addrCh
	if !ok || addr == "" {
		_ = cmd.Wait()
		return fmt.Errorf("sweep never printed its metrics listen address")
	}

	// Scrape until the sweep exits: JSON must decode every time the
	// endpoint answers, and the round counter must tick at least once.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	client := &http.Client{Timeout: 2 * time.Second}
	var scrapes, maxRounds int64
	promSeen := false
	running := true
	for running {
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("sweep exited non-zero: %w", err)
			}
			running = false
		case <-time.After(10 * time.Millisecond):
			resp, err := client.Get("http://" + addr + "/metrics")
			if err != nil {
				continue
			}
			var snap snapshot
			decErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if decErr != nil {
				return fmt.Errorf("/metrics served undecodable JSON: %v", decErr)
			}
			scrapes++
			if n := snap.Counters["rounds_total"]; n > maxRounds {
				maxRounds = n
			}
			// Once a round has landed, the Prometheus view must carry it too.
			if maxRounds > 0 && !promSeen {
				resp, err := client.Get("http://" + addr + "/metrics/prom")
				if err != nil {
					continue
				}
				text := readAll(resp)
				resp.Body.Close()
				if !strings.Contains(text, "calibre_rounds_total") {
					return fmt.Errorf("/metrics/prom missing calibre_rounds_total:\n%s", text)
				}
				promSeen = true
			}
		}
	}

	if scrapes == 0 {
		return fmt.Errorf("metrics endpoint was never scrapeable during the sweep")
	}
	if maxRounds == 0 {
		return fmt.Errorf("rounds_total never went non-zero across %d scrapes", scrapes)
	}
	if !promSeen {
		return fmt.Errorf("never confirmed the Prometheus view (calibre_rounds_total)")
	}
	fmt.Printf("metricssmoke: %d scrapes, rounds_total peaked at %d, prom view confirmed\n", scrapes, maxRounds)
	return nil
}

func readAll(resp *http.Response) string {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
