// Command hostilesmoke is the CI gate for the hostile-federation path,
// run by ci.sh. It builds the real calibre-sweep binary, runs a 4-cell
// adversarial grid (sign-flip attackers over mean and median aggregation)
// to completion, then runs the same grid again, interrupts it with SIGINT
// as soon as the plan is printed, and resumes. The resumed sweep must
// exit clean and its three report artifacts (sweep-report.md,
// sweep-cells.csv, sweep-methods.csv) must be byte-identical to the
// uninterrupted run's — the attack RNG and the scheduler replay exactly.
// The report must also carry the hostile-fairness table.
//
//	go run ./tools/hostilesmoke
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
)

const grid = `{
  "name": "hostile-smoke",
  "methods": ["fedavg-ft"],
  "settings": ["cifar10-q(2,500)"],
  "scales": ["smoke"],
  "seeds": [1],
  "aggregators": ["mean", "median"],
  "adversary": ["sign-flip(3)"],
  "adversary_frac": [0, 0.3]
}`

var artifacts = []string{"sweep-report.md", "sweep-cells.csv", "sweep-methods.csv"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostilesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("hostilesmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "calibre-hostilesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(grid), 0o644); err != nil {
		return err
	}

	// Build the real binary: SIGINT must land on the sweep itself, not on
	// a `go run` wrapper.
	bin := filepath.Join(dir, "calibre-sweep")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/calibre-sweep").CombinedOutput(); err != nil {
		return fmt.Errorf("build calibre-sweep: %v\n%s", err, out)
	}

	// Reference: the grid uninterrupted.
	fullDir := filepath.Join(dir, "full")
	if out, err := exec.Command(bin, "run", "-grid", gridPath, "-out", fullDir, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("uninterrupted run: %v\n%s", err, out)
	}
	want := make(map[string][]byte, len(artifacts))
	for _, name := range artifacts {
		b, err := os.ReadFile(filepath.Join(fullDir, name))
		if err != nil {
			return fmt.Errorf("uninterrupted run left no %s: %v", name, err)
		}
		want[name] = b
	}
	if !bytes.Contains(want["sweep-report.md"], []byte("## Hostile fairness")) {
		return fmt.Errorf("sweep-report.md lacks the hostile-fairness table:\n%s", want["sweep-report.md"])
	}

	// Kill: same grid, SIGINT the moment the plan is printed, before the
	// first cell can finish.
	killDir := filepath.Join(dir, "killed")
	cmd := exec.Command(bin, "run", "-grid", gridPath, "-out", killDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	planned := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stdout)
		once := false
		for sc.Scan() {
			if !once && strings.HasPrefix(sc.Text(), "plan:") {
				once = true
				close(planned)
			}
		}
	}()
	<-planned
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		return fmt.Errorf("signal sweep: %v", err)
	}
	if err := cmd.Wait(); err == nil {
		return fmt.Errorf("interrupted sweep exited zero; the kill never landed")
	}

	// Resume: must complete and reproduce the reference bytes.
	if out, err := exec.Command(bin, "resume", "-grid", gridPath, "-out", killDir, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("resume: %v\n%s", err, out)
	}
	for _, name := range artifacts {
		got, err := os.ReadFile(filepath.Join(killDir, name))
		if err != nil {
			return fmt.Errorf("resume left no %s: %v", name, err)
		}
		if !bytes.Equal(got, want[name]) {
			return fmt.Errorf("%s differs between the uninterrupted and the killed-and-resumed sweep", name)
		}
	}
	fmt.Printf("hostilesmoke: 4 hostile cells, kill+resume byte-identical across %d artifacts\n", len(artifacts))
	return nil
}
