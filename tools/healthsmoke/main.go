// Command healthsmoke is the CI gate for the health plane, run by ci.sh.
// It drives a seeded 30%-sign-flip federation (10 clients, 3 compromised)
// with a health monitor, metrics registry and flight recorder attached,
// then checks the whole detection story end to end:
//
//   - calibre-doctor replay and live modes both report EXACTLY the seeded
//     compromised client set, plus a loss-divergence alert (the poisoned
//     aggregate drags the global model away from its optimum).
//   - The honest twin federation raises zero alerts.
//   - Detector output is bit-identical across two runs and across kernel
//     worker counts: trace bytes, live diagnoses and doctor reports.
//   - The instrumented run's training outcome is bit-identical to a bare
//     run's — the health plane observes, never perturbs.
//
// The federation uses a controlled trainer (honest clients pull the
// global toward zero at an ID-keyed rate and report the global's mean
// magnitude as loss) so the honest twin is provably quiet and the
// attack's signature — update norms ~9× the honest cohort, a global that
// grows instead of shrinking — is exact rather than statistical.
//
//	go run ./tools/healthsmoke
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/trace"
)

const (
	numClients = 10
	rounds     = 12
	seed       = 7
)

// doctorTrainer pulls the global toward zero at an ID-keyed rate and
// reports the global's mean magnitude as loss. Honest federations
// converge (shrinking loss, tight ID-spread norm cohort); a sign-flip
// attacker's reflected update pushes the global outward, so the poisoned
// aggregate GROWS — the loss stream diverges and compromised norms sit
// ~scale× outside the honest spread.
type doctorTrainer struct{}

func (doctorTrainer) Train(ctx context.Context, _ *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eta := 0.1 + 0.005*float64(c.ID)
	params := make(param.Vector, len(global))
	var loss float64
	for i, v := range global {
		params[i] = (1 - eta) * v
		loss += math.Abs(v)
	}
	loss /= float64(len(global))
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(), TrainLoss: loss}, nil
}

type noPersonalizer struct{}

func (noPersonalizer) Personalize(ctx context.Context, _ *rand.Rand, c *partition.Client, _ param.Vector) (float64, error) {
	return 0, nil
}

func method() *fl.Method {
	return &fl.Method{
		Name:         "healthsmoke",
		Trainer:      doctorTrainer{},
		Aggregator:   fl.WeightedAverage{},
		Personalizer: noPersonalizer{},
		InitGlobal: func(*rand.Rand) (param.Vector, error) {
			g := make(param.Vector, 4)
			for i := range g {
				g[i] = 1
			}
			return g, nil
		},
	}
}

func buildClients() ([]*partition.Client, error) {
	g, err := data.NewGenerator(data.CIFAR10Spec(), 1)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 40)
	parts, err := partition.IID(rng, ds, numClients, 20)
	if err != nil {
		return nil, err
	}
	return partition.BuildClients(rng, ds, parts, nil), nil
}

// runOutcome is everything one federation run produces that the gate
// compares.
type runOutcome struct {
	global  param.Vector
	history []fl.RoundStats
	diag    health.Diagnosis
	reg     *obs.Registry
}

// runFed runs the seeded federation. hostile attaches the 30% sign-flip
// adversary; tracePath (when nonempty) attaches a deterministic flight
// recorder; monitored attaches a monitor + ring registry.
func runFed(clients []*partition.Client, hostile, monitored bool, tracePath string, kernelWorkers int) (*runOutcome, error) {
	cfg := fl.SimConfig{
		Rounds: rounds, ClientsPerRound: numClients, Seed: seed,
		Parallelism: 1, KernelWorkers: kernelWorkers,
	}
	if hostile {
		cfg.Adversary = &fl.Adversary{Kind: fl.AdvSignFlip, Scale: 9, Frac: 0.3}
	}
	out := &runOutcome{}
	var mon *health.Monitor
	if monitored {
		mon = health.NewMonitor(nil)
		out.reg = obs.NewRegistryWithRing(rounds + 4)
		cfg.Health = mon
		cfg.Obs = out.reg
	}
	var rec *trace.Recorder
	if tracePath != "" {
		sink, err := trace.OpenFile(tracePath, trace.FileOptions{})
		if err != nil {
			return nil, err
		}
		rec = trace.New(sink, trace.Config{Clock: trace.StepClock(1)})
		cfg.Recorder = rec
	}
	sim, err := fl.NewSimulator(cfg, method(), clients)
	if err != nil {
		return nil, err
	}
	out.global, out.history, err = sim.Run(context.Background())
	if err != nil {
		return nil, err
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return nil, err
		}
	}
	out.diag = mon.Diagnosis()
	return out, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "healthsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("healthsmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "calibre-healthsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	doctor := filepath.Join(dir, "calibre-doctor")
	if out, err := exec.Command("go", "build", "-o", doctor, "./cmd/calibre-doctor").CombinedOutput(); err != nil {
		return fmt.Errorf("build calibre-doctor: %v\n%s", err, out)
	}
	clients, err := buildClients()
	if err != nil {
		return err
	}
	want := (&fl.Adversary{Kind: fl.AdvSignFlip, Scale: 9, Frac: 0.3}).Malicious(seed, numClients)

	// Reference hostile run, instrumented head to toe.
	h1 := filepath.Join(dir, "hostile1.trace")
	ref, err := runFed(clients, true, true, h1, 1)
	if err != nil {
		return fmt.Errorf("hostile run: %v", err)
	}
	if !reflect.DeepEqual(ref.diag.Suspects, want) {
		return fmt.Errorf("live monitor suspects = %v, want the compromised set %v", ref.diag.Suspects, want)
	}
	if !hasRule(ref.diag, "loss-divergence") {
		return fmt.Errorf("poisoned aggregate raised no loss-divergence alert: %+v", ref.diag.Alerts)
	}

	// Bit-identity: a second run, and a run with a resized kernel pool,
	// must reproduce the trace byte for byte (the diagnosis rides along).
	h2 := filepath.Join(dir, "hostile2.trace")
	rerun, err := runFed(clients, true, true, h2, 1)
	if err != nil {
		return fmt.Errorf("hostile rerun: %v", err)
	}
	if !reflect.DeepEqual(rerun.diag, ref.diag) {
		return fmt.Errorf("diagnosis drifted between two identical runs")
	}
	if err := sameBytes(h1, h2, "two identical hostile runs"); err != nil {
		return err
	}
	h4 := filepath.Join(dir, "hostile-kw4.trace")
	kw4, err := runFed(clients, true, true, h4, 4)
	if err != nil {
		return fmt.Errorf("hostile kernel-workers=4 run: %v", err)
	}
	if !reflect.DeepEqual(kw4.diag, ref.diag) {
		return fmt.Errorf("diagnosis drifted at kernel-workers=4")
	}
	if err := sameBytes(h1, h4, "kernel-workers 1 vs 4"); err != nil {
		return err
	}

	// Observation never perturbs: a bare run (no monitor, registry or
	// recorder) trains to the exact same model and history.
	bare, err := runFed(clients, true, false, "", 1)
	if err != nil {
		return fmt.Errorf("bare run: %v", err)
	}
	if !reflect.DeepEqual(bare.global, ref.global) || !reflect.DeepEqual(bare.history, ref.history) {
		return fmt.Errorf("instrumented run diverged from bare run")
	}

	// Honest twin: same federation, no adversary, nothing to report.
	honestTrace := filepath.Join(dir, "honest.trace")
	honest, err := runFed(clients, false, true, honestTrace, 1)
	if err != nil {
		return fmt.Errorf("honest run: %v", err)
	}
	if len(honest.diag.Alerts) != 0 || len(honest.diag.Suspects) != 0 || honest.diag.Critical != 0 {
		return fmt.Errorf("honest twin raised alerts: %+v", honest.diag)
	}

	// Doctor replay: exact suspect line, divergence alert, deterministic
	// bytes across invocations.
	replay1, err := exec.Command(doctor, "replay", h1).Output()
	if err != nil {
		return fmt.Errorf("doctor replay: %v", err)
	}
	suspectLine := "suspects: [" + joinInts(want) + "]"
	for _, needle := range []string{suspectLine, "loss-divergence", "suspected adversary"} {
		if !bytes.Contains(replay1, []byte(needle)) {
			return fmt.Errorf("doctor replay report lacks %q:\n%s", needle, replay1)
		}
	}
	replay2, err := exec.Command(doctor, "replay", h1).Output()
	if err != nil {
		return fmt.Errorf("doctor replay (second): %v", err)
	}
	if !bytes.Equal(replay1, replay2) {
		return fmt.Errorf("two doctor replays of the same trace differ")
	}

	// Replay reproduces the live monitor's diagnosis exactly.
	replayJSON, err := exec.Command(doctor, "replay", h1, "-json").Output()
	if err != nil {
		return fmt.Errorf("doctor replay -json: %v", err)
	}
	var replayed health.Diagnosis
	if err := json.Unmarshal(replayJSON, &replayed); err != nil {
		return fmt.Errorf("doctor replay -json output: %v", err)
	}
	if !reflect.DeepEqual(replayed, ref.diag) {
		return fmt.Errorf("doctor replay diagnosis diverges from the live monitor's:\nreplay: %+v\nlive:   %+v", replayed, ref.diag)
	}

	// The honest twin's replay is explicitly clean.
	honestOut, err := exec.Command(doctor, "replay", honestTrace).Output()
	if err != nil {
		return fmt.Errorf("doctor replay honest: %v", err)
	}
	if !bytes.Contains(honestOut, []byte("no alerts — federation healthy")) {
		return fmt.Errorf("honest twin replay not clean:\n%s", honestOut)
	}

	// Doctor live: poll the reference run's real /metrics endpoint and
	// reach the same verdict.
	srv, addr, err := obs.Serve("127.0.0.1:0", ref.reg)
	if err != nil {
		return err
	}
	defer srv.Close()
	liveJSON, err := exec.Command(doctor, "live", "-addr", addr.String(), "-once", "-json").Output()
	if err != nil {
		return fmt.Errorf("doctor live: %v", err)
	}
	var liveDiag health.Diagnosis
	if err := json.Unmarshal(liveJSON, &liveDiag); err != nil {
		return fmt.Errorf("doctor live -json output: %v", err)
	}
	if !reflect.DeepEqual(liveDiag, ref.diag) {
		return fmt.Errorf("doctor live diagnosis diverges from the in-process monitor's:\nlive-cli: %+v\nmonitor:  %+v", liveDiag, ref.diag)
	}

	fmt.Printf("healthsmoke: doctor flagged exactly %v live+replay, honest twin quiet, traces bit-identical across runs and kernel pools\n", want)
	return nil
}

// hasRule reports whether the diagnosis carries an alert for rule.
func hasRule(d health.Diagnosis, rule string) bool {
	for _, a := range d.Alerts {
		if a.Rule == rule {
			return true
		}
	}
	return false
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, " ")
}

func sameBytes(a, b, what string) error {
	ab, err := os.ReadFile(a)
	if err != nil {
		return err
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(ab, bb) {
		return fmt.Errorf("trace bytes differ between %s", what)
	}
	return nil
}
