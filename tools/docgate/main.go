// Command docgate is the repo's documentation gate, run by ci.sh. It fails
// when any gated package — the root calibre package and everything under
// internal/ (including cmd/internal/) — lacks a godoc package comment, or
// when the repo as a whole has fewer runnable Example functions (doc +
// test in one, with an // Output: comment) than the required minimum.
//
//	go run ./tools/docgate [-min-examples 3] [root]
package main

import (
	"flag"
	"fmt"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	minExamples := flag.Int("min-examples", 3, "minimum number of runnable Example functions repo-wide")
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	if err := run(root, *minExamples); err != nil {
		fmt.Fprintln(os.Stderr, "docgate:", err)
		os.Exit(1)
	}
}

// gated reports whether the package at rel (slash-separated, "." for the
// repo root) must carry a package comment.
func gated(rel string) bool {
	if rel == "." {
		return true
	}
	return strings.HasPrefix(rel, "internal/") || rel == "internal" ||
		strings.HasPrefix(rel, "cmd/internal/")
}

func run(root string, minExamples int) error {
	var missing []string
	examples := 0

	// Collect every directory containing Go files.
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && strings.HasPrefix(d.Name(), ".") {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return err
	}

	sorted := make([]string, 0, len(dirs))
	for dir := range dirs {
		sorted = append(sorted, dir)
	}
	sort.Strings(sorted)

	for _, dir := range sorted {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		fset := token.NewFileSet()
		hasDoc := false
		hasNonTest := false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("%s: %w", filepath.Join(rel, e.Name()), err)
			}
			if strings.HasSuffix(e.Name(), "_test.go") {
				for _, ex := range doc.Examples(file) {
					if ex.Output != "" {
						examples++
					}
				}
				continue
			}
			hasNonTest = true
			if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
				hasDoc = true
			}
		}
		if hasNonTest && gated(rel) && !hasDoc {
			missing = append(missing, rel)
		}
	}

	if len(missing) > 0 {
		return fmt.Errorf("packages missing a godoc package comment:\n\t%s", strings.Join(missing, "\n\t"))
	}
	if examples < minExamples {
		return fmt.Errorf("found %d runnable Example functions (with // Output:), need ≥ %d", examples, minExamples)
	}
	fmt.Printf("docgate: all gated packages documented; %d runnable examples (≥ %d required)\n", examples, minExamples)
	return nil
}
