package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"calibre/cmd/internal/climain"
	"calibre/internal/experiments"
	"calibre/internal/flnet"
	"calibre/internal/obs"
)

// freePort reserves an ephemeral localhost port and releases it for the
// server under test to rebind. The tiny reuse race is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialClientWithRetry runs a flnet client, retrying while the server under
// test is still binding its listener.
func dialClientWithRetry(ctx context.Context, cfg flnet.ClientConfig) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := flnet.RunClient(ctx, cfg)
		if err == nil || !strings.Contains(err.Error(), "dial") || time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServerSmokeFederation drives the real calibre-server run() entry
// point through one federated round against in-process flnet clients built
// from the same deterministic experiment world.
func TestServerSmokeFederation(t *testing.T) {
	const (
		setting = "cifar10-q(2,500)"
		seed    = 7
		n       = 2
	)
	addr := freePort(t)

	s, ok := experiments.Settings()[setting]
	if !ok {
		t.Fatalf("setting %q missing", setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.ScaleSmoke, seed)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	m, err := experiments.BuildMethod(env, "fedavg-ft")
	if err != nil {
		t.Fatalf("BuildMethod: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	clientErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			clientErrs[id] = dialClientWithRetry(ctx, flnet.ClientConfig{
				Addr:         addr,
				ClientID:     id,
				Data:         env.Participants[id],
				Trainer:      m.Trainer,
				Personalizer: m.Personalizer,
				Seed:         seed,
				IOTimeout:    30 * time.Second,
			})
		}(i)
	}

	// Scrape the live -metrics-addr endpoint for the whole run: /metrics
	// must be curl-able while the federation executes, and the round
	// counter must tick once round 0 closes. The run spans two rounds so
	// the scraper has the entire second round — not just the teardown
	// window — to observe a non-zero counter.
	maddr := freePort(t)
	runDone := make(chan struct{})
	var scrapes, maxRounds int64
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		client := &http.Client{Timeout: 2 * time.Second}
		for {
			select {
			case <-runDone:
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := client.Get("http://" + maddr + "/metrics")
			if err != nil {
				continue
			}
			var snap obs.Snapshot
			decErr := json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if decErr != nil {
				continue
			}
			scrapes++
			if n := snap.Counters[obs.CounterRounds]; n > maxRounds {
				maxRounds = n
			}
		}
	}()

	out := climain.CaptureStdout(t, func() error {
		return run([]string{
			"-addr", addr, "-clients", "2", "-rounds", "2", "-per-round", "2",
			"-method", "fedavg-ft", "-setting", setting, "-scale", "smoke", "-seed", "7",
			"-metrics-addr", maddr,
		})
	})
	close(runDone)
	scraperWG.Wait()
	wg.Wait()
	for id, cerr := range clientErrs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	for _, needle := range []string{"round 0:", "personalized accuracy", "summary:", "metrics: listening on"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("server output missing %q:\n%s", needle, out)
		}
	}
	if scrapes == 0 {
		t.Fatal("metrics endpoint was never scrapeable during the run")
	}
	if maxRounds < 1 {
		t.Fatalf("scraper saw rounds_total max %d, want >= 1", maxRounds)
	}
}

// TestServerCheckpointResumeFederation runs a federation with
// -checkpoint-dir, then a second server with -resume and a higher round
// budget: it must pick up the snapshot and continue instead of starting
// over.
func TestServerCheckpointResumeFederation(t *testing.T) {
	const (
		setting = "cifar10-q(2,500)"
		seed    = 7
		n       = 2
	)
	ckptDir := t.TempDir()
	s, ok := experiments.Settings()[setting]
	if !ok {
		t.Fatalf("setting %q missing", setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.ScaleSmoke, seed)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	m, err := experiments.BuildMethod(env, "fedavg-ft")
	if err != nil {
		t.Fatalf("BuildMethod: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	phase := func(rounds string, resume bool) string {
		addr := freePort(t)
		var wg sync.WaitGroup
		clientErrs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				clientErrs[id] = dialClientWithRetry(ctx, flnet.ClientConfig{
					Addr:         addr,
					ClientID:     id,
					Data:         env.Participants[id],
					Trainer:      m.Trainer,
					Personalizer: m.Personalizer,
					Seed:         seed,
					IOTimeout:    30 * time.Second,
				})
			}(i)
		}
		args := []string{
			"-addr", addr, "-clients", "2", "-rounds", rounds, "-per-round", "2",
			"-method", "fedavg-ft", "-setting", setting, "-scale", "smoke", "-seed", "7",
			"-checkpoint-dir", ckptDir,
		}
		if resume {
			args = append(args, "-resume")
		}
		out := climain.CaptureStdout(t, func() error { return run(args) })
		wg.Wait()
		for id, cerr := range clientErrs {
			if cerr != nil {
				t.Fatalf("client %d: %v", id, cerr)
			}
		}
		return out
	}

	out := phase("1", false)
	if !strings.Contains(out, "checkpoint v1 saved at round 1") {
		t.Fatalf("phase 1 did not checkpoint:\n%s", out)
	}
	out = phase("2", true)
	if !strings.Contains(out, "resuming from checkpoint v1 (round 1/2)") {
		t.Fatalf("phase 2 did not resume:\n%s", out)
	}
	if strings.Contains(out, "round 0:") {
		t.Fatalf("resumed run re-ran round 0:\n%s", out)
	}
	for _, needle := range []string{"round 1:", "personalized accuracy", "summary:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("resumed output missing %q:\n%s", needle, out)
		}
	}
}

func TestServerRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-setting", "nope"}); err == nil {
		t.Fatal("unknown setting accepted")
	}
	if err := run([]string{"-resume"}); err == nil {
		t.Fatal("-resume without -checkpoint-dir accepted")
	}
	if err := run([]string{"-method", "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-straggler", "nope"}); err == nil {
		t.Fatal("unknown straggler policy accepted")
	}
	if err := run([]string{"-per-round", "2", "-quorum", "3", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("quorum above per-round accepted")
	}
	if err := run([]string{"-deadline", "-1s", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("negative deadline accepted")
	}
}
