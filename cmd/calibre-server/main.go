// Command calibre-server runs the federated server side of a real
// networked federation (TCP + gob). Clients connect with calibre-client.
//
// Server and clients derive the same deterministic experiment world from
// (-setting, -scale, -seed), mirroring how each real deployment site would
// hold its own shard; the server itself never touches client data.
//
// Example (one server, three clients):
//
//	calibre-server -addr :9100 -clients 3 -rounds 5 -per-round 2 -method calibre-simclr
//	calibre-client -addr 127.0.0.1:9100 -id 0 -method calibre-simclr
//	calibre-client -addr 127.0.0.1:9100 -id 1 -method calibre-simclr
//	calibre-client -addr 127.0.0.1:9100 -id 2 -method calibre-simclr
//
// With -checkpoint-dir the server snapshots its round state durably
// (atomic versioned files, see internal/store) and a killed server can be
// restarted with -resume to continue the federation from the latest
// snapshot once its clients redial — bit-identically, when every
// participant responds. Methods that keep cross-round client state beyond
// the global vector (fedema, fedper/fedrep/fedbabu/lg-fedavg, scaffold,
// apfl, ditto, and the byol/mocov2 SSL flavors) cannot be resumed and
// -resume refuses them. Inspect snapshots with calibre-ckpt.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"calibre/internal/eval"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/flnet"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/store"
	"calibre/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-server", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":9100", "listen address")
		clients    = fs.Int("clients", 3, "number of clients that must join before training (late joiners admitted afterwards)")
		rounds     = fs.Int("rounds", 5, "federated rounds")
		perRound   = fs.Int("per-round", 2, "clients sampled per round")
		method     = fs.String("method", "calibre-simclr", "method name (see calibre-bench -list)")
		setting    = fs.String("setting", "cifar10-q(2,500)", "experiment setting")
		scale      = fs.String("scale", "smoke", "scale preset: smoke | ci | paper")
		seed       = fs.Int64("seed", 42, "master seed (must match clients)")
		quorum     = fs.Int("quorum", 0, "min updates to close a round at the deadline (K of N); 0 waits for all")
		deadline   = fs.Duration("deadline", 0, "per-round collection deadline; 0 waits for all participants")
		straggler  = fs.String("straggler", "requeue", "straggler policy at the deadline: requeue | drop")
		ckptDir    = fs.String("checkpoint-dir", "", "durable checkpoint directory; snapshots round state for crash recovery")
		ckptEvery  = fs.Int("checkpoint-every", 1, "rounds between checkpoints when -checkpoint-dir is set")
		ckptDelta  = fs.Bool("checkpoint-incremental", false, "encode checkpoints as lossless deltas against the previous version (full-snapshot fallback; see calibre-ckpt list)")
		resume     = fs.Bool("resume", false, "resume from the latest matching checkpoint in -checkpoint-dir (fresh start when none exists)")
		wire       = fs.String("update-wire", "delta", "client update encoding advertised at join: delta (compressed, lossless) | dense")
		aggSpec    = fs.String("aggregator", "", "robust aggregator override: mean | median | trimmed(frac) | krum(f); empty keeps the method's own")
		traceSpec  = fs.String("trace", "", "seeded availability trace, e.g. diurnal(0.1,0.6,8) | flash(0,0.8,2,2) | markov(0,0.3,0.5); empty means always available")
		metrics    = fs.String("metrics-addr", "", "serve live metrics on this host:port (/metrics JSON, /metrics/prom text); port 0 picks a free one")
		healthSpec = fs.String("health", "", `streaming anomaly detection rules: "default", "all", or a spec like "non-finite,norm-z(3.5,2)" (see internal/health); alerts print live and /healthz serves the diagnosis on -metrics-addr; empty disables`)
		traceOut   = fs.String("trace-out", "", "append flight-recorder events (length-prefixed JSONL) to this file; inspect with calibre-trace")
		traceRot   = fs.Int64("trace-rotate-bytes", 0, "rotate the -trace-out file when it would exceed this size (keeps 3 generations); 0 disables rotation")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this host:port; port 0 picks a free one")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptDir == "" {
		return errors.New("-resume requires -checkpoint-dir")
	}
	policy, err := fl.ParseStragglerPolicy(*straggler)
	if err != nil {
		return err
	}
	updateWire, err := flnet.ParseUpdateWire(*wire)
	if err != nil {
		return err
	}
	s, ok := experiments.Settings()[*setting]
	if !ok {
		return fmt.Errorf("unknown setting %q", *setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	m, err := experiments.BuildMethod(env, *method)
	if err != nil {
		return err
	}
	if *aggSpec != "" && *aggSpec != "mean" {
		agg, err := fl.ParseAggregator(*aggSpec)
		if err != nil {
			return err
		}
		m.Aggregator = agg
	}
	avail, err := fl.ParseTrace(*traceSpec)
	if err != nil {
		return err
	}
	var mon *health.Monitor
	if *healthSpec != "" {
		hc, err := health.ParseRules(*healthSpec)
		if err != nil {
			return err
		}
		mon = health.NewMonitor(&hc)
	}
	cfg := flnet.ServerConfig{
		Addr:            *addr,
		NumClients:      *clients,
		Rounds:          *rounds,
		ClientsPerRound: *perRound,
		Seed:            *seed,
		Aggregator:      m.Aggregator,
		InitGlobal:      m.InitGlobal,
		Quorum:          *quorum,
		RoundDeadline:   *deadline,
		Straggler:       policy,
		UpdateWire:      updateWire,
		Trace:           avail,
		OnRound: func(stats fl.RoundStats) {
			fmt.Println(stats)
		},
	}
	if mon != nil {
		cfg.Health = mon
		cfg.OnAlert = func(a health.Alert) { fmt.Println(a) }
	}
	if *ckptDir != "" {
		// Client-side trainer state is invisible to flnet's own validation,
		// so the statefulness check happens here, where the full method is
		// in hand: resuming a stateful method would silently diverge.
		if !fl.Resumable(m) {
			if *resume {
				return fmt.Errorf("method %s: %w", *method, fl.ErrStatefulResume)
			}
			fmt.Printf("warning: method %s carries cross-round state; snapshots stay inspectable (calibre-ckpt) but -resume will be refused\n", *method)
		}
		ckpt, err := store.Open(*ckptDir)
		if err != nil {
			return err
		}
		// Incremental encoding changes only how snapshots are stored, never
		// what they resolve to, so it is safe to flip between restarts.
		ckpt.SetIncremental(*ckptDelta)
		// The fingerprint binds snapshots to the run-defining knobs (round
		// budget excluded: -resume legitimately extends it), so -resume can
		// never silently continue a differently-configured federation.
		fp := store.Fingerprint("server", *method, *setting, *scale,
			fmt.Sprint(*seed), fmt.Sprint(*clients), fmt.Sprint(*perRound),
			fmt.Sprint(*quorum), deadline.String(), policy.String(),
			fmt.Sprint(m.Aggregator), avail.String())
		cfg.CheckpointEvery = *ckptEvery
		cfg.OnCheckpoint = ckpt.SaveHook(
			store.Meta{Seed: *seed, Fingerprint: fp, Runtime: "server"},
			func(v int, state *fl.SimState) {
				fmt.Printf("checkpoint v%d saved at round %d\n", v, state.Round)
			})
		if *resume {
			snap, v, err := ckpt.Resume(fp)
			switch {
			case errors.Is(err, store.ErrNoCheckpoint):
				fmt.Printf("no checkpoint in %s; starting fresh\n", *ckptDir)
			case err != nil:
				return err
			default:
				cfg.ResumeFrom = &snap.State
				fmt.Printf("resuming from checkpoint v%d (round %d/%d)\n", v, snap.State.Round, *rounds)
			}
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *traceOut != "" {
		sink, err := trace.OpenFile(*traceOut, trace.FileOptions{RotateBytes: *traceRot})
		if err != nil {
			return err
		}
		rec := trace.New(sink, trace.Config{})
		cfg.Recorder = rec
		// Close flushes the ring; a sink error (full disk, rotation
		// failure) is sticky and surfaces here without having failed the
		// federation itself.
		defer func() {
			if err := rec.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			}
		}()
		fmt.Printf("trace: recording to %s\n", *traceOut)
	}
	if *pprofAddr != "" {
		psrv, paddr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return err
		}
		fmt.Printf("pprof: listening on http://%s/debug/pprof/\n", paddr)
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = psrv.Shutdown(shCtx)
		}()
	}
	if *metrics != "" {
		reg := obs.NewRegistry()
		cfg.Obs = reg
		// The health handler wraps the metrics handler: /healthz and
		// /healthz/prom answer from the monitor (404 without -health),
		// everything else falls through to /metrics.
		msrv, maddr, err := obs.ServeHandler(*metrics, health.Handler(mon, obs.Handler(reg)))
		if err != nil {
			return err
		}
		fmt.Printf("metrics: listening on http://%s/metrics\n", maddr)
		if mon != nil {
			fmt.Printf("health: diagnosis on http://%s/healthz\n", maddr)
		}
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = msrv.Shutdown(shCtx)
		}()
	}
	srv, err := flnet.NewServer(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("listening on %s; waiting for %d clients (method %s, setting %s)\n",
		srv.Addr(), *clients, *method, *setting)
	res, err := srv.Run(ctx)
	if err != nil {
		if ctx.Err() != nil {
			// Checkpoints for completed rounds are already flushed (the
			// save hook runs before OnRound); stop() restores default
			// signal handling so a second ^C force-kills.
			stop()
			if *ckptDir != "" {
				fmt.Fprintf(os.Stderr, "interrupted; completed rounds are checkpointed — restart with `calibre-server -resume -checkpoint-dir %s ...` to continue\n", *ckptDir)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted; run with -checkpoint-dir to make the federation resumable")
			}
		}
		return err
	}
	ids := make([]int, 0, len(res.Accuracies))
	accs := make([]float64, 0, len(res.Accuracies))
	for id := range res.Accuracies {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("client %d personalized accuracy: %.4f\n", id, res.Accuracies[id])
		accs = append(accs, res.Accuracies[id])
	}
	fmt.Println("summary:", eval.Summarize(accs))
	return nil
}
