package main

// The trace harness (-exp trace) is the reproducible perf gate for the
// flight recorder: it measures raw event throughput through the
// ring+encode+sink path, and the end-to-end overhead a live recorder adds
// to an instrumented federation versus a bare one, emitting
// BENCH_trace.json. The recorder's no-perturbation contract (traced runs
// are bit-identical to bare ones) is pinned by tests in internal/fl and
// internal/flnet; this harness only measures time.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/trace"
)

// TraceBenchSchema identifies the BENCH_trace.json layout.
const TraceBenchSchema = "calibre/bench-trace/v1"

// TraceBenchFile is the top-level layout of BENCH_trace.json.
type TraceBenchFile struct {
	Schema     string          `json:"schema"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMaxProcs int             `json:"gomaxprocs"`
	Emit       TraceBenchEmit  `json:"emit"`
	Round      TraceBenchRound `json:"round"`
}

// TraceBenchEmit measures the hot path in isolation: Emit through the
// ring, batch-encoded into a byte-counting sink.
type TraceBenchEmit struct {
	Events        int     `json:"events"`
	WallMS        int64   `json:"wall_ms"`
	EventsPerSec  float64 `json:"events_per_sec"`
	NsPerEvent    float64 `json:"ns_per_event"`
	BytesWritten  int64   `json:"bytes_written"`
	BytesPerEvent float64 `json:"bytes_per_event"`
}

// TraceBenchRound measures a fully instrumented federation against a bare
// one: the same smoke-scale fedavg simulation with and without a live
// recorder. OverheadNsPerRound may be slightly negative on a noisy host —
// the recorder's cost is below scheduler jitter at smoke scale.
type TraceBenchRound struct {
	Reps               int   `json:"reps"`
	RoundsPerRun       int   `json:"rounds_per_run"`
	BareMS             int64 `json:"bare_ms"`
	TracedMS           int64 `json:"traced_ms"`
	EventsPerRun       int   `json:"events_per_run"`
	OverheadNsPerRound int64 `json:"overhead_ns_per_round"`
}

// countSink counts bytes and records (one trailing newline per record; the
// JSON bodies escape interior newlines, so the count is exact).
type countSink struct {
	bytes   int64
	records int64
}

func (s *countSink) Write(p []byte) (int, error) {
	s.bytes += int64(len(p))
	s.records += int64(bytes.Count(p, []byte{'\n'}))
	return len(p), nil
}

// runTraceBench measures the flight recorder and writes BENCH_trace.json
// into outDir.
func runTraceBench(outDir string, quick bool) error {
	file := TraceBenchFile{
		Schema:     TraceBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("trace bench: %s/%s gomaxprocs=%d\n", file.GOOS, file.GOARCH, file.GOMaxProcs)

	// Stage 1: raw Emit throughput. A representative client_update event
	// (the most field-heavy producer) through a defaulted ring into a
	// counting sink.
	events := 2_000_000
	if quick {
		events = 250_000
	}
	sink := &countSink{}
	rec := trace.New(sink, trace.Config{})
	ev := trace.Event{
		Kind: trace.KindClientUpdate, Runtime: "sim", Round: 3, Client: 17,
		Wire: "delta", Bytes: 4096, Dur: 1_500_000, Loss: 0.4375,
	}
	start := time.Now()
	for i := 0; i < events; i++ {
		ev.TS = int64(i)
		rec.Emit(ev)
	}
	if err := rec.Close(); err != nil {
		return err
	}
	wall := time.Since(start)
	file.Emit = TraceBenchEmit{
		Events:        events,
		WallMS:        wall.Milliseconds(),
		EventsPerSec:  float64(events) / wall.Seconds(),
		NsPerEvent:    float64(wall.Nanoseconds()) / float64(events),
		BytesWritten:  sink.bytes,
		BytesPerEvent: float64(sink.bytes) / float64(events),
	}
	fmt.Printf("emit: %d events in %s — %.0f events/sec, %.0f ns/event, %.1f bytes/event\n",
		events, wall.Round(time.Millisecond), file.Emit.EventsPerSec, file.Emit.NsPerEvent, file.Emit.BytesPerEvent)

	// Stage 2: instrumented federation overhead. The same smoke fedavg
	// simulation, bare then traced, alternating to spread thermal and
	// cache drift across both sides.
	reps := 6
	if quick {
		reps = 2
	}
	setting, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		return fmt.Errorf("trace bench: setting cifar10-q(2,500) missing")
	}
	runOnce := func(rec *trace.Recorder) (int, error) {
		env, err := experiments.BuildEnvironment(setting, experiments.ScaleSmoke, 1)
		if err != nil {
			return 0, err
		}
		m, err := experiments.BuildMethod(env, "fedavg")
		if err != nil {
			return 0, err
		}
		out, err := experiments.RunBuiltMethodWith(context.Background(), env, m, func(cfg *fl.SimConfig) {
			cfg.Recorder = rec
		})
		if err != nil {
			return 0, err
		}
		return len(out.History), nil
	}
	var bare, traced time.Duration
	rounds, eventsPerRun := 0, 0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		r, err := runOnce(nil)
		if err != nil {
			return fmt.Errorf("trace bench bare run: %w", err)
		}
		bare += time.Since(t0)
		rounds = r

		simSink := &countSink{}
		simRec := trace.New(simSink, trace.Config{})
		t1 := time.Now()
		if _, err := runOnce(simRec); err != nil {
			return fmt.Errorf("trace bench traced run: %w", err)
		}
		if err := simRec.Close(); err != nil {
			return err
		}
		traced += time.Since(t1)
		eventsPerRun = int(simSink.records)
	}
	totalRounds := rounds * reps
	file.Round = TraceBenchRound{
		Reps:               reps,
		RoundsPerRun:       rounds,
		BareMS:             bare.Milliseconds(),
		TracedMS:           traced.Milliseconds(),
		EventsPerRun:       eventsPerRun,
		OverheadNsPerRound: (traced - bare).Nanoseconds() / int64(totalRounds),
	}
	fmt.Printf("round: %d reps × %d rounds — bare %dms, traced %dms, %d events/run, overhead %dns/round\n",
		reps, rounds, file.Round.BareMS, file.Round.TracedMS, eventsPerRun, file.Round.OverheadNsPerRound)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_trace.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
