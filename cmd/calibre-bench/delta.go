package main

// The delta harness (-exp delta) is the reproducible perf gate for the
// update plane: it measures (a) per-message wire bytes for XOR-delta
// compressed train results against the v1 full-vector gob encoding, on
// synthetic update patterns and on a real method's training trajectory,
// and (b) serial versus shard-parallel aggregation timings, and emits
// BENCH_delta.json so both trajectories are tracked in-repo. The JSON
// schema is validated by the cmd smoke tests.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/flnet"
	"calibre/internal/param"
	"calibre/internal/tensor"
)

// DeltaBenchSchema identifies the BENCH_delta.json layout.
const DeltaBenchSchema = "calibre/bench-delta/v1"

// DeltaBenchFile is the top-level layout of BENCH_delta.json.
type DeltaBenchFile struct {
	Schema     string             `json:"schema"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMaxProcs int                `json:"gomaxprocs"`
	Workers    int                `json:"workers"`
	Note       string             `json:"note,omitempty"`
	Wire       []DeltaWireRecord  `json:"wire"`
	Rounds     []DeltaRoundRecord `json:"rounds"`
	Aggregate  []DeltaAggRecord   `json:"aggregation"`
}

// DeltaWireRecord measures one synthetic update pattern through the wire:
// steady-state gob bytes per train-result message, dense vs delta, plus
// codec throughput. ShipsDelta reports the sender-side fallback decision
// (a delta no smaller than the dense form ships dense), and WireBytes is
// what the v2 protocol actually puts on the wire after it.
type DeltaWireRecord struct {
	Pattern     string  `json:"pattern"`
	Elems       int     `json:"elems"`
	DenseBytes  int     `json:"dense_gob_bytes_msg"`
	DeltaBytes  int     `json:"delta_gob_bytes_msg"`
	DeltaBits   int     `json:"delta_payload_bytes"`
	ShipsDelta  bool    `json:"ships_delta"`
	WireBytes   int     `json:"wire_bytes_msg"`
	Ratio       float64 `json:"dense_over_wire"`
	EncNsOp     int64   `json:"delta_encode_ns_op"`
	DecNsOp     int64   `json:"delta_decode_ns_op"`
	ChangedFrac float64 `json:"changed_frac"`
}

// DeltaRoundRecord is one round of a real method's federation: total
// uplink bytes with v1 dense gob versus the v2 delta wire.
type DeltaRoundRecord struct {
	Method     string  `json:"method"`
	Round      int     `json:"round"`
	Updates    int     `json:"updates"`
	Elems      int     `json:"elems"`
	DenseBytes int64   `json:"dense_gob_bytes_round"`
	WireBytes  int64   `json:"wire_bytes_round"`
	Ratio      float64 `json:"dense_over_wire"`
}

// DeltaAggRecord times one aggregator serial (one pool worker) versus
// shard-parallel on the configured pool.
type DeltaAggRecord struct {
	Aggregator string  `json:"aggregator"`
	Elems      int     `json:"elems"`
	Updates    int     `json:"updates"`
	SerialNsOp int64   `json:"serial_ns_op"`
	ShardNsOp  int64   `json:"sharded_ns_op"`
	Speedup    float64 `json:"speedup_vs_serial"`
}

// gobSteadyBytes reports the steady-state gob size of one envelope on a
// long-lived connection: the second encode on the same stream, after the
// type descriptors have traveled once — exactly what each per-round
// train-result costs in flnet.
func gobSteadyBytes(env *flnet.Envelope) int {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(env); err != nil {
		panic(err)
	}
	n1 := buf.Len()
	if err := enc.Encode(env); err != nil {
		panic(err)
	}
	return buf.Len() - n1
}

func trainResultEnvelope(u *fl.Update) *flnet.Envelope {
	return &flnet.Envelope{Type: flnet.MsgTrainResult, ClientID: u.ClientID, Round: 1, Update: u}
}

// wireBytesFor measures what a v2 client ships for update u against ref:
// the delta form when it is smaller, the dense form otherwise.
func wireBytesFor(ref, v param.Vector) (dense, deltaGob, wire int, d *param.Delta) {
	dense = gobSteadyBytes(trainResultEnvelope(&fl.Update{ClientID: 1, Params: v, NumSamples: 10}))
	d, err := param.Diff(ref, v)
	if err != nil {
		panic(err)
	}
	deltaGob = gobSteadyBytes(trainResultEnvelope(&fl.Update{ClientID: 1, Delta: d, NumSamples: 10}))
	wire = dense
	if d.Size() < d.DenseSize() {
		wire = deltaGob
	}
	return dense, deltaGob, wire, d
}

// wirePatterns builds the synthetic update shapes the wire sees in
// practice: SGD steps (every weight nudged), sparse and partial-exchange
// updates (zero runs), an unchanged vector, and the adversarial
// full-entropy case the sender must fall back to dense on.
func wirePatterns(n int) []struct {
	name   string
	ref, v param.Vector
} {
	rng := rand.New(rand.NewSource(42))
	ref := make(param.Vector, n)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	sgd := ref.Clone()
	for i := range sgd {
		sgd[i] += 1e-3 * rng.NormFloat64()
	}
	sparse := ref.Clone()
	for i := 0; i < n; i += 20 {
		sparse[i] = rng.NormFloat64()
	}
	head := ref.Clone()
	for i := 0; i < n/10; i++ {
		head[i] += 1e-3 * rng.NormFloat64()
	}
	random := make(param.Vector, n)
	for i := range random {
		random[i] = math.Float64frombits(rng.Uint64())
	}
	return []struct {
		name   string
		ref, v param.Vector
	}{
		{"sgd-step", ref, sgd},
		{"sparse-5pct", ref, sparse},
		{"head-10pct", ref, head},
		{"unchanged", ref, ref.Clone()},
		{"random-worst-case", ref, random},
	}
}

func benchWire(minTime time.Duration, n int) []DeltaWireRecord {
	var out []DeltaWireRecord
	for _, p := range wirePatterns(n) {
		dense, deltaGob, wire, d := wireBytesFor(p.ref, p.v)
		encNs, _ := measure(minTime, func() {
			if _, err := param.Diff(p.ref, p.v); err != nil {
				panic(err)
			}
		})
		decNs, _ := measure(minTime, func() {
			if _, err := d.Apply(p.ref); err != nil {
				panic(err)
			}
		})
		changed, err := d.Changed()
		if err != nil {
			panic(err)
		}
		out = append(out, DeltaWireRecord{
			Pattern:     p.name,
			Elems:       n,
			DenseBytes:  dense,
			DeltaBytes:  deltaGob,
			DeltaBits:   d.Size(),
			ShipsDelta:  d.Size() < d.DenseSize(),
			WireBytes:   wire,
			Ratio:       float64(dense) / float64(wire),
			EncNsOp:     encNs,
			DecNsOp:     decNs,
			ChangedFrac: float64(changed) / float64(n),
		})
	}
	return out
}

// meteringAggregator wraps a method's aggregator and meters each round's
// uplink: dense gob bytes versus the v2 delta wire (with its dense
// fallback), on the real updates the method produces.
type meteringAggregator struct {
	inner  fl.Aggregator
	method string
	rounds []DeltaRoundRecord
}

func (m *meteringAggregator) Aggregate(global param.Vector, updates []*fl.Update) (param.Vector, error) {
	rec := DeltaRoundRecord{Method: m.method, Round: len(m.rounds), Updates: len(updates), Elems: len(global)}
	for _, u := range updates {
		dense, _, wire, _ := wireBytesFor(global, u.Params)
		rec.DenseBytes += int64(dense)
		rec.WireBytes += int64(wire)
	}
	rec.Ratio = float64(rec.DenseBytes) / float64(rec.WireBytes)
	m.rounds = append(m.rounds, rec)
	return m.inner.Aggregate(global, updates)
}

// benchRealRounds runs a short real federation (calibre-simclr at smoke
// scale) and meters every round's uplink through the wire encoder.
func benchRealRounds(seed int64) ([]DeltaRoundRecord, error) {
	const methodName = "calibre-simclr"
	s, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		return nil, fmt.Errorf("setting cifar10-q(2,500) missing")
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale("smoke"), seed)
	if err != nil {
		return nil, err
	}
	m, err := experiments.BuildMethod(env, methodName)
	if err != nil {
		return nil, err
	}
	meter := &meteringAggregator{inner: m.Aggregator, method: methodName}
	m.Aggregator = meter
	perRound := 4
	if len(env.Participants) < perRound {
		perRound = len(env.Participants)
	}
	sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 3, ClientsPerRound: perRound, Seed: seed}, m, env.Participants)
	if err != nil {
		return nil, err
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		return nil, err
	}
	return meter.rounds, nil
}

// benchAggregation times batch aggregation serial versus shard-parallel
// on SGD-like updates.
func benchAggregation(minTime time.Duration, workers, n, nUpdates int) []DeltaAggRecord {
	rng := rand.New(rand.NewSource(3))
	global := make(param.Vector, n)
	for i := range global {
		global[i] = rng.NormFloat64()
	}
	updates := make([]*fl.Update, nUpdates)
	for k := range updates {
		v := global.Clone()
		for i := range v {
			v[i] += 1e-3 * rng.NormFloat64()
		}
		updates[k] = &fl.Update{ClientID: k, Params: v, NumSamples: 10 + k, Divergence: rng.Float64()}
	}
	var out []DeltaAggRecord
	for _, agg := range []struct {
		name string
		a    fl.Aggregator
	}{
		{"weighted-average", fl.WeightedAverage{}},
		{"divergence-weighted", &fl.DivergenceWeighted{}},
	} {
		run := func() {
			if _, err := agg.a.Aggregate(global, updates); err != nil {
				panic(err)
			}
		}
		tensor.SetWorkers(1)
		serialNs, _ := measure(minTime, run)
		tensor.SetWorkers(workers)
		shardNs, _ := measure(minTime, run)
		tensor.SetWorkers(0)
		out = append(out, DeltaAggRecord{
			Aggregator: agg.name,
			Elems:      n,
			Updates:    nUpdates,
			SerialNsOp: serialNs,
			ShardNsOp:  shardNs,
			Speedup:    float64(serialNs) / float64(shardNs),
		})
	}
	return out
}

// runDeltaBench runs the update-plane harness and writes BENCH_delta.json
// into outDir. quick shrinks per-measurement time so the harness fits in
// CI.
func runDeltaBench(outDir string, quick bool) error {
	minTime := 300 * time.Millisecond
	if quick {
		minTime = 30 * time.Millisecond
	}
	workers := tensor.Workers()
	file := DeltaBenchFile{
		Schema:     DeltaBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	if file.GOMaxProcs == 1 {
		file.Note = "recorded on a single-core host: sharded aggregation cannot beat serial here; regenerate on ≥4 cores for the real speedup trajectory (wire-bytes numbers are core-count independent)"
	}
	for _, n := range []int{4_096, 65_536} {
		file.Wire = append(file.Wire, benchWire(minTime, n)...)
	}
	rounds, err := benchRealRounds(42)
	if err != nil {
		return err
	}
	file.Rounds = rounds
	file.Aggregate = benchAggregation(minTime, workers, 65_536, 10)
	file.Aggregate = append(file.Aggregate, benchAggregation(minTime, workers, 524_288, 10)...)

	fmt.Printf("delta bench: %s/%s gomaxprocs=%d workers=%d (XOR-delta wire vs dense gob; sharded vs serial aggregation)\n",
		file.GOOS, file.GOARCH, file.GOMaxProcs, file.Workers)
	fmt.Printf("%-18s %8s %12s %12s %7s %7s %12s %12s\n", "pattern", "elems", "dense B/msg", "wire B/msg", "ratio", "delta?", "enc ns/op", "dec ns/op")
	for _, r := range file.Wire {
		fmt.Printf("%-18s %8d %12d %12d %6.2fx %7v %12d %12d\n",
			r.Pattern, r.Elems, r.DenseBytes, r.WireBytes, r.Ratio, r.ShipsDelta, r.EncNsOp, r.DecNsOp)
	}
	for _, r := range file.Rounds {
		fmt.Printf("round %d (%s, %d updates × %d params): dense %d B → wire %d B (%.2fx)\n",
			r.Round, r.Method, r.Updates, r.Elems, r.DenseBytes, r.WireBytes, r.Ratio)
	}
	for _, r := range file.Aggregate {
		fmt.Printf("aggregate %-20s %8d elems × %2d updates: serial %12d ns → sharded %12d ns (%.2fx)\n",
			r.Aggregator, r.Elems, r.Updates, r.SerialNsOp, r.ShardNsOp, r.Speedup)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_delta.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
