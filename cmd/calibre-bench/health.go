package main

// The health harness (-exp health) is the reproducible perf gate for the
// streaming anomaly detectors: it measures raw ObserveRound throughput on
// synthetic per-client round samples, and the end-to-end overhead a live
// monitor adds to a monitored federation versus a bare one, emitting
// BENCH_health.json. The monitor's no-perturbation contract (monitored
// runs are bit-identical to bare ones) is pinned by tests in internal/fl
// and internal/flnet; this harness only measures time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
)

// HealthBenchSchema identifies the BENCH_health.json layout.
const HealthBenchSchema = "calibre/bench-health/v1"

// HealthBenchFile is the top-level layout of BENCH_health.json.
type HealthBenchFile struct {
	Schema     string             `json:"schema"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMaxProcs int                `json:"gomaxprocs"`
	Observe    HealthBenchObserve `json:"observe"`
	Round      HealthBenchRound   `json:"round"`
}

// HealthBenchObserve measures the detector hot path in isolation: every
// default rule (loss divergence/plateau, non-finite, fairness drift,
// norm outliers, quorum/deadline) evaluated per ObserveRound on a
// synthetic round stream with full per-client detail.
type HealthBenchObserve struct {
	Rounds          int     `json:"rounds"`
	ClientsPerRound int     `json:"clients_per_round"`
	WallMS          int64   `json:"wall_ms"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	NsPerRound      float64 `json:"ns_per_round"`
	NsPerClient     float64 `json:"ns_per_client"`
}

// HealthBenchRound measures a fully monitored federation against a bare
// one: the same smoke-scale fedavg simulation with and without a live
// monitor. OverheadNsPerRound may be slightly negative on a noisy host —
// the monitor's cost sits below scheduler jitter at smoke scale.
type HealthBenchRound struct {
	Reps               int   `json:"reps"`
	RoundsPerRun       int   `json:"rounds_per_run"`
	BareMS             int64 `json:"bare_ms"`
	MonitoredMS        int64 `json:"monitored_ms"`
	AlertsPerRun       int   `json:"alerts_per_run"`
	OverheadNsPerRound int64 `json:"overhead_ns_per_round"`
}

// runHealthBench measures the health plane and writes BENCH_health.json
// into outDir.
func runHealthBench(outDir string, quick bool) error {
	file := HealthBenchFile{
		Schema:     HealthBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("health bench: %s/%s gomaxprocs=%d\n", file.GOOS, file.GOARCH, file.GOMaxProcs)

	// Stage 1: raw ObserveRound throughput. A steady 10-client cohort with
	// ID-spread norms and a slowly decaying loss keeps every default
	// detector on its evaluation path (median/MAD per round, EWMA updates,
	// fairness decile split) without tripping alerts on each round — the
	// steady-state cost, not the edge-trigger cost.
	rounds := 1_000_000
	if quick {
		rounds = 100_000
	}
	const cohort = 10
	hc := health.DefaultConfig()
	mon := health.NewMonitor(&hc)
	sample := obs.RoundSample{
		Runtime:      "sim",
		Participants: cohort,
		Responders:   cohort,
		Clients:      make([]obs.ClientSample, cohort),
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		sample.Round = i
		sample.MeanLoss = 1.0 / (1.0 + 0.001*float64(i%1000))
		for id := 0; id < cohort; id++ {
			sample.Clients[id] = obs.ClientSample{
				ID:   id,
				Loss: sample.MeanLoss * (0.9 + 0.02*float64(id)),
				Norm: 0.2 + 0.01*float64(id) + 0.001*float64(i%7),
			}
		}
		mon.ObserveRound(sample)
	}
	wall := time.Since(start)
	file.Observe = HealthBenchObserve{
		Rounds:          rounds,
		ClientsPerRound: cohort,
		WallMS:          wall.Milliseconds(),
		RoundsPerSec:    float64(rounds) / wall.Seconds(),
		NsPerRound:      float64(wall.Nanoseconds()) / float64(rounds),
		NsPerClient:     float64(wall.Nanoseconds()) / float64(rounds*cohort),
	}
	fmt.Printf("observe: %d rounds × %d clients in %s — %.0f rounds/sec, %.0f ns/round, %.1f ns/client\n",
		rounds, cohort, wall.Round(time.Millisecond), file.Observe.RoundsPerSec, file.Observe.NsPerRound, file.Observe.NsPerClient)

	// Stage 2: monitored federation overhead. The same smoke fedavg
	// simulation, bare then monitored, alternating to spread thermal and
	// cache drift across both sides.
	reps := 6
	if quick {
		reps = 2
	}
	setting, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		return fmt.Errorf("health bench: setting cifar10-q(2,500) missing")
	}
	runOnce := func(mon *health.Monitor) (int, error) {
		env, err := experiments.BuildEnvironment(setting, experiments.ScaleSmoke, 1)
		if err != nil {
			return 0, err
		}
		m, err := experiments.BuildMethod(env, "fedavg")
		if err != nil {
			return 0, err
		}
		out, err := experiments.RunBuiltMethodWith(context.Background(), env, m, func(cfg *fl.SimConfig) {
			cfg.Health = mon
		})
		if err != nil {
			return 0, err
		}
		return len(out.History), nil
	}
	var bare, monitored time.Duration
	simRounds, alertsPerRun := 0, 0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		r, err := runOnce(nil)
		if err != nil {
			return fmt.Errorf("health bench bare run: %w", err)
		}
		bare += time.Since(t0)
		simRounds = r

		cfg := health.DefaultConfig()
		simMon := health.NewMonitor(&cfg)
		t1 := time.Now()
		if _, err := runOnce(simMon); err != nil {
			return fmt.Errorf("health bench monitored run: %w", err)
		}
		monitored += time.Since(t1)
		alertsPerRun = len(simMon.Diagnosis().Alerts)
	}
	totalRounds := simRounds * reps
	file.Round = HealthBenchRound{
		Reps:               reps,
		RoundsPerRun:       simRounds,
		BareMS:             bare.Milliseconds(),
		MonitoredMS:        monitored.Milliseconds(),
		AlertsPerRun:       alertsPerRun,
		OverheadNsPerRound: (monitored - bare).Nanoseconds() / int64(totalRounds),
	}
	fmt.Printf("round: %d reps × %d rounds — bare %dms, monitored %dms, %d alerts/run, overhead %dns/round\n",
		reps, simRounds, file.Round.BareMS, file.Round.MonitoredMS, alertsPerRun, file.Round.OverheadNsPerRound)

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_health.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
