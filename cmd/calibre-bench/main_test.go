package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
)

func TestListPrintsExperimentsAndKernels(t *testing.T) {
	out := climain.CaptureStdout(t, func() error { return run([]string{"-list"}) })
	if !strings.Contains(out, "experiments:") || !strings.Contains(out, "kernels") || !strings.Contains(out, "codec") {
		t.Fatalf("-list output missing experiments/kernels/codec:\n%s", out)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestKernelHarnessEmitsGoldenSchema runs the kernel harness at quick scale
// and validates the emitted BENCH_kernels.json both structurally and
// against the committed golden file: same schema version and the same set
// of (op, shape) measurements, so the perf trajectory stays comparable
// across PRs. Timing values are host-dependent and deliberately unchecked.
func TestKernelHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "kernels", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "kernel bench:") || !strings.Contains(out, "matmul") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got KernelBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	if got.Schema != KernelBenchSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, KernelBenchSchema)
	}
	if got.GOOS == "" || got.GOARCH == "" || got.GOMaxProcs < 1 || got.Workers < 1 {
		t.Fatalf("host metadata incomplete: %+v", got)
	}
	if len(got.Records) == 0 {
		t.Fatal("no records emitted")
	}
	for _, r := range got.Records {
		if r.Op == "" || r.Shape == "" {
			t.Fatalf("record missing op/shape: %+v", r)
		}
		if r.NsOp <= 0 || r.SerialNsOp <= 0 || r.SpeedupVsSerial <= 0 {
			t.Fatalf("record has non-positive timings: %+v", r)
		}
		if r.AllocsOp < 0 {
			t.Fatalf("record has negative allocs: %+v", r)
		}
	}

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_kernels.json: %v", err)
	}
	var golden KernelBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	if golden.Schema != got.Schema {
		t.Fatalf("golden schema %q != emitted %q", golden.Schema, got.Schema)
	}
	key := func(r KernelBenchRecord) string { return r.Op + "|" + r.Shape }
	want := make(map[string]bool, len(golden.Records))
	for _, r := range golden.Records {
		want[key(r)] = true
	}
	have := make(map[string]bool, len(got.Records))
	for _, r := range got.Records {
		have[key(r)] = true
	}
	for k := range want {
		if !have[k] {
			t.Errorf("measurement %s present in golden file but not emitted", k)
		}
	}
	for k := range have {
		if !want[k] {
			t.Errorf("measurement %s emitted but missing from golden file (regenerate it: go run ./cmd/calibre-bench -exp kernels)", k)
		}
	}
}

// TestCodecHarnessEmitsGoldenSchema runs the codec harness at quick scale
// and validates BENCH_codec.json structurally, against the committed
// golden file, and against the acceptance criterion the subsystem ships
// under: the binary codec must beat gob on encoded size for every
// representative state (size is deterministic; timings are host-dependent
// and only checked for sanity).
func TestCodecHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "codec", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "codec bench:") || !strings.Contains(out, "model-4k") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_codec.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got CodecBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	if got.Schema != CodecBenchSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, CodecBenchSchema)
	}
	if len(got.Records) < 4 {
		t.Fatalf("only %d records emitted", len(got.Records))
	}
	for _, r := range got.Records {
		if r.State == "" || r.Elems <= 0 {
			t.Fatalf("record missing state/elems: %+v", r)
		}
		if r.CodecBytes <= 0 || r.GobBytes <= 0 || r.CodecBytes >= r.GobBytes {
			t.Fatalf("codec must encode smaller than gob: %+v", r)
		}
		if r.CodecEncNs <= 0 || r.CodecDecNs <= 0 || r.GobEncNs <= 0 || r.GobDecNs <= 0 {
			t.Fatalf("record has non-positive timings: %+v", r)
		}
	}

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_codec.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_codec.json: %v", err)
	}
	var golden CodecBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	if golden.Schema != got.Schema {
		t.Fatalf("golden schema %q != emitted %q", golden.Schema, got.Schema)
	}
	states := make(map[string]bool, len(got.Records))
	for _, r := range got.Records {
		states[r.State] = true
	}
	for _, r := range golden.Records {
		if !states[r.State] {
			t.Errorf("golden state %s not emitted (regenerate: go run ./cmd/calibre-bench -exp codec -out .)", r.State)
		}
		if r.CodecBytes >= r.GobBytes || r.EncSpeedup <= 1 || r.DecSpeedup <= 1 {
			t.Errorf("committed golden record does not beat gob on size and time: %+v", r)
		}
	}
}
