package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibre/cmd/internal/benchfile"
	"calibre/cmd/internal/climain"
)

// warnEnvMismatch surfaces recording-environment differences between a
// freshly emitted bench file and its committed golden. The committed
// baselines are single-core (gomaxprocs=1), so on any multi-core test
// host timings are incomparable; the golden checks above deliberately
// compare only schemas and measurement sets, and this makes the reason
// visible in -v output instead of silent.
func warnEnvMismatch(t *testing.T, emitted, golden string) {
	t.Helper()
	a, err := benchfile.Read(emitted)
	if err != nil {
		t.Fatalf("read emitted envelope: %v", err)
	}
	b, err := benchfile.Read(golden)
	if err != nil {
		t.Fatalf("read golden envelope: %v", err)
	}
	for _, w := range benchfile.EnvMismatch(a, b) {
		t.Logf("bench env mismatch (emitted vs golden): %s", w)
	}
}

func TestListPrintsExperimentsAndKernels(t *testing.T) {
	out := climain.CaptureStdout(t, func() error { return run([]string{"-list"}) })
	for _, needle := range []string{"experiments:", "kernels", "codec", "delta", "sweep", "hotpath"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("-list output missing %q:\n%s", needle, out)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestKernelHarnessEmitsGoldenSchema runs the kernel harness at quick scale
// and validates the emitted BENCH_kernels.json both structurally and
// against the committed golden file: same schema version and the same set
// of (op, shape) measurements, so the perf trajectory stays comparable
// across PRs. Timing values are host-dependent and deliberately unchecked.
func TestKernelHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "kernels", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "kernel bench:") || !strings.Contains(out, "matmul") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got KernelBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	if got.Schema != KernelBenchSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, KernelBenchSchema)
	}
	if got.GOOS == "" || got.GOARCH == "" || got.GOMaxProcs < 1 || got.Workers < 1 {
		t.Fatalf("host metadata incomplete: %+v", got)
	}
	if len(got.Records) == 0 {
		t.Fatal("no records emitted")
	}
	for _, r := range got.Records {
		if r.Op == "" || r.Shape == "" {
			t.Fatalf("record missing op/shape: %+v", r)
		}
		if r.NsOp <= 0 || r.SerialNsOp <= 0 || r.SpeedupVsSerial <= 0 {
			t.Fatalf("record has non-positive timings: %+v", r)
		}
		if r.AllocsOp < 0 {
			t.Fatalf("record has negative allocs: %+v", r)
		}
	}

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_kernels.json: %v", err)
	}
	var golden KernelBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	if golden.Schema != got.Schema {
		t.Fatalf("golden schema %q != emitted %q", golden.Schema, got.Schema)
	}
	key := func(r KernelBenchRecord) string { return r.Op + "|" + r.Shape }
	want := make(map[string]bool, len(golden.Records))
	for _, r := range golden.Records {
		want[key(r)] = true
	}
	have := make(map[string]bool, len(got.Records))
	for _, r := range got.Records {
		have[key(r)] = true
	}
	for k := range want {
		if !have[k] {
			t.Errorf("measurement %s present in golden file but not emitted", k)
		}
	}
	for k := range have {
		if !want[k] {
			t.Errorf("measurement %s emitted but missing from golden file (regenerate it: go run ./cmd/calibre-bench -exp kernels)", k)
		}
	}
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_kernels.json"), filepath.Join("..", "..", "BENCH_kernels.json"))
}

// TestDeltaHarnessEmitsGoldenSchema runs the update-plane harness at
// quick scale and validates BENCH_delta.json structurally, against the
// committed golden file, and against the acceptance criteria the update
// plane ships under: compressible patterns (and the real training
// trajectory) must beat the dense gob wire on bytes per round, and the
// worst-case pattern must fall back to dense rather than expand. Sizes
// are deterministic; timings are host-dependent and only sanity-checked.
func TestDeltaHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "delta", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "delta bench:") || !strings.Contains(out, "sgd-step") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	check := func(file DeltaBenchFile, where string) {
		t.Helper()
		if file.Schema != DeltaBenchSchema {
			t.Fatalf("%s schema = %q, want %q", where, file.Schema, DeltaBenchSchema)
		}
		if len(file.Wire) == 0 || len(file.Rounds) == 0 || len(file.Aggregate) == 0 {
			t.Fatalf("%s missing sections: %d wire, %d rounds, %d aggregation", where, len(file.Wire), len(file.Rounds), len(file.Aggregate))
		}
		for _, r := range file.Wire {
			if r.WireBytes > r.DenseBytes {
				t.Errorf("%s pattern %s ships %d bytes, above the dense %d (fallback broken)", where, r.Pattern, r.WireBytes, r.DenseBytes)
			}
			switch r.Pattern {
			case "random-worst-case":
				if r.ShipsDelta {
					t.Errorf("%s worst-case pattern did not fall back to dense: %+v", where, r)
				}
			default:
				if !r.ShipsDelta || r.Ratio <= 1 {
					t.Errorf("%s pattern %s did not compress: %+v", where, r.Pattern, r)
				}
			}
		}
		for _, r := range file.Rounds {
			if r.WireBytes >= r.DenseBytes || r.Ratio <= 1 {
				t.Errorf("%s real round %d did not compress: %+v", where, r.Round, r)
			}
		}
		for _, r := range file.Aggregate {
			if r.SerialNsOp <= 0 || r.ShardNsOp <= 0 {
				t.Errorf("%s aggregation record has non-positive timings: %+v", where, r)
			}
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_delta.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got DeltaBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	check(got, "emitted")

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_delta.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_delta.json: %v", err)
	}
	var golden DeltaBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	check(golden, "golden")
	patterns := make(map[string]bool)
	for _, r := range got.Wire {
		patterns[r.Pattern] = true
	}
	for _, r := range golden.Wire {
		if !patterns[r.Pattern] {
			t.Errorf("golden pattern %s not emitted (regenerate: go run ./cmd/calibre-bench -exp delta -out .)", r.Pattern)
		}
	}
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_delta.json"), filepath.Join("..", "..", "BENCH_delta.json"))
}

// TestCodecHarnessEmitsGoldenSchema runs the codec harness at quick scale
// and validates BENCH_codec.json structurally, against the committed
// golden file, and against the acceptance criterion the subsystem ships
// under: the binary codec must beat gob on encoded size for every
// representative state (size is deterministic; timings are host-dependent
// and only checked for sanity).
func TestCodecHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "codec", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "codec bench:") || !strings.Contains(out, "model-4k") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_codec.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got CodecBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	if got.Schema != CodecBenchSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, CodecBenchSchema)
	}
	if len(got.Records) < 4 {
		t.Fatalf("only %d records emitted", len(got.Records))
	}
	for _, r := range got.Records {
		if r.State == "" || r.Elems <= 0 {
			t.Fatalf("record missing state/elems: %+v", r)
		}
		if r.CodecBytes <= 0 || r.GobBytes <= 0 || r.CodecBytes >= r.GobBytes {
			t.Fatalf("codec must encode smaller than gob: %+v", r)
		}
		if r.CodecEncNs <= 0 || r.CodecDecNs <= 0 || r.GobEncNs <= 0 || r.GobDecNs <= 0 {
			t.Fatalf("record has non-positive timings: %+v", r)
		}
	}

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_codec.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_codec.json: %v", err)
	}
	var golden CodecBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	if golden.Schema != got.Schema {
		t.Fatalf("golden schema %q != emitted %q", golden.Schema, got.Schema)
	}
	states := make(map[string]bool, len(got.Records))
	for _, r := range got.Records {
		states[r.State] = true
	}
	for _, r := range golden.Records {
		if !states[r.State] {
			t.Errorf("golden state %s not emitted (regenerate: go run ./cmd/calibre-bench -exp codec -out .)", r.State)
		}
		if r.CodecBytes >= r.GobBytes || r.EncSpeedup <= 1 || r.DecSpeedup <= 1 {
			t.Errorf("committed golden record does not beat gob on size and time: %+v", r)
		}
	}
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_codec.json"), filepath.Join("..", "..", "BENCH_codec.json"))
}

// TestTraceHarnessEmitsGoldenSchema runs the flight-recorder harness at
// quick scale and validates BENCH_trace.json structurally and against the
// committed golden file. Throughput and overhead are host-dependent and
// only sanity-checked (the per-round overhead may legitimately be
// negative: at smoke scale the recorder's cost sits below scheduler
// jitter); the no-perturbation contract itself is pinned by the
// bit-identity tests in internal/fl and internal/flnet.
func TestTraceHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "trace", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "trace bench:") || !strings.Contains(out, "events/sec") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	check := func(file TraceBenchFile, where string) {
		t.Helper()
		if file.Schema != TraceBenchSchema {
			t.Fatalf("%s schema = %q, want %q", where, file.Schema, TraceBenchSchema)
		}
		if file.GOOS == "" || file.GOARCH == "" || file.GOMaxProcs < 1 {
			t.Fatalf("%s host metadata incomplete: %+v", where, file)
		}
		e := file.Emit
		if e.Events <= 0 || e.EventsPerSec <= 0 || e.NsPerEvent <= 0 {
			t.Errorf("%s emit section has non-positive measurements: %+v", where, e)
		}
		if e.BytesWritten <= 0 || e.BytesPerEvent <= 0 {
			t.Errorf("%s emit section wrote no bytes: %+v", where, e)
		}
		r := file.Round
		if r.Reps <= 0 || r.RoundsPerRun <= 0 || r.EventsPerRun <= 0 {
			t.Errorf("%s round section measured nothing: %+v", where, r)
		}
		if r.BareMS < 0 || r.TracedMS <= 0 {
			t.Errorf("%s round section has bad timings: %+v", where, r)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_trace.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got TraceBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	check(got, "emitted")

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_trace.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_trace.json: %v", err)
	}
	var golden TraceBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	check(golden, "golden")
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_trace.json"), filepath.Join("..", "..", "BENCH_trace.json"))
}

// TestSweepHarnessEmitsGoldenSchema runs the sweep-scheduler harness at
// quick scale and validates BENCH_sweep.json structurally and against
// the committed golden file: same schema version and the same worker
// sweep, with every cell succeeding. Timings are host-dependent and only
// sanity-checked.
func TestSweepHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "sweep", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "sweep bench:") || !strings.Contains(out, "workers=4") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	check := func(file SweepBenchFile, where string) {
		t.Helper()
		if file.Schema != SweepBenchSchema {
			t.Fatalf("%s schema = %q, want %q", where, file.Schema, SweepBenchSchema)
		}
		if file.GOOS == "" || file.GOARCH == "" || file.GOMaxProcs < 1 {
			t.Fatalf("%s host metadata incomplete: %+v", where, file)
		}
		if file.Grid.Cells < 6 || file.Grid.Methods < 3 {
			t.Fatalf("%s grid too small to exercise the scheduler: %+v", where, file.Grid)
		}
		workers := map[int]bool{}
		for _, r := range file.Records {
			workers[r.Workers] = true
			if r.WallMS <= 0 || r.CellsPerSec <= 0 || r.SpeedupVsOne <= 0 {
				t.Errorf("%s record has non-positive measurements: %+v", where, r)
			}
			if r.FailedCells != 0 {
				t.Errorf("%s bench grid had %d failed cells at %d workers", where, r.FailedCells, r.Workers)
			}
		}
		for _, w := range []int{1, 2, 4} {
			if !workers[w] {
				t.Errorf("%s missing workers=%d record", where, w)
			}
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_sweep.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got SweepBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	check(got, "emitted")

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sweep.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_sweep.json: %v", err)
	}
	var golden SweepBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	check(golden, "golden")
	if golden.GOMaxProcs == 1 && golden.Note == "" {
		t.Error("golden file recorded on a single core must carry the caveat note")
	}
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_sweep.json"), filepath.Join("..", "..", "BENCH_sweep.json"))
}

// TestHealthHarnessEmitsGoldenSchema runs the health-plane harness at
// quick scale and validates BENCH_health.json structurally and against
// the committed golden file. Throughput and overhead are host-dependent
// and only sanity-checked (the per-round overhead may legitimately be
// negative: at smoke scale the monitor's cost sits below scheduler
// jitter); the no-perturbation contract itself is pinned by the
// bit-identity tests in internal/fl and internal/flnet.
func TestHealthHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "health", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "health bench:") || !strings.Contains(out, "rounds/sec") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	check := func(file HealthBenchFile, where string) {
		t.Helper()
		if file.Schema != HealthBenchSchema {
			t.Fatalf("%s schema = %q, want %q", where, file.Schema, HealthBenchSchema)
		}
		if file.GOOS == "" || file.GOARCH == "" || file.GOMaxProcs < 1 {
			t.Fatalf("%s host metadata incomplete: %+v", where, file)
		}
		o := file.Observe
		if o.Rounds <= 0 || o.ClientsPerRound <= 0 {
			t.Errorf("%s observe section measured nothing: %+v", where, o)
		}
		if o.RoundsPerSec <= 0 || o.NsPerRound <= 0 || o.NsPerClient <= 0 {
			t.Errorf("%s observe section has non-positive measurements: %+v", where, o)
		}
		r := file.Round
		if r.Reps <= 0 || r.RoundsPerRun <= 0 {
			t.Errorf("%s round section measured nothing: %+v", where, r)
		}
		if r.BareMS < 0 || r.MonitoredMS <= 0 {
			t.Errorf("%s round section has bad timings: %+v", where, r)
		}
		if r.AlertsPerRun < 0 {
			t.Errorf("%s round section has negative alert count: %+v", where, r)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_health.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got HealthBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	check(got, "emitted")

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_health.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_health.json: %v", err)
	}
	var golden HealthBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	check(golden, "golden")
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_health.json"), filepath.Join("..", "..", "BENCH_health.json"))
}

// TestHotpathHarnessEmitsGoldenSchema runs the hot-path harness at quick
// scale and validates BENCH_hotpath.json structurally, against the
// committed golden file, and against the acceptance criterion the
// allocation-free path ships under: fused kernels plus the buffer arena
// must at least halve heap allocations per federation round relative to
// the unfused/arena-free baseline in the same file. The emitted quick run
// checks structure and configs only (timings and exact counts are
// host-dependent); the ≥2× gate applies to both files' own ratios.
func TestHotpathHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "hotpath", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "hotpath bench:") || !strings.Contains(out, "fused-arena") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	check := func(file HotpathBenchFile, where string) {
		t.Helper()
		if file.Schema != HotpathBenchSchema {
			t.Fatalf("%s schema = %q, want %q", where, file.Schema, HotpathBenchSchema)
		}
		if file.GOOS == "" || file.GOARCH == "" || file.GOMaxProcs < 1 || file.Workers < 1 {
			t.Fatalf("%s host metadata incomplete: %+v", where, file)
		}
		if file.Method == "" || file.Rounds < 1 || file.Clients < 1 {
			t.Fatalf("%s workload metadata incomplete: %+v", where, file)
		}
		if len(file.Configs) != len(hotpathConfigs) {
			t.Fatalf("%s has %d configs, want %d", where, len(file.Configs), len(hotpathConfigs))
		}
		for i, r := range file.Configs {
			if r.Config != hotpathConfigs[i].name || r.Fused != hotpathConfigs[i].fused || r.Arena != hotpathConfigs[i].arena {
				t.Fatalf("%s config %d = %+v, want %+v", where, i, r, hotpathConfigs[i])
			}
			if r.AllocsPerRound <= 0 || r.BytesPerRound <= 0 || r.NsPerRound <= 0 {
				t.Fatalf("%s record has non-positive measurements: %+v", where, r)
			}
			if r.AllocsVsBase <= 0 || r.BytesVsBase <= 0 {
				t.Fatalf("%s record has non-positive reduction ratios: %+v", where, r)
			}
		}
		// The shipping acceptance criterion: the full hot path at least
		// halves allocations per round vs the baseline measured alongside it.
		final := file.Configs[len(file.Configs)-1]
		if final.AllocsVsBase < 2 {
			t.Errorf("%s fused-arena allocation reduction %.2fx < 2x acceptance floor", where, final.AllocsVsBase)
		}
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_hotpath.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got HotpathBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	check(got, "emitted")

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_hotpath.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_hotpath.json: %v", err)
	}
	var golden HotpathBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	check(golden, "golden")
	if golden.GOMaxProcs == 1 && golden.Note == "" {
		t.Error("golden file recorded on a single core must carry the caveat note")
	}
	warnEnvMismatch(t, filepath.Join(dir, "BENCH_hotpath.json"), filepath.Join("..", "..", "BENCH_hotpath.json"))
}
