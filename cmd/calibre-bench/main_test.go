package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
)

func TestListPrintsExperimentsAndKernels(t *testing.T) {
	out := climain.CaptureStdout(t, func() error { return run([]string{"-list"}) })
	if !strings.Contains(out, "experiments:") || !strings.Contains(out, "kernels") {
		t.Fatalf("-list output missing experiments/kernels:\n%s", out)
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	if err := run([]string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestKernelHarnessEmitsGoldenSchema runs the kernel harness at quick scale
// and validates the emitted BENCH_kernels.json both structurally and
// against the committed golden file: same schema version and the same set
// of (op, shape) measurements, so the perf trajectory stays comparable
// across PRs. Timing values are host-dependent and deliberately unchecked.
func TestKernelHarnessEmitsGoldenSchema(t *testing.T) {
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-exp", "kernels", "-quick", "-out", dir})
	})
	if !strings.Contains(out, "kernel bench:") || !strings.Contains(out, "matmul") {
		t.Fatalf("harness output not parseable:\n%s", out)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read emitted json: %v", err)
	}
	var got KernelBenchFile
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("emitted json does not parse: %v", err)
	}
	if got.Schema != KernelBenchSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, KernelBenchSchema)
	}
	if got.GOOS == "" || got.GOARCH == "" || got.GOMaxProcs < 1 || got.Workers < 1 {
		t.Fatalf("host metadata incomplete: %+v", got)
	}
	if len(got.Records) == 0 {
		t.Fatal("no records emitted")
	}
	for _, r := range got.Records {
		if r.Op == "" || r.Shape == "" {
			t.Fatalf("record missing op/shape: %+v", r)
		}
		if r.NsOp <= 0 || r.SerialNsOp <= 0 || r.SpeedupVsSerial <= 0 {
			t.Fatalf("record has non-positive timings: %+v", r)
		}
		if r.AllocsOp < 0 {
			t.Fatalf("record has negative allocs: %+v", r)
		}
	}

	goldenRaw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_kernels.json"))
	if err != nil {
		t.Fatalf("read committed golden BENCH_kernels.json: %v", err)
	}
	var golden KernelBenchFile
	if err := json.Unmarshal(goldenRaw, &golden); err != nil {
		t.Fatalf("golden json does not parse: %v", err)
	}
	if golden.Schema != got.Schema {
		t.Fatalf("golden schema %q != emitted %q", golden.Schema, got.Schema)
	}
	key := func(r KernelBenchRecord) string { return r.Op + "|" + r.Shape }
	want := make(map[string]bool, len(golden.Records))
	for _, r := range golden.Records {
		want[key(r)] = true
	}
	have := make(map[string]bool, len(got.Records))
	for _, r := range got.Records {
		have[key(r)] = true
	}
	for k := range want {
		if !have[k] {
			t.Errorf("measurement %s present in golden file but not emitted", k)
		}
	}
	for k := range have {
		if !want[k] {
			t.Errorf("measurement %s emitted but missing from golden file (regenerate it: go run ./cmd/calibre-bench -exp kernels)", k)
		}
	}
}
