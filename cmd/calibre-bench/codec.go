package main

// The codec harness (-exp codec) is the reproducible perf gate for the
// durability layer: it measures internal/store's binary snapshot codec
// against encoding/gob — the wire/serialization baseline this repo started
// from — on representative model states, and emits BENCH_codec.json so the
// acceptance criterion (smaller AND faster than gob on encode+decode) is
// tracked in-repo. The JSON schema is validated by the cmd smoke tests.

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/fl"
	"calibre/internal/store"
)

// CodecBenchSchema identifies the BENCH_codec.json layout.
const CodecBenchSchema = "calibre/bench-codec/v1"

// CodecBenchFile is the top-level layout of BENCH_codec.json.
type CodecBenchFile struct {
	Schema     string             `json:"schema"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMaxProcs int                `json:"gomaxprocs"`
	Records    []CodecBenchRecord `json:"records"`
}

// CodecBenchRecord is one state's codec-vs-gob measurement.
type CodecBenchRecord struct {
	State      string  `json:"state"`
	Elems      int     `json:"elems"`
	CodecBytes int     `json:"codec_bytes"`
	GobBytes   int     `json:"gob_bytes"`
	SizeRatio  float64 `json:"gob_over_codec_size"`
	CodecEncNs int64   `json:"codec_encode_ns_op"`
	CodecDecNs int64   `json:"codec_decode_ns_op"`
	GobEncNs   int64   `json:"gob_encode_ns_op"`
	GobDecNs   int64   `json:"gob_decode_ns_op"`
	EncSpeedup float64 `json:"encode_speedup_vs_gob"`
	DecSpeedup float64 `json:"decode_speedup_vs_gob"`
}

// benchState measures one snapshot through both serializers. Each gob op
// uses a fresh encoder/decoder, exactly as a checkpoint file write/read
// would.
func benchState(minTime time.Duration, name string, snap *store.Snapshot) CodecBenchRecord {
	codecBlob, err := store.EncodeSnapshot(snap)
	if err != nil {
		panic(err)
	}
	var gobBuf bytes.Buffer
	if err := gob.NewEncoder(&gobBuf).Encode(snap); err != nil {
		panic(err)
	}
	gobBlob := append([]byte(nil), gobBuf.Bytes()...)

	codecEnc, _ := measure(minTime, func() {
		if _, err := store.EncodeSnapshot(snap); err != nil {
			panic(err)
		}
	})
	codecDec, _ := measure(minTime, func() {
		if _, err := store.DecodeSnapshot(codecBlob); err != nil {
			panic(err)
		}
	})
	gobEnc, _ := measure(minTime, func() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			panic(err)
		}
	})
	gobDec, _ := measure(minTime, func() {
		var out store.Snapshot
		if err := gob.NewDecoder(bytes.NewReader(gobBlob)).Decode(&out); err != nil {
			panic(err)
		}
	})
	return CodecBenchRecord{
		State:      name,
		Elems:      len(snap.State.Global),
		CodecBytes: len(codecBlob),
		GobBytes:   len(gobBlob),
		SizeRatio:  float64(len(gobBlob)) / float64(len(codecBlob)),
		CodecEncNs: codecEnc,
		CodecDecNs: codecDec,
		GobEncNs:   gobEnc,
		GobDecNs:   gobDec,
		EncSpeedup: float64(gobEnc) / float64(codecEnc),
		DecSpeedup: float64(gobDec) / float64(codecDec),
	}
}

// codecStates builds the representative model states: flattened global
// vectors at three model scales (weights drawn N(0,1), the payload shape
// real checkpoints have) plus a long-federation snapshot with a deep
// RoundStats history.
func codecStates() []struct {
	name string
	snap *store.Snapshot
} {
	rng := rand.New(rand.NewSource(42))
	vec := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}
	history := func(rounds, participants int) ([]fl.RoundStats, []int) {
		hist := make([]fl.RoundStats, rounds)
		counts := make([]int, rounds)
		for r := range hist {
			ids := make([]int, participants)
			for i := range ids {
				ids[i] = rng.Intn(100)
			}
			hist[r] = fl.RoundStats{Round: r, Participants: ids, MeanLoss: rng.Float64()}
			counts[r] = 100
		}
		return hist, counts
	}
	meta := store.Meta{Seed: 42, Fingerprint: store.Fingerprint("bench", "codec"), Runtime: "simulator"}
	snap := func(params, rounds int) *store.Snapshot {
		h, c := history(rounds, 10)
		return &store.Snapshot{
			Meta:  meta,
			State: fl.SimState{Round: rounds, Global: vec(params), History: h, EligibleCounts: c},
		}
	}
	return []struct {
		name string
		snap *store.Snapshot
	}{
		{"model-4k-round10", snap(4_096, 10)},
		{"model-64k-round10", snap(65_536, 10)},
		{"model-512k-round10", snap(524_288, 10)},
		{"model-64k-round500", snap(65_536, 500)},
	}
}

// runCodecBench runs the codec harness and writes BENCH_codec.json into
// outDir. quick shrinks per-measurement time so the harness fits in CI.
func runCodecBench(outDir string, quick bool) error {
	minTime := 300 * time.Millisecond
	if quick {
		minTime = 30 * time.Millisecond
	}
	file := CodecBenchFile{
		Schema:     CodecBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, c := range codecStates() {
		file.Records = append(file.Records, benchState(minTime, c.name, c.snap))
	}

	fmt.Printf("codec bench: %s/%s gomaxprocs=%d (store binary codec vs encoding/gob)\n",
		file.GOOS, file.GOARCH, file.GOMaxProcs)
	fmt.Printf("%-20s %10s %10s %6s %12s %12s %8s %8s\n",
		"state", "bytes", "gob", "ratio", "enc ns/op", "dec ns/op", "enc-x", "dec-x")
	for _, r := range file.Records {
		fmt.Printf("%-20s %10d %10d %5.2fx %12d %12d %7.2fx %7.2fx\n",
			r.State, r.CodecBytes, r.GobBytes, r.SizeRatio, r.CodecEncNs, r.CodecDecNs, r.EncSpeedup, r.DecSpeedup)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_codec.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
