package main

// The sweep harness (-exp sweep) is the reproducible perf gate for the
// sweep scheduler: it runs the same smoke grid at 1, 2 and 4 workers and
// records wall time, throughput (cells/sec) and speedup versus the
// serial schedule, emitting BENCH_sweep.json so the scheduler's scaling
// trajectory is tracked in-repo. The JSON schema is validated by the cmd
// smoke tests. Cell results are bit-identical across worker counts (the
// determinism tests pin that); this harness only measures time.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/sweep"
)

// SweepBenchSchema identifies the BENCH_sweep.json layout.
const SweepBenchSchema = "calibre/bench-sweep/v1"

// SweepBenchFile is the top-level layout of BENCH_sweep.json.
type SweepBenchFile struct {
	Schema     string             `json:"schema"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMaxProcs int                `json:"gomaxprocs"`
	Note       string             `json:"note,omitempty"`
	Grid       SweepBenchGrid     `json:"grid"`
	Records    []SweepBenchRecord `json:"records"`
}

// SweepBenchGrid describes the measured grid.
type SweepBenchGrid struct {
	Methods  int `json:"methods"`
	Settings int `json:"settings"`
	Seeds    int `json:"seeds"`
	Cells    int `json:"cells"`
}

// SweepBenchRecord is one scheduler configuration's measurement.
type SweepBenchRecord struct {
	Workers      int     `json:"workers"`
	WallMS       int64   `json:"wall_ms"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	SpeedupVsOne float64 `json:"speedup_vs_workers_1"`
	FailedCells  int     `json:"failed_cells"`
}

// benchSweepGrid builds the measured smoke grid: cheap supervised
// methods so the harness times the scheduler, not SSL training. quick
// halves the seed axis to fit CI.
func benchSweepGrid(quick bool) *sweep.Grid {
	seeds := []int64{1, 2, 3, 4}
	if quick {
		seeds = seeds[:2]
	}
	return &sweep.Grid{
		Name:     "bench",
		Methods:  []string{"fedavg", "fedavg-ft", "perfedavg"},
		Settings: []string{"cifar10-q(2,500)"},
		Seeds:    seeds,
	}
}

// runSweepBench measures the sweep scheduler and writes BENCH_sweep.json
// into outDir.
func runSweepBench(outDir string, quick bool) error {
	grid := benchSweepGrid(quick)
	cells, err := grid.Expand()
	if err != nil {
		return err
	}
	file := SweepBenchFile{
		Schema:     SweepBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
		Grid: SweepBenchGrid{
			Methods: len(grid.Methods), Settings: len(grid.Settings),
			Seeds: len(grid.Seeds), Cells: len(cells),
		},
	}
	if file.GOMaxProcs == 1 {
		file.Note = "recorded on a single-core host: concurrent cells time-slice one core, so workers>1 cannot beat the serial schedule here; regenerate on ≥4 cores for the real speedup trajectory (cell results are bit-identical at any worker count regardless)"
	}
	fmt.Printf("sweep bench: %s/%s gomaxprocs=%d (%d-cell smoke grid, scheduler throughput at 1/2/4 workers)\n",
		file.GOOS, file.GOARCH, file.GOMaxProcs, len(cells))
	var serialMS int64
	for _, workers := range []int{1, 2, 4} {
		// A warm-up run at workers=1 would double the harness cost; the
		// first measured run instead absorbs process-wide warm-up (pool
		// spin-up, page faults), which is why workers=1 runs first.
		start := time.Now()
		res, err := sweep.Run(context.Background(), grid, sweep.Config{Workers: workers})
		if err != nil {
			return fmt.Errorf("sweep bench at %d workers: %w", workers, err)
		}
		wall := time.Since(start)
		failed := 0
		for _, c := range res.Cells {
			if c.Status != sweep.StatusOK {
				failed++
			}
		}
		rec := SweepBenchRecord{
			Workers:     workers,
			WallMS:      wall.Milliseconds(),
			CellsPerSec: float64(len(cells)) / wall.Seconds(),
			FailedCells: failed,
		}
		if workers == 1 {
			serialMS = rec.WallMS
		}
		if rec.WallMS > 0 && serialMS > 0 {
			rec.SpeedupVsOne = float64(serialMS) / float64(rec.WallMS)
		} else {
			rec.SpeedupVsOne = 1
		}
		file.Records = append(file.Records, rec)
		fmt.Printf("workers=%d: %4dms wall, %6.2f cells/sec, %.2fx vs serial (%d failed)\n",
			rec.Workers, rec.WallMS, rec.CellsPerSec, rec.SpeedupVsOne, rec.FailedCells)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_sweep.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
