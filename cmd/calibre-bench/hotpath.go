package main

// The hotpath harness (-exp hotpath) is the reproducible perf gate for the
// allocation-free training path: it runs a real calibre-simclr federation
// round loop (delta wire enabled, exactly what `-exp delta` meters for
// bytes) under three configurations — the unfused/arena-free baseline, the
// fused kernels alone, and fused kernels plus the per-trainable buffer
// arena — and records heap allocations, allocated bytes and wall time per
// round via runtime.ReadMemStats. All three configurations are
// bit-identical in results (pinned by internal/nn and internal/ssl tests);
// this harness tracks only what they cost. It emits BENCH_hotpath.json,
// validated against the committed golden by the cmd smoke tests.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"calibre/internal/core"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// HotpathBenchSchema identifies the BENCH_hotpath.json layout.
const HotpathBenchSchema = "calibre/bench-hotpath/v1"

// HotpathBenchFile is the top-level layout of BENCH_hotpath.json.
type HotpathBenchFile struct {
	Schema     string          `json:"schema"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMaxProcs int             `json:"gomaxprocs"`
	Workers    int             `json:"workers"`
	Note       string          `json:"note,omitempty"`
	Method     string          `json:"method"`
	Rounds     int             `json:"rounds"`
	Clients    int             `json:"clients_per_round"`
	Configs    []HotpathRecord `json:"configs"`
}

// HotpathRecord is one configuration's per-round cost on the same
// federation workload. The reduction ratios compare against the first
// (baseline) record in the file.
type HotpathRecord struct {
	Config         string  `json:"config"`
	Fused          bool    `json:"fused_kernels"`
	Arena          bool    `json:"buffer_arena"`
	AllocsPerRound int64   `json:"allocs_per_round"`
	BytesPerRound  int64   `json:"bytes_per_round"`
	NsPerRound     int64   `json:"ns_per_round"`
	AllocsVsBase   float64 `json:"baseline_allocs_over_this"`
	BytesVsBase    float64 `json:"baseline_bytes_over_this"`
}

// hotpathConfigs are the three measured configurations, baseline first.
var hotpathConfigs = []struct {
	name         string
	fused, arena bool
}{
	{"baseline-unfused-noarena", false, false},
	{"fused", true, false},
	{"fused-arena", true, true},
}

// runHotpathConfig measures one configuration: a smoke-scale
// calibre-simclr federation with the delta wire on, warmed by one full
// simulation (populating client states and, when enabled, their arenas)
// and then measured over a second simulation against the same method
// instance. Mallocs/TotalAlloc are monotonic counters, so intervening GCs
// do not perturb the numbers.
func runHotpathConfig(seed int64, rounds, perRound int, fused, arena bool) (*HotpathRecord, error) {
	const methodName = "calibre-simclr"
	defer nn.SetFused(nn.SetFused(fused))

	s, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		return nil, fmt.Errorf("setting cifar10-q(2,500) missing")
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale("smoke"), seed)
	if err != nil {
		return nil, err
	}
	m, err := experiments.BuildMethod(env, methodName)
	if err != nil {
		return nil, err
	}
	trainer, ok := m.Trainer.(*core.SSLTrainer)
	if !ok {
		return nil, fmt.Errorf("%s trainer is %T, want *core.SSLTrainer", methodName, m.Trainer)
	}
	trainer.Cfg.NoArena = !arena
	if perRound > len(env.Participants) {
		perRound = len(env.Participants)
	}

	runSim := func() error {
		sim, err := fl.NewSimulator(fl.SimConfig{
			Rounds: rounds, ClientsPerRound: perRound, Seed: seed, DeltaUpdates: true,
		}, m, env.Participants)
		if err != nil {
			return err
		}
		_, _, err = sim.Run(context.Background())
		return err
	}
	if err := runSim(); err != nil { // warm-up: client states, arena free lists
		return nil, err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := runSim(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return &HotpathRecord{
		Config:         "",
		Fused:          fused,
		Arena:          arena,
		AllocsPerRound: int64(after.Mallocs-before.Mallocs) / int64(rounds),
		BytesPerRound:  int64(after.TotalAlloc-before.TotalAlloc) / int64(rounds),
		NsPerRound:     elapsed.Nanoseconds() / int64(rounds),
	}, nil
}

// runHotpathBench runs the hot-path harness and writes BENCH_hotpath.json
// into outDir. quick shrinks the round count so the harness fits in CI.
func runHotpathBench(outDir string, quick bool) error {
	rounds, perRound := 3, 4
	if quick {
		rounds = 2
	}
	file := HotpathBenchFile{
		Schema:     HotpathBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    tensor.Workers(),
		Method:     "calibre-simclr",
		Rounds:     rounds,
		Clients:    perRound,
	}
	if file.GOMaxProcs == 1 {
		file.Note = "recorded on a single-core host: ns/round excludes any parallel speedup; allocation counts are core-count independent"
	}
	for _, cfg := range hotpathConfigs {
		rec, err := runHotpathConfig(42, rounds, perRound, cfg.fused, cfg.arena)
		if err != nil {
			return fmt.Errorf("hotpath config %s: %w", cfg.name, err)
		}
		rec.Config = cfg.name
		if len(file.Configs) > 0 {
			base := file.Configs[0]
			rec.AllocsVsBase = float64(base.AllocsPerRound) / float64(rec.AllocsPerRound)
			rec.BytesVsBase = float64(base.BytesPerRound) / float64(rec.BytesPerRound)
		} else {
			rec.AllocsVsBase, rec.BytesVsBase = 1, 1
		}
		file.Configs = append(file.Configs, *rec)
	}

	fmt.Printf("hotpath bench: %s/%s gomaxprocs=%d workers=%d (%s, %d rounds × %d clients, delta wire)\n",
		file.GOOS, file.GOARCH, file.GOMaxProcs, file.Workers, file.Method, file.Rounds, file.Clients)
	fmt.Printf("%-26s %16s %16s %14s %9s %9s\n", "config", "allocs/round", "bytes/round", "ns/round", "allocs×", "bytes×")
	for _, r := range file.Configs {
		fmt.Printf("%-26s %16d %16d %14d %8.2fx %8.2fx\n",
			r.Config, r.AllocsPerRound, r.BytesPerRound, r.NsPerRound, r.AllocsVsBase, r.BytesVsBase)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_hotpath.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
