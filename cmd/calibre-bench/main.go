// Command calibre-bench reproduces the paper's tables and figures.
//
// Usage:
//
//	calibre-bench -exp fig3 -scale ci -seed 42
//	calibre-bench -exp table1 -scale paper
//	calibre-bench -exp all -scale smoke -out results/
//	calibre-bench -list
//
// The -out directory receives machine-readable CSVs (per-method summaries
// and, for the t-SNE figures, 2-D embedding points) alongside the printed
// report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"calibre/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-bench", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "fig3", "experiment id (fig1..fig8, table1, 'kernels', 'codec', 'delta', 'sweep', 'trace', 'hotpath', 'health', or 'all')")
		scale = fs.String("scale", "smoke", "scale preset: smoke | ci | paper")
		seed  = fs.Int64("seed", 42, "master seed")
		out   = fs.String("out", "", "directory for CSV/JSON outputs (optional)")
		list  = fs.Bool("list", false, "list experiments and methods, then exit")
		quick = fs.Bool("quick", false, "shrink the perf-harness measurement time (CI preset)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("experiments:", experiments.IDs())
		fmt.Println("perf harnesses: kernels, codec, delta, sweep, trace, hotpath, health (run with -exp; not part of -exp all)")
		fmt.Println("settings:")
		for name := range experiments.Settings() {
			fmt.Println("  ", name)
		}
		return nil
	}
	if *exp == "kernels" || *exp == "codec" || *exp == "delta" || *exp == "sweep" || *exp == "trace" || *exp == "hotpath" || *exp == "health" {
		dir := *out
		if dir == "" {
			dir = "."
		}
		switch *exp {
		case "kernels":
			return runKernelBench(dir, *quick)
		case "codec":
			return runCodecBench(dir, *quick)
		case "sweep":
			return runSweepBench(dir, *quick)
		case "trace":
			return runTraceBench(dir, *quick)
		case "hotpath":
			return runHotpathBench(dir, *quick)
		case "health":
			return runHealthBench(dir, *quick)
		default:
			return runDeltaBench(dir, *quick)
		}
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	ctx := context.Background()
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(ctx, id, experiments.Scale(*scale), *seed)
		if err != nil {
			return fmt.Errorf("run %s: %w", id, err)
		}
		fmt.Println(report)
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			if err := writeCSVs(*out, report); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVs(dir string, report *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	resPath := filepath.Join(dir, report.ID+"-results.csv")
	rf, err := os.Create(resPath)
	if err != nil {
		return fmt.Errorf("create %s: %w", resPath, err)
	}
	defer rf.Close()
	if err := experiments.WriteResultsCSV(rf, report); err != nil {
		return fmt.Errorf("write %s: %w", resPath, err)
	}
	if len(report.Embeddings) > 0 {
		embPath := filepath.Join(dir, report.ID+"-embeddings.csv")
		ef, err := os.Create(embPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", embPath, err)
		}
		defer ef.Close()
		if err := experiments.WriteEmbeddingsCSV(ef, report.Embeddings); err != nil {
			return fmt.Errorf("write %s: %w", embPath, err)
		}
	}
	fmt.Printf("[wrote CSVs to %s]\n", dir)
	return nil
}
