package main

// The kernel harness (-exp kernels) is the reproducible perf gate for the
// linear-algebra core: it times the MatMul kernel family, an MLP train
// step and an end-to-end federated round, serial (one pool worker) versus
// the configured pool, and emits BENCH_kernels.json so the perf trajectory
// is tracked in-repo from PR to PR. The JSON schema is validated by the
// cmd smoke tests against the committed golden file.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"calibre/internal/baselines"
	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/nn"
	"calibre/internal/partition"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

// KernelBenchSchema identifies the BENCH_kernels.json layout; bump it when
// fields change so downstream tooling can dispatch on it.
const KernelBenchSchema = "calibre/bench-kernels/v1"

// KernelBenchFile is the top-level layout of BENCH_kernels.json.
type KernelBenchFile struct {
	Schema     string              `json:"schema"`
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	GOMaxProcs int                 `json:"gomaxprocs"`
	Workers    int                 `json:"workers"`
	Note       string              `json:"note,omitempty"`
	Records    []KernelBenchRecord `json:"records"`
}

// KernelBenchRecord is one (op, shape) measurement.
type KernelBenchRecord struct {
	Op              string  `json:"op"`
	Shape           string  `json:"shape"`
	NsOp            int64   `json:"ns_op"`
	AllocsOp        int64   `json:"allocs_op"`
	SerialNsOp      int64   `json:"serial_ns_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// measure reports fn's steady-state ns/op (timing at least minTime) and
// allocations per call.
func measure(minTime time.Duration, fn func()) (nsOp, allocsOp int64) {
	fn() // warm up: pool spin-up, caches
	var iters int64
	start := time.Now()
	var elapsed time.Duration
	for elapsed < minTime {
		fn()
		iters++
		elapsed = time.Since(start)
	}
	return int64(elapsed) / iters, int64(testing.AllocsPerRun(1, fn))
}

type kernelOp struct {
	name   string
	serial func(out, a, b *tensor.Tensor)
	pooled func(out, a, b *tensor.Tensor)
}

func kernelOps() []kernelOp {
	return []kernelOp{
		{"matmul", tensor.MatMulSerialInto, tensor.MatMulInto},
		{"matmul-transa", tensor.MatMulTransASerialInto, tensor.MatMulTransAInto},
		{"matmul-transb", tensor.MatMulTransBSerialInto, tensor.MatMulTransBInto},
	}
}

func benchKernels(minTime time.Duration, sizes []int) []KernelBenchRecord {
	rng := rand.New(rand.NewSource(1))
	var records []KernelBenchRecord
	for _, op := range kernelOps() {
		for _, size := range sizes {
			a := tensor.RandN(rng, 1, size, size)
			b := tensor.RandN(rng, 1, size, size)
			out := tensor.New(size, size)
			serialNs, _ := measure(minTime, func() { op.serial(out, a, b) })
			pooledNs, allocs := measure(minTime, func() { op.pooled(out, a, b) })
			records = append(records, KernelBenchRecord{
				Op:              op.name,
				Shape:           fmt.Sprintf("%dx%dx%d", size, size, size),
				NsOp:            pooledNs,
				AllocsOp:        allocs,
				SerialNsOp:      serialNs,
				SpeedupVsSerial: float64(serialNs) / float64(pooledNs),
			})
		}
	}
	return records
}

// benchSerialVsPool times fn with a one-worker pool and with the configured
// pool, restoring the pool afterwards.
func benchSerialVsPool(minTime time.Duration, workers int, op, shape string, mk func() func()) KernelBenchRecord {
	tensor.SetWorkers(1)
	serialNs, _ := measure(minTime, mk())
	tensor.SetWorkers(workers)
	pooledNs, allocs := measure(minTime, mk())
	tensor.SetWorkers(0)
	return KernelBenchRecord{
		Op:              op,
		Shape:           shape,
		NsOp:            pooledNs,
		AllocsOp:        allocs,
		SerialNsOp:      serialNs,
		SpeedupVsSerial: float64(serialNs) / float64(pooledNs),
	}
}

// mlpTrainStep returns a closure running one supervised forward/backward/
// optimizer step of an MLP wide enough to cross the kernels' parallel
// threshold.
func mlpTrainStep() func() {
	rng := rand.New(rand.NewSource(3))
	model := nn.MLP(rng, "bench", 256, 256, 128, 10)
	opt := nn.NewSGD(model, 0.05, 0.9, 0)
	x := tensor.RandN(rng, 1, 128, 256)
	targets := make([]int, 128)
	for i := range targets {
		targets[i] = rng.Intn(10)
	}
	return func() {
		opt.ZeroGrad()
		loss := nn.CrossEntropy(nn.ForwardTensor(model, x), targets)
		if err := nn.Backward(loss); err != nil {
			panic(err)
		}
		opt.Step()
	}
}

// flRound returns a closure running a tiny but complete federated
// simulation: client sampling, parallel local FedAvg updates, aggregation.
func flRound() func() {
	rng := rand.New(rand.NewSource(4))
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	g, err := data.NewGenerator(spec, 1)
	if err != nil {
		panic(err)
	}
	ds := g.GenerateLabeled(rng, 40)
	parts, err := partition.IID(rng, ds, 4, 40)
	if err != nil {
		panic(err)
	}
	clients := partition.BuildClients(rng, ds, parts, nil)
	arch := ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
	cfg := baselines.DefaultConfig(arch, 10)
	cfg.Train.Epochs = 1
	cfg.Train.BatchSize = 16
	cfg.Head.Epochs = 1
	method := baselines.NewFedAvg(cfg)
	return func() {
		sim, err := fl.NewSimulator(fl.SimConfig{
			Rounds: 2, ClientsPerRound: 2, Seed: 7,
		}, method, clients)
		if err != nil {
			panic(err)
		}
		if _, _, err := sim.Run(context.Background()); err != nil {
			panic(err)
		}
	}
}

// runKernelBench runs the full harness and writes BENCH_kernels.json into
// outDir (creating it if needed). quick shrinks per-measurement time so the
// harness fits in CI.
func runKernelBench(outDir string, quick bool) error {
	minTime := 300 * time.Millisecond
	if quick {
		minTime = 30 * time.Millisecond
	}
	workers := tensor.Workers()
	file := KernelBenchFile{
		Schema:     KernelBenchSchema,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
	if file.GOMaxProcs == 1 {
		file.Note = "recorded on a single-core host: pool workers time-slice one core, so speedup_vs_serial reflects overhead, not parallelism"
	}
	file.Records = benchKernels(minTime, []int{64, 128, 256})
	file.Records = append(file.Records,
		benchSerialVsPool(minTime, workers, "mlp-train-step", "batch128-256-256-128-10", mlpTrainStep),
		benchSerialVsPool(minTime, workers, "fl-round", "fedavg-4clients-2rounds", flRound),
	)

	fmt.Printf("kernel bench: %s/%s gomaxprocs=%d workers=%d\n", file.GOOS, file.GOARCH, file.GOMaxProcs, file.Workers)
	fmt.Printf("%-14s %-24s %12s %12s %8s %8s\n", "op", "shape", "ns/op", "serial", "allocs", "speedup")
	for _, r := range file.Records {
		fmt.Printf("%-14s %-24s %12d %12d %8d %7.2fx\n", r.Op, r.Shape, r.NsOp, r.SerialNsOp, r.AllocsOp, r.SpeedupVsSerial)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(outDir, "BENCH_kernels.json")
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
