package main

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/trace"
)

// runDoctor drives the CLI and returns its rendered output.
func runDoctor(t *testing.T, args ...string) string {
	t.Helper()
	var b bytes.Buffer
	if err := run(args, &b); err != nil {
		t.Fatalf("calibre-doctor %v: %v", args, err)
	}
	return b.String()
}

// hostileTrace runs one hostile smoke-scale federation with both a live
// monitor and a flight recorder attached, returning the trace path and
// the live monitor's diagnosis. The deterministic clock makes the trace
// bytes — and therefore every replay — reproducible.
func hostileTrace(t *testing.T, dir string) (string, health.Diagnosis) {
	t.Helper()
	setting, ok := experiments.Settings()["cifar10-q(2,500)"]
	if !ok {
		t.Fatal("setting cifar10-q(2,500) missing")
	}
	env, err := experiments.BuildEnvironment(setting, experiments.ScaleSmoke, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiments.BuildMethod(env, "fedavg-ft")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "hostile.trace")
	sink, err := trace.OpenFile(path, trace.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(sink, trace.Config{Clock: trace.StepClock(1)})
	hc := health.DefaultConfig()
	mon := health.NewMonitor(&hc)
	_, err = experiments.RunBuiltMethodWith(context.Background(), env, m, func(cfg *fl.SimConfig) {
		cfg.Rounds = 8
		cfg.ClientsPerRound = 5 // norm-z needs round cohorts of ≥4
		cfg.Parallelism = 1     // single-goroutine regime for StepClock
		cfg.Adversary = &fl.Adversary{Kind: fl.AdvSignFlip, Scale: 6, Frac: 0.3}
		cfg.Recorder = rec
		cfg.Health = mon
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return path, mon.Diagnosis()
}

// TestDoctorReplayMatchesLiveMonitor is the replay-fidelity pin: the
// diagnosis calibre-doctor reconstructs from a monitored run's trace is
// identical — as a value and as rendered text — to the diagnosis the
// live monitor held when that run finished.
func TestDoctorReplayMatchesLiveMonitor(t *testing.T) {
	path, live := hostileTrace(t, t.TempDir())
	if len(live.Alerts) == 0 || len(live.Suspects) == 0 {
		t.Fatalf("hostile run raised nothing — fidelity test is vacuous: %+v", live)
	}

	var want bytes.Buffer
	if err := live.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	got := runDoctor(t, "replay", path)
	if got != want.String() {
		t.Errorf("replay text diverges from the live diagnosis:\n--- live ---\n%s--- replay ---\n%s", want.String(), got)
	}

	var replayed health.Diagnosis
	if err := json.Unmarshal([]byte(runDoctor(t, "replay", path, "-json")), &replayed); err != nil {
		t.Fatalf("replay -json: %v", err)
	}
	if !reflect.DeepEqual(replayed, live) {
		t.Errorf("replay diagnosis = %+v\nwant live %+v", replayed, live)
	}

	// Replay is deterministic: two invocations render identical bytes.
	if again := runDoctor(t, "replay", path); again != got {
		t.Error("two replays of the same trace differ")
	}
}

// TestDoctorLiveOverHTTP polls a real /metrics endpoint whose round ring
// carries a norm outlier and checks the doctor's monitor reaches the
// same verdict as one fed the samples directly.
func TestDoctorLiveOverHTTP(t *testing.T) {
	samples := make([]obs.RoundSample, 0, 3)
	for round := 0; round < 3; round++ {
		s := obs.RoundSample{Runtime: "sim", Round: round, Participants: 5, Responders: 5, MeanLoss: 1}
		for id := 0; id < 5; id++ {
			norm := 0.2 + 0.01*float64(id)
			if id == 4 {
				norm = 50 // screaming outlier every round
			}
			s.Clients = append(s.Clients, obs.ClientSample{ID: id, Loss: 1, Norm: norm})
		}
		samples = append(samples, s)
	}
	reg := obs.NewRegistry()
	hc := health.DefaultConfig()
	want := health.NewMonitor(&hc)
	for _, s := range samples {
		reg.ObserveRound(s)
		want.ObserveRound(s)
	}
	wd := want.Diagnosis()
	if !reflect.DeepEqual(wd.Suspects, []int{4}) {
		t.Fatalf("reference monitor did not flag the outlier: %+v", wd)
	}
	srv, addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wantText bytes.Buffer
	if err := wd.WriteText(&wantText); err != nil {
		t.Fatal(err)
	}
	got := runDoctor(t, "live", "-addr", addr.String(), "-once")
	// The -once output is the alert lines followed by the diagnosis.
	if !strings.HasSuffix(got, wantText.String()) {
		t.Errorf("live diagnosis diverges:\nwant suffix\n%s\ngot\n%s", wantText.String(), got)
	}
	if !strings.Contains(got, "suspected adversary") {
		t.Errorf("live mode printed no alert line:\n%s", got)
	}

	var liveJSON health.Diagnosis
	if err := json.Unmarshal([]byte(runDoctor(t, "live", "-addr", addr.String(), "-once", "-json")), &liveJSON); err != nil {
		t.Fatalf("live -json: %v", err)
	}
	if !reflect.DeepEqual(liveJSON, wd) {
		t.Errorf("live -json diagnosis = %+v\nwant %+v", liveJSON, wd)
	}
}

func TestDoctorRejectsBadInput(t *testing.T) {
	var b bytes.Buffer
	if err := run(nil, &b); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"frob"}, &b); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"replay"}, &b); err == nil {
		t.Fatal("replay without a trace file accepted")
	}
	if err := run([]string{"replay", "/nonexistent/trace"}, &b); err == nil {
		t.Fatal("missing trace file accepted")
	}
	if err := run([]string{"live", "-addr", "127.0.0.1:1", "-timeout", "100ms", "-interval", "50ms"}, &b); err == nil || !strings.Contains(err.Error(), "no answer") {
		t.Fatalf("dead endpoint not bounded: %v", err)
	}
	if err := run([]string{"live", "-health", "frobnicate(9)"}, &b); err == nil {
		t.Fatal("invalid -health spec accepted")
	}
	if err := run([]string{"replay", "-", "stray"}, &b); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}

// TestDoctorReplayCellSplit checks a multi-cell trace is split per cell
// and -cell narrows the report to one federation.
func TestDoctorReplayCellSplit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cells.trace")
	sink, err := trace.OpenFile(path, trace.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(sink, trace.Config{Clock: trace.StepClock(1)})
	for _, cell := range []string{"cell-a", "cell-b"} {
		v := rec.WithCell(cell)
		loss := 1.0
		if cell == "cell-b" {
			loss = 50 // divergence-worthy jump after warmup in cell-b only
		}
		for round := 0; round < 6; round++ {
			l := 1.0
			if round >= 3 {
				l = loss
			}
			v.Emit(trace.Event{Kind: trace.KindRoundStart, TS: v.Now(), Round: round, Client: -1, N: 2, Runtime: "sim"})
			v.Emit(trace.Event{Kind: trace.KindRoundEnd, TS: v.Now(), Round: round, Client: -1, N: 2, Loss: l, Runtime: "sim"})
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	out := runDoctor(t, "replay", path)
	if !strings.Contains(out, "== cell cell-a ==") || !strings.Contains(out, "== cell cell-b ==") {
		t.Fatalf("multi-cell trace not split per cell:\n%s", out)
	}
	if !strings.Contains(out, "loss-divergence") {
		t.Fatalf("cell-b divergence not diagnosed:\n%s", out)
	}
	only := runDoctor(t, "replay", path, "-cell", "cell-a")
	if strings.Contains(only, "cell-b") || !strings.Contains(only, "no alerts — federation healthy") {
		t.Fatalf("-cell did not isolate the healthy federation:\n%s", only)
	}
}
