// Command calibre-doctor diagnoses a federation's health: it feeds
// observed round streams through the streaming detectors of
// internal/health and renders the ranked diagnosis — alerts in raise
// order, the suspected-adversary set, and the per-client health table,
// least healthy first.
//
// Two sources:
//
//	calibre-doctor replay FILE [-cell KEY] [-health SPEC] [-json]
//	calibre-doctor live   -addr HOST:PORT [-health SPEC] [-interval D] [-timeout D] [-once] [-json]
//
// replay reads a flight-recorder trace (calibre-server/-sweep -trace-out,
// FILE may be "-" for stdin), reconstructs each federation's round stream
// offline, and diagnoses it after the fact — sweeps are split per cell.
// The verdict is a pure function of the trace bytes: two replays of the
// same file render byte-identical reports, and replaying a trace written
// by a monitored run reproduces that run's live diagnosis.
//
// live polls a running federation's -metrics-addr endpoint (the /metrics
// JSON snapshot), streams newly completed rounds through its own monitor,
// prints alerts as they trip, and renders the final diagnosis when the
// run ends (or immediately with -once). Per-client detectors (update-norm
// outliers, per-client scores) need per-client detail in the metrics
// ring, which producers include when running with -health; without it the
// federation-level detectors (loss, quorum) still apply.
//
// Norm-bearing traces require the producing run to have had a health
// monitor or flight recorder attached — exactly the runs worth
// diagnosing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-doctor:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: calibre-doctor <replay|live> [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "replay":
		return replay(rest, w)
	case "live":
		return live(rest, w)
	default:
		return fmt.Errorf("unknown subcommand %q (want replay or live)", cmd)
	}
}

// parseHealth builds the monitor config from the shared -health spec.
func parseHealth(spec string) (*health.Config, error) {
	hc, err := health.ParseRules(spec)
	if err != nil {
		return nil, err
	}
	return &hc, nil
}

// replay diagnoses a recorded trace offline.
func replay(args []string, w io.Writer) error {
	if len(args) < 1 || args[0] == "" || args[0][0] == '-' {
		return fmt.Errorf("replay: missing trace file (or - for stdin)")
	}
	path, args := args[0], args[1:]
	fs := flag.NewFlagSet("calibre-doctor replay", flag.ContinueOnError)
	var (
		cell    = fs.String("cell", "", "diagnose only this sweep cell key; empty diagnoses every federation in the trace")
		spec    = fs.String("health", "default", `detector rules: "default", "all", or a spec like "non-finite,norm-z(3.5,2)" (see internal/health)`)
		jsonOut = fs.Bool("json", false, "emit the diagnosis as JSON instead of the text report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	hc, err := parseHealth(*spec)
	if err != nil {
		return err
	}
	events, truncated, err := loadTrace(path)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintln(w, "note: trace ends mid-record (crash or live file); diagnosing the intact prefix")
	}

	// Split the event stream per federation: every event a sweep cell's
	// simulation emits carries the cell key, a lone server/sim run none.
	byCell := make(map[string][]trace.Event)
	for _, e := range events {
		byCell[e.Cell] = append(byCell[e.Cell], e)
	}
	if *cell != "" {
		evs, ok := byCell[*cell]
		if !ok {
			return fmt.Errorf("replay: no events for cell %q in %s", *cell, path)
		}
		byCell = map[string][]trace.Event{*cell: evs}
	}
	keys := make([]string, 0, len(byCell))
	diagnoses := make(map[string]health.Diagnosis, len(byCell))
	for k, evs := range byCell {
		samples := health.ReplaySamples(evs)
		if len(samples) == 0 {
			continue
		}
		mon := health.NewMonitor(hc)
		for _, s := range samples {
			mon.ObserveRound(s)
		}
		keys = append(keys, k)
		diagnoses[k] = mon.Diagnosis()
	}
	if len(keys) == 0 {
		return fmt.Errorf("replay: no completed rounds in %s", path)
	}
	sort.Strings(keys)
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if len(keys) == 1 && keys[0] == "" {
			return enc.Encode(diagnoses[""])
		}
		return enc.Encode(diagnoses)
	}
	for i, k := range keys {
		if k != "" || len(keys) > 1 {
			if i > 0 {
				fmt.Fprintln(w)
			}
			name := k
			if name == "" {
				name = "(no cell)"
			}
			fmt.Fprintf(w, "== cell %s ==\n", name)
		}
		if err := diagnoses[k].WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// live attaches the detectors to a running federation's metrics endpoint.
func live(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("calibre-doctor live", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9100", "host:port of a running -metrics-addr endpoint")
		spec     = fs.String("health", "default", `detector rules: "default", "all", or a spec like "non-finite,norm-z(3.5,2)" (see internal/health)`)
		interval = fs.Duration("interval", time.Second, "poll interval")
		timeout  = fs.Duration("timeout", 10*time.Second, "give up if the endpoint never answers within this window")
		once     = fs.Bool("once", false, "diagnose one snapshot and exit")
		jsonOut  = fs.Bool("json", false, "emit the final diagnosis as JSON (suppresses live alert lines)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	hc, err := parseHealth(*spec)
	if err != nil {
		return err
	}
	mon := health.NewMonitor(hc)
	render := func() error {
		if *jsonOut {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(mon.Diagnosis())
		}
		return mon.Diagnosis().WriteText(w)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	url := "http://" + *addr + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*timeout)
	connected := false
	// The metrics ring is chronological and overlaps between polls;
	// (runtime, round) identifies a completed round exactly once.
	seen := make(map[string]bool)
	for {
		snap, err := scrape(ctx, client, url)
		switch {
		case err == nil:
			connected = true
			for _, rs := range snap.Rounds {
				key := rs.Runtime + "\x00" + strconv.Itoa(rs.Round)
				if seen[key] {
					continue
				}
				seen[key] = true
				for _, a := range mon.ObserveRound(rs) {
					if !*jsonOut {
						fmt.Fprintln(w, a)
					}
				}
			}
			if *once {
				return render()
			}
		case ctx.Err() != nil:
			return render()
		case connected:
			// The endpoint answered before and is gone now: the federation
			// finished. Render what the whole run added up to.
			if !*jsonOut {
				fmt.Fprintln(w, "live: metrics endpoint gone (run finished?) — final diagnosis:")
			}
			return render()
		case time.Now().After(deadline):
			return fmt.Errorf("live: no answer from %s within %s: %w", *addr, *timeout, err)
		}
		select {
		case <-ctx.Done():
			return render()
		case <-time.After(*interval):
		}
	}
}

// scrape fetches and decodes one JSON metrics snapshot.
func scrape(ctx context.Context, client *http.Client, url string) (obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

// loadTrace decodes FILE (or stdin for "-"), tolerating a torn tail the
// way calibre-trace does: the intact prefix is diagnosed.
func loadTrace(path string) (events []trace.Event, truncated bool, err error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		r = f
	}
	events, err = trace.ReadAll(r)
	if errors.Is(err, trace.ErrTruncated) {
		return events, true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return events, false, nil
}
