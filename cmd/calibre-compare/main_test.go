package main

import (
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
)

func TestCompareSmoke(t *testing.T) {
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-scale", "smoke", "-seed", "7", "fedavg-ft"})
	})
	if !strings.Contains(out, "fedavg-ft") || !strings.Contains(out, "mean=") {
		t.Fatalf("output not parseable:\n%s", out)
	}
}

func TestCompareAblationVariantSmoke(t *testing.T) {
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-scale", "smoke", "-seed", "7", "calibre-simclr[base]"})
	})
	if !strings.Contains(out, "calibre-simclr[base]") {
		t.Fatalf("output not parseable:\n%s", out)
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "smoke"}); err == nil {
		t.Fatal("no methods accepted")
	}
	if err := run([]string{"-setting", "nope", "fedavg-ft"}); err == nil {
		t.Fatal("unknown setting accepted")
	}
	if err := run([]string{"-scale", "smoke", "calibre-simclr[bogus]"}); err == nil {
		t.Fatal("unknown regularizer combo accepted")
	}
}
