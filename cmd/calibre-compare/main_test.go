package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
	"calibre/internal/sweep"
)

func TestCompareSmoke(t *testing.T) {
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-scale", "smoke", "-seed", "7", "fedavg-ft"})
	})
	if !strings.Contains(out, "fedavg-ft") || !strings.Contains(out, "mean=") {
		t.Fatalf("output not parseable:\n%s", out)
	}
}

func TestCompareAblationVariantSmoke(t *testing.T) {
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-scale", "smoke", "-seed", "7", "calibre-simclr[base]"})
	})
	if !strings.Contains(out, "calibre-simclr[base]") {
		t.Fatalf("output not parseable:\n%s", out)
	}
}

// TestCompareDiffSweeps runs the issue's flagship diff: the same grid
// once with the dense update wire and once with the XOR-delta wire, then
// diffs the two sweep CSVs method-by-method. The delta wire is lossless,
// so every drift column must be exactly zero.
func TestCompareDiffSweeps(t *testing.T) {
	writeCells := func(delta bool) string {
		t.Helper()
		g := &sweep.Grid{
			Methods:      []string{"fedavg", "fedavg-ft"},
			Settings:     []string{"cifar10-q(2,500)"},
			Seeds:        []int64{1},
			DeltaUpdates: []bool{delta},
		}
		res, err := sweep.Run(context.Background(), g, sweep.Config{})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "sweep-cells.csv")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := sweep.NewReport(res).WriteCellsCSV(f); err != nil {
			t.Fatal(err)
		}
		return path
	}
	dense, deltaCSV := writeCells(false), writeCells(true)

	// The lossless-wire guarantee, asserted exactly: parse both CSVs and
	// require bitwise-equal summaries per (method, seed) — the printed
	// "+0.0000" columns round and could hide sub-precision drift.
	parse := func(path string) map[string]sweep.CellRow {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rows, err := sweep.ReadCellsCSV(f)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]sweep.CellRow, len(rows))
		for _, r := range rows {
			out[fmt.Sprintf("%s|%s|%d", r.Method, r.Setting, r.Seed)] = r
		}
		return out
	}
	a, b := parse(dense), parse(deltaCSV)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("expected 2 cells per sweep, got %d and %d", len(a), len(b))
	}
	for k, ra := range a {
		rb, ok := b[k]
		if !ok {
			t.Fatalf("cell %s missing from the delta sweep", k)
		}
		if ra.Mean != rb.Mean || ra.Variance != rb.Variance || ra.Std != rb.Std || ra.Bottom10 != rb.Bottom10 {
			t.Fatalf("delta wire drifted on %s:\n%+v\nvs\n%+v", k, ra, rb)
		}
	}

	// Dense vs delta wire: the cells differ in the wire axis (and thus in
	// full key), but the A/B join matches them per (method, env).
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-diff", dense, deltaCSV})
	})
	if !strings.Contains(out, "sweep diff:") || !strings.Contains(out, "fedavg-ft") {
		t.Fatalf("diff output not parseable:\n%s", out)
	}
	if !strings.Contains(out, "+0.0000") || !strings.Contains(out, "+0.00000") {
		t.Fatalf("dense vs delta should show zero drift:\n%s", out)
	}
	if strings.Contains(out, "only in") {
		t.Fatalf("all cells should be matched by the A/B join:\n%s", out)
	}
}

func TestCompareRejectsBadInput(t *testing.T) {
	if err := run([]string{"-scale", "smoke"}); err == nil {
		t.Fatal("no methods accepted")
	}
	if err := run([]string{"-setting", "nope", "fedavg-ft"}); err == nil {
		t.Fatal("unknown setting accepted")
	}
	if err := run([]string{"-scale", "smoke", "calibre-simclr[bogus]"}); err == nil {
		t.Fatal("unknown regularizer combo accepted")
	}
}

// TestCompareBenchDiff diffs two synthetic calibre-bench envelopes and
// pins the satellite fix: a gomaxprocs mismatch must produce an explicit
// warning instead of a silent timings comparison, and both files'
// environments must ride along in the output.
func TestCompareBenchDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, gomaxprocs, nsOp int) string {
		t.Helper()
		path := filepath.Join(dir, name)
		body := fmt.Sprintf(`{"schema":"calibre/bench-kernels/v1","goos":"linux","goarch":"amd64","gomaxprocs":%d,"workers":1,"records":[{"op":"matmul","shape":"64x64x64","ns_op":%d,"allocs_op":0}]}`, gomaxprocs, nsOp)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.json", 1, 1000)
	b := write("b.json", 8, 500)

	oldErr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	errCh := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		errCh <- string(buf)
	}()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"-bench", a, b})
	})
	w.Close()
	os.Stderr = oldErr
	stderr := <-errCh

	if !strings.Contains(out, "gomaxprocs=1") || !strings.Contains(out, "gomaxprocs=8") {
		t.Fatalf("both environments must be printed with the diff:\n%s", out)
	}
	if !strings.Contains(out, "ns_op 1000 → 500 (-50.0%)") {
		t.Fatalf("record diff missing:\n%s", out)
	}
	if !strings.Contains(stderr, "warning:") || !strings.Contains(stderr, "gomaxprocs 1 vs 8") {
		t.Fatalf("gomaxprocs mismatch must warn on stderr, got:\n%s", stderr)
	}

	// Identical environments: no warning.
	c := write("c.json", 1, 900)
	os.Stderr, _ = os.Open(os.DevNull)
	r2, w2, _ := os.Pipe()
	os.Stderr = w2
	errCh2 := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r2)
		errCh2 <- string(buf)
	}()
	climain.CaptureStdout(t, func() error {
		return run([]string{"-bench", a, c})
	})
	w2.Close()
	os.Stderr = oldErr
	if s := <-errCh2; strings.Contains(s, "warning:") {
		t.Fatalf("identical environments should not warn:\n%s", s)
	}
}

func TestCompareBenchRejectsNonEnvelope(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"foo":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", bad, bad}); err == nil {
		t.Fatal("non-envelope JSON accepted")
	}
	if err := run([]string{"-bench", bad}); err == nil {
		t.Fatal("single argument accepted")
	}
}
