package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"calibre/cmd/internal/benchfile"
)

// diffBench diffs two calibre-bench envelopes record by record. Records
// are matched by their string-valued fields (the identity axes: op,
// shape, pattern, state, …) within each shared section, and every shared
// numeric field is diffed. Both recording environments are printed, and
// environment mismatches — above all gomaxprocs, where the committed
// single-core baselines make multi-core timings incomparable — warn
// loudly on stderr rather than being silently averaged into the diff.
func diffBench(pathA, pathB string) error {
	a, err := benchfile.Read(pathA)
	if err != nil {
		return err
	}
	b, err := benchfile.Read(pathB)
	if err != nil {
		return err
	}
	fmt.Printf("bench diff: %s vs %s\n", pathA, pathB)
	fmt.Printf("A: %s (%s)\nB: %s (%s)\n", a.Env(), a.Schema, b.Env(), b.Schema)
	for _, w := range benchfile.EnvMismatch(a, b) {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	shared := 0
	for _, name := range a.SectionNames() {
		rowsB, ok := b.Sections[name]
		if !ok {
			continue
		}
		idxA, idxB := indexRecords(a.Sections[name]), indexRecords(rowsB)
		keys := make([]string, 0, len(idxA))
		for k := range idxA {
			if _, ok := idxB[k]; ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			continue
		}
		shared += len(keys)
		fmt.Printf("\n%s (%d shared records):\n", name, len(keys))
		for _, k := range keys {
			ra, rb := idxA[k], idxB[k]
			var parts []string
			for _, f := range numericFields(ra, rb) {
				va, vb := ra[f].(float64), rb[f].(float64)
				switch {
				case va == vb:
				case va != 0:
					parts = append(parts, fmt.Sprintf("%s %g → %g (%+.1f%%)", f, va, vb, 100*(vb-va)/va))
				default:
					parts = append(parts, fmt.Sprintf("%s %g → %g", f, va, vb))
				}
			}
			if len(parts) == 0 {
				parts = append(parts, "unchanged")
			}
			fmt.Printf("  %s: %s\n", k, strings.Join(parts, ", "))
		}
	}
	if shared == 0 {
		return fmt.Errorf("the two files share no records (different harnesses? A is %s, B is %s)", a.Schema, b.Schema)
	}
	return nil
}

// indexRecords keys each record by its string-valued fields. Records with
// no string fields (e.g. the delta harness's per-round section, keyed by
// a numeric round) fall back to positional identity.
func indexRecords(rows []map[string]any) map[string]map[string]any {
	out := make(map[string]map[string]any, len(rows))
	for i, r := range rows {
		keys := make([]string, 0, len(r))
		for f, v := range r {
			if s, ok := v.(string); ok {
				keys = append(keys, f+"="+s)
			}
		}
		sort.Strings(keys)
		key := strings.Join(keys, " ")
		if key == "" {
			key = fmt.Sprintf("#%d", i)
		}
		out[key] = r
	}
	return out
}

// numericFields returns the sorted field names carrying numbers in both
// records — the measurements worth diffing.
func numericFields(a, b map[string]any) []string {
	var fields []string
	for f, v := range a {
		if _, ok := v.(float64); !ok {
			continue
		}
		if _, ok := b[f].(float64); !ok {
			continue
		}
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return fields
}
