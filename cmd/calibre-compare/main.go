// Command calibre-compare runs a chosen set of methods on one experiment
// setting and prints their mean/variance accuracy side by side — the quick
// way to probe a single comparison without regenerating a whole figure.
//
// Usage:
//
//	calibre-compare -setting 'cifar10-d(0.3,600)' -scale ci -seed 42 \
//	    pfl-simclr calibre-simclr fedavg-ft fedbabu
//
// Variants with explicit Calibre regularizer switches are also accepted:
// calibre-simclr[base], calibre-simclr[ln], calibre-simclr[lp],
// calibre-simclr[ln+lp] (likewise for swav/smog/byol/simsiam/mocov2).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"calibre/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-compare:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-compare", flag.ContinueOnError)
	var (
		setting = fs.String("setting", "cifar10-q(2,500)", "experiment setting")
		scale   = fs.String("scale", "ci", "scale preset: smoke | ci | paper")
		seed    = fs.Int64("seed", 42, "master seed")
		novel   = fs.Bool("novel", false, "also personalize the held-out novel clients")
		dump    = fs.Bool("dump", false, "print the sorted per-client accuracies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	methods := fs.Args()
	if len(methods) == 0 {
		return fmt.Errorf("no methods given; e.g. calibre-compare pfl-simclr calibre-simclr")
	}
	s, ok := experiments.Settings()[*setting]
	if !ok {
		return fmt.Errorf("unknown setting %q", *setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	if !*novel {
		env.Novel = nil
	}
	ctx := context.Background()
	fmt.Printf("setting %s, scale %s, seed %d, %d participants\n\n", *setting, *scale, *seed, len(env.Participants))
	for _, name := range methods {
		start := time.Now()
		out, err := runOne(ctx, env, name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sum := out.Participants.Summary
		fmt.Printf("%-26s mean=%.4f var=%.5f std=%.4f bottom10=%.4f (%s)\n",
			name, sum.Mean, sum.Variance, sum.Std, sum.Bottom10, time.Since(start).Round(time.Millisecond))
		if *novel {
			ns := out.Novel.Summary
			fmt.Printf("%-26s   novel: mean=%.4f var=%.5f\n", "", ns.Mean, ns.Variance)
		}
		if *dump {
			accs := append([]float64(nil), out.Participants.Accs...)
			sort.Float64s(accs)
			fmt.Printf("%-26s   accs: %.2f\n", "", accs)
		}
	}
	return nil
}

// runOne supports both registry names and Calibre ablation variants
// ("calibre-<ssl>[<combo>]").
func runOne(ctx context.Context, env *experiments.Environment, name string) (*experiments.MethodOutcome, error) {
	if open := strings.Index(name, "["); open > 0 && strings.HasSuffix(name, "]") && strings.HasPrefix(name, "calibre-") {
		sslName := name[len("calibre-"):open]
		combo := name[open+1 : len(name)-1]
		var useLn, useLp bool
		switch combo {
		case "base":
		case "ln":
			useLn = true
		case "lp":
			useLp = true
		case "ln+lp":
			useLn, useLp = true, true
		default:
			return nil, fmt.Errorf("unknown regularizer combo %q (base|ln|lp|ln+lp)", combo)
		}
		m, err := experiments.AblationVariant(env, sslName, useLn, useLp)
		if err != nil {
			return nil, err
		}
		return experiments.RunBuiltMethod(ctx, env, m)
	}
	return experiments.RunMethod(ctx, env, name)
}
