// Command calibre-compare runs a chosen set of methods on one experiment
// setting and prints their mean/variance accuracy side by side — the quick
// way to probe a single comparison without regenerating a whole figure.
//
// Usage:
//
//	calibre-compare -setting 'cifar10-d(0.3,600)' -scale ci -seed 42 \
//	    pfl-simclr calibre-simclr fedavg-ft fedbabu
//
// Variants with explicit Calibre regularizer switches are also accepted:
// calibre-simclr[base], calibre-simclr[ln], calibre-simclr[lp],
// calibre-simclr[ln+lp] (likewise for swav/smog/byol/simsiam/mocov2).
//
// With -diff, it instead reads two sweep cells CSVs (as written by
// calibre-sweep into sweep-cells.csv) and diffs them method by method —
// e.g. a dense-wire sweep against a delta-wire sweep:
//
//	calibre-compare -diff dense/sweep-cells.csv delta/sweep-cells.csv
//
// With -bench, it diffs two calibre-bench envelopes (BENCH_*.json)
// record by record. Both files' recording environments are printed with
// the diff, and an explicit warning is emitted when they differ — most
// importantly on gomaxprocs, since the committed baselines were recorded
// single-core and their timings read as regressions against any
// multi-core run:
//
//	calibre-compare -bench BENCH_kernels.json /tmp/new/BENCH_kernels.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"calibre/internal/eval"
	"calibre/internal/experiments"
	"calibre/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-compare:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-compare", flag.ContinueOnError)
	var (
		setting = fs.String("setting", "cifar10-q(2,500)", "experiment setting")
		scale   = fs.String("scale", "ci", "scale preset: smoke | ci | paper")
		seed    = fs.Int64("seed", 42, "master seed")
		novel   = fs.Bool("novel", false, "also personalize the held-out novel clients")
		dump    = fs.Bool("dump", false, "print the sorted per-client accuracies")
		diff    = fs.Bool("diff", false, "diff two sweep cells CSVs method-by-method (args: a.csv b.csv)")
		bench   = fs.Bool("bench", false, "diff two calibre-bench BENCH_*.json envelopes record-by-record (args: a.json b.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two sweep CSV paths, got %d args", fs.NArg())
		}
		return diffSweeps(fs.Arg(0), fs.Arg(1))
	}
	if *bench {
		if fs.NArg() != 2 {
			return fmt.Errorf("-bench wants exactly two BENCH json paths, got %d args", fs.NArg())
		}
		return diffBench(fs.Arg(0), fs.Arg(1))
	}
	methods := fs.Args()
	if len(methods) == 0 {
		return fmt.Errorf("no methods given; e.g. calibre-compare pfl-simclr calibre-simclr")
	}
	s, ok := experiments.Settings()[*setting]
	if !ok {
		return fmt.Errorf("unknown setting %q", *setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	if !*novel {
		env.Novel = nil
	}
	ctx := context.Background()
	fmt.Printf("setting %s, scale %s, seed %d, %d participants\n\n", *setting, *scale, *seed, len(env.Participants))
	for _, name := range methods {
		start := time.Now()
		out, err := runOne(ctx, env, name)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		sum := out.Participants.Summary
		fmt.Printf("%-26s mean=%.4f var=%.5f std=%.4f bottom10=%.4f (%s)\n",
			name, sum.Mean, sum.Variance, sum.Std, sum.Bottom10, time.Since(start).Round(time.Millisecond))
		if *novel {
			ns := out.Novel.Summary
			fmt.Printf("%-26s   novel: mean=%.4f var=%.5f\n", "", ns.Mean, ns.Variance)
		}
		if *dump {
			accs := append([]float64(nil), out.Participants.Accs...)
			sort.Float64s(accs)
			fmt.Printf("%-26s   accs: %.2f\n", "", accs)
		}
	}
	return nil
}

// diffSweeps reads two sweep cells CSVs and prints the per-method drift
// in mean accuracy and fairness variance, aggregated over the cells the
// two sweeps share. Cells are matched by (method, setting, scale, seed)
// — the A/B join for sweeps that differ in a federation knob, like a
// dense-wire sweep against a delta-wire sweep — falling back to the full
// cell key when that join is ambiguous (a sweep with several knob
// combinations per method/environment).
func diffSweeps(pathA, pathB string) error {
	read := func(path string) ([]sweep.CellRow, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		rows, err := sweep.ReadCellsCSV(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		ok := rows[:0]
		for _, r := range rows {
			if r.Status == sweep.StatusOK {
				ok = append(ok, r)
			}
		}
		return ok, nil
	}
	rowsA, err := read(pathA)
	if err != nil {
		return err
	}
	rowsB, err := read(pathB)
	if err != nil {
		return err
	}
	abKey := func(r sweep.CellRow) string {
		return fmt.Sprintf("method=%s|setting=%s|scale=%s|seed=%d", r.Method, r.Setting, r.Scale, r.Seed)
	}
	// The A/B join is only usable when it is unambiguous in BOTH files;
	// otherwise both fall back to full cell keys together.
	unambiguous := func(rows []sweep.CellRow) bool {
		seen := make(map[string]bool, len(rows))
		for _, r := range rows {
			k := abKey(r)
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	keyOf := func(r sweep.CellRow) string { return r.Key }
	if unambiguous(rowsA) && unambiguous(rowsB) {
		keyOf = abKey
	}
	index := func(rows []sweep.CellRow) map[string]sweep.CellRow {
		out := make(map[string]sweep.CellRow, len(rows))
		for _, r := range rows {
			out[keyOf(r)] = r
		}
		return out
	}
	a, b := index(rowsA), index(rowsB)
	type acc struct {
		cells        int
		meanA, meanB float64
		varA, varB   float64
	}
	byMethod := make(map[string]*acc)
	onlyA, onlyB := 0, 0
	for key, ra := range a {
		rb, ok := b[key]
		if !ok {
			onlyA++
			continue
		}
		m := byMethod[ra.Method]
		if m == nil {
			m = &acc{}
			byMethod[ra.Method] = m
		}
		m.cells++
		m.meanA += ra.Mean
		m.meanB += rb.Mean
		m.varA += ra.Variance
		m.varB += rb.Variance
	}
	for key := range b {
		if _, ok := a[key]; !ok {
			onlyB++
		}
	}
	if len(byMethod) == 0 {
		return fmt.Errorf("the two sweeps share no completed cells (different grids?)")
	}
	methods := make([]string, 0, len(byMethod))
	for m := range byMethod {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Printf("sweep diff: %s vs %s\n", pathA, pathB)
	if onlyA > 0 || onlyB > 0 {
		fmt.Printf("note: %d cells only in A, %d only in B (excluded from the diff)\n", onlyA, onlyB)
	}
	fmt.Printf("%-26s %6s %12s %12s %12s %14s %12s\n", "method", "cells", "mean A", "mean B", "Δmean", "Δfairness-var", "Δvar%")
	for _, name := range methods {
		m := byMethod[name]
		n := float64(m.cells)
		meanA, meanB := m.meanA/n, m.meanB/n
		varA, varB := m.varA/n, m.varB/n
		fmt.Printf("%-26s %6d %12.4f %12.4f %+12.4f %+14.5f %+11.1f%%\n",
			name, m.cells, meanA, meanB, meanB-meanA, varB-varA, eval.VarianceReductionOf(varB, varA))
	}
	return nil
}

// runOne supports both registry names and Calibre ablation variants
// ("calibre-<ssl>[<combo>]").
func runOne(ctx context.Context, env *experiments.Environment, name string) (*experiments.MethodOutcome, error) {
	if open := strings.Index(name, "["); open > 0 && strings.HasSuffix(name, "]") && strings.HasPrefix(name, "calibre-") {
		sslName := name[len("calibre-"):open]
		combo := name[open+1 : len(name)-1]
		var useLn, useLp bool
		switch combo {
		case "base":
		case "ln":
			useLn = true
		case "lp":
			useLp = true
		case "ln+lp":
			useLn, useLp = true, true
		default:
			return nil, fmt.Errorf("unknown regularizer combo %q (base|ln|lp|ln+lp)", combo)
		}
		m, err := experiments.AblationVariant(env, sslName, useLn, useLp)
		if err != nil {
			return nil, err
		}
		return experiments.RunBuiltMethod(ctx, env, m)
	}
	return experiments.RunMethod(ctx, env, name)
}
