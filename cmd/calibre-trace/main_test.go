package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/flnet"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/trace"
)

// writeSyntheticTrace emits a small deterministic two-round trace (one
// with a drop) to a temp file and returns its path.
func writeSyntheticTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := trace.OpenFile(path, trace.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(sink, trace.Config{Clock: trace.StepClock(1_000_000)})
	for round := 0; round < 2; round++ {
		ts := rec.Now()
		rec.Emit(trace.Event{Kind: trace.KindRoundStart, TS: ts, Runtime: "sim", Round: round, Client: -1, N: 2})
		rec.Emit(trace.Event{Kind: trace.KindClientDispatch, TS: rec.Now(), Runtime: "sim", Round: round, Client: 0})
		rec.Emit(trace.Event{Kind: trace.KindClientUpdate, TS: rec.Now(), Runtime: "sim", Round: round, Client: 0,
			Wire: "delta", Bytes: 128, Dur: 2_000_000, Loss: 0.5})
		rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: rec.Now(), Runtime: "sim", Round: round, Client: 1,
			Reason: trace.DropStraggler})
		rec.Emit(trace.Event{Kind: trace.KindRoundEnd, TS: rec.Now(), Runtime: "sim", Round: round, Client: -1,
			N: 1, Dur: 5_000_000, Loss: 0.5})
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("calibre-trace %v: %v", args, err)
	}
	return out.String()
}

func TestSummarySynthetic(t *testing.T) {
	path := writeSyntheticTrace(t)
	out := runCLI(t, "summary", path)
	for _, want := range []string{
		"events:   10",
		"rounds:   2 spans",
		"updates:  2  (wire: delta 2, uplink 256B)",
		"drops:    2  (straggler 2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineSynthetic(t *testing.T) {
	path := writeSyntheticTrace(t)
	out := runCLI(t, "timeline", path, "-width", "20")
	for _, want := range []string{
		"round 0  sampled 2  aggregated 1  span 5.0ms",
		"client 0",
		"#", // a rendered bar
		"drop: straggler",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// -round filters.
	only := runCLI(t, "timeline", path, "-round", "1")
	if strings.Contains(only, "round 0") || !strings.Contains(only, "round 1") {
		t.Errorf("-round 1 filter failed:\n%s", only)
	}
}

func TestGrepSynthetic(t *testing.T) {
	path := writeSyntheticTrace(t)
	out := runCLI(t, "grep", path, "-kind", "client_drop", "-count")
	if strings.TrimSpace(out) != "2" {
		t.Errorf("grep -count = %q, want 2", strings.TrimSpace(out))
	}
	lines := runCLI(t, "grep", path, "-kind", "client_update", "-round", "1")
	if n := strings.Count(lines, "\n"); n != 1 {
		t.Errorf("grep matched %d lines, want 1:\n%s", n, lines)
	}
	if !strings.Contains(lines, `"t":"client_update"`) || !strings.Contains(lines, `"round":1`) {
		t.Errorf("grep output malformed:\n%s", lines)
	}
}

func TestTornTailTolerated(t *testing.T) {
	path := writeSyntheticTrace(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(torn, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "summary", torn)
	if !strings.Contains(out, "torn tail") {
		t.Errorf("summary on a torn trace should note the truncation:\n%s", out)
	}
	if !strings.Contains(out, "events:   9") {
		t.Errorf("summary should keep the decoded prefix:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no args should error")
	}
	if err := run([]string{"bogus", "x"}, &out); err == nil {
		t.Error("unknown subcommand should error")
	}
	if err := run([]string{"summary"}, &out); err == nil {
		t.Error("missing file should error")
	}
	if err := run([]string{"summary", filepath.Join(t.TempDir(), "absent")}, &out); err == nil {
		t.Error("absent file should error")
	}
}

// TestTimelineRendersRealFederation is the acceptance pin: a real traced
// TCP federation with a deadline straggler and a seeded availability
// trace renders a timeline attributing at least one drop to each cause.
func TestTimelineRendersRealFederation(t *testing.T) {
	const n = 4
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	g, err := data.NewGenerator(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 10*n)
	parts, err := partition.IID(rng, ds, n, 20)
	if err != nil {
		t.Fatal(err)
	}
	clients := partition.BuildClients(rng, ds, parts, nil)

	path := filepath.Join(t.TempDir(), "fed.jsonl")
	sink, err := trace.OpenFile(path, trace.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(sink, trace.Config{})
	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: 5, ClientsPerRound: 3, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		IOTimeout:  20 * time.Second,
		Quorum:     1, RoundDeadline: 400 * time.Millisecond, Straggler: fl.StragglerRequeue,
		Trace:    &fl.TraceConfig{Kind: fl.TraceDiurnal, Base: 0.2, Amp: 0.15, Period: 4},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lat func(int) time.Duration
			if id == n-1 {
				// Client 3 always sleeps past the round deadline: a
				// deterministic straggler whenever it is sampled.
				lat = func(int) time.Duration { return 1200 * time.Millisecond }
			}
			flnet.RunClient(ctx, flnet.ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: stubTrainer{}, Personalizer: stubPersonalizer{},
				Seed: 7, IOTimeout: 20 * time.Second, SimLatency: lat,
			})
		}(i)
	}
	if _, err := srv.Run(ctx); err != nil {
		t.Fatalf("server Run: %v", err)
	}
	wg.Wait()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	out := runCLI(t, "timeline", path)
	t.Logf("timeline:\n%s", out)
	if !strings.Contains(out, "drop: straggler") {
		t.Errorf("timeline attributes no straggler drop:\n%s", out)
	}
	if !strings.Contains(out, "drop: trace") {
		t.Errorf("timeline attributes no availability-trace drop:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "round 0") {
		t.Errorf("timeline renders no gantt bars:\n%s", out)
	}
	sum := runCLI(t, "summary", path)
	if !strings.Contains(sum, "straggler") || !strings.Contains(sum, "trace") {
		t.Errorf("summary misses a drop reason:\n%s", sum)
	}
}

// stubTrainer/stubPersonalizer keep the acceptance federation cheap.
type stubTrainer struct{}

func (stubTrainer) Train(_ context.Context, _ *rand.Rand, c *partition.Client, global param.Vector, _ int) (*fl.Update, error) {
	out := make([]float64, len(global))
	for i, v := range global {
		out[i] = v + 1
	}
	return &fl.Update{ClientID: c.ID, Params: out, NumSamples: c.Train.Len(), TrainLoss: 0.5}, nil
}

type stubPersonalizer struct{}

func (stubPersonalizer) Personalize(_ context.Context, _ *rand.Rand, c *partition.Client, _ param.Vector) (float64, error) {
	return float64(c.ID) / 10, nil
}
