package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"calibre/internal/trace"
)

func runGrep(args []string, w io.Writer) error {
	path, rest, err := traceFile(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("calibre-trace grep", flag.ContinueOnError)
	kind := fs.String("kind", "", "event kind (round_start, client_drop, ...)")
	round := fs.Int("round", -1, "round filter (-1 = any)")
	client := fs.Int("client", -1, "client filter (-1 = any)")
	reason := fs.String("reason", "", "drop reason filter (trace|straggler|rejected|adversarial)")
	cell := fs.String("cell", "", "sweep cell key filter")
	count := fs.Bool("count", false, "print only the number of matching events")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	events, truncated, err := loadTrace(path)
	if err != nil {
		return err
	}
	matched := 0
	for _, e := range events {
		if *kind != "" && e.Kind != trace.Kind(*kind) {
			continue
		}
		if *round >= 0 && e.Round != *round {
			continue
		}
		if *client >= 0 && e.Client != *client {
			continue
		}
		if *reason != "" && e.Reason != trace.DropReason(*reason) {
			continue
		}
		if *cell != "" && e.Cell != *cell {
			continue
		}
		matched++
		if !*count {
			line, err := json.Marshal(e)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\n", line)
		}
	}
	if *count {
		fmt.Fprintln(w, matched)
	}
	if truncated && !*count {
		fmt.Fprintln(w, "note: trace ends mid-record (torn tail tolerated)")
	}
	return nil
}
