// Command calibre-trace reads flight-recorder traces written by
// calibre-server -trace, calibre-sweep -trace and the fl simulator
// (internal/trace length-prefixed JSONL) and renders them offline:
// aggregate summaries, an ASCII per-round timeline, and an event grep.
//
// Usage:
//
//	calibre-trace summary  FILE
//	calibre-trace timeline FILE [-round N] [-cell KEY] [-width N]
//	calibre-trace grep     FILE [-kind K] [-round N] [-client N] [-reason R] [-cell KEY] [-count]
//
// FILE may be "-" for stdin. A torn trailing record (a crash mid-write)
// is tolerated everywhere: the decoded prefix is used and the truncation
// is reported on stderr-adjacent summary lines, never as a hard error.
package main

import (
	"errors"
	"fmt"
	"io"
	"os"

	"calibre/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: calibre-trace <summary|timeline|grep> FILE [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return runSummary(rest, w)
	case "timeline":
		return runTimeline(rest, w)
	case "grep":
		return runGrep(rest, w)
	default:
		return fmt.Errorf("unknown subcommand %q (want summary, timeline or grep)", cmd)
	}
}

// loadTrace decodes FILE (or stdin for "-"), tolerating a torn tail.
// truncated reports whether the trace ended mid-record.
func loadTrace(path string) (events []trace.Event, truncated bool, err error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		r = f
	}
	events, err = trace.ReadAll(r)
	if errors.Is(err, trace.ErrTruncated) {
		return events, true, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", path, err)
	}
	return events, false, nil
}

// traceFile pops the positional FILE argument off the front of args,
// leaving the flags for the subcommand's FlagSet.
func traceFile(args []string) (string, []string, error) {
	if len(args) < 1 || args[0] == "" {
		return "", nil, fmt.Errorf("missing trace file (or - for stdin)")
	}
	return args[0], args[1:], nil
}

// formatNS renders a nanosecond duration compactly for tables.
func formatNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// formatBytes renders a byte count compactly.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
