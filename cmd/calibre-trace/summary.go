package main

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"calibre/internal/trace"
)

// traceStats aggregates one trace (or one cell's slice of it).
type traceStats struct {
	events    int
	runtimes  map[string]bool
	rounds    []int64 // round_end durations, ns
	turns     []int64 // client_update turnarounds, ns
	updates   int
	wire      map[string]int
	uplink    int64
	drops     map[trace.DropReason]int
	saves     int
	resumes   int
	cellSpans int
}

func newTraceStats() *traceStats {
	return &traceStats{
		runtimes: map[string]bool{},
		wire:     map[string]int{},
		drops:    map[trace.DropReason]int{},
	}
}

func (s *traceStats) add(e trace.Event) {
	s.events++
	if e.Runtime != "" {
		s.runtimes[e.Runtime] = true
	}
	switch e.Kind {
	case trace.KindRoundEnd:
		s.rounds = append(s.rounds, e.Dur)
	case trace.KindClientUpdate:
		s.updates++
		s.turns = append(s.turns, e.Dur)
		if e.Wire != "" {
			s.wire[e.Wire]++
		}
		s.uplink += e.Bytes
	case trace.KindClientDrop:
		s.drops[e.Reason]++
	case trace.KindCheckpointSave:
		s.saves++
	case trace.KindResume:
		s.resumes++
	case trace.KindCellStart:
		s.cellSpans++
	}
}

// quantile returns the q-quantile (0..1) of ns by nearest-rank over a
// sorted copy; 0 when empty.
func quantile(ns []int64, q float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func spanLine(name string, ns []int64) string {
	if len(ns) == 0 {
		return fmt.Sprintf("%s:   none", name)
	}
	var sum int64
	for _, d := range ns {
		sum += d
	}
	return fmt.Sprintf("%s:   %d spans  (mean %s  p50 %s  p95 %s  max %s)",
		name, len(ns),
		formatNS(sum/int64(len(ns))),
		formatNS(quantile(ns, 0.50)),
		formatNS(quantile(ns, 0.95)),
		formatNS(quantile(ns, 1.0)))
}

func (s *traceStats) write(w io.Writer, indent string) {
	rts := make([]string, 0, len(s.runtimes))
	for rt := range s.runtimes {
		rts = append(rts, rt)
	}
	sort.Strings(rts)
	fmt.Fprintf(w, "%sevents:   %d  (runtimes: %s)\n", indent, s.events, strings.Join(rts, ","))
	fmt.Fprintf(w, "%s%s\n", indent, spanLine("rounds", s.rounds))
	wires := make([]string, 0, len(s.wire))
	for k := range s.wire {
		wires = append(wires, k)
	}
	sort.Strings(wires)
	wireParts := make([]string, 0, len(wires))
	for _, k := range wires {
		wireParts = append(wireParts, fmt.Sprintf("%s %d", k, s.wire[k]))
	}
	wireDesc := "none"
	if len(wireParts) > 0 {
		wireDesc = strings.Join(wireParts, " / ")
	}
	fmt.Fprintf(w, "%supdates:  %d  (wire: %s, uplink %s)\n", indent, s.updates, wireDesc, formatBytes(s.uplink))
	fmt.Fprintf(w, "%s%s\n", indent, spanLine("clients", s.turns))
	total := 0
	reasons := make([]string, 0, len(s.drops))
	for r := range s.drops {
		reasons = append(reasons, string(r))
	}
	sort.Strings(reasons)
	parts := make([]string, 0, len(reasons))
	for _, r := range reasons {
		n := s.drops[trace.DropReason(r)]
		total += n
		parts = append(parts, fmt.Sprintf("%s %d", r, n))
	}
	if total == 0 {
		fmt.Fprintf(w, "%sdrops:    0\n", indent)
	} else {
		fmt.Fprintf(w, "%sdrops:    %d  (%s)\n", indent, total, strings.Join(parts, ", "))
	}
	if s.saves > 0 || s.resumes > 0 {
		fmt.Fprintf(w, "%sdurable:  %d checkpoint saves, %d resumes\n", indent, s.saves, s.resumes)
	}
}

func runSummary(args []string, w io.Writer) error {
	path, rest, err := traceFile(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("calibre-trace summary", flag.ContinueOnError)
	perCell := fs.Bool("cells", false, "break the summary down per sweep cell")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	events, truncated, err := loadTrace(path)
	if err != nil {
		return err
	}
	total := newTraceStats()
	cells := map[string]*traceStats{}
	var cellOrder []string
	for _, e := range events {
		total.add(e)
		if e.Cell != "" {
			cs, ok := cells[e.Cell]
			if !ok {
				cs = newTraceStats()
				cells[e.Cell] = cs
				cellOrder = append(cellOrder, e.Cell)
			}
			cs.add(e)
		}
	}
	total.write(w, "")
	if len(cells) > 0 {
		fmt.Fprintf(w, "cells:    %d\n", len(cells))
	}
	if truncated {
		fmt.Fprintln(w, "note:     trace ends mid-record (torn tail tolerated; the writer likely crashed)")
	}
	if *perCell {
		sort.Strings(cellOrder)
		for _, key := range cellOrder {
			fmt.Fprintf(w, "\ncell %s\n", key)
			cells[key].write(w, "  ")
		}
	}
	return nil
}
