package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"calibre/internal/trace"
)

// roundSpan is one reconstructed round: its bracketing events plus every
// client event that landed inside it.
type roundSpan struct {
	cell    string
	round   int
	start   trace.Event
	end     trace.Event
	ended   bool
	updates []trace.Event
	drops   []trace.Event
}

// collectRounds groups a decoded trace into round spans, in order of
// round_start appearance. Events are matched to spans by (cell, round),
// which is unambiguous even when concurrent sweep cells interleave.
func collectRounds(events []trace.Event) []*roundSpan {
	var order []*roundSpan
	open := map[string]*roundSpan{}
	key := func(cell string, round int) string { return fmt.Sprintf("%s\x00%d", cell, round) }
	for _, e := range events {
		switch e.Kind {
		case trace.KindRoundStart:
			rs := &roundSpan{cell: e.Cell, round: e.Round, start: e}
			open[key(e.Cell, e.Round)] = rs
			order = append(order, rs)
		case trace.KindRoundEnd:
			if rs := open[key(e.Cell, e.Round)]; rs != nil {
				rs.end, rs.ended = e, true
			}
		case trace.KindClientUpdate:
			if rs := open[key(e.Cell, e.Round)]; rs != nil {
				rs.updates = append(rs.updates, e)
			}
		case trace.KindClientDrop:
			if rs := open[key(e.Cell, e.Round)]; rs != nil {
				rs.drops = append(rs.drops, e)
			}
		}
	}
	return order
}

// gantt renders one client span as an ASCII bar inside the round's time
// window: '#' covers the client's dispatch->accept turnaround, '.' the
// rest of the round.
func gantt(winStart, winEnd, barStart, barEnd int64, width int) string {
	if winEnd <= winStart {
		return strings.Repeat("#", width)
	}
	scale := func(ts int64) int {
		p := int(float64(ts-winStart) / float64(winEnd-winStart) * float64(width))
		return min(max(p, 0), width-1)
	}
	from, to := scale(barStart), scale(barEnd)
	var b strings.Builder
	for i := 0; i < width; i++ {
		if i >= from && i <= to {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

func runTimeline(args []string, w io.Writer) error {
	path, rest, err := traceFile(args)
	if err != nil {
		return err
	}
	fs := flag.NewFlagSet("calibre-trace timeline", flag.ContinueOnError)
	onlyRound := fs.Int("round", -1, "render only this round (-1 = all)")
	onlyCell := fs.String("cell", "", "render only this sweep cell")
	width := fs.Int("width", 40, "gantt bar width in characters")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if *width < 4 {
		*width = 4
	}
	events, truncated, err := loadTrace(path)
	if err != nil {
		return err
	}
	rounds := collectRounds(events)
	lastCell := ""
	shown := 0
	for _, rs := range rounds {
		if *onlyRound >= 0 && rs.round != *onlyRound {
			continue
		}
		if *onlyCell != "" && rs.cell != *onlyCell {
			continue
		}
		shown++
		if rs.cell != "" && rs.cell != lastCell {
			fmt.Fprintf(w, "=== cell %s ===\n", rs.cell)
			lastCell = rs.cell
		}
		header := fmt.Sprintf("round %d  sampled %d", rs.round, rs.start.N)
		winStart, winEnd := rs.start.TS, rs.start.TS
		if rs.ended {
			winEnd = rs.end.TS
			header += fmt.Sprintf("  aggregated %d  span %s  loss %.4g", rs.end.N, formatNS(rs.end.Dur), rs.end.Loss)
		} else {
			header += "  [round never closed — torn trace?]"
			for _, u := range rs.updates {
				if u.TS > winEnd {
					winEnd = u.TS
				}
			}
		}
		fmt.Fprintln(w, header)
		for _, u := range rs.updates {
			barEnd := u.TS
			barStart := barEnd - u.Dur
			fmt.Fprintf(w, "  client %-4d |%s|  %s  %s %s\n",
				u.Client, gantt(winStart, winEnd, barStart, barEnd, *width),
				formatNS(u.Dur), u.Wire, formatBytes(u.Bytes))
		}
		for _, d := range rs.drops {
			note := ""
			if d.Note != "" {
				note = "  (" + d.Note + ")"
			}
			fmt.Fprintf(w, "  client %-4d %s drop: %s%s\n",
				d.Client, strings.Repeat("x", 4), d.Reason, note)
		}
	}
	if shown == 0 {
		fmt.Fprintln(w, "no round spans matched")
	}
	if truncated {
		fmt.Fprintln(w, "note: trace ends mid-record (torn tail tolerated)")
	}
	return nil
}
