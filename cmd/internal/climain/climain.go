// Package climain holds shared helpers for the cmd/* smoke tests: every
// binary exposes a run(args) entry point, and these utilities let each
// main-package test drive it in-process and assert on its output without
// spawning subprocesses.
package climain

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it printed. fn's error is fatal to the test.
func CaptureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	outCh := make(chan string)
	go func() {
		buf, _ := io.ReadAll(r)
		outCh <- string(buf)
	}()
	// Restore stdout even if fn panics, so the test framework's own
	// failure output is not lost in the discarded pipe. The second Close
	// on the normal path is a harmless no-op error.
	defer func() {
		w.Close()
		os.Stdout = old
	}()
	runErr := fn()
	w.Close()
	out := <-outCh
	if runErr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", runErr, out)
	}
	return out
}
