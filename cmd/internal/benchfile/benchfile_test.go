package benchfile

import (
	"os"
	"path/filepath"
	"testing"
)

// TestReadsEveryCommittedEnvelope pins that the generic reader understands
// all four harness schemas as actually committed at the repo root.
func TestReadsEveryCommittedEnvelope(t *testing.T) {
	cases := map[string]string{
		"BENCH_kernels.json": "records",
		"BENCH_codec.json":   "records",
		"BENCH_delta.json":   "wire",
		"BENCH_sweep.json":   "records",
	}
	for name, section := range cases {
		f, err := Read(filepath.Join("..", "..", "..", name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.Schema == "" || f.GOOS == "" || f.GOMaxProcs < 1 {
			t.Errorf("%s: incomplete header: %+v", name, f)
		}
		if len(f.Sections[section]) == 0 {
			t.Errorf("%s: section %q empty; have %v", name, section, f.SectionNames())
		}
		if f.Env() == "" {
			t.Errorf("%s: empty env line", name)
		}
	}
}

func TestRejectsNonEnvelope(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := os.WriteFile(path, []byte(`{"foo": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("accepted a JSON file without the bench header")
	}
}

func TestEnvMismatch(t *testing.T) {
	a := &File{Schema: "s/v1", GOOS: "linux", GOARCH: "amd64", GOMaxProcs: 1}
	b := &File{Schema: "s/v1", GOOS: "linux", GOARCH: "amd64", GOMaxProcs: 1}
	if warns := EnvMismatch(a, b); len(warns) != 0 {
		t.Fatalf("identical envs warned: %v", warns)
	}
	b.GOMaxProcs = 8
	warns := EnvMismatch(a, b)
	if len(warns) != 1 {
		t.Fatalf("want exactly the gomaxprocs warning, got %v", warns)
	}
	b.Schema = "other/v1"
	if warns := EnvMismatch(a, b); len(warns) != 2 {
		t.Fatalf("want schema + gomaxprocs warnings, got %v", warns)
	}
}
