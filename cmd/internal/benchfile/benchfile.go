// Package benchfile reads the BENCH_*.json envelopes calibre-bench emits,
// schema-generically: every harness (kernels, codec, delta, sweep) shares
// the host-environment header but carries its own record shapes, so
// cross-file tooling — calibre-compare's -bench diff, the golden tests —
// decodes the header into typed fields and every array-of-objects section
// into generic records.
//
// The header matters more than it looks: the committed baselines were
// recorded at gomaxprocs=1 (see the ROADMAP caveat — parallel speedups
// read as ≈1× there), so comparing timings across files from different
// environments is noise. EnvMismatch makes that mistake loud.
package benchfile

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// File is one parsed BENCH_*.json envelope.
type File struct {
	Schema     string
	GOOS       string
	GOARCH     string
	GOMaxProcs int
	// Workers is the kernel-pool size; 0 when the harness does not record
	// one (codec, sweep).
	Workers int
	// Note carries the harness's environment caveat, when present (e.g.
	// the single-core recording note).
	Note string
	// Sections maps each top-level array-of-objects field ("records",
	// "wire", "rounds", …) to its rows as generic maps. JSON numbers
	// decode as float64.
	Sections map[string][]map[string]any
}

// Read parses one envelope. It fails on files that do not carry the
// common header (schema + gomaxprocs) — those are not calibre-bench
// output — but accepts any record shapes.
func Read(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("benchfile: %s: %w", path, err)
	}
	f := &File{Sections: map[string][]map[string]any{}}
	str := func(key string) string {
		var s string
		_ = json.Unmarshal(fields[key], &s)
		return s
	}
	f.Schema = str("schema")
	f.GOOS = str("goos")
	f.GOARCH = str("goarch")
	f.Note = str("note")
	_ = json.Unmarshal(fields["gomaxprocs"], &f.GOMaxProcs)
	_ = json.Unmarshal(fields["workers"], &f.Workers)
	if f.Schema == "" || f.GOMaxProcs < 1 {
		return nil, fmt.Errorf("benchfile: %s: not a calibre-bench envelope (schema or gomaxprocs missing)", path)
	}
	for key, rawv := range fields {
		var recs []map[string]any
		if err := json.Unmarshal(rawv, &recs); err == nil && len(recs) > 0 {
			f.Sections[key] = recs
		}
	}
	return f, nil
}

// Env renders the recording environment on one line — the provenance that
// must ride along with any derived numbers.
func (f *File) Env() string {
	s := fmt.Sprintf("%s/%s gomaxprocs=%d", f.GOOS, f.GOARCH, f.GOMaxProcs)
	if f.Workers > 0 {
		s += fmt.Sprintf(" workers=%d", f.Workers)
	}
	return s
}

// SectionNames returns the section keys in sorted order.
func (f *File) SectionNames() []string {
	names := make([]string, 0, len(f.Sections))
	for name := range f.Sections {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// EnvMismatch returns human-readable warnings for every way a and b were
// recorded under incomparable conditions. Empty means timings are fair to
// compare.
func EnvMismatch(a, b *File) []string {
	var warns []string
	if a.Schema != b.Schema {
		warns = append(warns, fmt.Sprintf("different harnesses: schema %q vs %q — records measure different things", a.Schema, b.Schema))
	}
	if a.GOOS != b.GOOS || a.GOARCH != b.GOARCH {
		warns = append(warns, fmt.Sprintf("different platforms: %s/%s vs %s/%s", a.GOOS, a.GOARCH, b.GOOS, b.GOARCH))
	}
	if a.GOMaxProcs != b.GOMaxProcs {
		warns = append(warns, fmt.Sprintf("gomaxprocs %d vs %d — timings and speedups are not comparable (the committed baselines were recorded single-core, where parallel speedups read as ≈1×)", a.GOMaxProcs, b.GOMaxProcs))
	}
	if a.Workers > 0 && b.Workers > 0 && a.Workers != b.Workers {
		warns = append(warns, fmt.Sprintf("kernel pool workers %d vs %d", a.Workers, b.Workers))
	}
	return warns
}
