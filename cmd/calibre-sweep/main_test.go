package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
	"calibre/internal/obs"
)

// acceptanceGrid is the ≥12-cell smoke grid from the issue's acceptance
// criteria: 3 methods × 2 partitions × 2 seeds.
const acceptanceGrid = `{
	"name": "cli-acceptance",
	"methods": ["fedavg", "fedavg-ft", "perfedavg"],
	"settings": ["cifar10-q(2,500)", "cifar10-d(0.3,600)"],
	"seeds": [1, 2],
	"baseline": "fedavg-ft"
}`

func writeGrid(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSweepPlan(t *testing.T) {
	grid := writeGrid(t, acceptanceGrid)
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"plan", "-grid", grid})
	})
	if !strings.Contains(out, "12 cells") || !strings.Contains(out, "method=fedavg|setting=cifar10-q(2,500)") {
		t.Fatalf("plan output not parseable:\n%s", out)
	}
	if strings.Count(out, "env-seed") != 12 {
		t.Fatalf("plan did not print 12 cells:\n%s", out)
	}
}

// TestSweepRunKillResumeReport drives the full CLI acceptance flow: run
// the 12-cell grid to completion, simulate a mid-sweep kill by truncating
// the manifest to its first 6 cells, resume, and require the regenerated
// report artifacts to be byte-identical to the uninterrupted run's.
func TestSweepRunKillResumeReport(t *testing.T) {
	grid := writeGrid(t, acceptanceGrid)
	dir := t.TempDir()
	out := climain.CaptureStdout(t, func() error {
		return run([]string{"run", "-grid", grid, "-out", dir, "-workers", "2"})
	})
	if !strings.Contains(out, "sweep completed") || !strings.Contains(out, "# Sweep report: cli-acceptance") {
		t.Fatalf("run output not parseable:\n%s", out)
	}
	if !strings.Contains(out, "[12/12]") {
		t.Fatalf("run did not report 12 cells:\n%s", out)
	}
	artifacts := map[string][]byte{}
	for _, name := range []string{"sweep-cells.csv", "sweep-methods.csv", "sweep-report.md"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		artifacts[name] = data
	}

	// Simulate a kill after 6 cells: a second directory whose manifest
	// holds only the first half of the completed cells (the manifest is
	// rewritten atomically per cell, so this is exactly what a SIGKILL
	// mid-sweep leaves behind).
	var man struct {
		Schema      string                     `json:"schema"`
		Name        string                     `json:"name,omitempty"`
		Fingerprint string                     `json:"fingerprint"`
		Cells       map[string]json.RawMessage `json:"cells"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "sweep-manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if len(man.Cells) != 12 {
		t.Fatalf("manifest holds %d cells, want 12", len(man.Cells))
	}
	keys := make([]string, 0, len(man.Cells))
	for k := range man.Cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys[6:] {
		delete(man.Cells, k)
	}
	killedDir := t.TempDir()
	truncated, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(killedDir, "sweep-manifest.json"), truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	out = climain.CaptureStdout(t, func() error {
		return run([]string{"resume", "-grid", grid, "-out", killedDir, "-workers", "2"})
	})
	if !strings.Contains(out, "6 cells restored from manifest") {
		t.Fatalf("resume did not restore the completed half:\n%s", out)
	}
	if !strings.Contains(out, "12 cells, 6 already in the manifest, 6 to run") || !strings.Contains(out, "[6/6]") {
		t.Fatalf("resume did not run exactly the missing 6 cells:\n%s", out)
	}
	for name, want := range artifacts {
		got, err := os.ReadFile(filepath.Join(killedDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs between uninterrupted and kill+resume runs", name)
		}
	}

	// report regenerates the same artifacts from the manifest alone.
	for _, name := range []string{"sweep-cells.csv", "sweep-methods.csv", "sweep-report.md"} {
		if err := os.Remove(filepath.Join(killedDir, name)); err != nil {
			t.Fatal(err)
		}
	}
	out = climain.CaptureStdout(t, func() error {
		return run([]string{"report", "-grid", grid, "-out", killedDir})
	})
	if !strings.Contains(out, "# Sweep report: cli-acceptance") {
		t.Fatalf("report output not parseable:\n%s", out)
	}
	for name, want := range artifacts {
		got, err := os.ReadFile(filepath.Join(killedDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs after report regeneration", name)
		}
	}
}

func TestSweepRejectsBadInput(t *testing.T) {
	grid := writeGrid(t, acceptanceGrid)
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"frob", "-grid", grid}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"plan"}); err == nil {
		t.Fatal("missing -grid accepted")
	}
	if err := run([]string{"run", "-grid", grid}); err == nil {
		t.Fatal("run without -out accepted")
	}
	if err := run([]string{"plan", "-grid", writeGrid(t, `{"methods":["nope"],"settings":["cifar10-q(2,500)"],"seeds":[1]}`)}); err == nil {
		t.Fatal("invalid grid accepted")
	}
	if err := run([]string{"report", "-grid", grid, "-out", t.TempDir()}); err == nil {
		t.Fatal("report without a manifest accepted")
	}
	if err := run([]string{"plan", "-grid", grid, "stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
	if err := run([]string{"run", "-grid", grid, "-out", t.TempDir(), "-health", "frobnicate(9)"}); err == nil {
		t.Fatal("invalid -health spec accepted")
	}
}

// TestWatchSmoke runs `calibre-sweep watch` against a live metrics
// endpoint: a registry pre-populated the way a mid-sweep process would
// be, served over real HTTP. -once renders a single progress line.
func TestWatchSmoke(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Gauge(obs.GaugeSweepCellsPlanned).Set(6)
	reg.Gauge(obs.GaugeSweepCellsPending).Set(3)
	reg.Gauge(obs.GaugeSweepCellsInFlight).Set(2)
	reg.Counter(obs.CounterSweepCellsDone).Add(3)
	reg.Counter(obs.CounterAdversarialUpdates).Add(5)
	reg.Counter(obs.CounterRejectedUpdates).Add(2)
	reg.Counter(obs.CounterHealthAlerts).Add(4)
	reg.Counter(obs.CounterHealthCritical).Add(1)
	reg.Gauge(obs.GaugeHealthSuspects).Set(2)
	reg.ObserveRound(obs.RoundSample{
		Runtime: "sim", Round: 7, Participants: 4, Responders: 4,
		MeanLoss: 0.5, UplinkWireBytes: 1 << 11, UplinkDenseBytes: 1 << 13,
	})
	srv, addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	out := climain.CaptureStdout(t, func() error {
		return run([]string{"watch", "-addr", addr.String(), "-once"})
	})
	for _, needle := range []string{
		"cells 3/6 done", "2 in flight", "3 pending", "rounds 1",
		"2.0KiB wire", "8.0KiB dense", "sim round 7: 4/4 responded, loss 0.5000",
		"hostile: 5 adversarial, 2 rejected",
		"health: 4 alerts (1 critical), 2 suspects",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("watch line missing %q:\n%s", needle, out)
		}
	}

	// -json swaps the human line for one machine-readable snapshot per poll.
	out = climain.CaptureStdout(t, func() error {
		return run([]string{"watch", "-addr", addr.String(), "-once", "-json"})
	})
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("watch -json output is not one JSON snapshot: %v\n%s", err, out)
	}
	if snap.Counters[obs.CounterHealthAlerts] != 4 || snap.Gauges[obs.GaugeHealthSuspects] != 2 {
		t.Fatalf("watch -json snapshot dropped health metrics: %+v", snap)
	}
}

// TestWatchUnreachableEndpointFails pins the bounded-retry contract: a
// watch pointed at a dead port errors out once -timeout elapses instead
// of spinning forever.
func TestWatchUnreachableEndpointFails(t *testing.T) {
	err := run([]string{"watch", "-addr", "127.0.0.1:1", "-timeout", "150ms", "-interval", "50ms"})
	if err == nil || !strings.Contains(err.Error(), "no answer") {
		t.Fatalf("want a no-answer error, got %v", err)
	}
	if err := run([]string{"watch", "stray"}); err == nil {
		t.Fatal("stray positional argument accepted")
	}
}
