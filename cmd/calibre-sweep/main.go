// Command calibre-sweep runs declarative scenario grids — methods ×
// partitions × seeds × federation knobs, including the hostile axes
// (aggregators, adversary, adversary_frac, availability) — as one
// scheduled, resumable, reportable unit (see internal/sweep and the
// "Sweep engine" and "Threat model" sections of ARCHITECTURE.md).
//
// Usage:
//
//	calibre-sweep plan   -grid grid.json
//	calibre-sweep run    -grid grid.json -out results/ [-workers 4] [-sim-budget 8] [-metrics-addr :9800]
//	calibre-sweep resume -grid grid.json -out results/
//	calibre-sweep report -grid grid.json -out results/
//	calibre-sweep watch  -addr 127.0.0.1:9800
//
// run executes every cell and writes sweep-cells.csv, sweep-methods.csv
// and sweep-report.md next to the manifest in -out. A killed sweep is
// picked up with resume, which skips completed cells (and, with
// -checkpoint-every, continues long cells mid-federation); the resumed
// report is byte-identical to an uninterrupted run's. report rebuilds
// the report from the manifest without running anything. plan prints the
// expanded grid and exits.
//
// With -metrics-addr, run serves live observability (internal/obs) over
// HTTP — /metrics as JSON, /metrics/prom as Prometheus text — and watch
// polls that endpoint from another terminal, rendering one progress line
// per poll. SIGINT/SIGTERM interrupt a run gracefully: in-flight cells
// are abandoned, the manifest keeps every completed cell, and the process
// exits non-zero with a resume hint.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/sweep"
	"calibre/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: calibre-sweep <plan|run|resume|report|watch> -grid grid.json [-out dir] [flags]")
	}
	sub := args[0]
	if sub == "watch" {
		// watch has its own flags (no grid needed): dispatch before the
		// common -grid parse.
		return watch(args[1:])
	}
	fs := flag.NewFlagSet("calibre-sweep "+sub, flag.ContinueOnError)
	var (
		gridPath  = fs.String("grid", "", "grid JSON file (required)")
		out       = fs.String("out", "", "sweep directory: manifest, per-cell checkpoints, reports")
		workers   = fs.Int("workers", 1, "concurrent cells (outer level of the worker budget)")
		simBudget = fs.Int("sim-budget", 0, "total concurrent client-training goroutines across cells; 0 = GOMAXPROCS")
		timeout   = fs.Duration("timeout", 0, "per-cell wall-clock budget; 0 = unbounded")
		ckptEvery = fs.Int("checkpoint-every", 0, "per-cell durable checkpoint stride in rounds; 0 = off")
		kernels   = fs.Int("kernel-workers", 0, "resize the process-wide tensor kernel pool; 0 = leave as is")
		quiet     = fs.Bool("quiet", false, "suppress per-cell progress lines")
		healthStr = fs.String("health", "", `per-cell streaming anomaly detection rules: "default", "all", or a spec like "non-finite,norm-z(3.5,2)" (see internal/health); verdicts land on each manifest row; empty disables`)
		metrics   = fs.String("metrics-addr", "", "serve live metrics on this host:port (/metrics JSON, /metrics/prom text); port 0 picks a free one")
		traceOut  = fs.String("trace-out", "", "append flight-recorder events (length-prefixed JSONL) to this file; inspect with calibre-trace")
		traceRot  = fs.Int64("trace-rotate-bytes", 0, "rotate the -trace-out file when it would exceed this size (keeps 3 generations); 0 disables rotation")
		pprofAddr = fs.String("pprof-addr", "", "serve net/http/pprof on this host:port; port 0 picks a free one")
	)
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *gridPath == "" {
		return fmt.Errorf("%s: -grid is required", sub)
	}
	grid, err := sweep.LoadGrid(*gridPath)
	if err != nil {
		return err
	}

	switch sub {
	case "plan":
		return plan(grid)
	case "run", "resume":
		if *out == "" {
			return fmt.Errorf("%s: -out is required (the manifest makes the sweep resumable)", sub)
		}
		cfg := sweep.Config{
			Workers:         *workers,
			SimBudget:       *simBudget,
			CellTimeout:     *timeout,
			KernelWorkers:   *kernels,
			CheckpointEvery: *ckptEvery,
			Dir:             *out,
			Resume:          sub == "resume",
		}
		if *healthStr != "" {
			hc, err := health.ParseRules(*healthStr)
			if err != nil {
				return err
			}
			cfg.Health = &hc
		}
		total, done := 0, 0
		if !*quiet {
			cfg.OnPlan = func(planned, pending int) {
				total = pending
				if pending < planned {
					fmt.Printf("plan: %d cells, %d already in the manifest, %d to run\n", planned, planned-pending, pending)
				} else {
					fmt.Printf("plan: %d cells\n", planned)
				}
			}
			cfg.OnCell = func(res sweep.CellResult) {
				done++
				status := res.Status
				if res.Status == sweep.StatusOK {
					status = fmt.Sprintf("ok mean=%.4f var=%.5f", res.Participants.Mean, res.Participants.Variance)
				}
				// Health verdicts ride the progress line only when the
				// cell's monitor actually raised something.
				if res.HealthAlerts > 0 {
					status += fmt.Sprintf(" · health: %d alerts (%d critical)", res.HealthAlerts, res.HealthCritical)
					if len(res.Suspects) > 0 {
						status += fmt.Sprintf(", suspects %v", res.Suspects)
					}
				}
				fmt.Printf("[%d/%d] %s: %s (%dms)\n", done, total, res.Key, status, res.DurationMS)
			}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *traceOut != "" {
			sink, err := trace.OpenFile(*traceOut, trace.FileOptions{RotateBytes: *traceRot})
			if err != nil {
				return err
			}
			rec := trace.New(sink, trace.Config{})
			cfg.Recorder = rec
			defer func() {
				if err := rec.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
				}
			}()
			fmt.Printf("trace: recording to %s\n", *traceOut)
		}
		if *pprofAddr != "" {
			psrv, paddr, err := obs.ServePprof(*pprofAddr)
			if err != nil {
				return err
			}
			fmt.Printf("pprof: listening on http://%s/debug/pprof/\n", paddr)
			defer func() {
				shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = psrv.Shutdown(shCtx)
			}()
		}
		if *metrics != "" {
			reg := obs.NewRegistry()
			cfg.Obs = reg
			msrv, maddr, err := obs.Serve(*metrics, reg)
			if err != nil {
				return err
			}
			fmt.Printf("metrics: listening on http://%s/metrics (calibre-sweep watch -addr %s)\n", maddr, maddr)
			defer func() {
				shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				_ = msrv.Shutdown(shCtx)
			}()
		}
		start := time.Now()
		res, err := sweep.Run(ctx, grid, cfg)
		if err != nil {
			if ctx.Err() != nil {
				// The manifest holds every cell completed before the signal;
				// stop() restores default signal handling so a second ^C
				// kills a hung teardown the hard way.
				stop()
				fmt.Fprintf(os.Stderr, "interrupted; completed cells are in the manifest — resume with `calibre-sweep resume -grid %s -out %s`\n", *gridPath, *out)
			}
			return err
		}
		for _, n := range res.Notes {
			fmt.Println("note:", n)
		}
		fmt.Printf("sweep completed in %s\n\n", time.Since(start).Round(time.Millisecond))
		return emit(res, *out)
	case "report":
		if *out == "" {
			return fmt.Errorf("report: -out is required")
		}
		res, err := sweep.Load(grid, *out)
		if err != nil {
			return err
		}
		return emit(res, *out)
	default:
		return fmt.Errorf("unknown subcommand %q (plan|run|resume|report|watch)", sub)
	}
}

// plan prints the expanded grid without running anything.
func plan(grid *sweep.Grid) error {
	cells, err := grid.Expand()
	if err != nil {
		return err
	}
	fp, err := grid.Fingerprint()
	if err != nil {
		return err
	}
	name := grid.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("sweep %s: %d cells, fingerprint %s\n", name, len(cells), fp)
	for _, c := range cells {
		fmt.Printf("  %s (env-seed %d)\n", c.Key(), c.EnvSeed())
	}
	return nil
}

// emit writes the report artifacts into dir and prints the markdown.
func emit(res *sweep.Result, dir string) error {
	rep := sweep.NewReport(res)
	for _, art := range []struct {
		name  string
		write func(f *os.File) error
	}{
		{"sweep-cells.csv", func(f *os.File) error { return rep.WriteCellsCSV(f) }},
		{"sweep-methods.csv", func(f *os.File) error { return rep.WriteMethodsCSV(f) }},
		{"sweep-report.md", func(f *os.File) error { return rep.WriteMarkdown(f) }},
	} {
		path := filepath.Join(dir, art.name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		if err := art.write(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
	}
	fmt.Printf("[wrote sweep-cells.csv, sweep-methods.csv, sweep-report.md to %s]\n\n", dir)
	return rep.WriteMarkdown(os.Stdout)
}
