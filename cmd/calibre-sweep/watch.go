package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"calibre/internal/obs"
)

// watch polls a running federation's -metrics-addr endpoint and renders
// live cell/round progress, one line per poll. It retries until the
// endpoint first answers (so it can be started before or after the run),
// and exits cleanly once a previously-live endpoint disappears — that is
// what the end of a watched run looks like from outside.
func watch(args []string) error {
	fs := flag.NewFlagSet("calibre-sweep watch", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:9800", "host:port of a running -metrics-addr endpoint")
		interval = fs.Duration("interval", time.Second, "poll interval")
		timeout  = fs.Duration("timeout", 10*time.Second, "give up if the endpoint never answers within this window")
		once     = fs.Bool("once", false, "render one snapshot and exit")
		jsonOut  = fs.Bool("json", false, "emit each snapshot as one line of raw JSON instead of the human progress line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	url := "http://" + *addr + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*timeout)
	connected := false
	for {
		snap, err := scrape(ctx, client, url)
		switch {
		case err == nil:
			connected = true
			if *jsonOut {
				// One compact snapshot per line: pipeline-friendly (jq, log
				// shippers) and carries every counter the human line elides.
				if err := json.NewEncoder(os.Stdout).Encode(snap); err != nil {
					return err
				}
			} else {
				fmt.Println(renderWatchLine(snap))
			}
			if *once {
				return nil
			}
		case ctx.Err() != nil:
			return nil
		case connected:
			// The endpoint answered before and is gone now: the federation
			// finished (or was stopped). A clean exit, not an error.
			fmt.Println("watch: metrics endpoint gone (run finished?)")
			return nil
		case time.Now().After(deadline):
			return fmt.Errorf("watch: no answer from %s within %s: %w", *addr, *timeout, err)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// scrape fetches and decodes one JSON snapshot.
func scrape(ctx context.Context, client *http.Client, url string) (obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return obs.Snapshot{}, fmt.Errorf("decode %s: %w", url, err)
	}
	return snap, nil
}

// renderWatchLine compresses one snapshot into a single progress line:
// sweep cell states (when the endpoint belongs to a sweep), cumulative
// rounds and uplink cost, and the latest round's outcome.
func renderWatchLine(s obs.Snapshot) string {
	c, g := s.Counters, s.Gauges
	line := fmt.Sprintf("rounds %d", c[obs.CounterRounds])
	if planned := g[obs.GaugeSweepCellsPlanned]; planned > 0 {
		line = fmt.Sprintf("cells %d/%d done (%d failed, %d in flight, %d pending) · %s",
			c[obs.CounterSweepCellsDone], planned, c[obs.CounterSweepCellsFailed],
			g[obs.GaugeSweepCellsInFlight], g[obs.GaugeSweepCellsPending], line)
	}
	line += fmt.Sprintf(" · uplink %s wire / %s dense",
		humanBytes(c[obs.CounterUplinkWireBytes]), humanBytes(c[obs.CounterUplinkDenseBytes]))
	// Hostile-federation signal: only shown once an attack (or a robust
	// aggregator rejection) actually fires, so benign sweeps stay terse.
	if adv, rej := c[obs.CounterAdversarialUpdates], c[obs.CounterRejectedUpdates]; adv > 0 || rej > 0 {
		line += fmt.Sprintf(" · hostile: %d adversarial, %d rejected", adv, rej)
	}
	// Health-plane signal: same policy — silent until a monitor somewhere
	// behind this endpoint raises an alert or marks a suspect.
	if al, su := c[obs.CounterHealthAlerts], g[obs.GaugeHealthSuspects]; al > 0 || su > 0 {
		line += fmt.Sprintf(" · health: %d alerts (%d critical), %d suspects",
			al, c[obs.CounterHealthCritical], su)
	}
	if last, ok := s.LastRound(); ok {
		line += fmt.Sprintf(" · %s round %d: %d/%d responded, loss %.4f",
			last.Runtime, last.Round, last.Responders, last.Participants, last.MeanLoss)
	}
	return line
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
