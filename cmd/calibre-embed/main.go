// Command calibre-embed regenerates the paper's representation
// visualizations (Figs. 1, 2, 5-8): it trains the figure's methods, runs
// t-SNE on their representations, prints the cluster-quality metrics and
// writes the 2-D points as CSV for plotting.
//
// Example:
//
//	calibre-embed -fig fig7 -scale ci -o fig7.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"calibre/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-embed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-embed", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "fig1", "embedding figure: fig1, fig2, fig5, fig6, fig7 or fig8")
		scale = fs.String("scale", "smoke", "scale preset: smoke | ci | paper")
		seed  = fs.Int64("seed", 42, "master seed")
		out   = fs.String("o", "", "CSV output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *fig {
	case "fig1", "fig2", "fig5", "fig6", "fig7", "fig8":
	default:
		return fmt.Errorf("%q is not an embedding figure", *fig)
	}
	report, err := experiments.Run(context.Background(), *fig, experiments.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, report)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.WriteEmbeddingsCSV(w, report.Embeddings); err != nil {
		return fmt.Errorf("write embeddings: %w", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	return nil
}
