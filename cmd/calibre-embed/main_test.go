package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"
)

func TestEmbedSmokeWritesParseableCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emb.csv")
	if err := run([]string{"-fig", "fig1", "-scale", "smoke", "-seed", "7", "-o", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("want header + data rows, got %d rows", len(rows))
	}
	header := rows[0]
	want := []string{"method", "x", "y", "label", "client"}
	if len(header) != len(want) {
		t.Fatalf("header = %v, want %v", header, want)
	}
	for i, col := range want {
		if header[i] != col {
			t.Fatalf("header[%d] = %q, want %q", i, header[i], col)
		}
	}
}

func TestEmbedRejectsNonEmbeddingFigure(t *testing.T) {
	if err := run([]string{"-fig", "fig3"}); err == nil {
		t.Fatal("non-embedding figure accepted")
	}
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
