package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"calibre/cmd/internal/climain"
	"calibre/internal/experiments"
	"calibre/internal/flnet"
)

// TestClientSmokeFederation drives the real calibre-client run() entry
// point against an in-process flnet server sharing the same deterministic
// experiment world.
func TestClientSmokeFederation(t *testing.T) {
	const (
		setting = "cifar10-q(2,500)"
		seed    = 7
	)
	s, ok := experiments.Settings()[setting]
	if !ok {
		t.Fatalf("setting %q missing", setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.ScaleSmoke, seed)
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	m, err := experiments.BuildMethod(env, "fedavg-ft")
	if err != nil {
		t.Fatalf("BuildMethod: %v", err)
	}
	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 1, Seed: seed,
		Aggregator: m.Aggregator,
		InitGlobal: m.InitGlobal,
		IOTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	type result struct {
		res *flnet.Result
		err error
	}
	srvCh := make(chan result, 1)
	go func() {
		res, err := srv.Run(ctx)
		srvCh <- result{res, err}
	}()

	out := climain.CaptureStdout(t, func() error {
		return run([]string{
			"-addr", srv.Addr().String(), "-id", "0",
			"-method", "fedavg-ft", "-setting", setting, "-scale", "smoke", "-seed", "7",
		})
	})
	sr := <-srvCh
	if sr.err != nil {
		t.Fatalf("server: %v", sr.err)
	}
	if len(sr.res.Accuracies) != 1 {
		t.Fatalf("accuracies = %v, want one entry", sr.res.Accuracies)
	}
	for _, needle := range []string{"client 0 joining", "client 0 finished cleanly"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("client output missing %q:\n%s", needle, out)
		}
	}
}

func TestClientRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-setting", "nope"}); err == nil {
		t.Fatal("unknown setting accepted")
	}
	if err := run([]string{"-id", "-1"}); err == nil {
		t.Fatal("out-of-range client id accepted")
	}
	if err := run([]string{"-method", "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := run([]string{"-sim-latency", "nope"}); err == nil {
		t.Fatal("malformed sim-latency accepted")
	}
}
