// Command calibre-client joins a networked federation started by
// calibre-server. It derives its local data shard deterministically from
// (-setting, -scale, -seed, -id) — the same world the server derived — so
// every process holds exactly one client's partition.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"calibre/internal/experiments"
	"calibre/internal/flnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibre-client", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:9100", "server address")
		id         = fs.Int("id", 0, "client id (must be unique across the federation)")
		method     = fs.String("method", "calibre-simclr", "method name (must match the server)")
		setting    = fs.String("setting", "cifar10-q(2,500)", "experiment setting (must match the server)")
		scale      = fs.String("scale", "smoke", "scale preset (must match the server)")
		seed       = fs.Int64("seed", 42, "master seed (must match the server)")
		simLatency = fs.Duration("sim-latency", 0, "artificial delay before each local update (straggler fault injection)")
		dense      = fs.Bool("dense-updates", false, "ship full dense vectors instead of compressed deltas, whatever the server advertises")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, ok := experiments.Settings()[*setting]
	if !ok {
		return fmt.Errorf("unknown setting %q", *setting)
	}
	env, err := experiments.BuildEnvironment(s, experiments.Scale(*scale), *seed)
	if err != nil {
		return err
	}
	if *id < 0 || *id >= len(env.Participants) {
		return fmt.Errorf("client id %d out of range [0,%d)", *id, len(env.Participants))
	}
	m, err := experiments.BuildMethod(env, *method)
	if err != nil {
		return err
	}
	fmt.Printf("client %d joining %s (method %s, %d train / %d test samples)\n",
		*id, *addr, *method, env.Participants[*id].Train.Len(), env.Participants[*id].Test.Len())
	var lat func(int) time.Duration
	if *simLatency > 0 {
		d := *simLatency
		lat = func(int) time.Duration { return d }
	}
	if err := flnet.RunClient(context.Background(), flnet.ClientConfig{
		Addr:         *addr,
		ClientID:     *id,
		Data:         env.Participants[*id],
		Trainer:      m.Trainer,
		Personalizer: m.Personalizer,
		Seed:         *seed,
		SimLatency:   lat,
		DenseUpdates: *dense,
	}); err != nil {
		return err
	}
	fmt.Printf("client %d finished cleanly\n", *id)
	return nil
}
