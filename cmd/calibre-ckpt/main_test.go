package main

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calibre/cmd/internal/climain"
	"calibre/internal/fl"
	"calibre/internal/store"
)

// seedStore writes two snapshots the subcommands can operate on.
func seedStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	fp := store.Fingerprint("server", "fedavg-ft", "cifar10-q(2,500)", "smoke", "7")
	for round := 1; round <= 2; round++ {
		state := fl.SimState{
			Round:          round,
			Global:         []float64{1.5, -2.25, 0.5, float64(round)},
			History:        make([]fl.RoundStats, round),
			EligibleCounts: make([]int, round),
		}
		for r := 0; r < round; r++ {
			state.History[r] = fl.RoundStats{Round: r, Participants: []int{0, 1}, MeanLoss: 0.5}
			state.EligibleCounts[r] = 3
		}
		if _, err := st.Save(&store.Snapshot{
			Meta:  store.Meta{Seed: 7, Fingerprint: fp, Runtime: "server"},
			State: state,
		}); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	return dir
}

func TestCkptListInspectDiff(t *testing.T) {
	dir := seedStore(t)

	out := climain.CaptureStdout(t, func() error { return run([]string{"list", "-dir", dir}) })
	for _, needle := range []string{"version", "round", "server"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("list output missing %q:\n%s", needle, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 { // header + 2 versions
		t.Fatalf("list printed %d lines, want 3:\n%s", lines, out)
	}

	out = climain.CaptureStdout(t, func() error { return run([]string{"inspect", "-dir", dir}) })
	for _, needle := range []string{"version:      2", "round:        2", "params:       4", "round 0:"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("inspect output missing %q:\n%s", needle, out)
		}
	}

	out = climain.CaptureStdout(t, func() error { return run([]string{"diff", "-dir", dir, "-a", "1", "-b", "2"}) })
	if !strings.Contains(out, "+1 rounds") || !strings.Contains(out, "1 changed") {
		t.Fatalf("diff output unexpected:\n%s", out)
	}
}

// seedIncrementalStore writes a full snapshot plus two delta-encoded ones.
func seedIncrementalStore(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	st.SetIncremental(true)
	global := make([]float64, 512)
	for round := 1; round <= 3; round++ {
		global[round] = float64(round) // tiny per-round drift
		state := fl.SimState{
			Round:          round,
			Global:         append([]float64(nil), global...),
			History:        make([]fl.RoundStats, round),
			EligibleCounts: make([]int, round),
		}
		for r := 0; r < round; r++ {
			state.History[r] = fl.RoundStats{Round: r, Participants: []int{0}, MeanLoss: 0.25}
			state.EligibleCounts[r] = 2
		}
		if _, err := st.Save(&store.Snapshot{Meta: store.Meta{Seed: 7, Runtime: "server"}, State: state}); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	return dir
}

// TestCkptReportsIncremental pins the operator view of delta snapshots:
// list shows the encoding and reference chain, inspect reports the
// storage saving against a full re-encode, diff labels both sides.
func TestCkptReportsIncremental(t *testing.T) {
	dir := seedIncrementalStore(t)

	out := climain.CaptureStdout(t, func() error { return run([]string{"list", "-dir", dir}) })
	for _, needle := range []string{"encoding", "full", "delta→v1/1", "delta→v2/2"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("list output missing %q:\n%s", needle, out)
		}
	}

	out = climain.CaptureStdout(t, func() error { return run([]string{"inspect", "-dir", dir}) })
	for _, needle := range []string{"encoding:     incremental (ref v2, chain depth 2,", "% saved)", "round:        3"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("inspect output missing %q:\n%s", needle, out)
		}
	}

	out = climain.CaptureStdout(t, func() error { return run([]string{"diff", "-dir", dir, "-a", "1", "-b", "3"}) })
	for _, needle := range []string{"v1 encoding: full", "v3 encoding: incremental (ref v2", "2 changed"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("diff output missing %q:\n%s", needle, out)
		}
	}
}

func TestCkptExport(t *testing.T) {
	dir := seedStore(t)

	out := climain.CaptureStdout(t, func() error { return run([]string{"export", "-dir", dir, "-format", "csv"}) })
	if !strings.HasPrefix(out, "index,value\n") || !strings.Contains(out, "1,-2.25") {
		t.Fatalf("csv export unexpected:\n%s", out)
	}

	gobPath := filepath.Join(t.TempDir(), "snap.gob")
	climain.CaptureStdout(t, func() error {
		return run([]string{"export", "-dir", dir, "-version", "1", "-format", "gob", "-out", gobPath})
	})
	f, err := os.Open(gobPath)
	if err != nil {
		t.Fatalf("open gob export: %v", err)
	}
	defer f.Close()
	var snap store.Snapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		t.Fatalf("decode gob export: %v", err)
	}
	if snap.State.Round != 1 || len(snap.State.Global) != 4 {
		t.Fatalf("gob export round-trip: %+v", snap.State)
	}
}

func TestCkptRejectsBadInvocations(t *testing.T) {
	dir := seedStore(t)
	if err := run(nil); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if err := run([]string{"frobnicate", "-dir", dir}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"list"}); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run([]string{"list", "-dir", filepath.Join(dir, "nope")}); err == nil {
		t.Fatal("nonexistent dir accepted")
	}
	if err := run([]string{"inspect", "-dir", dir, "-version", "9"}); err == nil {
		t.Fatal("missing version accepted")
	}
	if err := run([]string{"diff", "-dir", dir, "-a", "1"}); err == nil {
		t.Fatal("diff without -b accepted")
	}
	if err := run([]string{"export", "-dir", dir, "-format", "gob"}); err == nil {
		t.Fatal("gob export to stdout accepted")
	}
	if err := run([]string{"export", "-dir", dir, "-format", "xml"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
