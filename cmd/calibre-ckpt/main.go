// Command calibre-ckpt operates on durable checkpoint directories written
// by calibre-server -checkpoint-dir (and any other internal/store user):
// listing versions, inspecting one snapshot, diffing two, and exporting a
// snapshot to interchange formats.
//
// Usage:
//
//	calibre-ckpt list    -dir DIR
//	calibre-ckpt inspect -dir DIR [-version N]       (default: latest)
//	calibre-ckpt diff    -dir DIR -a N -b M
//	calibre-ckpt export  -dir DIR [-version N] -format csv|gob [-out FILE]
//
// export -format csv writes the global parameter vector as index,value
// rows (full round-trip precision); -format gob writes the whole snapshot
// gob-encoded for consumption by other Go tooling and requires -out.
package main

import (
	"encoding/csv"
	"encoding/gob"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"calibre/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibre-ckpt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: calibre-ckpt <list|inspect|diff|export> -dir DIR [flags]")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "list":
		return runList(rest)
	case "inspect":
		return runInspect(rest)
	case "diff":
		return runDiff(rest)
	case "export":
		return runExport(rest)
	default:
		return fmt.Errorf("unknown subcommand %q (want list, inspect, diff or export)", cmd)
	}
}

func openStore(fs *flag.FlagSet, args []string, dir *string) (*store.Store, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *dir == "" {
		return nil, errors.New("missing -dir")
	}
	if _, err := os.Stat(*dir); err != nil {
		return nil, fmt.Errorf("checkpoint directory: %w", err)
	}
	return store.Open(*dir)
}

// open resolves -version: 0 means latest.
func open(st *store.Store, version int) (*store.Snapshot, int, error) {
	if version == 0 {
		return st.Latest()
	}
	snap, err := st.Open(version)
	return snap, version, err
}

func runList(args []string) error {
	fs := flag.NewFlagSet("calibre-ckpt list", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	st, err := openStore(fs, args, dir)
	if err != nil {
		return err
	}
	entries, err := st.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("no checkpoints")
		return nil
	}
	fmt.Printf("%-8s %-7s %-8s %-10s %-14s %-16s %-10s %s\n", "version", "round", "params", "size", "encoding", "fingerprint", "runtime", "saved")
	for _, e := range entries {
		if e.Corrupt {
			fmt.Printf("%-8d %-7s %-8s %-10d %-14s %-16s %-10s %s  [corrupt]\n", e.Version, "-", "-", e.Size, encodingOf(e), "-", "-",
				e.ModTime.Format("2006-01-02 15:04:05"))
			continue
		}
		fmt.Printf("%-8d %-7d %-8d %-10d %-14s %-16s %-10s %s\n", e.Version, e.Round, e.Params, e.Size,
			encodingOf(e), e.Meta.Fingerprint, e.Meta.Runtime, e.ModTime.Format("2006-01-02 15:04:05"))
	}
	return nil
}

// encodingOf renders an entry's snapshot encoding for listings.
func encodingOf(e store.Entry) string {
	if !e.Incremental {
		return "full"
	}
	return fmt.Sprintf("delta→v%d/%d", e.RefVersion, e.ChainDepth)
}

// describeEncoding summarizes a version's on-disk encoding and, for
// incremental snapshots, the storage saving against a full re-encode of
// the resolved state.
func describeEncoding(st *store.Store, version int, snap *store.Snapshot) string {
	e, err := st.Stat(version)
	if err != nil {
		return "unknown"
	}
	if !e.Incremental {
		return fmt.Sprintf("full (%d bytes on disk)", e.Size)
	}
	full, err := store.EncodeSnapshot(snap)
	if err != nil {
		return fmt.Sprintf("incremental (ref v%d, chain depth %d, %d bytes on disk)", e.RefVersion, e.ChainDepth, e.Size)
	}
	return fmt.Sprintf("incremental (ref v%d, chain depth %d, %d bytes on disk vs %d full — %.1f%% saved)",
		e.RefVersion, e.ChainDepth, e.Size, len(full), 100*(1-float64(e.Size)/float64(len(full))))
}

// vectorStats summarizes a parameter vector for inspection output.
func vectorStats(v []float64) (l2, minV, maxV, mean float64) {
	if len(v) == 0 {
		return 0, 0, 0, 0
	}
	minV, maxV = v[0], v[0]
	var sum, ss float64
	for _, x := range v {
		sum += x
		ss += x * x
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return math.Sqrt(ss), minV, maxV, sum / float64(len(v))
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("calibre-ckpt inspect", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	version := fs.Int("version", 0, "snapshot version (0 = latest)")
	tail := fs.Int("tail", 3, "history rounds to print")
	st, err := openStore(fs, args, dir)
	if err != nil {
		return err
	}
	snap, v, err := open(st, *version)
	if err != nil {
		return err
	}
	state := &snap.State
	fmt.Printf("version:      %d\n", v)
	fmt.Printf("encoding:     %s\n", describeEncoding(st, v, snap))
	fmt.Printf("runtime:      %s\n", snap.Meta.Runtime)
	fmt.Printf("seed:         %d\n", snap.Meta.Seed)
	fmt.Printf("fingerprint:  %s\n", snap.Meta.Fingerprint)
	fmt.Printf("round:        %d (history: %d rounds)\n", state.Round, len(state.History))
	l2, minV, maxV, mean := vectorStats(state.Global)
	fmt.Printf("params:       %d  (l2=%.6g min=%.6g max=%.6g mean=%.6g)\n", len(state.Global), l2, minV, maxV, mean)
	fmt.Printf("pool sizes:   %v\n", state.EligibleCounts)
	if *tail > 0 && len(state.History) > 0 {
		from := len(state.History) - *tail
		if from < 0 {
			from = 0
		}
		fmt.Println("history tail:")
		for _, h := range state.History[from:] {
			fmt.Println("  ", h)
		}
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("calibre-ckpt diff", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	av := fs.Int("a", 0, "first version")
	bv := fs.Int("b", 0, "second version")
	st, err := openStore(fs, args, dir)
	if err != nil {
		return err
	}
	if *av == 0 || *bv == 0 {
		return errors.New("diff needs -a and -b versions")
	}
	a, err := st.Open(*av)
	if err != nil {
		return err
	}
	b, err := st.Open(*bv)
	if err != nil {
		return err
	}
	fmt.Printf("v%d (round %d) → v%d (round %d): %+d rounds\n",
		*av, a.State.Round, *bv, b.State.Round, b.State.Round-a.State.Round)
	fmt.Printf("v%d encoding: %s\n", *av, describeEncoding(st, *av, a))
	fmt.Printf("v%d encoding: %s\n", *bv, describeEncoding(st, *bv, b))
	if a.Meta.Fingerprint != b.Meta.Fingerprint {
		fmt.Printf("fingerprints differ: %s vs %s (different federations!)\n", a.Meta.Fingerprint, b.Meta.Fingerprint)
	}
	if len(a.State.Global) != len(b.State.Global) {
		fmt.Printf("param dimensions differ: %d vs %d\n", len(a.State.Global), len(b.State.Global))
		return nil
	}
	var ss, linf float64
	changed := 0
	for i, x := range a.State.Global {
		d := b.State.Global[i] - x
		ss += d * d
		if ad := math.Abs(d); ad > linf {
			linf = ad
		}
		if math.Float64bits(x) != math.Float64bits(b.State.Global[i]) {
			changed++
		}
	}
	fmt.Printf("params:  %d total, %d changed\n", len(a.State.Global), changed)
	fmt.Printf("drift:   l2=%.6g  max|Δ|=%.6g\n", math.Sqrt(ss), linf)
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("calibre-ckpt export", flag.ContinueOnError)
	dir := fs.String("dir", "", "checkpoint directory")
	version := fs.Int("version", 0, "snapshot version (0 = latest)")
	format := fs.String("format", "csv", "export format: csv | gob")
	out := fs.String("out", "", "output file (default stdout; required for gob)")
	st, err := openStore(fs, args, dir)
	if err != nil {
		return err
	}
	snap, v, err := open(st, *version)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"index", "value"}); err != nil {
			return err
		}
		for i, x := range snap.State.Global {
			if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(x, 'g', -1, 64)}); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	case "gob":
		if *out == "" {
			return errors.New("gob export is binary; pass -out FILE")
		}
		if err := gob.NewEncoder(w).Encode(snap); err != nil {
			return fmt.Errorf("gob encode: %w", err)
		}
	default:
		return fmt.Errorf("unknown format %q (want csv or gob)", *format)
	}
	if *out != "" {
		fmt.Printf("exported v%d (%s) to %s\n", v, *format, *out)
	}
	return nil
}
