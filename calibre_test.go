package calibre

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 10 { // fig1..fig8, table1, design
		t.Fatalf("ExperimentIDs = %v", ids)
	}
}

func TestSettingNamesSorted(t *testing.T) {
	names := SettingNames()
	if len(names) != 6 {
		t.Fatalf("SettingNames = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestNewEnvironmentUnknownSetting(t *testing.T) {
	if _, err := NewEnvironment("nope", ScaleSmoke, 1); err == nil {
		t.Fatal("unknown setting should error")
	}
}

func TestPublicAPIFlow(t *testing.T) {
	env, err := NewEnvironment("cifar10-q(2,500)", ScaleSmoke, 42)
	if err != nil {
		t.Fatalf("NewEnvironment: %v", err)
	}
	env.Novel = env.Novel[:1]
	out, err := Run(context.Background(), env, "calibre-simclr")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Participants.Summary.N != len(env.Participants) {
		t.Fatalf("participants N = %d", out.Participants.Summary.N)
	}
	if out.Participants.Summary.Mean <= 0 {
		t.Fatalf("mean accuracy = %v, want > 0", out.Participants.Summary.Mean)
	}
	// Facade metric helpers.
	other := Summarize([]float64{0.1, 0.2})
	if Improvement(out.Participants.Summary, other) == 0 && out.Participants.Summary.Mean != other.Mean {
		t.Fatal("Improvement should reflect mean difference")
	}
	_ = VarianceReduction(out.Participants.Summary, other)
}

func TestCalibreVariantThroughFacade(t *testing.T) {
	env, err := NewEnvironment("cifar10-q(2,500)", ScaleSmoke, 7)
	if err != nil {
		t.Fatalf("NewEnvironment: %v", err)
	}
	env.Novel = nil
	m, err := NewCalibreVariant(env, "simclr", true, false)
	if err != nil {
		t.Fatalf("NewCalibreVariant: %v", err)
	}
	if !strings.Contains(m.Name, "[ln]") {
		t.Fatalf("variant name = %s", m.Name)
	}
	out, err := RunCustom(context.Background(), env, m)
	if err != nil {
		t.Fatalf("RunCustom: %v", err)
	}
	if out.Participants.Summary.N == 0 {
		t.Fatal("no results")
	}
}

func TestMethodAndSSLNames(t *testing.T) {
	methods := MethodNames()
	if len(methods) < 20 {
		t.Fatalf("expected ≥20 methods, got %d", len(methods))
	}
	ssls := SSLMethodNames()
	if len(ssls) != 7 { // the paper's six + the VICReg extension
		t.Fatalf("SSL methods = %v", ssls)
	}
}

func TestSyntheticDatasetFacade(t *testing.T) {
	ds, err := NewSyntheticDataset(CIFAR10Spec(), 3, 5)
	if err != nil {
		t.Fatalf("NewSyntheticDataset: %v", err)
	}
	if ds.Len() != 50 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if CIFAR100Spec().NumClasses != 100 || STL10Spec().NumClasses != 10 {
		t.Fatal("spec class counts")
	}
}

func TestNetworkedFederationFacade(t *testing.T) {
	env, err := NewEnvironment("cifar10-q(2,500)", ScaleSmoke, 11)
	if err != nil {
		t.Fatalf("NewEnvironment: %v", err)
	}
	clients := env.Participants[:2]
	method, err := BuildMethod(env, "fedavg")
	if err != nil {
		t.Fatalf("BuildMethod: %v", err)
	}
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Rounds: 1, ClientsPerRound: 2, Seed: 1,
		Aggregator: method.Aggregator, InitGlobal: method.InitGlobal,
		IOTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: method.Trainer, Personalizer: method.Personalizer,
				Seed: 1, IOTimeout: 30 * time.Second,
			}); err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	if len(res.Accuracies) != 2 {
		t.Fatalf("accuracies = %v", res.Accuracies)
	}
}

func TestSweepFacade(t *testing.T) {
	grid := &SweepGrid{
		Name:     "facade",
		Methods:  []string{"fedavg", "fedavg-ft"},
		Settings: []string{"cifar10-q(2,500)"},
		Seeds:    []int64{1},
		Baseline: "fedavg-ft",
	}
	res, err := RunSweep(context.Background(), grid, SweepConfig{Workers: 2})
	if err != nil {
		t.Fatalf("RunSweep: %v", err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Status != "ok" || c.Participants.N == 0 {
			t.Fatalf("cell outcome: %+v", c)
		}
	}
	rep := NewSweepReport(res)
	var b strings.Builder
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# Sweep report: facade") {
		t.Fatalf("report not rendered:\n%s", b.String())
	}
	if _, err := LoadSweepGrid("/nonexistent/grid.json"); err == nil {
		t.Fatal("missing grid file accepted")
	}
}

func TestMetricsFacade(t *testing.T) {
	reg := NewMetricsRegistry()
	reg.ObserveRound(MetricsRoundSample{
		Runtime: "sim", Round: 0, Participants: 3, Responders: 3,
		UplinkWireBytes: 64, UplinkDenseBytes: 256,
	})
	srv, addr, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := snap.Counters[MetricRounds]; got != 1 {
		t.Fatalf("rounds_total = %d, want 1", got)
	}
	if snap.Counters[MetricUplinkWireBytes] != 64 || snap.Counters[MetricUplinkDenseBytes] != 256 {
		t.Fatalf("uplink counters = %v", snap.Counters)
	}
}
