package sweep

import (
	"context"
	"reflect"
	"testing"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/health"
)

// healthGrid is a 30% sign-flip attack beside its honest twin at CI
// scale (20 clients, 5 per round — large enough round cohorts for the
// norm-z detector to engage, unlike the 3-per-round smoke preset).
func healthGrid() *Grid {
	return &Grid{
		Name:           "health-acceptance",
		Methods:        []string{"fedavg-ft"},
		Settings:       []string{"cifar10-q(2,500)"},
		Scales:         []experiments.Scale{experiments.ScaleCI},
		Seeds:          []int64{1},
		Aggregators:    []string{"mean"},
		Adversaries:    []string{"sign-flip(3)"},
		AdversaryFracs: []float64{0, 0.3},
	}
}

// stripHealth zeroes the health verdict fields, leaving the training
// outcome a monitored sweep must not perturb.
func stripHealth(cells []CellResult) []CellResult {
	out := stripVolatile(cells)
	for i := range out {
		out[i].HealthAlerts = 0
		out[i].HealthCritical = 0
		out[i].Suspects = nil
	}
	return out
}

// TestSweepHealthVerdicts wires the health plane through the sweep
// scheduler: every cell gets its own monitor, verdicts land on the cell's
// manifest row, the hostile cell's suspect set is exactly the seeded
// compromised population, verdicts are bit-identical across worker
// counts, and monitoring perturbs no training outcome.
func TestSweepHealthVerdicts(t *testing.T) {
	g := healthGrid()
	hc := health.DefaultConfig()

	serial, err := Run(context.Background(), g, Config{Workers: 1, Health: &hc})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	parallel, err := Run(context.Background(), g, Config{Workers: 2, Health: &hc})
	if err != nil {
		t.Fatalf("workers=2: %v", err)
	}
	if !reflect.DeepEqual(stripVolatile(serial.Cells), stripVolatile(parallel.Cells)) {
		t.Errorf("health verdicts drifted across worker counts:\n%+v\nvs\n%+v",
			stripVolatile(serial.Cells), stripVolatile(parallel.Cells))
	}

	bare, err := Run(context.Background(), g, Config{Workers: 2})
	if err != nil {
		t.Fatalf("bare: %v", err)
	}
	if !reflect.DeepEqual(stripHealth(bare.Cells), stripHealth(parallel.Cells)) {
		t.Error("training outcomes drifted under health monitoring")
	}

	var hostile, honest *CellResult
	for i := range serial.Cells {
		c := &serial.Cells[i]
		if c.Status != StatusOK {
			t.Fatalf("cell failed: %+v", c)
		}
		if c.Cell.AdvFrac > 0 {
			hostile = c
		} else {
			honest = c
		}
	}
	if hostile == nil || honest == nil {
		t.Fatalf("grid did not produce a hostile/honest pair: %+v", serial.Cells)
	}

	// The hostile cell's suspects are exactly the seeded compromised set
	// — derived here the same way the simulator derives it.
	adv, err := fl.ParseAdversary(hostile.Cell.Adversary)
	if err != nil {
		t.Fatalf("ParseAdversary: %v", err)
	}
	adv.Frac = hostile.Cell.AdvFrac
	setting, ok := experiments.Settings()[hostile.Cell.Setting]
	if !ok {
		t.Fatalf("unknown setting %q", hostile.Cell.Setting)
	}
	env, err := experiments.BuildEnvironment(setting, hostile.Cell.Scale, hostile.Cell.EnvSeed())
	if err != nil {
		t.Fatalf("BuildEnvironment: %v", err)
	}
	want := adv.Malicious(env.Seed, len(env.Participants))
	if !reflect.DeepEqual(hostile.Suspects, want) {
		t.Errorf("hostile cell suspects = %v, want the compromised set %v", hostile.Suspects, want)
	}
	if hostile.HealthCritical < len(want) {
		t.Errorf("hostile cell critical alerts = %d, want ≥%d", hostile.HealthCritical, len(want))
	}
	// The honest twin may surface a few norm outliers on real
	// heterogeneous training (that is what "suspected" means), but never
	// more than the attacked cell.
	if len(honest.Suspects) >= len(hostile.Suspects) {
		t.Errorf("honest twin flagged %v — as many suspects as the attacked cell %v",
			honest.Suspects, hostile.Suspects)
	}
}
