package sweep_test

import (
	"fmt"

	"calibre/internal/sweep"
)

// ExampleGrid_Expand shows the declarative grid: three axes expand into
// the full cross product of deterministic cells, whose RNG seeds derive
// from hashes of their keys — so two cells differing only in method (or
// wire format) share the exact same federation world.
func ExampleGrid_Expand() {
	grid := &sweep.Grid{
		Name:     "wire-ab",
		Methods:  []string{"fedavg-ft", "calibre-simclr"},
		Settings: []string{"cifar10-q(2,500)"},
		Seeds:    []int64{1, 2},
		Baseline: "fedavg-ft",
	}
	cells, err := grid.Expand()
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", len(cells))
	fmt.Println(cells[0].Key())
	sameWorld := cells[0].EnvSeed() == cells[2].EnvSeed() // fedavg-ft vs calibre-simclr, seed 1
	fmt.Println("methods share the federation world:", sameWorld)
	// Output:
	// cells: 4
	// method=fedavg-ft|setting=cifar10-q(2,500)|scale=smoke|seed=1|delta=false|quorum=0|dropout=0|straggler=requeue|agg=mean|adv=|advfrac=0|avail=
	// methods share the federation world: true
}
