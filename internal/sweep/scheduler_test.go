package sweep

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"calibre/internal/experiments"
)

// stripVolatile zeroes the fields that legitimately differ between two
// executions of the same cell (wall clock, provenance), leaving exactly
// the determinism contract.
func stripVolatile(cells []CellResult) []CellResult {
	out := append([]CellResult(nil), cells...)
	for i := range out {
		out[i].DurationMS = 0
		out[i].FromManifest = false
	}
	return out
}

// renderReport renders the full report artifact set (markdown + both
// CSVs) to one byte string for bit-identity comparisons.
func renderReport(t *testing.T, res *Result) string {
	t.Helper()
	rep := NewReport(res)
	var b bytes.Buffer
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	if err := rep.WriteCellsCSV(&b); err != nil {
		t.Fatalf("WriteCellsCSV: %v", err)
	}
	if err := rep.WriteMethodsCSV(&b); err != nil {
		t.Fatalf("WriteMethodsCSV: %v", err)
	}
	return b.String()
}

// TestSchedulerDeterminismAcrossWorkerCounts is the scheduler-order
// independence pin: the same grid run with 1 worker and with 4 workers
// (different completion interleavings) produces bit-identical per-cell
// summaries and a byte-identical report.
func TestSchedulerDeterminismAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	serial, err := Run(context.Background(), g, Config{Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	parallel, err := Run(context.Background(), g, Config{Workers: 4})
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if len(serial.Cells) != 12 || len(parallel.Cells) != 12 {
		t.Fatalf("cell counts: %d vs %d", len(serial.Cells), len(parallel.Cells))
	}
	a, b := stripVolatile(serial.Cells), stripVolatile(parallel.Cells)
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("cell %s differs between worker counts:\n%+v\nvs\n%+v", a[i].Key, a[i], b[i])
		}
	}
	if ra, rb := renderReport(t, serial), renderReport(t, parallel); ra != rb {
		t.Fatal("reports are not byte-identical across worker counts")
	}
	for _, c := range a {
		if c.Status != StatusOK {
			t.Fatalf("cell failed: %+v", c)
		}
		if c.Participants.N == 0 || c.Rounds == 0 {
			t.Fatalf("cell has empty summary: %+v", c)
		}
	}
}

// TestSchedulerPanicIsolation injects a panic into one cell's environment
// construction; the cell must be recorded as a typed failure while every
// other cell completes and the sweep returns normally.
func TestSchedulerPanicIsolation(t *testing.T) {
	g := &Grid{
		Methods:  []string{"fedavg"},
		Settings: []string{"cifar10-q(2,500)"},
		Seeds:    []int64{1, 2, 3},
	}
	poison := Cell{Method: "fedavg", Setting: "cifar10-q(2,500)", Scale: experiments.ScaleSmoke, Seed: 2, Straggler: "requeue"}.EnvSeed()
	cfg := Config{
		Workers: 2,
		buildEnv: func(s experiments.Setting, sc experiments.Scale, seed int64) (*experiments.Environment, error) {
			if seed == poison {
				panic("injected environment panic")
			}
			return experiments.BuildEnvironment(s, sc, seed)
		},
	}
	res, err := Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var failed, ok int
	for _, c := range res.Cells {
		switch c.Status {
		case StatusOK:
			ok++
		case StatusFailed:
			failed++
			if !c.Panicked || !strings.Contains(c.Error, "injected environment panic") {
				t.Fatalf("panic not recorded as typed failure: %+v", c)
			}
		}
	}
	if ok != 2 || failed != 1 {
		t.Fatalf("expected 2 ok + 1 failed, got %d ok + %d failed", ok, failed)
	}
}

// TestSchedulerClientGoroutinePanicIsolated drives a panic through the
// deepest path — inside fl's client-training goroutines — and checks it
// surfaces as a Panicked cell failure, not a process crash.
func TestSchedulerClientGoroutinePanicIsolated(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	cfg := Config{
		buildEnv: func(s experiments.Setting, sc experiments.Scale, seed int64) (*experiments.Environment, error) {
			env, err := experiments.BuildEnvironment(s, sc, seed)
			if err != nil {
				return nil, err
			}
			// Poison a client's training set so the trainer indexes out of
			// bounds inside its goroutine: labels shorter than samples make
			// any batch beyond index 0 panic on label access.
			env.Participants[0].Train.Y = env.Participants[0].Train.Y[:1]
			return env, nil
		},
	}
	res, err := Run(context.Background(), g, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := res.Cells[0]
	if c.Status != StatusFailed || !c.Panicked {
		t.Fatalf("client panic not isolated into a typed failure: %+v", c)
	}
}

// TestSchedulerCellTimeout pins the per-cell deadline: an overrunning
// cell is recorded as failed with the deadline error and the sweep
// continues.
func TestSchedulerCellTimeout(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	res, err := Run(context.Background(), g, Config{CellTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	c := res.Cells[0]
	if c.Status != StatusFailed || !strings.Contains(c.Error, "deadline") {
		t.Fatalf("timeout not recorded: %+v", c)
	}
}

// TestSchedulerBudgetSplit checks the two-level budget arithmetic.
func TestSchedulerBudgetSplit(t *testing.T) {
	s := &sweeper{cfg: Config{Workers: 4, SimBudget: 8}, simPar: max(1, 8/4)}
	if s.simPar != 2 {
		t.Fatalf("8-budget over 4 workers should give 2, got %d", s.simPar)
	}
	if got := max(1, 2/4); got != 1 {
		t.Fatalf("budget floor broken: %d", got)
	}
}

// TestSchedulerObservers checks OnCellStart/OnCell fire once per cell.
func TestSchedulerObservers(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1, 2}}
	var started, done atomic.Int64
	_, err := Run(context.Background(), g, Config{
		Workers:     2,
		OnCellStart: func(Cell) { started.Add(1) },
		OnCell:      func(CellResult) { done.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != 2 || done.Load() != 2 {
		t.Fatalf("observers fired %d/%d times, want 2/2", started.Load(), done.Load())
	}
}
