package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"calibre/internal/eval"
	"calibre/internal/experiments"
)

// syntheticResult builds a hand-computable result: one scenario, two
// methods × two seeds, plus one failure.
func syntheticResult() *Result {
	cell := func(method string, seed int64, mean, variance float64) CellResult {
		c := Cell{Method: method, Setting: "cifar10-q(2,500)", Scale: experiments.ScaleSmoke, Seed: seed, Straggler: "requeue"}
		return CellResult{
			Key: c.Key(), Cell: c, Status: StatusOK, Rounds: 4,
			Participants: eval.Summary{N: 8, Mean: mean, Variance: variance},
		}
	}
	failedCell := Cell{Method: "perfedavg", Setting: "cifar10-q(2,500)", Scale: experiments.ScaleSmoke, Seed: 1, Straggler: "requeue"}
	res := &Result{
		Grid: Grid{
			Name:     "synthetic",
			Methods:  []string{"fedavg-ft", "calibre-simclr", "perfedavg"},
			Settings: []string{"cifar10-q(2,500)"},
			Seeds:    []int64{1, 2},
			Baseline: "fedavg-ft",
		},
		Fingerprint: "feedc0de",
		Cells: []CellResult{
			cell("fedavg-ft", 1, 0.60, 0.040),
			cell("fedavg-ft", 2, 0.62, 0.040),
			cell("calibre-simclr", 1, 0.64, 0.020),
			cell("calibre-simclr", 2, 0.66, 0.020),
			{Key: failedCell.Key(), Cell: failedCell, Status: StatusFailed, Error: "boom, with commas"},
		},
	}
	return res
}

func TestReportAggregation(t *testing.T) {
	rep := NewReport(syntheticResult())
	if len(rep.Aggregates) != 2 {
		t.Fatalf("expected 2 aggregates, got %+v", rep.Aggregates)
	}
	// Ranked by mean descending: calibre-simclr first.
	best := rep.Aggregates[0]
	if best.Method != "calibre-simclr" || math.Abs(best.Participants.MeanOfMeans-0.65) > 1e-12 {
		t.Fatalf("ranking broken: %+v", best)
	}
	if best.Participants.Runs != 2 {
		t.Fatalf("seeds not aggregated: %+v", best.Participants)
	}
	// Variance reduction vs fedavg-ft: 1 - 0.02/0.04 = 50%.
	if !best.HasBaseline || math.Abs(best.VarianceReduction-50) > 1e-9 {
		t.Fatalf("variance reduction: %+v", best)
	}
	// calibre-simclr dominates fedavg-ft (higher mean, lower variance):
	// the front is exactly calibre-simclr.
	if !best.Pareto {
		t.Fatal("dominating method not on the Pareto front")
	}
	if rep.Aggregates[1].Pareto {
		t.Fatalf("dominated method on the Pareto front: %+v", rep.Aggregates[1])
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Cell.Method != "perfedavg" {
		t.Fatalf("failures: %+v", rep.Failures)
	}
}

func TestReportMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := NewReport(syntheticResult()).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{
		"# Sweep report: synthetic",
		"baseline: `fedavg-ft`",
		"5 planned, 4 ok, 1 failed, 0 pending",
		"| calibre-simclr | 2 | 0.6500 |",
		"Pareto front (mean vs variance): calibre-simclr",
		"## Failures",
		"boom, with commas",
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("markdown missing %q:\n%s", needle, out)
		}
	}
}

func TestCellsCSVRoundTrip(t *testing.T) {
	rep := NewReport(syntheticResult())
	var b bytes.Buffer
	if err := rep.WriteCellsCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCellsCSV(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatalf("ReadCellsCSV: %v", err)
	}
	if len(rows) != len(rep.Cells) {
		t.Fatalf("%d rows, want %d", len(rows), len(rep.Cells))
	}
	byKey := make(map[string]CellRow)
	for _, r := range rows {
		byKey[r.Key] = r
	}
	for _, c := range rep.Cells {
		r, ok := byKey[c.Key]
		if !ok {
			t.Fatalf("row %s missing", c.Key)
		}
		// Full-precision round trip: the parsed floats are bit-identical.
		if r.Mean != c.Participants.Mean || r.Variance != c.Participants.Variance {
			t.Fatalf("float round trip broken: %+v vs %+v", r, c.Participants)
		}
		if r.Method != c.Cell.Method || r.Status != c.Status || r.Seed != c.Cell.Seed {
			t.Fatalf("row fields: %+v vs %+v", r, c)
		}
	}
	// A non-sweep CSV is rejected with a clear error.
	if _, err := ReadCellsCSV(strings.NewReader("a,b\n1,2\n")); err == nil || !strings.Contains(err.Error(), "not a sweep cells file") {
		t.Fatalf("foreign CSV accepted: %v", err)
	}
}

func TestMethodsCSV(t *testing.T) {
	var b bytes.Buffer
	if err := NewReport(syntheticResult()).WriteMethodsCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "var_reduction_vs_baseline_pct") || !strings.Contains(out, "calibre-simclr") {
		t.Fatalf("methods CSV:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 aggregates
		t.Fatalf("%d lines, want 3:\n%s", len(lines), out)
	}
}
