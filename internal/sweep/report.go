package sweep

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"calibre/internal/eval"
)

// MethodAggregate is one (scenario, method) cross-seed view: the
// fairness-first numbers the sweep exists to produce.
type MethodAggregate struct {
	// Scenario is the grouping key (setting, scale and federation knobs —
	// method and seed stripped).
	Scenario string
	Method   string
	// Participants aggregates the per-seed participant summaries; Novel
	// likewise for the held-out cohort (Runs == 0 when the preset has no
	// novel clients).
	Participants eval.SeedAggregate
	Novel        eval.SeedAggregate
	// VarianceReduction is the percent reduction of this method's mean
	// fairness variance versus the grid baseline in the same scenario
	// (positive = fairer); HasBaseline reports whether a baseline
	// aggregate existed to compare against.
	VarianceReduction float64
	HasBaseline       bool
	// Pareto marks membership of the scenario's accuracy/fairness Pareto
	// front (maximize mean, minimize variance).
	Pareto bool
	// Aggregator, Adversary, AdvFrac and Availability echo the scenario's
	// hostile knobs (from any of its cells — knobs are part of the
	// scenario key, so they agree); BenignScenario is the scenario with
	// the adversary stripped — the honest twin the hostile-fairness table
	// compares against.
	Aggregator     string
	Adversary      string
	AdvFrac        float64
	Availability   string
	BenignScenario string
}

// Report is the fairness-first aggregation of a sweep: per-cell rows,
// cross-seed method aggregates with Pareto fronts, failures and pending
// cells. All derived content is a pure function of the cell outcomes in
// canonical order, so an interrupted-and-resumed sweep renders the exact
// bytes of an uninterrupted one.
type Report struct {
	Name        string
	Fingerprint string
	Baseline    string
	// Planned is the grid's total cell count.
	Planned int
	// Cells holds every recorded outcome, sorted by key.
	Cells []CellResult
	// Failures is the StatusFailed subset of Cells, same order.
	Failures []CellResult
	// Pending lists planned cells with no outcome (partial sweeps).
	Pending []string
	// Aggregates is sorted by scenario, then mean accuracy descending.
	Aggregates []MethodAggregate
}

// NewReport aggregates a sweep result into its report.
func NewReport(res *Result) *Report {
	r := &Report{
		Name:        res.Grid.Name,
		Fingerprint: res.Fingerprint,
		Baseline:    res.Grid.Baseline,
		Planned:     len(res.Cells) + len(res.Pending),
		Cells:       append([]CellResult(nil), res.Cells...),
		Pending:     append([]string(nil), res.Pending...),
	}
	sort.Slice(r.Cells, func(i, j int) bool { return r.Cells[i].Key < r.Cells[j].Key })
	type groupKey struct{ scenario, method string }
	groups := make(map[groupKey][]CellResult)
	for _, c := range r.Cells {
		if c.Status != StatusOK {
			r.Failures = append(r.Failures, c)
			continue
		}
		k := groupKey{c.Cell.Scenario(), c.Cell.Method}
		groups[k] = append(groups[k], c)
	}
	for k, cells := range groups {
		agg := MethodAggregate{Scenario: k.scenario, Method: k.method}
		cell := cells[0].Cell
		agg.Aggregator = cell.Aggregator
		if agg.Aggregator == "" {
			agg.Aggregator = "mean"
		}
		agg.Adversary = cell.Adversary
		agg.AdvFrac = cell.AdvFrac
		agg.Availability = cell.Availability
		benign := cell
		benign.Adversary, benign.AdvFrac = "", 0
		agg.BenignScenario = benign.Scenario()
		var parts, novel []eval.Summary
		for _, c := range cells {
			parts = append(parts, c.Participants)
			if c.Novel.N > 0 {
				novel = append(novel, c.Novel)
			}
		}
		agg.Participants = eval.AggregateSeeds(parts)
		agg.Novel = eval.AggregateSeeds(novel)
		r.Aggregates = append(r.Aggregates, agg)
	}
	// Baseline comparison: each scenario's methods measure their mean
	// fairness variance against the baseline method's in that scenario.
	if r.Baseline != "" {
		base := make(map[string]float64)
		for _, a := range r.Aggregates {
			if a.Method == r.Baseline {
				base[a.Scenario] = a.Participants.MeanVariance
			}
		}
		for i, a := range r.Aggregates {
			if b, ok := base[a.Scenario]; ok {
				r.Aggregates[i].VarianceReduction = eval.VarianceReductionOf(a.Participants.MeanVariance, b)
				r.Aggregates[i].HasBaseline = true
			}
		}
	}
	// Pareto fronts, one per scenario.
	byScenario := make(map[string][]eval.ParetoPoint)
	for _, a := range r.Aggregates {
		byScenario[a.Scenario] = append(byScenario[a.Scenario], eval.ParetoPoint{
			Label: a.Method, Mean: a.Participants.MeanOfMeans, Variance: a.Participants.MeanVariance,
		})
	}
	onFront := make(map[groupKey]bool)
	for scenario, points := range byScenario {
		for _, p := range eval.ParetoFront(points) {
			onFront[groupKey{scenario, p.Label}] = true
		}
	}
	for i, a := range r.Aggregates {
		r.Aggregates[i].Pareto = onFront[groupKey{a.Scenario, a.Method}]
	}
	sort.Slice(r.Aggregates, func(i, j int) bool {
		a, b := r.Aggregates[i], r.Aggregates[j]
		switch {
		case a.Scenario != b.Scenario:
			return a.Scenario < b.Scenario
		case a.Participants.MeanOfMeans != b.Participants.MeanOfMeans:
			return a.Participants.MeanOfMeans > b.Participants.MeanOfMeans
		default:
			return a.Method < b.Method
		}
	})
	return r
}

// f formats a float with full round-trip precision — the CSV analogue of
// the manifest's exact JSON floats, so diffing two sweep CSVs compares
// actual values, not renderings.
func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// cellsHeader is the sweep cells CSV schema, also consumed by
// ReadCellsCSV (and calibre-compare -diff).
var cellsHeader = []string{
	"key", "method", "setting", "scale", "seed", "delta_updates", "quorum",
	"dropout", "straggler", "aggregator", "adversary", "adversary_frac",
	"availability", "status", "rounds", "final_loss",
	"mean", "variance", "std", "bottom10",
	"novel_n", "novel_mean", "novel_variance", "novel_bottom10", "error",
}

// WriteCellsCSV emits one row per recorded cell, in canonical key order.
func (r *Report) WriteCellsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(cellsHeader); err != nil {
		return err
	}
	for _, c := range r.Cells {
		agg := c.Cell.Aggregator
		if agg == "" {
			agg = "mean"
		}
		row := []string{
			c.Key, c.Cell.Method, c.Cell.Setting, string(c.Cell.Scale),
			strconv.FormatInt(c.Cell.Seed, 10), strconv.FormatBool(c.Cell.Delta),
			strconv.Itoa(c.Cell.Quorum), f(c.Cell.Dropout), c.Cell.Straggler,
			agg, c.Cell.Adversary, f(c.Cell.AdvFrac), c.Cell.Availability,
			c.Status, strconv.Itoa(c.Rounds), f(c.FinalLoss),
			f(c.Participants.Mean), f(c.Participants.Variance), f(c.Participants.Std), f(c.Participants.Bottom10),
			strconv.Itoa(c.Novel.N), f(c.Novel.Mean), f(c.Novel.Variance), f(c.Novel.Bottom10),
			c.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMethodsCSV emits the cross-seed aggregate rows.
func (r *Report) WriteMethodsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "method", "runs", "mean", "seed_var_of_mean",
		"fairness_var", "var_of_var", "bottom10",
		"novel_runs", "novel_mean", "novel_fairness_var",
		"var_reduction_vs_baseline_pct", "pareto",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, a := range r.Aggregates {
		vr := ""
		if a.HasBaseline {
			vr = f(a.VarianceReduction)
		}
		row := []string{
			a.Scenario, a.Method, strconv.Itoa(a.Participants.Runs),
			f(a.Participants.MeanOfMeans), f(a.Participants.VarOfMeans),
			f(a.Participants.MeanVariance), f(a.Participants.VarOfVariance),
			f(a.Participants.MeanBottom10),
			strconv.Itoa(a.Novel.Runs), f(a.Novel.MeanOfMeans), f(a.Novel.MeanVariance),
			vr, strconv.FormatBool(a.Pareto),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMarkdown renders the human-readable sweep report: one table per
// scenario (methods ranked by mean accuracy, fairness columns alongside),
// the scenario's Pareto front, then failures and pending cells.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "(unnamed)"
	}
	ok := len(r.Cells) - len(r.Failures)
	fmt.Fprintf(&b, "# Sweep report: %s\n\n", name)
	fmt.Fprintf(&b, "- fingerprint: `%s`\n", r.Fingerprint)
	fmt.Fprintf(&b, "- cells: %d planned, %d ok, %d failed, %d pending\n", r.Planned, ok, len(r.Failures), len(r.Pending))
	if r.Baseline != "" {
		fmt.Fprintf(&b, "- baseline: `%s` (Δvar%% = variance reduction vs it; positive = fairer)\n", r.Baseline)
	}
	var scenarios []string
	byScenario := make(map[string][]MethodAggregate)
	for _, a := range r.Aggregates {
		if _, seen := byScenario[a.Scenario]; !seen {
			scenarios = append(scenarios, a.Scenario)
		}
		byScenario[a.Scenario] = append(byScenario[a.Scenario], a)
	}
	for _, scenario := range scenarios {
		fmt.Fprintf(&b, "\n## %s\n\n", scenario)
		b.WriteString("| method | seeds | mean | ±seeds | fairness var | var-of-var | bottom10 | novel mean |")
		if r.Baseline != "" {
			b.WriteString(" Δvar% |")
		}
		b.WriteString(" pareto |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|")
		if r.Baseline != "" {
			b.WriteString("---|")
		}
		b.WriteString("---|\n")
		for _, a := range byScenario[scenario] {
			novel := "—"
			if a.Novel.Runs > 0 {
				novel = fmt.Sprintf("%.4f", a.Novel.MeanOfMeans)
			}
			fmt.Fprintf(&b, "| %s | %d | %.4f | %.4f | %.5f | %.6f | %.4f | %s |",
				a.Method, a.Participants.Runs, a.Participants.MeanOfMeans,
				a.Participants.VarOfMeans, a.Participants.MeanVariance,
				a.Participants.VarOfVariance, a.Participants.MeanBottom10, novel)
			if r.Baseline != "" {
				if a.HasBaseline {
					fmt.Fprintf(&b, " %+.1f |", a.VarianceReduction)
				} else {
					b.WriteString(" — |")
				}
			}
			if a.Pareto {
				b.WriteString(" ★ |\n")
			} else {
				b.WriteString("  |\n")
			}
		}
		var front []string
		for _, a := range byScenario[scenario] {
			if a.Pareto {
				front = append(front, fmt.Sprintf("%s (mean %.4f, var %.5f)", a.Method, a.Participants.MeanOfMeans, a.Participants.MeanVariance))
			}
		}
		fmt.Fprintf(&b, "\nPareto front (mean vs variance): %s\n", strings.Join(front, "; "))
	}
	// Hostile fairness: every attacked (scenario, method) against its
	// honest twin — the same scenario with the adversary stripped — so the
	// table answers which method × aggregator pairs hold bottom-10%
	// accuracy under attack.
	type benignKey struct{ scenario, method string }
	benignAggs := make(map[benignKey]MethodAggregate)
	hostile := false
	for _, a := range r.Aggregates {
		if a.Adversary == "" {
			benignAggs[benignKey{a.Scenario, a.Method}] = a
		} else {
			hostile = true
		}
	}
	if hostile {
		b.WriteString("\n## Hostile fairness\n\n")
		b.WriteString("Bottom-10% client accuracy under attack vs the honest twin scenario (Δ = hostile − benign; closer to zero = more robust).\n\n")
		b.WriteString("| method | aggregator | adversary | frac | availability | mean | bottom10 | benign bottom10 | Δ bottom10 |\n")
		b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
		for _, a := range r.Aggregates {
			if a.Adversary == "" {
				continue
			}
			avail := a.Availability
			if avail == "" {
				avail = "—"
			}
			benignB10, delta := "—", "—"
			if ba, ok := benignAggs[benignKey{a.BenignScenario, a.Method}]; ok {
				benignB10 = fmt.Sprintf("%.4f", ba.Participants.MeanBottom10)
				delta = fmt.Sprintf("%+.4f", a.Participants.MeanBottom10-ba.Participants.MeanBottom10)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %g | %s | %.4f | %.4f | %s | %s |\n",
				a.Method, a.Aggregator, a.Adversary, a.AdvFrac, avail,
				a.Participants.MeanOfMeans, a.Participants.MeanBottom10, benignB10, delta)
		}
	}
	if len(r.Failures) > 0 {
		b.WriteString("\n## Failures\n\n| cell | error |\n|---|---|\n")
		for _, c := range r.Failures {
			// Cell keys (and errors quoting them) contain literal '|',
			// which splits markdown table cells even inside code spans.
			esc := func(s string) string {
				return strings.ReplaceAll(strings.ReplaceAll(s, "\n", " "), "|", "\\|")
			}
			fmt.Fprintf(&b, "| `%s` | %s |\n", esc(c.Key), esc(c.Error))
		}
	}
	if len(r.Pending) > 0 {
		b.WriteString("\n## Pending\n\n")
		for _, k := range r.Pending {
			fmt.Fprintf(&b, "- `%s`\n", k)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CellRow is one parsed row of a sweep cells CSV — what
// calibre-compare's sweep diff operates on.
type CellRow struct {
	Key, Method, Setting, Scale, Status string
	Seed                                int64
	Mean, Variance, Std, Bottom10       float64
}

// ReadCellsCSV parses a sweep cells CSV (as written by WriteCellsCSV).
// Columns are located by header name, so readers stay compatible when
// columns are appended.
func ReadCellsCSV(rd io.Reader) ([]CellRow, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sweep: read CSV header: %w", err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	for _, need := range []string{"key", "method", "status", "mean", "variance"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("sweep: CSV is not a sweep cells file: missing %q column", need)
		}
	}
	get := func(rec []string, name string) string {
		if i, ok := col[name]; ok && i < len(rec) {
			return rec[i]
		}
		return ""
	}
	var rows []CellRow
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sweep: read CSV: %w", err)
		}
		row := CellRow{
			Key:     get(rec, "key"),
			Method:  get(rec, "method"),
			Setting: get(rec, "setting"),
			Scale:   get(rec, "scale"),
			Status:  get(rec, "status"),
		}
		row.Seed, _ = strconv.ParseInt(get(rec, "seed"), 10, 64)
		for _, fld := range []struct {
			name string
			dst  *float64
		}{
			{"mean", &row.Mean}, {"variance", &row.Variance},
			{"std", &row.Std}, {"bottom10", &row.Bottom10},
		} {
			v, err := strconv.ParseFloat(get(rec, fld.name), 64)
			if err != nil && get(rec, fld.name) != "" {
				return nil, fmt.Errorf("sweep: CSV row %q: bad %s: %w", row.Key, fld.name, err)
			}
			*fld.dst = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}
