package sweep

import (
	"testing"
)

// FuzzParseGrid hardens the grid decoder against arbitrary JSON: no input
// may panic, and any grid that parses must expand within the cell cap with
// every cell key unique — the invariant the manifest relies on. Discovered
// seeds live in testdata/fuzz/FuzzParseGrid.
func FuzzParseGrid(f *testing.F) {
	for _, src := range []string{
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1]}`,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1,2],
		  "aggregators":["mean","trimmed(0.2)","krum(1)"],
		  "adversary":["","sign-flip(3)"],"adversary_frac":[0,0.2],
		  "availability":["","diurnal(0.1,0.6,8)"]}`,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1],
		  "aggregators":["trimmed(.2)","trimmed(0.2)"]}`,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1],
		  "adversary":["ddos"]}`,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1],
		  "availability":["markov(0,0.3,0.5)"],"dropout_rates":[0.2]}`,
		`{"methods":[],"settings":[],"seeds":[]}`,
		`{"unknown_axis":[1]}`,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1]}{"trailing":true}`,
		`[]`, `null`, `{`, ``,
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[1],"quorums":[2],"aggregators":["krum(3)"]}`,
	} {
		f.Add([]byte(src))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseGrid(data)
		if err != nil {
			if g != nil {
				t.Fatalf("error with non-nil grid: %+v", g)
			}
			return
		}
		cells, err := g.Expand()
		if err != nil {
			// Validate passed but Expand failed: Validate is supposed to be
			// the stricter gate, so this would let a bad grid into a manifest.
			t.Fatalf("validated grid fails to expand: %v", err)
		}
		if len(cells) == 0 || len(cells) > maxCells {
			t.Fatalf("expansion size %d out of (0, %d]", len(cells), maxCells)
		}
		seen := make(map[string]bool, len(cells))
		for _, c := range cells {
			k := c.Key()
			if seen[k] {
				t.Fatalf("duplicate cell key %q", k)
			}
			seen[k] = true
		}
		// The fingerprint — the manifest's identity — must be derivable from
		// any grid that validates.
		if _, err := g.Fingerprint(); err != nil {
			t.Fatalf("validated grid has no fingerprint: %v", err)
		}
	})
}
