package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"calibre/internal/store"
)

// ManifestName is the manifest file name inside a sweep directory.
const ManifestName = "sweep-manifest.json"

// manifestSchema identifies the manifest layout; a file with any other
// schema is treated as unusable (full re-plan), like a torn write.
const manifestSchema = "calibre/sweep-manifest/v1"

// Typed manifest errors.
var (
	// ErrManifestExists is returned by a fresh (non-resume) sweep whose
	// directory already holds a manifest: starting over would silently
	// discard completed work — resume it, or point at a fresh directory.
	ErrManifestExists = errors.New("sweep: directory already holds a sweep manifest (resume it or use a fresh directory)")
	// ErrManifestMismatch is returned when resuming with a grid whose
	// fingerprint differs from the manifest's: the completed cells belong
	// to a different sweep and skipping by key would silently mix results.
	ErrManifestMismatch = errors.New("sweep: manifest belongs to a different grid")
	// ErrManifestCorrupt marks a manifest that cannot be decoded (torn
	// write, truncation, schema drift). Resume treats it as absent and
	// re-plans the full grid rather than crashing.
	ErrManifestCorrupt = errors.New("sweep: manifest is corrupt or torn")
)

// manifest is the durable record of a sweep in progress: the grid
// fingerprint plus one outcome per completed (or failed) cell, keyed by
// cell key. It is rewritten atomically after every cell, so a SIGKILL at
// any instant leaves either the previous or the next complete manifest.
type manifest struct {
	Schema      string                `json:"schema"`
	Name        string                `json:"name,omitempty"`
	Fingerprint string                `json:"fingerprint"`
	Cells       map[string]CellResult `json:"cells"`
}

// loadManifest reads and decodes a manifest. A missing file surfaces as
// os.ErrNotExist; any decode problem (including a wrong schema) wraps
// ErrManifestCorrupt so callers can fall back to a full re-plan.
func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifestCorrupt, err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrManifestCorrupt, m.Schema, manifestSchema)
	}
	if m.Cells == nil {
		m.Cells = map[string]CellResult{}
	}
	return &m, nil
}

// save writes the manifest atomically (write-rename): concurrent cell
// completions serialize through the scheduler's lock, and a crash
// mid-save can never tear the previous manifest.
func (m *manifest) save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encode manifest: %w", err)
	}
	if err := store.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: save manifest: %w", err)
	}
	return nil
}
