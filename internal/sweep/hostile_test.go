package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// hostileGrid is the pinned adversarial acceptance grid: one method, one
// setting, two seeds, a sign-flip attack over three aggregators, with the
// honest (frac 0) twin of every hostile cell riding along for the
// benign-baseline columns of the hostile-fairness table.
func hostileGrid() *Grid {
	return &Grid{
		Name:           "hostile-acceptance",
		Methods:        []string{"fedavg-ft"},
		Settings:       []string{"cifar10-q(2,500)"},
		Seeds:          []int64{1, 2},
		Aggregators:    []string{"mean", "trimmed(0.34)", "median"},
		Adversaries:    []string{"sign-flip(3)"},
		AdversaryFracs: []float64{0, 0.3},
	}
}

// TestHostileSweepRobustAggregatorsHold is the end-to-end robustness pin:
// under a 30% sign-flip attack the robust aggregators (trimmed mean,
// coordinate median) must keep the bottom-10% participant accuracy above
// the plain weighted mean's, and the report must wire every hostile
// aggregate to its honest twin.
func TestHostileSweepRobustAggregatorsHold(t *testing.T) {
	g := hostileGrid()
	res, err := Run(context.Background(), g, Config{Workers: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := NewReport(res)
	if len(rep.Failures) != 0 {
		t.Fatalf("hostile cells failed: %+v", rep.Failures)
	}
	hostile := map[string]MethodAggregate{} // aggregator → attacked aggregate
	honest := map[string]MethodAggregate{}
	for _, a := range rep.Aggregates {
		t.Logf("agg=%-12s adv=%-12s frac=%g b10=%.4f mean=%.4f benign=%q",
			a.Aggregator, a.Adversary, a.AdvFrac,
			a.Participants.MeanBottom10, a.Participants.MeanOfMeans, a.BenignScenario)
		if a.Adversary == "" {
			honest[a.Aggregator] = a
			continue
		}
		if a.Adversary != "sign-flip(3)" || a.AdvFrac != 0.3 {
			t.Fatalf("unexpected hostile knobs: %+v", a)
		}
		hostile[a.Aggregator] = a
	}
	for _, agg := range []string{"mean", "trimmed(0.34)", "median"} {
		h, ok := hostile[agg]
		if !ok {
			t.Fatalf("no hostile aggregate for %q", agg)
		}
		b, ok := honest[agg]
		if !ok {
			t.Fatalf("no honest twin for %q", agg)
		}
		if h.BenignScenario != b.Scenario {
			t.Fatalf("%q benign scenario %q does not match honest twin %q",
				agg, h.BenignScenario, b.Scenario)
		}
	}
	for _, robust := range []string{"trimmed(0.34)", "median"} {
		if hostile[robust].Participants.MeanBottom10 <= hostile["mean"].Participants.MeanBottom10 {
			t.Errorf("%s under attack (b10 %.4f) does not beat mean (b10 %.4f)",
				robust, hostile[robust].Participants.MeanBottom10,
				hostile["mean"].Participants.MeanBottom10)
		}
	}
	// The attack must actually bite: the plain mean's bottom-10% degrades
	// versus its honest twin.
	if hostile["mean"].Participants.MeanBottom10 >= honest["mean"].Participants.MeanBottom10 {
		t.Errorf("sign-flip did not degrade the weighted mean: hostile %.4f vs honest %.4f",
			hostile["mean"].Participants.MeanBottom10, honest["mean"].Participants.MeanBottom10)
	}
	md := renderReport(t, res)
	if !strings.Contains(md, "## Hostile fairness") {
		t.Fatal("report lacks the hostile-fairness section")
	}
}

// TestHostileKillResumeBitIdentical: an adversarial sweep killed mid-run
// and resumed renders byte-identical artifacts — the attack RNG, the
// availability trace and the scheduler all replay exactly.
func TestHostileKillResumeBitIdentical(t *testing.T) {
	g := hostileGrid()
	g.Availability = []string{"diurnal(0.05,0.2,4)"}
	dir := t.TempDir()

	full, err := Run(context.Background(), g, Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := renderReport(t, full)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	_, err = Run(ctx, g, Config{
		Workers: 2, Dir: dir,
		OnCell: func(CellResult) {
			if done.Add(1) == 4 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("cancelled run must report an error")
	}

	resumed, err := Run(context.Background(), g, Config{Workers: 2, Dir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := renderReport(t, resumed); got != want {
		t.Fatal("resumed hostile sweep is not byte-identical to an uninterrupted one")
	}
}

// TestHostileReportFixture pins the rendered hostile-fairness report to a
// committed golden file, so any drift in the attack RNG, the robust
// aggregators or the report layout is a visible diff. Regenerate with
// CALIBRE_UPDATE_FIXTURES=1 go test ./internal/sweep -run HostileReportFixture.
func TestHostileReportFixture(t *testing.T) {
	res, err := Run(context.Background(), hostileGrid(), Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep := NewReport(res)
	var b strings.Builder
	if err := rep.WriteMarkdown(&b); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	golden := filepath.Join("testdata", "hostile-report.md")
	if os.Getenv("CALIBRE_UPDATE_FIXTURES") != "" {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatalf("update fixture: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read fixture (set CALIBRE_UPDATE_FIXTURES=1 to create): %v", err)
	}
	if b.String() != string(want) {
		t.Fatalf("hostile report drifted from %s;\n--- got ---\n%s", golden, b.String())
	}
}
