package sweep

import (
	"strings"
	"testing"

	"calibre/internal/experiments"
)

// testGrid is the acceptance grid: 3 methods × 2 partitions × 2 seeds =
// 12 smoke cells, cheap supervised methods so the whole suite stays fast.
func testGrid() *Grid {
	return &Grid{
		Name:     "acceptance",
		Methods:  []string{"fedavg", "fedavg-ft", "perfedavg"},
		Settings: []string{"cifar10-q(2,500)", "cifar10-d(0.3,600)"},
		Seeds:    []int64{1, 2},
		Baseline: "fedavg-ft",
	}
}

func TestExpandShapeAndOrder(t *testing.T) {
	g := testGrid()
	cells, err := g.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 12 {
		t.Fatalf("12 cells expected, got %d", len(cells))
	}
	// Deterministic: two expansions are identical.
	again, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, cells[i], again[i])
		}
	}
	// Canonical axis order: method outermost.
	if cells[0].Method != "fedavg" || cells[len(cells)-1].Method != "perfedavg" {
		t.Fatalf("axis order broken: first %s, last %s", cells[0].Method, cells[len(cells)-1].Method)
	}
	// Defaults filled.
	if cells[0].Scale != experiments.ScaleSmoke || cells[0].Straggler != "requeue" {
		t.Fatalf("defaults not applied: %+v", cells[0])
	}
	// Keys unique.
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.Key()] {
			t.Fatalf("duplicate key %s", c.Key())
		}
		seen[c.Key()] = true
	}
}

// TestEnvSeedSharedAcrossMethods pins the apples-to-apples guarantee:
// cells that differ only in method (or federation knobs) face the same
// federation world, while any environment axis change moves the seed.
func TestEnvSeedSharedAcrossMethods(t *testing.T) {
	base := Cell{Method: "fedavg", Setting: "cifar10-q(2,500)", Scale: experiments.ScaleSmoke, Seed: 1, Straggler: "requeue"}
	sameWorld := base
	sameWorld.Method = "calibre-simclr"
	sameWorld.Delta = true
	sameWorld.Quorum = 2
	if base.EnvSeed() != sameWorld.EnvSeed() {
		t.Fatal("method/knob change moved the environment seed")
	}
	for _, mut := range []func(*Cell){
		func(c *Cell) { c.Seed = 2 },
		func(c *Cell) { c.Setting = "cifar10-d(0.3,600)" },
		func(c *Cell) { c.Scale = experiments.ScaleCI },
	} {
		other := base
		mut(&other)
		if base.EnvSeed() == other.EnvSeed() {
			t.Fatalf("environment axis change did not move the seed: %+v", other)
		}
	}
	if base.EnvSeed() < 0 {
		t.Fatal("EnvSeed must be non-negative")
	}
}

func TestGridFingerprint(t *testing.T) {
	g := testGrid()
	fp1, err := g.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	// Name and baseline are cosmetic: they must not move the fingerprint.
	g2 := testGrid()
	g2.Name = "renamed"
	g2.Baseline = ""
	g2.Methods = []string{"fedavg", "fedavg-ft", "perfedavg"}
	fp2, err := g2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatal("cosmetic fields moved the fingerprint")
	}
	// Any cell change must move it.
	g3 := testGrid()
	g3.Seeds = []int64{1, 3}
	fp3, err := g3.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Fatal("seed change did not move the fingerprint")
	}
}

func TestGridValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Grid)
		want string
	}{
		{"no methods", func(g *Grid) { g.Methods = nil }, "no methods"},
		{"no settings", func(g *Grid) { g.Settings = nil }, "no settings"},
		{"no seeds", func(g *Grid) { g.Seeds = nil }, "no seeds"},
		{"unknown method", func(g *Grid) { g.Methods = []string{"fedmagic"} }, "unknown method"},
		{"unknown setting", func(g *Grid) { g.Settings = []string{"mnist"} }, "unknown setting"},
		{"unknown scale", func(g *Grid) { g.Scales = []experiments.Scale{"galactic"} }, "unknown scale"},
		{"dup seeds", func(g *Grid) { g.Seeds = []int64{1, 1} }, "duplicate seed"},
		{"dup methods", func(g *Grid) { g.Methods = []string{"fedavg", "fedavg", "fedavg-ft"} }, "duplicate methods"},
		{"dup scales", func(g *Grid) { g.Scales = []experiments.Scale{"smoke", "smoke"} }, "duplicate scales"},
		{"dup delta", func(g *Grid) { g.DeltaUpdates = []bool{true, true} }, "duplicate delta_updates"},
		{"dup quorums", func(g *Grid) { g.Quorums = []int{2, 2} }, "duplicate quorums"},
		{"dup dropout", func(g *Grid) { g.DropoutRates = []float64{0.1, 0.1} }, "duplicate dropout_rates"},
		{"bad dropout", func(g *Grid) { g.DropoutRates = []float64{1.5} }, "dropout"},
		{"bad straggler", func(g *Grid) { g.Stragglers = []string{"shrug"} }, "straggler"},
		{"quorum too big", func(g *Grid) { g.Quorums = []int{99} }, "quorum"},
		{"negative quorum", func(g *Grid) { g.Quorums = []int{-1} }, "quorum"},
		{"baseline not in methods", func(g *Grid) { g.Baseline = "ditto" }, "baseline"},
	}
	for _, tc := range cases {
		g := testGrid()
		tc.mut(g)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

func TestGridCellCap(t *testing.T) {
	g := testGrid()
	for i := int64(10); i < 2000; i++ {
		g.Seeds = append(g.Seeds, i)
	}
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("oversized grid accepted: %v", err)
	}
}

func TestParseGridJSON(t *testing.T) {
	data := []byte(`{
		"name": "wire-ab",
		"methods": ["fedavg-ft", "calibre-simclr"],
		"settings": ["cifar10-q(2,500)"],
		"seeds": [1, 2],
		"delta_updates": [false, true],
		"baseline": "fedavg-ft"
	}`)
	g, err := ParseGrid(data)
	if err != nil {
		t.Fatalf("ParseGrid: %v", err)
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("expected 8 cells, got %d", len(cells))
	}
	// Typos in axis names must not silently shrink a sweep.
	if _, err := ParseGrid([]byte(`{"methods":["fedavg"],"settings":["cifar10-q(2,500)"],"seeds":[1],"seedz":[2]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseGrid([]byte(`{"methods":[`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// A botched merge of two grid objects must not silently run only the
	// first one.
	two := `{"methods":["fedavg"],"settings":["cifar10-q(2,500)"],"seeds":[1]}` +
		`{"methods":["fedavg-ft"],"settings":["cifar10-q(2,500)"],"seeds":[2]}`
	if _, err := ParseGrid([]byte(two)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("concatenated grid objects accepted: %v", err)
	}
}
