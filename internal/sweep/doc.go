// Package sweep turns the repo from "runs an experiment" into "serves
// workloads": it executes whole grids of federated-learning scenarios —
// methods × non-i.i.d. partitions × seeds × federation knobs — as a
// single scheduled, resumable, reportable unit.
//
// The subsystem has four layers:
//
//	Grid      a declarative scenario spec (JSON or Go) expanded into
//	          deterministic Cells; each cell's RNG seed derives from a
//	          hash of its key, so results are independent of execution
//	          order, and the environment sub-key excludes the method, so
//	          every method in a scenario faces the identical federation
//	          world.
//	Run       a bounded worker pool running whole fl simulations
//	          concurrently — distinct from the intra-simulation client
//	          pool; Config.SimBudget splits the hardware budget between
//	          the two levels — with per-cell timeouts, panic isolation
//	          and typed failure records.
//	manifest  an atomic write-rename JSON manifest (store.AtomicWriteFile,
//	          fingerprinted like checkpoint snapshots) records each
//	          completed cell, so a killed sweep resumes by skipping
//	          finished cells; per-cell durable checkpoints additionally
//	          thread through fl's ResumeFrom machinery for resumable
//	          methods (fl.Stateful ones run uncheckpointed, with a note).
//	Report    fairness-first aggregation over eval.Summary: per-cell
//	          mean/variance/Bottom10, cross-seed aggregates with
//	          variance-of-variance, variance reduction versus a baseline
//	          method and Pareto-front extraction (mean vs variance),
//	          emitted as CSV and markdown.
//
// The cmd/calibre-sweep CLI exposes plan, run, resume and report over
// this package; calibre.RunSweep is the facade entry point. See the
// "Sweep engine" section of ARCHITECTURE.md for the full diagram and the
// two-level worker-budget rule.
package sweep
