package sweep

import (
	"bytes"
	"context"
	"testing"

	"calibre/internal/trace"
)

// TestSweepCellSpansNestRoundSpans pins the sweep-level trace contract:
// every cell is bracketed by cell_start/cell_end, every round and client
// event a cell's simulation emits carries that cell's key, and with
// concurrent workers no event escapes attribution.
func TestSweepCellSpansNestRoundSpans(t *testing.T) {
	g := testGrid()
	var sink bytes.Buffer
	rec := trace.New(&sink, trace.Config{})
	if _, err := Run(context.Background(), g, Config{Workers: 3, Recorder: rec}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close recorder: %v", err)
	}

	events, err := trace.ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	planned := make(map[string]bool, len(cells))
	for _, c := range cells {
		planned[c.Key()] = true
	}

	starts := map[string]int{}
	ends := map[string]int{}
	rounds := map[string]int{}
	for _, e := range events {
		if e.Cell == "" || !planned[e.Cell] {
			t.Fatalf("event without a planned cell key: %+v", e)
		}
		switch e.Kind {
		case trace.KindCellStart:
			if e.Runtime != "sweep" {
				t.Fatalf("cell_start with runtime %q", e.Runtime)
			}
			starts[e.Cell]++
		case trace.KindCellEnd:
			ends[e.Cell]++
			if e.Note != StatusOK {
				t.Fatalf("cell_end status %q for %s", e.Note, e.Cell)
			}
			if e.N == 0 {
				t.Fatalf("cell_end with 0 rounds for %s", e.Cell)
			}
		case trace.KindRoundStart:
			if e.Runtime != "sim" {
				t.Fatalf("round_start with runtime %q", e.Runtime)
			}
			rounds[e.Cell]++
		}
	}
	for key := range planned {
		if starts[key] != 1 || ends[key] != 1 {
			t.Errorf("cell %s spans = %d start / %d end, want 1/1", key, starts[key], ends[key])
		}
		if rounds[key] == 0 {
			t.Errorf("cell %s has no nested round spans", key)
		}
	}
}
