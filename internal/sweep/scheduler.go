package sweep

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"calibre/internal/eval"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/store"
	"calibre/internal/tensor"
	"calibre/internal/trace"
)

// Cell outcome statuses recorded in manifests and reports.
const (
	// StatusOK marks a cell that ran to completion; its summaries are
	// valid.
	StatusOK = "ok"
	// StatusFailed marks a cell that errored, panicked or timed out; its
	// Error field says why and its summaries are zero.
	StatusFailed = "failed"
)

// Config controls one sweep execution.
type Config struct {
	// Workers bounds how many cells (whole federated simulations) run
	// concurrently; <1 means 1. This is the outer level of the two-level
	// budget.
	Workers int
	// SimBudget is the total number of concurrent client-training
	// goroutines across all in-flight cells — the inner level. Each cell
	// runs its simulation with Parallelism = max(1, SimBudget/Workers).
	// <1 defaults to GOMAXPROCS.
	SimBudget int
	// CellTimeout bounds one cell's wall-clock time; an overrunning cell
	// is recorded as failed (context.DeadlineExceeded) and the sweep
	// moves on. 0 means unbounded.
	CellTimeout time.Duration
	// KernelWorkers, when >0, resizes the process-wide tensor kernel
	// pool once before the sweep starts. It is deliberately not a grid
	// axis: the pool is process-global, so per-cell values would race
	// across concurrent cells. Kernels are bit-identical at any pool
	// size, so this only affects throughput.
	KernelWorkers int
	// Dir is the sweep directory: the manifest lives at Dir/ManifestName
	// and per-cell checkpoint stores under Dir/cells/. Empty runs the
	// sweep in memory, with no durability and no resume.
	Dir string
	// Resume, with Dir set, skips cells the manifest records as ok and
	// retries failed ones. A corrupt or torn manifest falls back to a
	// full re-plan (noted in Result.Notes); a manifest from a different
	// grid fails with ErrManifestMismatch. Without Resume, an existing
	// manifest fails with ErrManifestExists.
	Resume bool
	// CheckpointEvery, when >0 with Dir set, threads per-cell durable
	// round checkpoints (stride CheckpointEvery) through fl's
	// OnCheckpoint/ResumeFrom machinery, so a killed sweep resumes long
	// cells mid-federation instead of from round 0. Methods that carry
	// cross-round state a snapshot cannot capture (fl.Stateful) run
	// uncheckpointed, with a note on their result.
	CheckpointEvery int
	// OnPlan, if set, is called once before execution starts with the
	// grid's planned cell count and the number of cells actually pending
	// after manifest restoration (planned minus restored).
	OnPlan func(planned, pending int)
	// OnCellStart, if set, observes each cell as a worker picks it up.
	// Callback invocations are serialized across workers.
	OnCellStart func(Cell)
	// OnCell, if set, observes each completed cell's outcome (serialized
	// across workers, after the outcome is durably recorded).
	OnCell func(CellResult)
	// Obs, if non-nil, receives live sweep observability: planned/pending/
	// in-flight cell gauges, done/failed/restored counters, and — because
	// the registry is threaded into every cell's simulation — the round
	// and uplink counters accumulating across cells. This is what
	// `calibre-sweep watch` renders.
	Obs *obs.Registry
	// Recorder, if non-nil, receives flight-recorder events: each cell is
	// bracketed by cell_start/cell_end spans, and the cell's simulation
	// emits its round and client spans through a per-cell view
	// (Recorder.WithCell), so every event carries the cell key and cell
	// spans nest round spans unambiguously even with concurrent cells.
	// Nil disables tracing at zero cost.
	Recorder *trace.Recorder
	// Health, if non-nil, attaches a fresh health.Monitor with this
	// detector config to every cell's simulation. Verdicts land on the
	// cell's CellResult (HealthAlerts/HealthCritical/Suspects) and the
	// alert counters accumulate on Obs sweep-wide — the health line
	// `calibre-sweep watch` renders. Purely observational: a monitored
	// sweep's cells are bit-identical to a bare sweep's.
	Health *health.Config

	// buildEnv stubs environment construction in tests; nil means
	// experiments.BuildEnvironment.
	buildEnv func(experiments.Setting, experiments.Scale, int64) (*experiments.Environment, error)
}

// CellResult is one cell's typed outcome — the manifest and report row.
type CellResult struct {
	Key  string `json:"key"`
	Cell Cell   `json:"cell"`
	// Status is StatusOK or StatusFailed.
	Status string `json:"status"`
	// Error carries the failure cause for StatusFailed cells.
	Error string `json:"error,omitempty"`
	// Panicked marks failures caused by a recovered panic (either inside
	// a client goroutine, via fl.PanicError, or anywhere in the cell).
	Panicked bool `json:"panicked,omitempty"`
	// Checkpointed reports that per-cell durable checkpoints were active.
	Checkpointed bool `json:"checkpointed,omitempty"`
	// Note records non-fatal decisions, e.g. checkpointing skipped for a
	// stateful method.
	Note string `json:"note,omitempty"`
	// Rounds is the number of federated rounds completed; FinalLoss the
	// last round's mean training loss.
	Rounds    int     `json:"rounds,omitempty"`
	FinalLoss float64 `json:"final_loss,omitempty"`
	// HealthAlerts/HealthCritical count the alerts the cell's health
	// monitor raised, and Suspects lists the client IDs it flagged as
	// suspected adversaries (ascending). All zero when Config.Health is
	// nil or the cell stayed healthy.
	HealthAlerts   int   `json:"health_alerts,omitempty"`
	HealthCritical int   `json:"health_critical,omitempty"`
	Suspects       []int `json:"suspects,omitempty"`
	// Participants and Novel summarize per-client accuracy for the two
	// cohorts (Novel.N == 0 when the preset has no novel clients).
	Participants eval.Summary `json:"participants"`
	Novel        eval.Summary `json:"novel"`
	// DurationMS is wall-clock; it never enters reports, so interrupted
	// and uninterrupted sweeps stay byte-identical there.
	DurationMS int64 `json:"duration_ms"`
	// FromManifest marks results restored by resume rather than executed
	// in this process. Not persisted.
	FromManifest bool `json:"-"`
}

// Result is a completed sweep: every planned cell's outcome in canonical
// key order, plus sweep-level notes.
type Result struct {
	Grid        Grid
	Fingerprint string
	// Cells holds one outcome per planned cell, sorted by Key.
	Cells []CellResult
	// Pending lists planned cell keys with no outcome yet; empty after a
	// completed Run, possibly non-empty from Load on a partial sweep.
	Pending []string
	// Notes records sweep-level events (manifest fallback decisions).
	Notes []string
}

// sweeper carries one Run's resolved state.
type sweeper struct {
	cfg      Config
	settings map[string]experiments.Setting
	simPar   int
}

// Run executes the grid under cfg. It returns when every pending cell
// has an outcome (failed cells do not abort the sweep — they are typed
// records in the result) or when ctx is canceled, in which case the
// manifest still holds every cell completed so far and a later Resume
// picks up from there.
func Run(ctx context.Context, g *Grid, cfg Config) (*Result, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.SimBudget < 1 {
		cfg.SimBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.KernelWorkers > 0 {
		tensor.SetWorkers(cfg.KernelWorkers)
	}
	s := &sweeper{cfg: cfg, settings: experiments.Settings()}

	outcomes := make(map[string]CellResult, len(cells))
	var notes []string
	var man *manifest
	manPath := ""
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: create %s: %w", cfg.Dir, err)
		}
		manPath = filepath.Join(cfg.Dir, ManifestName)
		prev, err := loadManifest(manPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Fresh directory.
		case errors.Is(err, ErrManifestCorrupt):
			if !cfg.Resume {
				return nil, fmt.Errorf("%w: %s", ErrManifestExists, manPath)
			}
			notes = append(notes, fmt.Sprintf("manifest unusable (%v); re-planning the full grid", err))
		case err != nil:
			return nil, err
		case !cfg.Resume:
			return nil, fmt.Errorf("%w: %s", ErrManifestExists, manPath)
		case prev.Fingerprint != fp:
			return nil, fmt.Errorf("%w: manifest fingerprint %s, grid %s", ErrManifestMismatch, prev.Fingerprint, fp)
		default:
			planned := make(map[string]bool, len(cells))
			for _, c := range cells {
				planned[c.Key()] = true
			}
			restored, retried := 0, 0
			for key, res := range prev.Cells {
				if !planned[key] {
					continue
				}
				if res.Status == StatusOK {
					res.FromManifest = true
					outcomes[key] = res
					restored++
				} else {
					retried++
				}
			}
			notes = append(notes, fmt.Sprintf("resumed: %d cells restored from manifest, %d failed cells retried", restored, retried))
		}
		man = &manifest{Schema: manifestSchema, Name: g.Name, Fingerprint: fp, Cells: map[string]CellResult{}}
		for key, res := range outcomes {
			man.Cells[key] = res
		}
		if err := man.save(manPath); err != nil {
			return nil, err
		}
	}

	var pending []Cell
	for _, c := range cells {
		if _, done := outcomes[c.Key()]; !done {
			pending = append(pending, c)
		}
	}

	if cfg.OnPlan != nil {
		cfg.OnPlan(len(cells), len(pending))
	}
	cfg.Obs.Gauge(obs.GaugeSweepCellsPlanned).Set(int64(len(cells)))
	cfg.Obs.Gauge(obs.GaugeSweepCellsPending).Set(int64(len(pending)))
	cfg.Obs.Counter(obs.CounterSweepCellsRestored).Add(int64(len(outcomes)))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu      sync.Mutex
		cbMu    sync.Mutex // serializes OnCellStart/OnCell across workers
		saveErr error
		wg      sync.WaitGroup
	)
	feed := make(chan Cell)
	// Fewer pending cells than requested workers (a resume tail) must not
	// strand budget: the per-cell training parallelism divides SimBudget
	// by the workers actually spawned.
	workers := min(cfg.Workers, max(len(pending), 1))
	s.simPar = max(1, cfg.SimBudget/workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range feed {
				if ctx.Err() != nil {
					continue // drain without running
				}
				if cfg.OnCellStart != nil {
					cbMu.Lock()
					cfg.OnCellStart(c)
					cbMu.Unlock()
				}
				cfg.Obs.Gauge(obs.GaugeSweepCellsInFlight).Add(1)
				res := s.runCell(ctx, c)
				cfg.Obs.Gauge(obs.GaugeSweepCellsInFlight).Add(-1)
				if ctx.Err() != nil {
					// The sweep was canceled mid-cell: do not record a
					// cancellation artifact; resume re-runs this cell.
					continue
				}
				cfg.Obs.Gauge(obs.GaugeSweepCellsPending).Add(-1)
				if res.Status == StatusOK {
					cfg.Obs.Counter(obs.CounterSweepCellsDone).Add(1)
				} else {
					cfg.Obs.Counter(obs.CounterSweepCellsFailed).Add(1)
				}
				mu.Lock()
				outcomes[res.Key] = res
				if man != nil {
					man.Cells[res.Key] = res
					if err := man.save(manPath); err != nil && saveErr == nil {
						// Durability was requested; losing it silently
						// would break the resume contract. Fail the sweep.
						saveErr = err
						cancel()
					}
				}
				mu.Unlock()
				if cfg.OnCell != nil && ctx.Err() == nil {
					cbMu.Lock()
					cfg.OnCell(res)
					cbMu.Unlock()
				}
			}
		}()
	}
	for _, c := range pending {
		feed <- c
		if ctx.Err() != nil {
			break
		}
	}
	close(feed)
	wg.Wait()
	if saveErr != nil {
		return nil, saveErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}

	res := &Result{Grid: *g, Fingerprint: fp, Notes: notes}
	for _, c := range cells {
		out, ok := outcomes[c.Key()]
		if !ok {
			res.Pending = append(res.Pending, c.Key())
			continue
		}
		res.Cells = append(res.Cells, out)
	}
	sort.Slice(res.Cells, func(i, j int) bool { return res.Cells[i].Key < res.Cells[j].Key })
	sort.Strings(res.Pending)
	return res, nil
}

// Load rebuilds a Result from a sweep directory's manifest without
// running anything — the `calibre-sweep report` path. Cells the manifest
// does not cover are listed as Pending.
func Load(g *Grid, dir string) (*Result, error) {
	cells, err := g.Expand()
	if err != nil {
		return nil, err
	}
	fp, err := g.Fingerprint()
	if err != nil {
		return nil, err
	}
	man, err := loadManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	if man.Fingerprint != fp {
		return nil, fmt.Errorf("%w: manifest fingerprint %s, grid %s", ErrManifestMismatch, man.Fingerprint, fp)
	}
	res := &Result{Grid: *g, Fingerprint: fp}
	for _, c := range cells {
		out, ok := man.Cells[c.Key()]
		if !ok {
			res.Pending = append(res.Pending, c.Key())
			continue
		}
		out.FromManifest = true
		res.Cells = append(res.Cells, out)
	}
	sort.Slice(res.Cells, func(i, j int) bool { return res.Cells[i].Key < res.Cells[j].Key })
	sort.Strings(res.Pending)
	return res, nil
}

// runCell executes one cell end to end: environment, method, simulation,
// personalization, summaries. Every failure mode — error, panic anywhere
// in the cell, timeout — becomes a typed CellResult rather than taking
// down the sweep.
func (s *sweeper) runCell(ctx context.Context, c Cell) (res CellResult) {
	start := time.Now()
	res = CellResult{Key: c.Key(), Cell: c, Status: StatusFailed}
	rec := s.cfg.Recorder.WithCell(c.Key())
	tsCell := rec.Now()
	rec.Emit(trace.Event{Kind: trace.KindCellStart, TS: tsCell, Runtime: "sweep", Round: -1, Client: -1})
	var mon *health.Monitor
	if s.cfg.Health != nil {
		mon = health.NewMonitor(s.cfg.Health)
	}
	defer func() {
		if r := recover(); r != nil {
			res.Status = StatusFailed
			res.Error = fmt.Sprintf("panic: %v", r)
			res.Panicked = true
		}
		// Record health verdicts whatever the outcome — a cell that
		// diverged into failure is exactly the one whose alerts matter.
		if mon != nil {
			d := mon.Diagnosis()
			res.HealthAlerts = len(d.Alerts) + d.Dropped
			res.HealthCritical = d.Critical
			res.Suspects = d.Suspects
		}
		res.DurationMS = time.Since(start).Milliseconds()
		tsEnd := rec.Now()
		rec.Emit(trace.Event{Kind: trace.KindCellEnd, TS: tsEnd, Runtime: "sweep",
			Round: -1, Client: -1, Dur: tsEnd - tsCell, N: res.Rounds, Note: res.Status})
	}()
	if s.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.CellTimeout)
		defer cancel()
	}
	setting, ok := s.settings[c.Setting]
	if !ok {
		res.Error = fmt.Sprintf("unknown setting %q", c.Setting)
		return res
	}
	buildEnv := s.cfg.buildEnv
	if buildEnv == nil {
		buildEnv = experiments.BuildEnvironment
	}
	env, err := buildEnv(setting, c.Scale, c.EnvSeed())
	if err != nil {
		res.Error = err.Error()
		return res
	}
	m, err := experiments.BuildMethod(env, c.Method)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	straggler, err := fl.ParseStragglerPolicy(c.Straggler)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	// Hostile knobs: the aggregator override replaces the method's own
	// aggregator (the method is built per cell, so no sharing hazard); the
	// adversary and availability trace thread into the simulator config.
	if c.Aggregator != "" && c.Aggregator != "mean" {
		agg, err := fl.ParseAggregator(c.Aggregator)
		if err != nil {
			res.Error = err.Error()
			return res
		}
		m.Aggregator = agg
	}
	adversary, err := fl.ParseAdversary(c.Adversary)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	if adversary != nil {
		adversary.Frac = c.AdvFrac
	}
	avail, err := fl.ParseTrace(c.Availability)
	if err != nil {
		res.Error = err.Error()
		return res
	}

	var resumeFrom *fl.SimState
	var onCheckpoint func(*fl.SimState) error
	if s.cfg.Dir != "" && s.cfg.CheckpointEvery > 0 {
		if !fl.Resumable(m) {
			// Stateful methods cannot be checkpoint-resumed bit-identically;
			// refuse the checkpoint cleanly and run the cell without one.
			res.Note = fmt.Sprintf("per-cell checkpointing skipped: %v", fl.ErrStatefulResume)
		} else {
			ck, err := store.Open(filepath.Join(s.cfg.Dir, "cells", c.Fingerprint()))
			if err != nil {
				res.Error = err.Error()
				return res
			}
			cellFP := c.Fingerprint()
			snap, version, err := ck.Resume(cellFP)
			switch {
			case errors.Is(err, store.ErrNoCheckpoint):
				// Fresh cell that starts checkpointing.
			case err != nil:
				res.Error = err.Error()
				return res
			case snap.State.Round > env.Preset.Rounds:
				res.Error = fmt.Sprintf("checkpoint v%d is at round %d, beyond the %d-round budget", version, snap.State.Round, env.Preset.Rounds)
				return res
			default:
				resumeFrom = &snap.State
			}
			onCheckpoint = ck.SaveHook(store.Meta{Seed: env.Seed, Fingerprint: cellFP, Runtime: "sweep"}, nil)
			res.Checkpointed = true
		}
	}

	out, err := experiments.RunBuiltMethodWith(ctx, env, m, func(cfg *fl.SimConfig) {
		cfg.Parallelism = s.simPar
		cfg.DeltaUpdates = c.Delta
		cfg.Quorum = c.Quorum
		cfg.DropoutRate = c.Dropout
		cfg.Straggler = straggler
		cfg.Adversary = adversary
		cfg.Trace = avail
		// One registry across all cells: round/uplink counters accumulate
		// sweep-wide, which is the live view `calibre-sweep watch` polls.
		cfg.Obs = s.cfg.Obs
		// The cell-scoped view stamps the cell key onto the simulator's
		// round and client spans.
		cfg.Recorder = rec
		// Each cell gets its own monitor (detector state is per-
		// federation); the sim folds its alerts into the shared registry.
		cfg.Health = mon
		if onCheckpoint != nil {
			cfg.OnCheckpoint = onCheckpoint
			cfg.CheckpointEvery = s.cfg.CheckpointEvery
			cfg.ResumeFrom = resumeFrom
		}
	})
	if err != nil {
		res.Error = err.Error()
		var pe *fl.PanicError
		if errors.As(err, &pe) {
			res.Panicked = true
		}
		return res
	}
	res.Status = StatusOK
	res.Rounds = len(out.History)
	if n := len(out.History); n > 0 {
		res.FinalLoss = out.History[n-1].MeanLoss
	}
	res.Participants = out.Participants.Summary
	res.Novel = out.Novel.Summary
	return res
}
