package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/store"
)

// TestKillResumeBitIdentical is the crash-recovery acceptance pin: a
// sweep aborted mid-flight (the manifest-level analogue of a SIGKILL —
// completed cells persisted, the in-flight one lost) resumes by skipping
// finished cells, and the final report is byte-identical to an
// uninterrupted run's.
func TestKillResumeBitIdentical(t *testing.T) {
	g := testGrid()

	// Reference: uninterrupted run.
	clean, err := Run(context.Background(), g, Config{Workers: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cleanReport := renderReport(t, clean)

	// Interrupted run: cancel the sweep after 5 completed cells.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	_, err = Run(ctx, g, Config{
		Workers: 2,
		Dir:     dir,
		OnCell: func(CellResult) {
			if done.Add(1) == 5 {
				cancel()
			}
		},
	})
	if err == nil {
		t.Fatal("canceled sweep reported success")
	}
	man, err := loadManifest(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatalf("manifest after kill: %v", err)
	}
	killed := len(man.Cells)
	if killed == 0 || killed >= 12 {
		t.Fatalf("kill left %d cells in the manifest, want a strict subset", killed)
	}

	// Resume: completed cells must be skipped, the rest executed.
	var started atomic.Int64
	resumed, err := Run(context.Background(), g, Config{
		Workers:     2,
		Dir:         dir,
		Resume:      true,
		OnCellStart: func(Cell) { started.Add(1) },
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := int(started.Load()); got != 12-killed {
		t.Fatalf("resume executed %d cells, want %d (12 planned - %d completed)", got, 12-killed, killed)
	}
	restored := 0
	for _, c := range resumed.Cells {
		if c.FromManifest {
			restored++
		}
	}
	if restored != killed {
		t.Fatalf("resume restored %d cells from the manifest, want %d", restored, killed)
	}
	if got := renderReport(t, resumed); got != cleanReport {
		t.Fatal("resumed report is not byte-identical to the uninterrupted run")
	}

	// A second resume is a no-op: everything restored, nothing executed.
	started.Store(0)
	again, err := Run(context.Background(), g, Config{Dir: dir, Resume: true, OnCellStart: func(Cell) { started.Add(1) }})
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if started.Load() != 0 {
		t.Fatalf("fully-complete sweep re-executed %d cells", started.Load())
	}
	if got := renderReport(t, again); got != cleanReport {
		t.Fatal("no-op resume changed the report")
	}
}

// TestCorruptManifestFallsBackToReplan: a torn/garbage manifest must not
// crash a resume — the sweep re-plans the full grid and completes.
func TestCorruptManifestFallsBackToReplan(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1, 2}}
	for _, garbage := range []string{"", "{torn", `{"schema":"calibre/other/v9","cells":{}}`} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		var started atomic.Int64
		res, err := Run(context.Background(), g, Config{Dir: dir, Resume: true, OnCellStart: func(Cell) { started.Add(1) }})
		if err != nil {
			t.Fatalf("resume over corrupt manifest %q: %v", garbage, err)
		}
		if started.Load() != 2 {
			t.Fatalf("corrupt manifest %q: re-plan executed %d cells, want 2", garbage, started.Load())
		}
		found := false
		for _, n := range res.Notes {
			found = found || strings.Contains(n, "re-planning")
		}
		if !found {
			t.Fatalf("re-plan not noted: %v", res.Notes)
		}
	}
}

// TestManifestMismatchRefused: resuming a directory that belongs to a
// different grid must fail loudly, not silently mix results.
func TestManifestMismatchRefused(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	dir := t.TempDir()
	if _, err := Run(context.Background(), g, Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1, 2}}
	_, err := Run(context.Background(), other, Config{Dir: dir, Resume: true})
	if !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("want ErrManifestMismatch, got %v", err)
	}
	if _, err := Load(other, dir); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("Load: want ErrManifestMismatch, got %v", err)
	}
}

// TestFreshRunRefusesExistingManifest: without Resume, an existing
// manifest is a guardrail error — starting over would discard work.
func TestFreshRunRefusesExistingManifest(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	dir := t.TempDir()
	if _, err := Run(context.Background(), g, Config{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), g, Config{Dir: dir}); !errors.Is(err, ErrManifestExists) {
		t.Fatalf("want ErrManifestExists, got %v", err)
	}
}

// TestFailedCellsRetriedOnResume: failed outcomes are not sticky — a
// resume re-executes them.
func TestFailedCellsRetriedOnResume(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1, 2}}
	dir := t.TempDir()
	poison := Cell{Method: "fedavg", Setting: "cifar10-q(2,500)", Scale: experiments.ScaleSmoke, Seed: 2, Straggler: "requeue"}.EnvSeed()
	blowUp := func(s experiments.Setting, sc experiments.Scale, seed int64) (*experiments.Environment, error) {
		if seed == poison {
			panic("flaky infrastructure")
		}
		return experiments.BuildEnvironment(s, sc, seed)
	}
	res, err := Run(context.Background(), g, Config{Dir: dir, buildEnv: blowUp})
	if err != nil {
		t.Fatal(err)
	}
	if len(NewReport(res).Failures) != 1 {
		t.Fatalf("expected 1 failure, got %+v", res.Cells)
	}
	var started atomic.Int64
	res, err = Run(context.Background(), g, Config{Dir: dir, Resume: true, OnCellStart: func(Cell) { started.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != 1 {
		t.Fatalf("resume executed %d cells, want exactly the failed one", started.Load())
	}
	for _, c := range res.Cells {
		if c.Status != StatusOK {
			t.Fatalf("retried cell still failed: %+v", c)
		}
	}
}

// TestPerCellCheckpointResume pins the mid-cell crash path: a cell killed
// mid-federation leaves round snapshots in its per-cell store, and the
// sweep continues that federation from the checkpoint instead of round 0
// — observable as strictly increasing snapshot rounds across the
// kill/resume boundary, with the final summaries bit-identical to an
// uninterrupted in-memory run.
func TestPerCellCheckpointResume(t *testing.T) {
	g := &Grid{Methods: []string{"fedavg-ft"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	cells, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cell := cells[0]
	dir := t.TempDir()

	// Simulate a kill mid-cell: run the cell's federation directly, with
	// the sweep's per-cell store wiring, canceling after two checkpoints.
	settings := experiments.Settings()
	env, err := experiments.BuildEnvironment(settings[cell.Setting], cell.Scale, cell.EnvSeed())
	if err != nil {
		t.Fatal(err)
	}
	m, err := experiments.BuildMethod(env, cell.Method)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := store.Open(filepath.Join(dir, "cells", cell.Fingerprint()))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saves := 0
	_, err = experiments.RunBuiltMethodWith(ctx, env, m, func(cfg *fl.SimConfig) {
		cfg.CheckpointEvery = 1
		cfg.OnCheckpoint = func(st *fl.SimState) error {
			if err := ck.SaveHook(store.Meta{Seed: env.Seed, Fingerprint: cell.Fingerprint(), Runtime: "sweep"}, nil)(st); err != nil {
				return err
			}
			if saves++; saves == 2 {
				cancel()
			}
			return nil
		}
	})
	if err == nil {
		t.Fatal("mid-cell kill did not abort the federation")
	}
	snap, _, err := ck.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap.State.Round != 2 {
		t.Fatalf("kill left checkpoint at round %d, want 2", snap.State.Round)
	}

	// The sweep now runs the cell with checkpointing on: it must resume
	// from round 2, appending snapshots for rounds 3..N only.
	res, err := Run(context.Background(), g, Config{Dir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells[0].Status != StatusOK || !res.Cells[0].Checkpointed {
		t.Fatalf("checkpointed cell outcome: %+v", res.Cells[0])
	}
	entries, err := ck.List()
	if err != nil {
		t.Fatal(err)
	}
	rounds := make([]int, 0, len(entries))
	for _, e := range entries {
		rounds = append(rounds, e.Round)
	}
	want := []int{1, 2, 3, 4} // 2 pre-kill + continuation; a restart would re-write rounds 1,2
	if len(rounds) != len(want) {
		t.Fatalf("snapshot rounds %v, want %v", rounds, want)
	}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("snapshot rounds %v, want %v (cell restarted instead of resuming)", rounds, want)
		}
	}

	// Bit-identity with a run that never checkpointed or crashed.
	clean, err := Run(context.Background(), g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Cells[0].Participants != res.Cells[0].Participants {
		t.Fatalf("resumed cell diverged:\n%+v\nvs\n%+v", res.Cells[0].Participants, clean.Cells[0].Participants)
	}
}

// TestStatefulMethodRefusesCheckpointCleanly: methods carrying
// cross-round state run uncheckpointed with an explanatory note instead
// of erroring or writing unusable snapshots.
func TestStatefulMethodRefusesCheckpointCleanly(t *testing.T) {
	g := &Grid{Methods: []string{"apfl"}, Settings: []string{"cifar10-q(2,500)"}, Seeds: []int64{1}}
	dir := t.TempDir()
	res, err := Run(context.Background(), g, Config{Dir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cells[0]
	if c.Status != StatusOK {
		t.Fatalf("stateful cell failed: %+v", c)
	}
	if c.Checkpointed || !strings.Contains(c.Note, "checkpointing skipped") {
		t.Fatalf("stateful method was not cleanly refused: %+v", c)
	}
	if _, err := os.Stat(filepath.Join(dir, "cells")); !os.IsNotExist(err) {
		t.Fatalf("stateful cell left checkpoint stores behind: %v", err)
	}
}
