package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"calibre/internal/baselines"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/store"
)

// maxCells bounds a grid expansion: a sweep far beyond this is a typo
// (e.g. a pasted seed list), not a workload, and would silently queue
// days of work.
const maxCells = 4096

// Grid is the declarative scenario spec: every axis is a list, and the
// sweep runs the full cross product. Zero-valued optional axes default to
// a single neutral value (delta off, no quorum, no dropout, requeue), so
// the minimal grid is methods × settings × seeds. Grids load from JSON
// via LoadGrid/ParseGrid or are built directly in Go.
type Grid struct {
	// Name labels the sweep in reports; it does not enter the
	// fingerprint, so renaming a sweep does not orphan its manifest.
	Name string `json:"name,omitempty"`
	// Methods are registry method names (calibre.MethodNames).
	Methods []string `json:"methods"`
	// Settings are experiment setting names (dataset + partition), e.g.
	// "cifar10-q(2,500)" or "cifar10-d(0.3,600)".
	Settings []string `json:"settings"`
	// Scales are experiment scale presets; empty defaults to ["smoke"].
	Scales []experiments.Scale `json:"scales,omitempty"`
	// Seeds are replicate indices. The actual RNG seed of a cell is a
	// hash of (setting, scale, seed), not the raw value — see Cell.EnvSeed.
	Seeds []int64 `json:"seeds"`
	// DeltaUpdates toggles the lossless XOR-delta update wire; empty
	// defaults to [false].
	DeltaUpdates []bool `json:"delta_updates,omitempty"`
	// Quorums are K-of-N aggregation floors; empty defaults to [0].
	Quorums []int `json:"quorums,omitempty"`
	// DropoutRates are per-round client dropout probabilities in [0,1);
	// empty defaults to [0].
	DropoutRates []float64 `json:"dropout_rates,omitempty"`
	// Stragglers are straggler policies ("requeue" or "drop"); empty
	// defaults to ["requeue"].
	Stragglers []string `json:"stragglers,omitempty"`
	// Aggregators are aggregator override specs (fl.ParseAggregator:
	// "mean", "median", "trimmed(0.2)", "krum(1)") replacing each method's
	// own aggregator; empty defaults to ["mean"], which — like the spec
	// "mean" itself — leaves each method's own aggregator in place. Specs
	// are canonicalized, so "trimmed(.2)" and "trimmed(0.2)" are the same
	// axis value.
	Aggregators []string `json:"aggregators,omitempty"`
	// Adversaries are attack specs (fl.ParseAdversary: "sign-flip",
	// "noise(0.5)", "collude", "label-flip"; "" means honest); empty
	// defaults to [""].
	Adversaries []string `json:"adversary,omitempty"`
	// AdversaryFracs are compromised-population fractions in [0,1]; empty
	// defaults to [0]. Cells where either the adversary spec is "" or the
	// fraction is 0 collapse to the single honest cell.
	AdversaryFracs []float64 `json:"adversary_frac,omitempty"`
	// Availability are availability-trace specs (fl.ParseTrace:
	// "diurnal(0.1,0.6,8)", "flash(0,0.8,2,2)", "markov(0,0.3,0.5)"; ""
	// means flat DropoutRates govern); empty defaults to [""]. A grid
	// mixing non-"" availability with non-zero dropout_rates is rejected —
	// the two churn models are mutually exclusive.
	Availability []string `json:"availability,omitempty"`
	// Baseline, when set, must be one of Methods; the report computes
	// every method's variance reduction against it.
	Baseline string `json:"baseline,omitempty"`
}

// Cell is one fully specified scenario: a single (method, environment,
// federation-knob) combination the scheduler runs as one unit.
type Cell struct {
	Method    string            `json:"method"`
	Setting   string            `json:"setting"`
	Scale     experiments.Scale `json:"scale"`
	Seed      int64             `json:"seed"`
	Delta     bool              `json:"delta_updates,omitempty"`
	Quorum    int               `json:"quorum,omitempty"`
	Dropout   float64           `json:"dropout,omitempty"`
	Straggler string            `json:"straggler"`
	// Aggregator is the canonical aggregator override spec ("mean",
	// "median", "trimmed(0.2)", "krum(1)").
	Aggregator string `json:"aggregator,omitempty"`
	// Adversary is the canonical attack spec ("" = honest) and AdvFrac the
	// compromised fraction; either being inert zeroes both.
	Adversary string  `json:"adversary,omitempty"`
	AdvFrac   float64 `json:"adversary_frac,omitempty"`
	// Availability is the canonical availability-trace spec ("" = flat
	// Dropout governs).
	Availability string `json:"availability,omitempty"`
}

// Key is the cell's canonical identity: a fixed-order rendering of every
// axis value. It keys the manifest, derives the RNG seed and the
// checkpoint fingerprint, and sorts the report — which is what makes
// sweep output independent of scheduler interleaving.
func (c Cell) Key() string {
	return fmt.Sprintf("method=%s|%s", c.Method, c.scenarioAndEnv())
}

// scenarioAndEnv renders everything but the method.
func (c Cell) scenarioAndEnv() string {
	return fmt.Sprintf("setting=%s|scale=%s|seed=%d|%s", c.Setting, c.Scale, c.Seed, c.knobs())
}

func (c Cell) knobs() string {
	agg := c.Aggregator
	if agg == "" {
		agg = "mean"
	}
	return fmt.Sprintf("delta=%t|quorum=%d|dropout=%g|straggler=%s|agg=%s|adv=%s|advfrac=%g|avail=%s",
		c.Delta, c.Quorum, c.Dropout, c.Straggler, agg, c.Adversary, c.AdvFrac, c.Availability)
}

// EnvKey identifies the federation world the cell runs in: setting, scale
// and replicate seed. The method and the federation knobs are excluded,
// so every method in a scenario trains on the identical generated data
// and partition, which is what keeps method comparisons apples-to-apples.
func (c Cell) EnvKey() string {
	return fmt.Sprintf("setting=%s|scale=%s|seed=%d", c.Setting, c.Scale, c.Seed)
}

// EnvSeed derives the cell's master RNG seed from a hash of EnvKey. A
// hash — rather than the raw seed axis value — decorrelates scenarios
// that share a replicate index and makes the seed a pure function of the
// cell's identity, independent of execution order.
func (c Cell) EnvSeed() int64 {
	h := fnv.New64a()
	h.Write([]byte(c.EnvKey()))
	return int64(h.Sum64() & (1<<63 - 1))
}

// Scenario is the cross-seed grouping key: the cell's identity minus
// method and seed. Cells sharing a Scenario differ only in replicate
// seed and method, so the report aggregates over seeds within it and
// compares methods across it.
func (c Cell) Scenario() string {
	return fmt.Sprintf("setting=%s|scale=%s|%s", c.Setting, c.Scale, c.knobs())
}

// Fingerprint condenses the cell identity for per-cell checkpoint stores,
// using the same digest as snapshot fingerprints.
func (c Cell) Fingerprint() string {
	return store.Fingerprint("sweep-cell", c.Key())
}

// normalized returns a copy with optional axes defaulted.
func (g *Grid) normalized() Grid {
	out := *g
	if len(out.Scales) == 0 {
		out.Scales = []experiments.Scale{experiments.ScaleSmoke}
	}
	if len(out.DeltaUpdates) == 0 {
		out.DeltaUpdates = []bool{false}
	}
	if len(out.Quorums) == 0 {
		out.Quorums = []int{0}
	}
	if len(out.DropoutRates) == 0 {
		out.DropoutRates = []float64{0}
	}
	if len(out.Stragglers) == 0 {
		out.Stragglers = []string{fl.StragglerRequeue.String()}
	}
	if len(out.Aggregators) == 0 {
		out.Aggregators = []string{"mean"}
	}
	if len(out.Adversaries) == 0 {
		out.Adversaries = []string{""}
	}
	if len(out.AdversaryFracs) == 0 {
		out.AdversaryFracs = []float64{0}
	}
	if len(out.Availability) == 0 {
		out.Availability = []string{""}
	}
	return out
}

// canonicalSpecs parses every spec with parse and re-renders it with its
// canonical String, so axis values that spell the same configuration
// differently collapse before duplicate detection and key derivation.
func canonicalSpecs(axis string, specs []string, parse func(string) (string, error)) ([]string, error) {
	out := make([]string, len(specs))
	for i, s := range specs {
		c, err := parse(s)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", axis, err)
		}
		out[i] = c
	}
	return out, nil
}

// hostileAxes canonicalizes the aggregator, adversary and availability
// axes of a normalized grid.
func (g *Grid) hostileAxes() (aggs, advs, avails []string, err error) {
	n := g.normalized()
	aggs, err = canonicalSpecs("aggregators", n.Aggregators, func(s string) (string, error) {
		a, err := fl.ParseAggregator(s)
		if err != nil {
			return "", err
		}
		return fmt.Sprint(a), nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	advs, err = canonicalSpecs("adversary", n.Adversaries, func(s string) (string, error) {
		a, err := fl.ParseAdversary(s)
		if err != nil {
			return "", err
		}
		return a.String(), nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	avails, err = canonicalSpecs("availability", n.Availability, func(s string) (string, error) {
		t, err := fl.ParseTrace(s)
		if err != nil {
			return "", err
		}
		return t.String(), nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return aggs, advs, avails, nil
}

// Validate checks every axis against the registries and presets, so a
// bad grid fails at plan time instead of n cells into a sweep.
func (g *Grid) Validate() error {
	n := g.normalized()
	if len(n.Methods) == 0 {
		return fmt.Errorf("sweep: grid has no methods")
	}
	if len(n.Settings) == 0 {
		return fmt.Errorf("sweep: grid has no settings")
	}
	if len(n.Seeds) == 0 {
		return fmt.Errorf("sweep: grid has no seeds")
	}
	known := make(map[string]bool)
	for _, m := range baselines.MethodNames() {
		known[m] = true
	}
	for _, m := range n.Methods {
		if !known[m] {
			return fmt.Errorf("sweep: unknown method %q (see calibre.MethodNames)", m)
		}
	}
	if n.Baseline != "" {
		found := false
		for _, m := range n.Methods {
			found = found || m == n.Baseline
		}
		if !found {
			return fmt.Errorf("sweep: baseline %q is not one of the grid's methods", n.Baseline)
		}
	}
	settings := experiments.Settings()
	for _, s := range n.Settings {
		if _, ok := settings[s]; !ok {
			return fmt.Errorf("sweep: unknown setting %q (see calibre.SettingNames)", s)
		}
	}
	minPerRound, minClients := -1, -1
	for _, sc := range n.Scales {
		preset, err := experiments.PresetFor(sc)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if minPerRound < 0 || preset.ClientsPerRound < minPerRound {
			minPerRound = preset.ClientsPerRound
		}
		if minClients < 0 || preset.Clients < minClients {
			minClients = preset.Clients
		}
	}
	aggs, advs, avails, err := g.hostileAxes()
	if err != nil {
		return err
	}
	// Krum needs F+3 updates per round so at least one scoreable
	// neighborhood exists; catch impossible pairings at plan time.
	for _, spec := range aggs {
		a, _ := fl.ParseAggregator(spec)
		if k, ok := a.(fl.Krum); ok && minPerRound < k.F+3 {
			return fmt.Errorf("sweep: aggregator %s needs ≥ %d clients per round, smallest scale samples %d", spec, k.F+3, minPerRound)
		}
	}
	for _, f := range n.AdversaryFracs {
		if f < 0 || f > 1 {
			return fmt.Errorf("sweep: adversary_frac must be in [0,1], got %g", f)
		}
	}
	for _, a := range avails {
		if a == "" {
			continue
		}
		for _, d := range n.DropoutRates {
			if d > 0 {
				return fmt.Errorf("sweep: availability traces and non-zero dropout_rates are mutually exclusive")
			}
		}
	}
	// Duplicate axis entries would expand into cells with identical keys
	// that each get scheduled (and then collide in the manifest), so every
	// axis rejects them.
	for _, axis := range []struct {
		name   string
		values []string
	}{
		{"methods", n.Methods},
		{"settings", n.Settings},
		{"stragglers", n.Stragglers},
		{"scales", asStrings(n.Scales)},
		{"delta_updates", asStrings(n.DeltaUpdates)},
		{"quorums", asStrings(n.Quorums)},
		{"dropout_rates", asStrings(n.DropoutRates)},
		{"seeds", asStrings(n.Seeds)},
		{"aggregators", aggs},
		{"adversary", advs},
		{"adversary_frac", asStrings(n.AdversaryFracs)},
		{"availability", avails},
	} {
		if dup := firstDuplicate(axis.values); dup != "" {
			return fmt.Errorf("sweep: duplicate %s entry %v", axis.name, dup)
		}
	}
	for _, q := range n.Quorums {
		if q < 0 {
			return fmt.Errorf("sweep: quorum must be ≥0, got %d", q)
		}
		if q > minPerRound || q > minClients {
			return fmt.Errorf("sweep: quorum %d exceeds the smallest scale's clients-per-round (%d) or population (%d)", q, minPerRound, minClients)
		}
	}
	for _, d := range n.DropoutRates {
		if d < 0 || d >= 1 {
			return fmt.Errorf("sweep: dropout rate must be in [0,1), got %g", d)
		}
	}
	for _, s := range n.Stragglers {
		if _, err := fl.ParseStragglerPolicy(s); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	total := len(n.Methods) * len(n.Settings) * len(n.Scales) * len(n.Seeds) *
		len(n.DeltaUpdates) * len(n.Quorums) * len(n.DropoutRates) * len(n.Stragglers) *
		len(aggs) * len(advs) * len(n.AdversaryFracs) * len(avails)
	if total > maxCells {
		return fmt.Errorf("sweep: grid expands to %d cells, above the %d-cell cap", total, maxCells)
	}
	return nil
}

// Expand validates the grid and returns its cells in canonical axis order
// (method, setting, scale, seed, delta, quorum, dropout, straggler,
// aggregator, adversary, adversary-frac, availability — outermost first).
// An inert adversary pairing (empty spec or zero fraction) canonicalizes
// to the honest cell, and the resulting duplicates collapse, so the
// expansion is a pure, duplicate-free function of the grid.
func (g *Grid) Expand() ([]Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.normalized()
	aggs, advs, avails, err := g.hostileAxes()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	seen := make(map[string]bool)
	for _, m := range n.Methods {
		for _, s := range n.Settings {
			for _, sc := range n.Scales {
				for _, seed := range n.Seeds {
					for _, delta := range n.DeltaUpdates {
						for _, q := range n.Quorums {
							for _, d := range n.DropoutRates {
								for _, st := range n.Stragglers {
									for _, agg := range aggs {
										for _, adv := range advs {
											for _, frac := range n.AdversaryFracs {
												for _, avail := range avails {
													c := Cell{
														Method: m, Setting: s, Scale: sc, Seed: seed,
														Delta: delta, Quorum: q, Dropout: d, Straggler: st,
														Aggregator: agg, Adversary: adv, AdvFrac: frac,
														Availability: avail,
													}
													if c.Adversary == "" || c.AdvFrac == 0 {
														c.Adversary, c.AdvFrac = "", 0
													}
													if seen[c.Key()] {
														continue
													}
													seen[c.Key()] = true
													cells = append(cells, c)
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Fingerprint digests the expanded cell keys — the grid's full semantic
// identity. Manifests record it; resuming under a changed grid fails with
// ErrManifestMismatch. Name and Baseline are cosmetic/report-only and
// deliberately excluded.
func (g *Grid) Fingerprint() (string, error) {
	cells, err := g.Expand()
	if err != nil {
		return "", err
	}
	keys := make([]string, 0, len(cells)+1)
	keys = append(keys, "sweep-grid")
	for _, c := range cells {
		keys = append(keys, c.Key())
	}
	return store.Fingerprint(keys...), nil
}

// ParseGrid decodes a grid from JSON, rejecting unknown fields and
// trailing data so a typo'd axis name or a botched merge of two grid
// objects cannot silently shrink a sweep.
func ParseGrid(data []byte) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: parse grid: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: parse grid: trailing data after the grid object")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadGrid reads and parses a grid JSON file.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: read grid: %w", err)
	}
	g, err := ParseGrid(data)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return g, nil
}

func firstDuplicate(values []string) string {
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return v
		}
		seen[v] = true
	}
	return ""
}

// asStrings renders an axis's values canonically for duplicate detection.
func asStrings[T any](values []T) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = fmt.Sprint(v)
	}
	return out
}
