package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"calibre/internal/baselines"
	"calibre/internal/experiments"
	"calibre/internal/fl"
	"calibre/internal/store"
)

// maxCells bounds a grid expansion: a sweep far beyond this is a typo
// (e.g. a pasted seed list), not a workload, and would silently queue
// days of work.
const maxCells = 4096

// Grid is the declarative scenario spec: every axis is a list, and the
// sweep runs the full cross product. Zero-valued optional axes default to
// a single neutral value (delta off, no quorum, no dropout, requeue), so
// the minimal grid is methods × settings × seeds. Grids load from JSON
// via LoadGrid/ParseGrid or are built directly in Go.
type Grid struct {
	// Name labels the sweep in reports; it does not enter the
	// fingerprint, so renaming a sweep does not orphan its manifest.
	Name string `json:"name,omitempty"`
	// Methods are registry method names (calibre.MethodNames).
	Methods []string `json:"methods"`
	// Settings are experiment setting names (dataset + partition), e.g.
	// "cifar10-q(2,500)" or "cifar10-d(0.3,600)".
	Settings []string `json:"settings"`
	// Scales are experiment scale presets; empty defaults to ["smoke"].
	Scales []experiments.Scale `json:"scales,omitempty"`
	// Seeds are replicate indices. The actual RNG seed of a cell is a
	// hash of (setting, scale, seed), not the raw value — see Cell.EnvSeed.
	Seeds []int64 `json:"seeds"`
	// DeltaUpdates toggles the lossless XOR-delta update wire; empty
	// defaults to [false].
	DeltaUpdates []bool `json:"delta_updates,omitempty"`
	// Quorums are K-of-N aggregation floors; empty defaults to [0].
	Quorums []int `json:"quorums,omitempty"`
	// DropoutRates are per-round client dropout probabilities in [0,1);
	// empty defaults to [0].
	DropoutRates []float64 `json:"dropout_rates,omitempty"`
	// Stragglers are straggler policies ("requeue" or "drop"); empty
	// defaults to ["requeue"].
	Stragglers []string `json:"stragglers,omitempty"`
	// Baseline, when set, must be one of Methods; the report computes
	// every method's variance reduction against it.
	Baseline string `json:"baseline,omitempty"`
}

// Cell is one fully specified scenario: a single (method, environment,
// federation-knob) combination the scheduler runs as one unit.
type Cell struct {
	Method    string            `json:"method"`
	Setting   string            `json:"setting"`
	Scale     experiments.Scale `json:"scale"`
	Seed      int64             `json:"seed"`
	Delta     bool              `json:"delta_updates,omitempty"`
	Quorum    int               `json:"quorum,omitempty"`
	Dropout   float64           `json:"dropout,omitempty"`
	Straggler string            `json:"straggler"`
}

// Key is the cell's canonical identity: a fixed-order rendering of every
// axis value. It keys the manifest, derives the RNG seed and the
// checkpoint fingerprint, and sorts the report — which is what makes
// sweep output independent of scheduler interleaving.
func (c Cell) Key() string {
	return fmt.Sprintf("method=%s|%s", c.Method, c.scenarioAndEnv())
}

// scenarioAndEnv renders everything but the method.
func (c Cell) scenarioAndEnv() string {
	return fmt.Sprintf("setting=%s|scale=%s|seed=%d|%s", c.Setting, c.Scale, c.Seed, c.knobs())
}

func (c Cell) knobs() string {
	return fmt.Sprintf("delta=%t|quorum=%d|dropout=%g|straggler=%s", c.Delta, c.Quorum, c.Dropout, c.Straggler)
}

// EnvKey identifies the federation world the cell runs in: setting, scale
// and replicate seed. The method and the federation knobs are excluded,
// so every method in a scenario trains on the identical generated data
// and partition, which is what keeps method comparisons apples-to-apples.
func (c Cell) EnvKey() string {
	return fmt.Sprintf("setting=%s|scale=%s|seed=%d", c.Setting, c.Scale, c.Seed)
}

// EnvSeed derives the cell's master RNG seed from a hash of EnvKey. A
// hash — rather than the raw seed axis value — decorrelates scenarios
// that share a replicate index and makes the seed a pure function of the
// cell's identity, independent of execution order.
func (c Cell) EnvSeed() int64 {
	h := fnv.New64a()
	h.Write([]byte(c.EnvKey()))
	return int64(h.Sum64() & (1<<63 - 1))
}

// Scenario is the cross-seed grouping key: the cell's identity minus
// method and seed. Cells sharing a Scenario differ only in replicate
// seed and method, so the report aggregates over seeds within it and
// compares methods across it.
func (c Cell) Scenario() string {
	return fmt.Sprintf("setting=%s|scale=%s|%s", c.Setting, c.Scale, c.knobs())
}

// Fingerprint condenses the cell identity for per-cell checkpoint stores,
// using the same digest as snapshot fingerprints.
func (c Cell) Fingerprint() string {
	return store.Fingerprint("sweep-cell", c.Key())
}

// normalized returns a copy with optional axes defaulted.
func (g *Grid) normalized() Grid {
	out := *g
	if len(out.Scales) == 0 {
		out.Scales = []experiments.Scale{experiments.ScaleSmoke}
	}
	if len(out.DeltaUpdates) == 0 {
		out.DeltaUpdates = []bool{false}
	}
	if len(out.Quorums) == 0 {
		out.Quorums = []int{0}
	}
	if len(out.DropoutRates) == 0 {
		out.DropoutRates = []float64{0}
	}
	if len(out.Stragglers) == 0 {
		out.Stragglers = []string{fl.StragglerRequeue.String()}
	}
	return out
}

// Validate checks every axis against the registries and presets, so a
// bad grid fails at plan time instead of n cells into a sweep.
func (g *Grid) Validate() error {
	n := g.normalized()
	if len(n.Methods) == 0 {
		return fmt.Errorf("sweep: grid has no methods")
	}
	if len(n.Settings) == 0 {
		return fmt.Errorf("sweep: grid has no settings")
	}
	if len(n.Seeds) == 0 {
		return fmt.Errorf("sweep: grid has no seeds")
	}
	known := make(map[string]bool)
	for _, m := range baselines.MethodNames() {
		known[m] = true
	}
	for _, m := range n.Methods {
		if !known[m] {
			return fmt.Errorf("sweep: unknown method %q (see calibre.MethodNames)", m)
		}
	}
	if n.Baseline != "" {
		found := false
		for _, m := range n.Methods {
			found = found || m == n.Baseline
		}
		if !found {
			return fmt.Errorf("sweep: baseline %q is not one of the grid's methods", n.Baseline)
		}
	}
	settings := experiments.Settings()
	for _, s := range n.Settings {
		if _, ok := settings[s]; !ok {
			return fmt.Errorf("sweep: unknown setting %q (see calibre.SettingNames)", s)
		}
	}
	minPerRound, minClients := -1, -1
	for _, sc := range n.Scales {
		preset, err := experiments.PresetFor(sc)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if minPerRound < 0 || preset.ClientsPerRound < minPerRound {
			minPerRound = preset.ClientsPerRound
		}
		if minClients < 0 || preset.Clients < minClients {
			minClients = preset.Clients
		}
	}
	// Duplicate axis entries would expand into cells with identical keys
	// that each get scheduled (and then collide in the manifest), so every
	// axis rejects them.
	for _, axis := range []struct {
		name   string
		values []string
	}{
		{"methods", n.Methods},
		{"settings", n.Settings},
		{"stragglers", n.Stragglers},
		{"scales", asStrings(n.Scales)},
		{"delta_updates", asStrings(n.DeltaUpdates)},
		{"quorums", asStrings(n.Quorums)},
		{"dropout_rates", asStrings(n.DropoutRates)},
		{"seeds", asStrings(n.Seeds)},
	} {
		if dup := firstDuplicate(axis.values); dup != "" {
			return fmt.Errorf("sweep: duplicate %s entry %v", axis.name, dup)
		}
	}
	for _, q := range n.Quorums {
		if q < 0 {
			return fmt.Errorf("sweep: quorum must be ≥0, got %d", q)
		}
		if q > minPerRound || q > minClients {
			return fmt.Errorf("sweep: quorum %d exceeds the smallest scale's clients-per-round (%d) or population (%d)", q, minPerRound, minClients)
		}
	}
	for _, d := range n.DropoutRates {
		if d < 0 || d >= 1 {
			return fmt.Errorf("sweep: dropout rate must be in [0,1), got %g", d)
		}
	}
	for _, s := range n.Stragglers {
		if _, err := fl.ParseStragglerPolicy(s); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	total := len(n.Methods) * len(n.Settings) * len(n.Scales) * len(n.Seeds) *
		len(n.DeltaUpdates) * len(n.Quorums) * len(n.DropoutRates) * len(n.Stragglers)
	if total > maxCells {
		return fmt.Errorf("sweep: grid expands to %d cells, above the %d-cell cap", total, maxCells)
	}
	return nil
}

// Expand validates the grid and returns its cells in canonical axis order
// (method, setting, scale, seed, delta, quorum, dropout, straggler —
// outermost first). The expansion is a pure function of the grid.
func (g *Grid) Expand() ([]Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.normalized()
	var cells []Cell
	for _, m := range n.Methods {
		for _, s := range n.Settings {
			for _, sc := range n.Scales {
				for _, seed := range n.Seeds {
					for _, delta := range n.DeltaUpdates {
						for _, q := range n.Quorums {
							for _, d := range n.DropoutRates {
								for _, st := range n.Stragglers {
									cells = append(cells, Cell{
										Method: m, Setting: s, Scale: sc, Seed: seed,
										Delta: delta, Quorum: q, Dropout: d, Straggler: st,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// Fingerprint digests the expanded cell keys — the grid's full semantic
// identity. Manifests record it; resuming under a changed grid fails with
// ErrManifestMismatch. Name and Baseline are cosmetic/report-only and
// deliberately excluded.
func (g *Grid) Fingerprint() (string, error) {
	cells, err := g.Expand()
	if err != nil {
		return "", err
	}
	keys := make([]string, 0, len(cells)+1)
	keys = append(keys, "sweep-grid")
	for _, c := range cells {
		keys = append(keys, c.Key())
	}
	return store.Fingerprint(keys...), nil
}

// ParseGrid decodes a grid from JSON, rejecting unknown fields and
// trailing data so a typo'd axis name or a botched merge of two grid
// objects cannot silently shrink a sweep.
func ParseGrid(data []byte) (*Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: parse grid: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("sweep: parse grid: trailing data after the grid object")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadGrid reads and parses a grid JSON file.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: read grid: %w", err)
	}
	g, err := ParseGrid(data)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return g, nil
}

func firstDuplicate(values []string) string {
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return v
		}
		seen[v] = true
	}
	return ""
}

// asStrings renders an axis's values canonically for duplicate detection.
func asStrings[T any](values []T) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = fmt.Sprint(v)
	}
	return out
}
