package flnet

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
)

// Wire preamble: before any gob traffic, each side of a fresh connection
// writes an 8-byte preamble — 4 magic bytes, a little-endian uint16
// protocol version and 2 reserved zero bytes — and validates the peer's.
// Both sides write first, then read, so the exchange cannot deadlock. An
// incompatible peer (wrong build, or something that is not a calibre
// process at all) is detected here and rejected with ErrProtocolMismatch
// instead of surfacing as an inscrutable gob decode failure mid-handshake.
const (
	// ProtocolMagic identifies the calibre federation wire protocol.
	ProtocolMagic = "CALF"
	// ProtocolVersion is bumped on any incompatible wire change (envelope
	// layout, handshake sequence, codec switch).
	//
	// Version history:
	//
	//	1  gob envelopes with dense []float64 payloads everywhere
	//	2  typed param.Vector payloads; train-result updates may carry a
	//	   lossless XOR-delta against the round's global instead of dense
	//	   params, with the server advertising its preference in join-ack
	//	   (Envelope.Updates); dense remains legal at any time (fallback
	//	   for incompressible updates)
	ProtocolVersion = 2

	preambleSize = 8
)

// ErrProtocolMismatch is returned when the peer does not speak this
// build's wire protocol: wrong magic (not a calibre endpoint) or a
// different protocol version.
var ErrProtocolMismatch = errors.New("flnet: incompatible wire protocol")

// writePreamble sends this build's preamble on a fresh connection.
func writePreamble(raw net.Conn, timeout time.Duration) error {
	var b [preambleSize]byte
	copy(b[:4], ProtocolMagic)
	binary.LittleEndian.PutUint16(b[4:6], ProtocolVersion)
	if timeout > 0 {
		if err := raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("flnet: set preamble write deadline: %w", err)
		}
	}
	if _, err := raw.Write(b[:]); err != nil {
		return fmt.Errorf("flnet: send preamble: %w", err)
	}
	return nil
}

// readPreamble reads and validates the peer's preamble.
func readPreamble(raw net.Conn, timeout time.Duration) error {
	var b [preambleSize]byte
	if timeout > 0 {
		if err := raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("flnet: set preamble read deadline: %w", err)
		}
	}
	if _, err := io.ReadFull(raw, b[:]); err != nil {
		return fmt.Errorf("flnet: read preamble: %w", err)
	}
	if string(b[:4]) != ProtocolMagic {
		return fmt.Errorf("%w: peer sent magic %q, want %q", ErrProtocolMismatch, b[:4], ProtocolMagic)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != ProtocolVersion {
		return fmt.Errorf("%w: peer speaks protocol version %d, this build speaks %d", ErrProtocolMismatch, v, ProtocolVersion)
	}
	return nil
}

// MsgType discriminates protocol envelopes.
type MsgType int

// Protocol message types.
const (
	MsgJoin MsgType = iota + 1
	MsgJoinAck
	MsgTrain
	MsgTrainResult
	MsgPersonalize
	MsgPersonalizeResult
	MsgShutdown
	MsgError
)

// String renders the message type for logs and errors.
func (m MsgType) String() string {
	switch m {
	case MsgJoin:
		return "join"
	case MsgJoinAck:
		return "join-ack"
	case MsgTrain:
		return "train"
	case MsgTrainResult:
		return "train-result"
	case MsgPersonalize:
		return "personalize"
	case MsgPersonalizeResult:
		return "personalize-result"
	case MsgShutdown:
		return "shutdown"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("msgtype(%d)", int(m))
	}
}

// UpdateWire selects how clients ship their train-result payloads: the
// server advertises its preference in the join-ack envelope, and clients
// comply unless forced dense (ClientConfig.DenseUpdates). Whatever the
// advertisement, the server accepts both forms on every train-result —
// delta encoding is an optimization, never a correctness requirement.
type UpdateWire int

const (
	// WireDelta (the default) ships updates as lossless XOR-deltas against
	// the round's global vector, falling back to dense per update when the
	// delta would not be smaller.
	WireDelta UpdateWire = iota
	// WireDense ships full dense parameter vectors, protocol v1 style.
	WireDense
)

// String renders the wire mode for logs and flags.
func (w UpdateWire) String() string {
	switch w {
	case WireDelta:
		return "delta"
	case WireDense:
		return "dense"
	default:
		return fmt.Sprintf("updatewire(%d)", int(w))
	}
}

// ParseUpdateWire parses the CLI spelling of an update wire mode.
func ParseUpdateWire(s string) (UpdateWire, error) {
	switch s {
	case "delta", "":
		return WireDelta, nil
	case "dense":
		return WireDense, nil
	default:
		return 0, fmt.Errorf("flnet: unknown update wire mode %q (want delta or dense)", s)
	}
}

// Envelope is the single wire message; fields are populated according to
// Type. gob's self-describing stream keeps the framing simple.
type Envelope struct {
	Type     MsgType
	ClientID int
	Round    int
	Global   param.Vector `json:",omitempty"`
	Update   *fl.Update   `json:",omitempty"`
	Accuracy float64
	Err      string
	// Updates is the server's advertised update encoding, meaningful on
	// join-ack only.
	Updates UpdateWire
}

// conn wraps a net.Conn with gob codecs and deadline management.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// wmu serializes writers: sends are normally funneled through one
	// goroutine per connection, but the join handshake and the final
	// shutdown broadcast can overlap on a freshly admitted client, and
	// gob encoders are not goroutine-safe.
	wmu sync.Mutex
	// ioTimeout bounds each send/receive; zero disables deadlines.
	ioTimeout time.Duration
}

func newConn(raw net.Conn, ioTimeout time.Duration) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw), ioTimeout: ioTimeout}
}

func (c *conn) send(e *Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.ioTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return fmt.Errorf("flnet: set write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("flnet: send %s: %w", e.Type, err)
	}
	return nil
}

func (c *conn) recv() (*Envelope, error) {
	if c.ioTimeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return nil, fmt.Errorf("flnet: set read deadline: %w", err)
		}
	}
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("flnet: recv: %w", err)
	}
	return &e, nil
}

func (c *conn) close() error { return c.raw.Close() }
