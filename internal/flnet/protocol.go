package flnet

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"calibre/internal/fl"
)

// MsgType discriminates protocol envelopes.
type MsgType int

// Protocol message types.
const (
	MsgJoin MsgType = iota + 1
	MsgJoinAck
	MsgTrain
	MsgTrainResult
	MsgPersonalize
	MsgPersonalizeResult
	MsgShutdown
	MsgError
)

// String renders the message type for logs and errors.
func (m MsgType) String() string {
	switch m {
	case MsgJoin:
		return "join"
	case MsgJoinAck:
		return "join-ack"
	case MsgTrain:
		return "train"
	case MsgTrainResult:
		return "train-result"
	case MsgPersonalize:
		return "personalize"
	case MsgPersonalizeResult:
		return "personalize-result"
	case MsgShutdown:
		return "shutdown"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("msgtype(%d)", int(m))
	}
}

// Envelope is the single wire message; fields are populated according to
// Type. gob's self-describing stream keeps the framing simple.
type Envelope struct {
	Type     MsgType
	ClientID int
	Round    int
	Global   []float64  `json:",omitempty"`
	Update   *fl.Update `json:",omitempty"`
	Accuracy float64
	Err      string
}

// conn wraps a net.Conn with gob codecs and deadline management.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// wmu serializes writers: sends are normally funneled through one
	// goroutine per connection, but the join handshake and the final
	// shutdown broadcast can overlap on a freshly admitted client, and
	// gob encoders are not goroutine-safe.
	wmu sync.Mutex
	// ioTimeout bounds each send/receive; zero disables deadlines.
	ioTimeout time.Duration
}

func newConn(raw net.Conn, ioTimeout time.Duration) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw), ioTimeout: ioTimeout}
}

func (c *conn) send(e *Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.ioTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return fmt.Errorf("flnet: set write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("flnet: send %s: %w", e.Type, err)
	}
	return nil
}

func (c *conn) recv() (*Envelope, error) {
	if c.ioTimeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			return nil, fmt.Errorf("flnet: set read deadline: %w", err)
		}
	}
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("flnet: recv: %w", err)
	}
	return &e, nil
}

func (c *conn) close() error { return c.raw.Close() }
