package flnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// ClientConfig configures a federated client process.
type ClientConfig struct {
	// Addr is the server address to dial.
	Addr string
	// ClientID must be unique across the federation.
	ClientID int
	// Data is the client's local partition.
	Data *partition.Client
	// Trainer and Personalizer implement the method's client side.
	Trainer      fl.Trainer
	Personalizer fl.Personalizer
	// Seed derives the client's deterministic RNG streams.
	Seed int64
	// IOTimeout bounds each network operation (default 2 minutes).
	IOTimeout time.Duration
	// DialTimeout bounds the initial connection (default 10 seconds).
	DialTimeout time.Duration
	// SimLatency, when non-nil, sleeps for the returned duration before a
	// round's local training starts — a fault-injection knob that turns
	// this client into a controlled straggler for exercising the server's
	// quorum/deadline/straggler handling in tests, demos and chaos runs.
	// Non-positive durations mean no delay for that round.
	SimLatency func(round int) time.Duration
	// DenseUpdates forces full dense parameter vectors on the uplink even
	// when the server advertises delta encoding — an escape hatch for
	// debugging and for measuring the compression against raw traffic.
	DenseUpdates bool
}

func (c *ClientConfig) validate() error {
	switch {
	case c.Addr == "":
		return errors.New("flnet: client missing server address")
	case c.Data == nil:
		return errors.New("flnet: client missing local data")
	case c.Trainer == nil:
		return errors.New("flnet: client missing trainer")
	case c.Personalizer == nil:
		return errors.New("flnet: client missing personalizer")
	}
	return nil
}

// wireUpdate chooses the uplink form of one train result. Under delta
// encoding it diffs the dense params against the round's global (the
// reference both sides hold) and ships the compressed form — unless the
// delta would not actually be smaller (fully random updates XOR to
// high-entropy words that varint-encode above 8 bytes), in which case the
// dense form goes out: compression is an optimization, and the v2
// protocol accepts either on every train-result. The trainer's update is
// never mutated; a delta send uses a shallow copy.
//
// scratch, when non-nil, receives the encoding (reusing its Bits buffer
// across rounds). Safe because conn.send gob-serializes the envelope before
// returning, so the buffer is free again by the next round's encode.
func wireUpdate(u *fl.Update, global param.Vector, useDelta bool, scratch *param.Delta) *fl.Update {
	if !useDelta || u.Params == nil || u.Delta != nil {
		return u
	}
	if scratch == nil {
		scratch = &param.Delta{}
	}
	if err := param.DiffInto(scratch, global, u.Params); err != nil || scratch.Size() >= scratch.DenseSize() {
		return u
	}
	wu := *u
	wu.Params = nil
	wu.Delta = scratch
	return &wu
}

// RunClient joins the federation and serves train/personalize requests
// until the server sends shutdown or ctx is canceled. It returns nil on a
// clean shutdown.
func RunClient(ctx context.Context, cfg ClientConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	d := net.Dialer{Timeout: cfg.DialTimeout}
	raw, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return fmt.Errorf("flnet: dial %s: %w", cfg.Addr, err)
	}
	// Preamble exchange before any gob traffic: a server from an
	// incompatible build yields a clean typed ErrProtocolMismatch here
	// rather than a gob decode failure later.
	if err := writePreamble(raw, cfg.IOTimeout); err != nil {
		_ = raw.Close()
		return err
	}
	if err := readPreamble(raw, cfg.IOTimeout); err != nil {
		_ = raw.Close()
		return fmt.Errorf("handshake with %s: %w", cfg.Addr, err)
	}
	c := newConn(raw, cfg.IOTimeout)
	defer c.close()

	if err := c.send(&Envelope{Type: MsgJoin, ClientID: cfg.ClientID}); err != nil {
		return err
	}
	ack, err := c.recv()
	if err != nil {
		return err
	}
	if ack.Type == MsgError {
		return fmt.Errorf("flnet: join rejected: %s", ack.Err)
	}
	if ack.Type != MsgJoinAck {
		return fmt.Errorf("flnet: expected join-ack, got %s", ack.Type)
	}
	// The server advertises its preferred update encoding at join-ack;
	// delta compression additionally needs the trainer to produce dense
	// params to diff (all in-tree trainers do).
	useDelta := ack.Updates == WireDelta && !cfg.DenseUpdates
	encScratch := &param.Delta{} // uplink encoder buffer, reused every round

	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("flnet: client %d: %w", cfg.ClientID, err)
		}
		env, err := c.recv()
		if err != nil {
			return err
		}
		switch env.Type {
		case MsgTrain:
			if cfg.SimLatency != nil {
				if d := cfg.SimLatency(env.Round); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return fmt.Errorf("flnet: client %d: %w", cfg.ClientID, ctx.Err())
					}
				}
			}
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(env.Round)*1_000_003 ^ int64(cfg.ClientID)*7_777_777))
			update, terr := cfg.Trainer.Train(ctx, rng, cfg.Data, env.Global, env.Round)
			if terr != nil {
				_ = c.send(&Envelope{Type: MsgError, ClientID: cfg.ClientID, Err: terr.Error()})
				return fmt.Errorf("flnet: client %d train: %w", cfg.ClientID, terr)
			}
			if err := c.send(&Envelope{Type: MsgTrainResult, ClientID: cfg.ClientID, Round: env.Round, Update: wireUpdate(update, env.Global, useDelta, encScratch)}); err != nil {
				return err
			}
		case MsgPersonalize:
			rng := rand.New(rand.NewSource(cfg.Seed ^ (1 << 20) ^ int64(cfg.ClientID)*7_777_777))
			acc, perr := cfg.Personalizer.Personalize(ctx, rng, cfg.Data, env.Global)
			if perr != nil {
				_ = c.send(&Envelope{Type: MsgError, ClientID: cfg.ClientID, Err: perr.Error()})
				return fmt.Errorf("flnet: client %d personalize: %w", cfg.ClientID, perr)
			}
			if err := c.send(&Envelope{Type: MsgPersonalizeResult, ClientID: cfg.ClientID, Accuracy: acc}); err != nil {
				return err
			}
		case MsgShutdown:
			return nil
		case MsgError:
			return fmt.Errorf("flnet: server error: %s", env.Err)
		default:
			return fmt.Errorf("flnet: unexpected message %s", env.Type)
		}
	}
}
