package flnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/store"
)

// seededTrainer makes updates depend on the round RNG and the round
// number, so any drift in the resumed server's replayed RNG or round
// counter shows up in the final bits.
type seededTrainer struct{}

func (seededTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + rng.NormFloat64()*0.1 + float64(round+1)*0.001
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(), TrainLoss: rng.Float64()}, nil
}

// runCkptFederation drives one complete federation with in-process clients
// and returns the server result; client errors are returned for the
// caller to judge (a killed server legitimately fails its clients).
func runCkptFederation(t *testing.T, ctx context.Context, cfg ServerConfig, clients []*partition.Client) (*Result, error, []error) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	cfg.Aggregator = fl.WeightedAverage{}
	cfg.InitGlobal = func(rng *rand.Rand) (param.Vector, error) {
		out := make([]float64, 5)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out, nil
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 20 * time.Second
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ch := startServer(ctx, srv)
	var wg sync.WaitGroup
	cerrs := make([]error, len(clients))
	for i := range clients {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cerrs[id] = RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: seededTrainer{}, Personalizer: idPersonalizer{},
				Seed: cfg.Seed, IOTimeout: 20 * time.Second,
			})
		}(i)
	}
	out := <-ch
	wg.Wait()
	return out.res, out.err, cerrs
}

// TestServerKillResumeBitIdentical is the tentpole durability gate for the
// networked runtime: a federation checkpointed every round, killed after
// round 1 (the server process and every connection die), then restarted
// from the on-disk snapshot with rejoining clients, must produce the
// byte-identical global model, RoundStats history and accuracies of a
// federation that was never interrupted.
func TestServerKillResumeBitIdentical(t *testing.T) {
	const n, total = 3, 4
	base := ServerConfig{NumClients: n, Rounds: total, ClientsPerRound: 2, Seed: 11}

	// Reference: uninterrupted run.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ref, err, cerrs := runCkptFederation(t, ctx, base, netClients(t, n))
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	for id, cerr := range cerrs {
		if cerr != nil {
			t.Fatalf("reference client %d: %v", id, cerr)
		}
	}

	// Phase 1: same config, checkpointing every round into a real store,
	// killed via context cancellation right after round 1 completes (its
	// checkpoint is guaranteed on disk: OnCheckpoint fires before OnRound).
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	fp := store.Fingerprint("flnet-test", "seeded", "11")
	killCtx, kill := context.WithTimeout(context.Background(), 60*time.Second)
	defer kill()
	cfgA := base
	cfgA.CheckpointEvery = 1
	cfgA.OnCheckpoint = func(state *fl.SimState) error {
		_, err := st.Save(&store.Snapshot{
			Meta:  store.Meta{Seed: base.Seed, Fingerprint: fp, Runtime: "server"},
			State: *state,
		})
		return err
	}
	cfgA.OnRound = func(stats fl.RoundStats) {
		if stats.Round == 1 {
			kill()
		}
	}
	_, err, _ = runCkptFederation(t, killCtx, cfgA, netClients(t, n))
	if err == nil {
		t.Fatal("killed federation reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed federation err = %v, want context.Canceled", err)
	}

	// Phase 2: a fresh server process resumes from disk; clients redial.
	snap, version, err := st.Resume(fp)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if snap.State.Round != 2 {
		t.Fatalf("latest snapshot v%d at round %d, want round 2", version, snap.State.Round)
	}
	cfgB := base
	cfgB.ResumeFrom = &snap.State
	res, err, cerrs := runCkptFederation(t, ctx, cfgB, netClients(t, n))
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	for id, cerr := range cerrs {
		if cerr != nil {
			t.Fatalf("resumed client %d: %v", id, cerr)
		}
	}

	if len(res.Global) != len(ref.Global) {
		t.Fatalf("global lengths: %d vs %d", len(res.Global), len(ref.Global))
	}
	for i := range res.Global {
		if math.Float64bits(res.Global[i]) != math.Float64bits(ref.Global[i]) {
			t.Fatalf("global[%d] differs after kill+resume: %x vs %x", i, res.Global[i], ref.Global[i])
		}
	}
	if !reflect.DeepEqual(res.History, ref.History) {
		t.Fatalf("history differs after kill+resume:\n%+v\nvs\n%+v", res.History, ref.History)
	}
	if !reflect.DeepEqual(res.Accuracies, ref.Accuracies) {
		t.Fatalf("accuracies differ: %v vs %v", res.Accuracies, ref.Accuracies)
	}
}

// TestServerCheckpointErrorAborts mirrors the simulator contract on the
// networked runtime.
func TestServerCheckpointErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cfg := ServerConfig{NumClients: 1, Rounds: 2, ClientsPerRound: 1, Seed: 5,
		OnCheckpoint: func(*fl.SimState) error { return boom }}
	_, err, _ := runCkptFederation(t, ctx, cfg, netClients(t, 1))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}

// TestServerConfigValidatesResumeState: malformed resume states are
// rejected at construction.
func TestServerConfigValidatesResumeState(t *testing.T) {
	cfg := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 2, ClientsPerRound: 1, Seed: 5,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return []float64{0}, nil },
		ResumeFrom: &fl.SimState{Round: 5, Global: []float64{0}},
	}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("resume state beyond the round budget accepted")
	}
	cfg.ResumeFrom = &fl.SimState{Round: 1, Global: []float64{0}, History: make([]fl.RoundStats, 1)}
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("resume state missing eligible counts accepted")
	}
}

// TestServerRefusesStatefulAggregatorResume: an aggregator carrying
// cross-round server state (SCAFFOLD's control variate) cannot be
// restored from a snapshot, so configuring it with ResumeFrom must fail
// with the typed fl.ErrStatefulResume.
func TestServerRefusesStatefulAggregatorResume(t *testing.T) {
	cfg := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 2, ClientsPerRound: 1, Seed: 5,
		Aggregator: &fl.ScaffoldAggregator{ServerLR: 1},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return []float64{0}, nil },
		ResumeFrom: &fl.SimState{
			Round:          1,
			Global:         []float64{0},
			History:        []fl.RoundStats{{Round: 0, Participants: []int{0}}},
			EligibleCounts: []int{1},
		},
	}
	if _, err := NewServer(cfg); !errors.Is(err, fl.ErrStatefulResume) {
		t.Fatalf("err = %v, want fl.ErrStatefulResume", err)
	}
	// Without resume, the same aggregator may checkpoint freely.
	cfg.ResumeFrom = nil
	cfg.OnCheckpoint = func(*fl.SimState) error { return nil }
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("checkpointing without resume refused: %v", err)
	}
	srv.listener.Close()
}
