package flnet

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"calibre/internal/baselines"
	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/ssl"
)

type addOneTrainer struct{}

func (addOneTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + 1
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len()}, nil
}

// gatedTrainer blocks each local update until release is closed, letting
// tests hold a federation mid-round.
type gatedTrainer struct{ release chan struct{} }

func (g gatedTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	select {
	case <-g.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return addOneTrainer{}.Train(ctx, rng, c, global, round)
}

type idPersonalizer struct{}

func (idPersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return float64(c.ID) / 10, nil
}

func netClients(t *testing.T, n int) []*partition.Client {
	t.Helper()
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	g, err := data.NewGenerator(spec, 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 10*n)
	parts, err := partition.IID(rng, ds, n, 20)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	return partition.BuildClients(rng, ds, parts, nil)
}

func TestServerConfigValidation(t *testing.T) {
	good := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 1,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return []float64{0}, nil },
	}
	if _, err := NewServer(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, mutate := range []func(*ServerConfig){
		func(c *ServerConfig) { c.NumClients = 0 },
		func(c *ServerConfig) { c.Rounds = 0 },
		func(c *ServerConfig) { c.ClientsPerRound = 0 },
		func(c *ServerConfig) { c.Aggregator = nil },
		func(c *ServerConfig) { c.InitGlobal = nil },
	} {
		bad := good
		mutate(&bad)
		if _, err := NewServer(bad); err == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestClientConfigValidation(t *testing.T) {
	clients := netClients(t, 1)
	good := ClientConfig{Addr: "127.0.0.1:1", ClientID: 0, Data: clients[0], Trainer: addOneTrainer{}, Personalizer: idPersonalizer{}}
	for _, mutate := range []func(*ClientConfig){
		func(c *ClientConfig) { c.Addr = "" },
		func(c *ClientConfig) { c.Data = nil },
		func(c *ClientConfig) { c.Trainer = nil },
		func(c *ClientConfig) { c.Personalizer = nil },
	} {
		bad := good
		mutate(&bad)
		if err := RunClient(context.Background(), bad); err == nil {
			t.Fatal("invalid client config accepted")
		}
	}
}

// runFederation spins up a server and n client goroutines on localhost and
// returns the server result.
func runFederation(t *testing.T, n, rounds, perRound int, trainer fl.Trainer, personalizer fl.Personalizer) *Result {
	t.Helper()
	clients := netClients(t, n)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: perRound, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		IOTimeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         clients[id],
				Trainer:      trainer,
				Personalizer: personalizer,
				Seed:         7,
				IOTimeout:    20 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	return res
}

func TestFederationOverTCP(t *testing.T) {
	res := runFederation(t, 4, 3, 2, addOneTrainer{}, idPersonalizer{})
	// add-one trainer + averaging: global = rounds.
	for _, v := range res.Global {
		if v != 3 {
			t.Fatalf("global = %v, want all 3", res.Global)
		}
	}
	if len(res.History) != 3 {
		t.Fatalf("history = %d", len(res.History))
	}
	if len(res.Accuracies) != 4 {
		t.Fatalf("accuracies = %v", res.Accuracies)
	}
	for id, acc := range res.Accuracies {
		if acc != float64(id)/10 {
			t.Fatalf("acc[%d] = %v", id, acc)
		}
	}
}

func TestFederationWithRealMethodOverTCP(t *testing.T) {
	// A real FL method (FedAvg on the supervised model) over the wire.
	n := 3
	clients := netClients(t, n)
	arch := ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
	cfg := baselines.DefaultConfig(arch, 10)
	cfg.Train.Epochs = 1
	cfg.Train.BatchSize = 16
	cfg.Head.Epochs = 2
	method := baselines.NewFedAvg(cfg)

	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: 2, ClientsPerRound: 2, Seed: 3,
		Aggregator: method.Aggregator,
		InitGlobal: method.InitGlobal,
		IOTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         clients[id],
				Trainer:      method.Trainer,
				Personalizer: method.Personalizer,
				Seed:         3,
				IOTimeout:    30 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	for id, acc := range res.Accuracies {
		if acc < 0 || acc > 1 {
			t.Fatalf("acc[%d] = %v", id, acc)
		}
	}
}

// TestDuplicateClientIDRejected pins the async-server semantics: a second
// join with an already-taken ID is rejected on its own connection with an
// error message, while the federation carries on undisturbed with the
// original holder of the ID.
func TestDuplicateClientIDRejected(t *testing.T) {
	clients := netClients(t, 2)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 2, ClientsPerRound: 1, Seed: 1,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return []float64{0}, nil },
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	release := make(chan struct{})
	mk := func(id int, tr fl.Trainer) error {
		return RunClient(ctx, ClientConfig{
			Addr: srv.Addr().String(), ClientID: id, Data: clients[0],
			Trainer: tr, Personalizer: idPersonalizer{}, IOTimeout: 10 * time.Second,
		})
	}
	type outcome struct {
		res *Result
		err error
	}
	srvCh := make(chan outcome, 1)
	firstErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		res, err := srv.Run(ctx)
		srvCh <- outcome{res, err}
	}()
	<-started
	// The original client's first local update blocks until released, so
	// the federation is provably mid-round while the duplicate collides.
	go func() { firstErr <- mk(5, gatedTrainer{release}) }()
	waitUntil(t, 5*time.Second, func() bool { return len(srv.Joined()) == 1 })
	dupErr := mk(5, addOneTrainer{})
	if dupErr == nil || !strings.Contains(dupErr.Error(), "duplicate") {
		t.Fatalf("duplicate joiner should be rejected with an error, got %v", dupErr)
	}
	close(release)
	sr := <-srvCh
	if sr.err != nil {
		t.Fatalf("server Run: %v", sr.err)
	}
	if err := <-firstErr; err != nil {
		t.Fatalf("original client: %v", err)
	}
	if len(sr.res.Accuracies) != 1 {
		t.Fatalf("accuracies = %v, want the original client only", sr.res.Accuracies)
	}
}

// waitUntil polls cond until it holds or the timeout elapses.
func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMsgTypeString(t *testing.T) {
	for m := MsgJoin; m <= MsgError; m++ {
		if s := m.String(); s == "" || strings.HasPrefix(s, "msgtype(") {
			t.Fatalf("missing String for %d", int(m))
		}
	}
	if !strings.HasPrefix(MsgType(99).String(), "msgtype(") {
		t.Fatal("unknown type should render numerically")
	}
}
