// Package flnet runs federated learning over a real network: a server
// process orchestrates rounds over TCP connections to client processes,
// exchanging gob-encoded parameter vectors. It mirrors the in-process
// simulator in internal/fl (same Trainer/Aggregator/Personalizer contracts)
// so any method can be run distributed without modification. The
// cmd/calibre-server and cmd/calibre-client binaries are thin wrappers
// around this package.
//
// # Wire protocol
//
// A fresh connection opens with a preamble exchange: each side immediately
// writes 8 bytes — the magic "CALF", a little-endian uint16
// ProtocolVersion and two reserved zero bytes — then reads and validates
// the peer's. Both sides write first, so the exchange cannot deadlock. A
// peer with the wrong magic or version is rejected with a typed
// ErrProtocolMismatch (client side) or silently dropped (server side)
// before any gob traffic, so an incompatible build fails with a clear
// error instead of a gob decode failure mid-handshake.
//
// The current ProtocolVersion is 2: payloads are typed param.Vector
// values, and train-result updates may travel as lossless XOR-deltas
// against the round's global vector (fl.Update.Delta) instead of dense
// params. The server advertises its preferred uplink encoding in the
// join-ack envelope (Updates field, ServerConfig.UpdateWire); clients
// comply unless forced dense (ClientConfig.DenseUpdates), and fall back
// to dense per update whenever the delta would not be smaller. Either
// form is legal on every train-result: the server materializes deltas at
// ingress (fl.Update.Resolve) before aggregation, bit-identically, and a
// client whose payload fails validation (wrong length, corrupt delta) is
// evicted from the federation instead of panicking the aggregator. The
// round then proceeds like any other client failure: with a K<N quorum
// configured it closes on the remaining responders, while under the
// default all-must-reply discipline it fails loudly with
// fl.ErrQuorumNotMet (the typed fl.ErrUpdateSize in its cause) — the
// strict synchronous contract would otherwise silently aggregate fewer
// updates. Version 1 spoke dense []float64 payloads only and is refused
// at the preamble.
//
// After the preamble, every message on the wire is one Envelope,
// gob-encoded onto the raw TCP stream. gob's self-describing stream
// provides the framing: type
// descriptors travel once per connection, each subsequent Encode emits one
// length-delimited value, and a Decode that hits a truncated or corrupt
// stream fails cleanly instead of desynchronizing. The Envelope.Type field
// discriminates which of the remaining fields are meaningful:
//
//	Type                Direction        Fields used
//	join                client → server  ClientID
//	join-ack            server → client  ClientID, Updates (advertised encoding)
//	train               server → client  Round, Global
//	train-result        client → server  ClientID, Round, Update (dense Params or Delta)
//	personalize         server → client  Global
//	personalize-result  client → server  ClientID, Accuracy
//	shutdown            server → client  —
//	error               either           Err (also ClientID from clients)
//
// Strictly one request is in flight per connection: the server never sends
// a second train/personalize before the reply to the first arrives (or the
// round machinery gives up on the connection). Replies carry the Round they
// answer, which is how the server tells a live update from a straggler's
// stale one.
//
// # Round lifecycle
//
// A federation passes through these states:
//
//	joining    Clients dial in and handshake (join / join-ack). Training
//	           starts once ServerConfig.NumClients have joined. The
//	           listener stays open afterwards: late joiners are admitted
//	           at any time and become sampleable at the next round
//	           boundary. Duplicate IDs and garbage handshakes are
//	           rejected per-connection without disturbing the federation.
//
//	dispatch   Each round samples ClientsPerRound eligible clients
//	           (joined, not evicted, no in-flight request) and sends each
//	           a train message with the current global vector.
//
//	collect    Updates are folded into a running aggregate (fl.UpdateSink)
//	           in canonical participant order as they become contiguous —
//	           payloads are buffered only while reordering demands it.
//	           The round closes when either
//	             (a) every participant replied, or
//	             (b) RoundDeadline expired with ≥ Quorum updates.
//	           If the deadline expires short of quorum — or client
//	           failures make quorum unreachable — the federation fails
//	           with fl.ErrQuorumNotMet.
//
//	straggle   Participants that miss a deadline-closed round are
//	           stragglers. Under fl.StragglerRequeue (default) a
//	           straggler stays in the federation: it is simply not
//	           sampled again until its stale reply drains, which is
//	           counted as a LateUpdate in the round that observes it.
//	           Under fl.StragglerDrop the straggler is evicted and its
//	           connection closed. Per-round accounting (Responders,
//	           Stragglers, LateUpdates, DeadlineExpired) is surfaced in
//	           fl.RoundStats.
//
//	personalize After the last round the server waits for in-flight
//	           stragglers to drain, then sends every surviving client a
//	           personalize request and collects local test accuracies.
//
//	shutdown   Clients receive shutdown and exit cleanly.
//
// # Determinism
//
// With Quorum and RoundDeadline left zero the server is fully synchronous
// and bit-identical to the historical lock-step implementation. With quorum
// aggregation configured, a run in which every participant replies within
// the deadline is still bit-identical to the synchronous path: sampling
// consumes the master RNG identically, and ingestion order is canonical
// participant order regardless of arrival order (see fl.UpdateSink). When
// stragglers do occur, the aggregate depends only on *which* clients
// responded, never on arrival timing.
//
// # Durability
//
// With ServerConfig.OnCheckpoint set (cmd/calibre-server wires it to an
// internal/store.Store via -checkpoint-dir), the server emits a deep
// copy of its complete round state — round counter, global vector,
// RoundStats history and the per-round sampling-pool sizes — after every
// CheckpointEvery-th round, before OnRound fires. A killed server is
// restarted with ResumeFrom pointing at the latest snapshot: it waits for
// NumClients to (re)join, replays its sampling draws against the recorded
// pool sizes to restore the master RNG, and continues from the
// checkpointed round. Clients need no persistent state — local updates
// are pure functions of (seed, round, client, global) — so a resumed
// federation in which every participant responds is bit-identical to one
// that never stopped. See internal/store for the snapshot format and the
// resume state machine.
package flnet
