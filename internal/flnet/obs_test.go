package flnet

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/obs"
	"calibre/internal/param"
)

// TestObsSnapshotRaceDuringFederation hammers Registry.Snapshot from
// scraper goroutines while a real TCP federation runs concurrent rounds
// — the race-freedom half of the metrics-plane contract, meaningful
// under `go test -race`. The scrapers also sanity-check every snapshot
// they take: the metrics plane must never expose a half-recorded round.
func TestObsSnapshotRaceDuringFederation(t *testing.T) {
	reg := obs.NewRegistry()
	const n, rounds, perRound = 4, 4, 3

	clients := netClients(t, n)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: perRound, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		IOTimeout:  20 * time.Second,
		Obs:        reg,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Scrapers: poll Snapshot as fast as they can for the whole federation.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for w := 0; w < 2; w++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				if int64(len(snap.Rounds)) > snap.Counters[obs.CounterRounds] {
					t.Errorf("torn snapshot: ring %d > rounds_total %d", len(snap.Rounds), snap.Counters[obs.CounterRounds])
					return
				}
				for _, rs := range snap.Rounds {
					if rs.Runtime != "server" || rs.Responders > rs.Participants {
						t.Errorf("implausible round sample: %+v", rs)
						return
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:     srv.Addr().String(),
				ClientID: id, Data: clients[id],
				Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
				Seed: 7, IOTimeout: 20 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}

	// The federation completed; the registry must agree with its history.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.CounterRounds]; got != rounds {
		t.Fatalf("rounds_total = %d, want %d", got, rounds)
	}
	if len(res.History) != rounds {
		t.Fatalf("history has %d rounds, want %d", len(res.History), rounds)
	}
	wire := snap.Counters[obs.CounterUplinkWireBytes]
	dense := snap.Counters[obs.CounterUplinkDenseBytes]
	if wire <= 0 || dense <= 0 || wire > dense {
		t.Fatalf("uplink accounting wrong: wire=%d dense=%d", wire, dense)
	}
	// Every round sampled perRound clients and all responded.
	var part int64
	for _, v := range snap.Participation {
		part += v
	}
	if part != rounds*perRound {
		t.Fatalf("participation sums to %d client-rounds, want %d", part, rounds*perRound)
	}
}
