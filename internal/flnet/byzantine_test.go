package flnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/store"
)

// clusteredTrainer ships global + 1 + 0.01·clientID: honest updates cluster
// within 0.04 of each other, so a robust aggregator's choice among them
// moves the global by at most that much per round while a sign-flipped
// update sits far outside the cluster.
type clusteredTrainer struct{}

func (clusteredTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + 1 + 0.01*float64(c.ID)
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len()}, nil
}

// runHostileFederation drives a real TCP federation of n clients whose
// trainers are wrapped by adv (nil = all honest) against the given server
// aggregator, and returns the result plus the server's obs snapshot.
func runHostileFederation(t *testing.T, n, rounds int, adv *fl.Adversary, agg fl.Aggregator) (*Result, obs.Snapshot) {
	t.Helper()
	const seed = 7
	clients := netClients(t, n)
	reg := obs.NewRegistry()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: n, Seed: seed,
		Aggregator: agg,
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		Adversary:  adv,
		Obs:        reg,
		IOTimeout:  20 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	trainer := adv.WrapTrainer(clusteredTrainer{}, seed, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: trainer, Personalizer: idPersonalizer{},
				Seed: seed, IOTimeout: 20 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	return res, reg.Snapshot()
}

// TestByzantineSurvivalOverTCP is the integration gate for the threat
// model: a real TCP federation with one sign-flipping client survives under
// krum(1) — the final global stays within the honest cluster's spread of an
// all-honest federation — while the same attack demolishes the plain
// weighted mean. The server's RoundStats and obs counters account for every
// adversarial update and every rejection.
func TestByzantineSurvivalOverTCP(t *testing.T) {
	const n, rounds = 5, 4
	adv := &fl.Adversary{Kind: fl.AdvSignFlip, Scale: 3, Frac: 0.2}
	if mal := adv.Malicious(7, n); len(mal) != 1 {
		t.Fatalf("want exactly one compromised client, got %v", mal)
	}

	honest, _ := runHostileFederation(t, n, rounds, nil, fl.Krum{F: 1})
	robust, snap := runHostileFederation(t, n, rounds, adv, fl.Krum{F: 1})
	poisoned, _ := runHostileFederation(t, n, rounds, adv, fl.WeightedAverage{})

	// Krum must keep the hostile global inside the honest cluster: every
	// round moves it by 1+0.01·k for some honest k, so the worst-case gap to
	// the all-honest run is 0.04·rounds.
	for i := range robust.Global {
		if math.Abs(robust.Global[i]-honest.Global[i]) > 0.04*rounds+1e-9 {
			t.Fatalf("krum global[%d] = %v, honest = %v — attack leaked through", i, robust.Global[i], honest.Global[i])
		}
	}
	// The mean, by contrast, is dragged far below the honest trajectory
	// (each round's average loses ≈0.8 to the reflected update).
	for i := range poisoned.Global {
		if honest.Global[i]-poisoned.Global[i] < 1 {
			t.Fatalf("weighted mean global[%d] = %v did not degrade vs honest %v — control arm broken", i, poisoned.Global[i], honest.Global[i])
		}
	}

	// Accounting: with everyone sampled every round, each round carries
	// exactly one adversarial update, and krum(1) over 5 updates rejects 4.
	for _, h := range robust.History {
		if h.AdversarialUpdates != 1 {
			t.Fatalf("round %d adversarial = %d, want 1", h.Round, h.AdversarialUpdates)
		}
		if h.RejectedUpdates != n-1 {
			t.Fatalf("round %d rejected = %d, want %d", h.Round, h.RejectedUpdates, n-1)
		}
	}
	if got := snap.Counters[obs.CounterAdversarialUpdates]; got != rounds {
		t.Fatalf("obs adversarial_updates_total = %d, want %d", got, rounds)
	}
	if got := snap.Counters[obs.CounterRejectedUpdates]; got != int64(rounds*(n-1)) {
		t.Fatalf("obs aggregator_rejected_updates_total = %d, want %d", got, rounds*(n-1))
	}
}

// TestServerTraceDropsDeterministic: an availability trace on the networked
// server drops participants pre-dispatch (they surface as stragglers), and
// two federations from the same seed agree bit-for-bit.
func TestServerTraceDropsDeterministic(t *testing.T) {
	trace := &fl.TraceConfig{Kind: fl.TraceDiurnal, Base: 0.1, Amp: 0.3, Period: 3}
	run := func() *Result {
		clients := netClients(t, 3)
		srv, err := NewServer(ServerConfig{
			Addr: "127.0.0.1:0", NumClients: 3, Rounds: 6, ClientsPerRound: 3, Seed: 11,
			Aggregator: fl.WeightedAverage{},
			InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 3), nil },
			Trace:      trace,
			IOTimeout:  20 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		errs := make([]error, 3)
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				errs[id] = RunClient(ctx, ClientConfig{
					Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
					Trainer: seededTrainer{}, Personalizer: idPersonalizer{},
					Seed: 11, IOTimeout: 20 * time.Second,
				})
			}(i)
		}
		res, err := srv.Run(ctx)
		wg.Wait()
		if err != nil {
			t.Fatalf("server Run: %v", err)
		}
		for id, cerr := range errs {
			if cerr != nil {
				t.Fatalf("client %d: %v", id, cerr)
			}
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.History, b.History) {
		t.Fatalf("traced federations diverge:\n%+v\nvs\n%+v", a.History, b.History)
	}
	dropped := 0
	for _, h := range a.History {
		dropped += len(h.Stragglers)
	}
	if dropped == 0 {
		t.Fatal("a 0.1–0.4 diurnal trace over 6 rounds never dropped anyone — trace not engaged")
	}
}

// TestServerTraceTotalOutageFails pins the no-rescue contract: unlike the
// simulator, the networked server performs no rescue draws, so a burst that
// drops every sampled participant fails the round with the typed
// fl.ErrQuorumNotMet instead of clamping.
func TestServerTraceTotalOutageFails(t *testing.T) {
	clients := netClients(t, 2)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Rounds: 2, ClientsPerRound: 2, Seed: 3,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 2), nil },
		Trace:      &fl.TraceConfig{Kind: fl.TraceFlash, Base: 0, Amp: 1, Period: 0, Width: 1},
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// The server dies mid-federation, so client errors are expected.
			_ = RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
				Seed: 3, IOTimeout: 10 * time.Second,
			})
		}(i)
	}
	_, err = srv.Run(ctx)
	cancel()
	wg.Wait()
	if !errors.Is(err, fl.ErrQuorumNotMet) {
		t.Fatalf("total outage err = %v, want fl.ErrQuorumNotMet", err)
	}
}

// TestServerTraceKillResumeBitIdentical extends the networked durability
// gate to traced federations: the resumed server must burn the completed
// rounds' trace draws blindly so the continuation is bit-identical to a
// federation that never stopped.
func TestServerTraceKillResumeBitIdentical(t *testing.T) {
	const n, total = 3, 4
	base := ServerConfig{
		NumClients: n, Rounds: total, ClientsPerRound: 2, Seed: 11,
		Trace: &fl.TraceConfig{Kind: fl.TraceDiurnal, Base: 0.1, Amp: 0.3, Period: 3},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ref, err, cerrs := runCkptFederation(t, ctx, base, netClients(t, n))
	if err != nil {
		t.Fatalf("reference Run: %v", err)
	}
	for id, cerr := range cerrs {
		if cerr != nil {
			t.Fatalf("reference client %d: %v", id, cerr)
		}
	}

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	fp := store.Fingerprint("flnet-trace-test", "seeded", "11")
	killCtx, kill := context.WithTimeout(context.Background(), 60*time.Second)
	defer kill()
	cfgA := base
	cfgA.CheckpointEvery = 1
	cfgA.OnCheckpoint = func(state *fl.SimState) error {
		_, err := st.Save(&store.Snapshot{
			Meta:  store.Meta{Seed: base.Seed, Fingerprint: fp, Runtime: "server"},
			State: *state,
		})
		return err
	}
	cfgA.OnRound = func(stats fl.RoundStats) {
		if stats.Round == 1 {
			kill()
		}
	}
	_, err, _ = runCkptFederation(t, killCtx, cfgA, netClients(t, n))
	if err == nil {
		t.Fatal("killed federation reported success")
	}

	snap, version, err := st.Resume(fp)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if snap.State.Round != 2 {
		t.Fatalf("latest snapshot v%d at round %d, want round 2", version, snap.State.Round)
	}
	cfgB := base
	cfgB.ResumeFrom = &snap.State
	res, err, cerrs := runCkptFederation(t, ctx, cfgB, netClients(t, n))
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	for id, cerr := range cerrs {
		if cerr != nil {
			t.Fatalf("resumed client %d: %v", id, cerr)
		}
	}

	for i := range res.Global {
		if math.Float64bits(res.Global[i]) != math.Float64bits(ref.Global[i]) {
			t.Fatalf("global[%d] differs after traced kill+resume: %x vs %x", i, res.Global[i], ref.Global[i])
		}
	}
	if !reflect.DeepEqual(res.History, ref.History) {
		t.Fatalf("history differs after traced kill+resume:\n%+v\nvs\n%+v", res.History, ref.History)
	}
	if !reflect.DeepEqual(res.Accuracies, ref.Accuracies) {
		t.Fatalf("accuracies differ: %v vs %v", res.Accuracies, ref.Accuracies)
	}
}
