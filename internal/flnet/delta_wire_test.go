package flnet

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// driftTrainer nudges every element by a client- and round-dependent
// amount, so consecutive globals differ everywhere — the compressed
// uplink's realistic (SGD-like) case.
type driftTrainer struct{}

func (driftTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := global.Clone()
	for i := range params {
		params[i] += 1e-4 * float64(c.ID+1) * float64(round+i%3+1)
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len()}, nil
}

// runWireFederation runs a full federation with the given wire settings
// and returns the final result.
func runWireFederation(t *testing.T, n, rounds int, wire UpdateWire, denseClients bool, trainer fl.Trainer) *Result {
	t.Helper()
	clients := netClients(t, n)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: n, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			v := make(param.Vector, 64)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			return v, nil
		},
		IOTimeout:  20 * time.Second,
		UpdateWire: wire,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: trainer, Personalizer: idPersonalizer{}, Seed: 7,
				DenseUpdates: denseClients,
			})
			if err != nil {
				t.Errorf("client %d: %v", id, err)
			}
		}(i)
	}
	res, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	return res
}

// TestDeltaWireBitIdenticalToDense pins the v2 compression contract: a
// federation shipping XOR-delta updates produces a bit-identical global
// (and histories) to one shipping dense vectors, for both the advertised
// modes and the client-side dense override.
func TestDeltaWireBitIdenticalToDense(t *testing.T) {
	base := runWireFederation(t, 3, 3, WireDense, false, driftTrainer{})
	for name, res := range map[string]*Result{
		"delta-advertised":      runWireFederation(t, 3, 3, WireDelta, false, driftTrainer{}),
		"client-forced-dense":   runWireFederation(t, 3, 3, WireDelta, true, driftTrainer{}),
		"dense-mode-forced-too": runWireFederation(t, 3, 3, WireDense, true, driftTrainer{}),
	} {
		if len(res.Global) != len(base.Global) {
			t.Fatalf("%s: global length %d vs %d", name, len(res.Global), len(base.Global))
		}
		for i := range base.Global {
			if math.Float64bits(res.Global[i]) != math.Float64bits(base.Global[i]) {
				t.Fatalf("%s: global element %d differs from the dense run", name, i)
			}
		}
		if len(res.History) != len(base.History) {
			t.Fatalf("%s: history length differs", name)
		}
	}
}

// wrongSizeTrainer emits a payload that cannot belong to this federation.
type wrongSizeTrainer struct{}

func (wrongSizeTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	return &fl.Update{ClientID: c.ID, Params: make(param.Vector, len(global)+3), NumSamples: 1}, nil
}

// TestServerRejectsWrongSizeUpdate pins the ingress contract: a client
// shipping a wrong-length payload is evicted while the round aggregates
// the remaining updates — the round is degraded, never panicked.
func TestServerRejectsWrongSizeUpdate(t *testing.T) {
	n := 3
	clients := netClients(t, n)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: 1, ClientsPerRound: n, Seed: 7,
		Quorum:        1,
		RoundDeadline: 30 * time.Second,
		Aggregator:    fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			return make(param.Vector, 8), nil
		},
		IOTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var trainer fl.Trainer = addOneTrainer{}
			if id == 1 {
				trainer = wrongSizeTrainer{}
			}
			// The misbehaving client is evicted server-side, so its RunClient
			// exits with a transport error; the others shut down cleanly.
			_ = RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: trainer, Personalizer: idPersonalizer{}, Seed: 7,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	h := res.History[0]
	if len(h.Stragglers) != 1 || h.Stragglers[0] != 1 {
		t.Fatalf("round 0 stragglers = %v, want [1]", h.Stragglers)
	}
	if _, ok := res.Accuracies[1]; ok {
		t.Fatal("rejected client still personalized")
	}
	if len(res.Accuracies) != n-1 {
		t.Fatalf("got %d accuracies, want %d", len(res.Accuracies), n-1)
	}
}

// TestWireUpdateFallsBackToDense pins the sender-side guard: an update
// whose delta would not be smaller than the dense form ships dense.
func TestWireUpdateFallsBackToDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	global := make(param.Vector, 256)
	random := make(param.Vector, 256)
	for i := range global {
		global[i] = rng.NormFloat64()
		random[i] = math.Float64frombits(rng.Uint64() | 1) // high-entropy, never equal
	}
	u := &fl.Update{ClientID: 0, Params: random, NumSamples: 1}
	if w := wireUpdate(u, global, true, nil); w.Delta != nil {
		t.Fatalf("high-entropy update was delta-encoded to %d bytes (dense %d)", w.Delta.Size(), 8*len(random))
	}
	// An SGD-like update compresses and therefore ships as a delta.
	closeBy := global.Clone()
	for i := range closeBy {
		closeBy[i] += 1e-9 * closeBy[i]
	}
	u = &fl.Update{ClientID: 0, Params: closeBy, NumSamples: 1}
	w := wireUpdate(u, global, true, &param.Delta{})
	if w.Delta == nil {
		t.Fatal("compressible update was not delta-encoded")
	}
	if w == u || u.Params == nil || u.Delta != nil {
		t.Fatal("wireUpdate mutated the trainer's update")
	}
	if got, err := w.Delta.Apply(global); err != nil {
		t.Fatalf("Apply: %v", err)
	} else {
		for i := range closeBy {
			if math.Float64bits(got[i]) != math.Float64bits(closeBy[i]) {
				t.Fatalf("delta reconstruction differs at %d", i)
			}
		}
	}
}
