package flnet

import (
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
)

// TestPreambleExchange pins the preamble bytes and the happy path over a
// real pipe.
func TestPreambleExchange(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	errc := make(chan error, 1)
	go func() { errc <- writePreamble(a, time.Second) }()
	buf := make([]byte, preambleSize)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("writePreamble: %v", err)
	}
	if string(buf[:4]) != ProtocolMagic {
		t.Fatalf("magic = %q", buf[:4])
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != ProtocolVersion {
		t.Fatalf("version = %d", v)
	}
	if buf[6] != 0 || buf[7] != 0 {
		t.Fatalf("reserved bytes = %v", buf[6:8])
	}
}

// TestPreambleRejectsIncompatiblePeers: wrong magic and wrong version each
// yield the typed ErrProtocolMismatch.
func TestPreambleRejectsIncompatiblePeers(t *testing.T) {
	send := func(t *testing.T, raw []byte) error {
		t.Helper()
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			_, _ = a.Write(raw)
			_ = a.Close()
		}()
		return readPreamble(b, time.Second)
	}
	gobJoin := []byte{0x2c, 0xff, 0x81, 0x03, 0x01, 0x01, 0x08} // a legacy client's first gob bytes
	if err := send(t, gobJoin[:preambleSize-1]); err == nil || errors.Is(err, ErrProtocolMismatch) {
		// Short writes surface as transport errors, not mismatches.
		t.Fatalf("truncated preamble err = %v", err)
	}
	if err := send(t, append(gobJoin, 0)); !errors.Is(err, ErrProtocolMismatch) {
		t.Fatalf("legacy gob stream err = %v, want ErrProtocolMismatch", err)
	}
	futuristic := make([]byte, preambleSize)
	copy(futuristic, ProtocolMagic)
	binary.LittleEndian.PutUint16(futuristic[4:6], ProtocolVersion+7)
	if err := send(t, futuristic); !errors.Is(err, ErrProtocolMismatch) {
		t.Fatalf("future version err = %v, want ErrProtocolMismatch", err)
	}
}

// TestClientRejectsIncompatibleServer: a client dialing a server from an
// incompatible build gets a clean typed error, not a gob failure.
func TestClientRejectsIncompatibleServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		bad := make([]byte, preambleSize)
		copy(bad, ProtocolMagic)
		binary.LittleEndian.PutUint16(bad[4:6], ProtocolVersion+1)
		_, _ = conn.Write(bad)
		buf := make([]byte, preambleSize)
		_, _ = io.ReadFull(conn, buf)
	}()
	err = RunClient(context.Background(), ClientConfig{
		Addr: ln.Addr().String(), ClientID: 0, Data: netClients(t, 1)[0],
		Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
		IOTimeout: 2 * time.Second,
	})
	if !errors.Is(err, ErrProtocolMismatch) {
		t.Fatalf("err = %v, want ErrProtocolMismatch", err)
	}
}

// TestServerRejectsIncompatibleClient: a wrong-version client is dropped at
// the preamble without disturbing the federation, which completes with the
// compatible client.
func TestServerRejectsIncompatibleClient(t *testing.T) {
	clients := netClients(t, 1)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 1, Seed: 3,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 2), nil },
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	var srvErr error
	var res *Result
	go func() {
		defer wg.Done()
		res, srvErr = srv.Run(ctx)
	}()

	// The incompatible client: valid magic, wrong version. The server
	// answers with its own preamble and then hangs up.
	conn, err := net.DialTimeout("tcp", srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	bad := make([]byte, preambleSize)
	copy(bad, ProtocolMagic)
	binary.LittleEndian.PutUint16(bad[4:6], ProtocolVersion+1)
	if _, err := conn.Write(bad); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := readPreamble(conn, 5*time.Second); err != nil {
		t.Fatalf("server preamble: %v", err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept talking to an incompatible client")
	}
	_ = conn.Close()

	cerr := RunClient(ctx, ClientConfig{
		Addr: srv.Addr().String(), ClientID: 0, Data: clients[0],
		Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
		Seed: 3, IOTimeout: 10 * time.Second,
	})
	wg.Wait()
	if srvErr != nil {
		t.Fatalf("server Run: %v", srvErr)
	}
	if cerr != nil {
		t.Fatalf("compatible client: %v", cerr)
	}
	if len(res.Accuracies) != 1 {
		t.Fatalf("accuracies = %v", res.Accuracies)
	}
}

// TestEnvelopeGobRoundTrip pins the wire format: an Envelope carrying a
// full Update must survive encode/decode over a real connection.
func TestEnvelopeGobRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	want := &Envelope{
		Type:     MsgTrainResult,
		ClientID: 7,
		Round:    3,
		Update: &fl.Update{
			ClientID:     7,
			Params:       []float64{1.5, -2.25, 0},
			NumSamples:   120,
			TrainLoss:    3.14,
			Divergence:   0.42,
			ControlDelta: []float64{0.1, 0.2, 0.3},
		},
	}
	done := make(chan error, 1)
	go func() {
		done <- gob.NewEncoder(client).Encode(want)
	}()
	var got Envelope
	if err := gob.NewDecoder(server).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("encode: %v", err)
	}
	if got.Type != want.Type || got.ClientID != 7 || got.Round != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Update == nil || got.Update.Divergence != 0.42 || len(got.Update.Params) != 3 {
		t.Fatalf("update mismatch: %+v", got.Update)
	}
	for i, v := range want.Update.ControlDelta {
		if got.Update.ControlDelta[i] != v {
			t.Fatal("control delta mismatch")
		}
	}
}

// TestConnDeadlineFires verifies that the per-operation timeout aborts a
// receive on a silent connection instead of blocking forever.
func TestConnDeadlineFires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(2 * time.Second) // never send anything
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := newConn(raw, 100*time.Millisecond)
	defer c.close()
	start := time.Now()
	if _, err := c.recv(); err == nil {
		t.Fatal("recv on a silent peer should time out")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}
