package flnet

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"calibre/internal/fl"
)

// TestEnvelopeGobRoundTrip pins the wire format: an Envelope carrying a
// full Update must survive encode/decode over a real connection.
func TestEnvelopeGobRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	want := &Envelope{
		Type:     MsgTrainResult,
		ClientID: 7,
		Round:    3,
		Update: &fl.Update{
			ClientID:     7,
			Params:       []float64{1.5, -2.25, 0},
			NumSamples:   120,
			TrainLoss:    3.14,
			Divergence:   0.42,
			ControlDelta: []float64{0.1, 0.2, 0.3},
		},
	}
	done := make(chan error, 1)
	go func() {
		done <- gob.NewEncoder(client).Encode(want)
	}()
	var got Envelope
	if err := gob.NewDecoder(server).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("encode: %v", err)
	}
	if got.Type != want.Type || got.ClientID != 7 || got.Round != 3 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Update == nil || got.Update.Divergence != 0.42 || len(got.Update.Params) != 3 {
		t.Fatalf("update mismatch: %+v", got.Update)
	}
	for i, v := range want.Update.ControlDelta {
		if got.Update.ControlDelta[i] != v {
			t.Fatal("control delta mismatch")
		}
	}
}

// TestConnDeadlineFires verifies that the per-operation timeout aborts a
// receive on a silent connection instead of blocking forever.
func TestConnDeadlineFires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			defer conn.Close()
			time.Sleep(2 * time.Second) // never send anything
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := newConn(raw, 100*time.Millisecond)
	defer c.close()
	start := time.Now()
	if _, err := c.recv(); err == nil {
		t.Fatal("recv on a silent peer should time out")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}
