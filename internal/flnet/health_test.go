package flnet

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
)

// TestServerHealthSuspectsOverTCP is the health plane's network
// integration gate: a real TCP federation with two sign-flipping clients,
// watched by a live health.Monitor on the server, must flag exactly the
// seeded compromised set from ingress update norms — across goroutine
// scheduling, wire encoding and arrival-order noise — while perturbing
// nothing (the global matches a monitor-free run bit for bit).
func TestServerHealthSuspectsOverTCP(t *testing.T) {
	const n, rounds, seed = 6, 4, 7
	adv := &fl.Adversary{Kind: fl.AdvSignFlip, Scale: 6, Frac: 0.34}

	run := func(mon *health.Monitor, onAlert func(health.Alert)) (*Result, obs.Snapshot) {
		t.Helper()
		clients := netClients(t, n)
		reg := obs.NewRegistry()
		srv, err := NewServer(ServerConfig{
			Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: n, Seed: seed,
			Aggregator: fl.WeightedAverage{},
			InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
			Adversary:  adv,
			Obs:        reg,
			Health:     mon,
			OnAlert:    onAlert,
			IOTimeout:  20 * time.Second,
		})
		if err != nil {
			t.Fatalf("NewServer: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()

		trainer := adv.WrapTrainer(clusteredTrainer{}, seed, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				errs[id] = RunClient(ctx, ClientConfig{
					Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
					Trainer: trainer, Personalizer: idPersonalizer{},
					Seed: seed, IOTimeout: 20 * time.Second,
				})
			}(i)
		}
		res, err := srv.Run(ctx)
		wg.Wait()
		if err != nil {
			t.Fatalf("server Run: %v", err)
		}
		for id, cerr := range errs {
			if cerr != nil {
				t.Fatalf("client %d: %v", id, cerr)
			}
		}
		return res, reg.Snapshot()
	}

	bare, _ := run(nil, nil)

	mon := health.NewMonitor(nil)
	var alerts []health.Alert
	res, snap := run(mon, func(a health.Alert) { alerts = append(alerts, a) })

	if !reflect.DeepEqual(bare.Global, res.Global) {
		t.Errorf("global drifted under health monitoring:\nwithout: %v\nwith:    %v", bare.Global, res.Global)
	}
	if !reflect.DeepEqual(bare.History, res.History) {
		t.Errorf("history drifted under health monitoring")
	}

	want := adv.Malicious(seed, n)
	diag := mon.Diagnosis()
	if !reflect.DeepEqual(diag.Suspects, want) {
		t.Errorf("suspects = %v, want exactly the compromised set %v", diag.Suspects, want)
	}
	for _, a := range alerts {
		if a.Rule != "norm-z" {
			t.Errorf("unexpected %s alert from a clustered-trainer federation: %v", a.Rule, a)
		}
	}
	if len(diag.Clients) != n {
		t.Errorf("scored %d clients, want %d", len(diag.Clients), n)
	}
	for i := range want {
		if !diag.Clients[i].Suspect {
			t.Errorf("rank %d should be a suspect; ranking = %+v", i, diag.Clients)
		}
	}
	if got := snap.Gauges[obs.GaugeHealthSuspects]; got != int64(len(want)) {
		t.Errorf("health_suspect_clients gauge = %d, want %d", got, len(want))
	}
	if snap.Counters[obs.CounterHealthCritical] != int64(len(want)) {
		t.Errorf("health_critical_alerts_total = %d, want %d", snap.Counters[obs.CounterHealthCritical], len(want))
	}

	// The round ring now carries per-client detail: replaying it through
	// a fresh monitor (the calibre-doctor live path) reproduces the
	// verdict.
	replay := health.NewMonitor(nil)
	for _, s := range snap.Rounds {
		replay.ObserveRound(s)
	}
	if got := replay.Diagnosis().Suspects; !reflect.DeepEqual(got, want) {
		t.Errorf("ring replay suspects = %v, want %v", got, want)
	}
}
