package flnet

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/trace"
)

// runTracedFederation is runFederation with a configurable ServerConfig
// mutator, so recorder tests can attach a trace sink and hostile knobs.
func runTracedFederation(t *testing.T, n, rounds, perRound int, mutate func(*ServerConfig)) *Result {
	t.Helper()
	clients := netClients(t, n)
	cfg := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: perRound, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		IOTimeout:  20 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         clients[id],
				Trainer:      addOneTrainer{},
				Personalizer: idPersonalizer{},
				Seed:         7,
				IOTimeout:    20 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	return res
}

// TestTraceDoesNotPerturbNetRun is the networked half of the flight
// recorder's bit-identity contract: a TCP federation with a live recorder
// attached produces exactly the same global model, history and
// personalized accuracies as a bare one, and the trace describes the run.
func TestTraceDoesNotPerturbNetRun(t *testing.T) {
	bare := runTracedFederation(t, 4, 3, 2, nil)

	var sink bytes.Buffer
	rec := trace.New(&sink, trace.Config{})
	traced := runTracedFederation(t, 4, 3, 2, func(c *ServerConfig) { c.Recorder = rec })
	if err := rec.Close(); err != nil {
		t.Fatalf("close recorder: %v", err)
	}

	if !reflect.DeepEqual(bare.Global, traced.Global) {
		t.Errorf("global drifted under tracing:\nbare:   %v\ntraced: %v", bare.Global, traced.Global)
	}
	if !reflect.DeepEqual(bare.History, traced.History) {
		t.Errorf("history drifted under tracing:\nbare:   %+v\ntraced: %+v", bare.History, traced.History)
	}
	if !reflect.DeepEqual(bare.Accuracies, traced.Accuracies) {
		t.Errorf("accuracies drifted under tracing:\nbare: %v\ntraced: %v", bare.Accuracies, traced.Accuracies)
	}

	events, err := trace.ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	counts := map[trace.Kind]int{}
	lastStart := int64(-1)
	for _, e := range events {
		counts[e.Kind]++
		if e.Runtime != "server" {
			t.Fatalf("event with wrong runtime: %+v", e)
		}
		switch e.Kind {
		case trace.KindRoundStart:
			if e.TS < lastStart {
				t.Errorf("round spans out of order: %+v", e)
			}
			lastStart = e.TS
		case trace.KindClientUpdate:
			if e.Client < 0 || e.Bytes <= 0 || e.Dur <= 0 || (e.Wire != "delta" && e.Wire != "dense") {
				t.Errorf("implausible client_update: %+v", e)
			}
		}
	}
	if counts[trace.KindRoundStart] != 3 || counts[trace.KindRoundEnd] != 3 {
		t.Errorf("round spans = %d/%d, want 3/3", counts[trace.KindRoundStart], counts[trace.KindRoundEnd])
	}
	// 3 rounds × 2 participants, no failures: every dispatch has an update.
	if counts[trace.KindClientDispatch] != 6 || counts[trace.KindClientUpdate] != 6 {
		t.Errorf("client spans = %d dispatch / %d update, want 6/6",
			counts[trace.KindClientDispatch], counts[trace.KindClientUpdate])
	}
	if counts[trace.KindClientDrop] != 0 {
		t.Errorf("healthy federation traced %d drops", counts[trace.KindClientDrop])
	}
}

// TestNetTraceAvailabilityDrops pins drop attribution over TCP: a seeded
// availability trace produces client_drop events with reason=trace.
func TestNetTraceAvailabilityDrops(t *testing.T) {
	var sink bytes.Buffer
	rec := trace.New(&sink, trace.Config{})
	runTracedFederation(t, 4, 4, 3, func(c *ServerConfig) {
		c.Recorder = rec
		c.Trace = &fl.TraceConfig{Kind: fl.TraceDiurnal, Base: 0.4, Amp: 0.3, Period: 4}
		c.Quorum = 1
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for _, e := range events {
		if e.Kind == trace.KindClientDrop {
			drops++
			if e.Reason != trace.DropTrace {
				t.Fatalf("availability drop misattributed: %+v", e)
			}
			if e.Client < 0 {
				t.Fatalf("drop without client id: %+v", e)
			}
		}
	}
	if drops == 0 {
		t.Fatal("diurnal trace at base 0.4 produced no drops over 4 rounds (seed-dependent; adjust)")
	}
}
