package flnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"calibre/internal/fl"
)

// ServerConfig configures a federated server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":9000" or "127.0.0.1:0".
	Addr string
	// NumClients is how many clients must join before training starts.
	NumClients int
	// Rounds and ClientsPerRound mirror the simulator settings.
	Rounds          int
	ClientsPerRound int
	Seed            int64
	// Aggregator merges updates; InitGlobal produces the first vector.
	Aggregator fl.Aggregator
	InitGlobal func(rng *rand.Rand) ([]float64, error)
	// IOTimeout bounds each network operation (default 2 minutes).
	IOTimeout time.Duration
	// OnRound observes completed rounds.
	OnRound func(fl.RoundStats)
}

func (c *ServerConfig) validate() error {
	switch {
	case c.NumClients < 1:
		return errors.New("flnet: server needs ≥1 client")
	case c.Rounds < 1:
		return errors.New("flnet: rounds must be ≥1")
	case c.ClientsPerRound < 1:
		return errors.New("flnet: clientsPerRound must be ≥1")
	case c.Aggregator == nil:
		return errors.New("flnet: missing aggregator")
	case c.InitGlobal == nil:
		return errors.New("flnet: missing InitGlobal")
	}
	return nil
}

// Result is the outcome of a completed federation.
type Result struct {
	Global  []float64
	History []fl.RoundStats
	// Accuracies maps client ID to its personalized local test accuracy.
	Accuracies map[int]float64
}

// Server orchestrates federated rounds over TCP.
type Server struct {
	cfg      ServerConfig
	listener net.Listener

	mu      sync.Mutex
	clients map[int]*conn
}

// NewServer validates the config and starts listening (so callers can read
// Addr before clients connect).
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen %s: %w", cfg.Addr, err)
	}
	return &Server{cfg: cfg, listener: ln, clients: make(map[int]*conn)}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

// Run accepts clients, executes all rounds, runs the personalization stage
// on every client, shuts clients down, and returns the results.
func (s *Server) Run(ctx context.Context) (*Result, error) {
	defer s.listener.Close()
	defer s.closeAll()

	if err := s.acceptClients(ctx); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	global, err := s.cfg.InitGlobal(rng)
	if err != nil {
		return nil, fmt.Errorf("flnet: init global: %w", err)
	}
	ids := s.clientIDs()
	history := make([]fl.RoundStats, 0, s.cfg.Rounds)
	sampler := fl.UniformSampler{}
	for round := 0; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("flnet: round %d: %w", round, err)
		}
		picks := sampler.Sample(rng, len(ids), s.cfg.ClientsPerRound)
		participants := make([]int, len(picks))
		for i, p := range picks {
			participants[i] = ids[p]
		}
		updates, err := s.broadcastTrain(round, participants, global)
		if err != nil {
			return nil, err
		}
		global, err = s.cfg.Aggregator.Aggregate(global, updates)
		if err != nil {
			return nil, fmt.Errorf("flnet: aggregate round %d: %w", round, err)
		}
		stats := fl.RoundStats{Round: round, Participants: participants}
		for _, u := range updates {
			stats.MeanLoss += u.TrainLoss
		}
		stats.MeanLoss /= float64(len(updates))
		history = append(history, stats)
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
	}
	accs, err := s.broadcastPersonalize(ids, global)
	if err != nil {
		return nil, err
	}
	s.shutdownAll()
	return &Result{Global: global, History: history, Accuracies: accs}, nil
}

func (s *Server) acceptClients(ctx context.Context) error {
	deadline, ok := ctx.Deadline()
	for {
		s.mu.Lock()
		joined := len(s.clients)
		s.mu.Unlock()
		if joined >= s.cfg.NumClients {
			return nil
		}
		if ok {
			if err := s.listener.(*net.TCPListener).SetDeadline(deadline); err != nil {
				return fmt.Errorf("flnet: set accept deadline: %w", err)
			}
		}
		raw, err := s.listener.Accept()
		if err != nil {
			return fmt.Errorf("flnet: accept: %w", err)
		}
		c := newConn(raw, s.cfg.IOTimeout)
		env, err := c.recv()
		if err != nil {
			_ = c.close()
			return fmt.Errorf("flnet: join handshake: %w", err)
		}
		if env.Type != MsgJoin {
			_ = c.close()
			return fmt.Errorf("flnet: expected join, got %s", env.Type)
		}
		s.mu.Lock()
		if _, dup := s.clients[env.ClientID]; dup {
			s.mu.Unlock()
			_ = c.send(&Envelope{Type: MsgError, Err: fmt.Sprintf("duplicate client id %d", env.ClientID)})
			_ = c.close()
			return fmt.Errorf("flnet: duplicate client id %d", env.ClientID)
		}
		s.clients[env.ClientID] = c
		s.mu.Unlock()
		if err := c.send(&Envelope{Type: MsgJoinAck, ClientID: env.ClientID}); err != nil {
			return err
		}
	}
}

func (s *Server) clientIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// broadcastTrain sends the round's global vector to each participant and
// collects their updates concurrently (one in-flight request per
// connection).
func (s *Server) broadcastTrain(round int, participants []int, global []float64) ([]*fl.Update, error) {
	updates := make([]*fl.Update, len(participants))
	errs := make([]error, len(participants))
	var wg sync.WaitGroup
	for i, id := range participants {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			c := s.client(id)
			if c == nil {
				errs[slot] = fmt.Errorf("flnet: unknown client %d", id)
				return
			}
			if err := c.send(&Envelope{Type: MsgTrain, Round: round, Global: global, ClientID: id}); err != nil {
				errs[slot] = err
				return
			}
			resp, err := c.recv()
			if err != nil {
				errs[slot] = err
				return
			}
			switch resp.Type {
			case MsgTrainResult:
				updates[slot] = resp.Update
			case MsgError:
				errs[slot] = fmt.Errorf("flnet: client %d: %s", id, resp.Err)
			default:
				errs[slot] = fmt.Errorf("flnet: client %d sent %s, want train-result", id, resp.Type)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return updates, nil
}

func (s *Server) broadcastPersonalize(ids []int, global []float64) (map[int]float64, error) {
	accs := make(map[int]float64, len(ids))
	errs := make([]error, len(ids))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(slot, id int) {
			defer wg.Done()
			c := s.client(id)
			if c == nil {
				errs[slot] = fmt.Errorf("flnet: unknown client %d", id)
				return
			}
			if err := c.send(&Envelope{Type: MsgPersonalize, Global: global, ClientID: id}); err != nil {
				errs[slot] = err
				return
			}
			resp, err := c.recv()
			if err != nil {
				errs[slot] = err
				return
			}
			switch resp.Type {
			case MsgPersonalizeResult:
				mu.Lock()
				accs[id] = resp.Accuracy
				mu.Unlock()
			case MsgError:
				errs[slot] = fmt.Errorf("flnet: client %d: %s", id, resp.Err)
			default:
				errs[slot] = fmt.Errorf("flnet: client %d sent %s, want personalize-result", id, resp.Type)
			}
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return accs, nil
}

func (s *Server) client(id int) *conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[id]
}

func (s *Server) shutdownAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		_ = c.send(&Envelope{Type: MsgShutdown})
	}
}

func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.clients {
		_ = c.close()
		delete(s.clients, id)
	}
}
