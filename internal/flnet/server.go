package flnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"calibre/internal/fl"
	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/trace"
)

// ServerConfig configures a federated server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":9000" or "127.0.0.1:0".
	Addr string
	// NumClients is how many clients must join before training starts.
	// More clients may keep joining after the first round begins (late
	// joiners); they enter the sampling pool at the next round boundary.
	NumClients int
	// Rounds and ClientsPerRound mirror the simulator settings.
	Rounds          int
	ClientsPerRound int
	Seed            int64
	// Aggregator merges updates; InitGlobal produces the first vector.
	Aggregator fl.Aggregator
	InitGlobal func(rng *rand.Rand) (param.Vector, error)
	// IOTimeout bounds each network operation (default 2 minutes).
	IOTimeout time.Duration
	// UpdateWire is the update encoding advertised to clients at join-ack:
	// WireDelta (default) asks for lossless XOR-delta compressed updates,
	// WireDense for full vectors. The server accepts both forms regardless
	// — the knob shapes traffic, not correctness — and reconstruction is
	// bit-exact, so results are identical either way.
	UpdateWire UpdateWire

	// Quorum is the minimum number of client updates needed to close a
	// round at its deadline (K in K-of-N aggregation). 0 means every
	// participant must reply — the fully synchronous discipline.
	Quorum int
	// RoundDeadline bounds each round's collection window. 0 means wait
	// for every participant (synchronous). When the deadline expires with
	// at least Quorum updates the round closes and the missing
	// participants become stragglers, handled per Straggler; with fewer
	// updates the federation fails with fl.ErrQuorumNotMet.
	RoundDeadline time.Duration
	// Straggler is the fate of participants that miss the deadline:
	// requeue (default) keeps them in the federation, drop evicts them.
	Straggler fl.StragglerPolicy

	// Trace, when set, applies a seeded availability trace server-side:
	// each sampled participant is dropped from the round pre-dispatch with
	// probability Trace.DropProb(round, id), becoming a straggler (evicted
	// under StragglerDrop). Exactly one RNG draw is consumed per
	// participant and a round left below max(1, Quorum) available clients
	// fails with fl.ErrQuorumNotMet — no rescue draws — so a resumed
	// server can replay the stream from recorded pool sizes alone.
	Trace *fl.TraceConfig
	// Adversary is accounting-only: it names the seeded compromise trace
	// the federation's clients were launched under (same Seed, population
	// NumClients) so RoundStats.AdversarialUpdates and the obs plane can
	// attribute ingested updates. It does not alter server behavior —
	// defense lives in the Aggregator.
	Adversary *fl.Adversary

	// OnRound observes completed rounds.
	OnRound func(fl.RoundStats)
	// Obs, if non-nil, receives live observability for every completed
	// round: an obs.RoundSample carrying the straggler/quorum accounting
	// plus the uplink wire bytes actually received (delta-encoded size vs
	// the dense baseline), and per-client participation. Nil-safe and
	// side-effect-free on training.
	Obs *obs.Registry
	// Health, if non-nil, streams every completed round through the
	// anomaly detectors: per-client losses and update norms (measured
	// against the round's pre-aggregation global) feed the norm-z and
	// fairness rules, ingress rejections and stragglers feed the
	// per-client health scores, and the federation loss series feeds the
	// trend detectors. Purely observational — verdicts never alter
	// training — and warm-started from ResumeFrom's history on resume.
	Health *health.Monitor
	// OnAlert receives every alert the monitor raises, in round order,
	// from the round engine goroutine. Ignored when Health is nil.
	OnAlert func(health.Alert)
	// Recorder, if non-nil, receives the flight-recorder event stream:
	// round spans, per-client dispatch/update/drop events carrying client
	// IDs, wire encoding (dense/delta) and payload bytes, checkpoint and
	// resume marks. Every event is emitted from the single-goroutine
	// round engine in state-machine order, so even an injected
	// (non-thread-safe) trace.Clock is safe here. Purely observational:
	// a traced federation is bit-identical to a bare one (pinned by
	// TestTraceDoesNotPerturbNetRun).
	Recorder *trace.Recorder

	// OnCheckpoint, if set, receives a deep-copied fl.SimState after every
	// CheckpointEvery-th completed round and after the final round, before
	// OnRound fires — so a crash at any point finds the latest due round
	// persisted. A checkpoint error aborts the federation. The state
	// records the per-round sampling-pool sizes, which is what lets a
	// restarted server replay its RNG draws exactly even though join
	// timing and straggler business shaped the pool.
	OnCheckpoint func(*fl.SimState) error
	// CheckpointEvery is the round stride between checkpoints; ≤0 means
	// every round. Ignored unless OnCheckpoint is set.
	CheckpointEvery int
	// ResumeFrom, if non-nil, continues a checkpointed federation: once
	// NumClients have (re)joined, the round loop starts at
	// ResumeFrom.Round with the snapshot's global vector and history. A
	// federation in which every participant responds resumes
	// bit-identically to one that was never interrupted — provided the
	// method is stateless across rounds. An Aggregator declaring
	// fl.Stateful is refused at validation (fl.ErrStatefulResume);
	// trainer-side state lives in the client processes where this server
	// cannot see it, so the CLI layer (calibre-server), which builds the
	// full method, refuses stateful methods before configuring resume.
	ResumeFrom *fl.SimState
}

func (c *ServerConfig) validate() error {
	switch {
	case c.NumClients < 1:
		return errors.New("flnet: server needs ≥1 client")
	case c.Rounds < 1:
		return errors.New("flnet: rounds must be ≥1")
	case c.ClientsPerRound < 1:
		return errors.New("flnet: clientsPerRound must be ≥1")
	case c.Aggregator == nil:
		return errors.New("flnet: missing aggregator")
	case c.InitGlobal == nil:
		return errors.New("flnet: missing InitGlobal")
	case c.Quorum < 0:
		return errors.New("flnet: quorum must be ≥0")
	case c.Quorum > c.ClientsPerRound:
		return fmt.Errorf("flnet: quorum %d exceeds clientsPerRound %d", c.Quorum, c.ClientsPerRound)
	case c.RoundDeadline < 0:
		return errors.New("flnet: round deadline must be ≥0")
	}
	if _, err := fl.ParseStragglerPolicy(c.Straggler.String()); err != nil {
		return err
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if err := c.Adversary.Validate(); err != nil {
		return err
	}
	if c.ResumeFrom != nil {
		if s, ok := c.Aggregator.(fl.Stateful); ok && s.CarriesRoundState() {
			return fmt.Errorf("flnet: resume: aggregator %T: %w", c.Aggregator, fl.ErrStatefulResume)
		}
		if err := c.ResumeFrom.Validate(c.Rounds); err != nil {
			return fmt.Errorf("flnet: resume: %w", err)
		}
	}
	return nil
}

// Result is the outcome of a completed federation.
type Result struct {
	Global  param.Vector
	History []fl.RoundStats
	// Accuracies maps client ID to its personalized local test accuracy.
	// Clients evicted during training (StragglerDrop, connection failures)
	// are absent.
	Accuracies map[int]float64
}

// clientHandle is the engine's view of one connected client. A dedicated
// worker goroutine owns the connection: the engine pushes one request at a
// time into req and the worker delivers the matching reply (or a transport
// error) to the server's event stream. The engine never sends a second
// request before the first resolves, so req never blocks.
type clientHandle struct {
	id  int
	c   *conn
	req chan *Envelope
}

// event is what a client worker reports back to the round engine: a reply
// envelope, or a terminal transport error.
type event struct {
	id  int
	env *Envelope
	err error
}

// Server orchestrates federated rounds over TCP as an asynchronous round
// state machine; see doc.go for the protocol and round lifecycle.
type Server struct {
	cfg      ServerConfig
	listener net.Listener

	mu      sync.Mutex
	clients map[int]*clientHandle // roster: joined and not evicted
	closing bool                  // set by closeAll: no further joins

	events chan event    // replies and failures from client workers
	joined chan struct{} // edge-triggered join notification (cap 1)
	done   chan struct{} // closed when Run returns; releases workers
}

// NewServer validates the config and starts listening (so callers can read
// Addr before clients connect).
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 2 * time.Minute
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("flnet: listen %s: %w", cfg.Addr, err)
	}
	return &Server{
		cfg:      cfg,
		listener: ln,
		clients:  make(map[int]*clientHandle),
		events:   make(chan event, 64),
		joined:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.listener.Addr() }

// Joined returns the IDs currently in the roster, sorted. It is safe to
// call from OnRound callbacks and tests while the federation runs.
func (s *Server) Joined() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Run accepts clients, executes all rounds, runs the personalization stage
// on every surviving client, shuts clients down, and returns the results.
func (s *Server) Run(ctx context.Context) (*Result, error) {
	defer func() {
		s.listener.Close()
		s.closeAll()
		close(s.done)
	}()

	go s.acceptLoop()
	if err := s.awaitQuorumJoin(ctx); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(s.cfg.Seed))
	global, err := s.cfg.InitGlobal(rng)
	if err != nil {
		return nil, fmt.Errorf("flnet: init global: %w", err)
	}

	eng := &roundEngine{s: s, busy: make(map[int]int), decodeBuf: make(map[int]param.Vector), trace: s.cfg.Trace.Generator(s.cfg.Seed)}
	eng.rec = s.cfg.Recorder
	eng.now = func() int64 { return 0 }
	switch {
	case eng.rec != nil:
		eng.now = eng.rec.Now
	case s.cfg.Obs != nil:
		clockStart := time.Now()
		eng.now = func() int64 { return time.Since(clockStart).Nanoseconds() }
	}
	if reg := s.cfg.Obs; reg != nil {
		eng.histRound = reg.Histogram(obs.HistRoundLatency)
		eng.histTurn = reg.Histogram(obs.HistClientTurnaround)
	}
	if s.cfg.Adversary != nil {
		eng.malicious = make(map[int]bool)
		for _, id := range s.cfg.Adversary.Malicious(s.cfg.Seed, s.cfg.NumClients) {
			eng.malicious[id] = true
		}
	}
	history := make([]fl.RoundStats, 0, s.cfg.Rounds)
	startRound := 0
	if st := s.cfg.ResumeFrom; st != nil {
		if len(st.Global) != len(global) {
			return nil, fmt.Errorf("flnet: resume: checkpoint has %d params, InitGlobal produces %d", len(st.Global), len(global))
		}
		// Replay the completed rounds' sampling draws against the recorded
		// pool sizes so the master RNG is exactly where the checkpointed
		// run left it; then continue from the snapshot's state.
		for r := 0; r < st.Round; r++ {
			picks := fl.UniformSampler{}.Sample(rng, st.EligibleCounts[r], s.cfg.ClientsPerRound)
			// A traced round burned exactly one availability draw per
			// participant (no rescue draws by construction), so the replay
			// can reconstruct the stream from the pool sizes alone.
			if eng.trace != nil {
				for range picks {
					rng.Float64()
				}
			}
		}
		global = st.Global.Clone()
		history = append(history, st.History...)
		eng.eligibleCounts = append(eng.eligibleCounts, st.EligibleCounts...)
		startRound = st.Round
		eng.rec.Emit(trace.Event{Kind: trace.KindResume, TS: eng.now(), Runtime: "server",
			Round: startRound, Client: -1, N: len(s.Joined())})
		// Warm-start the health monitor from the checkpointed history so
		// its trend detectors carry the pre-crash loss/quorum series.
		if mon := s.cfg.Health; mon != nil {
			for _, h := range st.History {
				s.deliverAlerts(mon.ObserveRound(fl.HealthSample("server", h)))
			}
		}
	}
	for round := startRound; round < s.cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("flnet: round %d: %w", round, err)
		}
		stats, next, err := eng.runRound(ctx, rng, round, global)
		if err != nil {
			return nil, err
		}
		global = next
		history = append(history, stats)
		if s.cfg.OnCheckpoint != nil && fl.CheckpointDue(round+1, s.cfg.CheckpointEvery, s.cfg.Rounds) {
			st := &fl.SimState{Round: round + 1, Global: global, History: history, EligibleCounts: eng.eligibleCounts}
			if err := s.cfg.OnCheckpoint(st.Clone()); err != nil {
				return nil, fmt.Errorf("flnet: checkpoint after round %d: %w", round, err)
			}
			eng.rec.Emit(trace.Event{Kind: trace.KindCheckpointSave, TS: eng.now(), Runtime: "server",
				Round: round, Client: -1})
		}
		if s.cfg.OnRound != nil {
			s.cfg.OnRound(stats)
		}
	}

	if err := eng.drainStragglers(ctx); err != nil {
		return nil, err
	}
	accs, err := eng.personalizeAll(ctx, global)
	if err != nil {
		return nil, err
	}
	s.shutdownAll()
	return &Result{Global: global, History: history, Accuracies: accs}, nil
}

// acceptLoop admits clients for the whole federation lifetime, so late
// joiners can enter mid-training. It exits when the listener closes.
func (s *Server) acceptLoop() {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			return
		}
		go s.handleJoin(raw)
	}
}

// handleJoin performs the preamble exchange and join handshake on one
// fresh connection. Incompatible protocol versions, garbage connections
// (truncated or non-join first messages) and duplicate client IDs are
// rejected without disturbing the rest of the federation.
func (s *Server) handleJoin(raw net.Conn) {
	if err := writePreamble(raw, s.cfg.IOTimeout); err != nil {
		_ = raw.Close()
		return
	}
	if err := readPreamble(raw, s.cfg.IOTimeout); err != nil {
		// An incompatible or non-calibre peer: nothing more can be said on
		// a wire whose protocol it does not speak.
		_ = raw.Close()
		return
	}
	c := newConn(raw, s.cfg.IOTimeout)
	env, err := c.recv()
	if err != nil || env.Type != MsgJoin {
		_ = c.close()
		return
	}
	h := &clientHandle{id: env.ClientID, c: c, req: make(chan *Envelope, 1)}
	s.mu.Lock()
	if s.closing {
		// The federation is tearing down; a join registered now would
		// leave an orphaned connection nobody closes.
		s.mu.Unlock()
		_ = c.close()
		return
	}
	if _, dup := s.clients[env.ClientID]; dup {
		s.mu.Unlock()
		_ = c.send(&Envelope{Type: MsgError, Err: fmt.Sprintf("duplicate client id %d", env.ClientID)})
		_ = c.close()
		return
	}
	s.clients[env.ClientID] = h
	s.mu.Unlock()
	if err := c.send(&Envelope{Type: MsgJoinAck, ClientID: env.ClientID, Updates: s.cfg.UpdateWire}); err != nil {
		s.evict(env.ClientID)
		// The engine may already have dispatched to this roster entry (it
		// becomes eligible the moment it is inserted); with no worker ever
		// started, surface the failure so the round doesn't wait forever.
		s.report(event{id: env.ClientID, err: err})
		return
	}
	go s.serveClient(h)
	select {
	case s.joined <- struct{}{}:
	default:
	}
}

// serveClient is a client's worker goroutine: it owns all I/O on the
// connection, turning each engine request into exactly one send and (except
// for shutdown) one receive, delivered to the event stream.
func (s *Server) serveClient(h *clientHandle) {
	for {
		var req *Envelope
		select {
		case req = <-h.req:
		case <-s.done:
			return
		}
		if err := h.c.send(req); err != nil {
			s.report(event{id: h.id, err: err})
			return
		}
		resp, err := h.c.recv()
		if err != nil {
			s.report(event{id: h.id, err: err})
			return
		}
		s.report(event{id: h.id, env: resp})
	}
}

func (s *Server) report(ev event) {
	select {
	case s.events <- ev:
	case <-s.done:
	}
}

// awaitQuorumJoin blocks until NumClients have joined (or ctx expires).
func (s *Server) awaitQuorumJoin(ctx context.Context) error {
	for {
		if len(s.Joined()) >= s.cfg.NumClients {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("flnet: waiting for %d clients: %w", s.cfg.NumClients, ctx.Err())
		case <-s.joined:
		case <-time.After(50 * time.Millisecond):
			// Paranoia poll: joins are edge-triggered with a 1-slot
			// channel, so a burst can coalesce notifications.
		}
	}
}

func (s *Server) handle(id int) *clientHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.clients[id]
}

// evict removes a client from the roster and closes its connection. Its
// worker (if mid-receive) will surface a transport error event, which the
// engine ignores for evicted IDs.
func (s *Server) evict(id int) {
	s.mu.Lock()
	h := s.clients[id]
	delete(s.clients, id)
	s.mu.Unlock()
	if h != nil {
		_ = h.c.close()
	}
}

// shutdownAll writes shutdown directly on each connection. It runs only
// after the personalization stage resolved every in-flight request, so all
// workers are idle in <-req and no concurrent send can interleave.
func (s *Server) shutdownAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.clients {
		_ = h.c.send(&Envelope{Type: MsgShutdown})
	}
}

func (s *Server) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closing = true
	for id, h := range s.clients {
		_ = h.c.close()
		delete(s.clients, id)
	}
}

// roundEngine is the asynchronous round state machine. It is single-
// goroutine (driven by Server.Run); all concurrency lives in the per-client
// workers feeding s.events.
type roundEngine struct {
	s *Server
	// busy maps a client ID to the round of its in-flight train request.
	// Busy clients are not eligible for sampling; a requeued straggler
	// stays busy until its stale reply drains.
	busy map[int]int
	// decodeBuf holds one delta-decode buffer per client, reused across
	// rounds. Safe because a client has at most one in-flight update, its
	// previous decode is fully aggregated before the client is dispatched
	// again, and the aggregation plane neither mutates nor retains update
	// payloads (see fl/aggregate.go).
	decodeBuf map[int]param.Vector
	// eligibleCounts records each round's sampling-pool size (resume-
	// prefix included) — the replay data a restarted server needs to
	// reconstruct its RNG stream, carried into every checkpoint.
	eligibleCounts []int
	// trace is the seeded availability generator (nil without cfg.Trace).
	trace *fl.TraceGen
	// malicious is the accounting-only compromise set from cfg.Adversary.
	malicious map[int]bool
	// rec and now are the flight-recorder handle and span clock (see
	// ServerConfig.Recorder); histRound/histTurn the latency histograms.
	// The engine is single-goroutine, so emission order is state-machine
	// order by construction.
	rec                 *trace.Recorder
	now                 func() int64
	histRound, histTurn *obs.Histogram
}

// deliverAlerts fans one round's health alerts out to the OnAlert hook
// and folds them into the metrics plane's alert counters and suspect
// gauge (all nil-safe). Called from the round-engine goroutine only.
func (s *Server) deliverAlerts(alerts []health.Alert) {
	reg := s.cfg.Obs
	crit := 0
	for _, a := range alerts {
		if a.Severity == health.SevCrit {
			crit++
		}
		if s.cfg.OnAlert != nil {
			s.cfg.OnAlert(a)
		}
	}
	if len(alerts) > 0 {
		reg.Counter(obs.CounterHealthAlerts).Add(int64(len(alerts)))
		if crit > 0 {
			reg.Counter(obs.CounterHealthCritical).Add(int64(crit))
		}
	}
	reg.Gauge(obs.GaugeHealthSuspects).Set(int64(s.cfg.Health.SuspectCount()))
}

// eligible returns the sorted roster IDs with no in-flight request.
func (e *roundEngine) eligible() []int {
	all := e.s.Joined()
	ids := all[:0]
	for _, id := range all {
		if _, b := e.busy[id]; !b {
			ids = append(ids, id)
		}
	}
	return ids
}

// runRound dispatches one training round and collects updates until the
// round closes: either every participant replied, or the deadline expired
// with at least a quorum of updates. Updates are streamed into the
// aggregate in canonical participant order as they become contiguous, so
// payloads are not buffered beyond reordering needs.
func (e *roundEngine) runRound(ctx context.Context, rng *rand.Rand, round int, global param.Vector) (fl.RoundStats, param.Vector, error) {
	s := e.s
	stats := fl.RoundStats{Round: round}
	roundStart := time.Now()
	// Uplink accounting (engine is single-goroutine, plain ints suffice):
	// bytes as received on the wire vs. the dense-encoding baseline.
	var wireBytes, denseBytes int64

	eligible := e.eligible()
	if len(eligible) == 0 {
		return stats, nil, fmt.Errorf("flnet: round %d: no eligible clients", round)
	}
	e.eligibleCounts = append(e.eligibleCounts, len(eligible))
	picks := fl.UniformSampler{}.Sample(rng, len(eligible), s.cfg.ClientsPerRound)
	participants := make([]int, len(picks))
	for i, p := range picks {
		participants[i] = eligible[p]
	}
	stats.Participants = participants
	if e.now == nil {
		e.now = func() int64 { return 0 }
	}
	tsRound := e.now()
	e.rec.Emit(trace.Event{Kind: trace.KindRoundStart, TS: tsRound, Runtime: "server",
		Round: round, Client: -1, N: len(participants)})

	// Guard the K-of-N contract: a round that cannot possibly reach the
	// configured quorum must fail rather than silently aggregate fewer
	// updates. (Unreachable in normal operation — every successful round
	// frees at least Quorum responders, and Quorum ≤ ClientsPerRound is
	// validated — but cheap insurance against invariant drift.)
	if s.cfg.Quorum > 0 && len(participants) < s.cfg.Quorum {
		return stats, nil, fmt.Errorf("flnet: round %d: only %d eligible participants for quorum %d: %w",
			round, len(participants), s.cfg.Quorum, fl.ErrQuorumNotMet)
	}
	// Trace pre-dispatch drops: exactly one seeded draw per participant in
	// slot order, never a rescue draw, so a resumed server can burn the
	// identical stream knowing only the recorded pool sizes. A dropped
	// participant becomes a straggler without ever seeing the request
	// (evicted under StragglerDrop); a round left below max(1, Quorum)
	// available clients fails rather than clamping.
	skipped := make([]bool, len(participants)) // straggler or failed slots
	nTraceDrops := 0
	if e.trace != nil {
		for slot, id := range participants {
			if rng.Float64() < e.trace.DropProb(round, id) {
				skipped[slot] = true
				nTraceDrops++
				stats.Stragglers = append(stats.Stragglers, id)
				e.rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: e.now(), Runtime: "server",
					Round: round, Client: id, Reason: trace.DropTrace})
				if s.cfg.Straggler == fl.StragglerDrop {
					s.evict(id)
				}
			}
		}
		floor := s.cfg.Quorum
		if floor < 1 {
			floor = 1
		}
		if len(participants)-nTraceDrops < floor {
			return stats, nil, fmt.Errorf("flnet: round %d: availability trace dropped %d of %d participants; need %d: %w",
				round, nTraceDrops, len(participants), floor, fl.ErrQuorumNotMet)
		}
	}
	quorum := s.cfg.Quorum
	if quorum == 0 {
		quorum = len(participants) - nTraceDrops
	}

	// Dispatch. Workers are idle (we only sample non-busy clients), so the
	// 1-slot request channels never block.
	slotOf := make(map[int]int, len(participants))
	dispatchTS := make([]int64, len(participants))
	for slot, id := range participants {
		slotOf[id] = slot
		if skipped[slot] {
			continue
		}
		h := s.handle(id)
		if h == nil {
			return stats, nil, fmt.Errorf("flnet: round %d: client %d vanished before dispatch", round, id)
		}
		dispatchTS[slot] = e.now()
		e.rec.Emit(trace.Event{Kind: trace.KindClientDispatch, TS: dispatchTS[slot], Runtime: "server",
			Round: round, Client: id})
		h.req <- &Envelope{Type: MsgTrain, Round: round, Global: global, ClientID: id}
		e.busy[id] = round
	}

	// Collect.
	sink := fl.NewRoundSink(s.cfg.Aggregator, global)
	var (
		pending   = make(map[int]*fl.Update) // slot → update awaiting its turn
		arrived   = make([]bool, len(participants))
		cursor    = 0
		nArrived  = 0
		nSkipped  = nTraceDrops
		lossSum   float64
		nIngested = 0
	)
	// Per-slot loss/norm capture for the health plane (and the trace's
	// norm stamp). Norms are measured at ingress against this round's
	// pre-aggregation global — the update the client actually shipped —
	// before the aggregate can dilute the attack signal.
	healthOn := s.cfg.Health != nil
	normOn := healthOn || e.rec != nil
	var lossEach, normEach []float64
	var rejectedIDs []int
	if normOn {
		normEach = make([]float64, len(participants))
		lossEach = make([]float64, len(participants))
	}
	ingest := func() error {
		for cursor < len(participants) {
			if skipped[cursor] {
				cursor++
				continue
			}
			u, ok := pending[cursor]
			if !ok {
				break
			}
			if err := sink.Ingest(u); err != nil {
				return fmt.Errorf("flnet: aggregate round %d: %w", round, err)
			}
			lossSum += u.TrainLoss
			nIngested++
			delete(pending, cursor)
			cursor++
		}
		return nil
	}
	var deadlineC <-chan time.Time
	if s.cfg.RoundDeadline > 0 {
		timer := time.NewTimer(s.cfg.RoundDeadline)
		defer timer.Stop()
		deadlineC = timer.C
	}

	// skipParticipant handles every way a client fails out of the round
	// (transport error, client-reported error, protocol violation): it is
	// evicted, and — when the failure belongs to this round rather than a
	// requeued straggler's stale reply — its slot is skipped, with the
	// round failing if the quorum became unreachable. A non-nil return is
	// fatal to the federation.
	skipParticipant := func(id, reqRound int, cause string) error {
		delete(e.busy, id)
		delete(e.decodeBuf, id)
		s.evict(id)
		slot, inRound := slotOf[id]
		if !inRound || reqRound != round || arrived[slot] || skipped[slot] {
			return nil // stale misbehavior: evicted, round unaffected
		}
		skipped[slot] = true
		nSkipped++
		stats.Stragglers = append(stats.Stragglers, id)
		// Attribute the drop: an ingress rejection from a client in the
		// seeded compromise set is the attack surfacing, not an accident.
		reason := trace.DropRejected
		if e.malicious[id] {
			reason = trace.DropAdversarial
		}
		rejectedIDs = append(rejectedIDs, id)
		e.rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: e.now(), Runtime: "server",
			Round: round, Client: id, Reason: reason, Note: cause})
		if len(participants)-nSkipped < quorum {
			return fmt.Errorf("flnet: round %d: client %d %s; need %d of %d participants: %w",
				round, id, cause, quorum, len(participants), fl.ErrQuorumNotMet)
		}
		return ingest()
	}

	for nArrived+nSkipped < len(participants) {
		select {
		case <-ctx.Done():
			return stats, nil, fmt.Errorf("flnet: round %d: %w", round, ctx.Err())

		case ev := <-s.events:
			reqRound, wasBusy := e.busy[ev.id]
			if !wasBusy {
				continue // event from an already-evicted client
			}
			var err error
			switch {
			case ev.err != nil:
				err = skipParticipant(ev.id, reqRound, fmt.Sprintf("failed (%v)", ev.err))
			case ev.env.Type == MsgTrainResult:
				delete(e.busy, ev.id) // idle again, whatever round it was for
				if reqRound != round {
					// A straggler's stale reply drained during this round's
					// window: discard it, the client re-enters the pool.
					stats.LateUpdates++
					continue
				}
				u := ev.env.Update
				if u == nil {
					err = skipParticipant(ev.id, reqRound, "sent train-result without an update")
					break
				}
				// Account wire bytes before Resolve clears the delta; the
				// payload did cross the uplink whether or not it validates.
				wire, wireCost := "dense", int64(8*len(u.Params))
				if u.Delta != nil {
					wire, wireCost = "delta", int64(u.Delta.Size())
					wireBytes += wireCost
					denseBytes += int64(u.Delta.DenseSize())
				} else {
					wireBytes += wireCost
					denseBytes += wireCost
				}
				// Ingress validation: materialize a delta payload against
				// this round's global and length-check everything before the
				// update can reach the aggregate. A client shipping a
				// wrong-sized or corrupt payload is evicted like any other
				// failed participant (typed fl.ErrUpdateSize in the cause)
				// instead of panicking the aggregator; the round survives
				// whenever the configured quorum still can.
				wasDelta := u.Delta != nil
				if rerr := u.ResolveInto(global, e.decodeBuf[ev.id]); rerr != nil {
					err = skipParticipant(ev.id, reqRound, fmt.Sprintf("rejected (%v)", rerr))
					break
				}
				if wasDelta {
					// Adopt the decoded vector as the client's buffer for its
					// next round (first decode allocates, later ones reuse).
					e.decodeBuf[ev.id] = u.Params
				}
				slot := slotOf[ev.id]
				pending[slot] = u
				arrived[slot] = true
				nArrived++
				if normOn {
					normEach[slot] = param.L2Dist(u.Params, global)
					lossEach[slot] = u.TrainLoss
				}
				tsDone := e.now()
				e.histTurn.Observe(tsDone - dispatchTS[slot])
				ev2 := trace.Event{Kind: trace.KindClientUpdate, TS: tsDone, Runtime: "server",
					Round: round, Client: ev.id, Wire: wire, Bytes: wireCost,
					Dur: tsDone - dispatchTS[slot], Loss: u.TrainLoss}
				if normOn {
					ev2.Norm = normEach[slot]
				}
				e.rec.Emit(ev2)
				err = ingest()
			case ev.env.Type == MsgError:
				err = skipParticipant(ev.id, reqRound, fmt.Sprintf("reported %q", ev.env.Err))
			default:
				err = skipParticipant(ev.id, reqRound, fmt.Sprintf("sent %s, want train-result", ev.env.Type))
			}
			if err != nil {
				return stats, nil, err
			}

		case <-deadlineC:
			if nArrived < quorum {
				return stats, nil, fmt.Errorf("flnet: round %d deadline (%s) with %d/%d updates: %w",
					round, s.cfg.RoundDeadline, nArrived, quorum, fl.ErrQuorumNotMet)
			}
			// Quorum met: everyone unresolved becomes a straggler.
			stats.DeadlineExpired = true
			for slot, id := range participants {
				if arrived[slot] || skipped[slot] {
					continue
				}
				skipped[slot] = true
				nSkipped++
				stats.Stragglers = append(stats.Stragglers, id)
				e.rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: e.now(), Runtime: "server",
					Round: round, Client: id, Reason: trace.DropStraggler})
				if s.cfg.Straggler == fl.StragglerDrop {
					delete(e.busy, id)
					s.evict(id)
				}
				// Under requeue the client stays busy until its stale
				// reply drains through a later round's collection window.
			}
		}
	}

	if err := ingest(); err != nil {
		return stats, nil, err
	}
	next, err := sink.Finish()
	if err != nil {
		return stats, nil, fmt.Errorf("flnet: aggregate round %d: %w", round, err)
	}
	if nIngested > 0 {
		stats.MeanLoss = lossSum / float64(nIngested)
	}
	if nSkipped > 0 {
		responders := make([]int, 0, nArrived)
		for slot, id := range participants {
			if arrived[slot] {
				responders = append(responders, id)
			}
		}
		stats.Responders = responders
		sort.Ints(stats.Stragglers)
	}
	for slot, id := range participants {
		if arrived[slot] && e.malicious[id] {
			stats.AdversarialUpdates++
		}
	}
	if ra, ok := s.cfg.Aggregator.(fl.RobustAggregator); ok {
		stats.RejectedUpdates = ra.Rejected(nIngested)
	}
	if reg := s.cfg.Obs; reg != nil || healthOn {
		respIDs := participants
		if nSkipped > 0 {
			respIDs = stats.Responders
		}
		sample := obs.RoundSample{
			Runtime:            "server",
			Round:              round,
			Participants:       len(participants),
			Responders:         nArrived,
			Stragglers:         nSkipped,
			LateUpdates:        stats.LateUpdates,
			DeadlineExpired:    stats.DeadlineExpired,
			AdversarialUpdates: stats.AdversarialUpdates,
			RejectedUpdates:    stats.RejectedUpdates,
			MeanLoss:           stats.MeanLoss,
			UplinkWireBytes:    wireBytes,
			UplinkDenseBytes:   denseBytes,
			DurationMS:         time.Since(roundStart).Milliseconds(),
		}
		if healthOn {
			clients := make([]obs.ClientSample, 0, nArrived)
			for slot, id := range participants {
				if arrived[slot] {
					clients = append(clients, obs.ClientSample{ID: id, Loss: lossEach[slot], Norm: normEach[slot]})
				}
			}
			sort.Ints(rejectedIDs)
			sample.Clients = clients
			sample.StragglerIDs = stats.Stragglers
			sample.RejectedIDs = rejectedIDs
		}
		reg.ObserveRound(sample)
		reg.AddParticipation(respIDs)
		if healthOn {
			s.deliverAlerts(s.cfg.Health.ObserveRound(sample))
		}
	}
	tsEnd := e.now()
	e.histRound.Observe(tsEnd - tsRound)
	e.rec.Emit(trace.Event{Kind: trace.KindRoundEnd, TS: tsEnd, Runtime: "server",
		Round: round, Client: -1, N: nArrived, Dur: tsEnd - tsRound, Loss: stats.MeanLoss})
	return stats, next, nil
}

// drainStragglers waits for requeued stragglers' stale replies (bounded by
// the connection IOTimeout) so the personalization stage starts with a
// quiet wire. Clients that never drain are evicted.
func (e *roundEngine) drainStragglers(ctx context.Context) error {
	s := e.s
	if len(e.busy) == 0 {
		return nil
	}
	grace := time.NewTimer(s.cfg.IOTimeout + 5*time.Second)
	defer grace.Stop()
	for len(e.busy) > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("flnet: draining stragglers: %w", ctx.Err())
		case ev := <-s.events:
			if _, wasBusy := e.busy[ev.id]; !wasBusy {
				continue
			}
			delete(e.busy, ev.id)
			if ev.err != nil {
				s.evict(ev.id)
			}
		case <-grace.C:
			for id := range e.busy {
				delete(e.busy, id)
				s.evict(id)
			}
		}
	}
	return nil
}

// personalizeAll runs the personalization stage on every surviving client.
func (e *roundEngine) personalizeAll(ctx context.Context, global param.Vector) (map[int]float64, error) {
	s := e.s
	ids := s.Joined()
	accs := make(map[int]float64, len(ids))
	outstanding := make(map[int]bool, len(ids))
	for _, id := range ids {
		h := s.handle(id)
		if h == nil {
			continue
		}
		h.req <- &Envelope{Type: MsgPersonalize, Global: global, ClientID: id}
		outstanding[id] = true
	}
	for len(outstanding) > 0 {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("flnet: personalize: %w", ctx.Err())
		case ev := <-s.events:
			if !outstanding[ev.id] {
				continue
			}
			delete(outstanding, ev.id)
			if ev.err != nil {
				return nil, fmt.Errorf("flnet: personalize client %d: %w", ev.id, ev.err)
			}
			switch ev.env.Type {
			case MsgPersonalizeResult:
				accs[ev.id] = ev.env.Accuracy
			case MsgError:
				return nil, fmt.Errorf("flnet: personalize client %d: %s", ev.id, ev.env.Err)
			default:
				return nil, fmt.Errorf("flnet: client %d sent %s, want personalize-result", ev.id, ev.env.Type)
			}
		}
	}
	return accs, nil
}
