package flnet

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"calibre/internal/baselines"
	"calibre/internal/fl"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

// runSSLFederation spins up a server and n concurrently-connected clients
// training a real SSL-based method, with the shared tensor kernel pool
// pinned to `workers`, and returns the final global vector and accuracies.
// opts may mutate the server config before it starts (e.g. to enable
// quorum/deadline aggregation).
func runSSLFederation(t *testing.T, workers, n, rounds int, opts ...func(*ServerConfig)) *Result {
	t.Helper()
	tensor.SetWorkers(workers)
	t.Cleanup(func() { tensor.SetWorkers(0) })

	clients := netClients(t, n)
	arch := ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
	cfg := baselines.DefaultConfig(arch, 10)
	cfg.Train.Epochs = 1
	cfg.Train.BatchSize = 16
	cfg.Head.Epochs = 2
	method := baselines.NewFedAvg(cfg)

	scfg := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: n, Rounds: rounds, ClientsPerRound: n, Seed: 5,
		Aggregator: method.Aggregator,
		InitGlobal: method.InitGlobal,
		IOTimeout:  30 * time.Second,
	}
	for _, opt := range opts {
		opt(&scfg)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         clients[id],
				Trainer:      method.Trainer,
				Personalizer: method.Personalizer,
				Seed:         5,
				IOTimeout:    30 * time.Second,
			})
		}(i)
	}
	res, err := srv.Run(ctx)
	wg.Wait()
	if err != nil {
		t.Fatalf("server Run: %v", err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	return res
}

// TestFederationParallelKernelsOverTCP is the end-to-end integration gate
// for the parallel linear-algebra core: several clients train concurrently
// over real TCP connections while the shared kernel pool runs multi-worker.
// Under -race (ci.sh runs the whole suite that way) this exercises the
// pool, the per-connection server goroutines and the trainers together.
// The kernels' determinism guarantee makes the result comparable bit for
// bit with a single-worker run of the identical federation.
func TestFederationParallelKernelsOverTCP(t *testing.T) {
	parallel := runSSLFederation(t, 3, 4, 2)
	serial := runSSLFederation(t, 1, 4, 2)

	if len(parallel.Global) == 0 || len(parallel.Global) != len(serial.Global) {
		t.Fatalf("global lengths: parallel=%d serial=%d", len(parallel.Global), len(serial.Global))
	}
	for i := range parallel.Global {
		if math.Float64bits(parallel.Global[i]) != math.Float64bits(serial.Global[i]) {
			t.Fatalf("global[%d] differs across worker counts: %x vs %x",
				i, parallel.Global[i], serial.Global[i])
		}
	}
	if len(parallel.Accuracies) != 4 {
		t.Fatalf("accuracies = %v", parallel.Accuracies)
	}
	for id, acc := range parallel.Accuracies {
		if acc != serial.Accuracies[id] {
			t.Fatalf("accuracy[%d] differs across worker counts: %v vs %v", id, acc, serial.Accuracies[id])
		}
	}
}

// TestSimulatorKernelWorkersKnob checks the fl.SimConfig wiring: a
// simulation with KernelWorkers set resizes the shared pool and still
// produces the same result as the serial configuration.
func TestSimulatorKernelWorkersKnob(t *testing.T) {
	t.Cleanup(func() { tensor.SetWorkers(0) })
	clients := netClients(t, 3)
	arch := ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}

	runSim := func(kernelWorkers int) []float64 {
		cfg := baselines.DefaultConfig(arch, 10)
		cfg.Train.Epochs = 1
		cfg.Train.BatchSize = 16
		method := baselines.NewFedAvg(cfg)
		sim, err := fl.NewSimulator(fl.SimConfig{
			Rounds: 2, ClientsPerRound: 2, Seed: 9, Parallelism: 2, KernelWorkers: kernelWorkers,
		}, method, clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		global, _, err := sim.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return global
	}
	serial := runSim(1)
	parallel := runSim(3)
	if tensor.Workers() != 3 {
		t.Fatalf("Workers() = %d after KernelWorkers=3 run, want 3", tensor.Workers())
	}
	if len(serial) != len(parallel) {
		t.Fatalf("global lengths %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if math.Float64bits(serial[i]) != math.Float64bits(parallel[i]) {
			t.Fatalf("global[%d] differs across kernel worker counts", i)
		}
	}
}
