package flnet

import (
	"context"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"calibre/internal/fl"
	"calibre/internal/param"
)

// startServer launches srv.Run on a goroutine and returns a channel with
// its outcome.
type srvOutcome struct {
	res *Result
	err error
}

func startServer(ctx context.Context, srv *Server) <-chan srvOutcome {
	ch := make(chan srvOutcome, 1)
	go func() {
		res, err := srv.Run(ctx)
		ch <- srvOutcome{res, err}
	}()
	return ch
}

// TestAsyncBitIdenticalToSync is the tentpole determinism gate: a
// federation configured for quorum aggregation (K-of-N, per-round deadline)
// in which every client responds within the deadline must produce the
// bit-exact global vector and accuracies of the fully synchronous
// configuration.
func TestAsyncBitIdenticalToSync(t *testing.T) {
	sync := runSSLFederation(t, 2, 4, 2)
	async := runSSLFederation(t, 2, 4, 2, func(cfg *ServerConfig) {
		cfg.Quorum = 2
		cfg.RoundDeadline = 60 * time.Second
		cfg.Straggler = fl.StragglerRequeue
	})

	if len(async.Global) == 0 || len(async.Global) != len(sync.Global) {
		t.Fatalf("global lengths: async=%d sync=%d", len(async.Global), len(sync.Global))
	}
	for i := range async.Global {
		if math.Float64bits(async.Global[i]) != math.Float64bits(sync.Global[i]) {
			t.Fatalf("global[%d] differs between async and sync paths: %x vs %x",
				i, async.Global[i], sync.Global[i])
		}
	}
	if len(async.Accuracies) != len(sync.Accuracies) {
		t.Fatalf("accuracies: async=%v sync=%v", async.Accuracies, sync.Accuracies)
	}
	for id, acc := range async.Accuracies {
		if acc != sync.Accuracies[id] {
			t.Fatalf("accuracy[%d] differs: %v vs %v", id, acc, sync.Accuracies[id])
		}
	}
	for r, h := range async.History {
		if h.DeadlineExpired || len(h.Stragglers) != 0 || h.Responders != nil {
			t.Fatalf("round %d should be a clean synchronous round, got %+v", r, h)
		}
	}
}

// asyncFederation runs a small addOne federation where latency[id] delays
// client id's round-0 local update, returning server outcome, per-client
// errors and the history.
func asyncFederation(t *testing.T, cfg ServerConfig, n int, latency map[int]time.Duration, everyRound bool) (srvOutcome, []error) {
	t.Helper()
	clients := netClients(t, n)
	cfg.Addr = "127.0.0.1:0"
	cfg.NumClients = n
	cfg.Seed = 7
	cfg.Aggregator = fl.WeightedAverage{}
	cfg.InitGlobal = func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil }
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 20 * time.Second
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	ch := startServer(ctx, srv)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var lat func(int) time.Duration
			if d, ok := latency[id]; ok {
				lat = func(round int) time.Duration {
					if everyRound || round == 0 {
						return d
					}
					return 0
				}
			}
			errs[id] = RunClient(ctx, ClientConfig{
				Addr:         srv.Addr().String(),
				ClientID:     id,
				Data:         clients[id],
				Trainer:      addOneTrainer{},
				Personalizer: idPersonalizer{},
				Seed:         7,
				IOTimeout:    20 * time.Second,
				SimLatency:   lat,
			})
		}(i)
	}
	out := <-ch
	wg.Wait()
	return out, errs
}

// TestDeadlineQuorumMetRequeue drives the straggler happy path: one client
// sleeps through round 0's deadline, the round closes on the 2-of-3 quorum,
// the straggler's late reply is drained and accounted, and the client is
// re-sampled in a later round and personalized at the end.
func TestDeadlineQuorumMetRequeue(t *testing.T) {
	slept := make(chan struct{}, 1)
	cfg := ServerConfig{
		Rounds: 3, ClientsPerRound: 3,
		Quorum: 2, RoundDeadline: 300 * time.Millisecond, Straggler: fl.StragglerRequeue,
		OnRound: func(stats fl.RoundStats) {
			if stats.Round == 0 {
				// Hold the round boundary until the straggler's stale
				// reply is in flight, so round 1 deterministically
				// observes it as a late update.
				select {
				case <-slept:
				case <-time.After(20 * time.Second):
				}
				time.Sleep(200 * time.Millisecond)
			}
		},
	}
	// Client 2 sleeps 1.5s in round 0 (signalling when done), well past the
	// 300ms deadline.
	done := srvOutcome{}
	var errs []error
	func() {
		clientsLat := map[int]time.Duration{2: 1500 * time.Millisecond}
		go func() {
			time.Sleep(1600 * time.Millisecond)
			slept <- struct{}{}
		}()
		done, errs = asyncFederation(t, cfg, 3, clientsLat, false)
	}()
	if done.err != nil {
		t.Fatalf("server Run: %v", done.err)
	}
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	hist := done.res.History
	if len(hist) != 3 {
		t.Fatalf("history = %d rounds", len(hist))
	}
	r0 := hist[0]
	if !r0.DeadlineExpired {
		t.Fatalf("round 0 should close by deadline: %+v", r0)
	}
	if len(r0.Stragglers) != 1 || r0.Stragglers[0] != 2 {
		t.Fatalf("round 0 stragglers = %v, want [2]", r0.Stragglers)
	}
	if len(r0.Responders) != 2 || r0.Responders[0] != 0 || r0.Responders[1] != 1 {
		t.Fatalf("round 0 responders = %v, want [0 1]", r0.Responders)
	}
	if hist[1].LateUpdates != 1 {
		t.Fatalf("round 1 late updates = %d, want 1 (straggler's stale reply)", hist[1].LateUpdates)
	}
	if len(hist[1].Participants) != 2 {
		t.Fatalf("round 1 should sample around the busy straggler, got %v", hist[1].Participants)
	}
	if len(hist[2].Participants) != 3 {
		t.Fatalf("round 2 should re-sample the requeued straggler, got %v", hist[2].Participants)
	}
	if len(done.res.Accuracies) != 3 {
		t.Fatalf("requeued straggler must be personalized: %v", done.res.Accuracies)
	}
}

// TestDeadlineQuorumNotMetFails pins the failure mode: if a round's
// deadline expires with fewer than Quorum updates the federation aborts
// with fl.ErrQuorumNotMet.
func TestDeadlineQuorumNotMetFails(t *testing.T) {
	cfg := ServerConfig{
		Rounds: 2, ClientsPerRound: 2,
		Quorum: 2, RoundDeadline: 200 * time.Millisecond, Straggler: fl.StragglerRequeue,
	}
	done, _ := asyncFederation(t, cfg, 2, map[int]time.Duration{
		0: 1500 * time.Millisecond,
		1: 1500 * time.Millisecond,
	}, false)
	if done.err == nil {
		t.Fatal("deadline with zero updates should fail the federation")
	}
	if !errors.Is(done.err, fl.ErrQuorumNotMet) {
		t.Fatalf("err = %v, want fl.ErrQuorumNotMet", done.err)
	}
}

// TestStragglerDropEvicts verifies the drop policy: a deadline straggler is
// evicted, never re-sampled, and absent from the personalization results.
func TestStragglerDropEvicts(t *testing.T) {
	cfg := ServerConfig{
		Rounds: 3, ClientsPerRound: 3,
		Quorum: 2, RoundDeadline: 300 * time.Millisecond, Straggler: fl.StragglerDrop,
	}
	done, errs := asyncFederation(t, cfg, 3, map[int]time.Duration{2: 2 * time.Second}, true)
	if done.err != nil {
		t.Fatalf("server Run: %v", done.err)
	}
	for id, err := range errs[:2] {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	if errs[2] == nil {
		t.Fatal("dropped straggler should see its connection fail")
	}
	hist := done.res.History
	if len(hist[0].Stragglers) != 1 || hist[0].Stragglers[0] != 2 {
		t.Fatalf("round 0 stragglers = %v, want [2]", hist[0].Stragglers)
	}
	for _, h := range hist[1:] {
		for _, id := range h.Participants {
			if id == 2 {
				t.Fatalf("round %d re-sampled the evicted client: %v", h.Round, h.Participants)
			}
		}
	}
	if len(done.res.Accuracies) != 2 {
		t.Fatalf("accuracies = %v, want clients 0 and 1 only", done.res.Accuracies)
	}
	if _, ok := done.res.Accuracies[2]; ok {
		t.Fatal("evicted client must not be personalized")
	}
}

// TestLateJoinerEntersFederation: a client that joins after training begins
// becomes sampleable at the next round boundary and takes part in the
// personalization stage.
func TestLateJoinerEntersFederation(t *testing.T) {
	clients := netClients(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var srv *Server
	var wg sync.WaitGroup
	errs := make([]error, 3)
	runOne := func(id int) {
		defer wg.Done()
		errs[id] = RunClient(ctx, ClientConfig{
			Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
			Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
			Seed: 7, IOTimeout: 20 * time.Second,
		})
	}
	var joinOnce sync.Once
	srvCfg := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 2, Rounds: 4, ClientsPerRound: 3, Seed: 7,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 4), nil },
		IOTimeout:  20 * time.Second,
		OnRound: func(stats fl.RoundStats) {
			// After round 0, admit a third client and block the round
			// boundary until its join lands, so round 1 sees it.
			joinOnce.Do(func() {
				wg.Add(1)
				go runOne(2)
				deadline := time.Now().Add(20 * time.Second)
				for len(srv.Joined()) < 3 && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}
			})
		},
	}
	var err error
	srv, err = NewServer(srvCfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ch := startServer(ctx, srv)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go runOne(i)
	}
	out := <-ch
	wg.Wait()
	if out.err != nil {
		t.Fatalf("server Run: %v", out.err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	if len(out.res.History[0].Participants) != 2 {
		t.Fatalf("round 0 participants = %v, want the two founders", out.res.History[0].Participants)
	}
	if got := out.res.History[1].Participants; len(got) != 3 {
		t.Fatalf("round 1 should include the late joiner, got %v", got)
	}
	if len(out.res.Accuracies) != 3 {
		t.Fatalf("late joiner must be personalized: %v", out.res.Accuracies)
	}
}

// rawClient speaks the gob wire protocol by hand so tests can misbehave in
// controlled ways.
type rawClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func dialRaw(t *testing.T, addr string) *rawClient {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := writePreamble(conn, 5*time.Second); err != nil {
		t.Fatalf("raw preamble write: %v", err)
	}
	if err := readPreamble(conn, 5*time.Second); err != nil {
		t.Fatalf("raw preamble read: %v", err)
	}
	return &rawClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (r *rawClient) send(t *testing.T, e *Envelope) {
	t.Helper()
	if err := r.enc.Encode(e); err != nil {
		t.Fatalf("raw send: %v", err)
	}
}

func (r *rawClient) recv(t *testing.T) *Envelope {
	t.Helper()
	var e Envelope
	if err := r.dec.Decode(&e); err != nil {
		t.Fatalf("raw recv: %v", err)
	}
	return &e
}

// TestTruncatedJoinStreamTolerated: connections that send a truncated gob
// message (or garbage) during the handshake are dropped without harming the
// federation, which completes with the well-behaved client.
func TestTruncatedJoinStreamTolerated(t *testing.T) {
	clients := netClients(t, 1)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 1, Seed: 3,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 2), nil },
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch := startServer(ctx, srv)

	// A truncated gob stream: a few bytes of what would be a join message,
	// then a hard close mid-value.
	junk, err := net.DialTimeout("tcp", srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial junk: %v", err)
	}
	if _, err := junk.Write([]byte{0x1f, 0xff, 0x83, 0x03}); err != nil {
		t.Fatalf("write junk: %v", err)
	}
	_ = junk.Close()

	// A structurally valid gob message of the wrong type is also rejected.
	wrong := dialRaw(t, srv.Addr().String())
	wrong.send(t, &Envelope{Type: MsgTrainResult, ClientID: 9})
	_ = wrong.conn.Close()

	cerr := RunClient(ctx, ClientConfig{
		Addr: srv.Addr().String(), ClientID: 0, Data: clients[0],
		Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
		Seed: 3, IOTimeout: 10 * time.Second,
	})
	out := <-ch
	if out.err != nil {
		t.Fatalf("server should survive junk handshakes, got %v", out.err)
	}
	if cerr != nil {
		t.Fatalf("client: %v", cerr)
	}
	if len(out.res.Accuracies) != 1 {
		t.Fatalf("accuracies = %v", out.res.Accuracies)
	}
}

// TestDisconnectMidRoundSync: in the synchronous discipline (no quorum) a
// participant vanishing mid-round is fatal, preserving the historical
// all-or-nothing contract.
func TestDisconnectMidRoundSync(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 1, Seed: 3,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 2), nil },
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch := startServer(ctx, srv)

	rc := dialRaw(t, srv.Addr().String())
	rc.send(t, &Envelope{Type: MsgJoin, ClientID: 0})
	if ack := rc.recv(t); ack.Type != MsgJoinAck {
		t.Fatalf("ack = %v", ack.Type)
	}
	if train := rc.recv(t); train.Type != MsgTrain {
		t.Fatalf("train = %v", train.Type)
	}
	_ = rc.conn.Close() // vanish mid-round

	out := <-ch
	if out.err == nil {
		t.Fatal("synchronous round should fail when its only participant disconnects")
	}
	if !errors.Is(out.err, fl.ErrQuorumNotMet) {
		t.Fatalf("err = %v, want fl.ErrQuorumNotMet", out.err)
	}
}

// TestDisconnectMidRoundQuorumTolerated: with K-of-N aggregation a
// participant's mid-round crash just evicts it; the survivors close the
// round and finish the federation.
func TestDisconnectMidRoundQuorumTolerated(t *testing.T) {
	clients := netClients(t, 3)
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 3, Rounds: 2, ClientsPerRound: 3, Seed: 3,
		Quorum: 2, RoundDeadline: 10 * time.Second, Straggler: fl.StragglerRequeue,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return make([]float64, 2), nil },
		IOTimeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ch := startServer(ctx, srv)

	// Client 2 is a hand-rolled deserter: it joins, accepts the round-0
	// training request, then drops the connection.
	deserter := make(chan struct{})
	go func() {
		defer close(deserter)
		rc := dialRaw(t, srv.Addr().String())
		rc.send(t, &Envelope{Type: MsgJoin, ClientID: 2})
		rc.recv(t) // ack
		rc.recv(t) // train
		_ = rc.conn.Close()
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(ctx, ClientConfig{
				Addr: srv.Addr().String(), ClientID: id, Data: clients[id],
				Trainer: addOneTrainer{}, Personalizer: idPersonalizer{},
				Seed: 3, IOTimeout: 10 * time.Second,
			})
		}(i)
	}
	out := <-ch
	wg.Wait()
	<-deserter
	if out.err != nil {
		t.Fatalf("quorum federation should survive a mid-round crash, got %v", out.err)
	}
	for id, cerr := range errs {
		if cerr != nil {
			t.Fatalf("client %d: %v", id, cerr)
		}
	}
	r0 := out.res.History[0]
	if len(r0.Stragglers) != 1 || r0.Stragglers[0] != 2 {
		t.Fatalf("round 0 stragglers = %v, want the deserter [2]", r0.Stragglers)
	}
	if len(out.res.Accuracies) != 2 {
		t.Fatalf("accuracies = %v, want the two survivors", out.res.Accuracies)
	}
	if len(out.res.History[1].Participants) != 2 {
		t.Fatalf("round 1 participants = %v, want the two survivors", out.res.History[1].Participants)
	}
}

// TestServerConfigValidatesAsyncKnobs covers the new config surface.
func TestServerConfigValidatesAsyncKnobs(t *testing.T) {
	good := ServerConfig{
		Addr: "127.0.0.1:0", NumClients: 1, Rounds: 1, ClientsPerRound: 2,
		Aggregator: fl.WeightedAverage{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) { return []float64{0}, nil },
	}
	for name, mutate := range map[string]func(*ServerConfig){
		"negative quorum":          func(c *ServerConfig) { c.Quorum = -1 },
		"quorum above per-round":   func(c *ServerConfig) { c.Quorum = 3 },
		"negative deadline":        func(c *ServerConfig) { c.RoundDeadline = -time.Second },
		"unknown straggler policy": func(c *ServerConfig) { c.Straggler = fl.StragglerPolicy(9) },
	} {
		bad := good
		mutate(&bad)
		if _, err := NewServer(bad); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	ok := good
	ok.Quorum = 1
	ok.RoundDeadline = time.Second
	ok.Straggler = fl.StragglerDrop
	srv, err := NewServer(ok)
	if err != nil {
		t.Fatalf("valid async config rejected: %v", err)
	}
	_ = srv.listener.Close()
}
