package ssl

import (
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/nn"
)

// benchmarkMethodStep measures one full SSL training step (two-view
// forward, loss, backward, state update) for a registered method.
func benchmarkMethodStep(b *testing.B, name string) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	backbone := NewBackbone(rng, Arch{InputDim: 64, HiddenDim: 96, FeatDim: 48, ProjDim: 24})
	factory, err := Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	method, err := factory(rng, backbone)
	if err != nil {
		b.Fatal(err)
	}
	tr := &Trainable{Backbone: backbone, Method: method}
	opt := nn.NewSGD(tr, 0.03, 0.9, 0)
	rows := make([][]float64, 32)
	for i := range rows {
		r := make([]float64, 64)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	aug := data.DefaultAugmenter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v1, v2 := aug.TwoViews(rng, rows)
		ctx := NewStepContext(rng, backbone, v1, v2)
		loss := method.Loss(ctx)
		opt.ZeroGrad()
		if err := nn.Backward(loss); err != nil {
			b.Fatal(err)
		}
		opt.Step()
		method.AfterStep(backbone)
	}
}

func BenchmarkSimCLRStep(b *testing.B)  { benchmarkMethodStep(b, "simclr") }
func BenchmarkBYOLStep(b *testing.B)    { benchmarkMethodStep(b, "byol") }
func BenchmarkSimSiamStep(b *testing.B) { benchmarkMethodStep(b, "simsiam") }
func BenchmarkMoCoV2Step(b *testing.B)  { benchmarkMethodStep(b, "mocov2") }
func BenchmarkSwAVStep(b *testing.B)    { benchmarkMethodStep(b, "swav") }
func BenchmarkSMoGStep(b *testing.B)    { benchmarkMethodStep(b, "smog") }
