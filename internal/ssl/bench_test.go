package ssl

import (
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// benchmarkMethodStep measures one full SSL training step (two-view
// forward, loss, backward, state update) for a registered method.
func benchmarkMethodStep(b *testing.B, name string) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	backbone := NewBackbone(rng, Arch{InputDim: 64, HiddenDim: 96, FeatDim: 48, ProjDim: 24})
	factory, err := Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	method, err := factory(rng, backbone)
	if err != nil {
		b.Fatal(err)
	}
	tr := &Trainable{Backbone: backbone, Method: method}
	opt := nn.NewSGD(tr, 0.03, 0.9, 0)
	rows := make([][]float64, 32)
	for i := range rows {
		r := make([]float64, 64)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	aug := data.DefaultAugmenter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v1, v2 := aug.TwoViews(rng, rows)
		ctx := NewStepContext(rng, backbone, v1, v2)
		loss := method.Loss(ctx)
		opt.ZeroGrad()
		if err := nn.Backward(loss); err != nil {
			b.Fatal(err)
		}
		opt.Step()
		method.AfterStep(backbone)
	}
}

// BenchmarkSimCLRStepLargeBatch runs a step at a batch/width big enough for
// the backbone's matrix products to use the parallel kernel pool, comparing
// one worker against the default pool. Per-step results are bit-identical
// across pool sizes (see internal/tensor's determinism guarantee).
func BenchmarkSimCLRStepLargeBatch(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"pool", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tensor.SetWorkers(bc.workers)
			defer tensor.SetWorkers(0)
			rng := rand.New(rand.NewSource(2))
			backbone := NewBackbone(rng, Arch{InputDim: 256, HiddenDim: 256, FeatDim: 128, ProjDim: 64})
			factory, err := Lookup("simclr")
			if err != nil {
				b.Fatal(err)
			}
			method, err := factory(rng, backbone)
			if err != nil {
				b.Fatal(err)
			}
			tr := &Trainable{Backbone: backbone, Method: method}
			opt := nn.NewSGD(tr, 0.03, 0.9, 0)
			rows := make([][]float64, 128)
			for i := range rows {
				r := make([]float64, 256)
				for j := range r {
					r[j] = rng.NormFloat64()
				}
				rows[i] = r
			}
			aug := data.DefaultAugmenter()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v1, v2 := aug.TwoViews(rng, rows)
				ctx := NewStepContext(rng, backbone, v1, v2)
				loss := method.Loss(ctx)
				opt.ZeroGrad()
				if err := nn.Backward(loss); err != nil {
					b.Fatal(err)
				}
				opt.Step()
				method.AfterStep(backbone)
			}
		})
	}
}

func BenchmarkSimCLRStep(b *testing.B)  { benchmarkMethodStep(b, "simclr") }
func BenchmarkBYOLStep(b *testing.B)    { benchmarkMethodStep(b, "byol") }
func BenchmarkSimSiamStep(b *testing.B) { benchmarkMethodStep(b, "simsiam") }
func BenchmarkMoCoV2Step(b *testing.B)  { benchmarkMethodStep(b, "mocov2") }
func BenchmarkSwAVStep(b *testing.B)    { benchmarkMethodStep(b, "swav") }
func BenchmarkSMoGStep(b *testing.B)    { benchmarkMethodStep(b, "smog") }
