package ssl

import (
	"math/rand"

	"calibre/internal/nn"
)

// VICReg implements "Variance-Invariance-Covariance Regularization"
// (Bardes, Ponce & LeCun, ICLR 2022) — an extension beyond the six SSL
// methods the paper evaluates, included to demonstrate that Calibre's
// calibration layer is SSL-method-agnostic. The loss combines:
//
//   - invariance: mean squared distance between the two views' projections,
//   - variance: a hinge keeping every embedding dimension's std above γ,
//   - covariance: a penalty decorrelating embedding dimensions.
type VICReg struct {
	// LambdaI, MuV, NuC weigh invariance/variance/covariance (paper: 25,
	// 25, 1).
	LambdaI, MuV, NuC float64
	// Gamma is the variance-hinge target std (paper: 1).
	Gamma float64
}

var _ Method = (*VICReg)(nil)

// NewVICReg returns a factory producing VICReg with the reference weights.
func NewVICReg() Factory {
	return func(_ *rand.Rand, _ *Backbone) (Method, error) {
		return &VICReg{LambdaI: 25, MuV: 25, NuC: 1, Gamma: 1}, nil
	}
}

// Name implements Method.
func (v *VICReg) Name() string { return "vicreg" }

// Loss implements Method.
func (v *VICReg) Loss(ctx *StepContext) *nn.Node {
	diff := nn.Sub(ctx.H1, ctx.H2)
	inv := nn.Scale(nn.SumSquares(diff), 1/float64(ctx.H1.Value.Len()))
	variance := nn.Add(
		nn.VarianceHinge(ctx.H1, v.Gamma, 1e-4),
		nn.VarianceHinge(ctx.H2, v.Gamma, 1e-4),
	)
	covariance := nn.Add(nn.CovariancePenalty(ctx.H1), nn.CovariancePenalty(ctx.H2))
	total := nn.Add(
		nn.Scale(inv, v.LambdaI),
		nn.Add(nn.Scale(variance, v.MuV), nn.Scale(covariance, v.NuC)),
	)
	// Normalize to a magnitude comparable with the other objectives so a
	// shared learning rate works.
	return nn.Scale(total, 1.0/25)
}

// AfterStep implements Method (stateless).
func (v *VICReg) AfterStep(*Backbone) {}

// ExtraParams implements Method (none).
func (v *VICReg) ExtraParams() []*nn.Param { return nil }

// CarriesLocalState implements Method: VICReg keeps no cross-round state.
func (v *VICReg) CarriesLocalState() bool { return false }
