package ssl

import (
	"fmt"
	"math/rand"

	"calibre/internal/nn"
)

// BYOL implements "Bootstrap Your Own Latent" (Grill et al., NeurIPS 2020):
// an online network (backbone + predictor) regresses the projection of a
// slowly moving exponential-moving-average target network; the loss is the
// symmetric negative cosine similarity. The predictor is trained (and
// federated); the target network is method-local state.
type BYOL struct {
	Momentum  float64 // EMA decay for the target network
	predictor *nn.Sequential
	target    *Backbone
}

var _ Method = (*BYOL)(nil)

// NewBYOL returns a factory producing BYOL with the given target momentum
// (the paper uses 0.99-0.999).
func NewBYOL(momentum float64) Factory {
	return func(rng *rand.Rand, b *Backbone) (Method, error) {
		target, err := b.Clone(rng)
		if err != nil {
			return nil, fmt.Errorf("ssl: byol target init: %w", err)
		}
		d := b.Arch.ProjDim
		return &BYOL{
			Momentum:  momentum,
			predictor: nn.MLP(rng, "byol.pred", d, d, d),
			target:    target,
		}, nil
	}
}

// Name implements Method.
func (b *BYOL) Name() string { return "byol" }

// Loss computes the symmetric BYOL objective.
func (b *BYOL) Loss(ctx *StepContext) *nn.Node {
	// Online predictions for both views.
	p1 := b.predictor.Forward(ctx.H1)
	p2 := b.predictor.Forward(ctx.H2)
	// Target projections (no gradient).
	t1 := b.target.Project(b.target.Encode(ctx.View1)).Value
	t2 := b.target.Project(b.target.Encode(ctx.View2)).Value
	l1 := nn.NegCosineConst(p1, t2)
	l2 := nn.NegCosineConst(p2, t1)
	return nn.Scale(nn.Add(l1, l2), 0.5)
}

// AfterStep moves the target network toward the online backbone.
func (b *BYOL) AfterStep(online *Backbone) {
	// CopyParams/EMAUpdate cannot fail here: target was cloned from online.
	if err := nn.EMAUpdate(b.target.Encoder, online.Encoder, b.Momentum); err != nil {
		panic(err)
	}
	if err := nn.EMAUpdate(b.target.Projector, online.Projector, b.Momentum); err != nil {
		panic(err)
	}
}

// ExtraParams exposes the predictor for training and federation.
func (b *BYOL) ExtraParams() []*nn.Param { return b.predictor.Params() }

// CarriesLocalState implements Method: the EMA target network evolves
// across rounds and is never federated or checkpointed, so BYOL-based
// methods cannot be bit-identically resumed.
func (b *BYOL) CarriesLocalState() bool { return true }

// SimSiam implements "Exploring Simple Siamese Representation Learning"
// (Chen & He, CVPR 2021): BYOL without the momentum target — the stop-
// gradient branch is the online projection itself.
type SimSiam struct {
	predictor *nn.Sequential
}

var _ Method = (*SimSiam)(nil)

// NewSimSiam returns a factory producing SimSiam.
func NewSimSiam() Factory {
	return func(rng *rand.Rand, b *Backbone) (Method, error) {
		d := b.Arch.ProjDim
		return &SimSiam{predictor: nn.MLP(rng, "simsiam.pred", d, d, d)}, nil
	}
}

// Name implements Method.
func (s *SimSiam) Name() string { return "simsiam" }

// Loss computes the symmetric stop-gradient negative cosine objective.
func (s *SimSiam) Loss(ctx *StepContext) *nn.Node {
	p1 := s.predictor.Forward(ctx.H1)
	p2 := s.predictor.Forward(ctx.H2)
	l1 := nn.NegCosineConst(p1, ctx.H2.Value) // stop-grad on h2
	l2 := nn.NegCosineConst(p2, ctx.H1.Value) // stop-grad on h1
	return nn.Scale(nn.Add(l1, l2), 0.5)
}

// AfterStep implements Method (no momentum state).
func (s *SimSiam) AfterStep(*Backbone) {}

// ExtraParams exposes the predictor.
func (s *SimSiam) ExtraParams() []*nn.Param { return s.predictor.Params() }

// CarriesLocalState implements Method: SimSiam has no momentum target;
// its predictor is federated via ExtraParams.
func (s *SimSiam) CarriesLocalState() bool { return false }
