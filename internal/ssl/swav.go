package ssl

import (
	"math"
	"math/rand"

	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// SwAV implements "Unsupervised Learning of Visual Features by Contrasting
// Cluster Assignments" (Caron et al., NeurIPS 2020): learnable prototypes
// score each view; soft cluster assignments computed by Sinkhorn-Knopp on
// one view supervise the softmax prediction of the other (swapped
// prediction). The prototype matrix is a learnable parameter federated with
// the backbone.
type SwAV struct {
	Tau          float64 // softmax temperature for predictions
	Eps          float64 // Sinkhorn entropy regularization
	SinkhornIter int

	prototypes *nn.Param // K × projDim
}

var _ Method = (*SwAV)(nil)

// NewSwAV returns a factory producing SwAV with k prototypes.
func NewSwAV(k int, tau float64) Factory {
	return func(rng *rand.Rand, b *Backbone) (Method, error) {
		p := nn.NewParam("swav.protos", k, b.Arch.ProjDim)
		p.InitHe(rng, b.Arch.ProjDim)
		return &SwAV{Tau: tau, Eps: 0.05, SinkhornIter: 3, prototypes: p}, nil
	}
}

// Name implements Method.
func (s *SwAV) Name() string { return "swav" }

// Loss computes the swapped-prediction objective.
func (s *SwAV) Loss(ctx *StepContext) *nn.Node {
	zn1 := nn.L2NormalizeRows(ctx.H1)
	zn2 := nn.L2NormalizeRows(ctx.H2)
	cn := nn.L2NormalizeRows(s.prototypes.Node())
	scores1 := nn.MatMulTransB(zn1, cn)
	scores2 := nn.MatMulTransB(zn2, cn)
	// Assignments are computed without gradient.
	q1 := Sinkhorn(scores1.Value, s.Eps, s.SinkhornIter)
	q2 := Sinkhorn(scores2.Value, s.Eps, s.SinkhornIter)
	// Swapped prediction: q1 supervises view 2 and vice versa.
	l1 := nn.SoftCrossEntropy(nn.Scale(scores2, 1/s.Tau), q1)
	l2 := nn.SoftCrossEntropy(nn.Scale(scores1, 1/s.Tau), q2)
	return nn.Scale(nn.Add(l1, l2), 0.5)
}

// AfterStep renormalizes prototype rows to the unit sphere, as SwAV does.
func (s *SwAV) AfterStep(*Backbone) {
	normed := tensor.L2NormalizeRows(s.prototypes.Value, 1e-12)
	copy(s.prototypes.Value.Data(), normed.Data())
}

// ExtraParams exposes the prototype matrix for training and federation.
func (s *SwAV) ExtraParams() []*nn.Param { return []*nn.Param{s.prototypes} }

// CarriesLocalState implements Method: the prototypes are federated via
// ExtraParams, leaving no method-local cross-round state.
func (s *SwAV) CarriesLocalState() bool { return false }

// Prototypes returns the prototype matrix (for tests and diagnostics).
func (s *SwAV) Prototypes() *tensor.Tensor { return s.prototypes.Value }

// Sinkhorn computes the SwAV soft assignment matrix from a score matrix
// (n×K): Q ∝ exp(scores/eps) balanced so columns (prototypes) receive equal
// mass, with rows renormalized to distributions at the end.
func Sinkhorn(scores *tensor.Tensor, eps float64, iters int) *tensor.Tensor {
	n, k := scores.Rows(), scores.Cols()
	q := tensor.New(n, k)
	if n == 0 || k == 0 {
		return q
	}
	// Stabilize: subtract the global max before exponentiating.
	max := scores.Max()
	for i := 0; i < n; i++ {
		srow := scores.Row(i)
		qrow := q.Row(i)
		for j := 0; j < k; j++ {
			qrow[j] = math.Exp((srow[j] - max) / eps)
		}
	}
	for it := 0; it < iters; it++ {
		// Column normalization: each prototype gets total mass n/k.
		for j := 0; j < k; j++ {
			var col float64
			for i := 0; i < n; i++ {
				col += q.At(i, j)
			}
			if col <= 0 {
				continue
			}
			scale := float64(n) / float64(k) / col
			for i := 0; i < n; i++ {
				q.Set(i, j, q.At(i, j)*scale)
			}
		}
		// Row normalization: each sample is one unit of mass.
		for i := 0; i < n; i++ {
			qrow := q.Row(i)
			var row float64
			for _, v := range qrow {
				row += v
			}
			if row <= 0 {
				continue
			}
			inv := 1 / row
			for j := range qrow {
				qrow[j] *= inv
			}
		}
	}
	return q
}
