package ssl

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/nn"
)

// TestTrainArenaBitIdentical is the end-to-end determinism pin for the
// allocation-free hot path: a full local training run with the buffer
// arena enabled produces bit-identical parameters and loss to an
// arena-free run. The method roster covers the cross-step escape paths —
// MoCo's key queue, BYOL's momentum target, SwAV's prototype params —
// that must deep-copy out of the tape's buffers before Reset.
func TestTrainArenaBitIdentical(t *testing.T) {
	for _, method := range []string{"simclr", "mocov2", "byol", "swav"} {
		t.Run(method, func(t *testing.T) {
			cfg := DefaultTrainConfig()
			cfg.Epochs = 2
			cfg.BatchSize = 4

			run := func(noArena bool) (float64, []float64) {
				b := testBackbone(t, 61)
				tr := &Trainable{Backbone: b, Method: buildMethod(t, method, b)}
				rng := rand.New(rand.NewSource(62))
				rows := testRows(rand.New(rand.NewSource(63)), 10, 16)
				c := cfg
				c.NoArena = noArena
				loss, err := Train(rng, tr, rows, c, nil)
				if err != nil {
					t.Fatalf("Train(noArena=%v): %v", noArena, err)
				}
				return loss, nn.Flatten(tr)
			}

			baseLoss, baseParams := run(true)
			arenaLoss, arenaParams := run(false)

			if math.Float64bits(arenaLoss) != math.Float64bits(baseLoss) {
				t.Fatalf("loss differs: arena %v, fresh %v", arenaLoss, baseLoss)
			}
			if len(arenaParams) != len(baseParams) {
				t.Fatalf("param count differs: %d vs %d", len(arenaParams), len(baseParams))
			}
			for i := range baseParams {
				if math.Float64bits(arenaParams[i]) != math.Float64bits(baseParams[i]) {
					t.Fatalf("param %d differs: arena %v, fresh %v", i, arenaParams[i], baseParams[i])
				}
			}
		})
	}
}

// TestTrainArenaReusesBuffers pins that the arena actually carries buffers
// across steps: after a multi-step run, the trainable's arena has recycled
// at least one buffer and everything was returned.
func TestTrainArenaReusesBuffers(t *testing.T) {
	b := testBackbone(t, 64)
	tr := &Trainable{Backbone: b, Method: buildMethod(t, "simclr", b)}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	cfg.BatchSize = 4
	if _, err := Train(rand.New(rand.NewSource(65)), tr, testRows(rand.New(rand.NewSource(66)), 10, 16), cfg, nil); err != nil {
		t.Fatalf("Train: %v", err)
	}
	st := tr.Arena().Stats()
	if st.Hits == 0 {
		t.Fatalf("arena never hit the free list: %+v", st)
	}
	if st.Outstanding != 0 {
		t.Fatalf("arena has %d buffers outstanding after Train", st.Outstanding)
	}
}
