package ssl

import (
	"math/rand"

	"calibre/internal/nn"
)

// SimCLR implements "A Simple Framework for Contrastive Learning of Visual
// Representations" (Chen et al., ICML 2020): the NT-Xent loss over the
// stacked projections of two augmented views.
type SimCLR struct {
	Tau float64
}

var _ Method = (*SimCLR)(nil)

// NewSimCLR returns a factory producing SimCLR with the given temperature.
func NewSimCLR(tau float64) Factory {
	return func(_ *rand.Rand, _ *Backbone) (Method, error) {
		return &SimCLR{Tau: tau}, nil
	}
}

// Name implements Method.
func (s *SimCLR) Name() string { return "simclr" }

// Loss is NT-Xent over [h1; h2] with positives (i, i+N).
func (s *SimCLR) Loss(ctx *StepContext) *nn.Node {
	return nn.PairNTXent(ctx.H1, ctx.H2, s.Tau)
}

// AfterStep implements Method (no state).
func (s *SimCLR) AfterStep(*Backbone) {}

// ExtraParams implements Method (none).
func (s *SimCLR) ExtraParams() []*nn.Param { return nil }

// CarriesLocalState implements Method: SimCLR keeps no cross-round state.
func (s *SimCLR) CarriesLocalState() bool { return false }
