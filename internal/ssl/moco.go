package ssl

import (
	"fmt"
	"math/rand"

	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// MoCoV2 implements "Momentum Contrast" v2 (He et al. / Chen et al.):
// queries from the online backbone are contrasted against the positive key
// from a momentum (EMA) key encoder and against a queue of past keys acting
// as negatives.
type MoCoV2 struct {
	Tau       float64
	Momentum  float64
	QueueSize int

	key   *Backbone
	queue [][]float64 // normalized key projections, FIFO
	// pendingKeys are this step's keys, enqueued in AfterStep so the loss
	// never contrasts a query against its own batch twice.
	pendingKeys [][]float64
}

var _ Method = (*MoCoV2)(nil)

// NewMoCoV2 returns a factory producing MoCo v2.
func NewMoCoV2(tau, momentum float64, queueSize int) Factory {
	return func(rng *rand.Rand, b *Backbone) (Method, error) {
		if queueSize < 1 {
			return nil, fmt.Errorf("ssl: moco queue size must be ≥1, got %d", queueSize)
		}
		key, err := b.Clone(rng)
		if err != nil {
			return nil, fmt.Errorf("ssl: moco key encoder init: %w", err)
		}
		return &MoCoV2{Tau: tau, Momentum: momentum, QueueSize: queueSize, key: key}, nil
	}
}

// Name implements Method.
func (m *MoCoV2) Name() string { return "mocov2" }

// Loss computes the InfoNCE objective with queue negatives.
func (m *MoCoV2) Loss(ctx *StepContext) *nn.Node {
	q := nn.L2NormalizeRows(ctx.H1)
	// Keys from the momentum encoder on the second view (no gradient).
	kRaw := m.key.Project(m.key.Encode(ctx.View2)).Value
	k := tensor.L2NormalizeRows(kRaw, 1e-12)
	n := q.Value.Rows()

	// Positive logit: per-row dot(q_i, k_i).
	pos := nn.RowDotConst(q, k)

	// Stash keys for the post-step queue update.
	m.pendingKeys = m.pendingKeys[:0]
	for i := 0; i < n; i++ {
		m.pendingKeys = append(m.pendingKeys, append([]float64(nil), k.Row(i)...))
	}

	targets := make([]int, n)
	var logits *nn.Node
	if len(m.queue) == 0 {
		// Cold queue: fall back to in-batch negatives (other keys).
		sim := nn.MatMulTransB(q, nn.Input(k))
		logits = sim
		for i := range targets {
			targets[i] = i
		}
	} else {
		negT, err := tensor.Stack(m.queue)
		if err != nil {
			panic(err) // queue rows share projDim by construction
		}
		neg := nn.MatMulTransB(q, nn.Input(negT))
		logits = nn.ConcatCols(pos, neg)
		// Positive is always column 0.
	}
	return nn.CrossEntropy(nn.Scale(logits, 1/m.Tau), targets)
}

// AfterStep EMA-updates the key encoder and pushes this step's keys.
func (m *MoCoV2) AfterStep(online *Backbone) {
	if err := nn.EMAUpdate(m.key.Encoder, online.Encoder, m.Momentum); err != nil {
		panic(err)
	}
	if err := nn.EMAUpdate(m.key.Projector, online.Projector, m.Momentum); err != nil {
		panic(err)
	}
	m.queue = append(m.queue, m.pendingKeys...)
	m.pendingKeys = m.pendingKeys[:0]
	if excess := len(m.queue) - m.QueueSize; excess > 0 {
		m.queue = append([][]float64(nil), m.queue[excess:]...)
	}
}

// ExtraParams implements Method (the key encoder is not trained by
// gradient).
func (m *MoCoV2) ExtraParams() []*nn.Param { return nil }

// CarriesLocalState implements Method: the momentum key encoder and the
// FIFO key queue evolve across rounds and are never federated or
// checkpointed, so MoCo-based methods cannot be bit-identically resumed.
func (m *MoCoV2) CarriesLocalState() bool { return true }

// QueueLen reports the current number of queued negative keys (for tests).
func (m *MoCoV2) QueueLen() int { return len(m.queue) }
