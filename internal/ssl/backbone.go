// Package ssl implements the self-supervised learning methods the Calibre
// paper builds on: SimCLR, BYOL, SimSiam, MoCoV2, SwAV and SMoG. All methods
// share a Backbone (encoder θb + projector θh, the paper's global model θ)
// and differ only in how they turn two augmented views into a loss.
//
// All backbone and loss matrix products run on internal/tensor's shared
// parallel kernel pool (sized with tensor.SetWorkers or
// CALIBRE_KERNEL_WORKERS); per-step results are bit-identical for any pool
// size, so federated runs stay reproducible under concurrency.
package ssl

import (
	"fmt"
	"math/rand"

	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// Arch fixes the backbone architecture. The paper uses a ResNet-18 encoder
// with 512-d features; this reproduction uses an MLP encoder on synthetic
// observations (DESIGN.md §1) with configurable widths.
type Arch struct {
	InputDim  int
	HiddenDim int
	FeatDim   int // encoder output z (the representation used for personalization)
	ProjDim   int // projector output h (the representation used by SSL losses)
}

// DefaultArch returns the architecture used by the CI-scale experiments.
func DefaultArch(inputDim int) Arch {
	return Arch{InputDim: inputDim, HiddenDim: 96, FeatDim: 48, ProjDim: 24}
}

// Backbone is the global model θ: Encoder (θb) and Projector (θh).
type Backbone struct {
	Arch      Arch
	Encoder   *nn.Sequential
	Projector *nn.Sequential
}

// NewBackbone builds a backbone with freshly initialized weights.
func NewBackbone(rng *rand.Rand, arch Arch) *Backbone {
	return &Backbone{
		Arch:      arch,
		Encoder:   nn.MLP(rng, "enc", arch.InputDim, arch.HiddenDim, arch.FeatDim),
		Projector: nn.MLP(rng, "proj", arch.FeatDim, arch.FeatDim, arch.ProjDim),
	}
}

// Params returns encoder parameters followed by projector parameters.
func (b *Backbone) Params() []*nn.Param {
	return append(b.Encoder.Params(), b.Projector.Params()...)
}

// Encode runs the encoder on a constant input batch, returning the z node.
func (b *Backbone) Encode(x *tensor.Tensor) *nn.Node {
	return b.Encoder.Forward(nn.Input(x))
}

// EncodeOn is Encode with the graph's buffers drawn from tape's arena (nil
// tape falls back to heap allocation). The returned node — and everything
// derived from it — becomes invalid at the tape's next Reset.
func (b *Backbone) EncodeOn(tp *nn.Tape, x *tensor.Tensor) *nn.Node {
	return b.Encoder.Forward(nn.InputOn(tp, x))
}

// Project runs the projector on an encoding node.
func (b *Backbone) Project(z *nn.Node) *nn.Node {
	return b.Projector.Forward(z)
}

// EncodeValue runs the encoder outside any gradient context and returns the
// raw feature matrix. Used during personalization and for embeddings.
func (b *Backbone) EncodeValue(x *tensor.Tensor) *tensor.Tensor {
	return b.Encode(x).Value
}

// Clone returns a deep copy of the backbone (used for target networks).
func (b *Backbone) Clone(rng *rand.Rand) (*Backbone, error) {
	c := NewBackbone(rng, b.Arch)
	if err := nn.CopyParams(c.Encoder, b.Encoder); err != nil {
		return nil, fmt.Errorf("ssl: clone encoder: %w", err)
	}
	if err := nn.CopyParams(c.Projector, b.Projector); err != nil {
		return nil, fmt.Errorf("ssl: clone projector: %w", err)
	}
	return c, nil
}

// StepContext carries one training step's shared forward results so that
// each method (and Calibre's regularizers) can reuse them without repeating
// the encoder pass.
type StepContext struct {
	RNG      *rand.Rand
	Backbone *Backbone

	View1, View2 *tensor.Tensor // augmented input views (N×inputDim)
	Z1, Z2       *nn.Node       // encoder outputs (N×featDim)
	H1, H2       *nn.Node       // projector outputs (N×projDim)
}

// NewStepContext performs the shared forward passes for a pair of views.
func NewStepContext(rng *rand.Rand, b *Backbone, view1, view2 *tensor.Tensor) *StepContext {
	return NewStepContextOn(nil, rng, b, view1, view2)
}

// NewStepContextOn is NewStepContext with the step's graph allocated on tp
// (see nn.Tape). The whole context is step-scoped: after the caller resets
// the tape, none of its nodes may be touched again.
func NewStepContextOn(tp *nn.Tape, rng *rand.Rand, b *Backbone, view1, view2 *tensor.Tensor) *StepContext {
	z1 := b.EncodeOn(tp, view1)
	z2 := b.EncodeOn(tp, view2)
	return &StepContext{
		RNG:      rng,
		Backbone: b,
		View1:    view1,
		View2:    view2,
		Z1:       z1,
		Z2:       z2,
		H1:       b.Project(z1),
		H2:       b.Project(z2),
	}
}

// Method is a self-supervised objective over a pair of augmented views.
// Implementations may own state (momentum targets, queues, prototypes).
type Method interface {
	// Name identifies the method (e.g. "simclr").
	Name() string
	// Loss builds the scalar SSL loss node for the step.
	Loss(ctx *StepContext) *nn.Node
	// AfterStep updates method-owned state after an optimizer step (EMA
	// targets, queues, group centers). It may be a no-op.
	AfterStep(b *Backbone)
	// ExtraParams returns method-owned learnable parameters that must be
	// trained and federated together with the backbone (e.g. SwAV
	// prototypes). May be nil.
	ExtraParams() []*nn.Param
	// CarriesLocalState reports whether the method owns cross-round state
	// outside ExtraParams — EMA target networks (BYOL), momentum key
	// encoders and key queues (MoCo). Such state is neither federated nor
	// captured by checkpoints, so a cold-started process cannot
	// reconstruct it: methods returning true cannot be bit-identically
	// resumed from a snapshot (core.SSLTrainer surfaces this through
	// fl.Stateful, and resume paths refuse them).
	CarriesLocalState() bool
}

// Factory constructs a method bound to a backbone. Each federated client
// owns one method instance; its state persists across rounds.
type Factory func(rng *rand.Rand, b *Backbone) (Method, error)

// Trainable bundles the backbone with a method's extra learnable
// parameters; this is the module whose flattened parameter vector is
// exchanged with the federated server.
type Trainable struct {
	Backbone *Backbone
	Method   Method

	arena *tensor.Arena // lazily created; backs training-step tapes
}

var _ nn.Module = (*Trainable)(nil)

// Arena returns the trainable's buffer arena, creating it on first use. The
// arena persists for the trainable's lifetime (for a federated client: across
// rounds), which is what makes step buffers actually get reused. Callers that
// train the same Trainable from multiple goroutines may share the arena (it
// is mutex-guarded) but must not share training steps.
func (t *Trainable) Arena() *tensor.Arena {
	if t.arena == nil {
		t.arena = tensor.NewArena()
	}
	return t.arena
}

// Params returns backbone params followed by method extras, in stable order.
func (t *Trainable) Params() []*nn.Param {
	return append(t.Backbone.Params(), t.Method.ExtraParams()...)
}
