package ssl

import (
	"math"
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/nn"
	"calibre/internal/tensor"
)

func testBackbone(t *testing.T, seed int64) *Backbone {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return NewBackbone(rng, Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8})
}

func testRows(rng *rand.Rand, n, dim int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, dim)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	return rows
}

func buildMethod(t *testing.T, name string, b *Backbone) Method {
	t.Helper()
	f, err := Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%s): %v", name, err)
	}
	m, err := f(rand.New(rand.NewSource(7)), b)
	if err != nil {
		t.Fatalf("factory(%s): %v", name, err)
	}
	return m
}

func TestBackboneShapes(t *testing.T) {
	b := testBackbone(t, 1)
	x := tensor.RandN(rand.New(rand.NewSource(2)), 1, 5, 16)
	z := b.Encode(x)
	if z.Value.Cols() != 12 {
		t.Fatalf("z dim = %d", z.Value.Cols())
	}
	h := b.Project(z)
	if h.Value.Cols() != 8 {
		t.Fatalf("h dim = %d", h.Value.Cols())
	}
	if got := b.EncodeValue(x); got.Rows() != 5 {
		t.Fatalf("EncodeValue rows = %d", got.Rows())
	}
}

func TestBackboneClone(t *testing.T) {
	b := testBackbone(t, 3)
	c, err := b.Clone(rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	vb, vc := nn.Flatten(b.Encoder), nn.Flatten(c.Encoder)
	for i := range vb {
		if vb[i] != vc[i] {
			t.Fatal("clone must copy weights")
		}
	}
	// Mutating the clone must not affect the original.
	c.Encoder.Params()[0].Value.Fill(0)
	if nn.Flatten(b.Encoder)[0] == 0 {
		t.Fatal("clone must not share storage")
	}
}

func TestRegistryNamesAndLookup(t *testing.T) {
	names := MethodNames()
	want := []string{"byol", "mocov2", "simclr", "simsiam", "smog", "swav", "vicreg"}
	if len(names) != len(want) {
		t.Fatalf("MethodNames = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("MethodNames = %v, want %v", names, want)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown method should error")
	}
}

// Every registered method must produce a finite scalar loss and a usable
// backward pass that touches the encoder.
func TestAllMethodsLossAndGradients(t *testing.T) {
	for _, name := range MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			b := testBackbone(t, 11)
			m := buildMethod(t, name, b)
			rng := rand.New(rand.NewSource(5))
			rows := testRows(rng, 8, 16)
			aug := data.DefaultAugmenter()
			v1, v2 := aug.TwoViews(rng, rows)
			ctx := NewStepContext(rng, b, v1, v2)
			loss := m.Loss(ctx)
			if loss.Value.Len() != 1 {
				t.Fatalf("loss must be scalar, got %v", loss.Value.Shape())
			}
			lv := loss.Value.At(0, 0)
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				t.Fatalf("loss = %v", lv)
			}
			tr := &Trainable{Backbone: b, Method: m}
			nn.ZeroGrads(tr)
			if err := nn.Backward(loss); err != nil {
				t.Fatalf("Backward: %v", err)
			}
			var gnorm float64
			for _, p := range b.Encoder.Params() {
				for _, g := range p.Grad.Data() {
					gnorm += g * g
				}
			}
			if gnorm == 0 {
				t.Fatal("encoder received no gradient")
			}
			m.AfterStep(b)
		})
	}
}

// Training any method for a few steps must reduce its own loss on a fixed
// evaluation batch (sanity check that the objectives are minimizable).
func TestMethodsTrainLossDecreases(t *testing.T) {
	for _, name := range []string{"simclr", "swav", "smog"} {
		name := name
		t.Run(name, func(t *testing.T) {
			b := testBackbone(t, 21)
			m := buildMethod(t, name, b)
			tr := &Trainable{Backbone: b, Method: m}
			rng := rand.New(rand.NewSource(6))
			rows := testRows(rng, 48, 16)
			cfg := DefaultTrainConfig()
			cfg.Epochs = 1
			cfg.BatchSize = 16
			first, err := Train(rng, tr, rows, cfg, nil)
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			var last float64
			for i := 0; i < 4; i++ {
				last, err = Train(rng, tr, rows, cfg, nil)
				if err != nil {
					t.Fatalf("Train: %v", err)
				}
			}
			if !(last < first) {
				t.Fatalf("%s loss did not decrease: first %v, last %v", name, first, last)
			}
		})
	}
}

func TestBYOLTargetLagsOnline(t *testing.T) {
	b := testBackbone(t, 31)
	m := buildMethod(t, "byol", b).(*BYOL)
	before := nn.Flatten(m.target.Encoder)
	// Move the online encoder and step.
	for _, p := range b.Encoder.Params() {
		for i, d := 0, p.Value.Data(); i < len(d); i++ {
			d[i] += 1
		}
	}
	m.AfterStep(b)
	after := nn.Flatten(m.target.Encoder)
	moved := false
	for i := range before {
		diff := after[i] - before[i]
		// EMA with momentum 0.99 moves 1% of the way.
		if math.Abs(diff-0.01) < 1e-9 {
			moved = true
		}
		if math.Abs(diff) > 0.011 {
			t.Fatalf("target moved too fast: %v", diff)
		}
	}
	if !moved {
		t.Fatal("target should move slightly toward online")
	}
}

func TestMoCoQueueGrowsAndCaps(t *testing.T) {
	b := testBackbone(t, 41)
	f := NewMoCoV2(0.5, 0.99, 20)
	mi, err := f(rand.New(rand.NewSource(1)), b)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	m := mi.(*MoCoV2)
	rng := rand.New(rand.NewSource(8))
	aug := data.DefaultAugmenter()
	for step := 0; step < 5; step++ {
		rows := testRows(rng, 8, 16)
		v1, v2 := aug.TwoViews(rng, rows)
		ctx := NewStepContext(rng, b, v1, v2)
		loss := m.Loss(ctx)
		if err := nn.Backward(loss); err != nil {
			t.Fatalf("Backward: %v", err)
		}
		m.AfterStep(b)
	}
	if m.QueueLen() != 20 {
		t.Fatalf("queue len = %d, want capped at 20", m.QueueLen())
	}
}

func TestMoCoFactoryValidation(t *testing.T) {
	b := testBackbone(t, 42)
	if _, err := NewMoCoV2(0.5, 0.99, 0)(rand.New(rand.NewSource(1)), b); err == nil {
		t.Fatal("queue size 0 should error")
	}
}

func TestSMoGFactoryValidation(t *testing.T) {
	b := testBackbone(t, 43)
	if _, err := NewSMoG(1, 0.5, 0.99)(rand.New(rand.NewSource(1)), b); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestSwAVPrototypesNormalizedAfterStep(t *testing.T) {
	b := testBackbone(t, 51)
	m := buildMethod(t, "swav", b).(*SwAV)
	m.prototypes.Value.Fill(3)
	m.AfterStep(b)
	for i := 0; i < m.Prototypes().Rows(); i++ {
		if n := tensor.Norm2(m.Prototypes().Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("prototype %d norm = %v", i, n)
		}
	}
}

func TestSinkhornBalancesColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	scores := tensor.RandN(rng, 1, 30, 5)
	q := Sinkhorn(scores, 0.05, 10)
	// Rows are distributions.
	for i := 0; i < q.Rows(); i++ {
		var s float64
		for _, v := range q.Row(i) {
			if v < 0 {
				t.Fatal("q must be non-negative")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// Columns near-balanced: each prototype gets ≈ n/k of the mass.
	want := float64(q.Rows()) / float64(q.Cols())
	for j := 0; j < q.Cols(); j++ {
		var col float64
		for i := 0; i < q.Rows(); i++ {
			col += q.At(i, j)
		}
		if col < want*0.5 || col > want*1.5 {
			t.Fatalf("column %d mass = %v, want ≈%v", j, col, want)
		}
	}
	// Edge: empty input.
	if got := Sinkhorn(tensor.New(0, 0), 0.05, 3); got.Len() != 0 {
		t.Fatal("empty Sinkhorn should be empty")
	}
}

func TestSMoGCentersStayNormalized(t *testing.T) {
	b := testBackbone(t, 61)
	m := buildMethod(t, "smog", b).(*SMoG)
	rng := rand.New(rand.NewSource(10))
	aug := data.DefaultAugmenter()
	rows := testRows(rng, 16, 16)
	v1, v2 := aug.TwoViews(rng, rows)
	ctx := NewStepContext(rng, b, v1, v2)
	_ = m.Loss(ctx)
	for i := 0; i < m.Centers().Rows(); i++ {
		if n := tensor.Norm2(m.Centers().Row(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("center %d norm = %v", i, n)
		}
	}
}

func TestSMoGResetCentersFromData(t *testing.T) {
	b := testBackbone(t, 62)
	m := buildMethod(t, "smog", b).(*SMoG)
	rng := rand.New(rand.NewSource(11))
	feats := tensor.RandN(rng, 1, 40, 8)
	if err := m.ResetCentersFromData(rng, feats); err != nil {
		t.Fatalf("ResetCentersFromData: %v", err)
	}
	for i := 0; i < m.Centers().Rows(); i++ {
		if n := tensor.Norm2(m.Centers().Row(i)); math.Abs(n-1) > 1e-6 {
			t.Fatalf("center %d norm = %v after reseed", i, n)
		}
	}
}

func TestTrainableParamsIncludeExtras(t *testing.T) {
	b := testBackbone(t, 71)
	m := buildMethod(t, "swav", b)
	tr := &Trainable{Backbone: b, Method: m}
	base := len(b.Params())
	if got := len(tr.Params()); got != base+1 {
		t.Fatalf("Trainable params = %d, want %d", got, base+1)
	}
	// Two trainables with the same arch+method must have identical layouts
	// (the FL wire-format invariant).
	b2 := testBackbone(t, 72)
	m2 := buildMethod(t, "swav", b2)
	tr2 := &Trainable{Backbone: b2, Method: m2}
	if nn.ParamCount(tr) != nn.ParamCount(tr2) {
		t.Fatal("same architecture must yield same parameter count")
	}
	vec := nn.Flatten(tr)
	if err := nn.Unflatten(tr2, vec); err != nil {
		t.Fatalf("Unflatten across instances: %v", err)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	b := testBackbone(t, 81)
	m := buildMethod(t, "simclr", b)
	tr := &Trainable{Backbone: b, Method: m}
	rng := rand.New(rand.NewSource(12))
	rows := testRows(rng, 8, 16)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 0
	if _, err := Train(rng, tr, rows, cfg, nil); err == nil {
		t.Fatal("epochs=0 should error")
	}
	cfg = DefaultTrainConfig()
	cfg.BatchSize = 1
	if _, err := Train(rng, tr, rows, cfg, nil); err == nil {
		t.Fatal("batch=1 should error")
	}
}

func TestTrainTooFewSamplesIsNoop(t *testing.T) {
	b := testBackbone(t, 82)
	m := buildMethod(t, "simclr", b)
	tr := &Trainable{Backbone: b, Method: m}
	rng := rand.New(rand.NewSource(13))
	before := nn.Flatten(tr)
	loss, err := Train(rng, tr, testRows(rng, 1, 16), DefaultTrainConfig(), nil)
	if err != nil || loss != 0 {
		t.Fatalf("Train on 1 sample = %v, %v", loss, err)
	}
	after := nn.Flatten(tr)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("1-sample training must not move parameters")
		}
	}
}

func TestTrainHookIsApplied(t *testing.T) {
	b := testBackbone(t, 83)
	m := buildMethod(t, "simclr", b)
	tr := &Trainable{Backbone: b, Method: m}
	rng := rand.New(rand.NewSource(14))
	rows := testRows(rng, 16, 16)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	var called int
	_, err := Train(rng, tr, rows, cfg, func(ctx *StepContext, l *nn.Node) *nn.Node {
		called++
		if ctx.Z1 == nil || ctx.H2 == nil {
			t.Fatal("hook must see forward results")
		}
		return l
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if called == 0 {
		t.Fatal("hook was never called")
	}
}
