package ssl

import (
	"fmt"
	"math/rand"
	"sort"

	"calibre/internal/data"
	"calibre/internal/nn"
)

// Standard hyperparameters shared by the experiments (paper §V-A).
const (
	DefaultTau          = 0.5
	DefaultEMAMomentum  = 0.99
	DefaultQueueSize    = 256
	DefaultSwAVProtos   = 30
	DefaultSMoGGroups   = 30
	DefaultSMoGMomentum = 0.99
)

// Factories returns the named standard factories for every SSL method the
// paper evaluates.
func Factories() map[string]Factory {
	return map[string]Factory{
		"simclr":  NewSimCLR(DefaultTau),
		"byol":    NewBYOL(DefaultEMAMomentum),
		"simsiam": NewSimSiam(),
		"mocov2":  NewMoCoV2(DefaultTau, DefaultEMAMomentum, DefaultQueueSize),
		"swav":    NewSwAV(DefaultSwAVProtos, DefaultTau),
		"smog":    NewSMoG(DefaultSMoGGroups, DefaultTau, DefaultSMoGMomentum),
		// vicreg extends beyond the paper's six methods (see vicreg.go);
		// it is not part of the figure rosters but plugs into the same
		// pfl-*/calibre-* pipelines.
		"vicreg": NewVICReg(),
	}
}

// MethodNames lists the registered method names in sorted order.
func MethodNames() []string {
	fs := Factories()
	names := make([]string, 0, len(fs))
	for n := range fs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the standard factory for name.
func Lookup(name string) (Factory, error) {
	f, ok := Factories()[name]
	if !ok {
		return nil, fmt.Errorf("ssl: unknown method %q (have %v)", name, MethodNames())
	}
	return f, nil
}

// TrainConfig controls a local self-supervised training loop.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Momentum  float64
	ClipNorm  float64 // 0 disables clipping
	Augment   data.Augmenter

	// NoArena disables the per-trainable buffer arena, making every training
	// step allocate fresh tensors. Arena-on and arena-off runs are
	// bit-identical (pinned by tests); the switch exists for benchmarking the
	// allocation win and as an escape hatch.
	NoArena bool
}

// DefaultTrainConfig returns the local-update hyperparameters used by the
// experiments (3 local epochs, batch 32, SGD momentum 0.9).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    3,
		BatchSize: 32,
		LR:        0.03,
		Momentum:  0.9,
		ClipNorm:  5,
		Augment:   data.DefaultAugmenter(),
	}
}

// LossHook lets callers (Calibre) extend the per-step loss. It receives the
// step context and the method's own loss node and returns the total loss.
type LossHook func(ctx *StepContext, methodLoss *nn.Node) *nn.Node

// Train runs the local SSL loop over rows (a client's raw samples), mutating
// the trainable's parameters in place. hook may be nil. It returns the mean
// total loss per step.
func Train(rng *rand.Rand, t *Trainable, rows [][]float64, cfg TrainConfig, hook LossHook) (float64, error) {
	if len(rows) < 2 {
		return 0, nil // not enough samples to form a contrastive batch
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 2 {
		return 0, fmt.Errorf("ssl: bad train config %+v", cfg)
	}
	opt := nn.NewSGD(t, cfg.LR, cfg.Momentum, 0)
	stepsPerEpoch := (len(rows) + cfg.BatchSize - 1) / cfg.BatchSize
	batcher := data.NewBatcher(rng, len(rows), cfg.BatchSize)
	var tape *nn.Tape
	if !cfg.NoArena {
		tape = nn.NewTape(t.Arena())
	}
	var totalLoss float64
	var steps int
	for e := 0; e < cfg.Epochs; e++ {
		for s := 0; s < stepsPerEpoch; s++ {
			idx, ok := batcher.Next()
			if !ok {
				break
			}
			batchRows := make([][]float64, len(idx))
			for i, j := range idx {
				batchRows[i] = rows[j]
			}
			v1, v2 := cfg.Augment.TwoViews(rng, batchRows)
			ctx := NewStepContextOn(tape, rng, t.Backbone, v1, v2)
			loss := t.Method.Loss(ctx)
			if hook != nil {
				loss = hook(ctx, loss)
			}
			opt.ZeroGrad()
			if err := nn.Backward(loss); err != nil {
				tape.Reset()
				return 0, fmt.Errorf("ssl: backward: %w", err)
			}
			if cfg.ClipNorm > 0 {
				opt.ClipGradNorm(cfg.ClipNorm)
			}
			opt.Step()
			t.Method.AfterStep(t.Backbone)
			totalLoss += loss.Value.At(0, 0)
			steps++
			// The step's graph is dead: loss has been read, gradients applied
			// and method state updated (methods deep-copy anything they keep,
			// e.g. MoCo's key queue). Recycle every buffer the step borrowed.
			tape.Reset()
		}
	}
	if steps == 0 {
		return 0, nil
	}
	return totalLoss / float64(steps), nil
}
