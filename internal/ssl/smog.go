package ssl

import (
	"fmt"
	"math/rand"

	"calibre/internal/kmeans"
	"calibre/internal/nn"
	"calibre/internal/tensor"
)

// SMoG implements "Synchronous Momentum Grouping" (Pang et al., ECCV 2022)
// at the scale of this reproduction: features are grouped into momentum-
// updated group centers (replacing instance discrimination with group
// discrimination). Each step classifies every projection against the group
// centers; centers then move toward their assigned members. Group centers
// are synchronized through federation as extra parameters (they are updated
// by momentum, not by gradient, but still averaged across clients — the
// "synchronous" part).
type SMoG struct {
	Tau      float64
	Momentum float64 // center update momentum
	centers  *nn.Param
	started  bool
}

var _ Method = (*SMoG)(nil)

// NewSMoG returns a factory producing SMoG with k groups.
func NewSMoG(k int, tau, momentum float64) Factory {
	return func(rng *rand.Rand, b *Backbone) (Method, error) {
		if k < 2 {
			return nil, fmt.Errorf("ssl: smog needs ≥2 groups, got %d", k)
		}
		c := nn.NewParam("smog.centers", k, b.Arch.ProjDim)
		c.InitHe(rng, b.Arch.ProjDim)
		normed := tensor.L2NormalizeRows(c.Value, 1e-12)
		copy(c.Value.Data(), normed.Data())
		return &SMoG{Tau: tau, Momentum: momentum, centers: c}, nil
	}
}

// Name implements Method.
func (s *SMoG) Name() string { return "smog" }

// Loss classifies both views' projections against the group centers.
func (s *SMoG) Loss(ctx *StepContext) *nn.Node {
	h := nn.ConcatRows(ctx.H1, ctx.H2)
	hn := nn.L2NormalizeRows(h)
	centers := tensor.L2NormalizeRows(s.centers.Value, 1e-12)
	assign := nearestRows(hn.Value, centers)
	s.updateCenters(hn.Value, assign)
	logits := nn.Scale(nn.MatMulTransB(hn, nn.Input(centers)), 1/s.Tau)
	return nn.CrossEntropy(logits, assign)
}

// nearestRows assigns each row of x to its highest-dot-product row of c.
func nearestRows(x, c *tensor.Tensor) []int {
	n := x.Rows()
	k := c.Rows()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestV := 0, tensor.Dot(x.Row(i), c.Row(0))
		for j := 1; j < k; j++ {
			if v := tensor.Dot(x.Row(i), c.Row(j)); v > bestV {
				best, bestV = j, v
			}
		}
		out[i] = best
	}
	return out
}

// updateCenters moves each group's center toward the mean of its assigned
// features with momentum (the synchronous momentum grouping update).
func (s *SMoG) updateCenters(feats *tensor.Tensor, assign []int) {
	k := s.centers.Value.Rows()
	d := s.centers.Value.Cols()
	sums := tensor.New(k, d)
	counts := make([]int, k)
	for i, a := range assign {
		counts[a]++
		row := sums.Row(a)
		f := feats.Row(i)
		for j := 0; j < d; j++ {
			row[j] += f[j]
		}
	}
	for g := 0; g < k; g++ {
		if counts[g] == 0 {
			continue
		}
		crow := s.centers.Value.Row(g)
		mrow := sums.Row(g)
		inv := 1 / float64(counts[g])
		for j := 0; j < d; j++ {
			crow[j] = s.Momentum*crow[j] + (1-s.Momentum)*mrow[j]*inv
		}
	}
	normed := tensor.L2NormalizeRows(s.centers.Value, 1e-12)
	copy(s.centers.Value.Data(), normed.Data())
	s.started = true
}

// AfterStep implements Method (centers are updated inside Loss so the
// assignment and the update see the same features).
func (s *SMoG) AfterStep(*Backbone) {}

// ExtraParams exposes the group centers for federation (averaged across
// clients even though they receive no gradient locally).
func (s *SMoG) ExtraParams() []*nn.Param { return []*nn.Param{s.centers} }

// CarriesLocalState implements Method: the momentum-updated centers are
// federated via ExtraParams (overwritten by each incoming global), so no
// method-local state survives across rounds.
func (s *SMoG) CarriesLocalState() bool { return false }

// Centers returns the current group-center matrix (for tests).
func (s *SMoG) Centers() *tensor.Tensor { return s.centers.Value }

// ResetCentersFromData re-seeds the group centers by clustering the given
// projections. Used when a client first receives a backbone whose centers
// have collapsed.
func (s *SMoG) ResetCentersFromData(rng *rand.Rand, feats *tensor.Tensor) error {
	res, err := kmeans.Run(rng, feats, kmeans.Config{K: s.centers.Value.Rows()})
	if err != nil {
		return fmt.Errorf("ssl: smog reseed: %w", err)
	}
	k := s.centers.Value.Rows()
	for g := 0; g < k && g < res.Centers.Rows(); g++ {
		s.centers.Value.SetRow(g, res.Centers.Row(g))
	}
	normed := tensor.L2NormalizeRows(s.centers.Value, 1e-12)
	copy(s.centers.Value.Data(), normed.Data())
	return nil
}
