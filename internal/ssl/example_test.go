package ssl_test

import (
	"fmt"

	"calibre/internal/ssl"
)

// ExampleMethodNames lists the registry of self-supervised methods that
// plug into the pfl-*/calibre-* federated pipelines. Lookup resolves a name
// to its standard factory.
func ExampleMethodNames() {
	for _, name := range ssl.MethodNames() {
		fmt.Println(name)
	}
	if _, err := ssl.Lookup("simclr"); err == nil {
		fmt.Println("simclr resolves")
	}
	// Output:
	// byol
	// mocov2
	// simclr
	// simsiam
	// smog
	// swav
	// vicreg
	// simclr resolves
}
