package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/nn"
	"calibre/internal/partition"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

func testArch() ssl.Arch {
	return ssl.Arch{InputDim: 16, HiddenDim: 24, FeatDim: 12, ProjDim: 8}
}

func smallSpec() data.Spec {
	spec := data.CIFAR10Spec()
	spec.Dim = 16
	return spec
}

func testClients(t *testing.T, n, perClient int) []*partition.Client {
	t.Helper()
	g, err := data.NewGenerator(smallSpec(), 3)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	ds := g.GenerateLabeled(rng, 12*n)
	parts, err := partition.QuantityNonIID(rng, ds, n, 2, perClient)
	if err != nil {
		t.Fatalf("QuantityNonIID: %v", err)
	}
	unl := g.GenerateUnlabeled(rng, n*10)
	return partition.BuildClients(rng, ds, parts, unl)
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	bad := DefaultOptions()
	bad.Alpha = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative alpha should fail")
	}
	bad = DefaultOptions()
	bad.Tau = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("tau=0 should fail")
	}
	bad = DefaultOptions()
	bad.NumClusters = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("K=1 should fail")
	}
}

func stepCtx(t *testing.T, seed int64, batch int) *ssl.StepContext {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := ssl.NewBackbone(rng, testArch())
	rows := make([][]float64, batch)
	for i := range rows {
		r := make([]float64, 16)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	v1, v2 := data.DefaultAugmenter().TwoViews(rng, rows)
	return ssl.NewStepContext(rng, b, v1, v2)
}

func TestRegularizerAddsTerms(t *testing.T) {
	reg, err := NewRegularizer(DefaultOptions())
	if err != nil {
		t.Fatalf("NewRegularizer: %v", err)
	}
	ctx := stepCtx(t, 1, 16)
	base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
	total := reg.Apply(ctx, base)
	bv, tv := base.Value.At(0, 0), total.Value.At(0, 0)
	if tv == bv {
		t.Fatal("regularizer should change the loss")
	}
	if math.IsNaN(tv) || math.IsInf(tv, 0) {
		t.Fatalf("total loss = %v", tv)
	}
	// Gradient must flow through the regularized loss into the encoder.
	nn.ZeroGrads(ctx.Backbone.Encoder)
	if err := nn.Backward(total); err != nil {
		t.Fatalf("Backward: %v", err)
	}
	var g float64
	for _, p := range ctx.Backbone.Encoder.Params() {
		for _, v := range p.Grad.Data() {
			g += v * v
		}
	}
	if g == 0 {
		t.Fatal("no gradient reached the encoder")
	}
}

func TestRegularizerAlphaZeroIsIdentity(t *testing.T) {
	opts := DefaultOptions()
	opts.Alpha = 0
	reg, err := NewRegularizer(opts)
	if err != nil {
		t.Fatalf("NewRegularizer: %v", err)
	}
	ctx := stepCtx(t, 2, 8)
	base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
	if got := reg.Apply(ctx, base); got != base {
		t.Fatal("alpha=0 must return the base loss unchanged")
	}
}

func TestRegularizerBothTermsDisabledIsIdentity(t *testing.T) {
	opts := DefaultOptions()
	opts.UseLn, opts.UseLp = false, false
	reg, err := NewRegularizer(opts)
	if err != nil {
		t.Fatalf("NewRegularizer: %v", err)
	}
	ctx := stepCtx(t, 3, 8)
	base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
	if got := reg.Apply(ctx, base); got != base {
		t.Fatal("disabled regularizers must be identity")
	}
}

func TestRegularizerSingleTermVariants(t *testing.T) {
	for _, tc := range []struct {
		name         string
		useLn, useLp bool
	}{{"ln-only", true, false}, {"lp-only", false, true}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.UseLn, opts.UseLp = tc.useLn, tc.useLp
			reg, err := NewRegularizer(opts)
			if err != nil {
				t.Fatalf("NewRegularizer: %v", err)
			}
			ctx := stepCtx(t, 4, 16)
			base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
			total := reg.Apply(ctx, base)
			if total.Value.At(0, 0) == base.Value.At(0, 0) {
				t.Fatal("single-term regularizer should still change the loss")
			}
		})
	}
}

func TestRegularizerTinyBatchFallsBack(t *testing.T) {
	reg, err := NewRegularizer(DefaultOptions())
	if err != nil {
		t.Fatalf("NewRegularizer: %v", err)
	}
	ctx := stepCtx(t, 5, 2) // 2 samples can't form 2 two-view clusters reliably
	base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
	total := reg.Apply(ctx, base)
	if v := total.Value.At(0, 0); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("tiny batch loss = %v", v)
	}
}

func TestDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Tight clusters ⇒ low divergence; diffuse cloud ⇒ higher divergence.
	tight := tensor.New(40, 4)
	for i := 0; i < 40; i++ {
		c := float64(i % 2 * 10)
		tight.SetRow(i, []float64{c + rng.NormFloat64()*0.05, c, 0, 0})
	}
	diffuse := tensor.RandN(rng, 5, 40, 4)
	dTight, err := Divergence(rng, tight, 2)
	if err != nil {
		t.Fatalf("Divergence: %v", err)
	}
	dDiffuse, err := Divergence(rng, diffuse, 2)
	if err != nil {
		t.Fatalf("Divergence: %v", err)
	}
	if dTight >= dDiffuse {
		t.Fatalf("tight divergence %v should be < diffuse %v", dTight, dDiffuse)
	}
	if _, err := Divergence(rng, tensor.New(0, 4), 2); err == nil {
		t.Fatal("empty encodings should error")
	}
}

func TestNewValidatesOptions(t *testing.T) {
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Opts.Tau = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("bad options should fail")
	}
	cfg = DefaultConfig(testArch(), "unknown-ssl", 10)
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown SSL method should fail")
	}
	if _, err := NewPFLSSL(DefaultConfig(testArch(), "nope", 10)); err == nil {
		t.Fatal("unknown SSL method should fail for pFL-SSL too")
	}
}

func shortTrainCfg() ssl.TrainConfig {
	cfg := ssl.DefaultTrainConfig()
	cfg.Epochs = 1
	cfg.BatchSize = 16
	return cfg
}

func TestCalibreEndToEndSimulation(t *testing.T) {
	clients := testClients(t, 6, 30)
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Train = shortTrainCfg()
	method, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 3, ClientsPerRound: 3, Seed: 9}, method, clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, hist, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hist) != 3 {
		t.Fatalf("history = %d rounds", len(hist))
	}
	for _, v := range global {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("global vector contains non-finite values")
		}
	}
	accs, err := fl.PersonalizeAll(context.Background(), 9, method, clients, global, 2)
	if err != nil {
		t.Fatalf("PersonalizeAll: %v", err)
	}
	if len(accs) != len(clients) {
		t.Fatalf("accs = %d", len(accs))
	}
	for i, a := range accs {
		if a < 0 || a > 1 {
			t.Fatalf("client %d accuracy %v out of range", i, a)
		}
	}
}

func TestCalibreUpdatesCarryDivergence(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Train = shortTrainCfg()
	method, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	u, err := method.Trainer.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if u.Divergence <= 0 {
		t.Fatalf("divergence = %v, want > 0", u.Divergence)
	}
	if u.NumSamples <= clients[0].Train.Len() {
		t.Fatalf("unlabeled pool should be included: %d", u.NumSamples)
	}
}

func TestPFLSSLHasNoDivergence(t *testing.T) {
	clients := testClients(t, 2, 24)
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Train = shortTrainCfg()
	method, err := NewPFLSSL(cfg)
	if err != nil {
		t.Fatalf("NewPFLSSL: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	u, err := method.Trainer.Train(context.Background(), rng, clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if u.Divergence != 0 {
		t.Fatalf("pFL-SSL should not compute divergence, got %v", u.Divergence)
	}
}

func TestSSLTrainerStatePersistsAcrossRounds(t *testing.T) {
	clients := testClients(t, 1, 24)
	factory, err := ssl.Lookup("mocov2")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	trainer := &SSLTrainer{Arch: testArch(), Factory: factory, Cfg: shortTrainCfg()}
	rng := rand.New(rand.NewSource(12))
	global, err := trainer.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	if _, err := trainer.Train(context.Background(), rng, clients[0], global, 0); err != nil {
		t.Fatalf("Train r0: %v", err)
	}
	st := trainer.states[clients[0].ID]
	queueAfterR0 := st.Method.(*ssl.MoCoV2).QueueLen()
	if queueAfterR0 == 0 {
		t.Fatal("MoCo queue should have grown in round 0")
	}
	if _, err := trainer.Train(context.Background(), rng, clients[0], global, 1); err != nil {
		t.Fatalf("Train r1: %v", err)
	}
	if trainer.states[clients[0].ID] != st {
		t.Fatal("client state must persist across rounds")
	}
}

func TestLinearProbeAcrossAllSSLMethods(t *testing.T) {
	clients := testClients(t, 1, 40)
	for _, name := range ssl.MethodNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			factory, err := ssl.Lookup(name)
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			rng := rand.New(rand.NewSource(13))
			backbone := ssl.NewBackbone(rng, testArch())
			method, err := factory(rng, backbone)
			if err != nil {
				t.Fatalf("factory: %v", err)
			}
			global := nn.Flatten(&ssl.Trainable{Backbone: backbone, Method: method})
			probe := &LinearProbe{Arch: testArch(), Factory: factory, NumClasses: 10, Head: DefaultConfig(testArch(), name, 10).Head}
			acc, err := probe.Personalize(context.Background(), rng, clients[0], global)
			if err != nil {
				t.Fatalf("Personalize: %v", err)
			}
			if acc < 0 || acc > 1 {
				t.Fatalf("accuracy = %v", acc)
			}
		})
	}
}

// Calibre's calibrated representations should produce crisper clusters than
// the raw initialization — measured by divergence dropping over training.
func TestCalibreTrainingReducesDivergence(t *testing.T) {
	clients := testClients(t, 4, 40)
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Train = shortTrainCfg()
	method, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(14))
	global, err := method.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	first, err := method.Trainer.Train(context.Background(), rand.New(rand.NewSource(15)), clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// A few federated rounds of calibration.
	sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 4, ClientsPerRound: 4, Seed: 16}, method, clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	trained, _, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	last, err := method.Trainer.Train(context.Background(), rand.New(rand.NewSource(15)), clients[0], trained, 99)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if math.IsNaN(last.Divergence) {
		t.Fatal("divergence must stay finite")
	}
	// Not a strict inequality test (stochastic), but divergence should not
	// explode after calibration.
	if last.Divergence > first.Divergence*3 {
		t.Fatalf("divergence exploded: %v -> %v", first.Divergence, last.Divergence)
	}
}
