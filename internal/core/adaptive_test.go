package core

import (
	"context"
	"math/rand"
	"testing"

	"calibre/internal/eval"
	"calibre/internal/nn"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

// blobs builds points around k separated centers.
func blobs(rng *rand.Rand, k, perCluster, d int, sep, std float64) (*tensor.Tensor, []int) {
	centers := tensor.RandN(rng, sep, k, d)
	x := tensor.New(k*perCluster, d)
	truth := make([]int, k*perCluster)
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			idx := c*perCluster + i
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = centers.At(c, j) + rng.NormFloat64()*std
			}
			x.SetRow(idx, row)
			truth[idx] = c
		}
	}
	return x, truth
}

func TestSelectKFindsTrueClusterCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, trueK := range []int{2, 3, 4} {
		x, truth := blobs(rng, trueK, 20, 6, 8, 0.3)
		res, err := SelectK(rng, x, 10)
		if err != nil {
			t.Fatalf("SelectK: %v", err)
		}
		if got := res.Centers.Rows(); got != trueK {
			t.Fatalf("SelectK picked K=%d for %d true clusters", got, trueK)
		}
		purity, err := eval.ClusterPurity(res.Assign, truth)
		if err != nil {
			t.Fatalf("ClusterPurity: %v", err)
		}
		if purity < 0.95 {
			t.Fatalf("purity = %v for trueK=%d", purity, trueK)
		}
	}
}

func TestSelectKSmallBatchClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 1, 3, 4)
	res, err := SelectK(rng, x, 10)
	if err != nil {
		t.Fatalf("SelectK: %v", err)
	}
	if res.Centers.Rows() > 3 {
		t.Fatalf("K=%d exceeds n=3", res.Centers.Rows())
	}
}

func TestConfidentMembersFiltersBoundary(t *testing.T) {
	// Two centers at ±5; points at the centers are confident, a point at 0
	// is not.
	centers := tensor.MustFromSlice([]float64{-5, 5}, 2, 1)
	x := tensor.MustFromSlice([]float64{-5, -4.8, 0.1, 4.9, 5}, 5, 1)
	assign := []int{0, 0, 1, 1, 1}
	kept := confidentMembers(x, centers, assign, 0.8)
	for _, i := range kept {
		if i == 2 {
			t.Fatal("the boundary point must be filtered out")
		}
	}
	if len(kept) != 4 {
		t.Fatalf("kept = %v, want 4 members", kept)
	}
	// keepFrac ≤ 0 or ≥ 1 keeps everyone.
	if got := confidentMembers(x, centers, assign, 0); len(got) != 5 {
		t.Fatalf("keepFrac=0 should keep all, got %v", got)
	}
	if got := confidentMembers(x, centers, assign, 1); len(got) != 5 {
		t.Fatalf("keepFrac=1 should keep all, got %v", got)
	}
}

func TestConfidentMembersMinimumTwo(t *testing.T) {
	centers := tensor.MustFromSlice([]float64{-1, 1}, 2, 1)
	x := tensor.MustFromSlice([]float64{-1, 1, 0}, 3, 1)
	kept := confidentMembers(x, centers, []int{0, 1, 0}, 0.01)
	if len(kept) < 2 {
		t.Fatalf("must keep at least 2, got %v", kept)
	}
}

// structuredStepCtx builds a step context whose inputs have clear cluster
// structure, so the silhouette gate passes.
func structuredStepCtx(t *testing.T, seed int64) *ssl.StepContext {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := ssl.NewBackbone(rng, testArch())
	x, _ := blobs(rng, 3, 8, 16, 6, 0.2)
	rows := make([][]float64, x.Rows())
	for i := range rows {
		rows[i] = x.Row(i)
	}
	// Mild augmentation so pairs stay close.
	v1 := tensor.New(x.Rows(), 16)
	v2 := tensor.New(x.Rows(), 16)
	for i, r := range rows {
		a := make([]float64, 16)
		bb := make([]float64, 16)
		for j := range r {
			a[j] = r[j] + rng.NormFloat64()*0.05
			bb[j] = r[j] + rng.NormFloat64()*0.05
		}
		v1.SetRow(i, a)
		v2.SetRow(i, bb)
	}
	return ssl.NewStepContext(rng, b, v1, v2)
}

func TestRegularizerGatePassesOnStructuredData(t *testing.T) {
	reg, err := NewRegularizer(DefaultOptions())
	if err != nil {
		t.Fatalf("NewRegularizer: %v", err)
	}
	ctx := structuredStepCtx(t, 3)
	base := nn.PairNTXent(ctx.H1, ctx.H2, 0.5)
	total := reg.Apply(ctx, base)
	if total == base {
		t.Fatal("structured batch should produce regularizer terms")
	}
}

func TestWarmupDelaysRegularizer(t *testing.T) {
	clients := testClients(t, 1, 30)
	cfg := DefaultConfig(testArch(), "simclr", 10)
	cfg.Train = shortTrainCfg()
	cfg.Opts.WarmupRounds = 5
	method, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	trainer := method.Trainer.(*SSLTrainer)
	rng := rand.New(rand.NewSource(4))
	global, err := trainer.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	// During warm-up (round < 5) the update must match a pFL-SSL update
	// with the same RNG stream: the hook is inactive.
	pflCfg := cfg
	pfl, err := NewPFLSSL(pflCfg)
	if err != nil {
		t.Fatalf("NewPFLSSL: %v", err)
	}
	uCal, err := trainer.Train(context.Background(), rand.New(rand.NewSource(5)), clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	uPfl, err := pfl.Trainer.Train(context.Background(), rand.New(rand.NewSource(5)), clients[0], global, 0)
	if err != nil {
		t.Fatalf("Train pfl: %v", err)
	}
	if uCal.TrainLoss != uPfl.TrainLoss {
		t.Fatalf("warm-up round should train identically to pFL-SSL: %v vs %v", uCal.TrainLoss, uPfl.TrainLoss)
	}
	// Past warm-up the losses diverge (regularizer active).
	uCal2, err := trainer.Train(context.Background(), rand.New(rand.NewSource(5)), clients[0], global, 10)
	if err != nil {
		t.Fatalf("Train r10: %v", err)
	}
	uPfl2, err := pfl.Trainer.Train(context.Background(), rand.New(rand.NewSource(5)), clients[0], global, 10)
	if err != nil {
		t.Fatalf("Train pfl r10: %v", err)
	}
	if uCal2.TrainLoss == uPfl2.TrainLoss {
		t.Fatal("post-warm-up round should include the regularizer")
	}
}
