package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/nn"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/ssl"
	"calibre/internal/tensor"
)

// SSLTrainer is the federated local trainer shared by plain pFL-SSL and
// Calibre: each client keeps a Trainable (backbone + SSL method state),
// loads the global vector into it, runs the local SSL loop (optionally with
// Calibre's regularizer hook), and reports its updated parameters plus —
// for Calibre — its prototype divergence rate.
type SSLTrainer struct {
	Arch    ssl.Arch
	Factory ssl.Factory
	Cfg     ssl.TrainConfig

	// Reg, when non-nil, applies Calibre's prototype regularizers.
	Reg *Regularizer
	// ComputeDivergence reports the divergence rate in updates (used with
	// fl.DivergenceWeighted aggregation).
	ComputeDivergence bool
	// DivergenceClusters is K for the divergence KMeans (defaults to 10).
	DivergenceClusters int
	// UseUnlabeled includes the client's unlabeled pool in SSL training
	// (STL-10's advantage for SSL methods).
	UseUnlabeled bool

	mu     sync.Mutex
	states map[int]*ssl.Trainable
}

var (
	_ fl.Trainer  = (*SSLTrainer)(nil)
	_ fl.Stateful = (*SSLTrainer)(nil)
)

// CarriesRoundState implements fl.Stateful by asking the SSL method:
// momentum flavors (BYOL, MoCo) keep an EMA target network or key queue
// inside the cached per-client Trainable that nn.Unflatten does not
// overwrite, so a cold-started process cannot resume them
// bit-identically. The answer comes from a throwaway probe instance —
// statefulness is a property of the flavor, not of any particular
// weights. A factory that cannot even construct is reported stateful so
// resume fails closed (the real error surfaces on the training path).
func (t *SSLTrainer) CarriesRoundState() bool {
	rng := rand.New(rand.NewSource(0))
	method, err := t.Factory(rng, ssl.NewBackbone(rng, t.Arch))
	if err != nil {
		return true
	}
	return method.CarriesLocalState()
}

// clientState burns exactly one rng draw in both branches (it seeds the
// construction RNG on first use), so the caller's downstream stream never
// depends on whether this process has seen the client before — the
// invariance checkpoint resume relies on (see baselines.supBase.state).
func (t *SSLTrainer) clientState(rng *rand.Rand, id int) (*ssl.Trainable, error) {
	initSeed := rng.Int63()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.states == nil {
		t.states = make(map[int]*ssl.Trainable)
	}
	if st, ok := t.states[id]; ok {
		return st, nil
	}
	initRNG := rand.New(rand.NewSource(initSeed))
	backbone := ssl.NewBackbone(initRNG, t.Arch)
	method, err := t.Factory(initRNG, backbone)
	if err != nil {
		return nil, fmt.Errorf("core: method init for client %d: %w", id, err)
	}
	st := &ssl.Trainable{Backbone: backbone, Method: method}
	t.states[id] = st
	return st, nil
}

// Train implements fl.Trainer.
func (t *SSLTrainer) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := t.clientState(rng, client.ID)
	if err != nil {
		return nil, err
	}
	if err := nn.Unflatten(st, global); err != nil {
		return nil, fmt.Errorf("core: load global into client %d: %w", client.ID, err)
	}
	rows := client.Train.X
	if t.UseUnlabeled && client.Unlabeled != nil {
		rows = append(append([][]float64{}, rows...), client.Unlabeled.X...)
	}
	var hook ssl.LossHook
	if t.Reg != nil && round >= t.Reg.Opts.WarmupRounds {
		hook = t.Reg.Apply
	}
	loss, err := ssl.Train(rng, st, rows, t.Cfg, hook)
	if err != nil {
		return nil, fmt.Errorf("core: local SSL update for client %d: %w", client.ID, err)
	}
	update := &fl.Update{
		ClientID:   client.ID,
		Params:     nn.Flatten(st),
		NumSamples: len(rows),
		TrainLoss:  loss,
	}
	if t.ComputeDivergence {
		k := t.DivergenceClusters
		if k < 2 {
			k = 10
		}
		enc := st.Backbone.EncodeValue(batchOf(client.Train.X))
		div, err := Divergence(rng, enc, k)
		if err != nil {
			return nil, fmt.Errorf("core: divergence for client %d: %w", client.ID, err)
		}
		update.Divergence = div
	}
	return update, nil
}

func batchOf(rows [][]float64) *tensor.Tensor {
	if len(rows) == 0 {
		return tensor.New(0, 0)
	}
	out := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		out.SetRow(i, r)
	}
	return out
}

// InitGlobal builds the initial flattened global vector for this trainer's
// architecture + method (every client shares the layout).
func (t *SSLTrainer) InitGlobal(rng *rand.Rand) (param.Vector, error) {
	backbone := ssl.NewBackbone(rng, t.Arch)
	method, err := t.Factory(rng, backbone)
	if err != nil {
		return nil, fmt.Errorf("core: init global: %w", err)
	}
	return nn.Flatten(&ssl.Trainable{Backbone: backbone, Method: method}), nil
}

// LinearProbe is the personalization stage shared by all two-stage SSL
// methods: reconstruct the encoder from the global vector, extract features
// for the client's local train/test sets, train a linear head (10 epochs of
// SGD at 0.05 in the paper) and report the local test accuracy.
type LinearProbe struct {
	Arch       ssl.Arch
	Factory    ssl.Factory
	NumClasses int
	Head       model.HeadConfig
}

var _ fl.Personalizer = (*LinearProbe)(nil)

// Personalize implements fl.Personalizer.
func (p *LinearProbe) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	backbone := ssl.NewBackbone(rng, p.Arch)
	method, err := p.Factory(rng, backbone)
	if err != nil {
		return 0, fmt.Errorf("core: probe init: %w", err)
	}
	st := &ssl.Trainable{Backbone: backbone, Method: method}
	if err := nn.Unflatten(st, global); err != nil {
		return 0, fmt.Errorf("core: probe load global: %w", err)
	}
	return model.LinearProbeAccuracy(rng, backbone.EncodeValue, client.Train, client.Test, p.NumClasses, p.Head)
}

// Config assembles a complete Calibre or pFL-SSL method.
type Config struct {
	Arch       ssl.Arch
	NumClasses int
	SSLName    string // one of ssl.MethodNames()
	Train      ssl.TrainConfig
	Head       model.HeadConfig
	Opts       Options
	// UseUnlabeled lets SSL training consume clients' unlabeled pools.
	UseUnlabeled bool
}

// DefaultConfig returns a ready-to-run configuration for the given
// architecture, SSL flavor and class count.
func DefaultConfig(arch ssl.Arch, sslName string, numClasses int) Config {
	return Config{
		Arch:         arch,
		NumClasses:   numClasses,
		SSLName:      sslName,
		Train:        ssl.DefaultTrainConfig(),
		Head:         model.DefaultHeadConfig(),
		Opts:         DefaultOptions(),
		UseUnlabeled: true,
	}
}

// New builds the full Calibre method: SSL training with prototype
// regularizers, divergence-weighted aggregation, linear-probe
// personalization.
func New(cfg Config) (*fl.Method, error) {
	factory, err := ssl.Lookup(cfg.SSLName)
	if err != nil {
		return nil, err
	}
	reg, err := NewRegularizer(cfg.Opts)
	if err != nil {
		return nil, err
	}
	trainer := &SSLTrainer{
		Arch:               cfg.Arch,
		Factory:            factory,
		Cfg:                cfg.Train,
		Reg:                reg,
		ComputeDivergence:  true,
		DivergenceClusters: cfg.Opts.NumClusters,
		UseUnlabeled:       cfg.UseUnlabeled,
	}
	return &fl.Method{
		Name:       fmt.Sprintf("calibre-%s", cfg.SSLName),
		Trainer:    trainer,
		Aggregator: &fl.DivergenceWeighted{Temperature: cfg.Opts.AggTemperature},
		Personalizer: &LinearProbe{
			Arch:       cfg.Arch,
			Factory:    factory,
			NumClasses: cfg.NumClasses,
			Head:       cfg.Head,
		},
		InitGlobal: trainer.InitGlobal,
	}, nil
}

// NewPFLSSL builds the uncalibrated pFL-SSL baseline (paper §III-B): the
// same two-stage pipeline with plain SSL training and FedAvg aggregation.
func NewPFLSSL(cfg Config) (*fl.Method, error) {
	factory, err := ssl.Lookup(cfg.SSLName)
	if err != nil {
		return nil, err
	}
	trainer := &SSLTrainer{
		Arch:         cfg.Arch,
		Factory:      factory,
		Cfg:          cfg.Train,
		UseUnlabeled: cfg.UseUnlabeled,
	}
	return &fl.Method{
		Name:       fmt.Sprintf("pfl-%s", cfg.SSLName),
		Trainer:    trainer,
		Aggregator: fl.WeightedAverage{},
		Personalizer: &LinearProbe{
			Arch:       cfg.Arch,
			Factory:    factory,
			NumClasses: cfg.NumClasses,
			Head:       cfg.Head,
		},
		InitGlobal: trainer.InitGlobal,
	}, nil
}
