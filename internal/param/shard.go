package param

import "calibre/internal/tensor"

// MinShard is the smallest element range worth dispatching to the kernel
// pool; reductions over fewer elements per shard run serially. The value
// keeps per-shard work well above the pool's dispatch overhead for the
// simple fused multiply-add loops aggregation runs.
const MinShard = 4096

// Shard runs fn over contiguous disjoint subranges covering [0, n),
// dispatched on the shared tensor kernel pool (the same pool the matmul
// kernels and concurrently-training clients ride, so total kernel
// concurrency stays bounded by callers + tensor.Workers()). fn must touch
// only its own [lo, hi) range; every element then belongs to exactly one
// invocation, so a per-element reduction performs the identical float
// operations in the identical order as a serial sweep — sharded
// aggregation is bit-identical to serial aggregation. Small n (or a
// single-worker pool) degrades to one inline fn(0, n) call.
func Shard(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	tensor.ParallelRanges(n, MinShard, fn)
}
