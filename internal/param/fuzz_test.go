package param

import (
	"math"
	"testing"
)

// FuzzDeltaApply is the decoder-hardening gate, mirroring the
// internal/store convention: arbitrary payload bytes applied against a
// fuzzer-chosen reference must never panic or over-allocate — they either
// decode to a vector of exactly the reference's length or return a typed
// error. Additional discovered seeds live in testdata/fuzz/FuzzDeltaApply.
func FuzzDeltaApply(f *testing.F) {
	good, _ := Diff(Vector{1, 2, 3, 4}, Vector{1, 9, 3, 4})
	f.Add(4, uint64(0x3ff0000000000000), good.Bits)
	f.Add(0, uint64(0), []byte(nil))
	f.Add(3, uint64(0x7ff8deadbeef0001), []byte{0, 3, 1, 2, 3})
	f.Add(8, uint64(42), []byte{8, 0})
	f.Add(2, uint64(1), []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Fuzz(func(t *testing.T, n int, refBits uint64, bits []byte) {
		if n < 0 || n > 1<<12 {
			return
		}
		ref := make(Vector, n)
		for i := range ref {
			ref[i] = math.Float64frombits(refBits ^ uint64(i))
		}
		d := &Delta{Len: n, Bits: bits}
		v, err := d.Apply(ref)
		if (v == nil) == (err == nil) {
			t.Fatalf("Apply returned vector=%v err=%v", v, err)
		}
		changed, cerr := d.Changed()
		if (err == nil) != (cerr == nil) {
			t.Fatalf("Apply err=%v but Changed err=%v", err, cerr)
		}
		if err != nil {
			return
		}
		if len(v) != n {
			t.Fatalf("decoded %d elements, want %d", len(v), n)
		}
		// A payload Apply accepts must be canonical: re-encoding the decoded
		// vector reproduces the input bytes exactly (decode is injective).
		re, derr := Diff(ref, v)
		if derr != nil {
			t.Fatalf("re-Diff: %v", derr)
		}
		if string(re.Bits) != string(bits) {
			t.Fatalf("accepted non-canonical payload: %x decodes, canonical form is %x", bits, re.Bits)
		}
		got := 0
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(ref[i]) {
				got++
			}
		}
		if got != changed {
			t.Fatalf("Changed = %d, actual changed elements %d", changed, got)
		}
	})
}

// FuzzDeltaRoundTrip checks the inverse property: any pair of bit
// patterns the fuzzer can describe — NaN payloads, ±0, denormals —
// round-trips bit-identically through Diff/Apply.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add(uint64(0x7ff8deadbeef0001), uint64(0x8000000000000000), uint64(1), 5)
	f.Add(uint64(0), uint64(0), uint64(0x000fffffffffffff), 1)
	f.Add(uint64(0x3ff0000000000000), uint64(0x3ff0000000000001), uint64(0x7ff0000000000000), 64)
	f.Fuzz(func(t *testing.T, a, b, c uint64, n int) {
		if n < 0 || n > 1<<10 {
			return
		}
		ref := make(Vector, n)
		v := make(Vector, n)
		for i := range ref {
			ref[i] = math.Float64frombits(a + uint64(i)*c)
			switch i % 3 {
			case 0:
				v[i] = ref[i]
			case 1:
				v[i] = math.Float64frombits(b ^ uint64(i))
			default:
				v[i] = math.Float64frombits(c * uint64(i))
			}
		}
		d, err := Diff(ref, v)
		if err != nil {
			t.Fatalf("Diff: %v", err)
		}
		got, err := d.Apply(ref)
		if err != nil {
			t.Fatalf("Apply rejected its own encoding: %v", err)
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				t.Fatalf("element %d: got bits %#x, want %#x", i, math.Float64bits(got[i]), math.Float64bits(v[i]))
			}
		}
	})
}
