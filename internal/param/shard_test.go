package param

import (
	"sync"
	"testing"

	"calibre/internal/tensor"
)

// TestShardCoversExactlyOnce pins the decomposition contract: every
// element of [0, n) is visited by exactly one shard, for sizes around the
// MinShard boundary and well past it.
func TestShardCoversExactlyOnce(t *testing.T) {
	tensor.SetWorkers(4)
	defer tensor.SetWorkers(0)
	for _, n := range []int{0, 1, MinShard - 1, MinShard, MinShard + 1, 4 * MinShard, 4*MinShard + 3} {
		visits := make([]int32, n)
		var mu sync.Mutex
		covered := 0
		Shard(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				visits[i]++
			}
			mu.Lock()
			covered += hi - lo
			mu.Unlock()
		})
		if covered != n {
			t.Fatalf("n=%d: shards covered %d elements", n, covered)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: element %d visited %d times", n, i, v)
			}
		}
	}
}

// TestShardReductionBitIdentical pins that a sharded fused
// multiply-add reduction equals the serial sweep bit-for-bit — the
// property the aggregators rely on.
func TestShardReductionBitIdentical(t *testing.T) {
	n := 3*MinShard + 17
	x := make(Vector, n)
	y := make(Vector, n)
	for i := range x {
		x[i] = float64(i)*1.0000001 - 7
		y[i] = 0.1 * float64(n-i)
	}
	serial := make(Vector, n)
	for i := 0; i < n; i++ {
		serial[i] = 0.25*x[i] + 0.75*y[i]
	}
	for _, workers := range []int{1, 2, 7} {
		tensor.SetWorkers(workers)
		sharded := make(Vector, n)
		Shard(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sharded[i] = 0.25*x[i] + 0.75*y[i]
			}
		})
		if !bitsEqual(serial, sharded) {
			t.Fatalf("workers=%d: sharded reduction differs from serial", workers)
		}
	}
	tensor.SetWorkers(0)
}
