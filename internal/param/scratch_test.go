package param

import (
	"math"
	"math/rand"
	"testing"
)

// TestDiffIntoReusesBits pins the encoder's zero-alloc contract: repeated
// DiffInto calls into one Delta reuse the Bits backing array once it has
// grown to steady-state capacity, and each encode matches a fresh Diff
// byte-for-byte.
func TestDiffIntoReusesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ref := make(Vector, 128)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}
	scratch := &Delta{}
	for round := 0; round < 5; round++ {
		v := ref.Clone()
		for i := 0; i < len(v); i += 3 {
			v[i] += 1e-7 * float64(round+1)
		}
		var before *byte
		if cap(scratch.Bits) > 0 {
			before = &scratch.Bits[:cap(scratch.Bits)][0]
		}
		if err := DiffInto(scratch, ref, v); err != nil {
			t.Fatalf("round %d: DiffInto: %v", round, err)
		}
		fresh, err := Diff(ref, v)
		if err != nil {
			t.Fatalf("round %d: Diff: %v", round, err)
		}
		if scratch.Len != fresh.Len || string(scratch.Bits) != string(fresh.Bits) {
			t.Fatalf("round %d: DiffInto encoding differs from Diff", round)
		}
		if round > 0 && before != nil && cap(scratch.Bits) > 0 && &scratch.Bits[:cap(scratch.Bits)][0] != before {
			t.Fatalf("round %d: Bits backing array was reallocated", round)
		}
		got, err := scratch.Apply(ref)
		if err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		for i := range v {
			if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
				t.Fatalf("round %d: element %d differs after round-trip", round, i)
			}
		}
	}
}

// TestApplyIntoReusesScratch pins the decoder's buffer contract: a scratch
// vector of exactly d.Len is written in place (no allocation), any other
// length gets a fresh vector, and every element of the result is
// overwritten even when the scratch holds stale garbage.
func TestApplyIntoReusesScratch(t *testing.T) {
	ref := Vector{1, 2, 3, 4, 5}
	v := Vector{1, 2.5, 3, 4, 5.5}
	d, err := Diff(ref, v)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}

	scratch := make(Vector, len(ref))
	for i := range scratch {
		scratch[i] = math.NaN() // stale garbage must be fully overwritten
	}
	got, err := d.ApplyInto(scratch, ref)
	if err != nil {
		t.Fatalf("ApplyInto: %v", err)
	}
	if &got[0] != &scratch[0] {
		t.Fatal("matching-length scratch was not reused")
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("element %d = %v, want %v", i, got[i], v[i])
		}
	}

	short := make(Vector, 2)
	got, err = d.ApplyInto(short, ref)
	if err != nil {
		t.Fatalf("ApplyInto short scratch: %v", err)
	}
	if len(got) != len(ref) {
		t.Fatalf("decoded %d elements, want %d", len(got), len(ref))
	}
	if &got[0] == &short[0] {
		t.Fatal("wrong-length scratch must not be reused")
	}

	// Nil scratch behaves exactly like Apply, including for empty vectors:
	// a decoded empty vector is non-nil so callers can distinguish it from
	// the nil-vector error case.
	empty, err := Diff(Vector{}, Vector{})
	if err != nil {
		t.Fatalf("Diff empty: %v", err)
	}
	out, err := empty.ApplyInto(nil, Vector{})
	if err != nil {
		t.Fatalf("ApplyInto empty: %v", err)
	}
	if out == nil {
		t.Fatal("empty decode returned a nil vector")
	}
}
