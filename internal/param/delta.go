package param

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Typed delta-codec errors. Apply never panics and never allocates more
// than Len implies, whatever bytes it is handed — hostile input from the
// wire or a corrupt snapshot yields one of these, wrapped with context.
var (
	// ErrLenMismatch marks a delta applied to (or diffed from) a vector of
	// the wrong length.
	ErrLenMismatch = errors.New("param: delta length does not match the reference vector")
	// ErrCorrupt marks a delta payload that is not a canonical encoding:
	// truncated, trailing bytes, impossible run lengths, zero words inside
	// a literal run, or non-minimal varints.
	ErrCorrupt = errors.New("param: corrupt delta payload")
)

// Delta is the lossless encoded difference between a Vector and a
// reference Vector (see the package comment for the format). The zero
// value is not meaningful; build one with Diff.
type Delta struct {
	// Len is the element count of the vectors the delta relates.
	Len int
	// Bits is the canonical zero-run/varint encoding of the per-element
	// IEEE-754 XOR words.
	Bits []byte
}

// Size returns the encoded payload size in bytes — the wire cost of
// shipping this delta, as opposed to DenseSize for the full vector.
func (d *Delta) Size() int { return len(d.Bits) }

// DenseSize returns the raw cost of the dense vector the delta stands in
// for: 8 bytes per element.
func (d *Delta) DenseSize() int { return 8 * d.Len }

// Changed returns how many elements differ from the reference. A
// non-canonical payload yields ErrCorrupt exactly as Apply would.
func (d *Delta) Changed() (int, error) {
	if d.Len < 0 {
		return 0, fmt.Errorf("%w: negative length %d", ErrCorrupt, d.Len)
	}
	dec := newDeltaDecoder(d)
	changed := 0
	for dec.remaining > 0 {
		_, lits, err := dec.block()
		if err != nil {
			return 0, err
		}
		changed += lits
		for i := 0; i < lits; i++ {
			if _, err := dec.word(); err != nil {
				return 0, err
			}
		}
	}
	if err := dec.finish(); err != nil {
		return 0, err
	}
	return changed, nil
}

// Diff encodes v against ref. The two vectors must have the same length;
// reconstruction via Apply(ref) is bit-identical to v.
func Diff(ref, v Vector) (*Delta, error) {
	d := &Delta{}
	if err := DiffInto(d, ref, v); err != nil {
		return nil, err
	}
	return d, nil
}

// DiffInto is Diff writing into a caller-owned Delta, reusing dst.Bits'
// capacity so steady-state round loops encode without allocating. dst's
// previous contents are discarded; on error dst is left unusable and must
// not be applied.
func DiffInto(dst *Delta, ref, v Vector) error {
	if len(ref) != len(v) {
		return fmt.Errorf("%w: reference has %d elements, vector has %d", ErrLenMismatch, len(ref), len(v))
	}
	bits := dst.Bits[:0]
	if cap(bits) == 0 {
		bits = make([]byte, 0, 16+len(v))
	}
	dst.Len = len(v)
	i := 0
	for i < len(v) {
		zeros := i
		for i < len(v) && math.Float64bits(v[i]) == math.Float64bits(ref[i]) {
			i++
		}
		zeroRun := i - zeros
		lits := i
		for i < len(v) && math.Float64bits(v[i]) != math.Float64bits(ref[i]) {
			i++
		}
		bits = binary.AppendUvarint(bits, uint64(zeroRun))
		bits = binary.AppendUvarint(bits, uint64(i-lits))
		for j := lits; j < i; j++ {
			bits = binary.AppendUvarint(bits, math.Float64bits(v[j])^math.Float64bits(ref[j]))
		}
	}
	dst.Bits = bits
	return nil
}

// deltaDecoder is a bounds-checked cursor over a delta payload that
// enforces the canonical form: maximal runs, minimal varints, exact
// element count, no trailing bytes.
type deltaDecoder struct {
	bits      []byte
	off       int
	total     int
	remaining int
}

func newDeltaDecoder(d *Delta) *deltaDecoder {
	return &deltaDecoder{bits: d.Bits, total: d.Len, remaining: d.Len}
}

// uvarint reads one minimal-form LEB128 value.
func (dec *deltaDecoder) uvarint() (uint64, error) {
	var v uint64
	for n := 0; n < 10; n++ {
		if dec.off >= len(dec.bits) {
			return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		b := dec.bits[dec.off]
		dec.off++
		if n == 9 && b > 1 {
			return 0, fmt.Errorf("%w: varint overflows 64 bits", ErrCorrupt)
		}
		if b < 0x80 {
			if n > 0 && b == 0 {
				return 0, fmt.Errorf("%w: non-minimal varint", ErrCorrupt)
			}
			return v | uint64(b)<<(7*n), nil
		}
		v |= uint64(b&0x7f) << (7 * n)
	}
	return 0, fmt.Errorf("%w: varint longer than 10 bytes", ErrCorrupt)
}

// block reads one (zeroRun, litCount) header, enforcing run maximality.
func (dec *deltaDecoder) block() (zeros, lits int, err error) {
	z, err := dec.uvarint()
	if err != nil {
		return 0, 0, err
	}
	l, err := dec.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if z > uint64(dec.remaining) || l > uint64(dec.remaining)-z {
		return 0, 0, fmt.Errorf("%w: run of %d+%d elements, %d remain", ErrCorrupt, z, l, dec.remaining)
	}
	switch {
	case z == 0 && l == 0:
		return 0, 0, fmt.Errorf("%w: empty block", ErrCorrupt)
	case z == 0 && l > 0 && dec.remaining != dec.total:
		// Only the first block may start with no zeros; a later block with
		// zeroRun 0 should have been merged into the previous literal run.
		return 0, 0, fmt.Errorf("%w: zero-length zero run after the first block", ErrCorrupt)
	case l == 0 && z != uint64(dec.remaining):
		// A block with no literals is only canonical as the final trailing-
		// zeros block; anything else splits one zero run in two.
		return 0, 0, fmt.Errorf("%w: literal-free block before the end", ErrCorrupt)
	}
	dec.remaining -= int(z) + int(l)
	return int(z), int(l), nil
}

// word reads one literal XOR word, which canonically is never zero.
func (dec *deltaDecoder) word() (uint64, error) {
	w, err := dec.uvarint()
	if err != nil {
		return 0, err
	}
	if w == 0 {
		return 0, fmt.Errorf("%w: zero word in a literal run", ErrCorrupt)
	}
	return w, nil
}

func (dec *deltaDecoder) finish() error {
	if dec.off != len(dec.bits) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(dec.bits)-dec.off)
	}
	return nil
}

// Apply reconstructs the vector d encodes against ref — bit-identical to
// the vector originally passed to Diff. ref is never modified. Length
// mismatches yield ErrLenMismatch; any non-canonical payload yields
// ErrCorrupt.
func (d *Delta) Apply(ref Vector) (Vector, error) {
	return d.ApplyInto(nil, ref)
}

// ApplyInto is Apply decoding into scratch when it has exactly d.Len
// elements (any other length — including nil — allocates fresh), so round
// loops can reuse one decode buffer per client slot. Every element of the
// result is overwritten on success; on error the scratch contents are
// unspecified and the returned vector is nil. scratch must not alias ref.
func (d *Delta) ApplyInto(scratch, ref Vector) (Vector, error) {
	if d.Len != len(ref) {
		return nil, fmt.Errorf("%w: delta encodes %d elements, reference has %d", ErrLenMismatch, d.Len, len(ref))
	}
	out := scratch
	if out == nil || len(out) != d.Len {
		out = make(Vector, d.Len)
	}
	dec := newDeltaDecoder(d)
	i := 0
	for dec.remaining > 0 {
		zeros, lits, err := dec.block()
		if err != nil {
			return nil, err
		}
		copy(out[i:i+zeros], ref[i:i+zeros])
		i += zeros
		for j := 0; j < lits; j++ {
			w, err := dec.word()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(math.Float64bits(ref[i]) ^ w)
			i++
		}
	}
	if err := dec.finish(); err != nil {
		return nil, err
	}
	return out, nil
}
