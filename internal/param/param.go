// Package param is the update plane's typed parameter representation: the
// Vector every layer of the runtime exchanges instead of bare []float64
// slices, the lossless Delta encoding that makes per-round traffic scale
// with what changed rather than with model size, and the Shard helper that
// dispatches element-range reductions onto the shared tensor kernel pool.
//
// # Delta format
//
// A Delta is the bit-exact difference between a vector and a reference
// vector both sides already hold (the round's global model). Per element,
// the encoder XORs the two IEEE-754 bit patterns; elements that did not
// change XOR to zero, and elements that moved only slightly XOR to a word
// whose high (sign/exponent/upper-mantissa) bits are zero. The word
// sequence is then run/varint coded:
//
//	uvarint zeroRun   elements unchanged from the reference
//	uvarint litCount  changed elements that follow
//	litCount × uvarint(xorWord)
//	… repeated until exactly Len elements are consumed
//
// Unchanged elements cost amortized fractions of a byte, slightly-changed
// elements 4–7 bytes instead of 8, and the encoding is canonical: the
// encoder emits maximal runs and minimal varints, and Apply rejects
// anything else (trailing bytes, truncation, zero words hiding in literal
// runs, non-minimal varints), so exactly one byte string decodes to any
// given delta. Reconstruction is pure XOR — bit-identical for every
// payload including NaN bit patterns, ±0 and denormals — which is what
// lets compressed updates preserve the repo's 0-ULP and kill/resume
// bit-identity guarantees.
package param

import "math"

// Vector is a model parameter vector in nn.Flatten layout. It is a named
// slice type, so existing []float64 values convert freely; the name is the
// update plane's contract marker: anything typed Vector may be carried as
// a Delta on the wire or in an incremental snapshot.
type Vector []float64

// Clone returns an independent copy of v (nil stays nil).
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	return append(Vector(nil), v...)
}

// L2Dist returns the Euclidean distance ‖a−b‖₂ over the common prefix of
// a and b (callers are expected to pass equal-length vectors; the prefix
// rule keeps the helper total). The accumulation is a single serial
// left-to-right loop, so the result is bit-deterministic regardless of
// kernel pool size — which is what lets the health plane's update-norm
// detectors promise identical verdicts at any worker count.
func L2Dist(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
