package param

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual reports bit-identity, the only equality the update plane
// accepts (== would conflate NaN payloads and ±0).
func bitsEqual(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func roundTrip(t *testing.T, ref, v Vector) *Delta {
	t.Helper()
	d, err := Diff(ref, v)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	got, err := d.Apply(ref)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !bitsEqual(got, v) {
		t.Fatalf("round trip not bit-identical:\n ref=%v\n   v=%v\n got=%v", ref, v, got)
	}
	return d
}

// TestDeltaRoundTripAdversarial pins bit-exact reconstruction on the float
// patterns that break "close enough" codecs: NaNs with distinct payloads,
// signed zeros, denormals, infinities and full-range magnitudes.
func TestDeltaRoundTripAdversarial(t *testing.T) {
	nanA := math.Float64frombits(0x7ff8_dead_beef_0001)
	nanB := math.Float64frombits(0x7ff8_0000_0000_0042)
	denorm := math.Float64frombits(1)                      // smallest positive denormal
	denorm2 := math.Float64frombits(0x000f_ffff_ffff_ffff) // largest denormal
	cases := []struct {
		name   string
		ref, v Vector
	}{
		{"identical", Vector{1, 2, 3}, Vector{1, 2, 3}},
		{"empty", Vector{}, Vector{}},
		{"nan-payloads", Vector{nanA, 0, nanA}, Vector{nanB, nanA, nanA}},
		{"signed-zero", Vector{0, math.Copysign(0, -1)}, Vector{math.Copysign(0, -1), 0}},
		{"denormals", Vector{0, denorm, 1}, Vector{denorm, denorm2, 1}},
		{"infinities", Vector{math.Inf(1), 1}, Vector{math.Inf(-1), math.Inf(1)}},
		{"extremes", Vector{math.MaxFloat64, -math.MaxFloat64}, Vector{-math.MaxFloat64, math.SmallestNonzeroFloat64}},
		{"leading-zeros", Vector{1, 2, 3, 4}, Vector{1, 2, 9, 9}},
		{"trailing-zeros", Vector{1, 2, 3, 4}, Vector{9, 9, 3, 4}},
		{"alternating", Vector{1, 2, 3, 4, 5}, Vector{9, 2, 9, 4, 9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := roundTrip(t, c.ref, c.v)
			changed, err := d.Changed()
			if err != nil {
				t.Fatalf("Changed: %v", err)
			}
			want := 0
			for i := range c.v {
				if math.Float64bits(c.v[i]) != math.Float64bits(c.ref[i]) {
					want++
				}
			}
			if changed != want {
				t.Fatalf("Changed = %d, want %d", changed, want)
			}
		})
	}
}

// TestDeltaRoundTripRandom sweeps random trajectories: SGD-like nudges,
// sparse changes and fully random bit patterns all reconstruct exactly.
func TestDeltaRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		ref := make(Vector, n)
		v := make(Vector, n)
		for i := range ref {
			ref[i] = rng.NormFloat64()
			switch rng.Intn(4) {
			case 0: // unchanged
				v[i] = ref[i]
			case 1: // SGD-like nudge
				v[i] = ref[i] + 1e-3*rng.NormFloat64()
			case 2: // arbitrary bits, NaNs included
				v[i] = math.Float64frombits(rng.Uint64())
			default:
				v[i] = rng.NormFloat64()
			}
		}
		roundTrip(t, ref, v)
	}
}

// TestDeltaCompression pins the size behavior the wire relies on: sparse
// and close updates compress, unchanged vectors are nearly free.
func TestDeltaCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10000
	ref := make(Vector, n)
	for i := range ref {
		ref[i] = rng.NormFloat64()
	}

	same := ref.Clone()
	d := roundTrip(t, ref, same)
	if d.Size() > 8 {
		t.Errorf("unchanged vector encodes to %d bytes, want a few", d.Size())
	}

	sparse := ref.Clone()
	for i := 0; i < n; i += 20 { // 5% changed
		sparse[i] = rng.NormFloat64()
	}
	d = roundTrip(t, ref, sparse)
	if d.Size() >= d.DenseSize()/2 {
		t.Errorf("5%%-changed vector encodes to %d bytes, dense is %d", d.Size(), d.DenseSize())
	}

	close := ref.Clone()
	for i := range close {
		close[i] += 1e-9 * ref[i]
	}
	d = roundTrip(t, ref, close)
	if d.Size() >= d.DenseSize() {
		t.Errorf("close vector encodes to %d bytes, dense is %d", d.Size(), d.DenseSize())
	}
}

func TestDiffLenMismatch(t *testing.T) {
	if _, err := Diff(Vector{1}, Vector{1, 2}); err == nil {
		t.Fatal("Diff accepted mismatched lengths")
	}
	d, err := Diff(Vector{1, 2}, Vector{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(Vector{1}); err == nil {
		t.Fatal("Apply accepted a reference of the wrong length")
	}
}

// TestDeltaRejectsNonCanonical walks the decoder gates: truncation,
// trailing bytes, zero literals, split runs and non-minimal varints must
// all be rejected, so exactly one byte string decodes to any delta.
func TestDeltaRejectsNonCanonical(t *testing.T) {
	ref := Vector{1, 2, 3, 4}
	good, err := Diff(ref, Vector{1, 9, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	reject := func(name string, d *Delta) {
		t.Helper()
		if _, err := d.Apply(ref); err == nil {
			t.Errorf("%s: Apply accepted a non-canonical payload", name)
		}
		if _, err := d.Changed(); err == nil {
			t.Errorf("%s: Changed accepted a non-canonical payload", name)
		}
	}
	reject("truncated", &Delta{Len: good.Len, Bits: good.Bits[:len(good.Bits)-1]})
	reject("trailing", &Delta{Len: good.Len, Bits: append(good.Bits[:len(good.Bits):len(good.Bits)], 0)})
	reject("empty-bits", &Delta{Len: 4, Bits: nil})
	reject("empty-block", &Delta{Len: 4, Bits: []byte{0, 0, 4, 0}})
	// zeroRun 4 followed by literals past the end.
	reject("overrun", &Delta{Len: 4, Bits: []byte{4, 1, 7}})
	// A zero XOR word inside a literal run (canonically part of a zero run).
	reject("zero-literal", &Delta{Len: 4, Bits: []byte{0, 2, 7, 0, 2, 0}})
	// Literal-free block that is not the trailing-zeros block.
	reject("split-zero-run", &Delta{Len: 4, Bits: []byte{1, 0, 3, 0}})
	// zeroRun 0 on a non-first block (should merge with previous literals).
	reject("split-literal-run", &Delta{Len: 4, Bits: []byte{0, 1, 7, 0, 1, 9, 2, 0}})
	// Non-minimal varint: 1 encoded as 0x81 0x00.
	reject("non-minimal-varint", &Delta{Len: 4, Bits: []byte{0x81, 0x00, 1, 7, 2, 0}})
	// Varint longer than a uint64.
	reject("varint-overflow", &Delta{Len: 4, Bits: []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}})
	reject("negative-len", &Delta{Len: -1, Bits: nil})
}

// TestDeltaEncodingDeterministic pins byte-determinism: the same pair
// always yields the same payload (the store's incremental snapshots rely
// on encode injectivity).
func TestDeltaEncodingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref := make(Vector, 500)
	v := make(Vector, 500)
	for i := range ref {
		ref[i] = rng.NormFloat64()
		if i%3 == 0 {
			v[i] = ref[i]
		} else {
			v[i] = rng.NormFloat64()
		}
	}
	a, _ := Diff(ref, v)
	b, _ := Diff(ref, v)
	if string(a.Bits) != string(b.Bits) || a.Len != b.Len {
		t.Fatal("Diff is not deterministic")
	}
}
