package health

import (
	"reflect"
	"testing"

	"calibre/internal/obs"
	"calibre/internal/trace"
)

// TestReplaySamplesServerTrace reconstructs a server-style round — update
// events in network-arrival order, an ingress rejection, a deadline
// straggler — and checks the sample matches what the live server fed its
// monitor: clients in dispatch order, the rejection in both StragglerIDs
// and RejectedIDs (sorted), DeadlineExpired inferred from the
// straggler-reason drop.
func TestReplaySamplesServerTrace(t *testing.T) {
	ev := func(kind trace.Kind, round, client int, mut ...func(*trace.Event)) trace.Event {
		e := trace.Event{Kind: kind, Runtime: "server", Round: round, Client: client}
		for _, m := range mut {
			m(&e)
		}
		return e
	}
	events := []trace.Event{
		ev(trace.KindRoundStart, 0, -1, func(e *trace.Event) { e.N = 5 }),
		ev(trace.KindClientDispatch, 0, 3),
		ev(trace.KindClientDispatch, 0, 1),
		ev(trace.KindClientDispatch, 0, 4),
		ev(trace.KindClientDispatch, 0, 0),
		ev(trace.KindClientDispatch, 0, 2),
		// Arrival order scrambles dispatch order.
		ev(trace.KindClientUpdate, 0, 4, func(e *trace.Event) { e.Loss = 0.4; e.Norm = 4 }),
		ev(trace.KindClientDrop, 0, 2, func(e *trace.Event) { e.Reason = trace.DropAdversarial }),
		ev(trace.KindClientUpdate, 0, 1, func(e *trace.Event) { e.Loss = 0.1; e.Norm = 1 }),
		ev(trace.KindClientUpdate, 0, 3, func(e *trace.Event) { e.Loss = 0.3; e.Norm = 3 }),
		// Deadline expiry: client 0 never answered.
		ev(trace.KindClientDrop, 0, 0, func(e *trace.Event) { e.Reason = trace.DropStraggler }),
		ev(trace.KindRoundEnd, 0, -1, func(e *trace.Event) { e.N = 3; e.Loss = 0.25 }),
		// A second, torn round: dropped, like the live monitor never saw it.
		ev(trace.KindRoundStart, 1, -1, func(e *trace.Event) { e.N = 2 }),
		ev(trace.KindClientDispatch, 1, 0),
	}
	got := ReplaySamples(events)
	want := []obs.RoundSample{{
		Runtime:      "server",
		Round:        0,
		Participants: 5,
		Responders:   3,
		Stragglers:   2,
		// Dispatch order was 3, 1, 4, 0, 2 — the live sample lists the
		// three responders in that order, not arrival order.
		Clients: []obs.ClientSample{
			{ID: 3, Loss: 0.3, Norm: 3},
			{ID: 1, Loss: 0.1, Norm: 1},
			{ID: 4, Loss: 0.4, Norm: 4},
		},
		StragglerIDs:    []int{2, 0},
		RejectedIDs:     []int{2},
		DeadlineExpired: true,
		MeanLoss:        0.25,
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReplaySamples = %+v\nwant %+v", got, want)
	}
}

// TestReplaySamplesSimTrace covers the simulator's shape: drops before
// any dispatch, no rejections, no deadline — and a trace-reason drop
// never inferring deadline expiry.
func TestReplaySamplesSimTrace(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRoundStart, Runtime: "sim", Round: 0, Client: -1, N: 3},
		{Kind: trace.KindClientDispatch, Runtime: "sim", Round: 0, Client: 0},
		{Kind: trace.KindClientDispatch, Runtime: "sim", Round: 0, Client: 2},
		{Kind: trace.KindClientDrop, Runtime: "sim", Round: 0, Client: 1, Reason: trace.DropTrace},
		{Kind: trace.KindClientUpdate, Runtime: "sim", Round: 0, Client: 0, Loss: 0.5, Norm: 1},
		{Kind: trace.KindClientUpdate, Runtime: "sim", Round: 0, Client: 2, Loss: 0.7, Norm: 2},
		{Kind: trace.KindRoundEnd, Runtime: "sim", Round: 0, Client: -1, N: 2, Loss: 0.6},
	}
	got := ReplaySamples(events)
	want := []obs.RoundSample{{
		Runtime:      "sim",
		Round:        0,
		Participants: 3,
		Responders:   2,
		Stragglers:   1,
		Clients: []obs.ClientSample{
			{ID: 0, Loss: 0.5, Norm: 1},
			{ID: 2, Loss: 0.7, Norm: 2},
		},
		StragglerIDs: []int{1},
		MeanLoss:     0.6,
	}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ReplaySamples = %+v\nwant %+v", got, want)
	}
}
