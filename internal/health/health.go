package health

import (
	"container/list"
	"fmt"
	"math"
	"sort"
	"sync"

	"calibre/internal/obs"
)

// Severity ranks an alert. Higher is worse.
type Severity int

const (
	// SevInfo marks advisory findings (a plateau, say) that need no
	// operator action.
	SevInfo Severity = iota
	// SevWarn marks trends that threaten the run's outcome if they
	// continue: loss divergence, fairness-gap drift, quorum erosion.
	SevWarn
	// SevCrit marks findings that already compromise the run: NaN/Inf
	// in the loss stream, or a client whose updates look adversarial.
	SevCrit
)

// String returns the fixed wire spelling: "info", "warn" or "crit".
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevCrit:
		return "crit"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the three string forms produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = SevInfo
	case `"warn"`:
		*s = SevWarn
	case `"crit"`:
		*s = SevCrit
	default:
		return fmt.Errorf("health: unknown severity %s", b)
	}
	return nil
}

// Alert is one detector finding. Alerts are edge-triggered: a rule that
// stays in violation for ten rounds raises one alert when it first trips,
// not ten copies; it re-arms once the condition clears.
type Alert struct {
	// Rule is the detector that fired (one of the rule names accepted by
	// ParseRules).
	Rule string `json:"rule"`
	// Severity ranks the finding; see the Severity constants.
	Severity Severity `json:"severity"`
	// Round is the federation round at which the rule tripped.
	Round int `json:"round"`
	// Client is the implicated client ID, or -1 for federation-scoped
	// findings.
	Client int `json:"client"`
	// Value is the observed statistic and Threshold the bound it crossed.
	// Both are always finite (non-finite observations are described in
	// Message instead, keeping the JSON encodable).
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Message is a human-readable one-liner.
	Message string `json:"message"`
}

// String renders the alert as one log line.
func (a Alert) String() string {
	if a.Client >= 0 {
		return fmt.Sprintf("[%s] round %d client %d · %s: %s", a.Severity, a.Round, a.Client, a.Rule, a.Message)
	}
	return fmt.Sprintf("[%s] round %d · %s: %s", a.Severity, a.Round, a.Rule, a.Message)
}

// ClientScore is one client's folded health: participation decay,
// straggler rate, update-norm outlier rounds and rejected updates
// combined into a [0,1] score (1 = healthy). The score is a pure
// function of the integer counters below plus the monitor's round
// counter, so it is bit-identical across runs that observed the same
// round stream.
type ClientScore struct {
	ID        int     `json:"id"`
	Score     float64 `json:"score"`
	Sampled   int     `json:"sampled"`
	Responded int     `json:"responded"`
	Straggled int     `json:"straggled,omitempty"`
	Outliers  int     `json:"outliers,omitempty"`
	Rejected  int     `json:"rejected,omitempty"`
	Suspect   bool    `json:"suspect,omitempty"`
}

// Diagnosis is the monitor's full verdict at one instant — what /healthz
// serves and calibre-doctor renders.
type Diagnosis struct {
	// Rounds is the number of round samples observed.
	Rounds int `json:"rounds"`
	// Alerts lists raised alerts in raise order (oldest dropped beyond
	// the MaxAlerts bound; Dropped counts the losses).
	Alerts  []Alert `json:"alerts,omitempty"`
	Dropped int     `json:"alerts_dropped,omitempty"`
	// Critical counts SevCrit alerts ever raised (including dropped).
	Critical int `json:"critical"`
	// Suspects lists suspected-adversary client IDs in ascending order.
	Suspects []int `json:"suspects,omitempty"`
	// Clients ranks per-client scores least-healthy first (ties by ID).
	Clients []ClientScore `json:"clients,omitempty"`
}

// clientState is one client's row in the monitor's bounded LRU.
type clientState struct {
	id        int
	sampled   int
	responded int
	straggled int
	rejected  int
	outliers  int
	suspect   bool
	lastSeen  int // monitor round counter at last appearance
}

// decayRounds is the absence horizon for the participation-decay term of
// the client score: a client unseen for this many observed rounds is
// fully stale.
const decayRounds = 8

// Monitor is the streaming detector engine. Feed it one obs.RoundSample
// per completed round via ObserveRound; read verdicts via Diagnosis. All
// methods are safe for concurrent use and safe on a nil receiver
// (observation becomes a no-op returning nil), so runtime code
// instruments unconditionally.
//
// Every detector is a pure function of the observed sample stream —
// wall-clock fields (DurationMS) are never read — so two runs that
// produce the same round stream produce bit-identical diagnoses
// regardless of worker counts or scheduling.
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	rounds int

	lossInit bool
	lossEWMA float64
	bestLoss float64
	lossRing []float64

	gapInit bool
	gapEWMA float64

	stragInit      bool
	stragEWMA      float64
	deadlineStreak int

	clients   map[int]*list.Element
	clientsLL *list.List

	active map[string]bool

	alerts   []Alert
	dropped  int
	critical int
	suspects int

	scratch  []float64
	scratch2 []float64
}

// NewMonitor returns a monitor for cfg; nil cfg (or an all-zero one)
// means DefaultConfig. The config is copied and normalized (zero-valued
// thresholds of enabled rules get their defaults), so a shared Config can
// seed many independent monitors — the sweep scheduler builds one per
// cell this way.
func NewMonitor(cfg *Config) *Monitor {
	var c Config
	if cfg == nil {
		c = DefaultConfig()
	} else {
		c = *cfg
		c.normalize()
	}
	return &Monitor{
		cfg:       c,
		clients:   make(map[int]*list.Element),
		clientsLL: list.New(),
		active:    make(map[string]bool),
	}
}

// Config returns the monitor's normalized configuration.
func (m *Monitor) Config() Config {
	if m == nil {
		return Config{}
	}
	return m.cfg
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// ObserveRound feeds one completed round through every enabled detector
// and returns the alerts that tripped this round (nil when none, and on
// a nil monitor). Samples must be fed in round order; the caller decides
// what a "round stream" is (one federation, one sweep cell, …).
func (m *Monitor) ObserveRound(s obs.RoundSample) []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rounds++

	var out []Alert

	emit := func(a Alert) {
		out = append(out, a)
		if a.Severity == SevCrit {
			m.critical++
		}
		m.alerts = append(m.alerts, a)
		if max := m.cfg.MaxAlerts; len(m.alerts) > max {
			over := len(m.alerts) - max
			m.alerts = append(m.alerts[:0], m.alerts[over:]...)
			m.dropped += over
		}
	}
	// edge implements rising-edge triggering: an alert fires when its
	// condition first becomes true and re-arms when it clears.
	edge := func(key string, firing bool, mk func() Alert) {
		if firing && !m.active[key] {
			m.active[key] = true
			emit(mk())
		} else if !firing {
			m.active[key] = false
		}
	}

	// Per-client accounting first, so the norm detector and scores see
	// this round's appearances.
	for _, c := range s.Clients {
		cs := m.client(c.ID)
		cs.sampled++
		cs.responded++
		cs.lastSeen = m.rounds
	}
	for _, id := range s.StragglerIDs {
		cs := m.client(id)
		cs.sampled++
		cs.straggled++
		cs.lastSeen = m.rounds
	}
	for _, id := range s.RejectedIDs {
		m.client(id).rejected++
	}
	m.evict()

	// non-finite: NaN/Inf anywhere in the loss/norm stream is already a
	// broken run.
	if m.cfg.NonFinite {
		bad := 0
		if !isFinite(s.MeanLoss) {
			bad++
		}
		for _, c := range s.Clients {
			if !isFinite(c.Loss) || !isFinite(c.Norm) {
				bad++
			}
		}
		edge("non-finite", bad > 0, func() Alert {
			return Alert{
				Rule: "non-finite", Severity: SevCrit, Round: s.Round, Client: -1,
				Value: float64(bad), Threshold: 0,
				Message: fmt.Sprintf("%d non-finite loss/norm value(s) observed — run is numerically broken", bad),
			}
		})
	}

	// Smoothed federation loss feeds both divergence and plateau. Only
	// finite losses fold into the EWMA so one NaN round cannot poison
	// every later verdict.
	if isFinite(s.MeanLoss) {
		if !m.lossInit {
			m.lossInit = true
			m.lossEWMA = s.MeanLoss
			m.bestLoss = s.MeanLoss
		} else {
			a := m.cfg.Alpha
			m.lossEWMA = a*s.MeanLoss + (1-a)*m.lossEWMA
		}
		if m.lossEWMA < m.bestLoss {
			m.bestLoss = m.lossEWMA
		}
		if m.cfg.Plateau {
			m.lossRing = append(m.lossRing, s.MeanLoss)
			if len(m.lossRing) > m.cfg.PlateauWindow {
				m.lossRing = append(m.lossRing[:0], m.lossRing[len(m.lossRing)-m.cfg.PlateauWindow:]...)
			}
		}
	}

	if m.cfg.Divergence && m.lossInit {
		rise := m.lossEWMA - m.bestLoss
		thr := m.cfg.DivergenceFactor * math.Max(math.Abs(m.bestLoss), 1e-9)
		firing := m.rounds > m.cfg.DivergenceWarmup && rise > thr
		edge("loss-divergence", firing, func() Alert {
			return Alert{
				Rule: "loss-divergence", Severity: SevWarn, Round: s.Round, Client: -1,
				Value: rise, Threshold: thr,
				Message: fmt.Sprintf("smoothed loss %.4g rose %.4g above its best %.4g (threshold %.4g)", m.lossEWMA, rise, m.bestLoss, thr),
			}
		})
	}

	if m.cfg.Plateau && len(m.lossRing) >= m.cfg.PlateauWindow {
		first, last := m.lossRing[0], m.lossRing[len(m.lossRing)-1]
		impr := (first - last) / math.Max(math.Abs(first), 1e-9)
		firing := impr >= 0 && impr < m.cfg.PlateauEps
		edge("plateau", firing, func() Alert {
			return Alert{
				Rule: "plateau", Severity: SevInfo, Round: s.Round, Client: -1,
				Value: impr, Threshold: m.cfg.PlateauEps,
				Message: fmt.Sprintf("loss improved %.4g over the last %d rounds (threshold %.4g) — training has flatlined", impr, m.cfg.PlateauWindow, m.cfg.PlateauEps),
			}
		})
	}

	// fairness-drift: trajectory of (mean of the worst decile's losses −
	// mean loss), smoothed, relative to the loss scale. A federation
	// whose tail clients fall behind shows a growing gap long before the
	// final fairness table does.
	if m.cfg.Fairness && len(s.Clients) > 0 {
		m.scratch = m.scratch[:0]
		ok := true
		var sum float64
		for _, c := range s.Clients {
			if !isFinite(c.Loss) {
				ok = false
				break
			}
			m.scratch = append(m.scratch, c.Loss)
			sum += c.Loss
		}
		if ok {
			sort.Sort(sort.Reverse(sort.Float64Slice(m.scratch)))
			k := (len(m.scratch) + 9) / 10
			var worst float64
			for _, v := range m.scratch[:k] {
				worst += v
			}
			gap := worst/float64(k) - sum/float64(len(m.scratch))
			if !m.gapInit {
				m.gapInit = true
				m.gapEWMA = gap
			} else {
				a := m.cfg.Alpha
				m.gapEWMA = a*gap + (1-a)*m.gapEWMA
			}
			thr := m.cfg.FairnessFactor * math.Max(math.Abs(m.lossEWMA), 1e-9)
			firing := m.rounds > m.cfg.FairnessWarmup && m.gapEWMA > thr
			edge("fairness-drift", firing, func() Alert {
				return Alert{
					Rule: "fairness-drift", Severity: SevWarn, Round: s.Round, Client: -1,
					Value: m.gapEWMA, Threshold: thr,
					Message: fmt.Sprintf("worst-decile loss gap %.4g exceeds %.4g (%.4g× the smoothed loss) — tail clients are falling behind", m.gapEWMA, thr, m.cfg.FairnessFactor),
				}
			})
		}
	}

	// norm-z: robust (median/MAD) modified z-score over this round's
	// update norms. Plain mean/σ breaks at the contamination levels that
	// matter (30% sign-flip attackers drag the mean toward themselves);
	// the median absolute deviation keeps honest clients near z≈0 and
	// attackers far outside any threshold.
	if m.cfg.NormZ && len(s.Clients) >= 4 {
		m.scratch = m.scratch[:0]
		ok := true
		for _, c := range s.Clients {
			if !isFinite(c.Norm) {
				ok = false
				break
			}
			m.scratch = append(m.scratch, c.Norm)
		}
		if ok {
			m.scratch2 = append(m.scratch2[:0], m.scratch...)
			sort.Float64s(m.scratch2)
			med := median(m.scratch2)
			for i, v := range m.scratch2 {
				m.scratch2[i] = math.Abs(v - med)
			}
			sort.Float64s(m.scratch2)
			mad := median(m.scratch2)
			if mad == 0 {
				// Degenerate cohort (≥half the norms identical): fall
				// back to the mean absolute deviation.
				var sum float64
				for _, v := range m.scratch2 {
					sum += v
				}
				mad = sum / float64(len(m.scratch2))
			}
			if mad > 0 {
				for i, c := range s.Clients {
					z := math.Abs(0.6745 * (m.scratch[i] - med) / mad)
					if z < m.cfg.NormZThreshold {
						continue
					}
					cs := m.client(c.ID)
					cs.outliers++
					if cs.outliers == m.cfg.SuspectAfter && !cs.suspect {
						cs.suspect = true
						m.suspects++
						id := c.ID
						emit(Alert{
							Rule: "norm-z", Severity: SevCrit, Round: s.Round, Client: id,
							Value: z, Threshold: m.cfg.NormZThreshold,
							Message: fmt.Sprintf("update norm %.4g is a robust z=%.3g outlier (threshold %.3g) in %d rounds — suspected adversary", m.scratch[i], z, m.cfg.NormZThreshold, cs.outliers),
						})
					}
				}
			}
		}
	}

	// quorum: straggler-rate EWMA and consecutive deadline-expired
	// rounds. Either trend means the federation is sliding from
	// everyone-responds to barely-quorum.
	if m.cfg.Quorum {
		if s.Participants > 0 {
			rate := float64(s.Stragglers) / float64(s.Participants)
			if !m.stragInit {
				m.stragInit = true
				m.stragEWMA = rate
			} else {
				a := m.cfg.Alpha
				m.stragEWMA = a*rate + (1-a)*m.stragEWMA
			}
			firing := m.rounds > m.cfg.QuorumWarmup && m.stragEWMA > m.cfg.QuorumStragglerRate
			edge("quorum-rate", firing, func() Alert {
				return Alert{
					Rule: "quorum", Severity: SevWarn, Round: s.Round, Client: -1,
					Value: m.stragEWMA, Threshold: m.cfg.QuorumStragglerRate,
					Message: fmt.Sprintf("smoothed straggler rate %.3g exceeds %.3g — rounds are closing on quorum, not consensus", m.stragEWMA, m.cfg.QuorumStragglerRate),
				}
			})
		}
		if s.DeadlineExpired {
			m.deadlineStreak++
		} else {
			m.deadlineStreak = 0
		}
		streak := m.deadlineStreak
		firing := streak >= m.cfg.QuorumWarmup && m.cfg.QuorumWarmup > 0
		edge("quorum-deadline", firing, func() Alert {
			return Alert{
				Rule: "quorum", Severity: SevWarn, Round: s.Round, Client: -1,
				Value: float64(streak), Threshold: float64(m.cfg.QuorumWarmup),
				Message: fmt.Sprintf("%d consecutive rounds closed by deadline expiry — the deadline budget no longer fits the cohort", streak),
			}
		})
	}

	return out
}

// client returns (creating if needed) the LRU row for id and marks it
// most-recently-used.
func (m *Monitor) client(id int) *clientState {
	if el, ok := m.clients[id]; ok {
		m.clientsLL.MoveToFront(el)
		return el.Value.(*clientState)
	}
	cs := &clientState{id: id}
	m.clients[id] = m.clientsLL.PushFront(cs)
	return cs
}

// evict trims the client table to its LRU bound. Suspect rows are
// retained preferentially: forgetting a flagged adversary because 4096
// honest clients touched the table since would defeat the detector.
func (m *Monitor) evict() {
	max := m.cfg.MaxClients
	for len(m.clients) > max {
		el := m.clientsLL.Back()
		// Walk forward past suspect rows; give up if everything left is
		// suspect (then the bound wins over retention).
		for el != nil && el.Value.(*clientState).suspect {
			el = el.Prev()
		}
		if el == nil {
			el = m.clientsLL.Back()
		}
		delete(m.clients, el.Value.(*clientState).id)
		m.clientsLL.Remove(el)
	}
}

// median of a sorted non-empty slice.
func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// SuspectCount returns the number of clients currently flagged as
// suspected adversaries (0 on nil).
func (m *Monitor) SuspectCount() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suspects
}

// Diagnosis snapshots the monitor's verdict: all retained alerts, the
// suspect set, and per-client scores ranked least-healthy first. The
// result is a deep copy and deterministic — equal observation streams
// yield byte-equal JSON encodings.
func (m *Monitor) Diagnosis() Diagnosis {
	if m == nil {
		return Diagnosis{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d := Diagnosis{
		Rounds:   m.rounds,
		Dropped:  m.dropped,
		Critical: m.critical,
	}
	if len(m.alerts) > 0 {
		d.Alerts = append([]Alert(nil), m.alerts...)
	}
	for el := m.clientsLL.Front(); el != nil; el = el.Next() {
		cs := el.Value.(*clientState)
		d.Clients = append(d.Clients, m.score(cs))
		if cs.suspect {
			d.Suspects = append(d.Suspects, cs.id)
		}
	}
	sort.Ints(d.Suspects)
	sort.Slice(d.Clients, func(i, j int) bool {
		if d.Clients[i].Score != d.Clients[j].Score {
			return d.Clients[i].Score < d.Clients[j].Score
		}
		return d.Clients[i].ID < d.Clients[j].ID
	})
	return d
}

// score folds one client's counters into its [0,1] health score. The
// weights privilege the adversary signal (outlier rounds) over the
// availability signals (straggling, staleness).
func (m *Monitor) score(cs *clientState) ClientScore {
	sampled := cs.sampled
	if sampled < 1 {
		sampled = 1
	}
	responded := cs.responded
	if responded < 1 {
		responded = 1
	}
	outlierFrac := float64(cs.outliers) / float64(responded)
	stragRate := float64(cs.straggled) / float64(sampled)
	rejFrac := float64(cs.rejected) / float64(sampled)
	stale := float64(m.rounds-cs.lastSeen) / decayRounds
	if stale > 1 {
		stale = 1
	}
	if stale < 0 {
		stale = 0
	}
	penalty := 0.45*outlierFrac + 0.2*stragRate + 0.2*rejFrac + 0.15*stale
	if penalty > 1 {
		penalty = 1
	}
	return ClientScore{
		ID:        cs.id,
		Score:     1 - penalty,
		Sampled:   cs.sampled,
		Responded: cs.responded,
		Straggled: cs.straggled,
		Outliers:  cs.outliers,
		Rejected:  cs.rejected,
		Suspect:   cs.suspect,
	}
}
