package health_test

import (
	"fmt"

	"calibre/internal/health"
	"calibre/internal/obs"
)

// ExampleMonitor feeds a monitor three rounds of a six-client federation
// in which client 4 ships update norms an order of magnitude off the
// cohort's median. The robust norm-z detector flags it as a suspected
// adversary on its second outlier round — no robust aggregator needed.
func ExampleMonitor() {
	mon := health.NewMonitor(&health.Config{NormZ: true, SuspectAfter: 2})
	for round := 0; round < 3; round++ {
		s := obs.RoundSample{Runtime: "sim", Round: round, Participants: 6, Responders: 6, MeanLoss: 0.9}
		for id := 0; id < 6; id++ {
			norm := 1 + 0.01*float64(id)
			if id == 4 {
				norm = 12
			}
			s.Clients = append(s.Clients, obs.ClientSample{ID: id, Loss: 0.9, Norm: norm})
		}
		for _, a := range mon.ObserveRound(s) {
			fmt.Printf("%s round %d client %d: %s\n", a.Severity, a.Round, a.Client, a.Rule)
		}
	}
	fmt.Println("suspects:", mon.Diagnosis().Suspects)
	// Output:
	// crit round 1 client 4: norm-z
	// suspects: [4]
}

// ExampleParseRules parses a rule spec with partially-omitted arguments
// and prints its canonical form — the fixed point ParseRules and
// Config.Rules round-trip through.
func ExampleParseRules() {
	cfg, err := health.ParseRules("non-finite, norm-z(3), quorum(0.4,6)")
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg.Rules())
	// Output:
	// non-finite,norm-z(3,2),quorum(0.4,6)
}
