package health

import (
	"fmt"
	"strconv"
	"strings"
)

// Detector defaults. Enabled rules with zero-valued knobs are filled
// from these by NewMonitor, so Config{Divergence: true} means "the
// divergence rule at stock thresholds".
const (
	DefaultAlpha            = 0.3
	DefaultDivergenceFactor = 1.5
	DefaultDivergenceWarmup = 3
	DefaultPlateauWindow    = 16
	DefaultPlateauEps       = 1e-3
	DefaultFairnessFactor   = 0.5
	DefaultFairnessWarmup   = 5
	DefaultNormZThreshold   = 3.5
	DefaultSuspectAfter     = 2
	DefaultQuorumRate       = 0.5
	DefaultQuorumWarmup     = 4
	DefaultMaxClients       = 4096
	DefaultMaxAlerts        = 1024
)

// Config selects and parameterizes the detectors a Monitor runs. The
// textual form handled by ParseRules / Config.Rules is the comma-joined
// rule list, e.g.
//
//	non-finite,loss-divergence(1.5,3),norm-z(3.5,2)
//
// Rule knobs are positional and optional; Alpha, MaxClients and
// MaxAlerts are engine-level knobs outside the rule grammar.
type Config struct {
	// NonFinite raises SevCrit when a NaN/Inf appears in the loss or
	// update-norm stream.
	NonFinite bool
	// Divergence raises SevWarn when the smoothed federation loss rises
	// more than DivergenceFactor × |best| above its best, after
	// DivergenceWarmup rounds.
	Divergence       bool
	DivergenceFactor float64
	DivergenceWarmup int
	// Plateau raises SevInfo when loss improves less than PlateauEps
	// (relative) over a full PlateauWindow-round window.
	Plateau       bool
	PlateauWindow int
	PlateauEps    float64
	// Fairness raises SevWarn when the smoothed worst-decile loss gap
	// exceeds FairnessFactor × |smoothed loss|, after FairnessWarmup
	// rounds.
	Fairness       bool
	FairnessFactor float64
	FairnessWarmup int
	// NormZ flags clients whose update norm is a robust (median/MAD)
	// z-score outlier beyond NormZThreshold; a client outlying in
	// SuspectAfter rounds is declared a suspect (SevCrit).
	NormZ          bool
	NormZThreshold float64
	SuspectAfter   int
	// Quorum raises SevWarn when the smoothed straggler rate exceeds
	// QuorumStragglerRate (after QuorumWarmup rounds) or QuorumWarmup
	// consecutive rounds close by deadline expiry.
	Quorum              bool
	QuorumStragglerRate float64
	QuorumWarmup        int

	// Alpha is the EWMA smoothing factor shared by every trend detector
	// (0 < Alpha ≤ 1; default 0.3).
	Alpha float64
	// MaxClients bounds the per-client LRU table (default 4096);
	// MaxAlerts bounds retained alerts (default 1024, oldest dropped).
	MaxClients int
	MaxAlerts  int
}

// DefaultConfig returns every detector enabled at stock thresholds —
// what `-health default` means on the CLIs.
func DefaultConfig() Config {
	c := Config{NonFinite: true, Divergence: true, Plateau: true, Fairness: true, NormZ: true, Quorum: true}
	c.normalize()
	return c
}

// normalize fills zero-valued knobs of enabled rules and engine knobs
// with their defaults.
func (c *Config) normalize() {
	if c.DivergenceFactor <= 0 {
		c.DivergenceFactor = DefaultDivergenceFactor
	}
	if c.DivergenceWarmup <= 0 {
		c.DivergenceWarmup = DefaultDivergenceWarmup
	}
	if c.PlateauWindow < 2 {
		c.PlateauWindow = DefaultPlateauWindow
	}
	if c.PlateauEps <= 0 {
		c.PlateauEps = DefaultPlateauEps
	}
	if c.FairnessFactor <= 0 {
		c.FairnessFactor = DefaultFairnessFactor
	}
	if c.FairnessWarmup <= 0 {
		c.FairnessWarmup = DefaultFairnessWarmup
	}
	if c.NormZThreshold <= 0 {
		c.NormZThreshold = DefaultNormZThreshold
	}
	if c.SuspectAfter < 1 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.QuorumStragglerRate <= 0 {
		c.QuorumStragglerRate = DefaultQuorumRate
	}
	if c.QuorumWarmup <= 0 {
		c.QuorumWarmup = DefaultQuorumWarmup
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = DefaultAlpha
	}
	if c.MaxClients < 1 {
		c.MaxClients = DefaultMaxClients
	}
	if c.MaxAlerts < 1 {
		c.MaxAlerts = DefaultMaxAlerts
	}
}

// Enabled reports whether any rule is on.
func (c Config) Enabled() bool {
	return c.NonFinite || c.Divergence || c.Plateau || c.Fairness || c.NormZ || c.Quorum
}

func fnum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Rules renders the enabled rules as the canonical spec string —
// ParseRules(c.Rules()) reproduces c's rule selection and thresholds
// exactly (the round-trip the fuzz harness pins).
func (c Config) Rules() string {
	n := c
	n.normalize()
	var parts []string
	if n.NonFinite {
		parts = append(parts, "non-finite")
	}
	if n.Divergence {
		parts = append(parts, fmt.Sprintf("loss-divergence(%s,%d)", fnum(n.DivergenceFactor), n.DivergenceWarmup))
	}
	if n.Plateau {
		parts = append(parts, fmt.Sprintf("plateau(%d,%s)", n.PlateauWindow, fnum(n.PlateauEps)))
	}
	if n.Fairness {
		parts = append(parts, fmt.Sprintf("fairness-drift(%s,%d)", fnum(n.FairnessFactor), n.FairnessWarmup))
	}
	if n.NormZ {
		parts = append(parts, fmt.Sprintf("norm-z(%s,%d)", fnum(n.NormZThreshold), n.SuspectAfter))
	}
	if n.Quorum {
		parts = append(parts, fmt.Sprintf("quorum(%s,%d)", fnum(n.QuorumStragglerRate), n.QuorumWarmup))
	}
	return strings.Join(parts, ",")
}

// ParseRules parses a rule spec — a comma-separated list of rule names
// with optional positional arguments — into a Config. The special spec
// "default" (or "all") selects DefaultConfig. Grammar per rule:
//
//	non-finite
//	loss-divergence(factor[,warmupRounds])
//	plateau(windowRounds[,relEps])
//	fairness-drift(factor[,warmupRounds])
//	norm-z(zThreshold[,suspectAfterRounds])
//	quorum(stragglerRate[,warmupRounds])
//
// Omitted arguments take the Default* values. ParseRules(c.Rules())
// round-trips for every valid c.
func ParseRules(spec string) (Config, error) {
	var c Config
	s := strings.TrimSpace(spec)
	if s == "default" || s == "all" {
		return DefaultConfig(), nil
	}
	if s == "" {
		return c, fmt.Errorf("health: empty rule spec")
	}
	for _, item := range splitRules(s) {
		item = strings.TrimSpace(item)
		if item == "" {
			return c, fmt.Errorf("health: empty rule in spec %q", spec)
		}
		name, args, err := splitRule(item)
		if err != nil {
			return c, err
		}
		switch name {
		case "non-finite":
			if len(args) != 0 {
				return c, fmt.Errorf("health: non-finite takes no arguments")
			}
			if c.NonFinite {
				return c, fmt.Errorf("health: duplicate rule non-finite")
			}
			c.NonFinite = true
		case "loss-divergence":
			if c.Divergence {
				return c, fmt.Errorf("health: duplicate rule loss-divergence")
			}
			c.Divergence = true
			if err := takeFloat(args, 0, &c.DivergenceFactor, func(f float64) bool { return f > 0 }); err != nil {
				return c, fmt.Errorf("loss-divergence factor: %w", err)
			}
			if err := takeInt(args, 1, &c.DivergenceWarmup, func(n int) bool { return n >= 1 }); err != nil {
				return c, fmt.Errorf("loss-divergence warmup: %w", err)
			}
			if len(args) > 2 {
				return c, fmt.Errorf("health: loss-divergence takes at most 2 arguments")
			}
		case "plateau":
			if c.Plateau {
				return c, fmt.Errorf("health: duplicate rule plateau")
			}
			c.Plateau = true
			if err := takeInt(args, 0, &c.PlateauWindow, func(n int) bool { return n >= 2 }); err != nil {
				return c, fmt.Errorf("plateau window: %w", err)
			}
			if err := takeFloat(args, 1, &c.PlateauEps, func(f float64) bool { return f > 0 }); err != nil {
				return c, fmt.Errorf("plateau eps: %w", err)
			}
			if len(args) > 2 {
				return c, fmt.Errorf("health: plateau takes at most 2 arguments")
			}
		case "fairness-drift":
			if c.Fairness {
				return c, fmt.Errorf("health: duplicate rule fairness-drift")
			}
			c.Fairness = true
			if err := takeFloat(args, 0, &c.FairnessFactor, func(f float64) bool { return f > 0 }); err != nil {
				return c, fmt.Errorf("fairness-drift factor: %w", err)
			}
			if err := takeInt(args, 1, &c.FairnessWarmup, func(n int) bool { return n >= 1 }); err != nil {
				return c, fmt.Errorf("fairness-drift warmup: %w", err)
			}
			if len(args) > 2 {
				return c, fmt.Errorf("health: fairness-drift takes at most 2 arguments")
			}
		case "norm-z":
			if c.NormZ {
				return c, fmt.Errorf("health: duplicate rule norm-z")
			}
			c.NormZ = true
			if err := takeFloat(args, 0, &c.NormZThreshold, func(f float64) bool { return f > 0 }); err != nil {
				return c, fmt.Errorf("norm-z threshold: %w", err)
			}
			if err := takeInt(args, 1, &c.SuspectAfter, func(n int) bool { return n >= 1 }); err != nil {
				return c, fmt.Errorf("norm-z suspect-after: %w", err)
			}
			if len(args) > 2 {
				return c, fmt.Errorf("health: norm-z takes at most 2 arguments")
			}
		case "quorum":
			if c.Quorum {
				return c, fmt.Errorf("health: duplicate rule quorum")
			}
			c.Quorum = true
			if err := takeFloat(args, 0, &c.QuorumStragglerRate, func(f float64) bool { return f > 0 && f <= 1 }); err != nil {
				return c, fmt.Errorf("quorum straggler-rate: %w", err)
			}
			if err := takeInt(args, 1, &c.QuorumWarmup, func(n int) bool { return n >= 1 }); err != nil {
				return c, fmt.Errorf("quorum warmup: %w", err)
			}
			if len(args) > 2 {
				return c, fmt.Errorf("health: quorum takes at most 2 arguments")
			}
		default:
			return c, fmt.Errorf("health: unknown rule %q", name)
		}
	}
	c.normalize()
	return c, nil
}

// splitRules splits a spec on commas that are not inside parentheses.
func splitRules(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// splitRule splits "name(a,b)" into name and trimmed argument strings.
func splitRule(item string) (string, []string, error) {
	open := strings.IndexByte(item, '(')
	if open < 0 {
		if strings.ContainsAny(item, ")") {
			return "", nil, fmt.Errorf("health: malformed rule %q", item)
		}
		return item, nil, nil
	}
	if !strings.HasSuffix(item, ")") {
		return "", nil, fmt.Errorf("health: malformed rule %q (missing closing parenthesis)", item)
	}
	name := strings.TrimSpace(item[:open])
	body := item[open+1 : len(item)-1]
	if strings.ContainsAny(body, "()") {
		return "", nil, fmt.Errorf("health: malformed rule %q", item)
	}
	if strings.TrimSpace(body) == "" {
		return name, nil, nil
	}
	parts := strings.Split(body, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return "", nil, fmt.Errorf("health: empty argument in rule %q", item)
		}
	}
	return name, parts, nil
}

// takeFloat parses args[i] into *dst when present, enforcing ok.
func takeFloat(args []string, i int, dst *float64, ok func(float64) bool) error {
	if i >= len(args) {
		return nil
	}
	f, err := strconv.ParseFloat(args[i], 64)
	if err != nil {
		return fmt.Errorf("bad number %q", args[i])
	}
	if !ok(f) || !isFinite(f) {
		return fmt.Errorf("value %v out of range", f)
	}
	*dst = f
	return nil
}

// takeInt parses args[i] into *dst when present, enforcing ok.
func takeInt(args []string, i int, dst *int, ok func(int) bool) error {
	if i >= len(args) {
		return nil
	}
	n, err := strconv.Atoi(args[i])
	if err != nil {
		return fmt.Errorf("bad integer %q", args[i])
	}
	if !ok(n) {
		return fmt.Errorf("value %d out of range", n)
	}
	*dst = n
	return nil
}
