package health

import (
	"reflect"
	"testing"
)

// FuzzParseRules pins the parser's two contracts: it never panics on
// arbitrary input, and every spec it accepts canonicalizes to a fixed
// point — ParseRules(c.Rules()) reproduces c exactly and re-renders the
// identical string. The committed corpus under testdata/fuzz seeds the
// grammar's corners (empty args, whitespace, duplicate rules, nested
// parens, non-finite numbers).
func FuzzParseRules(f *testing.F) {
	seeds := []string{
		"default",
		"all",
		"non-finite",
		"non-finite,loss-divergence(1.5,3),plateau(16,0.001),fairness-drift(0.5,5),norm-z(3.5,2),quorum(0.5,4)",
		"norm-z()",
		"norm-z( 3.5 , 2 )",
		"quorum(0.5)",
		"plateau(2,1e-9)",
		"loss-divergence(1e308)",
		"",
		",",
		"norm-z((3))",
		"norm-z(3,2,1)",
		"quorum(nan)",
		"quorum(+Inf)",
		"non-finite)",
		"loss-divergence(1.5",
		"norm-z(3),norm-z(3)",
		"NON-FINITE",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseRules(spec)
		if err != nil {
			return
		}
		canon := c.Rules()
		again, err := ParseRules(canon)
		if err != nil {
			// The empty canonical form is the one legitimate gap: a spec
			// that parses but enables nothing (impossible today — every
			// rule name enables its rule — so treat it as a bug too).
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(again, c) {
			t.Fatalf("fixed point violated for %q: %+v != %+v", spec, again, c)
		}
		if again.Rules() != canon {
			t.Fatalf("canonical form unstable for %q: %q vs %q", spec, again.Rules(), canon)
		}
		if !c.Enabled() {
			t.Fatalf("accepted spec %q enables no rules", spec)
		}
	})
}
