package health

import (
	"sort"

	"calibre/internal/obs"
	"calibre/internal/trace"
)

// ReplaySamples reconstructs, from one federation's flight-recorder
// events, the per-round obs.RoundSample stream the producing runtime fed
// its live monitor. Feeding the result through a fresh Monitor with the
// same Config reproduces the live diagnosis — that is calibre-doctor's
// replay mode, and the property the healthsmoke gate pins.
//
// The mapping inverts what the runtimes emit (see internal/fl and
// internal/flnet):
//
//   - round_start opens a round; N is the sampled-participant count.
//   - client_update contributes one ClientSample (Loss, Norm). Events
//     arrive in network-arrival order on a real server, so samples are
//     reordered into dispatch order — the order the live sample used.
//   - client_drop lands the client in StragglerIDs; reasons rejected and
//     adversarial are ingress rejections and additionally land it in
//     RejectedIDs (sorted, as at ingress).
//   - round_end closes the round: N is the responder count, Loss the
//     round's mean training loss.
//
// Events are expected in emission order for a single federation (one
// cell); split multi-cell sweep traces by Event.Cell first. A torn
// trailing round (crash mid-write) is dropped, mirroring the live
// monitor, which only ever observes completed rounds.
func ReplaySamples(events []trace.Event) []obs.RoundSample {
	var out []obs.RoundSample
	var (
		open     bool
		sample   obs.RoundSample
		dispatch map[int]int // client → dispatch slot this round
		arrival  map[int]int // client → update-event arrival index
	)
	for _, e := range events {
		switch e.Kind {
		case trace.KindRoundStart:
			open = true
			sample = obs.RoundSample{Runtime: e.Runtime, Round: e.Round, Participants: e.N}
			dispatch = make(map[int]int)
			arrival = make(map[int]int)
		case trace.KindClientDispatch:
			if open && e.Round == sample.Round {
				dispatch[e.Client] = len(dispatch)
			}
		case trace.KindClientUpdate:
			if open && e.Round == sample.Round {
				arrival[e.Client] = len(sample.Clients)
				sample.Clients = append(sample.Clients,
					obs.ClientSample{ID: e.Client, Loss: e.Loss, Norm: e.Norm})
			}
		case trace.KindClientDrop:
			if !open || e.Round != sample.Round {
				continue
			}
			sample.Stragglers++
			sample.StragglerIDs = append(sample.StragglerIDs, e.Client)
			switch e.Reason {
			case trace.DropRejected, trace.DropAdversarial:
				sample.RejectedIDs = append(sample.RejectedIDs, e.Client)
			case trace.DropStraggler:
				// The server's only straggler-drop producer is the round
				// deadline expiring with quorum met, so the drop implies
				// the flag the trace does not carry explicitly.
				if e.Runtime == "server" {
					sample.DeadlineExpired = true
				}
			}
		case trace.KindRoundEnd:
			if !open || e.Round != sample.Round {
				continue
			}
			open = false
			sample.Responders = e.N
			sample.MeanLoss = e.Loss
			// The live sample lists responders in dispatch order; update
			// events land in arrival order. Undo the network's shuffle
			// (ties — no dispatch record — keep arrival order).
			d, a := dispatch, arrival
			sort.SliceStable(sample.Clients, func(i, j int) bool {
				di, iOK := d[sample.Clients[i].ID]
				dj, jOK := d[sample.Clients[j].ID]
				if iOK && jOK {
					return di < dj
				}
				if iOK != jOK {
					return iOK
				}
				return a[sample.Clients[i].ID] < a[sample.Clients[j].ID]
			})
			sort.Ints(sample.RejectedIDs)
			out = append(out, sample)
		}
	}
	return out
}
