package health

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"calibre/internal/obs"
)

// cohort builds a round sample with n responders whose losses/norms come
// from the supplied functions.
func cohort(round, n int, loss, norm func(id int) float64) obs.RoundSample {
	s := obs.RoundSample{Runtime: "test", Round: round, Participants: n, Responders: n}
	var sum float64
	for id := 0; id < n; id++ {
		l := loss(id)
		s.Clients = append(s.Clients, obs.ClientSample{ID: id, Loss: l, Norm: norm(id)})
		sum += l
	}
	s.MeanLoss = sum / float64(n)
	return s
}

func TestNilMonitorSafe(t *testing.T) {
	var m *Monitor
	if got := m.ObserveRound(obs.RoundSample{}); got != nil {
		t.Fatalf("nil monitor returned alerts: %v", got)
	}
	if m.SuspectCount() != 0 {
		t.Fatal("nil monitor suspect count")
	}
	d := m.Diagnosis()
	if d.Rounds != 0 || len(d.Alerts) != 0 {
		t.Fatalf("nil monitor diagnosis: %+v", d)
	}
}

func TestNonFiniteAlertEdge(t *testing.T) {
	m := NewMonitor(&Config{NonFinite: true})
	a := m.ObserveRound(obs.RoundSample{Round: 0, MeanLoss: math.NaN()})
	if len(a) != 1 || a[0].Rule != "non-finite" || a[0].Severity != SevCrit {
		t.Fatalf("want one crit non-finite alert, got %v", a)
	}
	// Still broken: edge-triggered, no second alert.
	if a := m.ObserveRound(obs.RoundSample{Round: 1, MeanLoss: math.Inf(1)}); len(a) != 0 {
		t.Fatalf("re-raised while active: %v", a)
	}
	// Clears, then breaks again: re-armed.
	if a := m.ObserveRound(obs.RoundSample{Round: 2, MeanLoss: 1}); len(a) != 0 {
		t.Fatalf("alert on healthy round: %v", a)
	}
	if a := m.ObserveRound(obs.RoundSample{Round: 3, MeanLoss: math.NaN()}); len(a) != 1 {
		t.Fatalf("did not re-arm: %v", a)
	}
	if d := m.Diagnosis(); d.Critical != 2 {
		t.Fatalf("critical = %d, want 2", d.Critical)
	}
}

func TestNonFiniteClientNorm(t *testing.T) {
	m := NewMonitor(&Config{NonFinite: true})
	s := cohort(0, 4, func(int) float64 { return 1 }, func(id int) float64 {
		if id == 2 {
			return math.Inf(1)
		}
		return 1
	})
	if a := m.ObserveRound(s); len(a) != 1 || a[0].Rule != "non-finite" {
		t.Fatalf("want non-finite from client norm, got %v", a)
	}
}

func TestDivergenceAlert(t *testing.T) {
	m := NewMonitor(&Config{Divergence: true, DivergenceFactor: 0.5, DivergenceWarmup: 2})
	losses := []float64{1, 0.9, 0.85, 2, 4, 8, 8, 8}
	var fired []int
	for r, l := range losses {
		for _, a := range m.ObserveRound(obs.RoundSample{Round: r, MeanLoss: l}) {
			if a.Rule != "loss-divergence" || a.Severity != SevWarn {
				t.Fatalf("unexpected alert %v", a)
			}
			fired = append(fired, r)
		}
	}
	if len(fired) != 1 {
		t.Fatalf("divergence fired at rounds %v, want exactly once", fired)
	}
	if fired[0] < 3 || fired[0] > 6 {
		t.Fatalf("divergence fired at round %d, want during the blow-up", fired[0])
	}
}

func TestHealthyDecayNoDivergence(t *testing.T) {
	m := NewMonitor(&Config{Divergence: true})
	loss := 4.0
	for r := 0; r < 50; r++ {
		if a := m.ObserveRound(obs.RoundSample{Round: r, MeanLoss: loss}); len(a) != 0 {
			t.Fatalf("round %d: alerts on a cleanly converging run: %v", r, a)
		}
		loss *= 0.9
	}
}

func TestPlateauAlert(t *testing.T) {
	m := NewMonitor(&Config{Plateau: true, PlateauWindow: 4, PlateauEps: 0.01})
	var got []Alert
	for r := 0; r < 8; r++ {
		got = append(got, m.ObserveRound(obs.RoundSample{Round: r, MeanLoss: 2.0})...)
	}
	if len(got) != 1 || got[0].Rule != "plateau" || got[0].Severity != SevInfo {
		t.Fatalf("want one info plateau alert, got %v", got)
	}
	if got[0].Round != 3 {
		t.Fatalf("plateau fired at round %d, want 3 (first full window)", got[0].Round)
	}
}

func TestFairnessDriftAlert(t *testing.T) {
	m := NewMonitor(&Config{Fairness: true, FairnessFactor: 0.5, FairnessWarmup: 2})
	fired := false
	for r := 0; r < 12; r++ {
		gap := float64(r) // client 9's loss pulls away round by round
		s := cohort(r, 10, func(id int) float64 {
			if id == 9 {
				return 1 + gap
			}
			return 1
		}, func(int) float64 { return 1 })
		for _, a := range m.ObserveRound(s) {
			if a.Rule != "fairness-drift" {
				t.Fatalf("unexpected alert %v", a)
			}
			fired = true
		}
	}
	if !fired {
		t.Fatal("fairness-drift never fired on a widening tail gap")
	}
	// Uniform losses: never fires.
	m2 := NewMonitor(&Config{Fairness: true})
	for r := 0; r < 12; r++ {
		s := cohort(r, 10, func(int) float64 { return 1 }, func(int) float64 { return 1 })
		if a := m2.ObserveRound(s); len(a) != 0 {
			t.Fatalf("fairness alert on uniform losses: %v", a)
		}
	}
}

// attackers returns norm 9 for the compromised ids, 1±ε for honest ones.
func attackNorm(compromised map[int]bool) func(id int) float64 {
	return func(id int) float64 {
		if compromised[id] {
			return 9
		}
		return 1 + 0.01*float64(id)
	}
}

func TestNormZSuspects(t *testing.T) {
	bad := map[int]bool{2: true, 5: true, 9: true} // 30% of 10
	m := NewMonitor(&Config{NormZ: true, NormZThreshold: 3.5, SuspectAfter: 2})
	var crit []Alert
	for r := 0; r < 4; r++ {
		s := cohort(r, 10, func(int) float64 { return 1 }, attackNorm(bad))
		for _, a := range m.ObserveRound(s) {
			if a.Severity == SevCrit {
				crit = append(crit, a)
			}
		}
	}
	d := m.Diagnosis()
	if want := []int{2, 5, 9}; !reflect.DeepEqual(d.Suspects, want) {
		t.Fatalf("suspects = %v, want %v", d.Suspects, want)
	}
	if len(crit) != 3 {
		t.Fatalf("crit alerts = %d, want one per compromised client", len(crit))
	}
	if m.SuspectCount() != 3 {
		t.Fatalf("SuspectCount = %d", m.SuspectCount())
	}
	// Ranked table: the three suspects must occupy the three worst rows.
	for i := 0; i < 3; i++ {
		if !d.Clients[i].Suspect {
			t.Fatalf("rank %d is %+v, want a suspect", i, d.Clients[i])
		}
	}
	// Honest cohort: zero alerts, zero suspects.
	m2 := NewMonitor(&Config{NormZ: true})
	for r := 0; r < 4; r++ {
		s := cohort(r, 10, func(int) float64 { return 1 }, attackNorm(nil))
		if a := m2.ObserveRound(s); len(a) != 0 {
			t.Fatalf("alerts on honest cohort: %v", a)
		}
	}
	if got := m2.Diagnosis().Suspects; len(got) != 0 {
		t.Fatalf("honest suspects: %v", got)
	}
}

func TestQuorumAlerts(t *testing.T) {
	m := NewMonitor(&Config{Quorum: true, QuorumStragglerRate: 0.3, QuorumWarmup: 2})
	var rules []string
	for r := 0; r < 6; r++ {
		s := obs.RoundSample{Round: r, Participants: 10, Responders: 4, Stragglers: 6, MeanLoss: 1, DeadlineExpired: true}
		for _, a := range m.ObserveRound(s) {
			rules = append(rules, a.Rule)
		}
	}
	if len(rules) != 2 {
		t.Fatalf("want straggler-rate and deadline-streak alerts, got %v", rules)
	}
	for _, r := range rules {
		if r != "quorum" {
			t.Fatalf("unexpected rule %q", r)
		}
	}
}

func TestClientTableBoundKeepsSuspects(t *testing.T) {
	cfg := Config{NormZ: true, SuspectAfter: 1, MaxClients: 6}
	m := NewMonitor(&cfg)
	// Round 0: client 0 is an extreme outlier among 0..9 → suspect.
	s := cohort(0, 10, func(int) float64 { return 1 }, func(id int) float64 {
		if id == 0 {
			return 50
		}
		return 1 + 0.01*float64(id)
	})
	m.ObserveRound(s)
	// Rounds of fresh clients churn the LRU far past the bound.
	for r := 1; r < 5; r++ {
		s := obs.RoundSample{Round: r, MeanLoss: 1, Participants: 10, Responders: 10}
		for i := 0; i < 10; i++ {
			id := 100*r + i
			s.Clients = append(s.Clients, obs.ClientSample{ID: id, Loss: 1, Norm: 1})
		}
		m.ObserveRound(s)
	}
	d := m.Diagnosis()
	if len(d.Clients) > 6 {
		t.Fatalf("client table grew to %d rows, bound is 6", len(d.Clients))
	}
	if !reflect.DeepEqual(d.Suspects, []int{0}) {
		t.Fatalf("suspect evicted by churn: suspects = %v", d.Suspects)
	}
}

func TestAlertRingBound(t *testing.T) {
	m := NewMonitor(&Config{NonFinite: true, MaxAlerts: 3})
	for r := 0; r < 10; r++ {
		// Alternate broken/healthy so the edge re-arms every other round.
		loss := math.NaN()
		if r%2 == 1 {
			loss = 1
		}
		m.ObserveRound(obs.RoundSample{Round: r, MeanLoss: loss})
	}
	d := m.Diagnosis()
	if len(d.Alerts) != 3 || d.Dropped != 2 || d.Critical != 5 {
		t.Fatalf("alerts=%d dropped=%d critical=%d, want 3/2/5", len(d.Alerts), d.Dropped, d.Critical)
	}
	if d.Alerts[0].Round != 4 {
		t.Fatalf("oldest retained alert from round %d, want 4", d.Alerts[0].Round)
	}
}

func TestDiagnosisDeterministic(t *testing.T) {
	bad := map[int]bool{3: true, 7: true}
	run := func() Diagnosis {
		m := NewMonitor(nil)
		for r := 0; r < 10; r++ {
			s := cohort(r, 10, func(id int) float64 { return 1 + 0.1*float64(id%3) }, attackNorm(bad))
			s.Stragglers = r % 2
			m.ObserveRound(s)
		}
		return m.Diagnosis()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("diagnoses differ:\n%+v\n%+v", a, b)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("JSON encodings differ")
	}
	var ta, tb bytes.Buffer
	if err := a.WriteText(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Fatal("text renderings differ")
	}
}

func TestAlertJSONRoundTrip(t *testing.T) {
	in := Alert{Rule: "norm-z", Severity: SevCrit, Round: 3, Client: 7, Value: 8.5, Threshold: 3.5, Message: "m"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Alert
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if !bytes.Contains(b, []byte(`"severity":"crit"`)) {
		t.Fatalf("severity not string-encoded: %s", b)
	}
}
