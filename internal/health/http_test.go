package health

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"calibre/internal/obs"
)

func TestHandlerEndpoints(t *testing.T) {
	m := NewMonitor(&Config{NormZ: true, SuspectAfter: 1})
	s := cohort(0, 10, func(int) float64 { return 1 }, attackNorm(map[int]bool{7: true}))
	m.ObserveRound(s)

	srv := httptest.NewServer(Handler(m, obs.Handler(obs.NewRegistry())))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var d Diagnosis
	if err := json.Unmarshal([]byte(get("/healthz")), &d); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if d.Rounds != 1 || len(d.Suspects) != 1 || d.Suspects[0] != 7 {
		t.Fatalf("/healthz diagnosis: %+v", d)
	}
	prom := get("/healthz/prom")
	for _, want := range []string{
		"calibre_health_rounds 1",
		"calibre_health_suspect_clients 1",
		`calibre_health_client_score{client="7"}`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/healthz/prom missing %q:\n%s", want, prom)
		}
	}
	// The wrapped next handler still serves the metrics plane.
	if body := get("/metrics"); !strings.Contains(body, `"counters"`) {
		t.Fatalf("/metrics not forwarded: %s", body)
	}
}
