package health

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseRulesDefault(t *testing.T) {
	for _, spec := range []string{"default", "all", " default "} {
		c, err := ParseRules(spec)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", spec, err)
		}
		if !reflect.DeepEqual(c, DefaultConfig()) {
			t.Fatalf("ParseRules(%q) != DefaultConfig", spec)
		}
	}
}

func TestParseRulesRoundTrip(t *testing.T) {
	specs := []string{
		"non-finite",
		"loss-divergence(2.5)",
		"loss-divergence(1.5,7)",
		"plateau(8,0.01)",
		"fairness-drift(0.25,3)",
		"norm-z(3,1)",
		"quorum(0.75,2)",
		"non-finite,loss-divergence(1.5,3),plateau(16,0.001),fairness-drift(0.5,5),norm-z(3.5,2),quorum(0.5,4)",
		" non-finite , norm-z( 4 , 3 ) ",
	}
	for _, spec := range specs {
		c, err := ParseRules(spec)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", spec, err)
		}
		again, err := ParseRules(c.Rules())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", c.Rules(), spec, err)
		}
		if !reflect.DeepEqual(again, c) {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, c)
		}
		if again.Rules() != c.Rules() {
			t.Fatalf("canonical form unstable: %q vs %q", again.Rules(), c.Rules())
		}
	}
}

func TestDefaultConfigRules(t *testing.T) {
	want := "non-finite,loss-divergence(1.5,3),plateau(16,0.001),fairness-drift(0.5,5),norm-z(3.5,2),quorum(0.5,4)"
	if got := DefaultConfig().Rules(); got != want {
		t.Fatalf("DefaultConfig().Rules() = %q, want %q", got, want)
	}
	c, err := ParseRules(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, DefaultConfig()) {
		t.Fatal("canonical default spec does not reproduce DefaultConfig")
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		"",
		",",
		"bogus",
		"non-finite(1)",
		"non-finite,non-finite",
		"norm-z()",       // empty parens are fine... see below
		"norm-z(,)",      // empty args
		"norm-z(0)",      // threshold must be > 0
		"norm-z(3,-1)",   // suspect-after ≥ 1
		"norm-z(3,2,1)",  // too many args
		"quorum(1.5)",    // rate ≤ 1
		"plateau(1)",     // window ≥ 2
		"plateau(8,nan)", // non-finite eps
		"loss-divergence(1.5",
		"loss-divergence 1.5)",
		"norm-z((3))",
	}
	for _, spec := range bad {
		if spec == "norm-z()" {
			// Empty parens mean "all defaults" — valid by grammar.
			if _, err := ParseRules(spec); err != nil {
				t.Fatalf("ParseRules(%q) should accept empty parens: %v", spec, err)
			}
			continue
		}
		if _, err := ParseRules(spec); err == nil {
			t.Fatalf("ParseRules(%q) accepted", spec)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(Config{Quorum: true}).Enabled() {
		t.Fatal("quorum-only config reports disabled")
	}
	if got := (Config{}).Rules(); got != "" {
		t.Fatalf("zero config Rules() = %q, want empty", got)
	}
}

func TestSeverityStrings(t *testing.T) {
	for sev, want := range map[Severity]string{SevInfo: "info", SevWarn: "warn", SevCrit: "crit"} {
		if sev.String() != want {
			t.Fatalf("%d.String() = %q", sev, sev.String())
		}
	}
	var s Severity
	if err := s.UnmarshalJSON([]byte(`"nope"`)); err == nil || !strings.Contains(err.Error(), "unknown severity") {
		t.Fatalf("bad severity accepted: %v", err)
	}
}
