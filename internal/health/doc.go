// Package health is the federation's judgment layer: a stdlib-only
// streaming-detector engine that watches the round stream the metrics
// plane (internal/obs) already produces and turns it into typed,
// severity-ranked alerts, per-client health scores and a suspect set —
// live, while the run executes, not post-mortem.
//
// # Detectors
//
// A Monitor runs up to six rules, each selectable and tunable through a
// Config (textual form via ParseRules / Config.Rules):
//
//	non-finite       crit  NaN/Inf in the loss or update-norm stream
//	loss-divergence  warn  smoothed loss rose factor×|best| above its best
//	plateau          info  loss flat over a full window of rounds
//	fairness-drift   warn  worst-decile loss gap drifting above the loss scale
//	norm-z           crit  per-client robust (median/MAD) update-norm outliers;
//	                       repeat offenders become suspected adversaries
//	quorum           warn  straggler-rate EWMA or deadline-expiry streaks
//
// The norm-z rule deliberately uses the median/MAD modified z-score
// rather than mean/σ: at the 30% contamination levels the hostile
// scenarios seed, attackers drag the mean toward themselves and plain
// z-scores stay under any usable threshold, while the robust statistic
// keeps honest clients near zero and attackers far outside it. This is
// what lets the monitor surface suspected adversaries from update norms
// alone — before (or without) a robust aggregator rejecting them.
//
// Alerts are edge-triggered: a rule raises once when its condition
// first trips and re-arms when the condition clears, so a ten-round
// divergence is one alert, not ten.
//
// # Determinism
//
// Detectors are pure functions of the observed sample stream. They
// never read wall-clock fields (RoundSample.DurationMS), never iterate
// a Go map where order could leak, and reduce in fixed serial order —
// so two runs producing the same round stream yield bit-identical
// diagnoses regardless of KernelWorkers, scheduling or host, and a
// Monitor never perturbs the run it watches (instrumented ≡ bare,
// pinned the same way as obs and trace). The healthsmoke CI gate
// asserts all of this end to end.
//
// # Wiring
//
// All three runtimes accept a *Monitor behind a nil-safe config field
// (fl.SimConfig.Health, flnet.ServerConfig.Health, sweep.Config.Health)
// and feed it one obs.RoundSample per completed round; Handler mounts
// /healthz (JSON) and /healthz/prom next to the /metrics endpoints; and
// cmd/calibre-doctor runs the same detectors against a live /metrics
// endpoint or a recorded calibre-trace file.
package health
