package health

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Handler wraps next (typically obs.Handler's /metrics mux) with the
// health plane's two read-only views:
//
//	/healthz       JSON Diagnosis
//	/healthz/prom  Prometheus text exposition of the verdict
//
// Each request takes its own Diagnosis snapshot, so scrapes never block
// the training hot path. A nil next 404s everything but the two health
// paths; a nil monitor 404s the health paths themselves, so callers can
// wrap unconditionally and let the -health flag decide.
func Handler(m *Monitor, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if m == nil && (req.URL.Path == "/healthz" || req.URL.Path == "/healthz/prom") {
			http.NotFound(w, req)
			return
		}
		switch req.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(m.Diagnosis())
		case "/healthz/prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = m.Diagnosis().WriteProm(w)
		default:
			if next != nil {
				next.ServeHTTP(w, req)
				return
			}
			http.NotFound(w, req)
		}
	})
}

// WriteProm renders the diagnosis in Prometheus text exposition format:
// the alert/suspect aggregates plus one calibre_health_client_score
// sample per tracked client, in the table's ranked order.
func (d Diagnosis) WriteProm(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"# TYPE calibre_health_rounds counter\ncalibre_health_rounds %d\n"+
			"# TYPE calibre_health_alerts_total counter\ncalibre_health_alerts_total %d\n"+
			"# TYPE calibre_health_critical_alerts_total counter\ncalibre_health_critical_alerts_total %d\n"+
			"# TYPE calibre_health_suspect_clients gauge\ncalibre_health_suspect_clients %d\n",
		d.Rounds, len(d.Alerts)+d.Dropped, d.Critical, len(d.Suspects)); err != nil {
		return err
	}
	if len(d.Clients) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# TYPE calibre_health_client_score gauge\n"); err != nil {
		return err
	}
	for _, c := range d.Clients {
		if _, err := fmt.Fprintf(w, "calibre_health_client_score{client=%q} %g\n", fmt.Sprint(c.ID), c.Score); err != nil {
			return err
		}
	}
	return nil
}
