package health

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText renders the diagnosis as the deterministic plain-text report
// calibre-doctor prints: alert list in raise order, suspect set, then
// the client table ranked least-healthy first. No wall-clock facts
// appear, so equal diagnoses render byte-equal — the property the
// healthsmoke gate compares across runs and worker counts.
func (d Diagnosis) WriteText(w io.Writer) error {
	if len(d.Alerts) == 0 && d.Critical == 0 {
		if _, err := fmt.Fprintf(w, "rounds observed: %d\nno alerts — federation healthy\n", d.Rounds); err != nil {
			return err
		}
		return d.writeClients(w)
	}
	if _, err := fmt.Fprintf(w, "rounds observed: %d\nalerts: %d (%d critical", d.Rounds, len(d.Alerts)+d.Dropped, d.Critical); err != nil {
		return err
	}
	if d.Dropped > 0 {
		if _, err := fmt.Fprintf(w, ", oldest %d dropped", d.Dropped); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, ")\n"); err != nil {
		return err
	}
	for _, a := range d.Alerts {
		if _, err := fmt.Fprintf(w, "  %s\n", a); err != nil {
			return err
		}
	}
	if len(d.Suspects) > 0 {
		parts := make([]string, len(d.Suspects))
		for i, id := range d.Suspects {
			parts[i] = strconv.Itoa(id)
		}
		if _, err := fmt.Fprintf(w, "suspects: [%s]\n", strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return d.writeClients(w)
}

// writeClients renders the ranked per-client table.
func (d Diagnosis) writeClients(w io.Writer) error {
	if len(d.Clients) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "clients (least healthy first):\n%8s %6s %8s %10s %10s %9s %9s  %s\n",
		"id", "score", "sampled", "responded", "straggled", "outliers", "rejected", "flag"); err != nil {
		return err
	}
	for _, c := range d.Clients {
		flag := ""
		if c.Suspect {
			flag = "SUSPECT"
		}
		if _, err := fmt.Fprintf(w, "%8d %6.2f %8d %10d %10d %9d %9d  %s\n",
			c.ID, c.Score, c.Sampled, c.Responded, c.Straggled, c.Outliers, c.Rejected, flag); err != nil {
			return err
		}
	}
	return nil
}
