package fl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"calibre/internal/param"
	"calibre/internal/tensor"
)

// robustAggregatorsUnderTest builds one of each robust aggregator. Krum's F
// is kept small enough that the 5-update fixtures used throughout satisfy
// n ≥ F+3.
func robustAggregatorsUnderTest() map[string]RobustAggregator {
	return map[string]RobustAggregator{
		"trimmed(0.2)": TrimmedMean{Frac: 0.2},
		"median":       CoordinateMedian{},
		"krum(1)":      Krum{F: 1},
	}
}

// TestRobustAggregatorsShardedBitIdentical pins the contract the sweep
// engine depends on: every robust aggregator is bit-identical to its serial
// sweep at any kernel-pool size, at dimensions straddling the shard
// threshold. Krum shards over pairs, so it is exercised with enough updates
// that the pair count itself straddles sharding.
func TestRobustAggregatorsShardedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	defer tensor.SetWorkers(0)
	for _, n := range []int{37, param.MinShard, 3*param.MinShard + 11} {
		global := planeVector(rng, n)
		updates := planeUpdates(rng, n, 5, false)
		serial := make(map[string]param.Vector)
		tensor.SetWorkers(1)
		for name, agg := range robustAggregatorsUnderTest() {
			out, err := agg.Aggregate(global, updates)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			serial[name] = out
		}
		for _, workers := range []int{1, 2, 4, 8} {
			tensor.SetWorkers(workers)
			for name, agg := range robustAggregatorsUnderTest() {
				out, err := agg.Aggregate(global, updates)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				for i := range out {
					if math.Float64bits(out[i]) != math.Float64bits(serial[name][i]) {
						t.Fatalf("%s n=%d workers=%d: element %d differs from serial", name, n, workers, i)
					}
				}
			}
		}
	}
}

// TestRobustAggregatorsNeverMutateInputs extends the read-only contract to
// the robust rules: global and every update payload stay bit-identical, and
// the result is freshly allocated (Krum returns a clone, not the winning
// update's own slice).
func TestRobustAggregatorsNeverMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 2*param.MinShard + 7
	tensor.SetWorkers(4)
	defer tensor.SetWorkers(0)
	global := planeVector(rng, n)
	updates := planeUpdates(rng, n, 5, false)

	globalBits := cloneBits(global)
	paramBits := make([][]uint64, len(updates))
	for k, u := range updates {
		paramBits[k] = cloneBits(u.Params)
	}
	for name, agg := range robustAggregatorsUnderTest() {
		out, err := agg.Aggregate(global, updates)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if &out[0] == &global[0] {
			t.Fatalf("%s: returned vector aliases global", name)
		}
		for _, u := range updates {
			if &out[0] == &u.Params[0] {
				t.Fatalf("%s: returned vector aliases an update payload", name)
			}
		}
		assertBitsUnchanged(t, name+" global", global, globalBits)
		for k, u := range updates {
			assertBitsUnchanged(t, name+" params", u.Params, paramBits[k])
		}
	}
}

// TestRobustAggregatorsPermutationInvariant pins order-freeness: the robust
// rules aggregate per-coordinate order statistics (or a distance-selected
// single vector), so shuffling the update slice must not change a bit of the
// output. WeightedAverage is deliberately excluded — its summation order
// follows update order.
func TestRobustAggregatorsPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := param.MinShard + 3
	global := planeVector(rng, n)
	updates := planeUpdates(rng, n, 6, false)
	for name, agg := range robustAggregatorsUnderTest() {
		want, err := agg.Aggregate(global, updates)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for trial := 0; trial < 5; trial++ {
			perm := make([]*Update, len(updates))
			for i, j := range rng.Perm(len(updates)) {
				perm[i] = updates[j]
			}
			got, err := agg.Aggregate(global, perm)
			if err != nil {
				t.Fatalf("%s permuted: %v", name, err)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: permutation changed element %d", name, i)
				}
			}
		}
	}
}

// TestTrimmedMeanZeroFracMatchesUnweightedMean pins the degenerate case:
// trimmed(0) is the unweighted mean, which equals WeightedAverage when every
// update carries the same sample count. Summation order differs (sorted vs
// update order), so the comparison is tolerance-based, not bitwise.
func TestTrimmedMeanZeroFracMatchesUnweightedMean(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 64
	global := planeVector(rng, n)
	updates := planeUpdates(rng, n, 5, false)
	for _, u := range updates {
		u.NumSamples = 10
	}
	trimmed, err := TrimmedMean{}.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("trimmed(0): %v", err)
	}
	mean, err := WeightedAverage{}.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("mean: %v", err)
	}
	for i := range trimmed {
		if math.Abs(trimmed[i]-mean[i]) > 1e-12 {
			t.Fatalf("trimmed(0) diverges from equal-weight mean at %d: %g vs %g", i, trimmed[i], mean[i])
		}
	}
}

// TestTrimmedMeanDiscardsOutliers: with Frac=0.2 and 5 updates one value is
// trimmed per side, so a single arbitrarily large poison value per
// coordinate cannot move the aggregate at all.
func TestTrimmedMeanDiscardsOutliers(t *testing.T) {
	global := param.Vector{0, 0}
	honest := []*Update{
		{ClientID: 0, Params: param.Vector{1, -1}},
		{ClientID: 1, Params: param.Vector{2, -2}},
		{ClientID: 2, Params: param.Vector{3, -3}},
		{ClientID: 3, Params: param.Vector{4, -4}},
	}
	poisoned := append(append([]*Update(nil), honest...),
		&Update{ClientID: 4, Params: param.Vector{1e12, -1e12}})
	out, err := TrimmedMean{Frac: 0.2}.Aggregate(global, poisoned)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// Surviving values per coordinate: {2,3,4} and {-2,-3,-4}.
	if math.Abs(out[0]-3) > 1e-12 || math.Abs(out[1]+3) > 1e-12 {
		t.Fatalf("poison leaked through the trim: %v", out)
	}
}

// TestTrimmedMeanRejectsBadFrac: the validity window is [0, 0.5).
func TestTrimmedMeanRejectsBadFrac(t *testing.T) {
	updates := []*Update{{Params: param.Vector{1}}}
	for _, frac := range []float64{-0.1, 0.5, 0.7, math.NaN()} {
		if _, err := (TrimmedMean{Frac: frac}).Aggregate(param.Vector{0}, updates); err == nil {
			t.Fatalf("frac=%g must be rejected", frac)
		}
	}
	if _, err := (TrimmedMean{}).Aggregate(param.Vector{0}, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("empty updates err = %v", err)
	}
}

// TestCoordinateMedian pins the odd (middle value) and even (middle-pair
// mean) definitions.
func TestCoordinateMedian(t *testing.T) {
	global := param.Vector{0}
	odd := []*Update{
		{Params: param.Vector{5}}, {Params: param.Vector{-1}}, {Params: param.Vector{2}},
	}
	out, err := CoordinateMedian{}.Aggregate(global, odd)
	if err != nil || out[0] != 2 {
		t.Fatalf("odd median = %v, %v", out, err)
	}
	even := append(odd, &Update{Params: param.Vector{3}})
	out, err = CoordinateMedian{}.Aggregate(global, even)
	if err != nil || out[0] != 2.5 {
		t.Fatalf("even median = %v, %v", out, err)
	}
	if _, err := (CoordinateMedian{}).Aggregate(global, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("empty updates err = %v", err)
	}
}

// TestKrumSelectsHonestUpdate: with one sign-flipped outlier among four
// tight honest updates, krum(1) must select one of the honest vectors — the
// outlier's neighborhood score is dominated by its distance to the cluster.
func TestKrumSelectsHonestUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := 32
	center := planeVector(rng, n)
	updates := make([]*Update, 0, 5)
	for i := 0; i < 4; i++ {
		p := make(param.Vector, n)
		for j := range p {
			p[j] = center[j] + 0.01*rng.NormFloat64()
		}
		updates = append(updates, &Update{ClientID: i, Params: p})
	}
	flipped := make(param.Vector, n)
	for j := range flipped {
		flipped[j] = -3 * center[j]
	}
	updates = append(updates, &Update{ClientID: 4, Params: flipped})

	out, err := Krum{F: 1}.Aggregate(make(param.Vector, n), updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	matched := -1
	for i := 0; i < 4; i++ {
		if math.Float64bits(out[0]) == math.Float64bits(updates[i].Params[0]) {
			matched = i
			break
		}
	}
	if matched < 0 {
		t.Fatalf("krum selected the poisoned update")
	}
	for j := range out {
		if math.Float64bits(out[j]) != math.Float64bits(updates[matched].Params[j]) {
			t.Fatalf("krum output is not a verbatim copy of update %d", matched)
		}
	}
}

// TestKrumTooFewUpdates pins the n ≥ F+3 floor and its typed error.
func TestKrumTooFewUpdates(t *testing.T) {
	updates := []*Update{
		{Params: param.Vector{1}}, {Params: param.Vector{2}}, {Params: param.Vector{3}},
	}
	if _, err := (Krum{F: 1}).Aggregate(param.Vector{0}, updates); !errors.Is(err, ErrTooFewUpdates) {
		t.Fatalf("krum(1) with 3 updates: err = %v, want ErrTooFewUpdates", err)
	}
	if out, err := (Krum{F: 0}).Aggregate(param.Vector{0}, updates); err != nil || len(out) != 1 {
		t.Fatalf("krum(0) with 3 updates should work: %v, %v", out, err)
	}
	if _, err := (Krum{F: -1}).Aggregate(param.Vector{0}, updates); err == nil {
		t.Fatal("negative F must be rejected")
	}
	if _, err := (Krum{F: 1}).Aggregate(param.Vector{0}, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("empty updates err = %v", err)
	}
}

// TestRobustAggregatorsIgnoreNumSamples: sample counts are
// attacker-controlled metadata, so inflating one must not move any robust
// aggregate by a single bit.
func TestRobustAggregatorsIgnoreNumSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	n := 16
	global := planeVector(rng, n)
	updates := planeUpdates(rng, n, 5, false)
	for name, agg := range robustAggregatorsUnderTest() {
		want, err := agg.Aggregate(global, updates)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		inflated := make([]*Update, len(updates))
		for i, u := range updates {
			cp := *u
			cp.NumSamples = 1 << 30
			inflated[i] = &cp
		}
		got, err := agg.Aggregate(global, inflated)
		if err != nil {
			t.Fatalf("%s inflated: %v", name, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: NumSamples influenced element %d", name, i)
			}
		}
	}
}

// TestRejectedAccounting pins the Rejected(n) arithmetic the runtimes report
// through RoundStats and the obs counters.
func TestRejectedAccounting(t *testing.T) {
	cases := []struct {
		agg  RobustAggregator
		n    int
		want int
	}{
		{TrimmedMean{Frac: 0.2}, 5, 2},
		{TrimmedMean{Frac: 0.2}, 4, 0},
		{TrimmedMean{Frac: 0.4}, 10, 8},
		{TrimmedMean{}, 100, 0},
		{CoordinateMedian{}, 1, 0},
		{CoordinateMedian{}, 2, 0},
		{CoordinateMedian{}, 5, 4},
		{CoordinateMedian{}, 6, 4},
		{Krum{F: 1}, 5, 4},
		{Krum{F: 0}, 1, 0},
	}
	for _, c := range cases {
		if got := c.agg.Rejected(c.n); got != c.want {
			t.Errorf("%v.Rejected(%d) = %d, want %d", c.agg, c.n, got, c.want)
		}
	}
}

// TestParseAggregatorRoundTrip: Parse∘String is the identity on canonical
// specs — the property the sweep grid's duplicate detection relies on.
func TestParseAggregatorRoundTrip(t *testing.T) {
	for _, spec := range []string{"mean", "median", "trimmed(0.2)", "trimmed(0.25)", "krum(0)", "krum(3)"} {
		agg, err := ParseAggregator(spec)
		if err != nil {
			t.Fatalf("ParseAggregator(%q): %v", spec, err)
		}
		if got := fmt.Sprint(agg); got != spec {
			t.Errorf("ParseAggregator(%q).String() = %q", spec, got)
		}
	}
	if agg, err := ParseAggregator(""); err != nil || fmt.Sprint(agg) != "mean" {
		t.Errorf("empty spec: %v, %v", agg, err)
	}
	for _, bad := range []string{"average", "trimmed", "trimmed(0.5)", "trimmed(-1)", "trimmed(x)", "krum(-1)", "krum(1.5)", "krum", "median(2)", "mean(", "trimmed(0.2"} {
		if _, err := ParseAggregator(bad); err == nil {
			t.Errorf("ParseAggregator(%q) accepted", bad)
		}
	}
}
