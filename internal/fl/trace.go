package fl

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// TraceKind names one availability-trace generator.
type TraceKind string

// The availability models. Each maps (round, client) to a dropout
// probability, replacing the flat DropoutRate with the correlated churn
// real federations exhibit.
const (
	// TraceDiurnal is the day/night sine: the drop probability oscillates
	// between Base and Base+Amp with period Period rounds.
	TraceDiurnal TraceKind = "diurnal"
	// TraceFlash is the flash-crowd burst: Base everywhere except a burst
	// window of Width rounds starting at round Period, where the drop
	// probability jumps to Base+Amp.
	TraceFlash TraceKind = "flash"
	// TraceMarkov is correlated churn: clients are paired (pair = id/2) and
	// each pair shares a two-state seeded Markov chain — up→down with
	// probability PDown, down→up with probability PUp. A down pair drops
	// with probability 1, an up pair with probability Base, so paired
	// clients churn together.
	TraceMarkov TraceKind = "markov"
)

// TraceConfig declares a deterministic availability trace. Field use varies
// by Kind (see the kind constants); unused fields must be zero. The
// per-round probabilities are a pure function of (seed, round, client), so
// traced runs replay and resume bit-identically.
type TraceConfig struct {
	Kind TraceKind
	// Base is the baseline drop probability, in [0,1].
	Base float64
	// Amp is the extra drop probability at the diurnal peak or inside the
	// flash burst (the instantaneous probability is clamped to [0,1]).
	Amp float64
	// Period is the diurnal period in rounds (≥1), or the flash burst
	// start round (≥0).
	Period int
	// Width is the flash burst length in rounds (≥1).
	Width int
	// PDown and PUp are the markov up→down and down→up transition
	// probabilities; PUp must be >0 so no pair is down forever.
	PDown, PUp float64
}

// Validate checks the configuration.
func (c *TraceConfig) Validate() error {
	if c == nil {
		return nil
	}
	bad := func(field string, v float64) error {
		return fmt.Errorf("fl: trace %s must be a probability in [0,1], got %g", field, v)
	}
	if c.Base < 0 || c.Base > 1 || math.IsNaN(c.Base) {
		return bad("base", c.Base)
	}
	switch c.Kind {
	case TraceDiurnal:
		if c.Amp < 0 || c.Amp > 1 || math.IsNaN(c.Amp) {
			return bad("amp", c.Amp)
		}
		if c.Period < 1 {
			return fmt.Errorf("fl: diurnal trace period must be ≥1 round, got %d", c.Period)
		}
		if c.Width != 0 || c.PDown != 0 || c.PUp != 0 {
			return fmt.Errorf("fl: diurnal trace uses only base, amp and period")
		}
	case TraceFlash:
		if c.Amp < 0 || c.Amp > 1 || math.IsNaN(c.Amp) {
			return bad("amp", c.Amp)
		}
		if c.Period < 0 {
			return fmt.Errorf("fl: flash trace start round must be ≥0, got %d", c.Period)
		}
		if c.Width < 1 {
			return fmt.Errorf("fl: flash trace width must be ≥1 round, got %d", c.Width)
		}
		if c.PDown != 0 || c.PUp != 0 {
			return fmt.Errorf("fl: flash trace uses only base, amp, start and width")
		}
	case TraceMarkov:
		if c.PDown < 0 || c.PDown > 1 || math.IsNaN(c.PDown) {
			return bad("pdown", c.PDown)
		}
		if c.PUp <= 0 || c.PUp > 1 || math.IsNaN(c.PUp) {
			return fmt.Errorf("fl: markov trace pup must be in (0,1] so pairs recover, got %g", c.PUp)
		}
		if c.Amp != 0 || c.Period != 0 || c.Width != 0 {
			return fmt.Errorf("fl: markov trace uses only base, pdown and pup")
		}
	default:
		return fmt.Errorf("fl: unknown trace kind %q (want diurnal, flash or markov)", c.Kind)
	}
	return nil
}

// String renders the canonical spec accepted by ParseTrace.
func (c *TraceConfig) String() string {
	if c == nil {
		return ""
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch c.Kind {
	case TraceDiurnal:
		return fmt.Sprintf("diurnal(%s,%s,%d)", g(c.Base), g(c.Amp), c.Period)
	case TraceFlash:
		return fmt.Sprintf("flash(%s,%s,%d,%d)", g(c.Base), g(c.Amp), c.Period, c.Width)
	case TraceMarkov:
		return fmt.Sprintf("markov(%s,%s,%s)", g(c.Base), g(c.PDown), g(c.PUp))
	default:
		return string(c.Kind)
	}
}

// ParseTrace parses an availability-trace spec:
//
//	diurnal(base,amp,period)     — sine between base and base+amp
//	flash(base,amp,start,width)  — base, spiking to base+amp in the burst
//	markov(base,pdown,pup)       — paired correlated churn
//
// The empty string means no trace (nil). Parse∘String round-trips.
func ParseTrace(spec string) (*TraceConfig, error) {
	if spec == "" {
		return nil, nil
	}
	name, rest, found := strings.Cut(spec, "(")
	if !found || !strings.HasSuffix(rest, ")") {
		return nil, fmt.Errorf("fl: malformed trace spec %q (want kind(args...))", spec)
	}
	args := strings.Split(strings.TrimSuffix(rest, ")"), ",")
	argf := func(i int) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("fl: trace spec %q: bad number %q", spec, args[i])
		}
		return v, nil
	}
	argi := func(i int) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(args[i]))
		if err != nil {
			return 0, fmt.Errorf("fl: trace spec %q: bad integer %q", spec, args[i])
		}
		return v, nil
	}
	cfg := &TraceConfig{Kind: TraceKind(name)}
	var wantArgs int
	var err error
	switch cfg.Kind {
	case TraceDiurnal:
		wantArgs = 3
		if len(args) == wantArgs {
			if cfg.Base, err = argf(0); err == nil {
				if cfg.Amp, err = argf(1); err == nil {
					cfg.Period, err = argi(2)
				}
			}
		}
	case TraceFlash:
		wantArgs = 4
		if len(args) == wantArgs {
			if cfg.Base, err = argf(0); err == nil {
				if cfg.Amp, err = argf(1); err == nil {
					if cfg.Period, err = argi(2); err == nil {
						cfg.Width, err = argi(3)
					}
				}
			}
		}
	case TraceMarkov:
		wantArgs = 3
		if len(args) == wantArgs {
			if cfg.Base, err = argf(0); err == nil {
				if cfg.PDown, err = argf(1); err == nil {
					cfg.PUp, err = argf(2)
				}
			}
		}
	default:
		return nil, fmt.Errorf("fl: unknown trace kind %q (want diurnal, flash or markov)", name)
	}
	if err != nil {
		return nil, err
	}
	if len(args) != wantArgs {
		return nil, fmt.Errorf("fl: trace spec %q: want %d args, got %d", spec, wantArgs, len(args))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// traceSalt decorrelates markov chain streams from the training and attack
// streams derived from the same master seed.
const traceSalt int64 = 0x54524143 // "TRAC"

// Generator builds the runtime trace for one seeded run. The returned
// TraceGen is safe for concurrent use.
func (c *TraceConfig) Generator(seed int64) *TraceGen {
	if c == nil {
		return nil
	}
	return &TraceGen{cfg: *c, seed: seed}
}

// TraceGen evaluates a TraceConfig for one run. DropProb is a pure function
// of (round, client) given the construction seed: markov chains are
// advanced lazily per pair and memoized, so any query order — including the
// replay a resumed run performs — observes identical probabilities.
type TraceGen struct {
	cfg  TraceConfig
	seed int64

	mu     sync.Mutex
	chains map[int]*markovChain
}

// markovChain is the memoized up/down history of one client pair.
type markovChain struct {
	rng *rand.Rand
	// down[r] is the pair's state at round r; round 0 is always up.
	down []bool
}

// DropProb returns the probability that client drops out of round.
func (g *TraceGen) DropProb(round, client int) float64 {
	if g == nil {
		return 0
	}
	clamp := func(p float64) float64 {
		return math.Min(1, math.Max(0, p))
	}
	switch g.cfg.Kind {
	case TraceDiurnal:
		phase := 2 * math.Pi * float64(round) / float64(g.cfg.Period)
		return clamp(g.cfg.Base + g.cfg.Amp*(1+math.Sin(phase))/2)
	case TraceFlash:
		if round >= g.cfg.Period && round < g.cfg.Period+g.cfg.Width {
			return clamp(g.cfg.Base + g.cfg.Amp)
		}
		return clamp(g.cfg.Base)
	case TraceMarkov:
		if g.pairDown(client/2, round) {
			return 1
		}
		return clamp(g.cfg.Base)
	default:
		return 0
	}
}

// pairDown reports whether the pair's chain is down at the given round,
// extending the memoized history as needed.
func (g *TraceGen) pairDown(pair, round int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.chains == nil {
		g.chains = make(map[int]*markovChain)
	}
	ch := g.chains[pair]
	if ch == nil {
		ch = &markovChain{
			rng:  rand.New(rand.NewSource(g.seed ^ traceSalt ^ int64(pair)*5_000_011)),
			down: []bool{false},
		}
		g.chains[pair] = ch
	}
	// Extend strictly sequentially so the per-pair stream consumption — and
	// therefore every state — is independent of query order.
	for len(ch.down) <= round {
		prev := ch.down[len(ch.down)-1]
		draw := ch.rng.Float64()
		if prev {
			ch.down = append(ch.down, draw >= g.cfg.PUp)
		} else {
			ch.down = append(ch.down, draw < g.cfg.PDown)
		}
	}
	return ch.down[round]
}
