package fl

import (
	"context"
	"math/rand"
	"testing"

	"calibre/internal/data"
	"calibre/internal/param"
	"calibre/internal/partition"
)

type noopTrainer struct{ dim int }

func (n noopTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	return &Update{ClientID: c.ID, Params: append([]float64(nil), global...), NumSamples: c.Train.Len()}, nil
}

func benchClients(b *testing.B, n int) []*partition.Client {
	b.Helper()
	g, err := data.NewGenerator(data.CIFAR10Spec(), 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 20)
	parts, err := partition.IID(rng, ds, n, 20)
	if err != nil {
		b.Fatal(err)
	}
	return partition.BuildClients(rng, ds, parts, nil)
}

// BenchmarkSimulatorOverhead measures the round-loop machinery itself
// (sampling, dispatch, aggregation) with a no-op trainer and a
// 10k-parameter model.
func BenchmarkSimulatorOverhead(b *testing.B) {
	clients := benchClients(b, 32)
	m := &Method{
		Name:         "noop",
		Trainer:      noopTrainer{dim: 10000},
		Aggregator:   WeightedAverage{},
		Personalizer: fakeBenchPersonalizer{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			return make([]float64, 10000), nil
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := NewSimulator(SimConfig{Rounds: 10, ClientsPerRound: 10, Seed: int64(i)}, m, clients)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sim.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

type fakeBenchPersonalizer struct{}

func (fakeBenchPersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return 0.5, nil
}

// BenchmarkWeightedAverage measures aggregation of 10 updates × 100k params.
func BenchmarkWeightedAverage(b *testing.B) {
	const dim = 100_000
	global := make([]float64, dim)
	updates := make([]*Update, 10)
	rng := rand.New(rand.NewSource(3))
	for i := range updates {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		updates[i] = &Update{ClientID: i, Params: p, NumSamples: 100}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (WeightedAverage{}).Aggregate(global, updates); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDivergenceWeighted measures Calibre's aggregation rule at the
// same size.
func BenchmarkDivergenceWeighted(b *testing.B) {
	const dim = 100_000
	global := make([]float64, dim)
	updates := make([]*Update, 10)
	rng := rand.New(rand.NewSource(4))
	for i := range updates {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		updates[i] = &Update{ClientID: i, Params: p, NumSamples: 100, Divergence: rng.Float64()}
	}
	agg := &DivergenceWeighted{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := agg.Aggregate(global, updates); err != nil {
			b.Fatal(err)
		}
	}
}
