package fl

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"calibre/internal/param"
)

// The robust aggregators below defend the global model against byzantine
// updates by excluding part of their input by construction: coordinate-wise
// trimming (TrimmedMean), the coordinate-wise median (CoordinateMedian) and
// Krum's single-vector selection (Blanchard et al., NeurIPS 2017). They
// obey the same contract as the benign aggregators in aggregate.go —
// sharded over element ranges (or, for Krum's pairwise distances, over
// pairs) on the shared tensor kernel pool, bit-identical to a serial sweep
// at any pool size, never mutating global or the update payloads, always
// returning a freshly allocated vector.
//
// Unlike WeightedAverage they deliberately ignore NumSamples: a
// sample-count weight is attacker-controlled metadata (a malicious client
// can claim any dataset size), so robust statistics over the raw
// per-coordinate values are the defense.

// ErrTooFewUpdates marks a round whose update count is below what the
// aggregation rule mechanically requires (e.g. Krum needs n ≥ F+3 so at
// least one honest neighborhood exists).
var ErrTooFewUpdates = errors.New("fl: too few updates for the aggregation rule")

// RobustAggregator is implemented by aggregation rules that exclude part
// of their input by construction. Rejected is a pure function of the
// ingested-update count — the per-round rejection accounting the runtimes
// feed into RoundStats.RejectedUpdates and the obs plane
// (aggregator_rejected_updates_total).
type RobustAggregator interface {
	Aggregator
	// Rejected reports how many of n ingested updates the rule excludes
	// from the aggregate by construction.
	Rejected(n int) int
}

// TrimmedMean is the coordinate-wise trimmed mean: for every coordinate the
// n update values are sorted and the lowest and highest ⌊Frac·n⌋ are
// discarded before averaging the rest. Frac must be in [0, 0.5); Frac = 0
// degenerates to the unweighted mean. It tolerates up to ⌊Frac·n⌋
// byzantine updates per coordinate.
type TrimmedMean struct {
	Frac float64
}

var _ RobustAggregator = TrimmedMean{}

// trimCount is the per-side trim ⌊Frac·n⌋. Frac < 0.5 guarantees
// 2·trimCount < n, so at least one value always survives.
func (t TrimmedMean) trimCount(n int) int {
	if t.Frac <= 0 {
		return 0
	}
	return int(t.Frac * float64(n))
}

// Rejected implements RobustAggregator: both trimmed tails.
func (t TrimmedMean) Rejected(n int) int { return 2 * t.trimCount(n) }

// String renders the canonical spec accepted by ParseAggregator.
func (t TrimmedMean) String() string {
	return fmt.Sprintf("trimmed(%s)", strconv.FormatFloat(t.Frac, 'g', -1, 64))
}

// Aggregate implements Aggregator.
func (t TrimmedMean) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if t.Frac < 0 || t.Frac >= 0.5 || math.IsNaN(t.Frac) {
		return nil, fmt.Errorf("fl: trimmed mean frac must be in [0,0.5), got %g", t.Frac)
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	n := len(updates)
	k := t.trimCount(n)
	inv := 1 / float64(n-2*k)
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		// One scratch row per shard call: each coordinate's result depends
		// only on that coordinate's sorted values, so shard boundaries can
		// never change the float operations.
		vals := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j, u := range updates {
				vals[j] = u.Params[i]
			}
			sort.Float64s(vals)
			var sum float64
			for j := k; j < n-k; j++ {
				sum += vals[j]
			}
			out[i] = sum * inv
		}
	})
	return out, nil
}

// CoordinateMedian aggregates by the coordinate-wise median — the
// maximally trimmed mean. It tolerates up to ⌈n/2⌉−1 byzantine updates per
// coordinate and needs no tuning, at the cost of discarding almost all of
// the honest signal's averaging benefit.
type CoordinateMedian struct{}

var _ RobustAggregator = CoordinateMedian{}

// Rejected implements RobustAggregator: everything but the middle order
// statistic (or the middle pair, for even n).
func (CoordinateMedian) Rejected(n int) int {
	switch {
	case n <= 2:
		return 0
	case n%2 == 1:
		return n - 1
	default:
		return n - 2
	}
}

// String renders the canonical spec accepted by ParseAggregator.
func (CoordinateMedian) String() string { return "median" }

// Aggregate implements Aggregator.
func (CoordinateMedian) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	n := len(updates)
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		vals := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j, u := range updates {
				vals[j] = u.Params[i]
			}
			sort.Float64s(vals)
			if n%2 == 1 {
				out[i] = vals[n/2]
			} else {
				out[i] = (vals[n/2-1] + vals[n/2]) / 2
			}
		}
	})
	return out, nil
}

// Krum selects the single update closest to its n−F−2 nearest neighbors by
// squared Euclidean distance (Blanchard et al., NeurIPS 2017) and returns
// a copy of it as the next global vector. It tolerates up to F colluding
// byzantine clients but needs n ≥ F+3 updates per round so every candidate
// has at least one scoreable neighborhood.
type Krum struct {
	F int
}

var _ RobustAggregator = Krum{}

// Rejected implements RobustAggregator: every update but the selected one.
func (Krum) Rejected(n int) int {
	if n <= 1 {
		return 0
	}
	return n - 1
}

// String renders the canonical spec accepted by ParseAggregator.
func (k Krum) String() string { return fmt.Sprintf("krum(%d)", k.F) }

// Aggregate implements Aggregator.
func (k Krum) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if k.F < 0 {
		return nil, fmt.Errorf("fl: krum f must be ≥0, got %d", k.F)
	}
	n := len(updates)
	if n < k.F+3 {
		return nil, fmt.Errorf("%w: krum(%d) needs ≥ %d updates, got %d", ErrTooFewUpdates, k.F, k.F+3, n)
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	// Pairwise squared distances, sharded over pairs — never over elements:
	// each pair's sum runs serially over the full vectors, so the float
	// operation order (and hence the bits) cannot depend on the pool size.
	nPairs := n * (n - 1) / 2
	dist := make([]float64, nPairs)
	pa := make([]int, nPairs)
	pb := make([]int, nPairs)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pa[idx], pb[idx] = i, j
			idx++
		}
	}
	param.Shard(nPairs, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			a, b := updates[pa[p]].Params, updates[pb[p]].Params
			var s float64
			for e := range a {
				d := a[e] - b[e]
				s += d * d
			}
			dist[p] = s
		}
	})
	// pairAt recovers dist(i,j) for i < j from the triangular layout.
	pairAt := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return dist[i*(2*n-i-1)/2+(j-i-1)]
	}
	// Score each candidate by the sum of its n−F−2 smallest neighbor
	// distances; lowest score wins, ties broken by the smaller index so the
	// selection is deterministic.
	neighbors := n - k.F - 2
	best := -1
	var bestScore float64
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, pairAt(i, j))
			}
		}
		sort.Float64s(row)
		var score float64
		for j := 0; j < neighbors; j++ {
			score += row[j]
		}
		if best < 0 || score < bestScore {
			best, bestScore = i, score
		}
	}
	return updates[best].Params.Clone(), nil
}

// ParseAggregator parses an aggregator override spec: "mean" (the
// sample-weighted FedAvg mean; also the empty string), "median",
// "trimmed(FRAC)" with FRAC in [0,0.5), or "krum(F)" with F ≥ 0. The
// String methods of the returned aggregators render the canonical
// spelling, so Parse∘String round-trips.
func ParseAggregator(spec string) (Aggregator, error) {
	switch spec {
	case "", "mean":
		return WeightedAverage{}, nil
	case "median":
		return CoordinateMedian{}, nil
	}
	name, arg, found := strings.Cut(spec, "(")
	if !found || !strings.HasSuffix(arg, ")") {
		return nil, fmt.Errorf("fl: unknown aggregator %q (want mean, median, trimmed(frac) or krum(f))", spec)
	}
	arg = strings.TrimSuffix(arg, ")")
	switch name {
	case "trimmed":
		frac, err := strconv.ParseFloat(arg, 64)
		if err != nil || math.IsNaN(frac) || frac < 0 || frac >= 0.5 {
			return nil, fmt.Errorf("fl: trimmed mean frac must be in [0,0.5), got %q", arg)
		}
		return TrimmedMean{Frac: frac}, nil
	case "krum":
		f, err := strconv.Atoi(arg)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("fl: krum f must be a non-negative integer, got %q", arg)
		}
		return Krum{F: f}, nil
	}
	return nil, fmt.Errorf("fl: unknown aggregator %q (want mean, median, trimmed(frac) or krum(f))", spec)
}

// String renders the canonical spec accepted by ParseAggregator.
func (WeightedAverage) String() string { return "mean" }
