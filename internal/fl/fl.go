// Package fl is the federated-learning runtime: the round loop, client
// sampling, local-update dispatch and server-side aggregation. It is
// method-agnostic — a personalized-FL method plugs in a Trainer (what a
// client does with the global parameter vector), an Aggregator (how the
// server merges updates) and a Personalizer (what runs in the paper's
// personalization stage).
package fl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"calibre/internal/param"
	"calibre/internal/partition"
)

// ErrNoUpdates is returned by aggregators when a round produced no client
// updates.
var ErrNoUpdates = errors.New("fl: no client updates to aggregate")

// ErrUpdateSize marks an update whose payload (dense Params, Delta or
// ControlDelta) does not match the round's global vector. The runtimes
// check it at ingress — the simulator fails the round (a wrong-sized
// update from an in-process trainer is a bug), the networked server
// rejects the offending client — so a bad payload can never index out of
// bounds inside an aggregator.
var ErrUpdateSize = errors.New("fl: update payload does not match the global vector size")

// ErrQuorumNotMet is returned (wrapped) when a round's deadline expires
// before the configured quorum of client updates has arrived.
var ErrQuorumNotMet = errors.New("fl: quorum not met before round deadline")

// PanicError is a panic recovered from a client goroutine (local training
// or personalization), converted into an ordinary error so one
// misbehaving method cannot take down a process running many federations
// (the sweep scheduler relies on this to record the cell as failed and
// keep going). Value is the recovered panic value and Stack the goroutine
// stack captured at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error; the stack stays out of the one-line message and
// is available via the Stack field for logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("fl: panic in client goroutine: %v", e.Value)
}

// StragglerPolicy decides what happens to a sampled client that misses the
// round deadline under quorum aggregation.
type StragglerPolicy int

const (
	// StragglerRequeue (the default) discards the straggler's late update
	// but keeps the client in the federation: it rejoins the eligible pool
	// as soon as its stale reply drains and can be sampled in later rounds.
	StragglerRequeue StragglerPolicy = iota
	// StragglerDrop evicts the straggler from the federation entirely; it
	// is never sampled again and takes no part in personalization.
	StragglerDrop
)

// String renders the policy for logs and flags.
func (p StragglerPolicy) String() string {
	switch p {
	case StragglerRequeue:
		return "requeue"
	case StragglerDrop:
		return "drop"
	default:
		return fmt.Sprintf("stragglerpolicy(%d)", int(p))
	}
}

// ParseStragglerPolicy parses the CLI spelling of a policy.
func ParseStragglerPolicy(s string) (StragglerPolicy, error) {
	switch s {
	case "requeue", "":
		return StragglerRequeue, nil
	case "drop":
		return StragglerDrop, nil
	default:
		return 0, fmt.Errorf("fl: unknown straggler policy %q (want requeue or drop)", s)
	}
}

// Update is a client's result for one round of local training. Its
// payload is delta-capable: exactly one of Params (dense) or Delta
// (compressed against the round's global vector) is set in transit, and
// Resolve materializes Params before aggregation.
type Update struct {
	ClientID   int
	Params     param.Vector // full updated parameter vector (dense form)
	NumSamples int          // local training set size (aggregation weight)
	TrainLoss  float64      // mean local objective value

	// Delta, when non-nil, carries the update as a lossless XOR-delta
	// against the round's global vector instead of a dense Params — the
	// compressed wire form flnet ships. Aggregators never see it: the
	// runtimes call Resolve at ingress, which reconstructs Params
	// bit-identically and clears Delta.
	Delta *param.Delta

	// Divergence is Calibre's prototype divergence rate: the mean distance
	// between local encodings and their assigned prototypes. Zero when the
	// method does not compute it.
	Divergence float64

	// ControlDelta carries SCAFFOLD's client control-variate change; nil
	// for other methods.
	ControlDelta param.Vector
}

// Resolve materializes and validates the update's payload against the
// round's global vector: a delta-carrying update gets its dense Params
// reconstructed bit-exactly (and Delta cleared), and a dense update is
// length-checked. Every mismatch — missing payload, ambiguous payload
// (both forms set), wrong length, corrupt delta — wraps ErrUpdateSize, so
// ingress layers can reject the sender with one typed check.
func (u *Update) Resolve(global param.Vector) error {
	return u.ResolveInto(global, nil)
}

// ResolveInto is Resolve decoding a delta payload into scratch (see
// param.Delta.ApplyInto) so ingress loops can reuse one decode buffer per
// client slot. The reuse contract is the aggregation plane's read-only
// guarantee (see aggregate.go): nothing downstream mutates or retains
// u.Params past the round, so the buffer may be handed back to the same
// slot next round. scratch may be nil (allocate fresh, exactly Resolve).
func (u *Update) ResolveInto(global, scratch param.Vector) error {
	switch {
	case u.Delta != nil && u.Params != nil:
		return fmt.Errorf("%w: client %d sent both dense params and a delta", ErrUpdateSize, u.ClientID)
	case u.Delta != nil:
		v, err := u.Delta.ApplyInto(scratch, global)
		if err != nil {
			return fmt.Errorf("%w: client %d delta: %v", ErrUpdateSize, u.ClientID, err)
		}
		u.Params = v
		u.Delta = nil
	case u.Params == nil:
		return fmt.Errorf("%w: client %d sent no payload", ErrUpdateSize, u.ClientID)
	case len(u.Params) != len(global):
		return fmt.Errorf("%w: client %d sent %d params, want %d", ErrUpdateSize, u.ClientID, len(u.Params), len(global))
	}
	if u.ControlDelta != nil && len(u.ControlDelta) != len(global) {
		return fmt.Errorf("%w: client %d control delta has %d entries, want %d", ErrUpdateSize, u.ClientID, len(u.ControlDelta), len(global))
	}
	return nil
}

// Trainer performs one client's local update for a round.
//
// Implementations may keep per-client state across rounds (momentum
// encoders, personalized models, control variates); they must be safe for
// concurrent calls on distinct clients.
type Trainer interface {
	Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*Update, error)
}

// Aggregator merges one round's updates into the next global vector.
// Implementations must treat global and every update payload as
// read-only: updates are shared with RoundStats and checkpoint paths, so
// mutating them would silently corrupt resume bit-identity.
type Aggregator interface {
	Aggregate(global param.Vector, updates []*Update) (param.Vector, error)
}

// Personalizer runs the personalization stage for one client given the
// final global vector, returning the client's local test accuracy.
type Personalizer interface {
	Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error)
}

// Method bundles everything a personalized-FL algorithm contributes.
type Method struct {
	Name         string
	Trainer      Trainer
	Aggregator   Aggregator
	Personalizer Personalizer
	// InitGlobal produces the initial global parameter vector.
	InitGlobal func(rng *rand.Rand) (param.Vector, error)
}

// Validate checks that all required pieces are present.
func (m *Method) Validate() error {
	switch {
	case m.Name == "":
		return errors.New("fl: method missing name")
	case m.Trainer == nil:
		return fmt.Errorf("fl: method %s missing trainer", m.Name)
	case m.Aggregator == nil:
		return fmt.Errorf("fl: method %s missing aggregator", m.Name)
	case m.Personalizer == nil:
		return fmt.Errorf("fl: method %s missing personalizer", m.Name)
	case m.InitGlobal == nil:
		return fmt.Errorf("fl: method %s missing InitGlobal", m.Name)
	}
	return nil
}

// RoundStats records one round's outcome, including the asynchronous
// runtime's straggler accounting. In a fully synchronous round Responders
// equals Participants and the remaining fields are zero.
type RoundStats struct {
	Round        int
	Participants []int // clients sampled for the round
	MeanLoss     float64

	// Responders lists the participants whose updates were aggregated,
	// in canonical (ascending-slot) order. Nil means all participants
	// responded (fully synchronous round).
	Responders []int
	// Stragglers lists participants whose updates were not aggregated:
	// they missed the round deadline, dropped out, or failed mid-round.
	Stragglers []int
	// LateUpdates counts stale replies from earlier rounds' stragglers
	// that drained during this round's collection window.
	LateUpdates int
	// DeadlineExpired reports that the round was closed by its deadline
	// with a quorum of updates, rather than by every participant replying.
	DeadlineExpired bool
	// AdversarialUpdates counts aggregated updates that came from clients
	// under adversarial control (SimConfig.Adversary / the server's seeded
	// compromise trace).
	AdversarialUpdates int
	// RejectedUpdates counts updates a robust aggregator excluded from the
	// aggregate by construction (RobustAggregator.Rejected).
	RejectedUpdates int
}

// String renders the round on one log line, including straggler accounting
// when present; cmd/calibre-server and examples use it for OnRound output.
func (r RoundStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "round %d: participants=%v mean-loss=%.4f", r.Round, r.Participants, r.MeanLoss)
	if r.Responders != nil {
		fmt.Fprintf(&b, " responders=%v stragglers=%v", r.Responders, r.Stragglers)
	}
	if r.LateUpdates > 0 {
		fmt.Fprintf(&b, " late-updates=%d", r.LateUpdates)
	}
	if r.DeadlineExpired {
		b.WriteString(" deadline-expired")
	}
	if r.AdversarialUpdates > 0 {
		fmt.Fprintf(&b, " adversarial=%d", r.AdversarialUpdates)
	}
	if r.RejectedUpdates > 0 {
		fmt.Fprintf(&b, " rejected=%d", r.RejectedUpdates)
	}
	return b.String()
}

// Sampler selects the participating clients for a round.
type Sampler interface {
	Sample(rng *rand.Rand, numClients, perRound int) []int
}

// UniformSampler draws perRound distinct clients uniformly (the paper's
// "10 clients randomly selected per round").
type UniformSampler struct{}

var _ Sampler = UniformSampler{}

// Sample implements Sampler.
func (UniformSampler) Sample(rng *rand.Rand, numClients, perRound int) []int {
	if perRound >= numClients {
		out := make([]int, numClients)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(numClients)
	out := append([]int(nil), perm[:perRound]...)
	sort.Ints(out)
	return out
}

// clientRNG derives a deterministic per-(round, client) RNG so results do
// not depend on goroutine scheduling.
func clientRNG(seed int64, round, clientID int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(round)*1_000_003 ^ int64(clientID)*7_777_777))
}

// runParallel executes fn for every id in ids on at most parallelism
// goroutines, collecting results in input order. The first error cancels
// outstanding work.
func runParallel[T any](ctx context.Context, parallelism int, ids []int, fn func(ctx context.Context, id int) (T, error)) ([]T, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, len(ids))
	errs := make([]error, len(ids))
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, id := range ids {
		// Stop dispatching once the context is canceled (first error or
		// parent cancellation); already-spawned goroutines drain on their
		// own ctx check.
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(slot, id int) {
			defer wg.Done()
			defer func() { <-sem }()
			// Panic isolation: a panicking trainer/personalizer becomes a
			// typed error on its slot instead of crashing the process.
			defer func() {
				if r := recover(); r != nil {
					errs[slot] = &PanicError{Value: r, Stack: debug.Stack()}
					cancel()
				}
			}()
			if ctx.Err() != nil {
				errs[slot] = ctx.Err()
				return
			}
			res, err := fn(ctx, id)
			if err != nil {
				errs[slot] = err
				cancel()
				return
			}
			results[slot] = res
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil && errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	// A plain cancel from an error path was already surfaced above; if the
	// parent ctx was canceled, report it.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Parent cancellation can also land between dispatches, stopping the
	// loop before any goroutine records an error: the results are then
	// incomplete and must not be returned as success.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
