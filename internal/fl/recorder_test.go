package fl

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"calibre/internal/param"
	"calibre/internal/trace"
)

// TestTraceDoesNotPerturbRun pins the flight recorder's half of the
// bit-identity contract (the networked half lives in flnet): a fully
// traced simulation produces exactly the same global model and RoundStats
// history as a bare one, and with an injected clock the emitted JSONL
// trace bytes are deterministic across two runs.
func TestTraceDoesNotPerturbRun(t *testing.T) {
	clients := testClients(t, 8)
	runOnce := func(rec *trace.Recorder) (param.Vector, []RoundStats) {
		t.Helper()
		cfg := SimConfig{
			Rounds: 4, ClientsPerRound: 3, Seed: 99,
			DeltaUpdates: true, DropoutRate: 0.3, Quorum: 1,
			Parallelism: 1, // injected StepClock is single-goroutine only
			Recorder:    rec,
		}
		sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		global, history, err := sim.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := rec.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		return global, history
	}

	plainGlobal, plainHistory := runOnce(nil)
	var sink1 bytes.Buffer
	tracedGlobal, tracedHistory := runOnce(trace.New(&sink1, trace.Config{Clock: trace.StepClock(100)}))

	if !reflect.DeepEqual(plainGlobal, tracedGlobal) {
		t.Errorf("global model drifted under tracing:\nbare:   %v\ntraced: %v", plainGlobal, tracedGlobal)
	}
	if !reflect.DeepEqual(plainHistory, tracedHistory) {
		t.Errorf("RoundStats history drifted under tracing:\nbare:   %+v\ntraced: %+v", plainHistory, tracedHistory)
	}

	// Injected clock ⇒ byte-identical trace across runs.
	var sink2 bytes.Buffer
	runOnce(trace.New(&sink2, trace.Config{Clock: trace.StepClock(100)}))
	if !bytes.Equal(sink1.Bytes(), sink2.Bytes()) {
		t.Errorf("trace bytes differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			sink1.Bytes(), sink2.Bytes())
	}

	// And the trace actually describes the run: 4 round spans, every
	// client span inside one, drops attributed to the dropout model.
	events, err := trace.ReadAll(bytes.NewReader(sink1.Bytes()))
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.Runtime != "sim" {
			t.Fatalf("event with wrong runtime: %+v", e)
		}
		switch e.Kind {
		case trace.KindClientUpdate:
			if e.Client < 0 || e.Wire != "delta" || e.Bytes <= 0 || e.Dur <= 0 {
				t.Errorf("implausible client_update: %+v", e)
			}
		case trace.KindClientDrop:
			if e.Reason != trace.DropStraggler {
				t.Errorf("dropout drop misattributed: %+v", e)
			}
		}
	}
	if counts[trace.KindRoundStart] != 4 || counts[trace.KindRoundEnd] != 4 {
		t.Errorf("round span counts = %d start / %d end, want 4/4", counts[trace.KindRoundStart], counts[trace.KindRoundEnd])
	}
	if counts[trace.KindClientDispatch] == 0 || counts[trace.KindClientDispatch] != counts[trace.KindClientUpdate] {
		t.Errorf("dispatch %d != update %d", counts[trace.KindClientDispatch], counts[trace.KindClientUpdate])
	}
	if counts[trace.KindClientDrop] == 0 {
		t.Error("0.3 dropout over 4 rounds produced no client_drop events (seed-dependent; pick another seed)")
	}
}

// TestTraceAvailabilityDropReason pins that a seeded availability trace
// attributes its drops as reason=trace, not straggler.
func TestTraceAvailabilityDropReason(t *testing.T) {
	clients := testClients(t, 8)
	var sink bytes.Buffer
	cfg := SimConfig{
		Rounds: 4, ClientsPerRound: 4, Seed: 5, Quorum: 1, Parallelism: 1,
		Trace:    &TraceConfig{Kind: TraceDiurnal, Base: 0.4, Amp: 0.4, Period: 4},
		Recorder: trace.New(&sink, trace.Config{Clock: trace.StepClock(1)}),
	}
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Recorder.Flush()
	events, err := trace.ReadAll(bytes.NewReader(sink.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for _, e := range events {
		if e.Kind == trace.KindClientDrop {
			drops++
			if e.Reason != trace.DropTrace {
				t.Fatalf("availability drop misattributed: %+v", e)
			}
		}
	}
	if drops == 0 {
		t.Fatal("diurnal availability at base 0.4 produced no drops (seed-dependent; pick another seed)")
	}
}

// TestTraceResumeEvent pins the durability marks: checkpoints emit
// checkpoint_save, and a resumed run opens with a resume event at the
// checkpoint round.
func TestTraceResumeEvent(t *testing.T) {
	clients := testClients(t, 6)
	base := SimConfig{Rounds: 4, ClientsPerRound: 2, Seed: 3, Parallelism: 1}

	var mid *SimState
	cfg := base
	cfg.CheckpointEvery = 2
	cfg.OnCheckpoint = func(st *SimState) error {
		if st.Round == 2 {
			mid = st
		}
		return nil
	}
	var sink1 bytes.Buffer
	cfg.Recorder = trace.New(&sink1, trace.Config{Clock: trace.StepClock(1)})
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg.Recorder.Flush()
	events, err := trace.ReadAll(bytes.NewReader(sink1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	saves := 0
	for _, e := range events {
		if e.Kind == trace.KindCheckpointSave {
			saves++
		}
	}
	if saves != 2 { // stride 2 over 4 rounds: after rounds 2 and 4
		t.Fatalf("checkpoint_save count = %d, want 2", saves)
	}
	if mid == nil {
		t.Fatal("no mid-run checkpoint captured")
	}

	var sink2 bytes.Buffer
	resumed := base
	resumed.ResumeFrom = mid
	resumed.Recorder = trace.New(&sink2, trace.Config{Clock: trace.StepClock(1)})
	sim, err = NewSimulator(resumed, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	resumed.Recorder.Flush()
	events, err = trace.ReadAll(bytes.NewReader(sink2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Kind != trace.KindResume || events[0].Round != 2 {
		t.Fatalf("resumed trace should open with a resume event at round 2, got %+v", events[:min(len(events), 1)])
	}
	rounds := 0
	for _, e := range events {
		if e.Kind == trace.KindRoundStart {
			rounds++
		}
	}
	if rounds != 2 {
		t.Fatalf("resumed trace holds %d round spans, want 2", rounds)
	}
}
