package fl

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"calibre/internal/param"
	"calibre/internal/partition"
)

// AdversaryKind names one attack model.
type AdversaryKind string

// The attack taxonomy (see ARCHITECTURE.md "Threat model & robust
// aggregation").
const (
	// AdvSignFlip trains honestly, then ships the update reflected through
	// the global vector scaled by Scale — the classic gradient-reversal
	// poison.
	AdvSignFlip AdversaryKind = "sign-flip"
	// AdvNoise skips local training and ships the global vector plus
	// Scale-scaled gaussian noise drawn from the attack RNG.
	AdvNoise AdversaryKind = "noise"
	// AdvCollude makes every compromised client in a round ship the same
	// noise vector (seeded per round, not per client) — the same-value
	// collusion that defeats plain per-update outlier filters.
	AdvCollude AdversaryKind = "collude"
	// AdvLabelFlip trains honestly but on label-flipped local data
	// (y → NumClasses−1−y), the stealthy data-poisoning attack.
	AdvLabelFlip AdversaryKind = "label-flip"
)

// Adversary places a deterministic fraction of the client population under
// adversarial control. Which clients are compromised, and every byte they
// send, is a pure function of (seed, round, client), so hostile runs are
// exactly as reproducible — and as resumable — as benign ones.
type Adversary struct {
	Kind AdversaryKind
	// Scale is the attack magnitude (reflection factor for sign-flip,
	// noise std for noise/collude); ≤0 means 1. Label-flip ignores it.
	Scale float64
	// Frac is the fraction of the population compromised, in [0,1]. The
	// compromised set is the first round(Frac·n) entries of a seeded
	// permutation (at least one when Frac > 0), fixed for the whole run.
	Frac float64
}

// Validate checks the configuration.
func (a *Adversary) Validate() error {
	if a == nil {
		return nil
	}
	switch a.Kind {
	case AdvSignFlip, AdvNoise, AdvCollude, AdvLabelFlip:
	default:
		return fmt.Errorf("fl: unknown adversary kind %q (want sign-flip, noise, collude or label-flip)", a.Kind)
	}
	if a.Scale < 0 || math.IsNaN(a.Scale) || math.IsInf(a.Scale, 0) {
		return fmt.Errorf("fl: adversary scale must be a finite value ≥0, got %g", a.Scale)
	}
	if a.Frac < 0 || a.Frac > 1 || math.IsNaN(a.Frac) {
		return fmt.Errorf("fl: adversary frac must be in [0,1], got %g", a.Frac)
	}
	return nil
}

// scale resolves the magnitude default.
func (a *Adversary) scale() float64 {
	if a.Scale <= 0 {
		return 1
	}
	return a.Scale
}

// String renders the kind+scale spec accepted by ParseAdversary (Frac is
// carried separately — it is its own sweep axis).
func (a *Adversary) String() string {
	if a == nil {
		return ""
	}
	if a.Scale == 0 {
		return string(a.Kind)
	}
	return fmt.Sprintf("%s(%s)", a.Kind, strconv.FormatFloat(a.Scale, 'g', -1, 64))
}

// ParseAdversary parses an attack spec: a kind name with an optional
// parenthesized scale — "sign-flip", "sign-flip(3)", "noise(0.5)",
// "collude", "label-flip". The empty string means no adversary (nil).
// Frac is set separately by the caller. Parse∘String round-trips.
func ParseAdversary(spec string) (*Adversary, error) {
	if spec == "" {
		return nil, nil
	}
	kind, scale := spec, 0.0
	if name, arg, found := strings.Cut(spec, "("); found {
		if !strings.HasSuffix(arg, ")") {
			return nil, fmt.Errorf("fl: malformed adversary spec %q", spec)
		}
		arg = strings.TrimSuffix(arg, ")")
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("fl: adversary scale must be a finite value >0, got %q", arg)
		}
		kind, scale = name, v
	}
	a := &Adversary{Kind: AdversaryKind(kind), Scale: scale}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.Kind == AdvLabelFlip && a.Scale != 0 {
		return nil, fmt.Errorf("fl: label-flip takes no scale, got %q", spec)
	}
	return a, nil
}

// advSalt decorrelates adversary RNG streams from the training streams
// derived from the same master seed.
const advSalt int64 = 0x41445653 // "ADVS"

// attackRNG derives the deterministic per-(round, client) attack stream;
// clientID −1 is the shared per-round collusion stream.
func attackRNG(seed int64, round, clientID int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ advSalt ^ int64(round)*2_000_003 ^ int64(clientID)*9_999_973))
}

// Malicious returns the compromised client indices for a population of n:
// the first round(Frac·n) entries (at least 1 when Frac > 0) of a
// permutation drawn from the seeded adversary stream, sorted. It is a pure
// function of (seed, n, Frac) — the "seeded trace" that makes hostile runs
// reproducible.
func (a *Adversary) Malicious(seed int64, n int) []int {
	if a == nil || a.Frac <= 0 || n <= 0 {
		return nil
	}
	k := int(math.Round(a.Frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed ^ advSalt))
	ids := append([]int(nil), rng.Perm(n)[:k]...)
	sort.Ints(ids)
	return ids
}

// WrapTrainer returns a trainer that behaves like inner for honest clients
// and mounts the configured attack for the compromised set drawn from
// (seed, numClients). The wrapper is stateless across rounds (its only
// cache memoizes the pure label-flip transform), so wrapping never makes a
// resumable method stateful.
func (a *Adversary) WrapTrainer(inner Trainer, seed int64, numClients int) Trainer {
	if a == nil || a.Frac <= 0 {
		return inner
	}
	mal := make(map[int]bool)
	for _, id := range a.Malicious(seed, numClients) {
		mal[id] = true
	}
	return &adversaryTrainer{inner: inner, cfg: *a, seed: seed, malicious: mal}
}

// adversaryTrainer is the Trainer wrapper WrapTrainer installs.
type adversaryTrainer struct {
	inner     Trainer
	cfg       Adversary
	seed      int64
	malicious map[int]bool

	mu      sync.Mutex
	flipped map[int]*partition.Client // label-flip memo, keyed by client ID
}

// Train implements Trainer.
func (t *adversaryTrainer) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*Update, error) {
	if !t.malicious[client.ID] {
		return t.inner.Train(ctx, rng, client, global, round)
	}
	switch t.cfg.Kind {
	case AdvSignFlip:
		u, err := t.inner.Train(ctx, rng, client, global, round)
		if err != nil {
			return nil, err
		}
		if len(u.Params) != len(global) {
			return u, nil // let ingress validation reject it with the typed error
		}
		p := make(param.Vector, len(global))
		s := t.cfg.scale()
		for i := range p {
			p[i] = global[i] - s*(u.Params[i]-global[i])
		}
		u.Params = p
		u.ControlDelta = nil
		return u, nil
	case AdvNoise:
		arng := attackRNG(t.seed, round, client.ID)
		return t.noiseUpdate(client, global, arng), nil
	case AdvCollude:
		// Every colluder derives the identical round vector: the stream is
		// keyed by round only.
		arng := attackRNG(t.seed, round, -1)
		return t.noiseUpdate(client, global, arng), nil
	case AdvLabelFlip:
		return t.inner.Train(ctx, rng, t.flipClient(client), global, round)
	default:
		return nil, fmt.Errorf("fl: unknown adversary kind %q", t.cfg.Kind)
	}
}

// noiseUpdate fabricates global + Scale·gaussian without training.
func (t *adversaryTrainer) noiseUpdate(client *partition.Client, global param.Vector, arng *rand.Rand) *Update {
	p := make(param.Vector, len(global))
	s := t.cfg.scale()
	for i := range p {
		p[i] = global[i] + s*arng.NormFloat64()
	}
	n := 1
	if client.Train != nil {
		n = client.Train.Len()
	}
	return &Update{ClientID: client.ID, Params: p, NumSamples: n}
}

// flipClient returns the client with its training labels flipped
// (y → NumClasses−1−y; unlabeled samples stay unlabeled). Features are
// shared, only the label slice is copied; the result is memoized so
// trainers that key per-client caches see a stable dataset.
func (t *adversaryTrainer) flipClient(c *partition.Client) *partition.Client {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fc, ok := t.flipped[c.ID]; ok {
		return fc
	}
	fc := &partition.Client{ID: c.ID, Train: c.Train, Test: c.Test, Unlabeled: c.Unlabeled}
	if c.Train != nil {
		ds := *c.Train
		ds.Y = make([]int, len(c.Train.Y))
		for i, y := range c.Train.Y {
			if y >= 0 && y < ds.NumClasses {
				ds.Y[i] = ds.NumClasses - 1 - y
			} else {
				ds.Y[i] = y
			}
		}
		fc.Train = &ds
	}
	if t.flipped == nil {
		t.flipped = make(map[int]*partition.Client)
	}
	t.flipped[c.ID] = fc
	return fc
}
