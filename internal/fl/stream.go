package fl

import (
	"fmt"

	"calibre/internal/param"
)

// UpdateSink accumulates one round's client updates incrementally. It is
// how the runtimes (the in-process Simulator and the flnet TCP server)
// aggregate: updates are folded in one at a time and, for streaming-capable
// aggregators, their payloads can be released immediately instead of being
// buffered until the round closes.
//
// Determinism contract: callers must Ingest in the round's canonical
// participant order (ascending client-slot order, exactly the order the
// batch Aggregate receives its updates slice in). Under that discipline a
// sink produces bit-identical results to the batch path for any arrival
// timing, because the identical float operations run in the identical
// order. Like the batch path, sinks never mutate the updates they ingest.
type UpdateSink interface {
	// Ingest folds one update into the running aggregate.
	Ingest(u *Update) error
	// Finish closes the round and returns the new global vector. A sink
	// that ingested nothing returns ErrNoUpdates, like the batch path.
	Finish() (param.Vector, error)
}

// StreamingAggregator is implemented by aggregators that can fold updates
// into a running aggregate without retaining their parameter vectors.
// Aggregators that need the whole round at once (for example
// DivergenceWeighted, whose softmax normalizes over all divergences) simply
// don't implement it and are adapted by NewRoundSink with a buffering sink.
type StreamingAggregator interface {
	Aggregator
	// NewSink starts one round's streaming aggregation over global.
	NewSink(global param.Vector) UpdateSink
}

// NewRoundSink starts one round of aggregation: a true streaming sink when
// agg implements StreamingAggregator, otherwise a buffering adapter that
// collects the updates and defers to agg.Aggregate on Finish. Either way
// the result is bit-identical to calling agg.Aggregate with the updates in
// ingestion order.
func NewRoundSink(agg Aggregator, global param.Vector) UpdateSink {
	if s, ok := agg.(StreamingAggregator); ok {
		return s.NewSink(global)
	}
	return &bufferSink{agg: agg, global: global}
}

// bufferSink adapts a batch-only Aggregator to the UpdateSink interface.
type bufferSink struct {
	agg     Aggregator
	global  param.Vector
	updates []*Update
}

func (b *bufferSink) Ingest(u *Update) error {
	b.updates = append(b.updates, u)
	return nil
}

func (b *bufferSink) Finish() (param.Vector, error) {
	return b.agg.Aggregate(b.global, b.updates)
}

// weightedAverageSink streams FedAvg aggregation: it keeps only the running
// weighted sum and total weight. Each Ingest folds its update over shard
// ranges (param.Shard) with the same per-element float operations, in the
// same order, as WeightedAverage.Aggregate's batch sweep.
type weightedAverageSink struct {
	sum   param.Vector
	total float64
	n     int
}

var _ StreamingAggregator = WeightedAverage{}

// NewSink implements StreamingAggregator.
func (WeightedAverage) NewSink(global param.Vector) UpdateSink {
	return &weightedAverageSink{sum: make(param.Vector, len(global))}
}

func (s *weightedAverageSink) Ingest(u *Update) error {
	if len(u.Params) != len(s.sum) {
		return fmt.Errorf("%w: update from client %d has %d params, want %d", ErrUpdateSize, u.ClientID, len(u.Params), len(s.sum))
	}
	w := float64(u.NumSamples)
	if w <= 0 {
		w = 1
	}
	s.total += w
	sum, p := s.sum, u.Params
	param.Shard(len(sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i] += w * p[i]
		}
	})
	s.n++
	return nil
}

func (s *weightedAverageSink) Finish() (param.Vector, error) {
	if s.n == 0 {
		return nil, ErrNoUpdates
	}
	inv := 1 / s.total
	sum := s.sum
	param.Shard(len(sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i] *= inv
		}
	})
	return sum, nil
}
