package fl

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// healthTrainer nudges the global by a per-client step with a small
// ID-keyed spread, so each round's update-norm cohort has non-zero
// dispersion — the regime the MAD-based norm-z detector is built for
// (fakeTrainer's identical +1 steps collapse the MAD to zero and force
// the mean-deviation fallback). The reported loss decays 1/(round+1),
// identical across clients, keeping the loss and fairness detectors
// quiet so suspect tests see norm-z alerts and nothing else.
type healthTrainer struct{}

func (healthTrainer) Train(ctx context.Context, _ *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	step := 0.1 + 0.005*float64(c.ID)
	params := make(param.Vector, len(global))
	for i, v := range global {
		params[i] = v + step
	}
	return &Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(),
		TrainLoss: 1 / float64(round+1)}, nil
}

// scheduleTrainer reports a fixed per-round loss (shared by every client)
// and fakeTrainer's +1 parameter step, so a test can script the exact
// federation loss curve the trend detectors see.
type scheduleTrainer struct{ loss []float64 }

func (s scheduleTrainer) Train(ctx context.Context, _ *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := make(param.Vector, len(global))
	for i, v := range global {
		params[i] = v + 1
	}
	l := s.loss[len(s.loss)-1]
	if round < len(s.loss) {
		l = s.loss[round]
	}
	return &Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len(),
		TrainLoss: l}, nil
}

// hostileHealthConfig is the shared fixture for the monitor tests: every
// client sampled every round, 30% of the population sign-flipping with a
// reflection large enough that compromised update norms sit far outside
// the honest cohort's spread.
func hostileHealthConfig(rounds int) SimConfig {
	return SimConfig{
		Rounds: rounds, ClientsPerRound: 10, Seed: 7,
		Adversary: &Adversary{Kind: AdvSignFlip, Scale: 6, Frac: 0.3},
	}
}

func runHostileHealth(t *testing.T, cfg SimConfig, clients []*partition.Client) (param.Vector, []RoundStats) {
	t.Helper()
	sim, err := NewSimulator(cfg, fakeMethod(healthTrainer{}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, history, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return global, history
}

// TestHealthMonitorDoesNotPerturbRun pins the observational contract: a
// simulation with a live health.Monitor (plus registry and alert hook)
// attached must produce exactly the same global model and history as a
// bare run — the detectors read the round stream, never touch it.
func TestHealthMonitorDoesNotPerturbRun(t *testing.T) {
	clients := testClients(t, 10)

	bareGlobal, bareHistory := runHostileHealth(t, hostileHealthConfig(6), clients)

	reg := obs.NewRegistry()
	mon := health.NewMonitor(nil)
	var alerts []health.Alert
	cfg := hostileHealthConfig(6)
	cfg.Obs = reg
	cfg.Health = mon
	cfg.OnAlert = func(a health.Alert) { alerts = append(alerts, a) }
	monGlobal, monHistory := runHostileHealth(t, cfg, clients)

	if !reflect.DeepEqual(bareGlobal, monGlobal) {
		t.Errorf("global model drifted under health monitoring:\nwithout: %v\nwith:    %v", bareGlobal, monGlobal)
	}
	if !reflect.DeepEqual(bareHistory, monHistory) {
		t.Errorf("history drifted under health monitoring:\nwithout: %+v\nwith:    %+v", bareHistory, monHistory)
	}

	// The monitor actually saw the attack and the metrics plane carries
	// the alert counters and suspect gauge.
	if len(alerts) == 0 {
		t.Fatal("OnAlert never fired under a 30% sign-flip attack")
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.CounterHealthAlerts] < 3 {
		t.Errorf("health_alerts_total = %d, want ≥3", snap.Counters[obs.CounterHealthAlerts])
	}
	if snap.Counters[obs.CounterHealthCritical] < 3 {
		t.Errorf("health_critical_alerts_total = %d, want ≥3", snap.Counters[obs.CounterHealthCritical])
	}
	if got := snap.Gauges[obs.GaugeHealthSuspects]; got != 3 {
		t.Errorf("health_suspect_clients gauge = %d, want 3", got)
	}
}

// TestHealthSuspectsMatchMaliciousSet pins detection accuracy: under a
// 30% sign-flip attack the monitor's suspect set must be exactly the
// seeded compromised set — no honest client smeared, no attacker missed
// — and an honest twin of the same federation must raise zero alerts.
func TestHealthSuspectsMatchMaliciousSet(t *testing.T) {
	clients := testClients(t, 10)
	cfg := hostileHealthConfig(6)
	mon := health.NewMonitor(nil)
	cfg.Health = mon
	runHostileHealth(t, cfg, clients)

	want := cfg.Adversary.Malicious(cfg.Seed, len(clients))
	diag := mon.Diagnosis()
	if !reflect.DeepEqual(diag.Suspects, want) {
		t.Errorf("suspects = %v, want exactly the compromised set %v", diag.Suspects, want)
	}
	for _, a := range diag.Alerts {
		if a.Rule != "norm-z" {
			t.Errorf("unexpected %s alert in a quiet-loss federation: %v", a.Rule, a)
		}
	}
	// Suspects rank as the least-healthy clients.
	for i, s := range diag.Clients[:len(want)] {
		if !s.Suspect {
			t.Errorf("rank %d (client %d) not a suspect; ranking = %+v", i, s.ID, diag.Clients)
		}
	}

	// Honest twin: same federation, no adversary — nothing to report.
	honest := health.NewMonitor(nil)
	hcfg := hostileHealthConfig(6)
	hcfg.Adversary = nil
	hcfg.Health = honest
	runHostileHealth(t, hcfg, clients)
	hd := honest.Diagnosis()
	if len(hd.Alerts) != 0 || len(hd.Suspects) != 0 || hd.Critical != 0 {
		t.Errorf("honest federation raised alerts: %+v", hd)
	}
}

// TestHealthVerdictsDeterministicAcrossWorkers pins bit-identical
// diagnosis across Parallelism/KernelWorkers 1, 2, 4 and 8: the update
// norms feeding the detectors are serial left-to-right reductions
// recorded into slot-indexed arrays, so goroutine scheduling can never
// reorder or perturb what the monitor sees.
func TestHealthVerdictsDeterministicAcrossWorkers(t *testing.T) {
	clients := testClients(t, 10)
	diagnose := func(workers int) ([]byte, health.Diagnosis) {
		t.Helper()
		mon := health.NewMonitor(nil)
		cfg := hostileHealthConfig(6)
		cfg.Parallelism = workers
		cfg.KernelWorkers = workers
		cfg.Health = mon
		runHostileHealth(t, cfg, clients)
		d := mon.Diagnosis()
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal diagnosis: %v", err)
		}
		return raw, d
	}

	refRaw, refDiag := diagnose(1)
	if len(refDiag.Suspects) != 3 {
		t.Fatalf("reference run found %v suspects, want 3", refDiag.Suspects)
	}
	for _, workers := range []int{2, 4, 8} {
		raw, diag := diagnose(workers)
		if !reflect.DeepEqual(diag, refDiag) {
			t.Errorf("diagnosis drifted at %d workers:\nwant %+v\ngot  %+v", workers, refDiag, diag)
		}
		if string(raw) != string(refRaw) {
			t.Errorf("diagnosis JSON not byte-identical at %d workers", workers)
		}
	}
}

// TestHealthWarmStartResume pins the kill+resume contract for the
// federation-scoped detectors: a monitor attached to a resumed run is
// warm-started from the checkpoint's history, so its loss-trend verdicts
// — including alerts that only fire after the cut — match a monitor that
// watched the whole run live. Per-client windows are not part of
// SimState (replay a trace through calibre-doctor for those), so the
// test disables the per-client rules.
func TestHealthWarmStartResume(t *testing.T) {
	const total, cut = 8, 4
	clients := testClients(t, 6)
	// Scripted loss curve: dips, spikes into divergence at round 3
	// (before the cut), then flatlines so the plateau detector fires at
	// round 7 (after the cut).
	tr := scheduleTrainer{loss: []float64{1, 0.5, 5, 10, 0.4, 0.4, 0.4, 0.4}}
	hcfg := health.DefaultConfig()
	hcfg.NormZ = false
	hcfg.Fairness = false
	hcfg.PlateauWindow = 4
	base := SimConfig{Rounds: total, ClientsPerRound: 3, Seed: 11}

	run := func(cfg SimConfig, mon *health.Monitor) *SimState {
		t.Helper()
		var last *SimState
		cfg.Health = mon
		cfg.OnCheckpoint = func(st *SimState) error { last = st; return nil }
		sim, err := NewSimulator(cfg, fakeMethod(tr), clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		if _, _, err := sim.Run(context.Background()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return last
	}

	// Reference: one monitor watches all 8 rounds live.
	full := health.NewMonitor(&hcfg)
	fullCfg := base
	run(fullCfg, full)

	// Kill at round 4, then a fresh process resumes with a fresh monitor.
	cutCfg := base
	cutCfg.Rounds = cut
	st := run(cutCfg, nil)
	if st == nil || st.Round != cut {
		t.Fatalf("no checkpoint at round %d: %+v", cut, st)
	}
	resumed := health.NewMonitor(&hcfg)
	resCfg := base
	resCfg.ResumeFrom = st
	run(resCfg, resumed)

	fd, rd := full.Diagnosis(), resumed.Diagnosis()
	if fd.Rounds != total || rd.Rounds != total {
		t.Fatalf("rounds observed: full=%d resumed=%d, want %d", fd.Rounds, rd.Rounds, total)
	}
	if !reflect.DeepEqual(fd.Alerts, rd.Alerts) {
		t.Errorf("alerts drifted across kill+resume:\nfull:    %+v\nresumed: %+v", fd.Alerts, rd.Alerts)
	}
	if fd.Critical != rd.Critical || len(fd.Suspects) != len(rd.Suspects) {
		t.Errorf("verdict counters drifted: full=%+v resumed=%+v", fd, rd)
	}
	// The scripted curve produced both a pre-cut and a post-cut alert,
	// so the equality above actually exercised the warm start.
	rules := map[string]int{}
	for _, a := range fd.Alerts {
		rules[a.Rule] = a.Round
	}
	if r, ok := rules["loss-divergence"]; !ok || r >= cut {
		t.Errorf("want a loss-divergence alert before round %d, got alerts %+v", cut, fd.Alerts)
	}
	if r, ok := rules["plateau"]; !ok || r < cut {
		t.Errorf("want a plateau alert after round %d, got alerts %+v", cut, fd.Alerts)
	}
}

// TestHealthRingReplayMatchesLive pins the calibre-doctor equivalence:
// replaying the obs round ring (which carries per-client detail whenever
// a monitor was attached) through a fresh monitor reproduces the live
// monitor's diagnosis exactly.
func TestHealthRingReplayMatchesLive(t *testing.T) {
	clients := testClients(t, 10)
	reg := obs.NewRegistryWithRing(16)
	live := health.NewMonitor(nil)
	cfg := hostileHealthConfig(6)
	cfg.Obs = reg
	cfg.Health = live
	runHostileHealth(t, cfg, clients)

	replay := health.NewMonitor(nil)
	for _, s := range reg.Snapshot().Rounds {
		replay.ObserveRound(s)
	}
	liveD, replayD := live.Diagnosis(), replay.Diagnosis()
	if !reflect.DeepEqual(liveD, replayD) {
		t.Errorf("ring replay drifted from live diagnosis:\nlive:   %+v\nreplay: %+v", liveD, replayD)
	}
	if len(replayD.Suspects) != 3 {
		t.Errorf("replay found suspects %v, want 3", replayD.Suspects)
	}
}
