package fl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/tensor"
)

func planeVector(rng *rand.Rand, n int) param.Vector {
	v := make(param.Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func planeUpdates(rng *rand.Rand, n, count int, withControl bool) []*Update {
	updates := make([]*Update, count)
	for k := range updates {
		u := &Update{
			ClientID:   k,
			Params:     planeVector(rng, n),
			NumSamples: 10 + k,
			TrainLoss:  rng.Float64(),
			Divergence: rng.Float64(),
		}
		if withControl {
			u.ControlDelta = planeVector(rng, n)
		}
		updates[k] = u
	}
	return updates
}

func cloneBits(v param.Vector) []uint64 {
	out := make([]uint64, len(v))
	for i, x := range v {
		out[i] = math.Float64bits(x)
	}
	return out
}

func assertBitsUnchanged(t *testing.T, name string, v param.Vector, want []uint64) {
	t.Helper()
	if len(v) != len(want) {
		t.Fatalf("%s: length changed from %d to %d", name, len(want), len(v))
	}
	for i := range v {
		if math.Float64bits(v[i]) != want[i] {
			t.Fatalf("%s: element %d mutated", name, i)
		}
	}
}

// aggregatorsUnderTest builds one of each aggregator over dimension n.
func aggregatorsUnderTest(n int) map[string]Aggregator {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = i%3 != 0
	}
	return map[string]Aggregator{
		"weighted-average":    WeightedAverage{},
		"divergence-weighted": &DivergenceWeighted{Temperature: 0.5},
		"masked-average":      &MaskedAverage{Mask: mask},
		"scaffold":            &ScaffoldAggregator{ServerLR: 0.9, NumClients: 7},
	}
}

// TestAggregatorsNeverMutateInputs pins the read-only contract: updates
// are shared with RoundStats and checkpoint paths, so an aggregator (or
// sink) that wrote through a payload would corrupt resume bit-identity
// silently. Every aggregator must leave global and all update payloads
// bit-identical, and must return a freshly allocated vector.
func TestAggregatorsNeverMutateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4*param.MinShard + 13 // large enough that sharding really engages
	tensor.SetWorkers(4)
	defer tensor.SetWorkers(0)
	global := planeVector(rng, n)
	updates := planeUpdates(rng, n, 4, true)

	globalBits := cloneBits(global)
	paramBits := make([][]uint64, len(updates))
	controlBits := make([][]uint64, len(updates))
	for k, u := range updates {
		paramBits[k] = cloneBits(u.Params)
		controlBits[k] = cloneBits(u.ControlDelta)
	}

	for name, agg := range aggregatorsUnderTest(n) {
		out, err := agg.Aggregate(global, updates)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if &out[0] == &global[0] {
			t.Fatalf("%s: returned vector aliases global", name)
		}
		sinkOut, err := func() (param.Vector, error) {
			sink := NewRoundSink(agg, global)
			for _, u := range updates {
				if err := sink.Ingest(u); err != nil {
					return nil, err
				}
			}
			return sink.Finish()
		}()
		if err != nil {
			t.Fatalf("%s sink: %v", name, err)
		}
		for i := range out {
			if math.Float64bits(out[i]) != math.Float64bits(sinkOut[i]) {
				t.Fatalf("%s: sink result differs from batch at %d", name, i)
			}
		}
		assertBitsUnchanged(t, name+" global", global, globalBits)
		for k, u := range updates {
			assertBitsUnchanged(t, name+" params", u.Params, paramBits[k])
			assertBitsUnchanged(t, name+" control", u.ControlDelta, controlBits[k])
		}
	}
}

// TestAggregatorsShardedBitIdentical pins that shard-parallel aggregation
// is bit-identical to the serial sweep for every aggregator, across pool
// sizes and at dimensions straddling the shard threshold.
func TestAggregatorsShardedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{37, param.MinShard, 3*param.MinShard + 11} {
		global := planeVector(rng, n)
		updates := planeUpdates(rng, n, 5, true)
		serial := make(map[string]param.Vector)
		tensor.SetWorkers(1)
		for name, agg := range aggregatorsUnderTest(n) {
			out, err := agg.Aggregate(global, updates)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			serial[name] = out
		}
		for _, workers := range []int{2, 5} {
			tensor.SetWorkers(workers)
			for name, agg := range aggregatorsUnderTest(n) {
				out, err := agg.Aggregate(global, updates)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
				for i := range out {
					if math.Float64bits(out[i]) != math.Float64bits(serial[name][i]) {
						t.Fatalf("%s n=%d workers=%d: element %d differs from serial", name, n, workers, i)
					}
				}
			}
		}
	}
	tensor.SetWorkers(0)
}

// TestUpdateResolve walks the ingress contract: dense pass-through, delta
// reconstruction, and every malformed payload rejected with ErrUpdateSize.
func TestUpdateResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	global := planeVector(rng, 100)
	v := global.Clone()
	for i := 0; i < len(v); i += 7 {
		v[i] += 0.25
	}
	d, err := param.Diff(global, v)
	if err != nil {
		t.Fatal(err)
	}

	u := &Update{ClientID: 3, Delta: d}
	if err := u.Resolve(global); err != nil {
		t.Fatalf("Resolve delta: %v", err)
	}
	if u.Delta != nil {
		t.Fatal("Resolve left Delta set")
	}
	for i := range v {
		if math.Float64bits(u.Params[i]) != math.Float64bits(v[i]) {
			t.Fatalf("reconstruction differs at %d", i)
		}
	}

	for name, bad := range map[string]*Update{
		"no-payload":    {ClientID: 1},
		"short-dense":   {ClientID: 1, Params: make(param.Vector, 99)},
		"long-dense":    {ClientID: 1, Params: make(param.Vector, 101)},
		"both-forms":    {ClientID: 1, Params: v.Clone(), Delta: d},
		"wrong-delta":   {ClientID: 1, Delta: &param.Delta{Len: 7, Bits: []byte{7, 0}}},
		"corrupt-delta": {ClientID: 1, Delta: &param.Delta{Len: 100, Bits: []byte{0xff}}},
		"bad-control":   {ClientID: 1, Params: v.Clone(), ControlDelta: make(param.Vector, 5)},
	} {
		if err := bad.Resolve(global); !errors.Is(err, ErrUpdateSize) {
			t.Errorf("%s: Resolve returned %v, want ErrUpdateSize", name, err)
		}
	}
}

// badSizeTrainer returns an update one element too long.
type badSizeTrainer struct{}

func (badSizeTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	return &Update{ClientID: c.ID, Params: make(param.Vector, len(global)+1), NumSamples: 1}, nil
}

type planePersonalizer struct{}

func (planePersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return 1, nil
}

func planeClients(n int) []*partition.Client {
	out := make([]*partition.Client, n)
	for i := range out {
		out[i] = &partition.Client{ID: i}
	}
	return out
}

// TestSimulatorRejectsWrongSizeUpdate pins the simulator's ingress
// validation: a trainer emitting a wrong-length vector fails the round
// with a typed ErrUpdateSize instead of an index panic mid-aggregation.
func TestSimulatorRejectsWrongSizeUpdate(t *testing.T) {
	method := &Method{
		Name:         "bad-size",
		Trainer:      badSizeTrainer{},
		Aggregator:   WeightedAverage{},
		Personalizer: planePersonalizer{},
		InitGlobal:   func(rng *rand.Rand) (param.Vector, error) { return make(param.Vector, 8), nil },
	}
	sim, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 2, Seed: 1}, method, planeClients(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sim.Run(context.Background()); !errors.Is(err, ErrUpdateSize) {
		t.Fatalf("Run returned %v, want ErrUpdateSize", err)
	}
}

// addRoundTrainer nudges every element deterministically so consecutive
// globals differ everywhere — the delta codec's hard case.
type addRoundTrainer struct{}

func (addRoundTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	out := global.Clone()
	for i := range out {
		out[i] += 1e-3 * float64(c.ID+1) * float64(i%5)
	}
	return &Update{ClientID: c.ID, Params: out, NumSamples: c.ID + 1, TrainLoss: 0.5}, nil
}

// TestDeltaUpdatesBitIdentical pins SimConfig.DeltaUpdates: routing every
// update through the XOR-delta wire representation leaves the federation
// bit-identical to the dense path.
func TestDeltaUpdatesBitIdentical(t *testing.T) {
	run := func(delta bool) param.Vector {
		method := &Method{
			Name:         "delta-knob",
			Trainer:      addRoundTrainer{},
			Aggregator:   WeightedAverage{},
			Personalizer: planePersonalizer{},
			InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
				return planeVector(rng, 512), nil
			},
		}
		sim, err := NewSimulator(SimConfig{Rounds: 4, ClientsPerRound: 3, Seed: 11, DeltaUpdates: delta}, method, planeClients(6))
		if err != nil {
			t.Fatal(err)
		}
		global, _, err := sim.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return global
	}
	dense, compressed := run(false), run(true)
	for i := range dense {
		if math.Float64bits(dense[i]) != math.Float64bits(compressed[i]) {
			t.Fatalf("element %d differs between dense and delta paths", i)
		}
	}
}
