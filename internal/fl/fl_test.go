package fl

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"calibre/internal/data"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// fakeTrainer adds +1 to every parameter and reports the client's ID as
// loss, making aggregation results easy to predict.
type fakeTrainer struct {
	calls atomic.Int64
	fail  bool
}

func (f *fakeTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	f.calls.Add(1)
	if f.fail {
		return nil, errors.New("boom")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + 1
	}
	return &Update{
		ClientID:   c.ID,
		Params:     params,
		NumSamples: c.Train.Len(),
		TrainLoss:  float64(c.ID),
	}, nil
}

type fakePersonalizer struct{}

func (fakePersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return float64(c.ID) / 100, nil
}

func testClients(t *testing.T, n int) []*partition.Client {
	t.Helper()
	g, err := data.NewGenerator(data.CIFAR10Spec(), 1)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	ds := g.GenerateLabeled(rng, 40)
	parts, err := partition.IID(rng, ds, n, 20)
	if err != nil {
		t.Fatalf("IID: %v", err)
	}
	return partition.BuildClients(rng, ds, parts, nil)
}

func fakeMethod(tr Trainer) *Method {
	return &Method{
		Name:         "fake",
		Trainer:      tr,
		Aggregator:   WeightedAverage{},
		Personalizer: fakePersonalizer{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			return make([]float64, 4), nil
		},
	}
}

func TestMethodValidate(t *testing.T) {
	m := fakeMethod(&fakeTrainer{})
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	bad := *m
	bad.Trainer = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("missing trainer should fail validation")
	}
	bad = *m
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("missing name should fail validation")
	}
}

func TestSimulatorRunsRounds(t *testing.T) {
	clients := testClients(t, 10)
	tr := &fakeTrainer{}
	sim, err := NewSimulator(SimConfig{Rounds: 5, ClientsPerRound: 4, Seed: 7}, fakeMethod(tr), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, hist, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Every round the average of (global+1) is global+1, so after 5 rounds
	// the global vector is all 5s.
	for _, v := range global {
		if v != 5 {
			t.Fatalf("global = %v, want all 5", global)
		}
	}
	if len(hist) != 5 {
		t.Fatalf("history length = %d", len(hist))
	}
	if got := tr.calls.Load(); got != 20 {
		t.Fatalf("trainer calls = %d, want 20", got)
	}
	for _, h := range hist {
		if len(h.Participants) != 4 {
			t.Fatalf("round %d participants = %v", h.Round, h.Participants)
		}
	}
}

func TestSimulatorDeterministicAcrossParallelism(t *testing.T) {
	clients := testClients(t, 8)
	run := func(par int) []float64 {
		sim, err := NewSimulator(SimConfig{Rounds: 3, ClientsPerRound: 4, Seed: 11, Parallelism: par}, fakeMethod(&fakeTrainer{}), clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		g, _, err := sim.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return g
	}
	g1 := run(1)
	g8 := run(8)
	for i := range g1 {
		if g1[i] != g8[i] {
			t.Fatal("results must not depend on parallelism")
		}
	}
}

func TestSimulatorPropagatesTrainerError(t *testing.T) {
	clients := testClients(t, 4)
	sim, err := NewSimulator(SimConfig{Rounds: 2, ClientsPerRound: 2, Seed: 3}, fakeMethod(&fakeTrainer{fail: true}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err == nil {
		t.Fatal("trainer failure must surface")
	}
}

func TestSimulatorHonorsContextCancellation(t *testing.T) {
	clients := testClients(t, 4)
	sim, err := NewSimulator(SimConfig{Rounds: 1000, ClientsPerRound: 2, Seed: 3}, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sim.Run(ctx); err == nil {
		t.Fatal("canceled context must abort the run")
	}
}

func TestSimulatorValidation(t *testing.T) {
	clients := testClients(t, 4)
	m := fakeMethod(&fakeTrainer{})
	if _, err := NewSimulator(SimConfig{Rounds: 0, ClientsPerRound: 2}, m, clients); err == nil {
		t.Fatal("rounds=0 should error")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 0}, m, clients); err == nil {
		t.Fatal("clientsPerRound=0 should error")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1}, m, nil); err == nil {
		t.Fatal("no clients should error")
	}
}

func TestOnRoundCallback(t *testing.T) {
	clients := testClients(t, 5)
	var rounds []int
	cfg := SimConfig{Rounds: 3, ClientsPerRound: 2, Seed: 5, OnRound: func(s RoundStats) {
		rounds = append(rounds, s.Round)
	}}
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Fatalf("OnRound rounds = %v", rounds)
	}
}

func TestUniformSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := UniformSampler{}
	got := s.Sample(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("sample size = %d", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if id < 0 || id >= 10 || seen[id] {
			t.Fatalf("bad sample %v", got)
		}
		seen[id] = true
	}
	// perRound ≥ population returns everyone.
	all := s.Sample(rng, 3, 5)
	if len(all) != 3 {
		t.Fatalf("oversample = %v", all)
	}
}

func TestWeightedAverage(t *testing.T) {
	global := []float64{0, 0}
	updates := []*Update{
		{ClientID: 0, Params: []float64{1, 2}, NumSamples: 1},
		{ClientID: 1, Params: []float64{3, 4}, NumSamples: 3},
	}
	out, err := WeightedAverage{}.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if math.Abs(out[0]-2.5) > 1e-12 || math.Abs(out[1]-3.5) > 1e-12 {
		t.Fatalf("weighted avg = %v", out)
	}
	if _, err := (WeightedAverage{}).Aggregate(global, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatalf("empty updates err = %v", err)
	}
	if _, err := (WeightedAverage{}).Aggregate(global, []*Update{{Params: []float64{1}}}); err == nil {
		t.Fatal("length mismatch should error")
	}
	// Zero samples fall back to weight 1.
	out, err = WeightedAverage{}.Aggregate(global, []*Update{{Params: []float64{2, 2}, NumSamples: 0}})
	if err != nil || out[0] != 2 {
		t.Fatalf("zero-sample fallback = %v, %v", out, err)
	}
}

func TestDivergenceWeightedFavorsLowDivergence(t *testing.T) {
	global := []float64{0}
	updates := []*Update{
		{ClientID: 0, Params: []float64{0}, NumSamples: 10, Divergence: 0.1},
		{ClientID: 1, Params: []float64{1}, NumSamples: 10, Divergence: 2.0},
	}
	agg := &DivergenceWeighted{}
	out, err := agg.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// Client 1 (high divergence, params=1) must be down-weighted: result
	// strictly below the plain average of 0.5.
	if out[0] >= 0.5 {
		t.Fatalf("divergence weighting ineffective: %v", out[0])
	}
	if out[0] <= 0 {
		t.Fatalf("high-divergence client must still contribute: %v", out[0])
	}
	if _, err := agg.Aggregate(global, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatal("empty updates should error")
	}
}

func TestDivergenceWeightedEqualDivergencesMatchFedAvg(t *testing.T) {
	global := []float64{0, 0}
	updates := []*Update{
		{ClientID: 0, Params: []float64{1, 0}, NumSamples: 2, Divergence: 1},
		{ClientID: 1, Params: []float64{3, 2}, NumSamples: 2, Divergence: 1},
	}
	agg := &DivergenceWeighted{}
	got, err := agg.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	want, err := WeightedAverage{}.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("equal divergences should reduce to FedAvg: %v vs %v", got, want)
		}
	}
}

func TestMaskedAverage(t *testing.T) {
	global := []float64{10, 20, 30}
	updates := []*Update{
		{ClientID: 0, Params: []float64{1, 2, 3}, NumSamples: 1},
		{ClientID: 1, Params: []float64{3, 4, 5}, NumSamples: 1},
	}
	agg := &MaskedAverage{Mask: []bool{true, false, true}}
	out, err := agg.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if out[0] != 2 || out[1] != 20 || out[2] != 4 {
		t.Fatalf("masked avg = %v", out)
	}
	bad := &MaskedAverage{Mask: []bool{true}}
	if _, err := bad.Aggregate(global, updates); err == nil {
		t.Fatal("mask length mismatch should error")
	}
}

func TestScaffoldAggregator(t *testing.T) {
	global := []float64{1, 1}
	agg := &ScaffoldAggregator{ServerLR: 1, NumClients: 4}
	updates := []*Update{
		{ClientID: 0, Params: []float64{2, 2}, NumSamples: 1, ControlDelta: []float64{0.4, 0}},
		{ClientID: 1, Params: []float64{0, 4}, NumSamples: 1, ControlDelta: []float64{0, 0.8}},
	}
	out, err := agg.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	// Mean delta = ((1,1)+(-1,3))/2 = (0,2).
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("scaffold global = %v", out)
	}
	ctl := agg.Control(2)
	if math.Abs(ctl[0]-0.1) > 1e-12 || math.Abs(ctl[1]-0.2) > 1e-12 {
		t.Fatalf("server control = %v", ctl)
	}
	if _, err := agg.Aggregate(global, nil); !errors.Is(err, ErrNoUpdates) {
		t.Fatal("empty updates should error")
	}
	badUpdates := []*Update{{Params: []float64{1, 1}, ControlDelta: []float64{1}}}
	if _, err := agg.Aggregate(global, badUpdates); err == nil {
		t.Fatal("control delta length mismatch should error")
	}
}

func TestPersonalizeAll(t *testing.T) {
	clients := testClients(t, 6)
	m := fakeMethod(&fakeTrainer{})
	accs, err := PersonalizeAll(context.Background(), 1, m, clients, []float64{0}, 3)
	if err != nil {
		t.Fatalf("PersonalizeAll: %v", err)
	}
	if len(accs) != 6 {
		t.Fatalf("accs = %v", accs)
	}
	for i, a := range accs {
		if a != float64(i)/100 {
			t.Fatalf("acc[%d] = %v", i, a)
		}
	}
}

func TestClientRNGDeterminism(t *testing.T) {
	a := clientRNG(1, 2, 3).Float64()
	b := clientRNG(1, 2, 3).Float64()
	if a != b {
		t.Fatal("clientRNG must be deterministic")
	}
	c := clientRNG(1, 2, 4).Float64()
	if a == c {
		t.Fatal("different clients should get different streams")
	}
}

// Property: WeightedAverage output stays within the per-coordinate range of
// its inputs (convexity).
func TestWeightedAverageConvexityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(5)
		n := 1 + rng.Intn(5)
		updates := make([]*Update, n)
		for i := range updates {
			p := make([]float64, dim)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			updates[i] = &Update{Params: p, NumSamples: 1 + rng.Intn(50)}
		}
		out, err := WeightedAverage{}.Aggregate(make([]float64, dim), updates)
		if err != nil {
			return false
		}
		for j := 0; j < dim; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range updates {
				lo = math.Min(lo, u.Params[j])
				hi = math.Max(hi, u.Params[j])
			}
			if out[j] < lo-1e-9 || out[j] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// panicTrainer panics on a chosen client to exercise panic isolation.
type panicTrainer struct {
	inner   fakeTrainer
	panicOn int
}

func (p *panicTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*Update, error) {
	if c.ID == p.panicOn {
		panic("trainer exploded")
	}
	return p.inner.Train(ctx, rng, c, global, round)
}

// TestClientPanicBecomesTypedError pins the sweep scheduler's foundation:
// a panicking trainer inside a client goroutine surfaces as *PanicError
// from Run instead of crashing the process.
func TestClientPanicBecomesTypedError(t *testing.T) {
	clients := testClients(t, 4)
	m := fakeMethod(&panicTrainer{panicOn: clients[1].ID})
	sim, err := NewSimulator(SimConfig{Rounds: 2, ClientsPerRound: 4, Seed: 1}, m, clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	_, _, err = sim.Run(context.Background())
	if err == nil {
		t.Fatal("panicking trainer did not fail the run")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *PanicError: %v", err)
	}
	if pe.Value != "trainer exploded" || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack not captured: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
}
