package fl

import (
	"fmt"
	"math"
)

// WeightedAverage is FedAvg aggregation: the new global vector is the
// sample-count-weighted mean of client vectors.
type WeightedAverage struct{}

var _ Aggregator = WeightedAverage{}

// Aggregate implements Aggregator.
func (WeightedAverage) Aggregate(global []float64, updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	out := make([]float64, len(global))
	var total float64
	for _, u := range updates {
		if len(u.Params) != len(global) {
			return nil, fmt.Errorf("fl: update from client %d has %d params, want %d", u.ClientID, len(u.Params), len(global))
		}
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1
		}
		total += w
		for i, v := range u.Params {
			out[i] += w * v
		}
	}
	inv := 1 / total
	for i := range out {
		out[i] *= inv
	}
	return out, nil
}

// DivergenceWeighted is Calibre's aggregation rule: each client's weight is
// softmax(-divergence/T) scaled by its sample count, so clients whose
// representations sit close to their prototypes (low local divergence rate)
// contribute more (paper §IV-B).
type DivergenceWeighted struct {
	// Temperature controls how sharply low-divergence clients are favored.
	// Zero means the default of 1.
	Temperature float64
}

var _ Aggregator = (*DivergenceWeighted)(nil)

// Aggregate implements Aggregator.
func (d *DivergenceWeighted) Aggregate(global []float64, updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	temp := d.Temperature
	if temp <= 0 {
		temp = 1
	}
	// Normalize divergences to a comparable scale before the softmax so the
	// weighting is invariant to the representation's absolute magnitude.
	var mean float64
	for _, u := range updates {
		mean += u.Divergence
	}
	mean /= float64(len(updates))
	if mean <= 0 {
		mean = 1
	}
	weights := make([]float64, len(updates))
	var wsum float64
	for i, u := range updates {
		w := math.Exp(-u.Divergence / mean / temp)
		n := float64(u.NumSamples)
		if n <= 0 {
			n = 1
		}
		weights[i] = w * n
		wsum += weights[i]
	}
	out := make([]float64, len(global))
	for i, u := range updates {
		if len(u.Params) != len(global) {
			return nil, fmt.Errorf("fl: update from client %d has %d params, want %d", u.ClientID, len(u.Params), len(global))
		}
		w := weights[i] / wsum
		for j, v := range u.Params {
			out[j] += w * v
		}
	}
	return out, nil
}

// MaskedAverage averages only the vector positions where mask is true,
// keeping the existing global values elsewhere. It expresses
// partial-exchange methods: LG-FedAvg (aggregate head only), FedPer/FedRep/
// FedBABU (aggregate encoder only).
type MaskedAverage struct {
	Mask []bool
}

var _ Aggregator = (*MaskedAverage)(nil)

// Aggregate implements Aggregator.
func (m *MaskedAverage) Aggregate(global []float64, updates []*Update) ([]float64, error) {
	if len(m.Mask) != len(global) {
		return nil, fmt.Errorf("fl: mask length %d, global %d", len(m.Mask), len(global))
	}
	avg, err := WeightedAverage{}.Aggregate(global, updates)
	if err != nil {
		return nil, err
	}
	out := append([]float64(nil), global...)
	for i, use := range m.Mask {
		if use {
			out[i] = avg[i]
		}
	}
	return out, nil
}

// ScaffoldAggregator implements the server side of SCAFFOLD (Karimireddy et
// al., ICML 2020): the global model moves by the average client delta with
// a server learning rate, and the server control variate accumulates the
// average client control delta.
type ScaffoldAggregator struct {
	ServerLR   float64
	NumClients int // total client population C (control update is scaled by m/C)

	control []float64 // server control variate c
}

var (
	_ Aggregator = (*ScaffoldAggregator)(nil)
	_ Stateful   = (*ScaffoldAggregator)(nil)
)

// CarriesRoundState implements Stateful: the server control variate
// accumulates across rounds outside the global vector, so a SimState
// checkpoint cannot restore it and resume is refused.
func (s *ScaffoldAggregator) CarriesRoundState() bool { return true }

// Control returns the server control variate (allocated on first use).
func (s *ScaffoldAggregator) Control(dim int) []float64 {
	if s.control == nil {
		s.control = make([]float64, dim)
	}
	return s.control
}

// Aggregate implements Aggregator.
func (s *ScaffoldAggregator) Aggregate(global []float64, updates []*Update) ([]float64, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	lr := s.ServerLR
	if lr <= 0 {
		lr = 1
	}
	out := append([]float64(nil), global...)
	inv := 1 / float64(len(updates))
	for _, u := range updates {
		if len(u.Params) != len(global) {
			return nil, fmt.Errorf("fl: update from client %d has %d params, want %d", u.ClientID, len(u.Params), len(global))
		}
		for i := range out {
			out[i] += lr * inv * (u.Params[i] - global[i])
		}
	}
	ctl := s.Control(len(global))
	frac := inv
	if s.NumClients > 0 {
		frac = 1 / float64(s.NumClients)
	}
	for _, u := range updates {
		if u.ControlDelta == nil {
			continue
		}
		if len(u.ControlDelta) != len(global) {
			return nil, fmt.Errorf("fl: control delta from client %d has %d entries, want %d", u.ClientID, len(u.ControlDelta), len(global))
		}
		for i := range ctl {
			ctl[i] += frac * u.ControlDelta[i]
		}
	}
	return out, nil
}
