package fl

import (
	"fmt"
	"math"

	"calibre/internal/param"
)

// The aggregators below all reduce over shard ranges dispatched on the
// shared tensor kernel pool (param.Shard). Sharding is by element range,
// never by update: within each range the updates are folded in canonical
// order, so every output element sees the identical float operations in
// the identical order as a serial sweep — sharded aggregation is
// bit-identical to the historical serial implementations for any pool
// size. None of them mutate global or the update payloads they are
// handed; the returned vector is always freshly allocated.

// checkUpdateSizes validates every payload length up front (wrapping
// ErrUpdateSize) so the sharded loops below can index without bounds
// surprises even when a caller skips the runtimes' ingress Resolve.
func checkUpdateSizes(global param.Vector, updates []*Update) error {
	for _, u := range updates {
		if len(u.Params) != len(global) {
			return fmt.Errorf("%w: update from client %d has %d params, want %d", ErrUpdateSize, u.ClientID, len(u.Params), len(global))
		}
	}
	return nil
}

// WeightedAverage is FedAvg aggregation: the new global vector is the
// sample-count-weighted mean of client vectors.
type WeightedAverage struct{}

var _ Aggregator = WeightedAverage{}

// Aggregate implements Aggregator.
func (WeightedAverage) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	weights := make([]float64, len(updates))
	var total float64
	for i, u := range updates {
		w := float64(u.NumSamples)
		if w <= 0 {
			w = 1
		}
		weights[i] = w
		total += w
	}
	inv := 1 / total
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		for k, u := range updates {
			w, p := weights[k], u.Params
			for i := lo; i < hi; i++ {
				out[i] += w * p[i]
			}
		}
		for i := lo; i < hi; i++ {
			out[i] *= inv
		}
	})
	return out, nil
}

// DivergenceWeighted is Calibre's aggregation rule: each client's weight is
// softmax(-divergence/T) scaled by its sample count, so clients whose
// representations sit close to their prototypes (low local divergence rate)
// contribute more (paper §IV-B).
type DivergenceWeighted struct {
	// Temperature controls how sharply low-divergence clients are favored.
	// Zero means the default of 1.
	Temperature float64
}

var _ Aggregator = (*DivergenceWeighted)(nil)

// Aggregate implements Aggregator.
func (d *DivergenceWeighted) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	temp := d.Temperature
	if temp <= 0 {
		temp = 1
	}
	// Normalize divergences to a comparable scale before the softmax so the
	// weighting is invariant to the representation's absolute magnitude.
	var mean float64
	for _, u := range updates {
		mean += u.Divergence
	}
	mean /= float64(len(updates))
	if mean <= 0 {
		mean = 1
	}
	weights := make([]float64, len(updates))
	var wsum float64
	for i, u := range updates {
		w := math.Exp(-u.Divergence / mean / temp)
		n := float64(u.NumSamples)
		if n <= 0 {
			n = 1
		}
		weights[i] = w * n
		wsum += weights[i]
	}
	for i := range weights {
		weights[i] /= wsum
	}
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		for k, u := range updates {
			w, p := weights[k], u.Params
			for j := lo; j < hi; j++ {
				out[j] += w * p[j]
			}
		}
	})
	return out, nil
}

// MaskedAverage averages only the vector positions where mask is true,
// keeping the existing global values elsewhere. It expresses
// partial-exchange methods: LG-FedAvg (aggregate head only), FedPer/FedRep/
// FedBABU (aggregate encoder only).
type MaskedAverage struct {
	Mask []bool
}

var _ Aggregator = (*MaskedAverage)(nil)

// Aggregate implements Aggregator.
func (m *MaskedAverage) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(m.Mask) != len(global) {
		return nil, fmt.Errorf("fl: mask length %d, global %d", len(m.Mask), len(global))
	}
	avg, err := WeightedAverage{}.Aggregate(global, updates)
	if err != nil {
		return nil, err
	}
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if m.Mask[i] {
				out[i] = avg[i]
			} else {
				out[i] = global[i]
			}
		}
	})
	return out, nil
}

// ScaffoldAggregator implements the server side of SCAFFOLD (Karimireddy et
// al., ICML 2020): the global model moves by the average client delta with
// a server learning rate, and the server control variate accumulates the
// average client control delta.
type ScaffoldAggregator struct {
	ServerLR   float64
	NumClients int // total client population C (control update is scaled by m/C)

	control param.Vector // server control variate c
}

var (
	_ Aggregator = (*ScaffoldAggregator)(nil)
	_ Stateful   = (*ScaffoldAggregator)(nil)
)

// CarriesRoundState implements Stateful: the server control variate
// accumulates across rounds outside the global vector, so a SimState
// checkpoint cannot restore it and resume is refused.
func (s *ScaffoldAggregator) CarriesRoundState() bool { return true }

// Control returns the server control variate (allocated on first use).
func (s *ScaffoldAggregator) Control(dim int) param.Vector {
	if s.control == nil {
		s.control = make(param.Vector, dim)
	}
	return s.control
}

// Aggregate implements Aggregator.
func (s *ScaffoldAggregator) Aggregate(global param.Vector, updates []*Update) (param.Vector, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	if err := checkUpdateSizes(global, updates); err != nil {
		return nil, err
	}
	for _, u := range updates {
		if u.ControlDelta != nil && len(u.ControlDelta) != len(global) {
			return nil, fmt.Errorf("%w: control delta from client %d has %d entries, want %d", ErrUpdateSize, u.ClientID, len(u.ControlDelta), len(global))
		}
	}
	lr := s.ServerLR
	if lr <= 0 {
		lr = 1
	}
	inv := 1 / float64(len(updates))
	ctl := s.Control(len(global))
	frac := inv
	if s.NumClients > 0 {
		frac = 1 / float64(s.NumClients)
	}
	out := make(param.Vector, len(global))
	param.Shard(len(global), func(lo, hi int) {
		copy(out[lo:hi], global[lo:hi])
		for _, u := range updates {
			p := u.Params
			for i := lo; i < hi; i++ {
				out[i] += lr * inv * (p[i] - global[i])
			}
		}
		for _, u := range updates {
			if u.ControlDelta == nil {
				continue
			}
			cd := u.ControlDelta
			for i := lo; i < hi; i++ {
				ctl[i] += frac * cd[i]
			}
		}
	})
	return out, nil
}
