package fl

import (
	"errors"
	"fmt"

	"calibre/internal/param"
)

// SimState is a federation's complete server-side state at a round
// boundary: everything the round loop needs to continue exactly as if the
// process had never stopped. Both runtimes — the in-process Simulator and
// the flnet TCP server — emit it through their OnCheckpoint hooks and
// accept it back through their ResumeFrom knobs; internal/store persists
// it durably with the versioned binary codec.
//
// The master RNG is deliberately not part of the state. Both runtimes
// consume it only for client sampling and dropout draws, so the resume
// path restores it exactly by replaying those draws: the simulator re-runs
// its deterministic sampling loop, and the networked server — whose
// sampling-pool size depends on real-world join timing — replays against
// the recorded EligibleCounts. Client-side training state is deliberately
// not snapshotted: resume is only offered for methods whose local updates
// are pure functions of (seed, round, client, global), which is what makes
// a resumed federation bit-identical to an uninterrupted one. Methods that
// accumulate cross-round state beyond the global vector declare it via
// Stateful, and the resume paths refuse them (ErrStatefulResume).
type SimState struct {
	// Round is the number of completed rounds; the resumed loop starts
	// here.
	Round int
	// Global is the aggregated global parameter vector after Round rounds.
	Global param.Vector
	// History holds the RoundStats of every completed round, in order.
	History []RoundStats
	// EligibleCounts[r] is the size of the sampling pool when round r was
	// drawn. The simulator re-derives the pool during replay and uses the
	// recorded counts as an integrity cross-check; the networked server
	// replays Sample with them directly.
	EligibleCounts []int
}

// Clone returns a deep copy, so a checkpoint sink can retain the state
// after the round loop moves on.
func (st *SimState) Clone() *SimState {
	if st == nil {
		return nil
	}
	c := &SimState{Round: st.Round}
	c.Global = st.Global.Clone()
	c.History = append([]RoundStats(nil), st.History...)
	for i, h := range c.History {
		c.History[i].Participants = append([]int(nil), h.Participants...)
		if h.Responders != nil {
			c.History[i].Responders = append([]int(nil), h.Responders...)
		}
		if h.Stragglers != nil {
			c.History[i].Stragglers = append([]int(nil), h.Stragglers...)
		}
	}
	c.EligibleCounts = append([]int(nil), st.EligibleCounts...)
	return c
}

// Validate checks the state's internal consistency against a round budget
// (rounds ≤ 0 skips the budget check, for callers that extend the run).
func (st *SimState) Validate(rounds int) error {
	switch {
	case st.Round < 0:
		return fmt.Errorf("fl: checkpoint state has negative round %d", st.Round)
	case rounds > 0 && st.Round > rounds:
		return fmt.Errorf("fl: checkpoint at round %d exceeds the %d-round budget", st.Round, rounds)
	case len(st.Global) == 0:
		return fmt.Errorf("fl: checkpoint state has an empty global vector")
	case len(st.History) != st.Round:
		return fmt.Errorf("fl: checkpoint history has %d rounds, want %d", len(st.History), st.Round)
	case len(st.EligibleCounts) != st.Round:
		return fmt.Errorf("fl: checkpoint has %d eligible counts, want %d", len(st.EligibleCounts), st.Round)
	}
	for r, n := range st.EligibleCounts {
		if n < 1 {
			return fmt.Errorf("fl: checkpoint eligible count for round %d is %d, want ≥1", r, n)
		}
	}
	return nil
}

// Stateful is an optional capability interface for Trainers, Aggregators
// and Personalizers. Implementations whose behavior depends on in-memory
// state accumulated across rounds beyond the global vector — per-client
// models merged with the global rather than overwritten (FedEMA), a
// privately kept parameter half (FedPer/FedRep/FedBABU/LG-FedAvg),
// control variates (SCAFFOLD), or personal vectors read back at
// personalization time (APFL, Ditto) — declare it by returning true.
// SimState does not capture such state, so a cold-started process cannot
// reconstruct it: a resumed run would silently diverge from the
// uninterrupted one, with no fingerprint able to detect it. Resume paths
// therefore refuse these methods with ErrStatefulResume.
type Stateful interface {
	CarriesRoundState() bool
}

// ErrStatefulResume marks an attempt to resume a method that carries
// cross-round state a SimState checkpoint does not capture.
var ErrStatefulResume = errors.New("fl: method carries cross-round state not captured by checkpoints; resume would diverge")

// Resumable reports whether a method can be resumed bit-identically from
// a SimState snapshot: true unless its trainer, aggregator or
// personalizer declares cross-round state via Stateful.
func Resumable(m *Method) bool {
	for _, c := range []any{m.Trainer, m.Aggregator, m.Personalizer} {
		if s, ok := c.(Stateful); ok && s.CarriesRoundState() {
			return false
		}
	}
	return true
}

// CheckpointDue reports whether a checkpoint should be taken after
// `completed` rounds under stride `every` (≤0 means every round) of a
// `total`-round federation. The final round always checkpoints, so a
// completed run leaves its terminal state on disk.
func CheckpointDue(completed, every, total int) bool {
	if every <= 0 {
		every = 1
	}
	return completed%every == 0 || completed == total
}
