package fl

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// runToCompletion runs a fresh simulator over the fake method and returns
// its outcome, failing the test on error.
func runToCompletion(t *testing.T, cfg SimConfig) ([]float64, []RoundStats) {
	t.Helper()
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), testClients(t, 6))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, history, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return global, history
}

// stressedConfig exercises every RNG-consuming path the resume replay has
// to reproduce: dropout draws, quorum refills and StragglerDrop evictions.
func stressedConfig(rounds int) SimConfig {
	return SimConfig{
		Rounds:          rounds,
		ClientsPerRound: 4,
		Seed:            99,
		DropoutRate:     0.45,
		Quorum:          2,
		Straggler:       StragglerDrop,
	}
}

// TestCheckpointCadence pins the stride contract: with CheckpointEvery=2
// over 5 rounds, states are emitted after rounds 2, 4 and (final) 5.
func TestCheckpointCadence(t *testing.T) {
	var rounds []int
	cfg := SimConfig{
		Rounds: 5, ClientsPerRound: 2, Seed: 1,
		CheckpointEvery: 2,
		OnCheckpoint: func(st *SimState) error {
			rounds = append(rounds, st.Round)
			if err := st.Validate(5); err != nil {
				t.Errorf("checkpoint state invalid: %v", err)
			}
			return nil
		},
	}
	runToCompletion(t, cfg)
	if want := []int{2, 4, 5}; !reflect.DeepEqual(rounds, want) {
		t.Fatalf("checkpoint rounds = %v, want %v", rounds, want)
	}
}

// TestCheckpointStateIsDeepCopy: mutating a delivered state must not
// perturb the simulation that keeps running.
func TestCheckpointStateIsDeepCopy(t *testing.T) {
	cfg := SimConfig{Rounds: 3, ClientsPerRound: 2, Seed: 5}
	ref, _ := runToCompletion(t, cfg)

	cfg.OnCheckpoint = func(st *SimState) error {
		for i := range st.Global {
			st.Global[i] = math.Inf(1)
		}
		for i := range st.History {
			st.History[i].Participants = nil
		}
		return nil
	}
	got, history := runToCompletion(t, cfg)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("mutating checkpoint state leaked into the run: %v vs %v", got, ref)
	}
	for _, h := range history {
		if h.Participants == nil {
			t.Fatal("mutating checkpoint history leaked into the run")
		}
	}
}

// TestResumeBitIdenticalToUninterrupted is the determinism gate for the
// simulator: checkpoint at round k, build a brand-new simulator resuming
// from that state, and the final global vector and history must be
// bit-identical to a run that never stopped — under a config that stresses
// dropout, quorum refill and population eviction.
func TestResumeBitIdenticalToUninterrupted(t *testing.T) {
	const total, cut = 7, 3
	refGlobal, refHistory := runToCompletion(t, stressedConfig(total))

	// Phase 1: run only `cut` rounds, capturing the terminal checkpoint.
	var at *SimState
	cfgA := stressedConfig(cut)
	cfgA.OnCheckpoint = func(st *SimState) error { at = st; return nil }
	runToCompletion(t, cfgA)
	if at == nil || at.Round != cut {
		t.Fatalf("no terminal checkpoint at round %d: %+v", cut, at)
	}

	// Phase 2: a fresh process resumes from the snapshot and finishes.
	cfgB := stressedConfig(total)
	cfgB.ResumeFrom = at
	gotGlobal, gotHistory := runToCompletion(t, cfgB)

	if len(gotGlobal) != len(refGlobal) {
		t.Fatalf("global length %d vs %d", len(gotGlobal), len(refGlobal))
	}
	for i := range gotGlobal {
		if math.Float64bits(gotGlobal[i]) != math.Float64bits(refGlobal[i]) {
			t.Fatalf("global[%d] differs after resume: %x vs %x", i, gotGlobal[i], refGlobal[i])
		}
	}
	if !reflect.DeepEqual(gotHistory, refHistory) {
		t.Fatalf("history differs after resume:\n%+v\nvs\n%+v", gotHistory, refHistory)
	}
}

// TestResumeValidation covers the typed rejections of malformed or
// mismatched resume states.
func TestResumeValidation(t *testing.T) {
	good := func() *SimState {
		return &SimState{
			Round:          1,
			Global:         []float64{0, 0, 0, 0},
			History:        []RoundStats{{Round: 0, Participants: []int{0, 1}}},
			EligibleCounts: []int{6},
		}
	}
	base := SimConfig{Rounds: 3, ClientsPerRound: 2, Seed: 1}
	for name, mutate := range map[string]func(*SimState){
		"round beyond budget":     func(st *SimState) { st.Round = 9 },
		"negative round":          func(st *SimState) { st.Round = -1 },
		"empty global":            func(st *SimState) { st.Global = nil },
		"history length mismatch": func(st *SimState) { st.History = nil },
		"counts length mismatch":  func(st *SimState) { st.EligibleCounts = nil },
		"non-positive pool":       func(st *SimState) { st.EligibleCounts = []int{0} },
	} {
		st := good()
		mutate(st)
		cfg := base
		cfg.ResumeFrom = st
		if _, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), testClients(t, 6)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Dimension and pool-size mismatches surface at Run time.
	st := good()
	st.Global = []float64{1} // method initializes 4 params
	cfg := base
	cfg.ResumeFrom = st
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), testClients(t, 6))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err == nil {
		t.Fatal("param dimension mismatch accepted")
	}
	st = good()
	st.EligibleCounts = []int{3} // population is 6
	cfg.ResumeFrom = st
	sim, err = NewSimulator(cfg, fakeMethod(&fakeTrainer{}), testClients(t, 6))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err == nil {
		t.Fatal("pool-size drift accepted")
	}
}

// TestCheckpointErrorAborts: a failing sink must abort the run, not be
// silently ignored.
func TestCheckpointErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	cfg := SimConfig{
		Rounds: 3, ClientsPerRound: 2, Seed: 1,
		OnCheckpoint: func(*SimState) error { return boom },
	}
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), testClients(t, 6))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
}

// TestCheckpointDue pins the stride helper.
func TestCheckpointDue(t *testing.T) {
	cases := []struct {
		completed, every, total int
		want                    bool
	}{
		{1, 0, 5, true}, // every ≤0 means every round
		{1, 2, 5, false},
		{2, 2, 5, true},
		{5, 2, 5, true}, // final round always due
		{5, 3, 5, true},
		{4, 3, 5, false},
	}
	for _, c := range cases {
		if got := CheckpointDue(c.completed, c.every, c.total); got != c.want {
			t.Errorf("CheckpointDue(%d,%d,%d) = %v, want %v", c.completed, c.every, c.total, got, c.want)
		}
	}
}

// statefulTrainer is a fakeTrainer that additionally declares (or
// explicitly disclaims) cross-round state via the Stateful interface.
type statefulTrainer struct {
	fakeTrainer
	carries bool
}

func (s *statefulTrainer) CarriesRoundState() bool { return s.carries }

// TestResumeRefusesStatefulMethods: a method whose trainer or aggregator
// declares cross-round state must be refused at ResumeFrom with the typed
// ErrStatefulResume — a cold process cannot reconstruct that state, so
// resuming would silently diverge. Checkpointing without resume stays
// allowed (snapshots remain inspectable and exportable).
func TestResumeRefusesStatefulMethods(t *testing.T) {
	resumeState := func() *SimState {
		return &SimState{
			Round:          1,
			Global:         []float64{0, 0, 0, 0},
			History:        []RoundStats{{Round: 0, Participants: []int{0, 1}}},
			EligibleCounts: []int{6},
		}
	}
	cfg := SimConfig{Rounds: 3, ClientsPerRound: 2, Seed: 1, ResumeFrom: resumeState()}

	if _, err := NewSimulator(cfg, fakeMethod(&statefulTrainer{carries: true}), testClients(t, 6)); !errors.Is(err, ErrStatefulResume) {
		t.Fatalf("stateful trainer: err = %v, want ErrStatefulResume", err)
	}
	// Implementing Stateful with false is an explicit stateless declaration.
	if _, err := NewSimulator(cfg, fakeMethod(&statefulTrainer{carries: false}), testClients(t, 6)); err != nil {
		t.Fatalf("stateless-declaring trainer refused: %v", err)
	}
	// Aggregator-side state: SCAFFOLD's server control variate.
	m := fakeMethod(&fakeTrainer{})
	m.Aggregator = &ScaffoldAggregator{ServerLR: 1}
	if _, err := NewSimulator(cfg, m, testClients(t, 6)); !errors.Is(err, ErrStatefulResume) {
		t.Fatalf("stateful aggregator: err = %v, want ErrStatefulResume", err)
	}
	if Resumable(m) {
		t.Fatal("Resumable reported true for a scaffold-aggregated method")
	}

	cfg.ResumeFrom = nil
	cfg.OnCheckpoint = func(*SimState) error { return nil }
	if _, err := NewSimulator(cfg, fakeMethod(&statefulTrainer{carries: true}), testClients(t, 6)); err != nil {
		t.Fatalf("checkpointing a stateful method (no resume) refused: %v", err)
	}
}
