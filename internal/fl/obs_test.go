package fl

import (
	"context"
	"reflect"
	"testing"

	"calibre/internal/obs"
	"calibre/internal/param"
)

// TestObsRegistryDoesNotPerturbRun pins the bit-identity contract of the
// metrics plane: a simulation with a live obs.Registry attached must
// produce exactly the same global model and RoundStats history as one
// without. The config deliberately exercises every instrumented path —
// delta wire accounting, dropout/quorum straggler bookkeeping — so any
// instrumentation that leaks into an RNG draw or a result shows up here.
func TestObsRegistryDoesNotPerturbRun(t *testing.T) {
	clients := testClients(t, 8)
	runOnce := func(reg *obs.Registry) (param.Vector, []RoundStats) {
		t.Helper()
		cfg := SimConfig{
			Rounds: 4, ClientsPerRound: 3, Seed: 99,
			DeltaUpdates: true, DropoutRate: 0.3, Quorum: 1,
			Obs: reg,
		}
		sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		global, history, err := sim.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return global, history
	}

	plainGlobal, plainHistory := runOnce(nil)
	reg := obs.NewRegistry()
	obsGlobal, obsHistory := runOnce(reg)

	if !reflect.DeepEqual(plainGlobal, obsGlobal) {
		t.Errorf("global model drifted under instrumentation:\nwithout: %v\nwith:    %v", plainGlobal, obsGlobal)
	}
	if !reflect.DeepEqual(plainHistory, obsHistory) {
		t.Errorf("RoundStats history drifted under instrumentation:\nwithout: %+v\nwith:    %+v", plainHistory, obsHistory)
	}

	// And the registry actually observed the run.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.CounterRounds]; got != 4 {
		t.Errorf("rounds_total = %d, want 4", got)
	}
	wire := snap.Counters[obs.CounterUplinkWireBytes]
	dense := snap.Counters[obs.CounterUplinkDenseBytes]
	if wire <= 0 || dense <= 0 || wire > dense {
		t.Errorf("uplink accounting wrong: wire=%d dense=%d (want 0 < wire ≤ dense)", wire, dense)
	}
	if len(snap.Rounds) != 4 {
		t.Errorf("round ring holds %d samples, want 4", len(snap.Rounds))
	}
	if len(snap.Participation) == 0 {
		t.Error("participation table empty")
	}
	for _, rs := range snap.Rounds {
		if rs.Runtime != "sim" || rs.Responders < 1 || rs.Responders > rs.Participants {
			t.Errorf("implausible round sample: %+v", rs)
		}
	}
}
