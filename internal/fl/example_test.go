package fl_test

import (
	"context"
	"fmt"
	"math/rand"

	"calibre/internal/data"
	"calibre/internal/fl"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// addOneTrainer is a minimal Trainer: each client returns global+1, so
// after R rounds of weighted averaging every coordinate equals R exactly —
// handy for demonstrating the deterministic round loop.
type addOneTrainer struct{}

func (addOneTrainer) Train(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	params := make([]float64, len(global))
	for i, v := range global {
		params[i] = v + 1
	}
	return &fl.Update{ClientID: c.ID, Params: params, NumSamples: c.Train.Len()}, nil
}

type constPersonalizer struct{}

func (constPersonalizer) Personalize(ctx context.Context, rng *rand.Rand, c *partition.Client, global param.Vector) (float64, error) {
	return 0.5, nil
}

// ExampleNewSimulator wires a Method (trainer + aggregator + personalizer)
// into the in-process federated simulator and runs three rounds over four
// synthetic clients. The same Method, unmodified, can be served over TCP by
// internal/flnet.
func ExampleNewSimulator() {
	gen, err := data.NewGenerator(data.CIFAR10Spec(), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(2))
	ds := gen.GenerateLabeled(rng, 40)
	parts, err := partition.IID(rng, ds, 4, 20)
	if err != nil {
		fmt.Println(err)
		return
	}
	clients := partition.BuildClients(rng, ds, parts, nil)

	method := &fl.Method{
		Name:         "example",
		Trainer:      addOneTrainer{},
		Aggregator:   fl.WeightedAverage{},
		Personalizer: constPersonalizer{},
		InitGlobal: func(rng *rand.Rand) (param.Vector, error) {
			return make([]float64, 2), nil
		},
	}
	sim, err := fl.NewSimulator(fl.SimConfig{
		Rounds:          3,
		ClientsPerRound: 2,
		Seed:            42,
	}, method, clients)
	if err != nil {
		fmt.Println(err)
		return
	}
	global, history, err := sim.Run(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("rounds completed: %d\n", len(history))
	fmt.Printf("global after 3 add-one rounds: %v\n", global)
	// Output:
	// rounds completed: 3
	// global after 3 add-one rounds: [3 3]
}
