package fl

import (
	"fmt"
	"testing"
)

// FuzzParseAggregator hardens the aggregator spec decoder: arbitrary specs
// must never panic, and any spec that parses must reach a canonical fixed
// point — String re-parses to an identical aggregator. Discovered seeds
// live in testdata/fuzz/FuzzParseAggregator.
func FuzzParseAggregator(f *testing.F) {
	for _, spec := range []string{
		"", "mean", "median", "trimmed(0.2)", "krum(1)",
		"trimmed(0.5)", "krum(-1)", "trimmed()", "krum(999999999999999999999)",
		"trimmed(1e-300)", "mean(", "trimmed(0.2))", "median()",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		agg, err := ParseAggregator(spec)
		if err != nil {
			if agg != nil {
				t.Fatalf("error with non-nil aggregator: %v", agg)
			}
			return
		}
		canon := fmt.Sprint(agg)
		again, err := ParseAggregator(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if got := fmt.Sprint(again); got != canon {
			t.Fatalf("String not a fixed point: %q → %q", canon, got)
		}
	})
}

// FuzzParseAdversary hardens the attack spec decoder: no panics, parsed
// specs validate, and String∘Parse is a fixed point.
func FuzzParseAdversary(f *testing.F) {
	for _, spec := range []string{
		"", "sign-flip", "sign-flip(3)", "noise(0.5)", "collude", "label-flip",
		"label-flip(2)", "sign-flip(0)", "sign-flip(-1)", "noise(NaN)",
		"noise(Inf)", "noise(1e308)", "collude(", "collude)", "(1)",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		a, err := ParseAdversary(spec)
		if err != nil {
			if a != nil {
				t.Fatalf("error with non-nil adversary: %v", a)
			}
			return
		}
		if spec == "" {
			if a != nil {
				t.Fatal("empty spec must mean no adversary")
			}
			return
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parsed adversary fails validation: %v", verr)
		}
		canon := a.String()
		again, err := ParseAdversary(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("String not a fixed point: %q → %q", canon, got)
		}
	})
}

// FuzzParseTrace hardens the availability-trace decoder: no panics, parsed
// configs validate, String∘Parse is a fixed point, and the resulting
// generator yields probabilities in [0,1] without panicking.
func FuzzParseTrace(f *testing.F) {
	for _, spec := range []string{
		"", "diurnal(0.1,0.6,8)", "flash(0,0.8,2,2)", "markov(0,0.3,0.5)",
		"diurnal(0.1,0.6,0)", "diurnal(0.1,0.6,8,9)", "flash(0,0.8,2)",
		"markov(0,0.3,0)", "markov(2,0.3,0.5)", "diurnal(,,)", "diurnal(1e999,0,1)",
		"flash(0,0.8,-2,2)", "markov(0,0.3,0.5", "diurnal (0.1,0.6,8)",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseTrace(spec)
		if err != nil {
			if cfg != nil {
				t.Fatalf("error with non-nil config: %v", cfg)
			}
			return
		}
		if spec == "" {
			if cfg != nil {
				t.Fatal("empty spec must mean no trace")
			}
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("parsed trace fails validation: %v", verr)
		}
		canon := cfg.String()
		again, err := ParseTrace(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if got := again.String(); got != canon {
			t.Fatalf("String not a fixed point: %q → %q", canon, got)
		}
		g := cfg.Generator(42)
		for _, round := range []int{0, 1, 7, 4096} {
			for _, client := range []int{0, 3, 255} {
				if p := g.DropProb(round, client); p < 0 || p > 1 {
					t.Fatalf("DropProb(%d,%d) = %g out of [0,1]", round, client, p)
				}
			}
		}
	})
}
