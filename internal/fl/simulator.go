package fl

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"calibre/internal/health"
	"calibre/internal/obs"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/tensor"
	"calibre/internal/trace"
)

// SimConfig controls a federated training simulation.
type SimConfig struct {
	Rounds          int
	ClientsPerRound int
	Seed            int64
	// Parallelism bounds concurrent local updates; 0 means GOMAXPROCS.
	Parallelism int
	// KernelWorkers, when > 0, resizes the process-wide tensor kernel pool
	// before the simulation starts (tensor.SetWorkers). The pool is shared
	// by all concurrently-training clients, which bounds nested fan-out:
	// kernel tiles run on at most KernelWorkers pool goroutines plus the
	// calling client goroutines themselves (each caller also works through
	// one chunk of its own product), so total kernel concurrency is about
	// Parallelism + KernelWorkers rather than their product. 0 leaves the
	// current pool size untouched. The same pool shard-parallelizes the
	// server-side aggregation sweeps (param.Shard), so this knob governs
	// both local training and aggregation parallelism.
	KernelWorkers int
	// DeltaUpdates routes every client update through the lossless
	// XOR-delta codec (encode against the round's global, reconstruct,
	// aggregate the reconstruction) — exactly the representation a
	// networked flnet federation ships. Reconstruction is bit-identical,
	// so results do not change; the knob exists so in-process simulations
	// exercise and continuously verify the wire path, and it is what
	// calibre-bench -exp delta measures.
	DeltaUpdates bool
	// Sampler defaults to UniformSampler.
	Sampler Sampler
	// DropoutRate simulates client failures/stragglers: each sampled
	// client independently drops out of the round with this probability
	// (its update is simply missing, as in production FL). At least
	// max(1, Quorum) sampled clients always survive so every round
	// aggregates something.
	DropoutRate float64
	// Trace, when set, replaces the flat DropoutRate with a seeded
	// availability trace (diurnal sine, flash-crowd burst or correlated
	// markov churn): each sampled client drops out of round r with
	// probability Trace.DropProb(r, id). Mutually exclusive with
	// DropoutRate; the quorum-survivor guarantee still holds.
	Trace *TraceConfig
	// Adversary, when set, places a seeded fraction of the client
	// population under adversarial control (see Adversary). The compromised
	// set and every hostile payload are pure functions of Seed, so hostile
	// runs replay and resume bit-identically; RoundStats.AdversarialUpdates
	// and RejectedUpdates account for the attack per round.
	Adversary *Adversary
	// Quorum is the minimum number of surviving updates a round keeps
	// under DropoutRate (K in K-of-N aggregation). 0 means 1 — the
	// historical "at least one survivor" floor. It mirrors the flnet
	// server's quorum knob: the networked server waits for K updates,
	// the simulator guarantees K survivors.
	Quorum int
	// RoundDeadline bounds each round's wall-clock time; a round that
	// exceeds it fails with context.DeadlineExceeded. 0 means unbounded.
	// In the networked runtime the same knob instead closes the round
	// with whatever quorum of updates has arrived.
	RoundDeadline time.Duration
	// Straggler decides the fate of dropped clients: StragglerRequeue
	// (default) drops them for the round only, StragglerDrop evicts them
	// from the population for the rest of the simulation.
	Straggler StragglerPolicy
	// OnRound, if set, observes each completed round (single-goroutine).
	OnRound func(RoundStats)
	// Obs, if non-nil, receives live observability for every completed
	// round (an obs.RoundSample plus per-client participation). Purely
	// additive: a nil registry costs one branch per round, and an attached
	// one never perturbs training — instrumented runs are bit-identical to
	// uninstrumented ones (pinned by TestObsRegistryDoesNotPerturbRun).
	Obs *obs.Registry
	// Recorder, if non-nil, receives the flight-recorder event stream:
	// round spans, per-client dispatch/update/drop events (with wire
	// encoding and turnaround), checkpoint and resume marks. Like Obs it
	// is purely observational — a traced run is bit-identical to a bare
	// one (pinned by TestTraceDoesNotPerturbRun), and with an injected
	// trace.Clock the emitted bytes are deterministic too. All events are
	// emitted from the round loop in canonical order; workers only record
	// timestamps, so a non-thread-safe injected clock requires
	// Parallelism 1 (real-clock runs may parallelize freely).
	Recorder *trace.Recorder
	// Health, if non-nil, streams every completed round through the
	// detector layer (internal/health): loss divergence/plateau,
	// fairness-gap drift, per-client update-norm outliers, quorum
	// regression. Like Obs and Recorder it is nil-safe and purely
	// observational — detectors read the round stream and never feed
	// back into training, so an instrumented run is bit-identical to a
	// bare one (pinned by TestHealthDoesNotPerturbRun). On resume the
	// monitor is warm-started by replaying the checkpoint's per-round
	// history (federation-level series only; per-client norm windows are
	// not part of SimState — replay a trace through calibre-doctor for
	// full-fidelity post-mortems).
	Health *health.Monitor
	// OnAlert, if set, receives every alert Health raises, from the
	// round loop in round order (single-goroutine). Ignored when Health
	// is nil.
	OnAlert func(health.Alert)

	// OnCheckpoint, if set, receives a deep-copied SimState after every
	// CheckpointEvery-th completed round and after the final round. It
	// fires before OnRound for the same round, so a callback that stops
	// the run still finds that round's state persisted. A checkpoint
	// error aborts the run: durability was requested, so failing loudly
	// beats training on without it.
	OnCheckpoint func(*SimState) error
	// CheckpointEvery is the round stride between checkpoints; ≤0 means
	// every round. Ignored unless OnCheckpoint is set.
	CheckpointEvery int
	// ResumeFrom, if non-nil, continues a previous federation: the round
	// loop starts at ResumeFrom.Round with its global vector and history,
	// after replaying the completed rounds' RNG draws so the continuation
	// is bit-identical to a run that never stopped. The configuration
	// must match the checkpointed run's (internal/store fingerprints
	// guard this at the CLI layer), and the method must not carry
	// cross-round state beyond the global vector (NewSimulator refuses
	// methods declaring Stateful with ErrStatefulResume).
	ResumeFrom *SimState
}

func (c *SimConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Simulator drives federated training of one method over a fixed client
// population.
type Simulator struct {
	Config  SimConfig
	Method  *Method
	Clients []*partition.Client

	// trace is the seeded availability generator Run derives from
	// Config.Trace; nil when the flat DropoutRate (or nothing) governs.
	trace *TraceGen
}

// NewSimulator validates and assembles a simulator.
func NewSimulator(cfg SimConfig, method *Method, clients []*partition.Client) (*Simulator, error) {
	if err := method.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("fl: rounds must be ≥1, got %d", cfg.Rounds)
	}
	if cfg.ClientsPerRound < 1 {
		return nil, fmt.Errorf("fl: clientsPerRound must be ≥1, got %d", cfg.ClientsPerRound)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if cfg.Sampler == nil {
		cfg.Sampler = UniformSampler{}
	}
	if cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 {
		return nil, fmt.Errorf("fl: dropout rate must be in [0,1), got %v", cfg.DropoutRate)
	}
	if cfg.Trace != nil {
		if cfg.DropoutRate > 0 {
			return nil, fmt.Errorf("fl: Trace and DropoutRate are mutually exclusive")
		}
		if err := cfg.Trace.Validate(); err != nil {
			return nil, err
		}
	}
	if err := cfg.Adversary.Validate(); err != nil {
		return nil, err
	}
	if cfg.Quorum < 0 {
		return nil, fmt.Errorf("fl: quorum must be ≥0, got %d", cfg.Quorum)
	}
	if cfg.Quorum > cfg.ClientsPerRound {
		return nil, fmt.Errorf("fl: quorum %d exceeds clientsPerRound %d", cfg.Quorum, cfg.ClientsPerRound)
	}
	if cfg.Quorum > len(clients) {
		return nil, fmt.Errorf("fl: quorum %d exceeds client population %d", cfg.Quorum, len(clients))
	}
	if _, err := ParseStragglerPolicy(cfg.Straggler.String()); err != nil {
		return nil, err
	}
	if cfg.ResumeFrom != nil {
		if !Resumable(method) {
			return nil, fmt.Errorf("fl: resume %s: %w", method.Name, ErrStatefulResume)
		}
		if err := cfg.ResumeFrom.Validate(cfg.Rounds); err != nil {
			return nil, fmt.Errorf("fl: resume: %w", err)
		}
	}
	return &Simulator{Config: cfg, Method: method, Clients: clients}, nil
}

// applyDropout removes each id with probability probOf(id), keeping at
// least max(1, quorum) survivors (preferring random survivors when too
// many would drop). A nil probOf means no dropout and consumes no RNG
// draws — the stream contract flat-rate runs have always had.
func applyDropout(rng *rand.Rand, ids []int, probOf func(id int) float64, quorum int) []int {
	if probOf == nil {
		return ids
	}
	if quorum < 1 {
		quorum = 1
	}
	if quorum > len(ids) {
		quorum = len(ids)
	}
	kept := make([]int, 0, len(ids))
	dropped := make([]int, 0, len(ids))
	for _, id := range ids {
		if rng.Float64() >= probOf(id) {
			kept = append(kept, id)
		} else {
			dropped = append(dropped, id)
		}
	}
	for len(kept) < quorum {
		i := rng.Intn(len(dropped))
		kept = append(kept, dropped[i])
		dropped = append(dropped[:i], dropped[i+1:]...)
	}
	sort.Ints(kept)
	return kept
}

// drawRound consumes one round's worth of master-RNG draws — client
// sampling and dropout — and derives the next sampleable population
// (shrunk under StragglerDrop). Both the live round loop and the resume
// replay path go through it, which is what makes a resumed run's RNG
// stream bit-identical to an uninterrupted one.
func (s *Simulator) drawRound(rng *rand.Rand, round int, alive []int) (sampled, ids, nextAlive []int) {
	picks := s.Config.Sampler.Sample(rng, len(alive), s.Config.ClientsPerRound)
	sampled = make([]int, len(picks))
	for i, p := range picks {
		sampled[i] = alive[p]
	}
	var probOf func(id int) float64
	switch {
	case s.trace != nil:
		probOf = func(id int) float64 { return s.trace.DropProb(round, id) }
	case s.Config.DropoutRate > 0:
		probOf = func(int) float64 { return s.Config.DropoutRate }
	}
	ids = applyDropout(rng, sampled, probOf, s.Config.Quorum)
	nextAlive = alive
	if len(ids) != len(sampled) && s.Config.Straggler == StragglerDrop {
		nextAlive = diffSorted(alive, diffSorted(sampled, ids))
	}
	return sampled, ids, nextAlive
}

// Run executes the training stage and returns the final global vector and
// per-round statistics.
func (s *Simulator) Run(ctx context.Context) (param.Vector, []RoundStats, error) {
	if s.Config.KernelWorkers > 0 {
		tensor.SetWorkers(s.Config.KernelWorkers)
	}
	masterRNG := rand.New(rand.NewSource(s.Config.Seed))
	s.trace = s.Config.Trace.Generator(s.Config.Seed)
	rec, reg := s.Config.Recorder, s.Config.Obs
	mon := s.Config.Health
	healthOn := mon != nil
	// The norm of each accepted update against the round's global feeds
	// both the health detectors and (so post-mortem replays can run the
	// same detectors) the trace's client_update events.
	normOn := healthOn || rec != nil
	// measure gates every clock read: a bare run draws no timestamps at
	// all. Span timestamps come from the recorder's clock when one is
	// attached (injected clocks make the trace bytes deterministic) and
	// from the wall clock when only the metrics registry wants durations.
	measure := rec != nil || reg != nil
	now := func() int64 { return 0 }
	if rec != nil {
		now = rec.Now
	} else if reg != nil {
		clockStart := time.Now()
		now = func() int64 { return time.Since(clockStart).Nanoseconds() }
	}
	// The adversary wraps the trainer rather than mutating the method, so a
	// hostile run never leaks attack state into a shared Method value. The
	// compromised set is fixed for the whole run.
	trainer := s.Config.Adversary.WrapTrainer(s.Method.Trainer, s.Config.Seed, len(s.Clients))
	malicious := make(map[int]bool)
	for _, id := range s.Config.Adversary.Malicious(s.Config.Seed, len(s.Clients)) {
		malicious[id] = true
	}
	robust, _ := s.Method.Aggregator.(RobustAggregator)
	global, err := s.Method.InitGlobal(masterRNG)
	if err != nil {
		return nil, nil, fmt.Errorf("fl: init global: %w", err)
	}
	// alive tracks the sampleable population; StragglerDrop shrinks it.
	alive := make([]int, len(s.Clients))
	for i := range alive {
		alive[i] = i
	}
	history := make([]RoundStats, 0, s.Config.Rounds)
	var eligibleCounts []int
	var histRound, histTurn, histEncode *obs.Histogram
	if reg != nil {
		histRound = reg.Histogram(obs.HistRoundLatency)
		histTurn = reg.Histogram(obs.HistClientTurnaround)
		histEncode = reg.Histogram(obs.HistUplinkEncode)
	}
	// Per-slot wire-path scratch, reused across rounds: each responding
	// client slot owns one Delta (encoder output, DiffInto reuses its Bits)
	// and one decode buffer (ResolveInto reuses it; the aggregation plane's
	// read-only contract guarantees nothing retains the decoded vector past
	// the round). Slots are worker-exclusive within a round and rounds are
	// sequential, so the reuse is race-free.
	var deltaScratch []*param.Delta
	var decodeScratch []param.Vector
	startRound := 0
	if st := s.Config.ResumeFrom; st != nil {
		if len(st.Global) != len(global) {
			return nil, nil, fmt.Errorf("fl: resume: checkpoint has %d params, method initializes %d", len(st.Global), len(global))
		}
		// Replay the completed rounds' sampling and dropout draws so the
		// master RNG and the sampleable population are exactly where the
		// checkpointed run left them. The recorded pool sizes double as an
		// integrity check against resuming under a drifted configuration.
		for r := 0; r < st.Round; r++ {
			if len(alive) != st.EligibleCounts[r] {
				return nil, nil, fmt.Errorf("fl: resume: round %d replays a pool of %d clients, checkpoint recorded %d (configuration drift?)",
					r, len(alive), st.EligibleCounts[r])
			}
			_, _, alive = s.drawRound(masterRNG, r, alive)
		}
		global = st.Global.Clone()
		history = append(history, st.History...)
		eligibleCounts = append(eligibleCounts, st.EligibleCounts...)
		startRound = st.Round
		rec.Emit(trace.Event{Kind: trace.KindResume, TS: now(), Runtime: "sim",
			Round: startRound, Client: -1, N: len(alive)})
		if healthOn {
			// Warm-start the detectors from the checkpointed history so a
			// resumed run re-derives the same federation-level verdicts an
			// uninterrupted one would (re-announcing past alerts).
			for _, h := range st.History {
				s.deliverAlerts(mon.ObserveRound(HealthSample("sim", h)), reg)
			}
		}
	}
	for round := startRound; round < s.Config.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		eligibleCount := len(alive)
		sampled, ids, nextAlive := s.drawRound(masterRNG, round, alive)
		// Guard the K-of-N contract loudly rather than letting applyDropout
		// clamp the floor: a round that cannot keep Quorum survivors fails.
		// (Unreachable in normal operation — validation bounds Quorum by
		// both ClientsPerRound and the population, and StragglerDrop only
		// evicts dropped clients, leaving ≥ Quorum survivors alive.)
		if s.Config.Quorum > 0 && len(sampled) < s.Config.Quorum {
			return nil, nil, fmt.Errorf("fl: round %d: only %d sampled clients for quorum %d: %w",
				round, len(sampled), s.Config.Quorum, ErrQuorumNotMet)
		}
		roundCtx, cancelRound := ctx, context.CancelFunc(func() {})
		if s.Config.RoundDeadline > 0 {
			roundCtx, cancelRound = context.WithTimeout(ctx, s.Config.RoundDeadline)
		}
		round := round
		roundStart := time.Now()
		// Span bookkeeping. Workers never Emit — they record timestamps
		// into slot-indexed arrays and the round loop emits every event in
		// canonical order afterwards, so the trace file's record order is
		// independent of goroutine scheduling.
		var tsRound int64
		var spanEnd, spanDur, encodeNS, wireEach []int64
		var wireDelta []bool
		var normEach []float64
		var slot map[int]int
		if measure {
			tsRound = now()
			spanEnd = make([]int64, len(ids))
			spanDur = make([]int64, len(ids))
			encodeNS = make([]int64, len(ids))
			wireEach = make([]int64, len(ids))
			wireDelta = make([]bool, len(ids))
		}
		if normOn {
			normEach = make([]float64, len(ids))
		}
		if measure || normOn || s.Config.DeltaUpdates {
			slot = make(map[int]int, len(ids))
			for i, id := range ids {
				slot[id] = i
			}
		}
		if s.Config.DeltaUpdates {
			for len(deltaScratch) < len(ids) {
				deltaScratch = append(deltaScratch, &param.Delta{})
				decodeScratch = append(decodeScratch, nil)
			}
		}
		if rec != nil {
			rec.Emit(trace.Event{Kind: trace.KindRoundStart, TS: tsRound, Runtime: "sim",
				Round: round, Client: -1, N: len(sampled)})
			for _, id := range ids {
				rec.Emit(trace.Event{Kind: trace.KindClientDispatch, TS: now(), Runtime: "sim",
					Round: round, Client: id})
			}
			if dropped := diffSorted(sampled, ids); len(dropped) > 0 {
				reason := trace.DropStraggler
				if s.trace != nil {
					reason = trace.DropTrace
				}
				for _, id := range dropped {
					rec.Emit(trace.Event{Kind: trace.KindClientDrop, TS: now(), Runtime: "sim",
						Round: round, Client: id, Reason: reason})
				}
			}
		}
		var wireBytes, denseBytes atomic.Int64
		updates, err := runParallel(roundCtx, s.Config.parallelism(), ids, func(ctx context.Context, id int) (*Update, error) {
			ix, t0 := 0, int64(0)
			if slot != nil {
				ix = slot[id]
			}
			if measure {
				t0 = now()
			}
			rng := clientRNG(s.Config.Seed, round, id)
			u, err := trainer.Train(ctx, rng, s.Clients[id], global, round)
			if err != nil {
				return nil, fmt.Errorf("fl: client %d round %d: %w", id, round, err)
			}
			// Route the payload through the wire representation: encode
			// against the round's global, then let the ingress Resolve
			// below reconstruct it (bit-identically) like a server would.
			// A wrong-length payload skips the encode so it still surfaces
			// as the typed ErrUpdateSize from Resolve, exactly like the
			// dense path.
			if s.Config.DeltaUpdates && u.Delta == nil && len(u.Params) == len(global) {
				var e0 int64
				if measure {
					e0 = now()
				}
				d := deltaScratch[ix]
				derr := param.DiffInto(d, global, u.Params)
				if measure {
					encodeNS[ix] = now() - e0
				}
				if derr != nil {
					return nil, fmt.Errorf("fl: client %d round %d: %w", id, round, derr)
				}
				u.Delta, u.Params = d, nil
			}
			// Uplink accounting must happen before Resolve clears the delta:
			// actual wire bytes vs. the dense baseline the codec saves
			// against. The simulator always encodes (to exercise the codec),
			// but a real sender ships dense when the delta does not compress
			// (flnet's wireUpdate fallback), so the wire cost is capped at
			// the dense size.
			if u.Delta != nil {
				w := int64(min(u.Delta.Size(), u.Delta.DenseSize()))
				wireBytes.Add(w)
				denseBytes.Add(int64(u.Delta.DenseSize()))
				if measure {
					wireEach[ix], wireDelta[ix] = w, true
				}
			} else {
				w := int64(8 * len(u.Params))
				wireBytes.Add(w)
				denseBytes.Add(w)
				if measure {
					wireEach[ix] = w
				}
			}
			// Ingress validation: a wrong-sized payload from an in-process
			// trainer is a bug, surfaced as a typed ErrUpdateSize instead of
			// an index panic inside the aggregator. Delta decodes land in the
			// slot's scratch buffer, which the slot adopts for the next round
			// once the decode hands it to u.Params.
			wasDelta := u.Delta != nil
			var scratch param.Vector
			if wasDelta && deltaScratch != nil {
				scratch = decodeScratch[ix]
			}
			if err := u.ResolveInto(global, scratch); err != nil {
				return nil, fmt.Errorf("fl: round %d: %w", round, err)
			}
			if wasDelta && deltaScratch != nil {
				decodeScratch[ix] = u.Params
			}
			if normOn {
				// The update norm against the pre-aggregation global — the
				// health plane's adversary signal. A serial left-to-right
				// reduction, so the value is identical at any worker count.
				normEach[ix] = param.L2Dist(u.Params, global)
			}
			if measure {
				spanEnd[ix] = now()
				spanDur[ix] = spanEnd[ix] - t0
			}
			return u, nil
		})
		cancelRound()
		if err != nil {
			return nil, nil, err
		}
		sink := NewRoundSink(s.Method.Aggregator, global)
		for _, u := range updates {
			if err := sink.Ingest(u); err != nil {
				return nil, nil, fmt.Errorf("fl: aggregate round %d: %w", round, err)
			}
		}
		global, err = sink.Finish()
		if err != nil {
			return nil, nil, fmt.Errorf("fl: aggregate round %d: %w", round, err)
		}
		stats := RoundStats{Round: round, Participants: sampled}
		if len(ids) != len(sampled) {
			stats.Responders = ids
			stats.Stragglers = diffSorted(sampled, ids)
		}
		for _, id := range ids {
			if malicious[id] {
				stats.AdversarialUpdates++
			}
		}
		if robust != nil {
			stats.RejectedUpdates = robust.Rejected(len(updates))
		}
		alive = nextAlive
		for _, u := range updates {
			stats.MeanLoss += u.TrainLoss
		}
		stats.MeanLoss /= float64(len(updates))
		history = append(history, stats)
		eligibleCounts = append(eligibleCounts, eligibleCount)
		if measure {
			for i, id := range ids {
				wire := "dense"
				if wireDelta[i] {
					wire = "delta"
				}
				ev := trace.Event{Kind: trace.KindClientUpdate, TS: spanEnd[i], Runtime: "sim",
					Round: round, Client: id, Wire: wire, Bytes: wireEach[i],
					Dur: spanDur[i], Loss: updates[i].TrainLoss}
				if normOn {
					ev.Norm = normEach[i]
				}
				rec.Emit(ev)
				histTurn.Observe(spanDur[i])
				if wireDelta[i] {
					histEncode.Observe(encodeNS[i])
				}
			}
			tsEnd := now()
			histRound.Observe(tsEnd - tsRound)
			rec.Emit(trace.Event{Kind: trace.KindRoundEnd, TS: tsEnd, Runtime: "sim",
				Round: round, Client: -1, N: len(ids), Dur: tsEnd - tsRound, Loss: stats.MeanLoss})
		}
		if reg != nil || healthOn {
			sample := obs.RoundSample{
				Runtime:            "sim",
				Round:              round,
				Participants:       len(sampled),
				Responders:         len(ids),
				Stragglers:         len(sampled) - len(ids),
				AdversarialUpdates: stats.AdversarialUpdates,
				RejectedUpdates:    stats.RejectedUpdates,
				MeanLoss:           stats.MeanLoss,
				UplinkWireBytes:    wireBytes.Load(),
				UplinkDenseBytes:   denseBytes.Load(),
				DurationMS:         time.Since(roundStart).Milliseconds(),
			}
			if healthOn {
				clients := make([]obs.ClientSample, len(ids))
				for i, id := range ids {
					clients[i] = obs.ClientSample{ID: id, Loss: updates[i].TrainLoss, Norm: normEach[i]}
				}
				sample.Clients = clients
				sample.StragglerIDs = stats.Stragglers
			}
			reg.ObserveRound(sample)
			reg.AddParticipation(ids)
			if healthOn {
				s.deliverAlerts(mon.ObserveRound(sample), reg)
			}
		}
		if s.Config.OnCheckpoint != nil && CheckpointDue(round+1, s.Config.CheckpointEvery, s.Config.Rounds) {
			st := &SimState{Round: round + 1, Global: global, History: history, EligibleCounts: eligibleCounts}
			if err := s.Config.OnCheckpoint(st.Clone()); err != nil {
				return nil, nil, fmt.Errorf("fl: checkpoint after round %d: %w", round, err)
			}
			rec.Emit(trace.Event{Kind: trace.KindCheckpointSave, TS: now(), Runtime: "sim",
				Round: round, Client: -1})
		}
		if s.Config.OnRound != nil {
			s.Config.OnRound(stats)
		}
	}
	return global, history, nil
}

// deliverAlerts fans one round's health alerts out to the OnAlert hook
// and folds them into the metrics plane's alert counters and suspect
// gauge (all nil-safe).
func (s *Simulator) deliverAlerts(alerts []health.Alert, reg *obs.Registry) {
	crit := 0
	for _, a := range alerts {
		if a.Severity == health.SevCrit {
			crit++
		}
		if s.Config.OnAlert != nil {
			s.Config.OnAlert(a)
		}
	}
	if len(alerts) > 0 {
		reg.Counter(obs.CounterHealthAlerts).Add(int64(len(alerts)))
		if crit > 0 {
			reg.Counter(obs.CounterHealthCritical).Add(int64(crit))
		}
	}
	reg.Gauge(obs.GaugeHealthSuspects).Set(int64(s.Config.Health.SuspectCount()))
}

// HealthSample converts one checkpointed round's stats into the
// federation-level observation the detectors consume on resume (both the
// simulator and the flnet server warm-start through it). The per-client
// loss/norm detail is not part of SimState, so warm-started detectors
// carry the loss/fairness/quorum series but not per-client outlier
// windows — replay a trace through calibre-doctor for those.
func HealthSample(runtime string, h RoundStats) obs.RoundSample {
	s := obs.RoundSample{
		Runtime:            runtime,
		Round:              h.Round,
		Participants:       len(h.Participants),
		Responders:         len(h.Participants),
		Stragglers:         len(h.Stragglers),
		LateUpdates:        h.LateUpdates,
		DeadlineExpired:    h.DeadlineExpired,
		AdversarialUpdates: h.AdversarialUpdates,
		RejectedUpdates:    h.RejectedUpdates,
		MeanLoss:           h.MeanLoss,
	}
	if h.Responders != nil {
		s.Responders = len(h.Responders)
	}
	return s
}

// diffSorted returns the elements of a (ascending) not present in b
// (ascending), preserving order.
func diffSorted(a, b []int) []int {
	out := make([]int, 0, len(a))
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// PersonalizeAll runs the personalization stage for every given client
// (participants and novel clients alike) and returns their local test
// accuracies, index-aligned with clients.
func PersonalizeAll(ctx context.Context, seed int64, method *Method, clients []*partition.Client, global param.Vector, parallelism int) ([]float64, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ids := make([]int, len(clients))
	for i := range ids {
		ids[i] = i
	}
	return runParallel(ctx, parallelism, ids, func(ctx context.Context, id int) (float64, error) {
		// Personalization happens after training; derive RNGs from a
		// distinct stream so adding rounds does not shift them.
		rng := clientRNG(seed, 1<<20, clients[id].ID)
		acc, err := method.Personalizer.Personalize(ctx, rng, clients[id], global)
		if err != nil {
			return 0, fmt.Errorf("fl: personalize client %d: %w", clients[id].ID, err)
		}
		return acc, nil
	})
}
