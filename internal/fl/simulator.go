package fl

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"calibre/internal/partition"
	"calibre/internal/tensor"
)

// SimConfig controls a federated training simulation.
type SimConfig struct {
	Rounds          int
	ClientsPerRound int
	Seed            int64
	// Parallelism bounds concurrent local updates; 0 means GOMAXPROCS.
	Parallelism int
	// KernelWorkers, when > 0, resizes the process-wide tensor kernel pool
	// before the simulation starts (tensor.SetWorkers). The pool is shared
	// by all concurrently-training clients, which bounds nested fan-out:
	// kernel tiles run on at most KernelWorkers pool goroutines plus the
	// calling client goroutines themselves (each caller also works through
	// one chunk of its own product), so total kernel concurrency is about
	// Parallelism + KernelWorkers rather than their product. 0 leaves the
	// current pool size untouched.
	KernelWorkers int
	// Sampler defaults to UniformSampler.
	Sampler Sampler
	// DropoutRate simulates client failures/stragglers: each sampled
	// client independently drops out of the round with this probability
	// (its update is simply missing, as in production FL). At least one
	// sampled client always survives so every round aggregates something.
	DropoutRate float64
	// OnRound, if set, observes each completed round (single-goroutine).
	OnRound func(RoundStats)
}

func (c *SimConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Simulator drives federated training of one method over a fixed client
// population.
type Simulator struct {
	Config  SimConfig
	Method  *Method
	Clients []*partition.Client
}

// NewSimulator validates and assembles a simulator.
func NewSimulator(cfg SimConfig, method *Method, clients []*partition.Client) (*Simulator, error) {
	if err := method.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("fl: rounds must be ≥1, got %d", cfg.Rounds)
	}
	if cfg.ClientsPerRound < 1 {
		return nil, fmt.Errorf("fl: clientsPerRound must be ≥1, got %d", cfg.ClientsPerRound)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if cfg.Sampler == nil {
		cfg.Sampler = UniformSampler{}
	}
	if cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 {
		return nil, fmt.Errorf("fl: dropout rate must be in [0,1), got %v", cfg.DropoutRate)
	}
	return &Simulator{Config: cfg, Method: method, Clients: clients}, nil
}

// applyDropout removes each id with probability rate, keeping at least one
// (preferring a random survivor when everyone would drop).
func applyDropout(rng *rand.Rand, ids []int, rate float64) []int {
	if rate <= 0 {
		return ids
	}
	kept := make([]int, 0, len(ids))
	for _, id := range ids {
		if rng.Float64() >= rate {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		kept = append(kept, ids[rng.Intn(len(ids))])
	}
	return kept
}

// Run executes the training stage and returns the final global vector and
// per-round statistics.
func (s *Simulator) Run(ctx context.Context) ([]float64, []RoundStats, error) {
	if s.Config.KernelWorkers > 0 {
		tensor.SetWorkers(s.Config.KernelWorkers)
	}
	masterRNG := rand.New(rand.NewSource(s.Config.Seed))
	global, err := s.Method.InitGlobal(masterRNG)
	if err != nil {
		return nil, nil, fmt.Errorf("fl: init global: %w", err)
	}
	history := make([]RoundStats, 0, s.Config.Rounds)
	for round := 0; round < s.Config.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("fl: round %d: %w", round, err)
		}
		ids := s.Config.Sampler.Sample(masterRNG, len(s.Clients), s.Config.ClientsPerRound)
		ids = applyDropout(masterRNG, ids, s.Config.DropoutRate)
		round := round
		updates, err := runParallel(ctx, s.Config.parallelism(), ids, func(ctx context.Context, id int) (*Update, error) {
			rng := clientRNG(s.Config.Seed, round, id)
			u, err := s.Method.Trainer.Train(ctx, rng, s.Clients[id], global, round)
			if err != nil {
				return nil, fmt.Errorf("fl: client %d round %d: %w", id, round, err)
			}
			return u, nil
		})
		if err != nil {
			return nil, nil, err
		}
		global, err = s.Method.Aggregator.Aggregate(global, updates)
		if err != nil {
			return nil, nil, fmt.Errorf("fl: aggregate round %d: %w", round, err)
		}
		stats := RoundStats{Round: round, Participants: ids}
		for _, u := range updates {
			stats.MeanLoss += u.TrainLoss
		}
		stats.MeanLoss /= float64(len(updates))
		history = append(history, stats)
		if s.Config.OnRound != nil {
			s.Config.OnRound(stats)
		}
	}
	return global, history, nil
}

// PersonalizeAll runs the personalization stage for every given client
// (participants and novel clients alike) and returns their local test
// accuracies, index-aligned with clients.
func PersonalizeAll(ctx context.Context, seed int64, method *Method, clients []*partition.Client, global []float64, parallelism int) ([]float64, error) {
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	ids := make([]int, len(clients))
	for i := range ids {
		ids[i] = i
	}
	return runParallel(ctx, parallelism, ids, func(ctx context.Context, id int) (float64, error) {
		// Personalization happens after training; derive RNGs from a
		// distinct stream so adding rounds does not shift them.
		rng := clientRNG(seed, 1<<20, clients[id].ID)
		acc, err := method.Personalizer.Personalize(ctx, rng, clients[id], global)
		if err != nil {
			return 0, fmt.Errorf("fl: personalize client %d: %w", clients[id].ID, err)
		}
		return acc, nil
	})
}
