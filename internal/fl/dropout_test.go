package fl

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestApplyDropoutKeepsAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		rate := rng.Float64() * 0.99
		kept := applyDropout(rng, ids, func(int) float64 { return rate }, 0)
		if len(kept) < 1 || len(kept) > n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, id := range ids {
			seen[id] = true
		}
		for _, id := range kept {
			if !seen[id] {
				return false // survivors must come from the sampled set
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDropoutZeroRateIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := []int{3, 1, 4}
	kept := applyDropout(rng, ids, nil, 0)
	if len(kept) != 3 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestApplyDropoutRespectsQuorum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := []int{0, 1, 2, 3, 4, 5}
	for trial := 0; trial < 50; trial++ {
		kept := applyDropout(rng, ids, func(int) float64 { return 0.95 }, 4)
		if len(kept) < 4 {
			t.Fatalf("trial %d: quorum 4 violated, kept %v", trial, kept)
		}
		if !sort.IntsAreSorted(kept) {
			t.Fatalf("survivors not sorted: %v", kept)
		}
	}
}

func TestSimulatorWithDropoutStillCompletes(t *testing.T) {
	clients := testClients(t, 10)
	tr := &fakeTrainer{}
	sim, err := NewSimulator(SimConfig{Rounds: 8, ClientsPerRound: 4, Seed: 7, DropoutRate: 0.5}, fakeMethod(tr), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	_, hist, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var total int
	dropped := false
	for _, h := range hist {
		if len(h.Participants) != 4 {
			t.Fatalf("round %d sampled = %v", h.Round, h.Participants)
		}
		survivors := h.Participants
		if h.Responders != nil {
			survivors = h.Responders
			dropped = true
			if len(h.Stragglers)+len(h.Responders) != len(h.Participants) {
				t.Fatalf("round %d accounting: %d stragglers + %d responders != %d sampled",
					h.Round, len(h.Stragglers), len(h.Responders), len(h.Participants))
			}
		}
		if len(survivors) < 1 || len(survivors) > 4 {
			t.Fatalf("round %d survivors = %v", h.Round, survivors)
		}
		total += len(survivors)
	}
	if !dropped {
		t.Fatal("50% dropout over 8 rounds should drop someone")
	}
	if int(tr.calls.Load()) != total {
		t.Fatalf("trainer calls %d != surviving participants %d", tr.calls.Load(), total)
	}
}

func TestSimulatorRejectsInvalidDropout(t *testing.T) {
	clients := testClients(t, 4)
	m := fakeMethod(&fakeTrainer{})
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, DropoutRate: 1}, m, clients); err == nil {
		t.Fatal("dropout rate 1 should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, DropoutRate: -0.1}, m, clients); err == nil {
		t.Fatal("negative dropout rate should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 2, Quorum: 3}, m, clients); err == nil {
		t.Fatal("quorum above clientsPerRound should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 8, Quorum: 5}, m, clients); err == nil {
		t.Fatal("quorum above the client population should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, Quorum: -1}, m, clients); err == nil {
		t.Fatal("negative quorum should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, Straggler: StragglerPolicy(9)}, m, clients); err == nil {
		t.Fatal("unknown straggler policy should be rejected")
	}
}

// TestSimulatorStragglerDropShrinksPopulation checks StragglerDrop: a
// client that drops out of a round never reappears in a later round.
func TestSimulatorStragglerDropShrinksPopulation(t *testing.T) {
	clients := testClients(t, 8)
	tr := &fakeTrainer{}
	sim, err := NewSimulator(SimConfig{
		Rounds: 10, ClientsPerRound: 4, Seed: 11, DropoutRate: 0.4, Straggler: StragglerDrop,
	}, fakeMethod(tr), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	_, hist, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	evicted := map[int]bool{}
	for _, h := range hist {
		for _, id := range h.Participants {
			if evicted[id] {
				t.Fatalf("round %d sampled evicted client %d", h.Round, id)
			}
		}
		for _, id := range h.Stragglers {
			evicted[id] = true
		}
	}
	if len(evicted) == 0 {
		t.Fatal("40% dropout over 10 rounds should evict someone")
	}
}
