package fl

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyDropoutKeepsAtLeastOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		rate := rng.Float64() * 0.99
		kept := applyDropout(rng, ids, rate)
		if len(kept) < 1 || len(kept) > n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, id := range ids {
			seen[id] = true
		}
		for _, id := range kept {
			if !seen[id] {
				return false // survivors must come from the sampled set
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDropoutZeroRateIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := []int{3, 1, 4}
	kept := applyDropout(rng, ids, 0)
	if len(kept) != 3 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestSimulatorWithDropoutStillCompletes(t *testing.T) {
	clients := testClients(t, 10)
	tr := &fakeTrainer{}
	sim, err := NewSimulator(SimConfig{Rounds: 8, ClientsPerRound: 4, Seed: 7, DropoutRate: 0.5}, fakeMethod(tr), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	_, hist, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var total int
	dropped := false
	for _, h := range hist {
		if len(h.Participants) < 1 || len(h.Participants) > 4 {
			t.Fatalf("round %d participants = %v", h.Round, h.Participants)
		}
		if len(h.Participants) < 4 {
			dropped = true
		}
		total += len(h.Participants)
	}
	if !dropped {
		t.Fatal("50% dropout over 8 rounds should drop someone")
	}
	if int(tr.calls.Load()) != total {
		t.Fatalf("trainer calls %d != surviving participants %d", tr.calls.Load(), total)
	}
}

func TestSimulatorRejectsInvalidDropout(t *testing.T) {
	clients := testClients(t, 4)
	m := fakeMethod(&fakeTrainer{})
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, DropoutRate: 1}, m, clients); err == nil {
		t.Fatal("dropout rate 1 should be rejected")
	}
	if _, err := NewSimulator(SimConfig{Rounds: 1, ClientsPerRound: 1, DropoutRate: -0.1}, m, clients); err == nil {
		t.Fatal("negative dropout rate should be rejected")
	}
}
