package fl

import (
	"context"
	"math"
	"reflect"
	"testing"
)

// TestDiurnalDropProb pins the sine: Base at the trough phase, Base+Amp at
// the peak, periodic in Period rounds.
func TestDiurnalDropProb(t *testing.T) {
	cfg := &TraceConfig{Kind: TraceDiurnal, Base: 0.1, Amp: 0.6, Period: 8}
	g := cfg.Generator(1)
	// Round 0: sin(0)=0 → Base + Amp/2.
	if p := g.DropProb(0, 3); math.Abs(p-0.4) > 1e-12 {
		t.Fatalf("round 0: %g", p)
	}
	// Round 2: sin(π/2)=1 → Base + Amp.
	if p := g.DropProb(2, 3); math.Abs(p-0.7) > 1e-12 {
		t.Fatalf("round 2 (peak): %g", p)
	}
	// Round 6: sin(3π/2)=−1 → Base.
	if p := g.DropProb(6, 3); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("round 6 (trough): %g", p)
	}
	// Periodicity and client-independence (tolerance-based: the phase for
	// round 10 reaches sin through a different float argument).
	if math.Abs(g.DropProb(2, 0)-g.DropProb(10, 99)) > 1e-9 {
		t.Fatal("diurnal must be periodic and client-independent")
	}
	// Clamping: Base+Amp beyond 1 saturates.
	sat := (&TraceConfig{Kind: TraceDiurnal, Base: 0.8, Amp: 0.9, Period: 4}).Generator(1)
	if p := sat.DropProb(1, 0); p != 1 {
		t.Fatalf("clamp: %g", p)
	}
}

// TestFlashDropProb pins the burst window [start, start+width).
func TestFlashDropProb(t *testing.T) {
	cfg := &TraceConfig{Kind: TraceFlash, Base: 0.05, Amp: 0.85, Period: 3, Width: 2}
	g := cfg.Generator(1)
	for round, want := range map[int]float64{0: 0.05, 2: 0.05, 3: 0.9, 4: 0.9, 5: 0.05} {
		if p := g.DropProb(round, 0); math.Abs(p-want) > 1e-12 {
			t.Fatalf("round %d: %g, want %g", round, p, want)
		}
	}
}

// TestMarkovPairCorrelation pins the churn model: paired clients (2k, 2k+1)
// always see the same probability, a down pair drops with probability 1,
// and the chain is a pure function of the seed.
func TestMarkovPairCorrelation(t *testing.T) {
	cfg := &TraceConfig{Kind: TraceMarkov, Base: 0.1, PDown: 0.5, PUp: 0.5}
	g := cfg.Generator(42)
	sawDown := false
	for round := 0; round < 50; round++ {
		for pair := 0; pair < 3; pair++ {
			a, b := g.DropProb(round, 2*pair), g.DropProb(round, 2*pair+1)
			if a != b {
				t.Fatalf("pair %d split at round %d: %g vs %g", pair, round, a, b)
			}
			if a != 1 && math.Abs(a-0.1) > 1e-12 {
				t.Fatalf("markov prob must be Base or 1, got %g", a)
			}
			if a == 1 {
				sawDown = true
			}
		}
	}
	if !sawDown {
		t.Fatal("pdown=0.5 over 50 rounds never took a pair down")
	}
	// Round 0 is always up.
	if p := cfg.Generator(7).DropProb(0, 0); p != 0.1 {
		t.Fatalf("round 0 must start up: %g", p)
	}
}

// TestMarkovQueryOrderIndependent: the memoized chains extend strictly
// sequentially, so querying rounds backwards, forwards or interleaved across
// pairs observes the same probabilities — the property resume replay relies
// on.
func TestMarkovQueryOrderIndependent(t *testing.T) {
	cfg := &TraceConfig{Kind: TraceMarkov, Base: 0, PDown: 0.4, PUp: 0.3}
	forward := cfg.Generator(9)
	var want []float64
	for round := 0; round < 20; round++ {
		for client := 0; client < 4; client++ {
			want = append(want, forward.DropProb(round, client))
		}
	}
	backward := cfg.Generator(9)
	var got []float64
	for round := 19; round >= 0; round-- {
		for client := 3; client >= 0; client-- {
			got = append(got, backward.DropProb(round, client))
		}
	}
	// Reverse got back into forward order.
	for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
		got[i], got[j] = got[j], got[i]
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("markov probabilities depend on query order")
	}
}

// TestNilTraceGen: a nil generator never drops anyone.
func TestNilTraceGen(t *testing.T) {
	var nilCfg *TraceConfig
	if g := nilCfg.Generator(1); g != nil {
		t.Fatal("nil config must yield a nil generator")
	}
	var g *TraceGen
	if p := g.DropProb(3, 4); p != 0 {
		t.Fatalf("nil generator drop prob: %g", p)
	}
}

// TestParseTraceRoundTrip: Parse∘String is the identity on canonical specs;
// malformed specs are rejected.
func TestParseTraceRoundTrip(t *testing.T) {
	for _, spec := range []string{"diurnal(0.1,0.6,8)", "flash(0,0.8,2,2)", "markov(0,0.3,0.5)", "diurnal(0,1,1)", "markov(0.25,0,1)"} {
		cfg, err := ParseTrace(spec)
		if err != nil {
			t.Fatalf("ParseTrace(%q): %v", spec, err)
		}
		if got := cfg.String(); got != spec {
			t.Errorf("ParseTrace(%q).String() = %q", spec, got)
		}
	}
	if cfg, err := ParseTrace(""); cfg != nil || err != nil {
		t.Errorf("empty spec: %v, %v", cfg, err)
	}
	bad := []string{
		"diurnal", "diurnal(0.1,0.6)", "diurnal(0.1,0.6,8,9)", "diurnal(0.1,0.6,0)",
		"diurnal(2,0.6,8)", "diurnal(0.1,x,8)", "diurnal(0.1,0.6,8",
		"flash(0,0.8,2)", "flash(0,0.8,-1,2)", "flash(0,0.8,2,0)",
		"markov(0,0.3,0)", "markov(0,0.3,1.5)", "markov(0,1.5,0.5)",
		"weekly(1,2,3)", "markov 0,0.3,0.5",
	}
	for _, spec := range bad {
		if _, err := ParseTrace(spec); err == nil {
			t.Errorf("ParseTrace(%q) accepted", spec)
		}
	}
}

// TestTraceValidateUnusedFields: fields outside a kind's vocabulary must be
// zero so specs stay canonical.
func TestTraceValidateUnusedFields(t *testing.T) {
	bad := []TraceConfig{
		{Kind: TraceDiurnal, Base: 0.1, Amp: 0.5, Period: 4, Width: 2},
		{Kind: TraceFlash, Base: 0.1, Amp: 0.5, Period: 2, Width: 1, PUp: 0.5},
		{Kind: TraceMarkov, Base: 0.1, PDown: 0.3, PUp: 0.5, Period: 2},
	}
	for _, cfg := range bad {
		cfg := cfg
		if err := cfg.Validate(); err == nil {
			t.Errorf("%+v accepted", cfg)
		}
	}
	var nilCfg *TraceConfig
	if err := nilCfg.Validate(); err != nil {
		t.Fatalf("nil config: %v", err)
	}
}

// TestSimulatorRejectsTraceWithDropout: the flat rate and the trace are
// mutually exclusive knobs.
func TestSimulatorRejectsTraceWithDropout(t *testing.T) {
	clients := testClients(t, 4)
	cfg := SimConfig{
		Rounds: 1, ClientsPerRound: 2, Seed: 1,
		DropoutRate: 0.2,
		Trace:       &TraceConfig{Kind: TraceDiurnal, Base: 0.1, Amp: 0.5, Period: 4},
	}
	if _, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients); err == nil {
		t.Fatal("Trace + DropoutRate must be rejected")
	}
	cfg.Trace = &TraceConfig{Kind: "weekly"}
	cfg.DropoutRate = 0
	if _, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients); err == nil {
		t.Fatal("invalid trace must be rejected at construction")
	}
}

// TestSimulatorTraceDropsRounds: under a saturating flash burst every
// sampled client wants to drop, so the quorum-survivor rescue is what keeps
// the federation alive — and the stragglers show up in the stats.
func TestSimulatorTraceDropsRounds(t *testing.T) {
	clients := testClients(t, 6)
	var stats []RoundStats
	cfg := SimConfig{
		Rounds: 4, ClientsPerRound: 4, Seed: 13, Quorum: 2,
		Trace:   &TraceConfig{Kind: TraceFlash, Base: 0, Amp: 1, Period: 1, Width: 2},
		OnRound: func(s RoundStats) { stats = append(stats, s) },
	}
	sim, err := NewSimulator(cfg, fakeMethod(&fakeTrainer{}), clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, _, err := sim.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, s := range []int{0, 3} { // outside the burst: nobody drops
		if len(stats[s].Stragglers) != 0 {
			t.Fatalf("round %d outside the burst dropped %v", s, stats[s].Stragglers)
		}
	}
	for _, s := range []int{1, 2} { // inside: everyone wants out, quorum survives
		if got := len(stats[s].Responders); got != 2 {
			t.Fatalf("round %d inside the burst kept %d, want quorum 2", s, got)
		}
	}
}
