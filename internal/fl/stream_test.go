package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomUpdates(rng *rand.Rand, n, dim int) []*Update {
	updates := make([]*Update, n)
	for i := range updates {
		params := make([]float64, dim)
		for j := range params {
			params[j] = rng.NormFloat64()
		}
		updates[i] = &Update{
			ClientID:   i,
			Params:     params,
			NumSamples: rng.Intn(200),
			TrainLoss:  rng.Float64(),
		}
	}
	return updates
}

// TestWeightedAverageSinkMatchesBatchBitwise is the streaming-aggregation
// determinism gate: folding updates one at a time (in canonical order) must
// produce the exact float operations of the batch path, hence bit-identical
// output.
func TestWeightedAverageSinkMatchesBatchBitwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		dim := 1 + rng.Intn(64)
		global := make([]float64, dim)
		updates := randomUpdates(rng, n, dim)

		batch, err := WeightedAverage{}.Aggregate(global, updates)
		if err != nil {
			return false
		}
		sink := NewRoundSink(WeightedAverage{}, global)
		for _, u := range updates {
			if err := sink.Ingest(u); err != nil {
				return false
			}
		}
		streamed, err := sink.Finish()
		if err != nil || len(streamed) != len(batch) {
			return false
		}
		for i := range batch {
			if math.Float64bits(streamed[i]) != math.Float64bits(batch[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedAverageIsStreaming pins that FedAvg aggregation advertises
// streaming capability (the flnet server relies on it to avoid buffering
// whole rounds of parameter vectors).
func TestWeightedAverageIsStreaming(t *testing.T) {
	var agg Aggregator = WeightedAverage{}
	if _, ok := agg.(StreamingAggregator); !ok {
		t.Fatal("WeightedAverage should implement StreamingAggregator")
	}
}

// TestBufferSinkAdaptsBatchAggregators checks the fallback path: an
// aggregator without streaming support goes through the buffering adapter
// and produces its exact batch result.
func TestBufferSinkAdaptsBatchAggregators(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	global := make([]float64, 8)
	updates := randomUpdates(rng, 5, 8)
	for i, u := range updates {
		u.Divergence = 0.1 * float64(i+1)
	}
	agg := &DivergenceWeighted{Temperature: 0.7}
	if _, ok := interface{}(agg).(StreamingAggregator); ok {
		t.Fatal("DivergenceWeighted should not stream (needs all divergences)")
	}
	batch, err := agg.Aggregate(global, updates)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	sink := NewRoundSink(agg, global)
	for _, u := range updates {
		if err := sink.Ingest(u); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	streamed, err := sink.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	for i := range batch {
		if math.Float64bits(streamed[i]) != math.Float64bits(batch[i]) {
			t.Fatalf("buffered sink diverged at %d: %v vs %v", i, streamed[i], batch[i])
		}
	}
}

// TestSinkEmptyRound pins ErrNoUpdates parity between streaming and batch
// sinks for an empty round.
func TestSinkEmptyRound(t *testing.T) {
	for _, agg := range []Aggregator{WeightedAverage{}, &DivergenceWeighted{}} {
		sink := NewRoundSink(agg, make([]float64, 3))
		if _, err := sink.Finish(); err != ErrNoUpdates {
			t.Fatalf("%T empty round: err = %v, want ErrNoUpdates", agg, err)
		}
	}
}

// TestSinkRejectsShapeMismatch mirrors the batch path's dimension check.
func TestSinkRejectsShapeMismatch(t *testing.T) {
	sink := NewRoundSink(WeightedAverage{}, make([]float64, 3))
	if err := sink.Ingest(&Update{Params: make([]float64, 2), NumSamples: 1}); err == nil {
		t.Fatal("short update accepted")
	}
}

func TestStragglerPolicyParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want StragglerPolicy
	}{{"requeue", StragglerRequeue}, {"", StragglerRequeue}, {"drop", StragglerDrop}} {
		got, err := ParseStragglerPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStragglerPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStragglerPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if StragglerRequeue.String() != "requeue" || StragglerDrop.String() != "drop" {
		t.Fatal("policy String mismatch")
	}
}

func TestDiffSorted(t *testing.T) {
	got := diffSorted([]int{1, 2, 3, 5, 8}, []int{2, 5})
	want := []int{1, 3, 8}
	if len(got) != len(want) {
		t.Fatalf("diffSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diffSorted = %v, want %v", got, want)
		}
	}
}
