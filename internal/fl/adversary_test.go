package fl

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"calibre/internal/param"
)

// TestMaliciousDeterministic pins the compromised-set trace: a pure
// function of (seed, n, Frac), sorted, at least one client when Frac > 0,
// the whole population at Frac = 1.
func TestMaliciousDeterministic(t *testing.T) {
	a := &Adversary{Kind: AdvSignFlip, Frac: 0.3}
	got := a.Malicious(7, 10)
	if len(got) != 3 {
		t.Fatalf("frac=0.3 of 10: %v", got)
	}
	if !reflect.DeepEqual(got, a.Malicious(7, 10)) {
		t.Fatal("Malicious must be deterministic per seed")
	}
	if reflect.DeepEqual(got, a.Malicious(8, 10)) {
		t.Fatal("different seeds should compromise different clients")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
	tiny := &Adversary{Kind: AdvNoise, Frac: 0.01}
	if ids := tiny.Malicious(1, 10); len(ids) != 1 {
		t.Fatalf("frac>0 must compromise at least one client: %v", ids)
	}
	all := &Adversary{Kind: AdvNoise, Frac: 1}
	if ids := all.Malicious(1, 5); len(ids) != 5 {
		t.Fatalf("frac=1 must compromise everyone: %v", ids)
	}
	var nilAdv *Adversary
	if ids := nilAdv.Malicious(1, 10); ids != nil {
		t.Fatalf("nil adversary: %v", ids)
	}
	none := &Adversary{Kind: AdvNoise, Frac: 0}
	if ids := none.Malicious(1, 10); ids != nil {
		t.Fatalf("frac=0: %v", ids)
	}
}

// TestWrapTrainerHonestPassThrough: a nil or zero-fraction adversary leaves
// the trainer untouched, and honest clients of a hostile wrapper train
// through the inner trainer unchanged.
func TestWrapTrainerHonestPassThrough(t *testing.T) {
	inner := &fakeTrainer{}
	var nilAdv *Adversary
	if got := nilAdv.WrapTrainer(inner, 1, 10); got != Trainer(inner) {
		t.Fatal("nil adversary must return the inner trainer")
	}
	zero := &Adversary{Kind: AdvSignFlip, Frac: 0}
	if got := zero.WrapTrainer(inner, 1, 10); got != Trainer(inner) {
		t.Fatal("frac=0 must return the inner trainer")
	}

	clients := testClients(t, 4)
	a := &Adversary{Kind: AdvSignFlip, Frac: 0.25}
	mal := a.Malicious(3, len(clients))
	wrapped := a.WrapTrainer(inner, 3, len(clients))
	global := param.Vector{1, 2, 3, 4}
	for _, c := range clients {
		if c.ID == mal[0] {
			continue
		}
		u, err := wrapped.Train(context.Background(), rand.New(rand.NewSource(1)), c, global, 0)
		if err != nil {
			t.Fatalf("honest train: %v", err)
		}
		for i := range u.Params {
			if u.Params[i] != global[i]+1 {
				t.Fatalf("honest client %d perturbed: %v", c.ID, u.Params)
			}
		}
	}
}

// TestSignFlipReflectsUpdate pins the reflection: the shipped vector is
// global − s·(honest − global).
func TestSignFlipReflectsUpdate(t *testing.T) {
	clients := testClients(t, 2)
	a := &Adversary{Kind: AdvSignFlip, Scale: 3, Frac: 1}
	wrapped := a.WrapTrainer(&fakeTrainer{}, 5, len(clients))
	global := param.Vector{1, -2, 0.5}
	u, err := wrapped.Train(context.Background(), rand.New(rand.NewSource(1)), clients[0], global, 2)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	// fakeTrainer's honest update is global+1, so the reflection is global−3.
	for i := range u.Params {
		if math.Abs(u.Params[i]-(global[i]-3)) > 1e-12 {
			t.Fatalf("sign-flip params = %v, want global-3", u.Params)
		}
	}
	if u.ControlDelta != nil {
		t.Fatal("sign-flip must clear the control delta")
	}
}

// TestNoiseAndColludeDeterministic: hostile payloads are pure functions of
// (seed, round, client); colluders ship the identical vector within a round
// and fresh ones across rounds, without ever invoking the inner trainer.
func TestNoiseAndColludeDeterministic(t *testing.T) {
	clients := testClients(t, 4)
	global := param.Vector{0, 0, 0}
	train := func(a *Adversary, c int, round int) param.Vector {
		inner := &fakeTrainer{}
		u, err := a.WrapTrainer(inner, 11, len(clients)).Train(context.Background(), rand.New(rand.NewSource(9)), clients[c], global, round)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		if inner.calls.Load() != 0 {
			t.Fatal("fabricated attacks must not run local training")
		}
		return u.Params
	}
	noise := &Adversary{Kind: AdvNoise, Scale: 0.5, Frac: 1}
	if !reflect.DeepEqual(train(noise, 0, 1), train(noise, 0, 1)) {
		t.Fatal("noise payload must be deterministic")
	}
	if reflect.DeepEqual(train(noise, 0, 1), train(noise, 1, 1)) {
		t.Fatal("noise clients must not collude")
	}
	collude := &Adversary{Kind: AdvCollude, Frac: 1}
	if !reflect.DeepEqual(train(collude, 0, 1), train(collude, 1, 1)) {
		t.Fatal("colluders must ship the identical round vector")
	}
	if reflect.DeepEqual(train(collude, 0, 1), train(collude, 0, 2)) {
		t.Fatal("collusion vector must change across rounds")
	}
}

// TestLabelFlipSharesFeaturesCopiesLabels pins the label-flip transform:
// y → NumClasses−1−y on a fresh label slice, features shared, unlabeled
// markers preserved, memoized per client.
func TestLabelFlipSharesFeaturesCopiesLabels(t *testing.T) {
	clients := testClients(t, 2)
	c := clients[0]
	c.Train.Y[0] = -1 // plant an unlabeled marker
	at := &adversaryTrainer{cfg: Adversary{Kind: AdvLabelFlip, Frac: 1}}
	fc := at.flipClient(c)
	if fc == c || fc.Train == c.Train {
		t.Fatal("flipClient must not alias the original dataset")
	}
	if &fc.Train.X[0][0] != &c.Train.X[0][0] {
		t.Fatal("features must be shared, not copied")
	}
	for i, y := range c.Train.Y {
		want := y
		if y >= 0 && y < c.Train.NumClasses {
			want = c.Train.NumClasses - 1 - y
		}
		if fc.Train.Y[i] != want {
			t.Fatalf("label %d: got %d want %d (orig %d)", i, fc.Train.Y[i], want, y)
		}
	}
	if at.flipClient(c) != fc {
		t.Fatal("flipClient must memoize")
	}
}

// TestParseAdversaryRoundTrip: Parse∘String is the identity on canonical
// specs, the empty string means no adversary, malformed specs are typed
// errors.
func TestParseAdversaryRoundTrip(t *testing.T) {
	for _, spec := range []string{"sign-flip", "sign-flip(3)", "noise(0.5)", "collude", "collude(2)", "label-flip"} {
		a, err := ParseAdversary(spec)
		if err != nil {
			t.Fatalf("ParseAdversary(%q): %v", spec, err)
		}
		if got := a.String(); got != spec {
			t.Errorf("ParseAdversary(%q).String() = %q", spec, got)
		}
	}
	if a, err := ParseAdversary(""); a != nil || err != nil {
		t.Errorf("empty spec: %v, %v", a, err)
	}
	for _, bad := range []string{"sign-flip(0)", "sign-flip(-1)", "sign-flip(x)", "sign-flip(", "gradient-ascent", "label-flip(2)", "noise()"} {
		if _, err := ParseAdversary(bad); err == nil {
			t.Errorf("ParseAdversary(%q) accepted", bad)
		}
	}
}

// TestAdversaryValidate covers the config bounds.
func TestAdversaryValidate(t *testing.T) {
	var nilAdv *Adversary
	if err := nilAdv.Validate(); err != nil {
		t.Fatalf("nil adversary: %v", err)
	}
	bad := []Adversary{
		{Kind: "ddos", Frac: 0.5},
		{Kind: AdvNoise, Scale: -1, Frac: 0.5},
		{Kind: AdvNoise, Scale: math.Inf(1), Frac: 0.5},
		{Kind: AdvNoise, Frac: -0.1},
		{Kind: AdvNoise, Frac: 1.1},
		{Kind: AdvNoise, Frac: math.NaN()},
	}
	for _, a := range bad {
		a := a
		if err := a.Validate(); err == nil {
			t.Errorf("%+v accepted", a)
		}
	}
}

// hostileConfig stresses every hostile path at once: a robust aggregator, a
// markov availability trace and colluding adversaries, on top of quorum
// refill and population eviction.
func hostileConfig(rounds int) SimConfig {
	return SimConfig{
		Rounds:          rounds,
		ClientsPerRound: 5,
		Seed:            77,
		Quorum:          4,
		Straggler:       StragglerDrop,
		Trace:           &TraceConfig{Kind: TraceMarkov, Base: 0.1, PDown: 0.3, PUp: 0.5},
		Adversary:       &Adversary{Kind: AdvCollude, Scale: 2, Frac: 0.3},
	}
}

// hostileRun executes one hostile simulation over a krum aggregator.
func hostileRun(t *testing.T, cfg SimConfig) ([]float64, []RoundStats) {
	t.Helper()
	m := fakeMethod(&fakeTrainer{})
	m.Aggregator = Krum{F: 1}
	sim, err := NewSimulator(cfg, m, testClients(t, 6))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, history, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return global, history
}

// TestHostileSimulationDeterministic: two hostile runs from the same seed
// are bit-identical, and the attack actually registers in the accounting.
func TestHostileSimulationDeterministic(t *testing.T) {
	g1, h1 := hostileRun(t, hostileConfig(6))
	g2, h2 := hostileRun(t, hostileConfig(6))
	for i := range g1 {
		if math.Float64bits(g1[i]) != math.Float64bits(g2[i]) {
			t.Fatalf("hostile run not deterministic at %d", i)
		}
	}
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("histories differ:\n%+v\nvs\n%+v", h1, h2)
	}
	adversarial, rejected := 0, 0
	for _, h := range h1 {
		adversarial += h.AdversarialUpdates
		rejected += h.RejectedUpdates
	}
	if adversarial == 0 {
		t.Fatal("frac=0.3 over 6 rounds should land adversarial updates")
	}
	if rejected == 0 {
		t.Fatal("krum must reject all but one update per round")
	}
}

// TestHostileResumeBitIdentical extends the simulator's determinism gate to
// hostile runs: checkpoint a traced, attacked federation mid-run, resume it
// in a fresh simulator, and the outcome must be bit-identical to a run that
// never stopped — adversarial and rejection accounting included.
func TestHostileResumeBitIdentical(t *testing.T) {
	const total, cut = 6, 3
	refGlobal, refHistory := hostileRun(t, hostileConfig(total))

	var at *SimState
	cfgA := hostileConfig(cut)
	cfgA.OnCheckpoint = func(st *SimState) error { at = st; return nil }
	hostileRun(t, cfgA)
	if at == nil || at.Round != cut {
		t.Fatalf("no terminal checkpoint at round %d: %+v", cut, at)
	}

	cfgB := hostileConfig(total)
	cfgB.ResumeFrom = at
	gotGlobal, gotHistory := hostileRun(t, cfgB)

	for i := range gotGlobal {
		if math.Float64bits(gotGlobal[i]) != math.Float64bits(refGlobal[i]) {
			t.Fatalf("global[%d] differs after hostile resume", i)
		}
	}
	if !reflect.DeepEqual(gotHistory, refHistory) {
		t.Fatalf("history differs after hostile resume:\n%+v\nvs\n%+v", gotHistory, refHistory)
	}
}
