package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"calibre/internal/tensor"
)

// blobs builds n points around k well-separated centers in d dims.
func blobs(rng *rand.Rand, k, perCluster, d int, sep, std float64) (*tensor.Tensor, []int) {
	centers := tensor.RandN(rng, sep, k, d)
	n := k * perCluster
	x := tensor.New(n, d)
	truth := make([]int, n)
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = centers.At(c, j) + rng.NormFloat64()*std
			}
			idx := c*perCluster + i
			x.SetRow(idx, row)
			truth[idx] = c
		}
	}
	return x, truth
}

func TestRunRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, truth := blobs(rng, 4, 30, 8, 6, 0.3)
	res, err := Run(rng, x, Config{K: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Clustering must match ground truth up to label permutation: check
	// purity ≥ 0.95.
	purity := clusterPurity(res.Assign, truth, 4)
	if purity < 0.95 {
		t.Fatalf("purity = %v, want ≥0.95", purity)
	}
	if res.Iters < 1 {
		t.Fatal("Iters should be ≥1")
	}
}

func clusterPurity(assign, truth []int, k int) float64 {
	counts := make(map[[2]int]int)
	for i := range assign {
		counts[[2]int{assign[i], truth[i]}]++
	}
	perCluster := make(map[int]int)
	for key, n := range counts {
		if n > perCluster[key[0]] {
			perCluster[key[0]] = n
		}
	}
	var pure int
	for _, n := range perCluster {
		pure += n
	}
	return float64(pure) / float64(len(assign))
}

func TestRunValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(3, 2)
	if _, err := Run(rng, x, Config{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Run(rng, tensor.New(0, 2), Config{K: 2}); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestRunClampsKToN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandN(rng, 1, 3, 4)
	res, err := Run(rng, x, Config{K: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Centers.Rows() != 3 {
		t.Fatalf("K should clamp to n=3, got %d", res.Centers.Rows())
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.New(10, 3)
	x.Fill(2)
	res, err := Run(rng, x, Config{K: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points should give zero inertia, got %v", res.Inertia)
	}
}

func TestGroupsPartitionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := blobs(rng, 3, 20, 5, 5, 0.4)
	res, err := Run(rng, x, Config{K: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	seen := make(map[int]bool)
	for c, g := range res.Groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("point %d in multiple groups", i)
			}
			seen[i] = true
			if res.Assign[i] != c {
				t.Fatalf("group/assign inconsistency for point %d", i)
			}
		}
	}
	if len(seen) != x.Rows() {
		t.Fatalf("groups cover %d of %d points", len(seen), x.Rows())
	}
}

func TestInertiaDecreasesVsRandomAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := blobs(rng, 4, 25, 6, 5, 0.5)
	res, err := Run(rng, x, Config{K: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Random centers give much worse inertia.
	randCenters := tensor.RandN(rng, 5, 4, 6)
	assign := make([]int, x.Rows())
	randInertia := assignPoints(x, randCenters, assign)
	if res.Inertia >= randInertia {
		t.Fatalf("kmeans inertia %v should beat random %v", res.Inertia, randInertia)
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xSep, truthSep := blobs(rng, 3, 25, 4, 8, 0.3)
	sSep := Silhouette(xSep, truthSep)
	xMix, truthMix := blobs(rng, 3, 25, 4, 0.3, 2.0) // overlapping
	sMix := Silhouette(xMix, truthMix)
	if sSep <= sMix {
		t.Fatalf("separated silhouette %v should exceed mixed %v", sSep, sMix)
	}
	if sSep < 0.5 {
		t.Fatalf("well-separated blobs should score high, got %v", sSep)
	}
}

func TestSilhouetteEdgeCases(t *testing.T) {
	if Silhouette(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty input should score 0")
	}
	one := tensor.RandN(rand.New(rand.NewSource(8)), 1, 5, 2)
	if Silhouette(one, []int{0, 0, 0, 0, 0}) != 0 {
		t.Fatal("single cluster should score 0")
	}
	// Singletons contribute zero but don't crash.
	x := tensor.MustFromSlice([]float64{0, 0, 10, 10, 20, 20}, 3, 2)
	s := Silhouette(x, []int{0, 1, 2})
	if s != 0 {
		t.Fatalf("all-singleton clustering should score 0, got %v", s)
	}
}

func TestSilhouetteRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		x := tensor.RandN(rng, 1, n, 3)
		labels := make([]int, n)
		k := 2 + rng.Intn(3)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		s := Silhouette(x, labels)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanDistanceToAssigned(t *testing.T) {
	x := tensor.MustFromSlice([]float64{0, 0, 2, 0}, 2, 2)
	centers := tensor.MustFromSlice([]float64{0, 0, 3, 0}, 2, 2)
	got := MeanDistanceToAssigned(x, centers, []int{0, 1})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean distance = %v, want 0.5", got)
	}
	if MeanDistanceToAssigned(tensor.New(0, 2), centers, nil) != 0 {
		t.Fatal("empty input should give 0")
	}
}

// Property: inertia equals the sum of squared distances implied by Assign.
func TestInertiaConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := tensor.RandN(rng, 2, n, 4)
		res, err := Run(rng, x, Config{K: 3})
		if err != nil {
			return false
		}
		var want float64
		for i := 0; i < n; i++ {
			want += tensor.SqDist(x.Row(i), res.Centers.Row(res.Assign[i]))
		}
		return math.Abs(want-res.Inertia) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
