// Package kmeans implements Lloyd's algorithm with k-means++ seeding. It is
// the clustering step Calibre uses to derive pseudo-labels for prototype
// generation (paper §IV-B, Algorithm 1 line 13).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"calibre/internal/tensor"
)

// Result holds a clustering of n points into K groups.
type Result struct {
	// Centers is the K×d centroid matrix.
	Centers *tensor.Tensor
	// Assign maps each point index to its cluster in [0, K).
	Assign []int
	// Groups lists the member point indices of each cluster.
	Groups [][]int
	// Inertia is the total within-cluster squared distance.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Config controls a Run.
type Config struct {
	K        int
	MaxIters int     // default 25
	Tol      float64 // relative inertia improvement to stop; default 1e-4
}

// Run clusters the rows of x (n×d). K is clamped to n when the batch is
// smaller than the requested number of clusters; it must be ≥1.
func Run(rng *rand.Rand, x *tensor.Tensor, cfg Config) (*Result, error) {
	n, d := x.Rows(), x.Cols()
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be ≥1, got %d", cfg.K)
	}
	if n == 0 {
		return nil, fmt.Errorf("kmeans: empty input")
	}
	k := cfg.K
	if k > n {
		k = n
	}
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 25
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-4
	}

	centers := seedPlusPlus(rng, x, k)
	assign := make([]int, n)
	counts := make([]int, k) // reused across Lloyd iterations
	prev := math.Inf(1)
	var inertia float64
	var iters int
	for iters = 1; iters <= maxIters; iters++ {
		inertia = assignPoints(x, centers, assign)
		updateCenters(rng, x, centers, assign, counts)
		if prev-inertia <= tol*math.Max(prev, 1) {
			break
		}
		prev = inertia
	}
	// Final assignment against the last centers.
	inertia = assignPoints(x, centers, assign)
	_ = d
	return &Result{Centers: centers, Assign: assign, Groups: groupMembers(assign, k, counts), Inertia: inertia, Iters: iters}, nil
}

// groupMembers inverts an assignment into per-cluster member lists, all
// sub-slices of one backing array (this runs inside training steps, so it
// avoids the per-append allocations of the naive construction). counts is
// scratch of length ≥ k and is overwritten.
func groupMembers(assign []int, k int, counts []int) [][]int {
	counts = counts[:k]
	for c := range counts {
		counts[c] = 0
	}
	for _, a := range assign {
		counts[a]++
	}
	backing := make([]int, len(assign))
	groups := make([][]int, k)
	off := 0
	for c := 0; c < k; c++ {
		groups[c] = backing[off : off : off+counts[c]]
		off += counts[c]
	}
	for i, a := range assign {
		groups[a] = append(groups[a], i)
	}
	return groups
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(rng *rand.Rand, x *tensor.Tensor, k int) *tensor.Tensor {
	n, d := x.Rows(), x.Cols()
	centers := tensor.New(k, d)
	first := rng.Intn(n)
	centers.SetRow(0, x.Row(first))
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = tensor.SqDist(x.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points identical; any choice works
		} else {
			u := rng.Float64() * total
			acc := 0.0
			for i, v := range dist {
				acc += v
				if u <= acc {
					pick = i
					break
				}
			}
		}
		centers.SetRow(c, x.Row(pick))
		for i := 0; i < n; i++ {
			if nd := tensor.SqDist(x.Row(i), centers.Row(c)); nd < dist[i] {
				dist[i] = nd
			}
		}
	}
	return centers
}

func assignPoints(x, centers *tensor.Tensor, assign []int) float64 {
	n := x.Rows()
	k := centers.Rows()
	var inertia float64
	for i := 0; i < n; i++ {
		row := x.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if d := tensor.SqDist(row, centers.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		inertia += bestD
	}
	return inertia
}

// updateCenters recomputes centroids; an empty cluster is reseeded to a
// random point so K stays constant. counts is caller-owned scratch of
// length k, overwritten on every call.
func updateCenters(rng *rand.Rand, x, centers *tensor.Tensor, assign []int, counts []int) {
	n, d := x.Rows(), x.Cols()
	k := centers.Rows()
	for c := 0; c < k; c++ {
		counts[c] = 0
	}
	centers.Zero()
	for i := 0; i < n; i++ {
		c := assign[i]
		counts[c]++
		crow := centers.Row(c)
		xrow := x.Row(i)
		for j := 0; j < d; j++ {
			crow[j] += xrow[j]
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			centers.SetRow(c, x.Row(rng.Intn(n)))
			continue
		}
		inv := 1 / float64(counts[c])
		crow := centers.Row(c)
		for j := 0; j < d; j++ {
			crow[j] *= inv
		}
	}
}

// Silhouette computes the mean silhouette coefficient of a labeled point
// set: for each point, (b-a)/max(a,b) where a is the mean intra-cluster
// distance and b the smallest mean distance to another cluster. Values near
// +1 indicate crisp, well-separated clusters; near 0, overlapping ones.
// Points in singleton clusters contribute 0. Returns 0 when fewer than two
// clusters are populated.
func Silhouette(x *tensor.Tensor, labels []int) float64 {
	n := x.Rows()
	if n == 0 {
		return 0
	}
	// Remap labels to dense group indices [0,g). This runs inside Calibre's
	// per-step regularizer, so the common case (small non-negative labels)
	// uses a lookup table and one backing array instead of a map of
	// growing slices; arbitrary label values fall back to a map.
	minL, maxL := labels[0], labels[0]
	for _, l := range labels {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	idx := make([]int, n)
	g := 0
	if span := maxL - minL + 1; span <= 4*n+16 {
		lut := make([]int, span)
		for i := range lut {
			lut[i] = -1
		}
		for i, l := range labels {
			if lut[l-minL] < 0 {
				lut[l-minL] = g
				g++
			}
			idx[i] = lut[l-minL]
		}
	} else {
		lut := make(map[int]int, n)
		for i, l := range labels {
			j, ok := lut[l]
			if !ok {
				j = g
				lut[l] = j
				g++
			}
			idx[i] = j
		}
	}
	if g < 2 {
		return 0
	}
	groups := groupMembers(idx, g, make([]int, g))
	var total float64
	for i := 0; i < n; i++ {
		li := idx[i]
		var a float64
		own := groups[li]
		if len(own) <= 1 {
			continue // silhouette defined as 0 for singletons
		}
		for _, j := range own {
			if j != i {
				a += dist(x, i, j)
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for l, members := range groups {
			if l == li {
				continue
			}
			var m float64
			for _, j := range members {
				m += dist(x, i, j)
			}
			m /= float64(len(members))
			if m < b {
				b = m
			}
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}

func dist(x *tensor.Tensor, i, j int) float64 {
	return math.Sqrt(tensor.SqDist(x.Row(i), x.Row(j)))
}

// MeanDistanceToAssigned returns the average Euclidean distance between each
// point and its assigned center. Calibre uses this quantity as the client's
// local divergence rate for aggregation weighting (paper §IV-B).
func MeanDistanceToAssigned(x, centers *tensor.Tensor, assign []int) float64 {
	n := x.Rows()
	if n == 0 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		total += math.Sqrt(tensor.SqDist(x.Row(i), centers.Row(assign[i])))
	}
	return total / float64(n)
}
