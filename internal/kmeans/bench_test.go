package kmeans

import (
	"math/rand"
	"testing"

	"calibre/internal/tensor"
)

func BenchmarkRunBatch64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandN(rng, 1, 64, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(rng, x, Config{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 1, 64, 48)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Silhouette(x, labels)
	}
}
