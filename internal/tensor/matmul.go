package tensor

import "fmt"

// The MatMul family is the hot path of every SSL forward/backward pass, so
// it comes in three layers:
//
//  1. Serial reference kernels (MatMulSerialInto and friends): the naive
//     ikj loops. They define the bit-for-bit semantics of every kernel.
//  2. Cache-blocked tile kernels (matMul*Range): the same accumulation
//     order as the references, restricted to a contiguous range of output
//     rows and tiled over blockI×blockK so the working set stays in cache.
//  3. Parallel dispatch (MatMulInto and friends): splits the output rows
//     across the shared worker pool (see pool.go). Small problems take the
//     serial reference directly, so tiny matrices never pay goroutine or
//     tiling overhead.
//
// Determinism guarantee: every output element is produced by exactly one
// goroutine, accumulating over the inner dimension in ascending order with
// a single accumulator — the same order as the serial references. Parallel
// and serial kernels therefore return bit-identical results for any worker
// count, which the property tests in matmul_test.go assert exactly (0 ULP).

const (
	// serialFLOPs is the m·k·n product below which the serial reference
	// kernel is used directly. 64×64×64 (= 1<<18) lands on the serial
	// path; 128³ and up go parallel. Compared in int64 so the product
	// cannot wrap on 32-bit architectures.
	serialFLOPs int64 = 1 << 18

	// blockI×blockK is the tile shape: blockK rows of b (or a for the
	// transposed variants) are streamed against blockI output rows, so a
	// tile of roughly blockK·n floats is reused blockI times while hot.
	blockI = 64
	blockK = 64

	// minRowsPerTask bounds how finely parallelRows may split the output,
	// keeping per-task work large enough to amortize dispatch.
	minRowsPerTask = 8
)

// MatMul returns the matrix product a (m×k) by b (k×n) as a new m×n tensor.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Dims() != 2 || b.Dims() != 2 {
		return nil, fmt.Errorf("%w: MatMul needs 2-D operands, got %v and %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2)
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out, nil
}

// MatMulInto computes out = a·b assuming shapes are already compatible.
// It is the allocation-free core used by MatMul and by the autograd backward
// passes. out must not alias a or b. Results are bit-identical to
// MatMulSerialInto for any worker-pool size.
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if int64(m)*int64(k)*int64(n) <= serialFLOPs || m < 2*minRowsPerTask || Workers() == 1 {
		MatMulSerialInto(out, a, b)
		return
	}
	parallelRows(m, minRowsPerTask, func(lo, hi int) {
		matMulRange(out, a, b, lo, hi)
	})
}

// MatMulTransAInto computes out = aᵀ·b where a is (k×m), b is (k×n),
// out is (m×n). Used by Linear backward for weight gradients. Results are
// bit-identical to MatMulTransASerialInto for any worker-pool size.
func MatMulTransAInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if int64(k)*int64(m)*int64(n) <= serialFLOPs || m < 2*minRowsPerTask || Workers() == 1 {
		MatMulTransASerialInto(out, a, b)
		return
	}
	parallelRows(m, minRowsPerTask, func(lo, hi int) {
		matMulTransARange(out, a, b, lo, hi)
	})
}

// MatMulTransBInto computes out = a·bᵀ where a is (m×k), b is (n×k),
// out is (m×n). Used by Linear backward for input gradients. Results are
// bit-identical to MatMulTransBSerialInto for any worker-pool size.
func MatMulTransBInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if int64(m)*int64(k)*int64(n) <= serialFLOPs || m < 2*minRowsPerTask || Workers() == 1 {
		MatMulTransBSerialInto(out, a, b)
		return
	}
	parallelRows(m, minRowsPerTask, func(lo, hi int) {
		matMulTransBRange(out, a, b, lo, hi)
	})
}

// --- Serial references ------------------------------------------------------

// MatMulSerialInto is the single-threaded reference for MatMulInto. It is
// exported so benchmarks and property tests can compare the parallel kernels
// against it; production code should call MatMulInto.
func MatMulSerialInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out.Zero()
	// ikj loop order: stream through b rows for cache friendliness.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransASerialInto is the single-threaded reference for
// MatMulTransAInto.
func MatMulTransASerialInto(out, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	out.Zero()
	for p := 0; p < k; p++ {
		arow := a.data[p*m : (p+1)*m]
		brow := b.data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransBSerialInto is the single-threaded reference for
// MatMulTransBInto.
func MatMulTransBSerialInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
}

// --- Cache-blocked tile kernels ---------------------------------------------

// matMulRange computes rows [lo, hi) of out = a·b, tiled blockI×blockK.
// For each output element the inner dimension is accumulated in ascending
// order (tiles ascend, and p ascends within a tile), matching the serial
// reference bit for bit.
func matMulRange(out, a, b *Tensor, lo, hi int) {
	k := a.shape[1]
	n := b.shape[1]
	for i0 := lo; i0 < hi; i0 += blockI {
		i1 := min(i0+blockI, hi)
		for i := i0; i < i1; i++ {
			clear(out.data[i*n : (i+1)*n])
		}
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			for i := i0; i < i1; i++ {
				arow := a.data[i*k : (i+1)*k]
				orow := out.data[i*n : (i+1)*n]
				for p := p0; p < p1; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := b.data[p*n : (p+1)*n]
					for j := 0; j < n; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransARange computes rows [lo, hi) of out = aᵀ·b (a is k×m).
func matMulTransARange(out, a, b *Tensor, lo, hi int) {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	for i := lo; i < hi; i++ {
		clear(out.data[i*n : (i+1)*n])
	}
	for i0 := lo; i0 < hi; i0 += blockI {
		i1 := min(i0+blockI, hi)
		for p0 := 0; p0 < k; p0 += blockK {
			p1 := min(p0+blockK, k)
			for p := p0; p < p1; p++ {
				arow := a.data[p*m : (p+1)*m]
				brow := b.data[p*n : (p+1)*n]
				for i := i0; i < i1; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					orow := out.data[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransBRange computes rows [lo, hi) of out = a·bᵀ (b is n×k). Each
// dot product keeps a single accumulator over ascending p, exactly like the
// serial reference; tiling only reorders which (i, j) cells are visited.
func matMulTransBRange(out, a, b *Tensor, lo, hi int) {
	k := a.shape[1]
	n := b.shape[0]
	for i0 := lo; i0 < hi; i0 += blockI {
		i1 := min(i0+blockI, hi)
		for j := 0; j < n; j++ {
			brow := b.data[j*k : (j+1)*k]
			for i := i0; i < i1; i++ {
				arow := a.data[i*k : (i+1)*k]
				var s float64
				for p := 0; p < k; p++ {
					s += arow[p] * brow[p]
				}
				out.data[i*n+j] = s
			}
		}
	}
}
