package tensor_test

import (
	"fmt"

	"calibre/internal/tensor"
)

// ExampleMatMul multiplies a 2×3 matrix by a 3×2 matrix. The kernel is
// cache-blocked and (for large products) parallel, but its results are
// bit-identical to the serial reference for any worker count.
func ExampleMatMul() {
	a, _ := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	b, _ := tensor.FromSlice([]float64{
		7, 8,
		9, 10,
		11, 12,
	}, 3, 2)
	c, err := tensor.MatMul(a, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(c.At(0, 0), c.At(0, 1))
	fmt.Println(c.At(1, 0), c.At(1, 1))
	// Output:
	// 58 64
	// 139 154
}
