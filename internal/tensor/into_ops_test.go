package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func dirty(shape ...int) *Tensor {
	t := New(shape...)
	for i, d := 0, t.Data(); i < len(d); i++ {
		d[i] = math.NaN() // any surviving element is caught by bit compare
	}
	return t
}

func bitsEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	g, w := got.Data(), want.Data()
	if len(g) != len(w) {
		t.Fatalf("%s: length %d vs %d", name, len(g), len(w))
	}
	for i := range g {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: element %d = %v, want %v", name, i, g[i], w[i])
		}
	}
}

// TestIntoOpsMatchAllocatingOps pins the arena precondition: every *Into
// kernel overwrites every destination element (dirty buffers are fine) and
// is bit-identical to its allocating counterpart.
func TestIntoOpsMatchAllocatingOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandN(rng, 1, 4, 5)
	b := RandN(rng, 2, 4, 5)

	check := func(name string, alloc func() (*Tensor, error), into func(dst *Tensor) error) {
		t.Helper()
		want, err := alloc()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := dirty(want.Shape()...)
		if err := into(dst); err != nil {
			t.Fatalf("%sInto: %v", name, err)
		}
		bitsEqual(t, name, dst, want)
	}

	check("Add", func() (*Tensor, error) { return Add(a, b) },
		func(dst *Tensor) error { return AddInto(dst, a, b) })
	check("Sub", func() (*Tensor, error) { return Sub(a, b) },
		func(dst *Tensor) error { return SubInto(dst, a, b) })
	check("Mul", func() (*Tensor, error) { return Mul(a, b) },
		func(dst *Tensor) error { return MulInto(dst, a, b) })
	check("Scale", func() (*Tensor, error) { return Scale(a, -1.75), nil },
		func(dst *Tensor) error { return ScaleInto(dst, a, -1.75) })
	sq := func(v float64) float64 { return v * v }
	check("Apply", func() (*Tensor, error) { return Apply(a, sq), nil },
		func(dst *Tensor) error { return ApplyInto(dst, a, sq) })
	check("Transpose", func() (*Tensor, error) { return Transpose(a) },
		func(dst *Tensor) error { return TransposeInto(dst, a) })
	v := []float64{1, -2, 3, -4, 5}
	check("AddRowVec", func() (*Tensor, error) { return AddRowVec(a, v) },
		func(dst *Tensor) error { return AddRowVecInto(dst, a, v) })
	check("L2NormalizeRows", func() (*Tensor, error) { return L2NormalizeRows(a, 1e-8), nil },
		func(dst *Tensor) error { return L2NormalizeRowsInto(dst, a, 1e-8) })
}

// TestIntoOpsAliasing pins that element-wise Into kernels accept dst
// aliasing an operand — the fused kernels rely on in-place updates.
func TestIntoOpsAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := RandN(rng, 1, 3, 3)
	b := RandN(rng, 2, 3, 3)
	want, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	dst := a.Clone()
	if err := AddInto(dst, dst, b); err != nil {
		t.Fatalf("AddInto aliased: %v", err)
	}
	bitsEqual(t, "Add aliased", dst, want)

	want = Scale(b, 0.5)
	dst = b.Clone()
	if err := ScaleInto(dst, dst, 0.5); err != nil {
		t.Fatalf("ScaleInto aliased: %v", err)
	}
	bitsEqual(t, "Scale aliased", dst, want)
}

func TestIntoOpsShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	if err := AddInto(New(2, 3), a, b); err == nil {
		t.Fatal("AddInto shape mismatch must error")
	}
	if err := AddInto(New(3, 2), a, a); err == nil {
		t.Fatal("AddInto dst shape mismatch must error")
	}
	if err := TransposeInto(New(2, 3), a); err == nil {
		t.Fatal("TransposeInto dst shape mismatch must error")
	}
	if err := AddRowVecInto(New(2, 3), a, []float64{1, 2}); err == nil {
		t.Fatal("AddRowVecInto wrong vector length must error")
	}
}
