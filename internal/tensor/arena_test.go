package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestArenaGetZeroedAndReused pins the two properties the hot path relies
// on: a Get after a Put of the same length is served from the free list,
// and the recycled buffer comes back fully zeroed (make-equivalent, the
// bit-identity precondition).
func TestArenaGetZeroedAndReused(t *testing.T) {
	a := NewArena()
	buf := a.Get(8)
	for i := range buf {
		buf[i] = float64(i) + 0.5 // dirty it
	}
	a.Put(buf)
	got := a.Get(8)
	if &got[0] != &buf[0] {
		t.Fatal("Get after Put of same length did not reuse the buffer")
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled buffer element %d = %v, want 0", i, v)
		}
	}
	st := a.Stats()
	if st.Gets != 2 || st.Hits != 1 || st.Puts != 1 || st.Outstanding != 1 {
		t.Fatalf("stats = %+v, want Gets 2 Hits 1 Puts 1 Outstanding 1", st)
	}
	// Different length misses the free list.
	other := a.Get(4)
	if len(other) != 4 {
		t.Fatalf("Get(4) length = %d", len(other))
	}
	if got := a.Stats(); got.Hits != 1 {
		t.Fatalf("Get of unseen length counted as hit: %+v", got)
	}
}

func TestArenaPutMisusePanics(t *testing.T) {
	a := NewArena()

	buf := a.Get(6)
	a.Put(buf)
	mustPanic(t, "double Put", func() { a.Put(buf) })

	mustPanic(t, "foreign-slice Put", func() { a.Put(make([]float64, 6)) })

	b := NewArena()
	foreign := b.Get(6)
	mustPanic(t, "Put of another arena's buffer", func() { a.Put(foreign) })

	sliced := a.Get(6)
	mustPanic(t, "re-sliced Put", func() { a.Put(sliced[:3]) })
	a.Put(sliced) // full-length return still works after the failed attempt
}

// TestArenaNilIsPlainMake pins the opt-in contract: every method on a nil
// arena degrades to heap allocation and no-ops, so callers never branch.
func TestArenaNilIsPlainMake(t *testing.T) {
	var a *Arena
	buf := a.Get(5)
	if len(buf) != 5 {
		t.Fatalf("nil arena Get(5) length = %d", len(buf))
	}
	a.Put(buf) // no-op, must not panic
	tt := a.GetTensor(2, 3)
	if tt.Rows() != 2 || tt.Cols() != 3 {
		t.Fatalf("nil arena GetTensor shape = %v", tt.Shape())
	}
	like := a.GetTensorLike(tt)
	if like.Rows() != 2 || like.Cols() != 3 {
		t.Fatalf("nil arena GetTensorLike shape = %v", like.Shape())
	}
	a.PutTensor(tt)
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil arena stats = %+v", st)
	}
}

func TestArenaTensorRoundTrip(t *testing.T) {
	a := NewArena()
	x := a.GetTensor(3, 4)
	if x.Rows() != 3 || x.Cols() != 4 {
		t.Fatalf("GetTensor shape = %v", x.Shape())
	}
	x.Data()[0] = 42
	a.PutTensor(x)
	y := a.GetTensorLike(New(3, 4))
	if y.Data()[0] != 0 {
		t.Fatal("recycled tensor not zeroed")
	}
	if a.Stats().Outstanding != 1 {
		t.Fatalf("outstanding = %d, want 1", a.Stats().Outstanding)
	}
	a.PutTensor(y)
	a.PutTensor(nil) // nil tensor is a no-op
}

// TestArenaConcurrent hammers one shared arena from several goroutines;
// under -race this pins the mutex discipline workers rely on when they
// share an arena (but never a tape).
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				n := 1 + rng.Intn(16)
				buf := a.Get(n)
				for j := range buf {
					buf[j] = float64(j)
				}
				a.Put(buf)
			}
		}(int64(g))
	}
	wg.Wait()
	st := a.Stats()
	if st.Outstanding != 0 {
		t.Fatalf("outstanding = %d after all Puts", st.Outstanding)
	}
	if st.Gets != 8*200 || st.Puts != 8*200 {
		t.Fatalf("stats = %+v, want 1600 gets/puts", st)
	}
}
