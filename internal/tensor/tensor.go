// Package tensor implements dense row-major float64 tensors and the linear
// algebra kernels used by the neural-network substrate in internal/nn.
//
// Tensors are deliberately simple: a shape and a flat backing slice. All
// operations are implemented on the standard library only. Two-dimensional
// tensors (matrices) are the workhorse; a handful of helpers exist for 1-D
// vectors. Operations either allocate a fresh result or, when suffixed with
// Into, write into a caller-provided destination to avoid allocation in hot
// loops.
//
// # Parallel kernels
//
// The MatMul family (MatMulInto, MatMulTransAInto, MatMulTransBInto) is
// cache-blocked and goroutine-parallel: large products are tiled and their
// output rows split across a package-level worker pool (see matmul.go and
// pool.go). The pool is shared by every kernel call in the process and is
// sized by GOMAXPROCS, overridable with SetWorkers or the
// CALIBRE_KERNEL_WORKERS environment variable — so caller-level concurrency
// (for example internal/fl training many clients at once) composes with
// kernel parallelism without oversubscribing the CPU. Products below a size
// threshold run the serial reference kernels directly.
//
// # Determinism
//
// Parallel kernels are bit-for-bit identical to the serial references
// (MatMulSerialInto and friends) for any worker count: each output element
// is produced by exactly one goroutine, reducing over the inner dimension
// in the same fixed order as the serial code. Changing worker counts never
// changes results. (Across different architectures the usual Go caveat
// applies — the compiler may fuse multiply-adds, so bit-identity is
// guaranteed per build, not between, say, amd64 and arm64 binaries.)
package tensor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operands have
// incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative; a zero-dimension tensor is valid
// and has no elements.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// NewLike returns a zero-filled tensor with t's shape. The shape slice is
// shared with t — shapes are immutable after construction (Reshape allocates
// a fresh one), so sharing is safe and avoids the per-tensor shape copy.
func NewLike(t *Tensor) *Tensor {
	return &Tensor{shape: t.shape, data: make([]float64, len(t.data))}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it must have exactly as many elements as the shape
// implies.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension %d", ErrShape, d)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v (need %d)", ErrShape, len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice but panics on error. Intended for tests and
// literals where the shape is statically correct.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same backing
// data. The element count must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elems) to %v (%d elems)", ErrShape, t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// At returns the element at the given (row-major) indices of a 2-D tensor.
func (t *Tensor) At(i, j int) float64 {
	return t.data[i*t.shape[1]+j]
}

// Set assigns the element at (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float64) {
	t.data[i*t.shape[1]+j] = v
}

// Row returns the i-th row of a 2-D tensor as a slice view (not a copy).
func (t *Tensor) Row(i int) []float64 {
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// SetRow copies v into row i of a 2-D tensor.
func (t *Tensor) SetRow(i int, v []float64) {
	copy(t.Row(i), v)
}

// Rows returns the number of rows of a 2-D tensor (shape[0]).
func (t *Tensor) Rows() int { return t.shape[0] }

// Cols returns the number of columns of a 2-D tensor (shape[1]).
func (t *Tensor) Cols() int { return t.shape[1] }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	b.WriteString("Tensor")
	b.WriteString(fmt.Sprintf("%v", t.shape))
	if len(t.data) <= 64 {
		b.WriteByte('[')
		for i, v := range t.data {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', 4, 64))
		}
		b.WriteByte(']')
	} else {
		b.WriteString(fmt.Sprintf("(%d elems)", len(t.data)))
	}
	return b.String()
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// RandN fills a new tensor of the given shape with samples from
// N(0, std^2) drawn from rng.
func RandN(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with samples from U(lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// --- Elementwise ----------------------------------------------------------

// Add returns a + b elementwise.
func Add(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("%w: Add %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("%w: Sub %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) (*Tensor, error) {
	if !SameShape(a, b) {
		return nil, fmt.Errorf("%w: Mul %v vs %v", ErrShape, a.shape, b.shape)
	}
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out, nil
}

// Scale returns a*s elementwise.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// AddScaled computes dst += s*src in place. Shapes must match.
func AddScaled(dst, src *Tensor, s float64) error {
	if !SameShape(dst, src) {
		return fmt.Errorf("%w: AddScaled %v vs %v", ErrShape, dst.shape, src.shape)
	}
	for i := range dst.data {
		dst.data[i] += s * src.data[i]
	}
	return nil
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// --- Into variants ----------------------------------------------------------
//
// The Into forms write into a caller-provided destination (typically borrowed
// from an Arena) instead of allocating. Every destination element is
// overwritten, so dirty buffers are fine. Unless noted, dst may alias an
// operand.

// AddInto computes dst = a + b elementwise. All three shapes must match.
func AddInto(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: AddInto %v = %v + %v", ErrShape, dst.shape, a.shape, b.shape)
	}
	for i := range a.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
	return nil
}

// SubInto computes dst = a - b elementwise. All three shapes must match.
func SubInto(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: SubInto %v = %v - %v", ErrShape, dst.shape, a.shape, b.shape)
	}
	for i := range a.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
	return nil
}

// MulInto computes the elementwise product dst = a * b. Shapes must match.
func MulInto(dst, a, b *Tensor) error {
	if !SameShape(a, b) || !SameShape(dst, a) {
		return fmt.Errorf("%w: MulInto %v = %v * %v", ErrShape, dst.shape, a.shape, b.shape)
	}
	for i := range a.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
	return nil
}

// ScaleInto computes dst = a*s elementwise. Shapes must match.
func ScaleInto(dst, a *Tensor, s float64) error {
	if !SameShape(dst, a) {
		return fmt.Errorf("%w: ScaleInto %v = %v * scalar", ErrShape, dst.shape, a.shape)
	}
	for i := range a.data {
		dst.data[i] = a.data[i] * s
	}
	return nil
}

// ApplyInto computes dst = f(a) elementwise. Shapes must match.
func ApplyInto(dst, a *Tensor, f func(float64) float64) error {
	if !SameShape(dst, a) {
		return fmt.Errorf("%w: ApplyInto %v = f(%v)", ErrShape, dst.shape, a.shape)
	}
	for i := range a.data {
		dst.data[i] = f(a.data[i])
	}
	return nil
}

// --- Matrix ops ------------------------------------------------------------

// The MatMul family lives in matmul.go: parallel cache-blocked kernels with
// exported serial references and a bit-for-bit determinism guarantee.

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) (*Tensor, error) {
	if a.Dims() != 2 {
		return nil, fmt.Errorf("%w: Transpose needs 2-D operand, got %v", ErrShape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// AddRowVec adds vector v (length n) to every row of a (m×n), returning a
// new tensor. This is broadcast bias addition.
func AddRowVec(a *Tensor, v []float64) (*Tensor, error) {
	if a.Dims() != 2 || a.shape[1] != len(v) {
		return nil, fmt.Errorf("%w: AddRowVec %v vs vec(%d)", ErrShape, a.shape, len(v))
	}
	out := New(a.shape...)
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = arow[j] + v[j]
		}
	}
	return out, nil
}

// TransposeInto writes the transpose of 2-D tensor a into dst (shape n×m for
// an m×n operand). dst must not alias a.
func TransposeInto(dst, a *Tensor) error {
	if a.Dims() != 2 || dst.Dims() != 2 || dst.shape[0] != a.shape[1] || dst.shape[1] != a.shape[0] {
		return fmt.Errorf("%w: TransposeInto %v = (%v)^T", ErrShape, dst.shape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.data[j*m+i] = a.data[i*n+j]
		}
	}
	return nil
}

// AddRowVecInto computes dst = a + v broadcast over rows (bias addition)
// without allocating. dst may alias a.
func AddRowVecInto(dst, a *Tensor, v []float64) error {
	if a.Dims() != 2 || !SameShape(dst, a) || a.shape[1] != len(v) {
		return fmt.Errorf("%w: AddRowVecInto %v = %v + vec(%d)", ErrShape, dst.shape, a.shape, len(v))
	}
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = arow[j] + v[j]
		}
	}
	return nil
}

// --- Reductions ------------------------------------------------------------

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ColMeans returns the per-column mean of a 2-D tensor as a length-n slice.
func (t *Tensor) ColMeans() []float64 {
	m, n := t.shape[0], t.shape[1]
	out := make([]float64, n)
	if m == 0 {
		return out
	}
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			out[j] += row[j]
		}
	}
	inv := 1.0 / float64(m)
	for j := range out {
		out[j] *= inv
	}
	return out
}

// RowSums returns the per-row sum of a 2-D tensor.
func (t *Tensor) RowSums() []float64 {
	m, n := t.shape[0], t.shape[1]
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		row := t.data[i*n : (i+1)*n]
		var s float64
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}

// --- Row-wise vector math used by SSL losses --------------------------------

// L2NormalizeRows returns a copy of a 2-D tensor whose rows are scaled to
// unit Euclidean norm. Rows with norm below eps are left unchanged.
func L2NormalizeRows(a *Tensor, eps float64) *Tensor {
	out := New(a.shape[0], a.shape[1])
	if err := L2NormalizeRowsInto(out, a, eps); err != nil {
		panic(err) // unreachable: shapes match by construction
	}
	return out
}

// L2NormalizeRowsInto writes row-normalized a into dst. dst may alias a.
func L2NormalizeRowsInto(dst, a *Tensor, eps float64) error {
	if a.Dims() != 2 || !SameShape(dst, a) {
		return fmt.Errorf("%w: L2NormalizeRowsInto %v = norm(%v)", ErrShape, dst.shape, a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var ss float64
		for _, v := range row {
			ss += v * v
		}
		norm := math.Sqrt(ss)
		orow := dst.data[i*n : (i+1)*n]
		if norm < eps {
			copy(orow, row)
			continue
		}
		inv := 1 / norm
		for j, v := range row {
			orow[j] = v * inv
		}
	}
	return nil
}

// Dot returns the dot product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	return math.Sqrt(ss)
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// CosineSim returns the cosine similarity of a and b (0 when either is a
// zero vector).
func CosineSim(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Softmax writes the softmax of src into dst (they may alias). It is
// numerically stabilized by max subtraction.
func Softmax(dst, src []float64) {
	if len(src) == 0 {
		return
	}
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(v_i)), stabilized.
func LogSumExp(v []float64) float64 {
	if len(v) == 0 {
		return math.Inf(-1)
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for _, x := range v {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// ArgMax returns the index of the largest element of v (-1 for empty v).
func ArgMax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Stack builds an (m×n) tensor from m rows each of length n.
func Stack(rows [][]float64) (*Tensor, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	n := len(rows[0])
	out := New(len(rows), n)
	for i, r := range rows {
		if len(r) != n {
			return nil, fmt.Errorf("%w: Stack row %d has length %d, want %d", ErrShape, i, len(r), n)
		}
		copy(out.Row(i), r)
	}
	return out, nil
}
