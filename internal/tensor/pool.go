package tensor

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvKernelWorkers is the environment variable that overrides the default
// size of the shared kernel worker pool. It is read once, when the pool is
// first used; SetWorkers takes precedence at any time.
const EnvKernelWorkers = "CALIBRE_KERNEL_WORKERS"

// The package keeps one long-lived worker pool shared by every kernel
// invocation in the process. Sharing one pool is what keeps kernel
// parallelism composable with caller-level concurrency (internal/fl runs
// many clients at once): kernel tiles run on at most Workers() pool
// goroutines plus the callers themselves (each caller executes one chunk
// of its own product inline), so N concurrent callers produce about
// N + Workers() kernel goroutines — not N × Workers() as per-call pools
// would.
var (
	poolMu sync.RWMutex
	pool   *workerPool
	// workerCount mirrors pool.n (0 until the pool first exists) so the
	// serial fast path in every kernel can read the size with one atomic
	// load instead of bouncing poolMu's cache line on each tiny product.
	workerCount atomic.Int32
)

type workerPool struct {
	n     int
	tasks chan func()
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, tasks: make(chan func(), 4*n)}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

func defaultWorkers() int {
	if s := os.Getenv(EnvKernelWorkers); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers resizes the shared kernel pool to n workers. n < 1 resets to
// the default (CALIBRE_KERNEL_WORKERS if set, else GOMAXPROCS). It blocks
// until in-flight kernels finish, so it is safe to call concurrently with
// kernel use; prefer calling it once at startup or between training stages.
func SetWorkers(n int) {
	if n < 1 {
		n = defaultWorkers()
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if pool != nil {
		if pool.n == n {
			return
		}
		close(pool.tasks) // idle workers exit; in-flight tasks finished under the write lock
	}
	pool = newWorkerPool(n)
	workerCount.Store(int32(n))
}

// Workers returns the current size of the shared kernel pool (the size it
// will have on first use, if no kernel has run yet). This is a single
// atomic load on the hot path.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return defaultWorkers()
}

func ensurePool() {
	if workerCount.Load() > 0 {
		return
	}
	poolMu.Lock()
	if pool == nil {
		pool = newWorkerPool(defaultWorkers())
		workerCount.Store(int32(pool.n))
	}
	poolMu.Unlock()
}

// ParallelRanges splits [0, n) into at most Workers() contiguous chunks of
// at least minChunk elements and runs fn on every chunk — the exported form
// of the decomposition the kernels use, for shard-parallel reductions
// outside this package (internal/param dispatches the fl aggregators'
// element-range sweeps through it). fn must touch only its own [lo, hi)
// range; chunk boundaries are deterministic, and the first chunk runs on
// the calling goroutine.
func ParallelRanges(n, minChunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minChunk < 1 {
		minChunk = 1
	}
	parallelRows(n, minChunk, fn)
}

// parallelRows splits [0, m) into at most Workers() contiguous chunks of at
// least minChunk rows each and runs fn on every chunk, executing the first
// chunk on the calling goroutine and the rest on the shared pool. fn must
// touch only its own row range, which makes the decomposition deterministic:
// every output element is produced by exactly one invocation, in the same
// order as a serial sweep.
func parallelRows(m, minChunk int, fn func(lo, hi int)) {
	ensurePool()
	poolMu.RLock()
	defer poolMu.RUnlock()
	chunks := pool.n
	if maxChunks := m / minChunk; chunks > maxChunks {
		chunks = maxChunks
	}
	if chunks <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks - 1)
	base, rem := m/chunks, m%chunks
	// Chunk c covers base rows, the first rem chunks one extra.
	hi := 0
	for c := 0; c < chunks; c++ {
		lo := hi
		hi = lo + base
		if c < rem {
			hi++
		}
		if c == 0 {
			continue // saved for the caller, run after all submissions
		}
		lo, hi := lo, hi
		pool.tasks <- func() {
			defer wg.Done()
			fn(lo, hi)
		}
	}
	first := base
	if rem > 0 {
		first++
	}
	fn(0, first)
	wg.Wait()
}
