package tensor

import (
	"fmt"
	"sync"
)

// Arena is an explicit free-list allocator for float64 buffers, used to make
// training hot loops allocation-free. Borrow a buffer with Get (or a whole
// tensor with GetTensor), return it with Put/PutTensor; returned buffers are
// recycled by later Gets of the same length.
//
// Semantics are identical to make([]float64, n): Get always returns a zeroed
// buffer, so code paths are bit-identical whether or not an arena is in use.
//
// Ownership rules:
//
//   - A borrowed buffer is owned by the borrower until Put; the arena never
//     touches it in between.
//   - Put panics on misuse — returning a slice the arena did not hand out,
//     returning it twice, or returning it at the wrong length. Misuse is a
//     programming error, not a recoverable condition.
//   - After Put the buffer must not be read or written; it may be re-handed
//     to any later Get.
//
// All methods are safe for concurrent use (a single mutex guards the free
// lists), and all methods are nil-receiver-safe: a nil *Arena degrades to
// plain make/garbage-collection, so arena use is strictly opt-in.
type Arena struct {
	mu       sync.Mutex
	free     map[int][][]float64 // exact length -> free buffers
	borrowed map[*float64]int    // &buf[0] -> length, for misuse detection
	hdrs     []*Tensor           // recycled tensor headers (shape/data rebound on reuse)
	stats    ArenaStats
}

// ArenaStats is a snapshot of arena traffic, for tests and benchmarks.
type ArenaStats struct {
	Gets        int64 // calls to Get (and GetTensor)
	Hits        int64 // Gets served from the free list instead of make
	Puts        int64 // calls to Put (and PutTensor)
	Outstanding int64 // borrowed buffers not yet returned
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		free:     make(map[int][][]float64),
		borrowed: make(map[*float64]int),
	}
}

// Get borrows a zeroed buffer of length n, reusing a previously Put buffer
// of the same length when one is free. On a nil arena it is plain make.
func (a *Arena) Get(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	if n == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Gets++
	var buf []float64
	if list := a.free[n]; len(list) > 0 {
		buf = list[len(list)-1]
		a.free[n] = list[:len(list)-1]
		a.stats.Hits++
		clear(buf)
	} else {
		buf = make([]float64, n)
	}
	a.borrowed[&buf[0]] = n
	a.stats.Outstanding++
	return buf
}

// Put returns a buffer previously obtained from Get. It panics if buf was
// not borrowed from this arena, was already returned, or was re-sliced to a
// different length. On a nil arena (or a nil/empty buffer) it is a no-op.
func (a *Arena) Put(buf []float64) {
	if a == nil || len(buf) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	key := &buf[0]
	n, ok := a.borrowed[key]
	if !ok {
		panic("tensor: Arena.Put of a buffer not borrowed from this arena (foreign slice or double Put)")
	}
	if n != len(buf) {
		panic(fmt.Sprintf("tensor: Arena.Put of re-sliced buffer: borrowed length %d, returned length %d", n, len(buf)))
	}
	delete(a.borrowed, key)
	a.free[n] = append(a.free[n], buf)
	a.stats.Puts++
	a.stats.Outstanding--
}

// GetTensor borrows a zeroed tensor of the given shape from the arena. On a
// nil arena it is equivalent to New.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return a.wrap(append([]int(nil), shape...), a.Get(n))
}

// GetTensorLike borrows a zeroed tensor with t's shape. The shape slice is
// shared with t (shapes are immutable after construction), so on a free-list
// hit the borrow allocates nothing at all — header and data are both
// recycled.
func (a *Arena) GetTensorLike(t *Tensor) *Tensor {
	if a == nil {
		return NewLike(t)
	}
	return a.wrap(t.shape, a.Get(len(t.data)))
}

// wrap binds shape and data to a recycled tensor header when one is free.
// Shape slices are never mutated (they may be shared with live tensors);
// only the header struct is reused.
func (a *Arena) wrap(shape []int, data []float64) *Tensor {
	a.mu.Lock()
	if n := len(a.hdrs); n > 0 {
		t := a.hdrs[n-1]
		a.hdrs[n-1] = nil
		a.hdrs = a.hdrs[:n-1]
		a.mu.Unlock()
		t.shape, t.data = shape, data
		return t
	}
	a.mu.Unlock()
	return &Tensor{shape: shape, data: data}
}

// PutTensor returns a tensor borrowed with GetTensor/GetTensorLike. The
// tensor (and any view of its data) must not be used afterwards — its
// header is recycled for a later Get and rebound to different storage.
// Same misuse panics as Put; no-op on a nil arena.
func (a *Arena) PutTensor(t *Tensor) {
	if a == nil || t == nil {
		return
	}
	if len(t.data) == 0 {
		return // zero-size tensors carry no borrow record; leave the header alone
	}
	a.Put(t.data) // panics on misuse before the header is recycled
	a.mu.Lock()
	t.data = nil // any use-after-release now fails loudly on the nil data
	a.hdrs = append(a.hdrs, t)
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
