package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// forceWorkers pins the shared pool to n workers for the duration of the
// test, restoring the default afterwards.
func forceWorkers(t testing.TB, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

// randMat draws an m×n matrix whose entries mix ordinary values, exact
// zeros (exercising the skip-zero fast path) and the occasional special
// value, so bitwise comparisons cover the edge cases that tolerance-based
// comparisons would hide.
func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(m, n)
	d := t.Data()
	for i := range d {
		switch rng.Intn(12) {
		case 0:
			d[i] = 0
		case 1:
			d[i] = math.Inf(1)
		case 2:
			d[i] = math.SmallestNonzeroFloat64
		default:
			d[i] = rng.NormFloat64()
		}
	}
	return t
}

func bitwiseEqual(a, b *Tensor) bool {
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if math.Float64bits(ad[i]) != math.Float64bits(bd[i]) {
			return false
		}
	}
	return true
}

// runForced runs the blocked range kernel for op over the pool with the
// given row count, forcing parallel decomposition regardless of problem
// size (minChunk 1 allows maximal splitting).
func runForced(op func(out, a, b *Tensor, lo, hi int), out, a, b *Tensor, rows int) {
	parallelRows(rows, 1, func(lo, hi int) { op(out, a, b, lo, hi) })
}

// TestParallelKernelsMatchSerialBitwise is the core determinism property:
// for random shapes (including ragged ones nowhere near multiples of the
// 64-wide tiles) the blocked parallel kernels must reproduce the serial
// references exactly — 0 ULP, special values included.
func TestParallelKernelsMatchSerialBitwise(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(11))
	prop := func(mSeed, kSeed, nSeed uint16) bool {
		m := 1 + int(mSeed)%97
		k := 1 + int(kSeed)%97
		n := 1 + int(nSeed)%97

		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want, got := New(m, n), New(m, n)
		MatMulSerialInto(want, a, b)
		runForced(matMulRange, got, a, b, m)
		if !bitwiseEqual(want, got) {
			t.Logf("MatMul mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		at := randMat(rng, k, m) // (k×m) for aᵀ·b
		MatMulTransASerialInto(want, at, b)
		runForced(matMulTransARange, got, at, b, m)
		if !bitwiseEqual(want, got) {
			t.Logf("MatMulTransA mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		bt := randMat(rng, n, k) // (n×k) for a·bᵀ
		MatMulTransBSerialInto(want, a, bt)
		runForced(matMulTransBRange, got, a, bt, m)
		if !bitwiseEqual(want, got) {
			t.Logf("MatMulTransB mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelKernelsRaggedTileEdges pins down shapes that straddle the
// blockI/blockK tile boundaries (one less, exact, one more), where an
// off-by-one in the range math would corrupt edge rows or columns.
func TestParallelKernelsRaggedTileEdges(t *testing.T) {
	forceWorkers(t, 3)
	rng := rand.New(rand.NewSource(12))
	sizes := []int{1, 7, blockI - 1, blockI, blockI + 1, 2*blockK + 17}
	for _, m := range sizes {
		for _, k := range sizes {
			for _, n := range []int{1, blockI - 1, blockI + 1} {
				a := randMat(rng, m, k)
				b := randMat(rng, k, n)
				want, got := New(m, n), New(m, n)
				MatMulSerialInto(want, a, b)
				runForced(matMulRange, got, a, b, m)
				if !bitwiseEqual(want, got) {
					t.Fatalf("MatMul mismatch at m=%d k=%d n=%d", m, k, n)
				}
			}
		}
	}
}

// TestPublicKernelsMatchSerial drives the public entry points (which pick
// serial or parallel paths themselves) across the size threshold.
func TestPublicKernelsMatchSerial(t *testing.T) {
	forceWorkers(t, 4)
	rng := rand.New(rand.NewSource(13))
	for _, size := range []struct{ m, k, n int }{
		{4, 5, 6},       // tiny: serial fast path
		{64, 64, 64},    // exactly at the serial threshold
		{80, 70, 90},    // above threshold, ragged
		{130, 129, 131}, // above threshold, straddling tiles
	} {
		a := randMat(rng, size.m, size.k)
		b := randMat(rng, size.k, size.n)
		want, got := New(size.m, size.n), New(size.m, size.n)
		MatMulSerialInto(want, a, b)
		MatMulInto(got, a, b)
		if !bitwiseEqual(want, got) {
			t.Fatalf("MatMulInto mismatch at %+v", size)
		}

		at := randMat(rng, size.k, size.m)
		MatMulTransASerialInto(want, at, b)
		MatMulTransAInto(got, at, b)
		if !bitwiseEqual(want, got) {
			t.Fatalf("MatMulTransAInto mismatch at %+v", size)
		}

		bt := randMat(rng, size.n, size.k)
		MatMulTransBSerialInto(want, a, bt)
		MatMulTransBInto(got, a, bt)
		if !bitwiseEqual(want, got) {
			t.Fatalf("MatMulTransBInto mismatch at %+v", size)
		}
	}
}

// TestSharedPoolConcurrentUse hammers the shared pool from many caller
// goroutines at once — the shape of load internal/fl generates when several
// clients train concurrently — and checks every result bitwise. Run under
// -race this also proves the pool itself is data-race free.
func TestSharedPoolConcurrentUse(t *testing.T) {
	forceWorkers(t, 3)
	rng := rand.New(rand.NewSource(14))
	const m, k, n = 96, 80, 72 // above serialFLOPs: exercises the pool
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	want := New(m, n)
	MatMulSerialInto(want, a, b)

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out := New(m, n)
			for iter := 0; iter < 20; iter++ {
				MatMulInto(out, a, b)
				if !bitwiseEqual(want, out) {
					errs[c] = fmt.Errorf("caller %d iter %d: result mismatch", c, iter)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSetWorkersWhileBusy resizes the pool concurrently with kernel use;
// SetWorkers must block out in-flight kernels rather than corrupt them.
func TestSetWorkersWhileBusy(t *testing.T) {
	forceWorkers(t, 2)
	rng := rand.New(rand.NewSource(15))
	const m, k, n = 96, 80, 72
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	want := New(m, n)
	MatMulSerialInto(want, a, b)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, w := range []int{1, 4, 2, 3, 1, 4} {
			SetWorkers(w)
		}
	}()
	out := New(m, n)
	for iter := 0; iter < 50; iter++ {
		MatMulInto(out, a, b)
		if !bitwiseEqual(want, out) {
			t.Fatalf("iter %d: result mismatch during resize", iter)
		}
	}
	<-done
}

func TestWorkersConfiguration(t *testing.T) {
	forceWorkers(t, 5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
	SetWorkers(0) // reset to default
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset, want ≥1", got)
	}
}

// --- Benchmarks -------------------------------------------------------------

func benchMatMulSize(b *testing.B, size int, serial bool) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(rng, 1, size, size)
	y := RandN(rng, 1, size, size)
	out := New(size, size)
	b.ReportAllocs()
	b.SetBytes(int64(8 * size * size * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if serial {
			MatMulSerialInto(out, x, y)
		} else {
			MatMulInto(out, x, y)
		}
	}
}

func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%dx%d", size, size, size), func(b *testing.B) {
			benchMatMulSize(b, size, false)
		})
	}
}

func BenchmarkMatMulSerial(b *testing.B) {
	for _, size := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("%dx%dx%d", size, size, size), func(b *testing.B) {
			benchMatMulSize(b, size, true)
		})
	}
}

func BenchmarkMatMulTransA256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := RandN(rng, 1, 256, 256)
	y := RandN(rng, 1, 256, 256)
	out := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(out, x, y)
	}
}

func BenchmarkMatMulTransB256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := RandN(rng, 1, 256, 256)
	y := RandN(rng, 1, 256, 256)
	out := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(out, x, y)
	}
}
