package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEq(a, b float64) bool { return math.Abs(a-b) < tol }

func TestNewShapeAndLen(t *testing.T) {
	tt := New(3, 4)
	if got := tt.Len(); got != 12 {
		t.Fatalf("Len = %d, want 12", got)
	}
	if tt.Rows() != 3 || tt.Cols() != 4 {
		t.Fatalf("Rows/Cols = %d/%d, want 3/4", tt.Rows(), tt.Cols())
	}
	sh := tt.Shape()
	sh[0] = 99 // must not alias internal shape
	if tt.Dim(0) != 3 {
		t.Fatal("Shape() must return a copy")
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1, 2)
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	got, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if got.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", got.At(1, 0))
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(0, 2, 5)
	m.Set(1, 0, -1)
	if m.At(0, 2) != 5 || m.At(1, 0) != -1 {
		t.Fatalf("Set/At roundtrip failed: %v", m.Data())
	}
	m.SetRow(1, []float64{7, 8, 9})
	r := m.Row(1)
	if r[0] != 7 || r[2] != 9 {
		t.Fatalf("SetRow/Row failed: %v", r)
	}
	// Row returns a view: mutating it mutates the tensor.
	r[1] = 42
	if m.At(1, 1) != 42 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(0, 0, 100)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share backing data")
	}
}

func TestReshape(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	if b.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
	if _, err := a.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("bad reshape err = %v, want ErrShape", err)
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add = %v", sum.Data())
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff.At(0, 0) != 4 {
		t.Fatalf("Sub = %v", diff.Data())
	}
	prod, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if prod.At(1, 0) != 21 {
		t.Fatalf("Mul = %v", prod.Data())
	}
	sc := Scale(a, 2)
	if sc.At(0, 1) != 4 {
		t.Fatalf("Scale = %v", sc.Data())
	}
	if _, err := Add(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("Add shape err = %v", err)
	}
}

func TestAddScaled(t *testing.T) {
	a := MustFromSlice([]float64{1, 1}, 1, 2)
	b := MustFromSlice([]float64{2, 3}, 1, 2)
	if err := AddScaled(a, b, 0.5); err != nil {
		t.Fatalf("AddScaled: %v", err)
	}
	if !almostEq(a.At(0, 0), 2) || !almostEq(a.At(0, 1), 2.5) {
		t.Fatalf("AddScaled = %v", a.Data())
	}
	if err := AddScaled(a, New(2, 2), 1); !errors.Is(err, ErrShape) {
		t.Fatalf("AddScaled shape err = %v", err)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEq(c.At(i, j), want[i][j]) {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := MatMul(a, New(2, 2)); !errors.Is(err, ErrShape) {
		t.Fatalf("MatMul inner-dim err = %v", err)
	}
}

// TestMatMulTransVariants checks that the fused transposed kernels agree
// with explicit Transpose + MatMul.
func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandN(rng, 1, 5, 3) // k×m for TransA
	b := RandN(rng, 1, 5, 4) // k×n
	want := func(x, y *Tensor) *Tensor {
		r, err := MatMul(x, y)
		if err != nil {
			t.Fatalf("MatMul: %v", err)
		}
		return r
	}

	at, err := Transpose(a)
	if err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	wantTA := want(at, b)
	gotTA := New(3, 4)
	MatMulTransAInto(gotTA, a, b)
	for i := range wantTA.Data() {
		if !almostEq(wantTA.Data()[i], gotTA.Data()[i]) {
			t.Fatalf("TransA mismatch at %d: %v vs %v", i, wantTA.Data()[i], gotTA.Data()[i])
		}
	}

	c := RandN(rng, 1, 6, 3) // m×k
	d := RandN(rng, 1, 4, 3) // n×k for TransB
	dt, err := Transpose(d)
	if err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	wantTB := want(c, dt)
	gotTB := New(6, 4)
	MatMulTransBInto(gotTB, c, d)
	for i := range wantTB.Data() {
		if !almostEq(wantTB.Data()[i], gotTB.Data()[i]) {
			t.Fatalf("TransB mismatch at %d", i)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at, err := Transpose(a)
	if err != nil {
		t.Fatalf("Transpose: %v", err)
	}
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v", at)
	}
}

func TestAddRowVec(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	out, err := AddRowVec(a, []float64{10, 20})
	if err != nil {
		t.Fatalf("AddRowVec: %v", err)
	}
	if out.At(0, 0) != 11 || out.At(1, 1) != 24 {
		t.Fatalf("AddRowVec = %v", out.Data())
	}
	if _, err := AddRowVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("AddRowVec shape err = %v", err)
	}
}

func TestReductions(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.Sum() != 21 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if !almostEq(a.Mean(), 3.5) {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 6 {
		t.Fatalf("Max = %v", a.Max())
	}
	cm := a.ColMeans()
	if !almostEq(cm[0], 2.5) || !almostEq(cm[2], 4.5) {
		t.Fatalf("ColMeans = %v", cm)
	}
	rs := a.RowSums()
	if rs[0] != 6 || rs[1] != 15 {
		t.Fatalf("RowSums = %v", rs)
	}
	if New(0, 3).Mean() != 0 {
		t.Fatal("Mean of empty tensor should be 0")
	}
}

func TestL2NormalizeRows(t *testing.T) {
	a := MustFromSlice([]float64{3, 4, 0, 0}, 2, 2)
	out := L2NormalizeRows(a, 1e-12)
	if !almostEq(out.At(0, 0), 0.6) || !almostEq(out.At(0, 1), 0.8) {
		t.Fatalf("normalized row0 = %v", out.Row(0))
	}
	// zero row preserved
	if out.At(1, 0) != 0 || out.At(1, 1) != 0 {
		t.Fatalf("zero row should be preserved: %v", out.Row(1))
	}
	if !almostEq(Norm2(out.Row(0)), 1) {
		t.Fatalf("row norm = %v, want 1", Norm2(out.Row(0)))
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 2}
	b := []float64{2, 0, 1}
	if Dot(a, b) != 4 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if Norm2(a) != 3 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
	if SqDist(a, b) != 6 {
		t.Fatalf("SqDist = %v", SqDist(a, b))
	}
	if !almostEq(CosineSim(a, a), 1) {
		t.Fatalf("CosineSim(a,a) = %v", CosineSim(a, a))
	}
	if CosineSim(a, []float64{0, 0, 0}) != 0 {
		t.Fatal("CosineSim with zero vector must be 0")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Softmax(dst, src)
	var sum float64
	for _, v := range dst {
		if v <= 0 {
			t.Fatalf("softmax output must be positive: %v", dst)
		}
		sum += v
	}
	if !almostEq(sum, 1) {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax must be monotone: %v", dst)
	}
	// Stability with large values.
	big := []float64{1000, 1001, 1002}
	Softmax(dst, big)
	if math.IsNaN(dst[0]) || math.IsInf(dst[2], 0) {
		t.Fatalf("softmax unstable: %v", dst)
	}
}

func TestLogSumExp(t *testing.T) {
	v := []float64{0, 0}
	if !almostEq(LogSumExp(v), math.Log(2)) {
		t.Fatalf("LogSumExp = %v", LogSumExp(v))
	}
	big := []float64{1000, 1000}
	if got := LogSumExp(big); !almostEq(got, 1000+math.Log(2)) {
		t.Fatalf("LogSumExp big = %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 5, 3}) != 1 {
		t.Fatal("ArgMax basic")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) should be -1")
	}
	// first occurrence wins on ties
	if ArgMax([]float64{2, 2}) != 0 {
		t.Fatal("ArgMax tie should return first index")
	}
}

func TestStack(t *testing.T) {
	m, err := Stack([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	if m.Rows() != 3 || m.At(2, 0) != 5 {
		t.Fatalf("Stack = %v", m)
	}
	if _, err := Stack([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("ragged Stack err = %v", err)
	}
	empty, err := Stack(nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("Stack(nil) = %v, %v", empty, err)
	}
}

func TestRandN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 2.0, 200, 10)
	mean := a.Mean()
	if math.Abs(mean) > 0.2 {
		t.Fatalf("RandN mean too far from 0: %v", mean)
	}
	var ss float64
	for _, v := range a.Data() {
		ss += v * v
	}
	std := math.Sqrt(ss / float64(a.Len()))
	if std < 1.5 || std > 2.5 {
		t.Fatalf("RandN std = %v, want ≈2", std)
	}
	u := RandUniform(rng, -1, 1, 100, 1)
	for _, v := range u.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("RandUniform out of range: %v", v)
		}
	}
}

// Property: matmul distributes over addition, (A+B)·C = A·C + B·C.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandN(rng, 1, m, k)
		b := RandN(rng, 1, m, k)
		c := RandN(rng, 1, k, n)
		ab, _ := Add(a, b)
		left, _ := MatMul(ab, c)
		ac, _ := MatMul(a, c)
		bc, _ := MatMul(b, c)
		right, _ := Add(ac, bc)
		for i := range left.Data() {
			if math.Abs(left.Data()[i]-right.Data()[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(8), 1+r.Intn(8)
		a := RandN(r, 1, m, n)
		at, _ := Transpose(a)
		att, _ := Transpose(at)
		if !SameShape(a, att) {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != att.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is invariant to constant shifts of the input.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		src := make([]float64, n)
		shifted := make([]float64, n)
		c := r.NormFloat64() * 10
		for i := range src {
			src[i] = r.NormFloat64() * 3
			shifted[i] = src[i] + c
		}
		d1 := make([]float64, n)
		d2 := make([]float64, n)
		Softmax(d1, src)
		Softmax(d2, shifted)
		for i := range d1 {
			if math.Abs(d1[i]-d2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	small := MustFromSlice([]float64{1, 2}, 1, 2)
	if s := small.String(); s == "" {
		t.Fatal("String() should render")
	}
	big := New(100, 100)
	if s := big.String(); s == "" {
		t.Fatal("String() should render large tensors compactly")
	}
}
