package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// fedProx implements FedProx (Li et al., MLSys 2020): FedAvg with a
// proximal term (μ/2)·‖w - w_global‖² added to every local objective,
// limiting client drift under heterogeneity. Not part of the paper's
// roster, but a standard point of comparison for non-i.i.d. FL that the
// library supports out of the box.
type fedProx struct {
	*supBase
	mu float64
}

var (
	_ fl.Trainer      = (*fedProx)(nil)
	_ fl.Personalizer = (*fedProx)(nil)
)

// NewFedProx builds FedProx with proximal strength mu (default 0.1 when
// non-positive). Personalization fine-tunes the head like FedAvg-FT so the
// comparison against the personalized methods is fair.
func NewFedProx(cfg Config, mu float64) *fl.Method {
	if mu <= 0 {
		mu = 0.1
	}
	f := &fedProx{supBase: newSupBase(cfg), mu: mu}
	return &fl.Method{
		Name:         "fedprox",
		Trainer:      f,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: f,
		InitGlobal:   f.initGlobal,
	}
}

func (f *fedProx) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := f.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	cfg := f.cfg.Train
	cfg.ProxMu = f.mu
	cfg.ProxTarget = global
	loss, err := model.TrainSupervised(rng, m, client.Train, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: fedprox client %d: %w", client.ID, err)
	}
	return &fl.Update{
		ClientID:   client.ID,
		Params:     flatten(m),
		NumSamples: client.Train.Len(),
		TrainLoss:  loss,
	}, nil
}

func (f *fedProx) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	m := f.newModel(rng)
	if err := load(m, global); err != nil {
		return 0, err
	}
	return f.fineTuneHead(rng, m, client)
}
