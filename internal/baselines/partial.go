package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// partialKind selects which half of the model is federated.
type partialKind int

const (
	// shareEncoder: the encoder is aggregated, heads stay local (FedPer,
	// FedRep, FedBABU).
	shareEncoder partialKind = iota + 1
	// shareHead: the head is aggregated, encoders stay local (LG-FedAvg).
	shareHead
)

// partial covers the representation-sharing family. The local update
// differs per method:
//
//   - FedPer (Arivazhagan et al., 2019): encoder + local head trained
//     jointly; only the encoder is aggregated.
//   - FedRep (Collins et al., ICML 2021): the head is optimized first on a
//     frozen encoder, then the encoder on a frozen head.
//   - FedBABU (Oh et al., ICLR 2022): the head is frozen at its shared
//     initialization during the whole training stage; only the encoder
//     learns. Personalization trains a head from scratch (linear probe).
//   - LG-FedAvg (Liang et al., 2019): local encoders learn client-specific
//     representations; the shared head is aggregated.
type partial struct {
	*supBase
	name  string
	kind  partialKind
	babu  bool // freeze head during training (FedBABU)
	split bool // FedRep's two-phase local update
}

var (
	_ fl.Trainer      = (*partial)(nil)
	_ fl.Personalizer = (*partial)(nil)
	_ fl.Stateful     = (*partial)(nil)
)

// CarriesRoundState implements fl.Stateful: the non-federated parameter
// half (personal heads, or personal encoders for LG-FedAvg) lives only in
// the in-memory client models, so a cold-started process would restart it
// from the shared initialization and diverge. Resume paths refuse the
// partial-personalization family.
func (p *partial) CarriesRoundState() bool { return true }

// NewFedPer builds FedPer.
func NewFedPer(cfg Config) *fl.Method { return newPartial(cfg, "fedper", shareEncoder, false, false) }

// NewFedRep builds FedRep.
func NewFedRep(cfg Config) *fl.Method { return newPartial(cfg, "fedrep", shareEncoder, false, true) }

// NewFedBABU builds FedBABU.
func NewFedBABU(cfg Config) *fl.Method { return newPartial(cfg, "fedbabu", shareEncoder, true, false) }

// NewLGFedAvg builds LG-FedAvg.
func NewLGFedAvg(cfg Config) *fl.Method { return newPartial(cfg, "lg-fedavg", shareHead, false, false) }

func newPartial(cfg Config, name string, kind partialKind, babu, split bool) *fl.Method {
	p := &partial{supBase: newSupBase(cfg), name: name, kind: kind, babu: babu, split: split}
	ref := p.newModel(rand.New(rand.NewSource(0)))
	var mask []bool
	if kind == shareEncoder {
		mask = ref.EncoderMask()
	} else {
		mask = ref.HeadMask()
	}
	return &fl.Method{
		Name:         name,
		Trainer:      p,
		Aggregator:   &fl.MaskedAverage{Mask: mask},
		Personalizer: p,
		InitGlobal:   p.initGlobal,
	}
}

func (p *partial) sharedMask(m *model.SupModel) []bool {
	if p.kind == shareEncoder {
		return m.EncoderMask()
	}
	return m.HeadMask()
}

func (p *partial) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, known := p.state(rng, client.ID)
	if !known {
		// First contact: adopt the full global vector so the private half
		// starts from the shared initialization (standard in these methods).
		if err := load(m, global); err != nil {
			return nil, err
		}
	} else if err := loadMasked(m, global, p.sharedMask(m)); err != nil {
		return nil, err
	}
	var loss float64
	var err error
	switch {
	case p.babu:
		cfg := p.cfg.Train
		cfg.FreezeHead = true
		loss, err = model.TrainSupervised(rng, m, client.Train, cfg)
	case p.split:
		// FedRep: head epochs on frozen encoder, then encoder epochs on
		// frozen head.
		headCfg := p.cfg.Train
		headCfg.FreezeEncoder = true
		if _, err = model.TrainSupervised(rng, m, client.Train, headCfg); err != nil {
			break
		}
		encCfg := p.cfg.Train
		encCfg.FreezeHead = true
		loss, err = model.TrainSupervised(rng, m, client.Train, encCfg)
	default:
		loss, err = model.TrainSupervised(rng, m, client.Train, p.cfg.Train)
	}
	if err != nil {
		return nil, fmt.Errorf("baselines: %s client %d: %w", p.name, client.ID, err)
	}
	return &fl.Update{ClientID: client.ID, Params: flatten(m), NumSamples: client.Train.Len(), TrainLoss: loss}, nil
}

func (p *partial) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	if p.babu {
		// FedBABU: global encoder + freshly trained head (linear probe).
		m := p.newModel(rng)
		if err := load(m, global); err != nil {
			return 0, err
		}
		return p.probeAccuracy(rng, m, client)
	}
	m, known := p.peek(client.ID)
	if !known {
		// Novel client: start from the global vector entirely.
		m = p.newModel(rng)
		if err := load(m, global); err != nil {
			return 0, err
		}
	} else if err := loadMasked(m, global, p.sharedMask(m)); err != nil {
		return 0, err
	}
	// Refresh the personal head on the local training set, then evaluate.
	return p.fineTuneHead(rng, m, client)
}
