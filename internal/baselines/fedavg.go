package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/tensor"
)

// fedAvg is the canonical McMahan et al. (AISTATS 2017) algorithm: every
// client trains the full model locally; the server averages weighted by
// sample count.
type fedAvg struct {
	*supBase
	// fineTune selects FedAvg-FT: in the personalization stage the head is
	// fine-tuned on the local training set before evaluation.
	fineTune bool
}

var (
	_ fl.Trainer      = (*fedAvg)(nil)
	_ fl.Personalizer = (*fedAvg)(nil)
)

// NewFedAvg builds FedAvg (global model evaluated directly on local tests).
func NewFedAvg(cfg Config) *fl.Method {
	f := &fedAvg{supBase: newSupBase(cfg)}
	return &fl.Method{
		Name:         "fedavg",
		Trainer:      f,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: f,
		InitGlobal:   f.initGlobal,
	}
}

// NewFedAvgFT builds FedAvg-FT: FedAvg training plus local head fine-tuning
// at personalization time.
func NewFedAvgFT(cfg Config) *fl.Method {
	f := &fedAvg{supBase: newSupBase(cfg), fineTune: true}
	return &fl.Method{
		Name:         "fedavg-ft",
		Trainer:      f,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: f,
		InitGlobal:   f.initGlobal,
	}
}

func (f *fedAvg) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := f.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	loss, err := model.TrainSupervised(rng, m, client.Train, f.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("baselines: fedavg client %d: %w", client.ID, err)
	}
	return &fl.Update{
		ClientID:   client.ID,
		Params:     flatten(m),
		NumSamples: client.Train.Len(),
		TrainLoss:  loss,
	}, nil
}

func (f *fedAvg) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	m := f.newModel(rng)
	if err := load(m, global); err != nil {
		return 0, err
	}
	if !f.fineTune {
		return m.Accuracy(client.Test), nil
	}
	return f.fineTuneHead(rng, m, client)
}

// perFedAvg approximates PerFedAvg (Fallah et al., NeurIPS 2020) with its
// standard first-order variant: federated training is Reptile-style (local
// multi-step SGD, server averaging — the inner loop), and personalization
// performs test-time adaptation of the whole model on the client's local
// data. See DESIGN.md §1 for the substitution note.
type perFedAvg struct {
	*supBase
	adaptEpochs int
	adaptLR     float64
}

var (
	_ fl.Trainer      = (*perFedAvg)(nil)
	_ fl.Personalizer = (*perFedAvg)(nil)
)

// NewPerFedAvg builds the first-order PerFedAvg approximation.
func NewPerFedAvg(cfg Config) *fl.Method {
	f := &perFedAvg{supBase: newSupBase(cfg), adaptEpochs: 5, adaptLR: cfg.Train.LR / 2}
	return &fl.Method{
		Name:         "perfedavg",
		Trainer:      f,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: f,
		InitGlobal:   f.initGlobal,
	}
}

func (f *perFedAvg) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := f.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	// Inner loop at half the outer learning rate, mimicking the meta
	// inner/outer step split.
	cfg := f.cfg.Train
	cfg.LR = f.adaptLR
	loss, err := model.TrainSupervised(rng, m, client.Train, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: perfedavg client %d: %w", client.ID, err)
	}
	return &fl.Update{ClientID: client.ID, Params: flatten(m), NumSamples: client.Train.Len(), TrainLoss: loss}, nil
}

func (f *perFedAvg) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	m := f.newModel(rng)
	if err := load(m, global); err != nil {
		return 0, err
	}
	cfg := f.cfg.Train
	cfg.Epochs = f.adaptEpochs
	cfg.LR = f.adaptLR
	if _, err := model.TrainSupervised(rng, m, client.Train, cfg); err != nil {
		return 0, fmt.Errorf("baselines: perfedavg adapt: %w", err)
	}
	return m.Accuracy(client.Test), nil
}

// script is the no-federation control: each client trains a linear
// classifier directly on its raw local samples. Script-Fair stops after the
// personalization budget (10 epochs); Script-Convergent trains to
// convergence (cfg.ScriptEpochs).
type script struct {
	*supBase
	epochs int
}

var (
	_ fl.Trainer      = (*script)(nil)
	_ fl.Personalizer = (*script)(nil)
)

// NewScriptFair builds the 10-epoch local-only baseline.
func NewScriptFair(cfg Config) *fl.Method {
	s := &script{supBase: newSupBase(cfg), epochs: cfg.Head.Epochs}
	return &fl.Method{
		Name:         "script-fair",
		Trainer:      s,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: s,
		InitGlobal:   s.initGlobal,
	}
}

// NewScriptConvergent builds the trained-to-convergence local-only baseline.
func NewScriptConvergent(cfg Config) *fl.Method {
	epochs := cfg.ScriptEpochs
	if epochs < 1 {
		epochs = 80
	}
	s := &script{supBase: newSupBase(cfg), epochs: epochs}
	return &fl.Method{
		Name:         "script-convergent",
		Trainer:      s,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: s,
		InitGlobal:   s.initGlobal,
	}
}

// Train is a no-op: Script never federates. It returns the global vector
// unchanged so the simulator's aggregation is the identity.
func (s *script) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	return &fl.Update{ClientID: client.ID, Params: append([]float64(nil), global...), NumSamples: client.Train.Len()}, nil
}

func (s *script) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	// Linear classifier on the raw observation space.
	cfg := s.cfg.Head
	cfg.Epochs = s.epochs
	identity := func(x *tensor.Tensor) *tensor.Tensor { return x }
	return model.LinearProbeAccuracy(rng, identity, client.Train, client.Test, s.cfg.NumClasses, cfg)
}
