package baselines

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"calibre/internal/core"
	"calibre/internal/fl"
	"calibre/internal/nn"
	"calibre/internal/param"
	"calibre/internal/partition"
	"calibre/internal/ssl"
)

// fedEMA implements FedEMA (Zhuang et al., ICLR 2022): federated
// self-supervised learning with BYOL where each client merges the incoming
// global model into its local model by a divergence-aware exponential
// moving average
//
//	w_local ← μ·w_local + (1-μ)·w_global,   μ = min(λ·‖w_global - w_local‖, 1)
//
// so clients whose models drifted far from the global adopt more of their
// own weights. Personalization is the standard linear probe.
type fedEMA struct {
	cfg    Config
	arch   ssl.Arch
	lambda float64
	train  ssl.TrainConfig

	factory ssl.Factory

	mu     sync.Mutex
	states map[int]*ssl.Trainable
}

var (
	_ fl.Trainer      = (*fedEMA)(nil)
	_ fl.Personalizer = (*fedEMA)(nil)
	_ fl.Stateful     = (*fedEMA)(nil)
)

// CarriesRoundState implements fl.Stateful: Train EMA-merges the incoming
// global into the client's persisted local model instead of overwriting
// it, so a cold-started process (empty states map) would adopt the global
// outright and diverge. Resume paths refuse FedEMA.
func (f *fedEMA) CarriesRoundState() bool { return true }

// NewFedEMA builds FedEMA on BYOL.
func NewFedEMA(cfg Config) *fl.Method {
	lambda := cfg.EMAMomentum
	if lambda <= 0 {
		lambda = 1.0 // the paper's autoscaler targets μ≈λ‖Δw‖; λ=1 by default
	}
	trainCfg := ssl.DefaultTrainConfig()
	trainCfg.Epochs = 2 * cfg.Train.Epochs // same SSL compute budget as the pfl-*/calibre-* family
	trainCfg.BatchSize = cfg.Train.BatchSize
	trainCfg.Augment = cfg.Augment
	f := &fedEMA{
		cfg:     cfg,
		arch:    cfg.Arch,
		lambda:  lambda,
		train:   trainCfg,
		factory: ssl.NewBYOL(ssl.DefaultEMAMomentum),
		states:  make(map[int]*ssl.Trainable),
	}
	return &fl.Method{
		Name:         "fedema",
		Trainer:      f,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: f,
		InitGlobal:   f.initGlobal,
	}
}

func (f *fedEMA) initGlobal(rng *rand.Rand) (param.Vector, error) {
	backbone := ssl.NewBackbone(rng, f.arch)
	method, err := f.factory(rng, backbone)
	if err != nil {
		return nil, fmt.Errorf("baselines: fedema init: %w", err)
	}
	return nn.Flatten(&ssl.Trainable{Backbone: backbone, Method: method}), nil
}

// state burns exactly one rng draw in both branches (see supBase.state):
// the caller's stream stays invariant to cache warmth, which checkpoint
// resume relies on.
func (f *fedEMA) state(rng *rand.Rand, id int) (*ssl.Trainable, bool, error) {
	initSeed := rng.Int63()
	f.mu.Lock()
	defer f.mu.Unlock()
	if st, ok := f.states[id]; ok {
		return st, true, nil
	}
	initRNG := rand.New(rand.NewSource(initSeed))
	backbone := ssl.NewBackbone(initRNG, f.arch)
	method, err := f.factory(initRNG, backbone)
	if err != nil {
		return nil, false, fmt.Errorf("baselines: fedema client state: %w", err)
	}
	st := &ssl.Trainable{Backbone: backbone, Method: method}
	f.states[id] = st
	return st, false, nil
}

func (f *fedEMA) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	st, known, err := f.state(rng, client.ID)
	if err != nil {
		return nil, err
	}
	if !known {
		// First participation: adopt the global model outright.
		if err := nn.Unflatten(st, global); err != nil {
			return nil, err
		}
	} else {
		local := nn.Flatten(st)
		div := nn.VecNorm2(nn.VecSub(global, local)) / math.Max(nn.VecNorm2(global), 1e-12)
		mu := math.Min(f.lambda*div, 1)
		// merged = μ·local + (1-μ)·global
		merged := nn.VecLerp(global, local, mu)
		if err := nn.Unflatten(st, merged); err != nil {
			return nil, err
		}
	}
	rows := client.Train.X
	if f.cfg.UseUnlabeled && client.Unlabeled != nil {
		rows = append(append([][]float64{}, rows...), client.Unlabeled.X...)
	}
	loss, err := ssl.Train(rng, st, rows, f.train, nil)
	if err != nil {
		return nil, fmt.Errorf("baselines: fedema client %d: %w", client.ID, err)
	}
	return &fl.Update{ClientID: client.ID, Params: nn.Flatten(st), NumSamples: len(rows), TrainLoss: loss}, nil
}

func (f *fedEMA) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	probe := &core.LinearProbe{Arch: f.arch, Factory: f.factory, NumClasses: f.cfg.NumClasses, Head: f.cfg.Head}
	return probe.Personalize(ctx, rng, client, global)
}
