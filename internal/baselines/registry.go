package baselines

import (
	"fmt"
	"sort"

	"calibre/internal/core"
	"calibre/internal/fl"
)

// Builder constructs a method given the shared baseline configuration and
// the total client population size (needed by SCAFFOLD's control update).
type Builder func(cfg Config, numClients int) (*fl.Method, error)

// Registry returns every baseline and pFL-SSL/Calibre variant evaluated in
// the paper, keyed by the names used in the figures.
func Registry() map[string]Builder {
	reg := map[string]Builder{
		"fedavg":            wrap(NewFedAvg),
		"fedavg-ft":         wrap(NewFedAvgFT),
		"fedprox":           func(cfg Config, _ int) (*fl.Method, error) { return NewFedProx(cfg, 0.1), nil },
		"scaffold":          func(cfg Config, n int) (*fl.Method, error) { return NewScaffold(cfg, n), nil },
		"scaffold-ft":       func(cfg Config, n int) (*fl.Method, error) { return NewScaffoldFT(cfg, n), nil },
		"fedper":            wrap(NewFedPer),
		"fedrep":            wrap(NewFedRep),
		"fedbabu":           wrap(NewFedBABU),
		"lg-fedavg":         wrap(NewLGFedAvg),
		"perfedavg":         wrap(NewPerFedAvg),
		"apfl":              wrap(NewAPFL),
		"ditto":             wrap(NewDitto),
		"fedema":            wrap(NewFedEMA),
		"script-fair":       wrap(NewScriptFair),
		"script-convergent": wrap(NewScriptConvergent),
	}
	for _, sslName := range []string{"simclr", "byol", "simsiam", "mocov2", "swav", "smog", "vicreg"} {
		sslName := sslName
		reg["pfl-"+sslName] = func(cfg Config, _ int) (*fl.Method, error) {
			return core.NewPFLSSL(sslConfig(cfg, sslName))
		}
		reg["calibre-"+sslName] = func(cfg Config, _ int) (*fl.Method, error) {
			return core.New(sslConfig(cfg, sslName))
		}
	}
	return reg
}

func wrap(f func(Config) *fl.Method) Builder {
	return func(cfg Config, _ int) (*fl.Method, error) { return f(cfg), nil }
}

func sslConfig(cfg Config, sslName string) core.Config {
	c := core.DefaultConfig(cfg.Arch, sslName, cfg.NumClasses)
	// SSL local updates run twice the supervised epoch budget: the paper
	// trains SSL with batch 256 vs 32 supervised, i.e. a larger per-round
	// compute budget for the self-supervised objective.
	c.Train.Epochs = 2 * cfg.Train.Epochs
	c.Train.BatchSize = cfg.Train.BatchSize
	c.Train.Augment = cfg.Augment
	c.Head = cfg.Head
	c.UseUnlabeled = cfg.UseUnlabeled
	if cfg.WarmupRounds > 0 {
		c.Opts.WarmupRounds = cfg.WarmupRounds
	}
	return c
}

// MethodNames lists every registered method name, sorted.
func MethodNames() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs a registered method by name.
func Build(name string, cfg Config, numClients int) (*fl.Method, error) {
	b, ok := Registry()[name]
	if !ok {
		return nil, fmt.Errorf("baselines: unknown method %q (have %v)", name, MethodNames())
	}
	return b(cfg, numClients)
}
