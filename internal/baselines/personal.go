package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/nn"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// apfl implements Adaptive Personalized Federated Learning (Deng et al.,
// 2020): each client maintains a personal model v alongside the federated
// model w; its personalized predictor is the mixture ᾱ·v + (1-ᾱ)·w. The
// federated model trains as in FedAvg; the personal model trains on the
// local objective of the mixed parameters (we train v directly on the local
// data, the standard first-order simplification).
type apfl struct {
	*supBase
	alpha float64

	mu       sync.Mutex
	personal map[int][]float64 // per-client v
}

var (
	_ fl.Trainer      = (*apfl)(nil)
	_ fl.Personalizer = (*apfl)(nil)
	_ fl.Stateful     = (*apfl)(nil)
)

// CarriesRoundState implements fl.Stateful: per-client personal vectors
// evolve across rounds and are read back at personalization time, so a
// cold-started process would personalize from the global initialization
// and the method's end-to-end outcome would diverge. Resume paths refuse
// APFL.
func (a *apfl) CarriesRoundState() bool { return true }

// NewAPFL builds APFL with mixture weight cfg.APFLAlpha.
func NewAPFL(cfg Config) *fl.Method {
	alpha := cfg.APFLAlpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.5
	}
	a := &apfl{supBase: newSupBase(cfg), alpha: alpha, personal: make(map[int][]float64)}
	return &fl.Method{
		Name:         "apfl",
		Trainer:      a,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: a,
		InitGlobal:   a.initGlobal,
	}
}

func (a *apfl) personalVec(id int, init []float64) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if v, ok := a.personal[id]; ok {
		return v
	}
	v := append([]float64(nil), init...)
	a.personal[id] = v
	return v
}

func (a *apfl) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := a.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	loss, err := model.TrainSupervised(rng, m, client.Train, a.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("baselines: apfl client %d: %w", client.ID, err)
	}
	w := flatten(m)

	// Personal branch: one local pass updating v from the mixed point.
	v := a.personalVec(client.ID, global)
	mixed := nn.VecLerp(w, v, a.alpha) // α·v + (1-α)·w
	pm := a.newModel(rng)
	if err := load(pm, mixed); err != nil {
		return nil, err
	}
	pCfg := a.cfg.Train
	pCfg.Epochs = 1
	if _, err := model.TrainSupervised(rng, pm, client.Train, pCfg); err != nil {
		return nil, fmt.Errorf("baselines: apfl personal branch: %w", err)
	}
	a.mu.Lock()
	a.personal[client.ID] = flatten(pm)
	a.mu.Unlock()

	return &fl.Update{ClientID: client.ID, Params: w, NumSamples: client.Train.Len(), TrainLoss: loss}, nil
}

func (a *apfl) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	v := a.personalVec(client.ID, global)
	mixed := nn.VecLerp(global, v, a.alpha)
	m := a.newModel(rng)
	if err := load(m, mixed); err != nil {
		return 0, err
	}
	// Light head refresh so novel clients (whose v is the global model) are
	// adapted too.
	return a.fineTuneHead(rng, m, client)
}

// ditto implements Ditto (Li et al., ICML 2021): the federated model trains
// as FedAvg; in parallel each client maintains a personal model trained
// with a proximal pull λ‖v - w_global‖² toward the latest global weights.
// Fairness comes from evaluating the personal models.
type ditto struct {
	*supBase
	lambda float64

	mu       sync.Mutex
	personal map[int][]float64
}

var (
	_ fl.Trainer      = (*ditto)(nil)
	_ fl.Personalizer = (*ditto)(nil)
	_ fl.Stateful     = (*ditto)(nil)
)

// CarriesRoundState implements fl.Stateful: like APFL, Ditto's personal
// models persist across rounds and seed the personalization stage, so
// resume paths refuse it rather than silently personalizing from scratch.
func (d *ditto) CarriesRoundState() bool { return true }

// NewDitto builds Ditto with proximal strength cfg.DittoLambda.
func NewDitto(cfg Config) *fl.Method {
	lambda := cfg.DittoLambda
	if lambda <= 0 {
		lambda = 0.5
	}
	d := &ditto{supBase: newSupBase(cfg), lambda: lambda, personal: make(map[int][]float64)}
	return &fl.Method{
		Name:         "ditto",
		Trainer:      d,
		Aggregator:   fl.WeightedAverage{},
		Personalizer: d,
		InitGlobal:   d.initGlobal,
	}
}

func (d *ditto) personalVec(id int, init []float64) []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.personal[id]; ok {
		return v
	}
	v := append([]float64(nil), init...)
	d.personal[id] = v
	return v
}

func (d *ditto) trainPersonal(rng *rand.Rand, client *partition.Client, global param.Vector, epochs int) (*model.SupModel, error) {
	v := d.personalVec(client.ID, global)
	pm := d.newModel(rng)
	if err := load(pm, v); err != nil {
		return nil, err
	}
	cfg := d.cfg.Train
	cfg.Epochs = epochs
	cfg.ProxMu = d.lambda
	cfg.ProxTarget = global
	if _, err := model.TrainSupervised(rng, pm, client.Train, cfg); err != nil {
		return nil, fmt.Errorf("baselines: ditto personal: %w", err)
	}
	d.mu.Lock()
	d.personal[client.ID] = flatten(pm)
	d.mu.Unlock()
	return pm, nil
}

func (d *ditto) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := d.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	loss, err := model.TrainSupervised(rng, m, client.Train, d.cfg.Train)
	if err != nil {
		return nil, fmt.Errorf("baselines: ditto client %d: %w", client.ID, err)
	}
	if _, err := d.trainPersonal(rng, client, global, d.cfg.Train.Epochs); err != nil {
		return nil, err
	}
	return &fl.Update{ClientID: client.ID, Params: flatten(m), NumSamples: client.Train.Len(), TrainLoss: loss}, nil
}

func (d *ditto) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	// Refresh (or, for novel clients, create) the personal model with the
	// personalization budget, then evaluate it.
	pm, err := d.trainPersonal(rng, client, global, d.cfg.Head.Epochs)
	if err != nil {
		return 0, err
	}
	return pm.Accuracy(client.Test), nil
}
