package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"calibre/internal/fl"
	"calibre/internal/model"
	"calibre/internal/nn"
	"calibre/internal/param"
	"calibre/internal/partition"
)

// scaffold implements SCAFFOLD (Karimireddy et al., ICML 2020): client
// drift under non-i.i.d. data is corrected with control variates. Each
// local gradient step adds (c - c_i); after K steps the client control
// variate is refreshed with the option-II rule
//
//	c_i⁺ = c_i - c + (x - y_i) / (K·η)
//
// and the server accumulates the average control delta.
type scaffold struct {
	*supBase
	agg      *fl.ScaffoldAggregator
	fineTune bool

	mu       sync.Mutex
	controls map[int][]float64 // client control variates c_i
}

var (
	_ fl.Trainer      = (*scaffold)(nil)
	_ fl.Personalizer = (*scaffold)(nil)
	_ fl.Stateful     = (*scaffold)(nil)
)

// CarriesRoundState implements fl.Stateful: client control variates (and
// the aggregator's server control, see fl.ScaffoldAggregator) accumulate
// across rounds outside the global vector, so resume paths refuse
// SCAFFOLD.
func (s *scaffold) CarriesRoundState() bool { return true }

// NewScaffold builds SCAFFOLD with direct global evaluation.
func NewScaffold(cfg Config, numClients int) *fl.Method {
	return newScaffold(cfg, numClients, false)
}

// NewScaffoldFT builds SCAFFOLD-FT (head fine-tuned at personalization).
func NewScaffoldFT(cfg Config, numClients int) *fl.Method {
	return newScaffold(cfg, numClients, true)
}

func newScaffold(cfg Config, numClients int, fineTune bool) *fl.Method {
	agg := &fl.ScaffoldAggregator{ServerLR: 1, NumClients: numClients}
	s := &scaffold{
		supBase:  newSupBase(cfg),
		agg:      agg,
		fineTune: fineTune,
		controls: make(map[int][]float64),
	}
	name := "scaffold"
	if fineTune {
		name = "scaffold-ft"
	}
	return &fl.Method{
		Name:         name,
		Trainer:      s,
		Aggregator:   agg,
		Personalizer: s,
		InitGlobal:   s.initGlobal,
	}
}

func (s *scaffold) control(id, dim int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.controls[id]; ok {
		return c
	}
	c := make([]float64, dim)
	s.controls[id] = c
	return c
}

func (s *scaffold) Train(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector, round int) (*fl.Update, error) {
	if err := ensureCtx(ctx); err != nil {
		return nil, err
	}
	m, _ := s.state(rng, client.ID)
	if err := load(m, global); err != nil {
		return nil, err
	}
	ci := s.control(client.ID, len(global))
	serverC := s.agg.Control(len(global))
	// Correction (c - c_i) is added to every local gradient step.
	correction := nn.VecSub(serverC, ci)
	cfg := s.cfg.Train
	cfg.GradCorrection = correction
	loss, err := model.TrainSupervised(rng, m, client.Train, cfg)
	if err != nil {
		return nil, fmt.Errorf("baselines: scaffold client %d: %w", client.ID, err)
	}
	local := flatten(m)
	// Option II control refresh.
	stepsPerEpoch := (client.Train.Len() + cfg.BatchSize - 1) / cfg.BatchSize
	k := cfg.Epochs * stepsPerEpoch
	if k < 1 {
		k = 1
	}
	scale := 1 / (float64(k) * cfg.LR)
	newC := make([]float64, len(global))
	delta := make([]float64, len(global))
	for i := range newC {
		newC[i] = ci[i] - serverC[i] + (global[i]-local[i])*scale
		delta[i] = newC[i] - ci[i]
	}
	s.mu.Lock()
	s.controls[client.ID] = newC
	s.mu.Unlock()
	return &fl.Update{
		ClientID:     client.ID,
		Params:       local,
		NumSamples:   client.Train.Len(),
		TrainLoss:    loss,
		ControlDelta: delta,
	}, nil
}

func (s *scaffold) Personalize(ctx context.Context, rng *rand.Rand, client *partition.Client, global param.Vector) (float64, error) {
	if err := ensureCtx(ctx); err != nil {
		return 0, err
	}
	m := s.newModel(rng)
	if err := load(m, global); err != nil {
		return 0, err
	}
	if !s.fineTune {
		return m.Accuracy(client.Test), nil
	}
	return s.fineTuneHead(rng, m, client)
}
