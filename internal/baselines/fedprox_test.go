package baselines

import (
	"context"
	"math/rand"
	"testing"

	"calibre/internal/fl"
	"calibre/internal/nn"
)

func TestFedProxRegistered(t *testing.T) {
	if _, err := Build("fedprox", testCfg(), 4); err != nil {
		t.Fatalf("Build(fedprox): %v", err)
	}
}

func TestFedProxDefaultsMu(t *testing.T) {
	m := NewFedProx(testCfg(), 0)
	if got := m.Trainer.(*fedProx).mu; got != 0.1 {
		t.Fatalf("default mu = %v, want 0.1", got)
	}
	m = NewFedProx(testCfg(), 0.7)
	if got := m.Trainer.(*fedProx).mu; got != 0.7 {
		t.Fatalf("mu = %v", got)
	}
}

// The proximal term must keep FedProx's local updates closer to the global
// model than FedAvg's, given identical RNG streams.
func TestFedProxStaysCloserToGlobalThanFedAvg(t *testing.T) {
	clients := testClients(t, 2, 40)
	cfg := testCfg()
	cfg.Train.Epochs = 3

	prox := NewFedProx(cfg, 2.0) // strong pull for a clear signal
	avg := NewFedAvg(cfg)
	rng := rand.New(rand.NewSource(50))
	global, err := avg.InitGlobal(rng)
	if err != nil {
		t.Fatalf("InitGlobal: %v", err)
	}
	uProx, err := prox.Trainer.Train(context.Background(), rand.New(rand.NewSource(51)), clients[0], global, 0)
	if err != nil {
		t.Fatalf("fedprox train: %v", err)
	}
	uAvg, err := avg.Trainer.Train(context.Background(), rand.New(rand.NewSource(51)), clients[0], global, 0)
	if err != nil {
		t.Fatalf("fedavg train: %v", err)
	}
	dProx := nn.VecNorm2(nn.VecSub(uProx.Params, global))
	dAvg := nn.VecNorm2(nn.VecSub(uAvg.Params, global))
	if dProx >= dAvg {
		t.Fatalf("fedprox drift %v should be < fedavg drift %v", dProx, dAvg)
	}
}

func TestFedProxEndToEnd(t *testing.T) {
	clients := testClients(t, 4, 24)
	m, err := Build("fedprox", testCfg(), len(clients))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sim, err := fl.NewSimulator(fl.SimConfig{Rounds: 2, ClientsPerRound: 2, Seed: 52}, m, clients)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	global, _, err := sim.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	accs, err := fl.PersonalizeAll(context.Background(), 52, m, clients, global, 2)
	if err != nil {
		t.Fatalf("PersonalizeAll: %v", err)
	}
	for _, a := range accs {
		if a < 0 || a > 1 {
			t.Fatalf("accuracy = %v", a)
		}
	}
}
